// Command pastatrace inspects the Chrome trace_event JSON files that
// pastabench -trace and pastaverify -trace write.
//
//	pastatrace -validate trace.json   # exit non-zero when malformed
//	pastatrace -summary trace.json    # where-did-the-time-go table
//
// -validate is the structural gate CI runs on trace artifacts: every
// event must carry a name, non-negative timestamps monotone per
// (pid, tid) lane, and B/E duration events must pair up. -summary
// aggregates interval events by (category, name) with count, total,
// mean, and max durations.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
)

func main() {
	var (
		validate = flag.Bool("validate", false, "check each file's structural invariants; exit 1 on the first violation")
		summary  = flag.Bool("summary", false, "print a per-(category, name) duration table for each file")
	)
	flag.Parse()
	if !*validate && !*summary {
		*validate = true // bare invocation validates
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: pastatrace [-validate] [-summary] trace.json...")
		os.Exit(2)
	}
	code := 0
	for _, path := range flag.Args() {
		if err := inspect(path, *validate, *summary); err != nil {
			fmt.Fprintf(os.Stderr, "pastatrace: %s: %v\n", path, err)
			code = 1
		}
	}
	os.Exit(code)
}

func inspect(path string, validate, summary bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	evs, err := obs.ParseChromeTrace(data)
	if err != nil {
		return err
	}
	if validate {
		if err := obs.ValidateChromeTrace(data); err != nil {
			return err
		}
		fmt.Printf("%s: %d events, valid\n", path, len(evs))
	}
	if summary {
		printSummary(path, evs)
	}
	return nil
}

// eventAgg is the -summary aggregation bucket for one (cat, name).
type eventAgg struct {
	cat, name  string
	count      int
	totalUs    float64
	maxUs      float64
	firstIndex int
}

func printSummary(path string, evs []obs.TraceEvent) {
	agg := map[[2]string]*eventAgg{}
	instants := 0
	for i, ev := range evs {
		switch ev.Ph {
		case "i", "I":
			instants++
			continue
		case "X":
		default:
			continue // B/E and metadata carry no self-contained duration
		}
		k := [2]string{ev.Cat, ev.Name}
		a := agg[k]
		if a == nil {
			a = &eventAgg{cat: ev.Cat, name: ev.Name, firstIndex: i}
			agg[k] = a
		}
		a.count++
		a.totalUs += ev.Dur
		if ev.Dur > a.maxUs {
			a.maxUs = ev.Dur
		}
	}
	rows := make([]*eventAgg, 0, len(agg))
	for _, a := range agg {
		rows = append(rows, a)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].totalUs != rows[j].totalUs {
			return rows[i].totalUs > rows[j].totalUs
		}
		return rows[i].firstIndex < rows[j].firstIndex
	})
	fmt.Printf("%s: %d events (%d instants)\n", path, len(evs), instants)
	fmt.Printf("%-10s %-26s %8s %14s %14s %14s\n", "category", "name", "count", "total(ms)", "mean(us)", "max(us)")
	for _, a := range rows {
		fmt.Printf("%-10s %-26s %8d %14.3f %14.1f %14.1f\n",
			a.cat, a.name, a.count, a.totalUs/1e3, a.totalUs/float64(a.count), a.maxUs)
	}
}
