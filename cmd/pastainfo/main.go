// Command pastainfo inspects a sparse tensor — a .tns file or a Table 2/3
// dataset entry — reporting its shape, density, per-mode fiber statistics,
// and storage footprint in every format the suite implements (COO, HiCOO,
// gHiCOO, CSF).
//
// Usage:
//
//	pastainfo -f tensor.tns
//	pastainfo -f tensor.bten           # binary input; v3 also prints the tile directory
//	pastainfo -id deli -nnz 100000     # a scaled Table 2 stand-in
//	pastainfo -variants                # print the kernel-variant registry
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/csf"
	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/hicoo"
	"repro/internal/kernelreg"
	"repro/internal/reorder"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// printVariants renders the kernelreg registry as a grid: one row per
// registered (kernel, format) pair, a mark per backend, and the
// capability flags consumers dispatch on. This is the live registry —
// the same enumeration metrics, pastaverify, pastabench, and the chaos
// matrix iterate — so the grid always reflects what a build can run.
func printVariants() {
	all := kernelreg.All()
	generated := 0
	for _, v := range all {
		if v.Generated {
			generated++
		}
	}
	fmt.Printf("kernel-variant registry: %d variants across %d (kernel, format) pairs (%d hand-tuned, %d generated)\n\n",
		len(all), len(kernelreg.Grid()), len(all)-generated, generated)
	fmt.Printf("%-8s %-7s %-4s %-4s %-9s %-4s %-5s %s\n", "Kernel", "Format", "omp", "gpu", "multigpu", "ooc", "impl", "caps")
	for _, pr := range kernelreg.Grid() {
		marks := make(map[kernelreg.Backend]string, len(kernelreg.Backends))
		for _, b := range kernelreg.Backends {
			marks[b] = "."
		}
		var caps []string
		seen := make(map[string]bool)
		anyGen, anyHand := false, false
		for _, b := range kernelreg.BackendsFor(pr.Kernel, pr.Format) {
			marks[b] = "x"
			v, err := kernelreg.Lookup(pr.Kernel, pr.Format, b)
			if err != nil {
				continue
			}
			if v.Generated {
				anyGen = true
			} else {
				anyHand = true
			}
			for _, c := range capFlags(v.Caps) {
				if !seen[c] {
					seen[c] = true
					caps = append(caps, c)
				}
			}
		}
		capCol := "-"
		if len(caps) > 0 {
			capCol = joinComma(caps)
		}
		impl := "hand"
		switch {
		case anyGen && anyHand:
			impl = "mixed"
		case anyGen:
			impl = "gen"
		}
		fmt.Printf("%-8s %-7s %-4s %-4s %-9s %-4s %-5s %s\n",
			pr.Kernel, pr.Format,
			marks[kernelreg.OMP], marks[kernelreg.GPU], marks[kernelreg.MultiGPU],
			marks[kernelreg.OOC], impl, capCol)
	}
	fmt.Println("\nimpl: hand = hand-tuned registered override; gen = instantiated from the")
	fmt.Println("format's level declaration by the generic level-iterator kernels (internal/levels).")
	fmt.Println("\nformat level signatures:")
	for _, f := range roofline.Formats {
		for _, v := range all {
			if v.Format == f {
				if v.Levels != "" {
					fmt.Printf("  %-7s %s\n", f, v.Levels)
				} else {
					fmt.Printf("  %-7s (no level view)\n", f)
				}
				break
			}
		}
	}
	fmt.Println("\ncaps: mode-sweep = averaged over every tensor mode; factors = consumes dense")
	fmt.Println("factor matrices (R columns); strategy = OMP path reports its reduction strategy;")
	fmt.Println("serial-ref = fallback rung is the serial COO reference (no native serial path).")
}

// capFlags renders capability metadata as short flags.
func capFlags(c kernelreg.Caps) []string {
	var out []string
	if c.ModeDependent {
		out = append(out, "mode-sweep")
	}
	if c.NeedsFactors {
		out = append(out, "factors")
	}
	if c.StrategyAware {
		out = append(out, "strategy")
	}
	if c.SerialRef {
		out = append(out, "serial-ref")
	}
	return out
}

// printTileDirectory renders a PSTB v3 tile directory: one row per
// tile with its non-zero range, payload extent, and per-mode bounding
// box — the layout the out-of-core executor streams tile-at-a-time.
func printTileDirectory(tr *tensor.TileReader) {
	fmt.Printf("\ntile directory (PSTB v3, target %d nnz/tile, %d tiles, max tile %d bytes):\n",
		tr.TargetTileNNZ, tr.NumTiles(), tr.MaxTileBytes())
	fmt.Printf("%6s %12s %10s %12s %10s  %s\n", "tile", "start", "nnz", "offset", "bytes", "bounding box")
	const maxRows = 32
	for i := range tr.Tiles {
		if i == maxRows {
			fmt.Printf("%6s (%d more tiles)\n", "...", len(tr.Tiles)-maxRows)
			break
		}
		ti := &tr.Tiles[i]
		box := "(empty)"
		if !ti.Empty() {
			parts := make([]string, len(ti.BoxLo))
			for n := range ti.BoxLo {
				parts[n] = fmt.Sprintf("%d..%d", ti.BoxLo[n], ti.BoxHi[n])
			}
			box = joinComma(parts)
		}
		fmt.Printf("%6d %12d %10d %12d %10d  %s\n", i, ti.Start, ti.Count, ti.Offset, ti.Bytes, box)
	}
}

func joinComma(parts []string) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += ","
		}
		s += p
	}
	return s
}

func main() {
	var (
		file       = flag.String("f", "", "path to a .tns file")
		id         = flag.String("id", "", "dataset entry ID or name (Table 2/3)")
		nnz        = flag.Int("nnz", 100000, "stand-in non-zero target when using -id")
		seed       = flag.Int64("seed", 1, "stand-in seed")
		blockBits  = flag.Uint("blockbits", uint(hicoo.DefaultBlockBits), "log2 HiCOO block size")
		reorderCmp = flag.Bool("reorder", false, "compare index orderings (identity/random/degree/first-touch) by HiCOO block count")
		variants   = flag.Bool("variants", false, "print the kernel-variant registry grid and exit")
	)
	flag.Parse()

	if *variants {
		printVariants()
		return
	}

	if *blockBits < 1 || *blockBits > hicoo.MaxBlockBits {
		fmt.Fprintf(os.Stderr, "pastainfo: -blockbits must be in [1,%d] (got %d)\n", hicoo.MaxBlockBits, *blockBits)
		os.Exit(2)
	}

	var (
		x     *tensor.COO
		stats tensor.LoadStats
		err   error
	)
	switch {
	case *file != "":
		x, stats, err = tensor.ReadFileStats(*file)
		if err == nil {
			err = x.Validate()
		}
	case *id != "":
		var e dataset.Entry
		e, err = dataset.ByID(*id)
		if err == nil {
			x, err = dataset.Materialize(e, *nnz, *seed)
		}
	default:
		fmt.Fprintln(os.Stderr, "pastainfo: need -f <file.tns> or -id <dataset entry>")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if stats.Path != "" {
		fmt.Printf("load:    %v\n", stats)
	}
	fmt.Printf("tensor:  %v\n", x)
	fmt.Printf("order:   %d\n", x.Order())
	fmt.Printf("dims:    %v\n", x.Dims)
	fmt.Printf("nnz:     %d\n", x.NNZ())
	fmt.Printf("density: %.3g\n\n", x.Density())

	fmt.Println("per-mode structure:")
	fmt.Printf("%6s %12s %10s %10s %12s %12s %10s\n", "mode", "fibers", "min len", "max len", "imbalance", "collisions", "skew")
	for n := 0; n < x.Order(); n++ {
		fs := tensor.ComputeFiberStats(x, n)
		fmt.Printf("%6d %12d %10d %10d %12.2f %12.2f %10.2f\n",
			n, fs.NumFibers, fs.MinLen, fs.MaxLen, fs.Imbalance,
			tensor.ModeCollisions(x, n), gen.DegreeSkew(x, n))
	}

	bits := uint8(*blockBits)
	h := hicoo.FromCOO(x, bits)
	st := h.ComputeStats()
	c, cerr := csf.FromCOO(x, nil)

	fmt.Println("\nformat storage:")
	fmt.Printf("%-28s %14d bytes\n", "COO  4(N+1)M", x.StorageBytes())
	fmt.Printf("%-28s %14d bytes  (%.2fx vs COO, %d blocks, %.1f%% singleton)\n",
		fmt.Sprintf("HiCOO B=%d", 1<<bits), st.StorageBytes, st.CompressionVsCOO,
		st.NumBlocks, 100*float64(st.SingletonBlocks)/float64(max(1, st.NumBlocks)))
	for mode := 0; mode < x.Order(); mode++ {
		g := hicoo.FromCOOExceptMode(x, mode, bits)
		fmt.Printf("%-28s %14d bytes\n", fmt.Sprintf("gHiCOO (mode %d uncomp.)", mode), g.StorageBytes())
	}
	if cerr == nil {
		fmt.Printf("%-28s %14d bytes\n", "CSF (natural order)", c.StorageBytes())
	}

	// A tiled v3 file additionally carries the directory an out-of-core
	// stream iterates; v1/v2 files simply lack one and print nothing.
	if *file != "" {
		if tr, ok, derr := tensor.ReadTileDirectory(*file); derr == nil && ok {
			printTileDirectory(tr)
		}
	}

	if *reorderCmp {
		fmt.Println("\nindex-reordering comparison (HiCOO block count, fewer = better locality):")
		rng := rand.New(rand.NewSource(int64(*seed)))
		orderings := []struct {
			name string
			p    *reorder.Perm
		}{
			{"identity", reorder.Identity(x.Dims)},
			{"random", reorder.Random(x.Dims, rng)},
			{"by-degree", reorder.ByDegree(x)},
			{"first-touch", reorder.FirstTouch(x)},
		}
		for _, o := range orderings {
			y, err := o.p.Apply(x)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			st2 := hicoo.FromCOO(y, bits).ComputeStats()
			fmt.Printf("  %-12s %8d blocks, mean occupancy %7.2f, storage %10d bytes\n",
				o.name, st2.NumBlocks, st2.MeanNNZPerBlock, st2.StorageBytes)
		}
	}
}
