package main

import (
	"fmt"
	"math"
	"strings"
)

// barSeries is one format's bars in a chart panel.
type barSeries struct {
	name string
	ch   byte
	vals []float64
}

// barChart renders one kernel's figure panel as ASCII bars: per tensor,
// one bar per registered format series plus the Roofline bound (|) on a
// log scale — the textual analog of the paper's Figures 4-7 panels. The
// series set is dynamic: it comes from the kernelreg registry's format
// list for the kernel, so a newly registered format grows a bar without
// touching this code.
type barChart struct {
	title  string
	labels []string
	series []*barSeries
	roof   []float64
}

// seriesGlyphs assigns bar characters to series in registry format
// order: COO '#', HiCOO '=', CSF '%', fCOO '~'.
var seriesGlyphs = []byte{'#', '=', '%', '~', '+', 'o'}

// ensureSeries creates the series set on first use.
func (c *barChart) ensureSeries(names []string) {
	if c.series != nil {
		return
	}
	for i, n := range names {
		c.series = append(c.series, &barSeries{name: n, ch: seriesGlyphs[i%len(seriesGlyphs)]})
	}
}

// add appends one tensor's data point: vals parallel to the series set.
func (c *barChart) add(label string, roof float64, vals []float64) {
	c.labels = append(c.labels, label)
	c.roof = append(c.roof, roof)
	for i, v := range vals {
		c.series[i].vals = append(c.series[i].vals, v)
	}
}

const barWidth = 56

func (c *barChart) render() string {
	// Log scale spanning the data, floored one decade below the minimum.
	maxV := 0.0
	minV := math.Inf(1)
	for i := range c.labels {
		vs := []float64{c.roof[i]}
		for _, s := range c.series {
			vs = append(vs, s.vals[i])
		}
		for _, v := range vs {
			if v > maxV {
				maxV = v
			}
			if v > 0 && v < minV {
				minV = v
			}
		}
	}
	if maxV <= 0 || math.IsInf(minV, 1) {
		return c.title + ": no data\n"
	}
	lo := math.Floor(math.Log10(minV))
	hi := math.Ceil(math.Log10(maxV))
	if hi <= lo {
		hi = lo + 1
	}
	pos := func(v float64) int {
		if v <= 0 {
			return 0
		}
		f := (math.Log10(v) - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return int(f * float64(barWidth))
	}

	var b strings.Builder
	legend := make([]string, 0, len(c.series))
	for _, s := range c.series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.ch, s.name))
	}
	fmt.Fprintf(&b, "%s  [log scale 1e%.0f .. 1e%.0f GFLOPS; %s |=Roofline]\n",
		c.title, lo, hi, strings.Join(legend, " "))
	for i, label := range c.labels {
		for j, s := range c.series {
			name := label
			if j > 0 {
				name = ""
			}
			fmt.Fprintf(&b, "%-9s %s %8.2f\n", name, bar(s.ch, pos(s.vals[i]), pos(c.roof[i])), s.vals[i])
		}
	}
	return b.String()
}

// bar draws a filled bar of length n with a roofline marker at r.
func bar(ch byte, n, r int) string {
	buf := make([]byte, barWidth+1)
	for i := range buf {
		switch {
		case i < n:
			buf[i] = ch
		case i == r && r >= n:
			buf[i] = '|'
		default:
			buf[i] = ' '
		}
	}
	if r < n && r >= 0 && r < len(buf) {
		// Roofline inside the bar (above-Roofline case): mark it anyway.
		buf[r] = '|'
	}
	return string(buf)
}
