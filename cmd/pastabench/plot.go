package main

import (
	"fmt"
	"math"
	"strings"
)

// barChart renders one kernel's figure panel as ASCII bars: per tensor, a
// COO bar (#), a HiCOO bar (=), and the Roofline bound (|) on a log scale
// — the textual analog of the paper's Figures 4-7 panels.
type barChart struct {
	title  string
	labels []string
	coo    []float64
	hicoo  []float64
	roof   []float64
}

const barWidth = 56

func (c *barChart) render() string {
	// Log scale spanning the data, floored one decade below the minimum.
	maxV := 0.0
	minV := math.Inf(1)
	for i := range c.coo {
		for _, v := range []float64{c.coo[i], c.hicoo[i], c.roof[i]} {
			if v > maxV {
				maxV = v
			}
			if v > 0 && v < minV {
				minV = v
			}
		}
	}
	if maxV <= 0 || math.IsInf(minV, 1) {
		return c.title + ": no data\n"
	}
	lo := math.Floor(math.Log10(minV))
	hi := math.Ceil(math.Log10(maxV))
	if hi <= lo {
		hi = lo + 1
	}
	pos := func(v float64) int {
		if v <= 0 {
			return 0
		}
		f := (math.Log10(v) - lo) / (hi - lo)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return int(f * float64(barWidth))
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s  [log scale 1e%.0f .. 1e%.0f GFLOPS; #=COO ==HiCOO |=Roofline]\n", c.title, lo, hi)
	for i, label := range c.labels {
		cooBar := bar('#', pos(c.coo[i]), pos(c.roof[i]))
		hicooBar := bar('=', pos(c.hicoo[i]), pos(c.roof[i]))
		fmt.Fprintf(&b, "%-9s %s %8.2f\n", label, cooBar, c.coo[i])
		fmt.Fprintf(&b, "%-9s %s %8.2f\n", "", hicooBar, c.hicoo[i])
	}
	return b.String()
}

// bar draws a filled bar of length n with a roofline marker at r.
func bar(ch byte, n, r int) string {
	buf := make([]byte, barWidth+1)
	for i := range buf {
		switch {
		case i < n:
			buf[i] = ch
		case i == r && r >= n:
			buf[i] = '|'
		default:
			buf[i] = ' '
		}
	}
	if r < n && r >= 0 && r < len(buf) {
		// Roofline inside the bar (above-Roofline case): mark it anyway.
		buf[r] = '|'
	}
	return string(buf)
}
