package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/kernelreg"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/resilience"
	"repro/internal/roofline"
)

// jsonRow is one figure data point in the -json export.
type jsonRow struct {
	Tensor     string  `json:"tensor"`
	Name       string  `json:"name"`
	Dataset    string  `json:"dataset"` // "real" | "synthetic"
	Kernel     string  `json:"kernel"`
	Format     string  `json:"format"`
	Backend    string  `json:"backend,omitempty"` // measured rows: the registry backend that ran
	GFLOPS     float64 `json:"gflops"`
	Roofline   float64 `json:"roofline_gflops"`
	Efficiency float64 `json:"efficiency"`
	Source     string  `json:"source"`             // "modeled" | "measured"
	Strategy   string  `json:"strategy,omitempty"` // reduction strategy of measured reduction kernels
	Plan       string  `json:"plan,omitempty"`     // conversion path the planner chose while preparing
	Outcome    string  `json:"outcome,omitempty"`  // resilience outcome summary of guarded measured rows
	// TrialSec and Counters only appear on measured rows (and Counters
	// only when -counters armed the registry), so pre-existing series
	// files parse and re-serialize byte-identically.
	TrialSec []float64        `json:"trial_sec,omitempty"` // per-trial wall-clock seconds of measured rows
	Counters map[string]int64 `json:"counters,omitempty"`  // obs counter deltas attributed to the measurement
}

// jsonFigure is the -json document for one figure.
type jsonFigure struct {
	Figure     string    `json:"figure"`
	Platform   string    `json:"platform"`
	PaperScale bool      `json:"paper_scale"`
	StandInNNZ int       `json:"standin_nnz"`
	Rows       []jsonRow `json:"rows"`
}

func writeFigureJSON(o options, fig string, doc jsonFigure) {
	if o.jsonDir == "" {
		return
	}
	if err := os.MkdirAll(o.jsonDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "json:", err)
		return
	}
	path := filepath.Join(o.jsonDir, fig+".json")
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "json:", err)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "json:", err)
		return
	}
	fmt.Printf("(series written to %s)\n", path)
}

// scaleWorkloads lifts stand-in-measured workloads to the paper's true
// tensor sizes (Table 2/3) when -paper-scale is on, so the model runs in
// the memory regime the paper evaluated.
func scaleWorkloads(ws []perfmodel.Workload, e dataset.Entry, o options) []perfmodel.Workload {
	if !o.paperScale {
		return ws
	}
	out := make([]perfmodel.Workload, len(ws))
	for i, w := range ws {
		out[i] = w.ScaleTo(e.PaperNNZ, e.PaperDims)
	}
	return out
}

// runFigure3 reproduces Figure 3: Roofline models of the four platforms
// with the kernels' operational intensities marked, plus (optionally
// full-size) ERT measurements of the host.
func runFigure3(o options) {
	header("Figure 3: Roofline models with tensor-kernel operational intensities")
	for _, p := range platform.All() {
		c := roofline.BuildCurve(p, 1.0/32, 64, 12)
		fmt.Print(roofline.FormatCurve(c))
		marks := roofline.KernelMarks(p)
		keys := make([]string, 0, len(marks))
		for k := range marks {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return marks[keys[i]].OI < marks[keys[j]].OI })
		fmt.Printf("kernel marks on ERT-DRAM roof:")
		for _, k := range keys {
			fmt.Printf("  %s(OI=%.3f -> %.1f GF/s)", k, marks[k].OI, marks[k].GFLOPS)
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Println("Host ERT (STREAM-style triad + FMA micro-kernels):")
	h := roofline.MeasureHost(!o.ertFull)
	fmt.Printf("  host: peak %.1f GFLOPS, DRAM %.1f GB/s, cache-resident %.1f GB/s (%d cores)\n",
		h.PeakSPGFLOPS, h.ERTDRAMGBs, h.ERTLLCGBs, h.Cores)
}

// formatLetter is the per-format column suffix of the figure tables.
var formatLetter = map[roofline.Format]string{
	roofline.COO:   "C",
	roofline.HiCOO: "H",
	roofline.CSF:   "S",
	roofline.FCOO:  "F",
	roofline.BCSF:  "B",
}

// classifyErr maps a measurement error onto its resilience-taxonomy
// class for a table cell, so a guarded sweep shows *why* a row is
// missing instead of a bare "err".
func classifyErr(err error) string {
	switch {
	case errors.Is(err, resilience.ErrUnsupported):
		return "unsup"
	case errors.Is(err, resilience.ErrDeadline):
		return "timeout"
	case errors.Is(err, resilience.ErrPanic):
		return "panic"
	case errors.Is(err, resilience.ErrNonFinite):
		return "nonfinite"
	case errors.Is(err, resilience.ErrExhausted):
		return "exhaust"
	case errors.Is(err, resilience.ErrBreakerOpen):
		return "breaker"
	default:
		return "err"
	}
}

// runFigure reproduces one of Figures 4-7: the five kernels across the
// real and synthetic datasets on a single platform, with the Roofline
// bound per tensor. The format columns under each kernel come from the
// kernelreg registry — COO and HiCOO everywhere, CSF and fCOO where
// registered (Ttv, Mttkrp) — so a newly registered format grows a column
// here without touching this file. Values for the paper's machines come
// from the analytic model; pass -measure-host to add wall-clock host
// rows (fCOO, a GPU-only format, is measured on the simulated device).
func runFigure(o options, fig, platName string) {
	p, err := platform.ByName(platName)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	scaleNote := "paper-scale workloads"
	if !o.paperScale {
		scaleNote = "stand-in-scale workloads"
	}
	header(fmt.Sprintf("Figure %s: single-precision kernel performance on %s (GFLOPS, modeled, %s)", fig[3:], platName, scaleNote))
	cfg := benchConfig(o)

	var host *platform.Platform
	if o.measureHost {
		h := roofline.MeasureHost(!o.ertFull)
		host = &h
		fmt.Printf("(host rows measured on %d-core host: peak %.1f GFLOPS, DRAM %.1f GB/s)\n",
			host.Cores, host.PeakSPGFLOPS, host.ERTDRAMGBs)
	}

	formatsOf := make(map[roofline.Kernel][]roofline.Format, len(roofline.Kernels))
	seriesOf := make(map[roofline.Kernel][]string, len(roofline.Kernels))
	charts := make(map[roofline.Kernel]*barChart, len(roofline.Kernels))
	for _, k := range roofline.Kernels {
		formatsOf[k] = kernelreg.FormatsFor(k)
		for _, f := range formatsOf[k] {
			seriesOf[k] = append(seriesOf[k], f.String())
		}
		charts[k] = &barChart{title: fmt.Sprintf("%s on %s", k, platName)}
		charts[k].ensureSeries(seriesOf[k])
	}
	doc := jsonFigure{Figure: fig, Platform: platName, PaperScale: o.paperScale, StandInNNZ: o.nnz}

	for _, group := range []struct {
		title   string
		entries []dataset.Entry
	}{
		{"(a) Real tensors", dataset.RealTensors()},
		{"(b) Synthetic tensors", dataset.Synthetic()},
	} {
		fmt.Printf("\n%s\n", group.title)
		fmt.Printf("%-5s %-9s", "No.", "Tensor")
		for _, k := range roofline.Kernels {
			fmt.Printf(" |")
			for _, f := range formatsOf[k] {
				fmt.Printf(" %9s", fmt.Sprintf("%s-%s", k, formatLetter[f]))
			}
		}
		fmt.Printf(" | %s\n", "Roofline(Tew..Mttkrp)")
		for _, e := range group.entries {
			x, err := dataset.Materialize(e, o.nnz, o.seed)
			if err != nil {
				fmt.Printf("%-5s %-9s error: %v\n", e.ID, e.Name, err)
				continue
			}
			dsName := "real"
			if e.ID[0] == 's' {
				dsName = "synthetic"
			}
			ws := scaleWorkloads(metrics.Workloads(x, cfg), e, o)
			fmt.Printf("%-5s %-9s", e.ID, e.Name)
			var roofs []float64
			for _, k := range roofline.Kernels {
				fmt.Printf(" |")
				var kroof float64
				var kvals []float64
				for _, f := range formatsOf[k] {
					r := metrics.ModelFromWorkloads(p, ws, k, f)
					fmt.Printf(" %9.2f", r.GFLOPS)
					kvals = append(kvals, r.GFLOPS)
					if f == roofline.COO {
						kroof = r.Roofline
					}
					doc.Rows = append(doc.Rows, jsonRow{
						Tensor: e.ID, Name: e.Name, Dataset: dsName,
						Kernel: k.String(), Format: r.Format.String(),
						GFLOPS: r.GFLOPS, Roofline: r.Roofline,
						Efficiency: r.Efficiency, Source: r.Source.String(),
					})
				}
				roofs = append(roofs, kroof)
				charts[k].add(e.ID+" "+e.Name, kroof, kvals)
			}
			fmt.Printf(" |")
			for _, r := range roofs {
				fmt.Printf(" %.1f", r)
			}
			fmt.Println()
			if host != nil {
				fmt.Printf("%-5s %-9s", "", "(host)")
				var strategies, outcomes []string
				for _, k := range roofline.Kernels {
					fmt.Printf(" |")
					var strs []string
					anyStrategy := false
					for _, f := range formatsOf[k] {
						m, err := metrics.MeasureHost(host, x, k, f, cfg)
						if err != nil {
							fmt.Printf(" %9s", classifyErr(err))
							fmt.Fprintf(os.Stderr, "pastabench: %s %s/%s: %v\n", e.ID, k, f, err)
							strs = append(strs, "-")
							continue
						}
						fmt.Printf(" %9.2f", m.GFLOPS)
						backend := ""
						if v, verr := kernelreg.HostVariant(k, f); verr == nil {
							backend = v.Backend.String()
						}
						doc.Rows = append(doc.Rows, jsonRow{
							Tensor: e.ID, Name: e.Name, Dataset: dsName,
							Kernel: k.String(), Format: m.Format.String(), Backend: backend,
							GFLOPS: m.GFLOPS, Roofline: m.Roofline,
							Efficiency: m.Efficiency, Source: m.Source.String(),
							Strategy: m.Strategy, Plan: m.Plan, Outcome: m.Outcome,
							TrialSec: m.TrialSec, Counters: m.Counters,
						})
						if m.Strategy != "" {
							strs = append(strs, m.Strategy)
							anyStrategy = true
						} else {
							strs = append(strs, "-")
						}
						// Surface any degraded trial so a guarded sweep cannot
						// silently present fallback or timed-out numbers as clean.
						if m.Outcome != "" && m.Outcome != "ok" {
							outcomes = append(outcomes, fmt.Sprintf("%s-%s:%s", k, formatLetter[f], m.Outcome))
						}
					}
					if anyStrategy {
						strategies = append(strategies, fmt.Sprintf("%s:%s", k, strings.Join(strs, "/")))
					}
				}
				fmt.Printf(" | measured %v", strategies)
				if len(outcomes) > 0 {
					fmt.Printf(" outcomes %v", outcomes)
				}
				fmt.Println()
			}
		}
	}
	fmt.Println("\nColumns per kernel (registered formats): -C = COO, -H = HiCOO, -S = CSF, -B = bCSF, -F = fCOO; Roofline = per-tensor attainable bound (COO OI).")
	writeFigureJSON(o, fig, doc)
	recordBaselineRows(doc)
	if o.plot {
		for _, k := range roofline.Kernels {
			fmt.Println()
			fmt.Print(charts[k].render())
		}
	}
}
