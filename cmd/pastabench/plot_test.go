package main

import (
	"strings"
	"testing"
)

func TestBarChartRender(t *testing.T) {
	c := &barChart{title: "Test kernel"}
	c.ensureSeries([]string{"COO", "HiCOO"})
	c.add("a", 10, []float64{1, 2})
	c.add("b", 10, []float64{100, 50})
	out := c.render()
	if !strings.Contains(out, "Test kernel") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "#=COO") || !strings.Contains(out, "==HiCOO") {
		t.Fatalf("legend missing series names: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+2*len(c.labels) {
		t.Fatalf("got %d lines, want %d", len(lines), 1+2*len(c.labels))
	}
	// The 100-GFLOPS bar must be longer than the 1-GFLOPS bar.
	if strings.Count(lines[3], "#") <= strings.Count(lines[1], "#") {
		t.Fatal("bar lengths not monotone in value")
	}
	// Roofline markers present.
	if !strings.Contains(lines[1], "|") {
		t.Fatal("missing roofline marker")
	}
}

// TestBarChartDynamicSeries pins the registry-driven series growth: a
// chart with four format series renders four bars per tensor with four
// distinct glyphs.
func TestBarChartDynamicSeries(t *testing.T) {
	c := &barChart{title: "Mttkrp"}
	c.ensureSeries([]string{"COO", "HiCOO", "CSF", "fCOO"})
	c.add("t1", 40, []float64{4, 8, 12, 16})
	out := c.render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+4 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	for i, glyph := range []string{"#", "=", "%", "~"} {
		if !strings.Contains(lines[1+i], glyph) {
			t.Fatalf("series %d missing glyph %q: %q", i, glyph, lines[1+i])
		}
	}
	// ensureSeries is idempotent: a second call must not duplicate.
	c.ensureSeries([]string{"COO"})
	if len(c.series) != 4 {
		t.Fatalf("series count changed to %d", len(c.series))
	}
}

func TestBarChartDegenerate(t *testing.T) {
	c := &barChart{title: "empty"}
	if out := c.render(); !strings.Contains(out, "no data") {
		t.Fatalf("degenerate chart output %q", out)
	}
	z := &barChart{title: "zeros"}
	z.ensureSeries([]string{"COO", "HiCOO"})
	z.add("x", 0, []float64{0, 0})
	if out := z.render(); !strings.Contains(out, "no data") {
		t.Fatalf("zero chart output %q", out)
	}
}

func TestBarHelper(t *testing.T) {
	s := bar('#', 5, 10)
	if !strings.HasPrefix(s, "#####") {
		t.Fatalf("bar = %q", s)
	}
	if s[10] != '|' {
		t.Fatalf("marker missing: %q", s)
	}
	// Above-roofline: marker lands inside the bar.
	s2 := bar('#', 20, 5)
	if s2[5] != '|' {
		t.Fatalf("inside marker missing: %q", s2)
	}
}
