package main

import (
	"strings"
	"testing"
)

func TestBarChartRender(t *testing.T) {
	c := &barChart{
		title:  "Test kernel",
		labels: []string{"a", "b"},
		coo:    []float64{1, 100},
		hicoo:  []float64{2, 50},
		roof:   []float64{10, 10},
	}
	out := c.render()
	if !strings.Contains(out, "Test kernel") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+2*len(c.labels) {
		t.Fatalf("got %d lines, want %d", len(lines), 1+2*len(c.labels))
	}
	// The 100-GFLOPS bar must be longer than the 1-GFLOPS bar.
	if strings.Count(lines[3], "#") <= strings.Count(lines[1], "#") {
		t.Fatal("bar lengths not monotone in value")
	}
	// Roofline markers present.
	if !strings.Contains(lines[1], "|") {
		t.Fatal("missing roofline marker")
	}
}

func TestBarChartDegenerate(t *testing.T) {
	c := &barChart{title: "empty"}
	if out := c.render(); !strings.Contains(out, "no data") {
		t.Fatalf("degenerate chart output %q", out)
	}
	z := &barChart{title: "zeros", labels: []string{"x"}, coo: []float64{0}, hicoo: []float64{0}, roof: []float64{0}}
	if out := z.render(); !strings.Contains(out, "no data") {
		t.Fatalf("zero chart output %q", out)
	}
}

func TestBarHelper(t *testing.T) {
	s := bar('#', 5, 10)
	if !strings.HasPrefix(s, "#####") {
		t.Fatalf("bar = %q", s)
	}
	if s[10] != '|' {
		t.Fatalf("marker missing: %q", s)
	}
	// Above-roofline: marker lands inside the bar.
	s2 := bar('#', 20, 5)
	if s2[5] != '|' {
		t.Fatalf("inside marker missing: %q", s2)
	}
}
