package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/hicoo"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// runAblations exercises the design choices DESIGN.md calls out: HiCOO
// block size, gHiCOO compressed-mode choice, Mttkrp parallelization
// strategy, and OpenMP scheduling policy.
func runAblations(o options) {
	header("Ablations")
	cfg := benchConfig(o)

	e, _ := dataset.ByID("irrS")
	x, err := dataset.Materialize(e, o.nnz, o.seed)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("workload: irrS stand-in, %d nnz\n", x.NNZ())

	// --- Block size B for HiCOO ------------------------------------------
	fmt.Println("\n(a) HiCOO block size (storage + modeled Bluesky HiCOO-Mttkrp):")
	fmt.Printf("%8s %12s %10s %14s %12s\n", "B", "bytes", "blocks", "mean nnz/blk", "GFLOPS(model)")
	for _, bits := range []uint8{4, 5, 6, 7, 8} {
		h := hicoo.FromCOO(x, bits)
		st := h.ComputeStats()
		c2 := cfg
		c2.BlockBits = bits
		ws := metrics.Workloads(x, c2)
		r := metrics.ModelFromWorkloads(&platform.Bluesky, ws, roofline.Mttkrp, roofline.HiCOO)
		fmt.Printf("%8d %12d %10d %14.2f %12.3f\n", 1<<bits, st.StorageBytes, st.NumBlocks, st.MeanNNZPerBlock, r.GFLOPS)
	}

	// --- gHiCOO compressed-mode choice ------------------------------------
	fmt.Println("\n(b) gHiCOO compressed-mode choice (storage for Ttv input, product mode uncompressed):")
	full := hicoo.FromCOO(x, cfg.BlockBits)
	fmt.Printf("%-28s %12d bytes\n", "HiCOO (all modes)", full.StorageBytes())
	for mode := 0; mode < x.Order(); mode++ {
		g := hicoo.FromCOOExceptMode(x, mode, cfg.BlockBits)
		fmt.Printf("gHiCOO (uncompressed mode %d) %12d bytes  (%d blocks)\n", mode, g.StorageBytes(), g.NumBlocks())
	}

	// --- Mttkrp parallelization strategy (host-measured) -------------------
	fmt.Println("\n(c) Mttkrp parallelization strategy (host wall-clock, mode 0):")
	mats := make([]*tensor.Matrix, x.Order())
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), cfg.R)
		mats[n].Fill(0.5)
	}
	p, err := core.PrepareMttkrp(x, 0, cfg.R)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	timeIt := func(name string, run func()) {
		run() // warm-up
		start := time.Now()
		for i := 0; i < cfg.Runs; i++ {
			run()
		}
		el := time.Since(start).Seconds() / float64(cfg.Runs)
		gflops := float64(p.FlopCount()) / el / 1e9
		fmt.Printf("  %-28s %10.4fms %10.3f GFLOPS\n", name, el*1e3, gflops)
	}
	atomicOpt := cfg.Sched
	atomicOpt.Strategy = parallel.Atomic
	privOpt := cfg.Sched
	privOpt.Strategy = parallel.Privatized
	timeIt("sequential", func() { _, _ = p.ExecuteSeq(mats) })
	timeIt("nnz-parallel + atomics", func() { _, _ = p.ExecuteOMP(mats, atomicOpt) })
	timeIt("nnz-parallel + privatization", func() { _, _ = p.ExecuteOMP(mats, privOpt) })
	// The zero-value (Auto) strategy lets the runtime's selector pick;
	// report what it resolved to for this shape and thread count.
	_, _ = p.ExecuteOMP(mats, cfg.Sched)
	timeIt(fmt.Sprintf("adaptive (chose %s)", p.LastStrategy), func() { _, _ = p.ExecuteOMP(mats, cfg.Sched) })
	h := hicoo.FromCOO(x, cfg.BlockBits)
	hp, err := core.PrepareMttkrpHiCOO(h, 0, cfg.R)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	timeIt("block-parallel HiCOO+atomics", func() { _, _ = hp.ExecuteOMP(mats, atomicOpt) })
	_, _ = hp.ExecuteOMP(mats, cfg.Sched)
	timeIt(fmt.Sprintf("block-parallel HiCOO adaptive (chose %s)", hp.LastStrategy), func() { _, _ = hp.ExecuteOMP(mats, cfg.Sched) })

	// --- Scheduling policy for skewed fibers (host-measured Ttv) -----------
	fmt.Println("\n(d) OpenMP scheduling policy for Ttv on skewed fibers (host wall-clock):")
	tp, err := core.PrepareTtv(x, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fs := tensor.ComputeFiberStats(x, 0)
	fmt.Printf("  fiber imbalance max/mean = %.1f over %d fibers\n", fs.Imbalance, fs.NumFibers)
	v := tensor.NewVector(int(x.Dims[0]))
	for i := range v {
		v[i] = 1
	}
	for _, sched := range []parallel.Schedule{parallel.Static, parallel.Dynamic, parallel.Guided} {
		opt := parallel.Options{Schedule: sched}
		tp.ExecuteOMP(v, opt)
		start := time.Now()
		for i := 0; i < cfg.Runs; i++ {
			tp.ExecuteOMP(v, opt)
		}
		el := time.Since(start).Seconds() / float64(cfg.Runs)
		fmt.Printf("  schedule(%-7s) %10.4fms %10.3f GFLOPS\n", sched, el*1e3, float64(tp.FlopCount())/el/1e9)
	}

	// --- Modeled GPU block-imbalance sensitivity ---------------------------
	fmt.Println("\n(e) Modeled HiCOO-Mttkrp GPU sensitivity to block imbalance (DGX-1P):")
	ws := metrics.Workloads(x, cfg)
	for _, imb := range []float64{1, 4, 16, 64} {
		w2 := make([]perfmodel.Workload, len(ws))
		copy(w2, ws)
		for i := range w2 {
			w2[i].BlockImbalance = imb
		}
		r := metrics.ModelFromWorkloads(&platform.DGX1P, w2, roofline.Mttkrp, roofline.HiCOO)
		fmt.Printf("  block imbalance %5.0fx -> %8.3f GFLOPS\n", imb, r.GFLOPS)
	}
}
