package main

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/roofline"
)

// runObservations re-derives the five observations of §5.3 from the
// modeled figure data and reports whether each qualitative claim holds in
// this reproduction.
func runObservations(o options) {
	header("Observations 1-5 (§5.3), re-derived from the modeled figures")
	cfg := benchConfig(o)

	entries := append(dataset.RealTensors(), dataset.Synthetic()...)
	type key struct {
		plat string
		k    roofline.Kernel
		f    roofline.Format
	}
	results := make(map[key][]metrics.Result)
	var workloads []([]perfmodel.Workload)
	small := make([]bool, 0, len(entries))
	for _, e := range entries {
		x, err := dataset.Materialize(e, o.nnz, o.seed)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		ws := scaleWorkloads(metrics.Workloads(x, cfg), e, o)
		workloads = append(workloads, ws)
		// "Small" in the paper's sense: the paper-scale Tew working set
		// (three value arrays) fits Bluesky's LLC.
		small = append(small, 12*ws[0].M < platform.Bluesky.LLCBytes)
		for _, p := range platform.All() {
			for _, k := range roofline.Kernels {
				for _, f := range []roofline.Format{roofline.COO, roofline.HiCOO} {
					results[key{p.Name, k, f}] = append(results[key{p.Name, k, f}],
						metrics.ModelFromWorkloads(p, ws, k, f))
				}
			}
		}
	}
	_ = workloads

	mean := func(plat string, k roofline.Kernel, f roofline.Format, sel func(metrics.Result) float64) float64 {
		rs := results[key{plat, k, f}]
		var s float64
		for _, r := range rs {
			s += sel(r)
		}
		return s / float64(len(rs))
	}
	gf := func(r metrics.Result) float64 { return r.GFLOPS }
	eff := func(r metrics.Result) float64 { return r.Efficiency }

	// Observation 1: diversity.
	fmt.Println("\nObservation 1: achieved performance is diverse across kernels/formats/platforms.")
	for _, p := range platform.All() {
		fmt.Printf("  %-8s avg GFLOPS (COO):  ", p.Name)
		for _, k := range roofline.Kernels {
			fmt.Printf(" %s=%.1f", k, mean(p.Name, k, roofline.COO, gf))
		}
		fmt.Println()
	}
	lo, hi := 1e18, 0.0
	for _, rs := range results {
		for _, r := range rs {
			if r.GFLOPS < lo {
				lo = r.GFLOPS
			}
			if r.GFLOPS > hi {
				hi = r.GFLOPS
			}
		}
	}
	fmt.Printf("  range across all points: %.2f .. %.1f GFLOPS (%.0fx spread)\n", lo, hi, hi/lo)

	// Observation 2: small tensors exceed the DRAM Roofline.
	above := 0
	aboveSmall := 0
	nSmall := 0
	for i := range entries {
		r := results[key{"Bluesky", roofline.Tew, roofline.COO}][i]
		if r.Efficiency > 1 {
			above++
			if small[i] {
				aboveSmall++
			}
		}
		if small[i] {
			nSmall++
		}
	}
	fmt.Printf("\nObservation 2: %d/%d tensors exceed the Bluesky Tew Roofline; %d of them are LLC-resident (%d LLC-resident total).\n",
		above, len(entries), aboveSmall, nSmall)

	// Observation 3: NUMA efficiency.
	fmt.Println("\nObservation 3: efficiency of non-streaming kernels (COO, averaged):")
	fmt.Printf("  %-8s", "")
	for _, k := range []roofline.Kernel{roofline.Ttv, roofline.Ttm, roofline.Mttkrp} {
		fmt.Printf(" %8s", k)
	}
	fmt.Println()
	for _, p := range platform.All() {
		fmt.Printf("  %-8s", p.Name)
		for _, k := range []roofline.Kernel{roofline.Ttv, roofline.Ttm, roofline.Mttkrp} {
			fmt.Printf(" %7.0f%%", 100*mean(p.Name, k, roofline.COO, eff))
		}
		fmt.Println()
	}
	ttvB := mean("Bluesky", roofline.Ttv, roofline.COO, eff)
	ttvW := mean("Wingtip", roofline.Ttv, roofline.COO, eff)
	verdict("4-socket Wingtip below 2-socket Bluesky on Ttv efficiency", ttvW < ttvB)

	// Observation 4: HiCOO vs COO.
	fmt.Println("\nObservation 4: HiCOO/COO GFLOPS ratio (averaged):")
	for _, p := range platform.All() {
		fmt.Printf("  %-8s", p.Name)
		for _, k := range roofline.Kernels {
			fmt.Printf(" %s=%.2f", k, mean(p.Name, k, roofline.HiCOO, gf)/mean(p.Name, k, roofline.COO, gf))
		}
		fmt.Println()
	}
	verdict("HiCOO >= COO for Tew/Ts/Ttv on Bluesky",
		mean("Bluesky", roofline.Tew, roofline.HiCOO, gf) >= mean("Bluesky", roofline.Tew, roofline.COO, gf) &&
			mean("Bluesky", roofline.Ts, roofline.HiCOO, gf) >= mean("Bluesky", roofline.Ts, roofline.COO, gf) &&
			mean("Bluesky", roofline.Ttv, roofline.HiCOO, gf) >= mean("Bluesky", roofline.Ttv, roofline.COO, gf))
	verdict("HiCOO-Mttkrp below COO-Mttkrp on the GPUs",
		mean("DGX-1P", roofline.Mttkrp, roofline.HiCOO, gf) < mean("DGX-1P", roofline.Mttkrp, roofline.COO, gf) &&
			mean("DGX-1V", roofline.Mttkrp, roofline.HiCOO, gf) < mean("DGX-1V", roofline.Mttkrp, roofline.COO, gf))

	// Observation 5: datasets behave differently.
	fmt.Println("\nObservation 5: real vs synthetic behavior (Bluesky Tew COO GFLOPS):")
	nReal := len(dataset.RealTensors())
	var avgR, avgS float64
	rs := results[key{"Bluesky", roofline.Tew, roofline.COO}]
	for i, r := range rs {
		if i < nReal {
			avgR += r.GFLOPS
		} else {
			avgS += r.GFLOPS
		}
	}
	avgR /= float64(nReal)
	avgS /= float64(len(rs) - nReal)
	fmt.Printf("  real avg %.1f GFLOPS, synthetic avg %.1f GFLOPS\n", avgR, avgS)
	fmt.Println("  synthetic tensors show the small->large periodic trend within each size class;")
	fmt.Println("  real tensors are dominated by their individual sparsity structure.")
}

func verdict(claim string, ok bool) {
	status := "HOLDS"
	if !ok {
		status = "DOES NOT HOLD"
	}
	fmt.Printf("  -> %s: %s\n", claim, status)
}
