// Command pastabench regenerates the paper's tables and figures: the
// kernel analysis of Table 1, the datasets of Tables 2-3, the platforms
// of Table 4, the Roofline models of Figure 3, the per-platform kernel
// performance of Figures 4-7 (analytic model for the paper's machines,
// optionally wall-clock measurement on the host), the five observations
// of §5.3, and the ablations listed in DESIGN.md.
//
// Usage:
//
//	pastabench -exp all                # everything
//	pastabench -exp table1,fig4       # selected experiments
//	pastabench -exp fig4 -measure-host # add host-measured rows
//	pastabench -exp fig4 -nnz 200000   # larger stand-ins
//
// Host measurement can run guarded by the fault-tolerant execution
// runtime (-timeout, -fallback, -chaos-seed); see README.md and
// DESIGN.md §9.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/hicoo"
)

type options struct {
	nnz         int
	seed        int64
	runs        int
	r           int
	blockBits   uint
	measureHost bool
	ertFull     bool
	ranks       string
	paperScale  bool
	plot        bool
	jsonDir     string
	timeout     time.Duration
	fallback    bool
	chaosSeed   int64
	memBudget   string

	// Observability (see DESIGN.md §11).
	trace       string
	traceBlocks bool
	counters    bool
	profile     string
	pprofAddr   string
	baselineDir string
	check       bool
	checkTol    float64
}

func main() {
	var (
		exp = flag.String("exp", "all", "experiments: table1,table2,table3,table4,fig3,fig4,fig5,fig6,fig7,observations,ablation,dist,ooc,all")
		o   options
	)
	flag.IntVar(&o.nnz, "nnz", 50000, "target non-zeros for dataset stand-ins")
	flag.Int64Var(&o.seed, "seed", 20200222, "generator seed")
	flag.IntVar(&o.runs, "runs", 5, "timed repetitions per host measurement")
	flag.IntVar(&o.r, "r", 16, "factor matrix columns (paper: 16)")
	flag.UintVar(&o.blockBits, "blockbits", 7, "log2 of the HiCOO block size (paper: 7 -> B=128)")
	flag.BoolVar(&o.measureHost, "measure-host", false, "also wall-clock-measure kernels on the host for fig4-7")
	flag.BoolVar(&o.ertFull, "ert-full", false, "run the full-size ERT micro-benchmarks (slower)")
	flag.StringVar(&o.ranks, "ranks", "1,2,4,8", "simulated worker counts for the dist experiment, comma-separated")
	flag.BoolVar(&o.paperScale, "paper-scale", true, "scale modeled workloads to the Table 2/3 paper sizes (structure measured on stand-ins)")
	flag.BoolVar(&o.plot, "plot", false, "render figures 4-7 as ASCII bar charts after the tables")
	flag.StringVar(&o.jsonDir, "json", "", "also write each figure's series as JSON into this directory")
	flag.DurationVar(&o.timeout, "timeout", 0, "deadline per guarded host-measurement trial, e.g. 30s (0 disables)")
	flag.BoolVar(&o.fallback, "fallback", false, "degrade a faulting measurement to the serial rung instead of failing")
	flag.Int64Var(&o.chaosSeed, "chaos-seed", 0, "non-zero: inject deterministic faults into host measurement (fault drill)")
	flag.StringVar(&o.memBudget, "mem-budget", "", "tile-residency byte cap for the ooc experiment, e.g. 8MiB (default: the streaming default)")
	flag.StringVar(&o.trace, "trace", "", "write a Chrome trace_event JSON of the run to this file (about:tracing / Perfetto)")
	flag.BoolVar(&o.traceBlocks, "trace-blocks", false, "with -trace: also record one span per simulated-GPU thread block (large traces)")
	flag.BoolVar(&o.counters, "counters", false, "enable runtime counters and print their summary after the experiments")
	flag.StringVar(&o.profile, "profile", "", "write a CPU profile of the run to this file (go tool pprof)")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the run's duration")
	flag.StringVar(&o.baselineDir, "baseline", "", "directory of per-variant GFLOPS baselines (results/series or pstb-baseline files)")
	flag.BoolVar(&o.check, "check", false, "with -baseline: compare this run's figure rows against the baselines; exit non-zero on regression")
	flag.Float64Var(&o.checkTol, "check-tol", 0.5, "relative tolerance band for -check (0.5 = flag drops below 50% of baseline)")
	flag.Parse()

	if o.r < 1 {
		fmt.Fprintf(os.Stderr, "pastabench: -r must be >= 1 (got %d)\n", o.r)
		os.Exit(2)
	}
	if o.runs < 1 {
		fmt.Fprintf(os.Stderr, "pastabench: -runs must be >= 1 (got %d)\n", o.runs)
		os.Exit(2)
	}
	if o.blockBits < 1 || o.blockBits > hicoo.MaxBlockBits {
		fmt.Fprintf(os.Stderr, "pastabench: -blockbits must be in [1,%d] (got %d)\n", hicoo.MaxBlockBits, o.blockBits)
		os.Exit(2)
	}

	known := map[string]func(options){
		"table1":       runTable1,
		"table2":       runTable2,
		"table3":       runTable3,
		"table4":       runTable4,
		"fig3":         runFigure3,
		"fig4":         func(o options) { runFigure(o, "fig4", "Bluesky") },
		"fig5":         func(o options) { runFigure(o, "fig5", "Wingtip") },
		"fig6":         func(o options) { runFigure(o, "fig6", "DGX-1P") },
		"fig7":         func(o options) { runFigure(o, "fig7", "DGX-1V") },
		"observations": runObservations,
		"ablation":     runAblations,
		"dist":         runDistScaling,
		"ooc":          runOOCStreaming,
	}
	order := []string{"table1", "table2", "table3", "table4", "fig3", "fig4", "fig5", "fig6", "fig7", "observations", "ablation", "dist", "ooc"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, e := range strings.Split(*exp, ",") {
			e = strings.TrimSpace(e)
			if _, ok := known[e]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s, all\n", e, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}
	if err := startObs(o); err != nil {
		fmt.Fprintln(os.Stderr, "pastabench:", err)
		os.Exit(2)
	}
	for _, e := range selected {
		known[e](o)
		fmt.Println()
	}
	if code := finishObs(); code != 0 {
		os.Exit(code)
	}
}

func header(title string) {
	bar := strings.Repeat("=", len(title))
	fmt.Printf("%s\n%s\n", title, bar)
}
