package main

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// TestTraceExportAcceptance is the issue's acceptance check for -trace:
// a traced measurement sweep of all five kernels must produce a Chrome
// trace_event file that parses, validates (complete X events or matched
// B/E pairs, monotonic per-lane timestamps), and names every kernel.
// It drives the same startObs/finishObs machinery the pastabench flags
// use, with the measurement loop reduced to one small tensor so the
// test stays fast.
func TestTraceExportAcceptance(t *testing.T) {
	dir := t.TempDir()
	o := options{
		nnz: 2000, seed: 1, runs: 1, r: 4, blockBits: 7,
		trace:    filepath.Join(dir, "trace.json"),
		counters: true,
	}
	if err := startObs(o); err != nil {
		t.Fatal(err)
	}
	defer func() {
		obs.Disable()
		obs.EnableCounters(false)
		session = nil
	}()

	p, err := platform.ByName("Bluesky")
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandomCOO([]tensor.Index{48, 48, 48}, 2000, rand.New(rand.NewSource(1)))
	cfg := benchConfig(o)
	for _, k := range roofline.Kernels {
		if _, err := metrics.MeasureHost(p, x, k, roofline.COO, cfg); err != nil {
			t.Fatalf("measure %s: %v", k, err)
		}
	}
	if code := finishObs(); code != 0 {
		t.Fatalf("finishObs exit code = %d", code)
	}

	data, err := os.ReadFile(o.trace)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(data); err != nil {
		t.Fatalf("exported trace is malformed: %v", err)
	}
	evs, err := obs.ParseChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("trace holds no events")
	}

	// Every kernel must appear as the variant of at least one span, and
	// per-(pid,tid) lane timestamps must never run backwards.
	seen := map[string]bool{}
	lastTs := map[[2]int]float64{}
	for _, ev := range evs {
		if v := ev.Args["variant"]; v != "" {
			seen[strings.SplitN(v, "/", 2)[0]] = true
		}
		lane := [2]int{ev.Pid, ev.Tid}
		if ev.Ts < lastTs[lane] {
			t.Fatalf("timestamps run backwards in lane %v: %v after %v", lane, ev.Ts, lastTs[lane])
		}
		lastTs[lane] = ev.Ts
		if ev.Ph != "X" && ev.Ph != "i" && ev.Ph != "B" && ev.Ph != "E" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	for _, k := range roofline.Kernels {
		if !seen[k.String()] {
			t.Fatalf("kernel %s missing from trace (saw %v)", k, seen)
		}
	}
}

// TestCheckAgainstCommittedSeries runs the modeled fig4 sweep and
// checks it against the repo's committed results/series baselines —
// the same comparison CI performs via `pastabench -baseline -check`.
func TestCheckAgainstCommittedSeries(t *testing.T) {
	seriesDir := filepath.Join("..", "..", "results", "series")
	if _, err := os.Stat(filepath.Join(seriesDir, "fig4.json")); err != nil {
		t.Skipf("no committed series baseline: %v", err)
	}
	o := options{
		nnz: 2000, seed: 20200222, runs: 1, r: 16, blockBits: 7,
		paperScale: true, baselineDir: seriesDir, check: true, checkTol: 0.5,
	}
	if err := startObs(o); err != nil {
		t.Fatal(err)
	}
	defer func() { session = nil }()
	runFigure(o, "fig4", "Bluesky")
	if code := finishObs(); code != 0 {
		t.Fatalf("baseline check failed with exit code %d", code)
	}
}

// TestCheckRequiresBaseline pins the flag contract.
func TestCheckRequiresBaseline(t *testing.T) {
	if err := startObs(options{check: true}); err == nil {
		t.Fatal("-check without -baseline must error")
	}
}
