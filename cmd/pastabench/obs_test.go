package main

import (
	"net"
	"testing"
)

// TestStartObsBadPprofAddrFailsSynchronously pins the -pprof bind
// semantics: an unusable address must fail startObs itself, not be
// reported later by a background goroutine after the success banner
// already printed. Before the fix this returned nil and the error
// surfaced (if ever) asynchronously on stderr.
func TestStartObsBadPprofAddrFailsSynchronously(t *testing.T) {
	defer func() { session = nil }()
	if err := startObs(options{pprofAddr: "256.256.256.256:0"}); err == nil {
		t.Fatal("startObs accepted an unbindable -pprof address")
	}
	if session != nil {
		t.Fatal("failed startObs must not install a session")
	}
}

// TestStartObsPprofAddrInUse covers the realistic failure: the port is
// already taken.
func TestStartObsPprofAddrInUse(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	defer func() { session = nil }()
	if err := startObs(options{pprofAddr: ln.Addr().String()}); err == nil {
		t.Fatal("startObs accepted an in-use -pprof address")
	}
}

// TestStartObsPprofBindsAndCloses: the success path serves immediately
// on the resolved address and finishObs shuts the listener down.
func TestStartObsPprofBinds(t *testing.T) {
	defer func() { session = nil }()
	if err := startObs(options{pprofAddr: "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if session == nil || session.pprof == nil {
		t.Fatal("session.pprof not armed")
	}
	addr := session.pprof.Addr()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("pprof listener not accepting on %s: %v", addr, err)
	}
	c.Close()
	if code := finishObs(); code != 0 {
		t.Fatalf("finishObs = %d", code)
	}
	if _, err := net.Dial("tcp", addr); err == nil {
		t.Fatal("pprof listener still accepting after finishObs")
	}
}
