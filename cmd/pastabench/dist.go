package main

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/dist"
	"repro/internal/kernelreg"
)

// parseRanks turns the -ranks flag ("1,2,4,8") into worker counts.
func parseRanks(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		p, err := strconv.Atoi(part)
		if err != nil || p < 1 {
			return nil, fmt.Errorf("-ranks: %q is not a positive worker count", part)
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-ranks: no worker counts in %q", s)
	}
	return out, nil
}

// runDistScaling is the "dist" experiment: MTTKRP and a CP-ALS sweep on
// the sharded execution layer across the -ranks worker counts, with
// measured communication volume checked against the alpha-beta model.
// The GFLOPS column divides the kernel's flops by measured compute time
// plus modeled comm time, so scaling rolls off the way a real cluster's
// would once communication dominates. Rows land in the "dist" figure
// series and are gated by -baseline/-check like any other figure.
func runDistScaling(o options) {
	ranks, err := parseRanks(o.ranks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pastabench:", err)
		os.Exit(2)
	}
	header("Distributed scaling: sharded MTTKRP + CP-ALS across simulated ranks")

	var entry dataset.Entry
	for _, e := range dataset.RealTensors() {
		if e.Name == "nell2" {
			entry = e
			break
		}
	}
	x, err := dataset.Materialize(entry, o.nnz, o.seed)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	wb := kernelreg.NewWorkbench(x, kernelreg.Config{R: o.r, BlockBits: uint8(o.blockBits)})
	mats := wb.Mats()
	flops := int64(x.Order()) * int64(x.NNZ()) * int64(o.r)
	fmt.Printf("(%s stand-in: %d nnz, R=%d, mode-0 shards, alpha-beta net %.1fus/%.1fGB/s)\n",
		entry.Name, x.NNZ(), o.r, dist.DefaultNetwork.LatencySec*1e6, dist.DefaultNetwork.BandwidthGBs)
	fmt.Printf("%-6s %-6s %10s %10s %10s %12s %9s %8s\n",
		"ranks", "fmt", "best-ms", "comm-B", "comm-msg", "comm-model", "GFLOPS", "speedup")

	doc := jsonFigure{Figure: "dist", Platform: "host", PaperScale: false, StandInNNZ: o.nnz}
	base := map[dist.Format]float64{}
	for _, p := range ranks {
		for _, format := range []dist.Format{dist.FormatCOO, dist.FormatHiCOO} {
			eng, err := dist.NewEngine(x, dist.Options{
				Ranks: p, Format: format, BlockBits: uint8(o.blockBits),
			})
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			var best time.Duration
			var res *dist.MttkrpResult
			for run := 0; run < o.runs; run++ {
				start := time.Now()
				r, err := eng.Mttkrp(context.Background(), 0, mats, o.r)
				elapsed := time.Since(start)
				if err != nil {
					fmt.Printf("%-6d %-6s error: %v\n", p, format, err)
					return
				}
				if run == 0 || elapsed < best {
					best, res = elapsed, r
				}
			}
			total := best.Seconds() + res.ModeledCommSec
			gflops := float64(flops) / total / 1e9
			if _, ok := base[format]; !ok {
				base[format] = total
			}
			fmt.Printf("%-6d %-6s %10.3f %10d %10d %10.1fus %9.2f %7.2fx\n",
				p, format, best.Seconds()*1e3, res.CommBytes, res.CommMessages,
				res.ModeledCommSec*1e6, gflops, base[format]/total)
			doc.Rows = append(doc.Rows, jsonRow{
				Tensor: entry.ID, Name: entry.Name, Dataset: "real",
				Kernel: "Mttkrp", Format: format.String(),
				Backend: fmt.Sprintf("dist-p%d", p),
				GFLOPS:  gflops, Source: "measured",
				TrialSec: []float64{best.Seconds()},
			})
		}
	}

	// CP-ALS sweep: the full decomposition loop on the distributed
	// engine, so every rank count also exercises the allreduce-per-mode
	// pattern end to end.
	fmt.Printf("\n%-6s %-10s %8s %10s\n", "ranks", "cpals-fit", "sweeps", "comm-B")
	const cpRank, cpIters = 8, 3
	for _, p := range ranks {
		eng, err := dist.NewEngine(x, dist.Options{Ranks: p, BlockBits: uint8(o.blockBits)})
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		res, err := eng.CPALS(context.Background(), cpRank, cpIters, 0, o.seed)
		if err != nil {
			fmt.Printf("%-6d error: %v\n", p, err)
			return
		}
		st := eng.Stats()
		fmt.Printf("%-6d %-10.6f %8d %10d\n", p, res.Fit, res.Iters, st.CommBytes)
	}

	recordBaselineRows(doc)
	writeFigureJSON(o, "dist", doc)
}
