package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/govern"
	"repro/internal/kernelreg"
	"repro/internal/ooc"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// runOOCStreaming is the "ooc" experiment: the streaming kernels
// (MTTKRP, Ttv) run tile-at-a-time from a spooled PSTB v3 file under
// the -mem-budget byte cap, against the in-core OMP variants on the
// same tensor and operands. The column of interest is the streamed /
// in-core GFLOPS ratio — the price of bounding residency — next to the
// pipeline's own accounting (tiles cycled, evictions, peak leased
// bytes, prefetch hit rate). Rows land in the "ooc" figure series and
// are gated by -baseline/-check like any other figure.
func runOOCStreaming(o options) {
	budget := int64(ooc.DefaultBudget)
	if o.memBudget != "" {
		b, err := govern.ParseBytes(o.memBudget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pastabench: -mem-budget:", err)
			os.Exit(2)
		}
		budget = b
	}
	header("Out-of-core streaming: tiled MTTKRP + Ttv under a byte budget")

	var entry dataset.Entry
	for _, e := range dataset.RealTensors() {
		if e.Name == "nell2" {
			entry = e
			break
		}
	}
	x, err := dataset.Materialize(entry, o.nnz, o.seed)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	wb := kernelreg.NewWorkbench(x, kernelreg.Config{R: o.r, BlockBits: uint8(o.blockBits)})

	// Spool the tensor to a tiled v3 temp file — the stream reads real
	// file bytes, not a memory image — and unlink it once open.
	f, err := os.CreateTemp("", "pastabench-ooc-*.bten")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer f.Close()
	os.Remove(f.Name())
	tileNNZ := x.NNZ() / 16
	if tileNNZ < 1 {
		tileNNZ = 1
	}
	if tileNNZ > tensor.DefaultTileNNZ {
		tileNNZ = tensor.DefaultTileNNZ
	}
	if err := tensor.WriteBinaryTiled(f, x, tileNNZ); err != nil {
		fmt.Println("error:", err)
		return
	}
	fi, err := f.Stat()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tr, err := tensor.NewTileReader(f, fi.Size())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	if min := 4 * tr.MaxTileBytes(); budget < min {
		fmt.Printf("(budget %d below the pipeline's two-lease working set; floored to %d)\n", budget, min)
		budget = min
	}
	fmt.Printf("(%s stand-in: %d nnz, %d tiles of ~%d nnz, %.2f MB spooled, budget %d bytes)\n",
		entry.Name, x.NNZ(), tr.NumTiles(), tileNNZ, float64(fi.Size())/1e6, budget)
	fmt.Printf("%-8s %-8s %10s %9s %9s %6s %6s %10s %10s %7s\n",
		"kernel", "path", "best-ms", "GFLOPS", "ratio", "tiles", "evict", "peak-B", "read-B", "hits")

	ctx := context.Background()
	doc := jsonFigure{Figure: "ooc", Platform: "host", PaperScale: false, StandInNNZ: o.nnz}
	for _, k := range []roofline.Kernel{roofline.Mttkrp, roofline.Ttv} {
		v, err := kernelreg.Lookup(k, roofline.COO, kernelreg.OMP)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		inst, err := v.Prepare(wb, 0)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		var bestIn time.Duration
		for run := 0; run < o.runs; run++ {
			start := time.Now()
			if err := inst.Run(ctx); err != nil {
				fmt.Printf("%-8s in-core error: %v\n", k, err)
				return
			}
			if elapsed := time.Since(start); run == 0 || elapsed < bestIn {
				bestIn = elapsed
			}
		}
		incore := float64(inst.Flops) / bestIn.Seconds() / 1e9
		fmt.Printf("%-8s %-8s %10.3f %9.2f %9s %6s %6s %10s %10s %7s\n",
			k, "in-core", bestIn.Seconds()*1e3, incore, "1.00", "-", "-", "-", "-", "-")
		doc.Rows = append(doc.Rows, jsonRow{
			Tensor: entry.ID, Name: entry.Name, Dataset: "real",
			Kernel: k.String(), Format: "COO", Backend: "omp",
			GFLOPS: incore, Source: "measured",
			TrialSec: []float64{bestIn.Seconds()},
		})

		opt := ooc.Options{MemBudget: budget, Sched: wb.Opt(ctx)}
		var (
			bestOut time.Duration
			st      ooc.Stats
			flops   int64
		)
		for run := 0; run < o.runs; run++ {
			start := time.Now()
			switch k {
			case roofline.Mttkrp:
				_, st, err = ooc.Mttkrp(ctx, tr, wb.Mats(), 0, opt)
				flops = ooc.MttkrpFlops(tr, o.r)
			case roofline.Ttv:
				_, st, err = ooc.Ttv(ctx, tr, wb.Vec(0), 0, opt)
				flops = ooc.TtvFlops(tr)
			}
			if err != nil {
				fmt.Printf("%-8s streamed error: %v\n", k, err)
				return
			}
			if elapsed := time.Since(start); run == 0 || elapsed < bestOut {
				bestOut = elapsed
			}
		}
		streamed := float64(flops) / bestOut.Seconds() / 1e9
		fmt.Printf("%-8s %-8s %10.3f %9.2f %8.2fx %6d %6d %10d %10d %6.0f%%\n",
			k, "streamed", bestOut.Seconds()*1e3, streamed, streamed/incore,
			st.Tiles, st.Evictions, st.PeakBytes, st.BytesRead,
			100*float64(st.PrefetchHits)/float64(max(1, st.Tiles)))
		doc.Rows = append(doc.Rows, jsonRow{
			Tensor: entry.ID, Name: entry.Name, Dataset: "real",
			Kernel: k.String(), Format: "COO", Backend: "ooc",
			GFLOPS: streamed, Source: "measured",
			TrialSec: []float64{bestOut.Seconds()},
		})
	}

	recordBaselineRows(doc)
	writeFigureJSON(o, "ooc", doc)
}
