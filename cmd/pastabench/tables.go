package main

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/kernelreg"
	"repro/internal/metrics"
	"repro/internal/platform"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// runTable1 reproduces Table 1: the symbolic work / memory-access /
// operational-intensity analysis of the five kernels for a third-order
// cubical tensor, cross-checked against a concrete synthetic instance.
func runTable1(o options) {
	header("Table 1: kernel algorithm analysis (third-order cubical tensors)")
	fmt.Println("Symbolic, with M non-zeros, MF fibers, R columns, nb blocks, B block size:")
	fmt.Printf("%-8s %-10s %-26s %-34s %s\n", "Kernel", "Work", "Bytes (COO)", "Bytes (HiCOO)", "OI (asympt.)")
	rows := []struct{ k, w, coo, hicoo, oi string }{
		{"Tew", "M", "12M", "12M", "1/12"},
		{"Ts", "M", "8M", "8M", "1/8"},
		{"Ttv", "2M", "12M + 12MF", "12M + 12MF", "~1/6"},
		{"Ttm", "2MR", "4MR + 4MFR + 8M + 8MF", "4MR + 4MFR + 8M + 8MF", "~1/2"},
		{"Mttkrp", "3MR", "12MR + 16M", "12R*min{nb*B, M} + 7M + 20nb", "~1/4"},
	}
	for _, r := range rows {
		fmt.Printf("%-8s %-10s %-26s %-34s %s\n", r.k, r.w, r.coo, r.hicoo, r.oi)
	}

	// Concrete cross-check on a generated cubical tensor.
	e, _ := dataset.ByID("regS")
	x, err := dataset.Materialize(e, o.nnz, o.seed)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cfg := benchConfig(o)
	ws := metrics.Workloads(x, cfg)
	w0 := ws[0]
	rp := roofline.Params{Order: w0.Order, M: w0.M, MF: w0.MF, Nb: w0.Nb, R: w0.R, BlockSize: w0.BlockSize}
	fmt.Printf("\nConcrete instance (regS stand-in): M=%d MF=%d nb=%d R=%d B=%d\n", rp.M, rp.MF, rp.Nb, rp.R, rp.BlockSize)
	fmt.Println("One row per registered (kernel, format) pair, evaluated via the variant's model hook:")
	fmt.Printf("%-8s %-7s %12s %14s %10s %10s\n", "Kernel", "Format", "Flops", "Bytes", "OI", "OI(tab.)")
	for _, pr := range kernelreg.Grid() {
		v, err := kernelreg.HostVariant(pr.Kernel, pr.Format)
		if err != nil {
			fmt.Printf("%-8s %-7s error: %v\n", pr.Kernel, pr.Format, err)
			continue
		}
		flops, bytes := v.Model(rp)
		fmt.Printf("%-8s %-7s %12d %14d %10.4f %10.4f\n",
			pr.Kernel, pr.Format, flops, bytes, v.OI(rp), roofline.AsymptoticOI(pr.Kernel))
	}
}

// runTable2 reproduces Table 2: the real-tensor dataset (paper values)
// and the scaled stand-ins this reproduction materializes.
func runTable2(o options) {
	header("Table 2: real sparse tensors (paper) and scaled stand-ins (this run)")
	fmt.Printf("%-4s %-9s %-5s %-30s %10s %10s | %-22s %9s %10s %8s\n",
		"No.", "Tensor", "Order", "Paper dims", "PaperNNZ", "PaperDens", "Stand-in dims", "NNZ", "Density", "Gen")
	for _, e := range dataset.RealTensors() {
		x, err := dataset.Materialize(e, o.nnz, o.seed)
		if err != nil {
			fmt.Printf("%-4s %-9s error: %v\n", e.ID, e.Name, err)
			continue
		}
		s := dataset.Summarize(e, x)
		fmt.Printf("%-4s %-9s %-5d %-30s %10.3g %10.2g | %-22s %9d %10.2g %8s\n",
			e.ID, e.Name, e.Order(), dimsString64(e.PaperDims), float64(e.PaperNNZ), e.PaperDensity(),
			dimsString(s.Dims), s.NNZ, s.Density, e.Gen)
	}
}

// runTable3 reproduces Table 3: the synthetic tensors from the Kronecker
// and power-law generators.
func runTable3(o options) {
	header("Table 3: synthetic tensors (paper recipes, regenerated at stand-in scale)")
	fmt.Printf("%-4s %-9s %-6s %-5s %-30s %10s %10s | %-22s %9s %10s\n",
		"No.", "Tensor", "Gen.", "Order", "Paper dims", "PaperNNZ", "PaperDens", "Generated dims", "NNZ", "Density")
	for _, e := range dataset.Synthetic() {
		x, err := dataset.Materialize(e, o.nnz, o.seed)
		if err != nil {
			fmt.Printf("%-4s %-9s error: %v\n", e.ID, e.Name, err)
			continue
		}
		s := dataset.Summarize(e, x)
		fmt.Printf("%-4s %-9s %-6s %-5d %-30s %10.3g %10.2g | %-22s %9d %10.2g\n",
			e.ID, e.Name, e.Gen, e.Order(), dimsString64(e.PaperDims), float64(e.PaperNNZ), e.PaperDensity(),
			dimsString(s.Dims), s.NNZ, s.Density)
	}
}

// runTable4 reproduces Table 4: the platform parameters.
func runTable4(o options) {
	header("Table 4: platform parameters")
	fmt.Printf("%-10s %-6s %-22s %-9s %8s %6s %8s %9s %8s %8s %9s %8s\n",
		"Platform", "Kind", "Processor", "Microarch", "Freq", "Cores", "Sockets", "PeakSP", "LLC", "MemBW", "ERT-DRAM", "ERT-LLC")
	for _, p := range platform.All() {
		fmt.Printf("%-10s %-6s %-22s %-9s %5.2fGHz %6d %8d %7.1fTF %6dMB %6.0fGB/s %7.0fGB/s %6.0fGB/s\n",
			p.Name, p.Kind, p.Processor, p.Microarch, p.FreqGHz, p.Cores, p.Sockets,
			p.PeakSPGFLOPS/1000, p.LLCBytes>>20, p.MemBWGBs, p.ERTDRAMGBs, p.ERTLLCGBs)
	}
}

func benchConfig(o options) metrics.Config {
	cfg := metrics.DefaultConfig()
	cfg.R = o.r
	cfg.BlockBits = uint8(o.blockBits)
	cfg.Runs = o.runs
	cfg.Timeout = o.timeout
	cfg.Fallback = o.fallback
	cfg.ChaosSeed = o.chaosSeed
	return cfg
}

func dimsString(dims []tensor.Index) string {
	s := ""
	for i, d := range dims {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprintf("%d", d)
	}
	return s
}

func dimsString64(dims []int64) string {
	s := ""
	for i, d := range dims {
		if i > 0 {
			s += "x"
		}
		switch {
		case d >= 1e6:
			s += fmt.Sprintf("%.1fM", float64(d)/1e6)
		case d >= 1e3:
			s += fmt.Sprintf("%.0fK", float64(d)/1e3)
		default:
			s += fmt.Sprintf("%d", d)
		}
	}
	return s
}
