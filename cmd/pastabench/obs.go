package main

import (
	"fmt"
	_ "net/http/pprof" // registered on the default mux for -pprof
	"os"
	"runtime/pprof"

	"repro/internal/obs"
	"repro/internal/serve"
)

// obsSession owns the observability side of one pastabench invocation:
// the tracer feeding -trace, the counter registry feeding -counters,
// the CPU profile behind -profile, the net/http/pprof server behind
// -pprof, and the baseline records -check compares. It is created
// before the first experiment runs and finished after the last.
type obsSession struct {
	o       options
	tracer  *obs.Tracer
	cpuOut  *os.File
	pprof   *serve.HTTPServer
	current []obs.BaselineRecord
}

// session is the process-wide observability state; nil until -trace,
// -counters, -profile, -pprof, or -check asks for one.
var session *obsSession

// startObs validates the observability flags and arms whatever they
// request. It returns an error instead of exiting so main owns the
// usage message.
func startObs(o options) error {
	if o.check && o.baselineDir == "" {
		return fmt.Errorf("-check requires -baseline <dir>")
	}
	if o.trace == "" && !o.counters && o.profile == "" && o.pprofAddr == "" && !o.check {
		return nil
	}
	s := &obsSession{o: o}
	if o.trace != "" {
		var opts []obs.Option
		if o.traceBlocks {
			opts = append(opts, obs.WithBlockSpans())
		}
		s.tracer = obs.New(opts...)
		obs.Enable(s.tracer)
	}
	if o.counters {
		obs.EnableCounters(true)
	}
	if o.profile != "" {
		f, err := os.Create(o.profile)
		if err != nil {
			return fmt.Errorf("-profile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-profile: %w", err)
		}
		s.cpuOut = f
	}
	if o.pprofAddr != "" {
		// Bind synchronously so a bad address fails startup instead of a
		// background goroutine printing the error after the success
		// banner (with the benchmark run silently unprofiled).
		hs, err := serve.StartHTTP(o.pprofAddr, nil)
		if err != nil {
			if s.cpuOut != nil {
				pprof.StopCPUProfile()
				s.cpuOut.Close()
			}
			return fmt.Errorf("-pprof: %w", err)
		}
		s.pprof = hs
		fmt.Printf("(pprof server on http://%s/debug/pprof/)\n", hs.Addr())
	}
	session = s
	return nil
}

// recordBaselineRows feeds one figure's series rows into the baseline
// check. Harmless no-op when no session or no -check.
func recordBaselineRows(doc jsonFigure) {
	if session == nil || !session.o.check {
		return
	}
	for _, row := range doc.Rows {
		session.current = append(session.current, obs.BaselineRecord{
			Figure: doc.Figure, Tensor: row.Tensor,
			Kernel: row.Kernel, Format: row.Format, Backend: row.Backend,
			Source: row.Source, GFLOPS: row.GFLOPS,
		})
	}
}

// finishObs flushes every armed sink and returns the process exit code
// contribution: non-zero when the baseline check found regressions or a
// sink could not be written.
func finishObs() int {
	if session == nil {
		return 0
	}
	code := 0
	if session.pprof != nil {
		session.pprof.Close()
	}
	if session.cpuOut != nil {
		pprof.StopCPUProfile()
		session.cpuOut.Close()
		fmt.Printf("(cpu profile written to %s)\n", session.o.profile)
	}
	if session.tracer != nil {
		obs.Disable()
		spans := session.tracer.Spans()
		if err := obs.WriteChromeTraceFile(session.o.trace, spans); err != nil {
			fmt.Fprintln(os.Stderr, "pastabench: -trace:", err)
			code = 1
		} else {
			fmt.Printf("(%d spans written to %s; open in about:tracing or ui.perfetto.dev)\n",
				len(spans), session.o.trace)
		}
	}
	if session.o.counters {
		fmt.Println("\nRuntime counters")
		fmt.Println("================")
		obs.WriteCounterSummary(os.Stdout, obs.CounterSnapshot(), true)
	}
	if session.o.check {
		if c := checkBaselines(); c != 0 {
			code = c
		}
	}
	return code
}

// checkBaselines compares the rows collected this run against the
// committed per-variant GFLOPS baselines.
func checkBaselines() int {
	base, err := obs.LoadBaselineDir(session.o.baselineDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pastabench: -baseline:", err)
		return 1
	}
	if len(session.current) == 0 {
		fmt.Fprintln(os.Stderr, "pastabench: -check: selected experiments produced no figure rows to compare (run a fig4-7 experiment)")
		return 1
	}
	regs, matched := base.Check(session.current, session.o.checkTol)
	fmt.Printf("\nBaseline check: %d of %d rows matched against %s (tolerance %.0f%%)\n",
		matched, len(session.current), session.o.baselineDir, session.o.checkTol*100)
	if len(regs) == 0 {
		fmt.Println("no regressions")
		return 0
	}
	fmt.Printf("%d REGRESSIONS:\n", len(regs))
	for _, r := range regs {
		fmt.Println("  " + r.String())
	}
	return 1
}
