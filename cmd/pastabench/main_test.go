package main

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/perfmodel"
	"repro/internal/tensor"
)

func TestDimsString(t *testing.T) {
	if got := dimsString([]tensor.Index{4, 5, 6}); got != "4x5x6" {
		t.Fatalf("dimsString = %q", got)
	}
	if got := dimsString64([]int64{165000, 11000, 2}); got != "165K x11K x2" && got != "165Kx11Kx2" {
		// Exact formatting may include no spaces; accept the canonical one.
		if !strings.Contains(got, "165K") || !strings.Contains(got, "11K") {
			t.Fatalf("dimsString64 = %q", got)
		}
	}
	if got := dimsString64([]int64{23e6}); !strings.Contains(got, "23.0M") {
		t.Fatalf("dimsString64 millions = %q", got)
	}
}

func TestBenchConfig(t *testing.T) {
	o := options{nnz: 100, runs: 3, r: 8, blockBits: 5}
	cfg := benchConfig(o)
	if cfg.R != 8 || cfg.Runs != 3 || cfg.BlockBits != 5 {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestScaleWorkloads(t *testing.T) {
	e, err := dataset.ByID("choa")
	if err != nil {
		t.Fatal(err)
	}
	x, err := dataset.Materialize(e, 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	ws := metrics.Workloads(x, metrics.DefaultConfig())

	off := scaleWorkloads(ws, e, options{paperScale: false})
	if off[0].M != int64(x.NNZ()) {
		t.Fatal("paperScale=false must not scale")
	}
	on := scaleWorkloads(ws, e, options{paperScale: true})
	if on[0].M != e.PaperNNZ {
		t.Fatalf("scaled M = %d, want %d", on[0].M, e.PaperNNZ)
	}
	if on[0].Dims[0] != e.PaperDims[0] {
		t.Fatalf("scaled dims = %v", on[0].Dims)
	}
	// Derived counts scale proportionally and stay bounded by M.
	ratioBefore := float64(ws[0].MF) / float64(ws[0].M)
	ratioAfter := float64(on[0].MF) / float64(on[0].M)
	if ratioAfter > 1.01*ratioBefore+0.01 {
		t.Fatalf("MF ratio grew: %v -> %v", ratioBefore, ratioAfter)
	}
	if on[0].MF > on[0].M || on[0].Nb > on[0].M {
		t.Fatal("scaled counts exceed M")
	}
	// Skew statistics carry over unchanged.
	if on[0].FiberImbalance != ws[0].FiberImbalance || on[0].Collisions != ws[0].Collisions {
		t.Fatal("skew statistics should be preserved")
	}
}

func TestScaleToDegenerate(t *testing.T) {
	var w perfmodel.Workload
	out := w.ScaleTo(100, []int64{5})
	if out.M != w.M {
		t.Fatal("zero-M workload should not scale")
	}
	w2 := perfmodel.Workload{M: 10, MF: 5, Nb: 2, Dims: []int64{4, 4}}
	out2 := w2.ScaleTo(1000, []int64{400, 400})
	if out2.M != 1000 || out2.MF != 500 || out2.Nb != 200 {
		t.Fatalf("scaled = %+v", out2)
	}
	// Mismatched dims arity leaves dims unchanged.
	out3 := w2.ScaleTo(1000, []int64{400})
	if len(out3.Dims) != 2 || out3.Dims[0] != 4 {
		t.Fatalf("dims should be preserved on arity mismatch: %v", out3.Dims)
	}
}
