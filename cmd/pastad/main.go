// Command pastad is the PASTA benchmark daemon: it keeps datasets
// materialized and kernel instances prepared across requests, so many
// clients can probe kernel×format×backend performance over HTTP/JSON
// without paying preprocessing cost per call.
//
//	pastad -addr :7117
//	curl -s localhost:7117/variants
//	curl -s -X POST localhost:7117/run -d '{"dataset":"r2","kernel":"Mttkrp","format":"HiCOO"}'
//	curl -s localhost:7117/metrics
//
// See cmd/pastad/README.md for the full endpoint reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":7117", "listen address")
		nnz         = flag.Int("nnz", 5000, "stand-in dataset non-zero count (real tensors from PASTA_TENSOR_DIR always win)")
		seed        = flag.Int64("seed", 42, "dataset generation seed")
		rank        = flag.Int("r", 0, "factor-matrix rank R (0 = paper default)")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-trial deadline across all ladder rungs")
		shards      = flag.Int("shards", 8, "LRU cache shard count")
		cacheCap    = flag.Int("cache-cap", 32, "LRU cache capacity per shard")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = 2×GOMAXPROCS)")
		quota       = flag.Int64("quota", 0, "per-client admitted requests per quota window (0 = unlimited)")
		quotaWindow = flag.Duration("quota-window", time.Minute, "quota accounting window (0 = lifetime budget)")
		memBudget   = flag.String("mem-budget", "", `daemon-wide working-set budget for admission, e.g. "512MiB" ("" = half the memory limit / system RAM)`)
		admitWait   = flag.Duration("admit-wait", 100*time.Millisecond, "how long an over-capacity request waits at the admission gate before it is shed 503")
		drainGrace  = flag.Duration("drain-grace", 10*time.Second, "graceful-shutdown bound: how long to wait for in-flight requests on SIGTERM")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "pastad: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	var budget int64
	if *memBudget != "" {
		var err error
		budget, err = govern.ParseBytes(*memBudget)
		if err != nil {
			fmt.Fprintln(os.Stderr, "pastad: -mem-budget:", err)
			os.Exit(2)
		}
	}

	// The daemon's own counters flow through the obs registry; /metrics
	// reads the same snapshot -counters prints in pastabench.
	obs.EnableCounters(true)

	cfg := serve.Config{
		NNZ:         *nnz,
		Seed:        *seed,
		CacheShards: *shards,
		ShardCap:    *cacheCap,
		MaxInflight: *maxInflight,
		QuotaLimit:  *quota,
		QuotaWindow: *quotaWindow,
		Timeout:     *timeout,
		MemBudget:   budget,
		AdmitWait:   *admitWait,
		DrainGrace:  *drainGrace,
	}
	if *rank > 0 {
		cfg.Bench.R = *rank
	}
	srv := serve.New(cfg)

	// StartHTTP binds synchronously: a bad -addr fails here, before the
	// ready banner, instead of racing a background goroutine.
	hs, err := serve.StartHTTP(*addr, srv.Handler())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pastad:", err)
		os.Exit(1)
	}
	fmt.Printf("pastad listening on http://%s (endpoints: /healthz /variants /metrics /run)\n", hs.Addr())
	fmt.Printf("pastad: memory budget %d bytes, drain grace %s\n", srv.Governor().Budget(), *drainGrace)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("pastad: %v, draining (grace %s)\n", s, *drainGrace)
		os.Exit(drain(srv, hs, *drainGrace))
	case err := <-hs.Err():
		if err != nil {
			fmt.Fprintln(os.Stderr, "pastad:", err)
			os.Exit(1)
		}
	}
}

// drain runs the graceful-shutdown sequence under one grace budget:
//
//  1. stop admitting — new requests and flight joiners get 503 +
//     Retry-After, so a load balancer moves on immediately;
//  2. close the listener and wait for in-flight HTTP exchanges
//     (http.Server.Shutdown);
//  3. wait for every admitted lease to release (leaders finishing
//     their trials) via the governor;
//  4. flush a final counter summary so the last scrape interval's
//     events aren't lost with the process.
//
// Returns the process exit code: 0 for a clean drain, 1 when the grace
// expired with work still in flight (the remains are reported).
func drain(srv *serve.Server, hs *serve.HTTPServer, grace time.Duration) int {
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()

	code := 0
	if err := hs.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "pastad: http shutdown:", err)
		hs.Close() // hard-close lingering connections; the drain below still waits for leases
		code = 1
	}
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "pastad: drain:", err)
		code = 1
	}

	snap := obs.CounterSnapshot()
	fmt.Printf("pastad: drained (requests=%d shed=%d cancelled=%d errors=%d)\n",
		snap["daemon.requests"], snap["govern.shed"], snap["govern.cancelled"], snap["daemon.errors"])
	return code
}
