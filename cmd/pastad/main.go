// Command pastad is the PASTA benchmark daemon: it keeps datasets
// materialized and kernel instances prepared across requests, so many
// clients can probe kernel×format×backend performance over HTTP/JSON
// without paying preprocessing cost per call.
//
//	pastad -addr :7117
//	curl -s localhost:7117/variants
//	curl -s -X POST localhost:7117/run -d '{"dataset":"r2","kernel":"Mttkrp","format":"HiCOO"}'
//	curl -s localhost:7117/metrics
//
// See cmd/pastad/README.md for the full endpoint reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":7117", "listen address")
		nnz         = flag.Int("nnz", 5000, "stand-in dataset non-zero count (real tensors from PASTA_TENSOR_DIR always win)")
		seed        = flag.Int64("seed", 42, "dataset generation seed")
		rank        = flag.Int("r", 0, "factor-matrix rank R (0 = paper default)")
		timeout     = flag.Duration("timeout", 30*time.Second, "per-trial deadline across all ladder rungs")
		shards      = flag.Int("shards", 8, "LRU cache shard count")
		cacheCap    = flag.Int("cache-cap", 32, "LRU cache capacity per shard")
		maxInflight = flag.Int("max-inflight", 0, "max concurrently executing requests (0 = 2×GOMAXPROCS)")
		quota       = flag.Int64("quota", 0, "per-client admitted requests per quota window (0 = unlimited)")
		quotaWindow = flag.Duration("quota-window", time.Minute, "quota accounting window (0 = lifetime budget)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "pastad: unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	// The daemon's own counters flow through the obs registry; /metrics
	// reads the same snapshot -counters prints in pastabench.
	obs.EnableCounters(true)

	cfg := serve.Config{
		NNZ:         *nnz,
		Seed:        *seed,
		CacheShards: *shards,
		ShardCap:    *cacheCap,
		MaxInflight: *maxInflight,
		QuotaLimit:  *quota,
		QuotaWindow: *quotaWindow,
		Timeout:     *timeout,
	}
	if *rank > 0 {
		cfg.Bench.R = *rank
	}
	srv := serve.New(cfg)

	// StartHTTP binds synchronously: a bad -addr fails here, before the
	// ready banner, instead of racing a background goroutine.
	hs, err := serve.StartHTTP(*addr, srv.Handler())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pastad:", err)
		os.Exit(1)
	}
	fmt.Printf("pastad listening on http://%s (endpoints: /healthz /variants /metrics /run)\n", hs.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("pastad: %v, draining\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "pastad: shutdown:", err)
			os.Exit(1)
		}
	case err := <-hs.Err():
		if err != nil {
			fmt.Fprintln(os.Stderr, "pastad:", err)
			os.Exit(1)
		}
	}
}
