// Command pastaverify is the suite's self-check: it generates tensors
// across the density spectrum (plus any .tns file the user supplies) and
// cross-validates every implementation of every kernel — sequential vs
// OpenMP-style vs simulated-GPU, COO vs HiCOO vs CSF, single- vs
// multi-device — reporting the worst relative deviation per kernel.
// Reference benchmark suites ship exactly this kind of validation mode so
// ports to new hardware can be trusted before they are timed.
//
// Exit status is non-zero if any check exceeds the tolerance.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/csf"
	"repro/internal/gen"
	"repro/internal/gpusim"
	"repro/internal/hicoo"
	"repro/internal/parallel"
	"repro/internal/resilience"
	"repro/internal/tensor"
)

var failures int

func main() {
	var (
		nnz     = flag.Int("nnz", 20000, "non-zeros per generated test tensor")
		seed    = flag.Int64("seed", 1, "generator seed")
		tol     = flag.Float64("tol", 2e-3, "relative tolerance between implementations")
		file    = flag.String("f", "", "also verify against a user-supplied tensor file (.tns, .tns.gz, or .bten)")
		timeout = flag.Duration("timeout", 0, "deadline per verification case, e.g. 2m (0 = none)")
	)
	flag.Parse()

	type tc struct {
		name string
		x    *tensor.COO
	}
	rng := rand.New(rand.NewSource(*seed))
	var cases []tc

	kron, err := gen.Kronecker([]tensor.Index{1 << 12, 1 << 12, 1 << 12}, *nnz, nil, rng)
	must(err)
	cases = append(cases, tc{"kronecker-3d", kron})

	pl, err := gen.PowerLaw(gen.PowerLawConfig{
		Dims: []tensor.Index{20000, 20000, 48}, SparseModes: []int{0, 1}, NNZ: *nnz,
	}, rng)
	must(err)
	cases = append(cases, tc{"powerlaw-3d", pl})

	pl4, err := gen.PowerLaw(gen.PowerLawConfig{
		Dims: []tensor.Index{4000, 4000, 24, 16}, SparseModes: []int{0, 1}, NNZ: *nnz,
	}, rng)
	must(err)
	cases = append(cases, tc{"powerlaw-4d", pl4})

	cases = append(cases, tc{"uniform-dense-ish",
		tensor.RandomCOO([]tensor.Index{96, 96, 96}, *nnz, rng)})

	if *file != "" {
		x, stats, err := tensor.ReadFileStats(*file)
		must(err)
		must(x.Validate())
		fmt.Printf("loaded %v\n", stats)
		cases = append(cases, tc{*file, x})
	}

	dev := gpusim.NewDevice("verify", 0)
	devs := []*gpusim.Device{gpusim.NewDevice("v0", 4), gpusim.NewDevice("v1", 4)}

	for _, c := range cases {
		fmt.Printf("== %s: %v\n", c.name, c.x)
		runCase(c.name, c.x, dev, devs, *tol, *timeout, rng)
		fmt.Println()
	}
	if failures > 0 {
		fmt.Printf("FAILED: %d checks exceeded tolerance\n", failures)
		os.Exit(1)
	}
	fmt.Println("all implementations agree")
}

// runCase executes one tensor's cross-validation under resilience
// containment: a panic or a blown deadline anywhere in the case counts
// as a verification failure instead of killing the whole self-check.
func runCase(name string, x *tensor.COO, dev *gpusim.Device, devs []*gpusim.Device, tol float64, timeout time.Duration, rng *rand.Rand) {
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()
	// Thread the deadline through both substrates so a timed-out case
	// settles cooperatively instead of running to completion unobserved.
	opt := parallel.Options{Schedule: parallel.Dynamic, Ctx: ctx}
	for _, d := range append([]*gpusim.Device{dev}, devs...) {
		d.SetContext(ctx)
		defer d.SetContext(nil)
	}
	err, settled := resilience.Exec(ctx, resilience.Label{Kernel: "verify", Format: name, Backend: "host"},
		func(ctx context.Context) error {
			verifyTensor(x, dev, devs, opt, tol, rng)
			return nil
		})
	if err != nil {
		failures++
		fmt.Printf("  case FAILED: %v\n", err)
	}
	// The abandoned goroutine shares rng and the devices with the next
	// case; it must settle before the loop continues.
	select {
	case <-settled:
	case <-time.After(30 * time.Second):
		fmt.Fprintln(os.Stderr, "pastaverify: abandoned case still running after grace period; aborting")
		os.Exit(1)
	}
}

func verifyTensor(x *tensor.COO, dev *gpusim.Device, devs []*gpusim.Device, opt parallel.Options, tol float64, rng *rand.Rand) {
	r := core.DefaultR
	h := hicoo.FromCOO(x, hicoo.DefaultBlockBits)

	// ---- Tew ------------------------------------------------------------
	y := x.Clone()
	for i := range y.Vals {
		y.Vals[i] = tensor.Value(1 - rng.Float64())
	}
	hy := hicoo.FromCOO(y, hicoo.DefaultBlockBits)
	tp, err := core.PrepareTew(x, y, core.Add)
	need(err)
	ref := append([]tensor.Value(nil), tp.ExecuteSeq().Vals...)
	tp.ExecuteOMP(opt)
	report("Tew", "omp-vs-seq", sliceDev(ref, tp.Out.Vals), tol)
	tp.ExecuteGPU(dev)
	report("Tew", "gpu-vs-seq", sliceDev(ref, tp.Out.Vals), tol)
	hp, err := core.PrepareTewHiCOO(h, hy, core.Add)
	need(err)
	hz := hp.ExecuteSeq()
	report("Tew", "hicoo-vs-coo", mapDev(cooMap(tp.Out), cooMap(hz.ToCOO())), tol)

	// ---- Ts -------------------------------------------------------------
	sp, err := core.PrepareTs(x, 1.37, core.Mul)
	need(err)
	refTs := append([]tensor.Value(nil), sp.ExecuteSeq().Vals...)
	sp.ExecuteOMP(opt)
	report("Ts", "omp-vs-seq", sliceDev(refTs, sp.Out.Vals), tol)
	sp.ExecuteGPU(dev)
	report("Ts", "gpu-vs-seq", sliceDev(refTs, sp.Out.Vals), tol)

	// ---- Ttv (every mode) -------------------------------------------------
	for mode := 0; mode < x.Order(); mode++ {
		v := tensor.RandomVector(int(x.Dims[mode]), rng)
		p, err := core.PrepareTtv(x, mode)
		need(err)
		seq, err := p.ExecuteSeq(v)
		need(err)
		refV := append([]tensor.Value(nil), seq.Vals...)
		_, err = p.ExecuteOMP(v, opt)
		need(err)
		report("Ttv", fmt.Sprintf("omp-vs-seq m%d", mode), sliceDev(refV, p.Out.Vals), tol)
		_, err = p.ExecuteGPU(dev, v)
		need(err)
		report("Ttv", fmt.Sprintf("gpu-vs-seq m%d", mode), sliceDev(refV, p.Out.Vals), tol)
		_, err = p.ExecuteMultiGPU(devs, v)
		need(err)
		report("Ttv", fmt.Sprintf("multigpu m%d", mode), sliceDev(refV, p.Out.Vals), tol)
		hpv, err := core.PrepareTtvHiCOO(x, mode, hicoo.DefaultBlockBits)
		need(err)
		hv, err := hpv.ExecuteSeq(v)
		need(err)
		report("Ttv", fmt.Sprintf("hicoo-vs-coo m%d", mode), mapDev(cooMap(seq), cooMap(hv.ToCOO())), tol)
		// CSF leaf-mode Ttv.
		mo := []int{}
		for n := 0; n < x.Order(); n++ {
			if n != mode {
				mo = append(mo, n)
			}
		}
		cs, err := csf.FromCOO(x, append(mo, mode))
		need(err)
		cv, err := cs.TtvLeaf(v, opt)
		need(err)
		report("Ttv", fmt.Sprintf("csf-vs-coo m%d", mode), mapDev(cooMap(seq), cooMap(cv)), tol)
	}

	// ---- Ttm (mode 0) -----------------------------------------------------
	u := tensor.NewMatrix(int(x.Dims[0]), r)
	u.Randomize(rng)
	mp, err := core.PrepareTtm(x, 0, r)
	need(err)
	seqM, err := mp.ExecuteSeq(u)
	need(err)
	refM := append([]tensor.Value(nil), seqM.Vals...)
	_, err = mp.ExecuteOMP(u, opt)
	need(err)
	report("Ttm", "omp-vs-seq", sliceDev(refM, mp.Out.Vals), tol)
	_, err = mp.ExecuteGPU(dev, u)
	need(err)
	report("Ttm", "gpu-vs-seq", sliceDev(refM, mp.Out.Vals), tol)
	hm, err := core.PrepareTtmHiCOO(x, 0, r, hicoo.DefaultBlockBits)
	need(err)
	hmOut, err := hm.ExecuteSeq(u)
	need(err)
	report("Ttm", "hicoo-vs-coo", mapDev(cooMap(seqM.ToCOO()), cooMap(hmOut.ToSemiCOO().ToCOO())), tol)

	// ---- Mttkrp (mode 0) ----------------------------------------------------
	mats := make([]*tensor.Matrix, x.Order())
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	kp, err := core.PrepareMttkrp(x, 0, r)
	need(err)
	seqK, err := kp.ExecuteSeq(mats)
	need(err)
	refK := append([]tensor.Value(nil), seqK.Data...)
	_, err = kp.ExecuteOMP(mats, opt)
	need(err)
	report("Mttkrp", "omp-atomic", sliceDev(refK, kp.Out.Data), tol)
	_, err = kp.ExecuteOMPPrivatized(mats, opt)
	need(err)
	report("Mttkrp", "omp-privatized", sliceDev(refK, kp.Out.Data), tol)
	_, err = kp.ExecuteGPU(dev, mats)
	need(err)
	report("Mttkrp", "gpu", sliceDev(refK, kp.Out.Data), tol)
	_, err = kp.ExecuteMultiGPU(devs, mats)
	need(err)
	report("Mttkrp", "multigpu", sliceDev(refK, kp.Out.Data), tol)
	hk, err := core.PrepareMttkrpHiCOO(h, 0, r)
	need(err)
	hkOut, err := hk.ExecuteSeq(mats)
	need(err)
	report("Mttkrp", "hicoo", sliceDev(refK, hkOut.Data), tol)
	cs, err := csf.FromCOO(x, nil)
	need(err)
	csOut, err := cs.MttkrpRoot(mats, opt)
	need(err)
	report("Mttkrp", "csf-root", sliceDev(refK, csOut.Data), tol)
	bOut, err := cs.MttkrpRootBalanced(mats, opt, 0)
	need(err)
	report("Mttkrp", "bcsf-balanced", sliceDev(refK, bOut.Data), tol)
}

// sliceDev returns the worst relative deviation between two parallel
// value slices.
func sliceDev(a, b []tensor.Value) float64 {
	var worst float64
	for i := range a {
		d := relDev(float64(a[i]), float64(b[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

func cooMap(t *tensor.COO) map[string]float64 {
	m := make(map[string]float64, t.NNZ())
	idx := make([]tensor.Index, t.Order())
	for x := 0; x < t.NNZ(); x++ {
		v := t.Entry(x, idx)
		m[fmt.Sprint(idx)] += float64(v)
	}
	return m
}

// mapDev returns the worst relative deviation between coordinate maps.
func mapDev(a, b map[string]float64) float64 {
	var worst float64
	for k, av := range a {
		if d := relDev(av, b[k]); d > worst {
			worst = d
		}
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			if d := relDev(0, bv); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func relDev(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return d / scale
}

func report(kernel, check string, dev, tol float64) {
	status := "ok"
	if dev > tol {
		status = "FAIL"
		failures++
	}
	fmt.Printf("  %-7s %-22s max rel dev %.2e  [%s]\n", kernel, check, dev, status)
}

// must aborts the whole program: only for setup (generation, file load)
// that no verification case can proceed without.
func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// need aborts the current verification case by panicking; runCase's
// resilience containment converts it into a counted failure instead of
// a process exit.
func need(err error) {
	if err != nil {
		panic(err)
	}
}
