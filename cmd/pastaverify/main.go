// Command pastaverify is the suite's self-check: it generates tensors
// across the density spectrum (plus any .tns file the user supplies) and
// cross-validates every kernel variant the kernelreg registry knows —
// every kernel × format × backend, COO/HiCOO/CSF/fCOO on OMP, simulated
// GPU, and multi-device — against the serial COO reference, reporting
// the worst relative deviation per variant. Reference benchmark suites
// ship exactly this kind of validation mode so ports to new hardware can
// be trusted before they are timed. The case list comes from
// kernelreg.All(): registering a new variant makes it verified here
// without touching this command.
//
// -kernel/-format/-backend narrow the sweep by case-insensitive
// substring (e.g. -format csf, -backend gpu).
//
// Exit status is non-zero if any check exceeds the tolerance.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"repro/internal/gen"
	"repro/internal/kernelreg"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/tensor"
)

var failures int

func main() {
	var (
		nnz     = flag.Int("nnz", 20000, "non-zeros per generated test tensor")
		seed    = flag.Int64("seed", 1, "generator seed")
		tol     = flag.Float64("tol", 2e-3, "relative tolerance between implementations")
		file    = flag.String("f", "", "also verify against a user-supplied tensor file (.tns, .tns.gz, or .bten)")
		timeout = flag.Duration("timeout", 0, "deadline per verification case, e.g. 2m (0 = none)")
		kernelF = flag.String("kernel", "", "only verify kernels matching this substring (e.g. mttkrp)")
		formatF = flag.String("format", "", "only verify formats matching this substring (e.g. csf)")
		backF   = flag.String("backend", "", "only verify backends matching this substring (e.g. gpu)")
		trace   = flag.String("trace", "", "write a Chrome trace_event JSON of the verification sweep to this file")
	)
	flag.Parse()
	if *trace != "" {
		obs.Enable(obs.New())
	}

	match := func(v *kernelreg.Variant) bool {
		return containsFold(v.Kernel.String(), *kernelF) &&
			containsFold(v.Format.String(), *formatF) &&
			containsFold(v.Backend.String(), *backF)
	}
	var selected int
	for _, v := range kernelreg.All() {
		if match(v) {
			selected++
		}
	}
	if selected == 0 {
		fmt.Fprintf(os.Stderr, "pastaverify: no registered variant matches -kernel=%q -format=%q -backend=%q\n",
			*kernelF, *formatF, *backF)
		os.Exit(1)
	}
	fmt.Printf("verifying %d of %d registered variants\n\n", selected, len(kernelreg.All()))

	type tc struct {
		name string
		x    *tensor.COO
	}
	rng := rand.New(rand.NewSource(*seed))
	var cases []tc

	kron, err := gen.Kronecker([]tensor.Index{1 << 12, 1 << 12, 1 << 12}, *nnz, nil, rng)
	must(err)
	cases = append(cases, tc{"kronecker-3d", kron})

	pl, err := gen.PowerLaw(gen.PowerLawConfig{
		Dims: []tensor.Index{20000, 20000, 48}, SparseModes: []int{0, 1}, NNZ: *nnz,
	}, rng)
	must(err)
	cases = append(cases, tc{"powerlaw-3d", pl})

	pl4, err := gen.PowerLaw(gen.PowerLawConfig{
		Dims: []tensor.Index{4000, 4000, 24, 16}, SparseModes: []int{0, 1}, NNZ: *nnz,
	}, rng)
	must(err)
	cases = append(cases, tc{"powerlaw-4d", pl4})

	cases = append(cases, tc{"uniform-dense-ish",
		tensor.RandomCOO([]tensor.Index{96, 96, 96}, *nnz, rng)})

	if *file != "" {
		x, stats, err := tensor.ReadFileStats(*file)
		must(err)
		must(x.Validate())
		fmt.Printf("loaded %v\n", stats)
		cases = append(cases, tc{*file, x})
	}

	for _, c := range cases {
		fmt.Printf("== %s: %v\n", c.name, c.x)
		runCase(c.name, c.x, match, *tol, *timeout)
		fmt.Println()
	}
	flushTrace(*trace)
	if failures > 0 {
		fmt.Printf("FAILED: %d checks exceeded tolerance\n", failures)
		os.Exit(1)
	}
	fmt.Println("all implementations agree")
}

// flushTrace exports the verification sweep's spans; an unwritable
// trace counts as a failure so CI cannot ship a missing artifact.
func flushTrace(path string) {
	if path == "" {
		return
	}
	tr := obs.Disable()
	if tr == nil {
		return
	}
	spans := tr.Spans()
	if err := obs.WriteChromeTraceFile(path, spans); err != nil {
		fmt.Fprintln(os.Stderr, "pastaverify: -trace:", err)
		failures++
		return
	}
	fmt.Printf("(%d spans written to %s)\n", len(spans), path)
}

// containsFold reports whether s contains the filter, ignoring case; an
// empty filter matches everything.
func containsFold(s, filter string) bool {
	return filter == "" || strings.Contains(strings.ToLower(s), strings.ToLower(filter))
}

// runCase executes one tensor's cross-validation under resilience
// containment: a panic or a blown deadline anywhere in the case counts
// as a verification failure instead of killing the whole self-check.
func runCase(name string, x *tensor.COO, match func(*kernelreg.Variant) bool, tol float64, timeout time.Duration) {
	ctx := context.Background()
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()
	// The workbench is per-case: operands are derived from the tensor and
	// cached, so every variant of a kernel sees identical inputs. Variant
	// Run/Serial hooks thread ctx through both substrates themselves, so
	// a timed-out case settles cooperatively.
	wb := kernelreg.NewWorkbench(x, kernelreg.DefaultConfig())
	err, settled := resilience.Exec(ctx, resilience.Label{Kernel: "verify", Format: name, Backend: "host"},
		func(ctx context.Context) error {
			verifyRegistry(ctx, x, wb, match, tol)
			return nil
		})
	if err != nil {
		failures++
		fmt.Printf("  case FAILED: %v\n", err)
	}
	// The abandoned goroutine shares the workbench caches with nothing
	// else, but it must settle before the process exits its loop.
	select {
	case <-settled:
	case <-time.After(30 * time.Second):
		fmt.Fprintln(os.Stderr, "pastaverify: abandoned case still running after grace period; aborting")
		os.Exit(1)
	}
}

// verifyRegistry sweeps the registry: each selected variant, on each of
// its modes, is prepared, run, checked finite, and compared against the
// cached serial COO reference for its kernel.
func verifyRegistry(ctx context.Context, x *tensor.COO, wb *kernelreg.Workbench, match func(*kernelreg.Variant) bool, tol float64) {
	for _, v := range kernelreg.All() {
		if !match(v) {
			continue
		}
		for mode := 0; mode < v.Modes(x); mode++ {
			dev, err := v.Verify(ctx, wb, mode)
			need(err)
			check := "vs-serial-ref"
			if v.Caps.ModeDependent {
				check = fmt.Sprintf("vs-serial-ref m%d", mode)
			}
			report(v.String(), check, dev, tol)
		}
	}
}

func report(variant, check string, dev, tol float64) {
	status := "ok"
	if dev > tol {
		status = "FAIL"
		failures++
	}
	fmt.Printf("  %-22s %-18s max rel dev %.2e  [%s]\n", variant, check, dev, status)
}

// must aborts the whole program: only for setup (generation, file load)
// that no verification case can proceed without.
func must(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// need aborts the current verification case by panicking; runCase's
// resilience containment converts it into a counted failure instead of
// a process exit.
func need(err error) {
	if err != nil {
		panic(err)
	}
}
