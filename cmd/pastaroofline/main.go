// Command pastaroofline is the suite's ERT analog (§5.2): it measures the
// host's sustainable bandwidth and peak FLOPS with STREAM-style
// micro-kernels, then prints Roofline curves for the host and the paper's
// four platforms with the five kernels' operational intensities marked —
// the data behind Figure 3.
package main

import (
	"flag"
	"fmt"
	"sort"

	"repro/internal/platform"
	"repro/internal/roofline"
)

func main() {
	var (
		full   = flag.Bool("full", false, "run full-size micro-benchmarks (slower, more accurate)")
		points = flag.Int("points", 16, "samples per Roofline curve")
		noHost = flag.Bool("no-host", false, "skip the host measurement")
	)
	flag.Parse()

	plats := platform.All()
	if !*noHost {
		fmt.Println("measuring host with ERT-style micro-kernels...")
		h := roofline.MeasureHost(!*full)
		fmt.Printf("host: %d cores, peak %.1f GFLOPS (sustained FMA), DRAM %.2f GB/s, cache %.2f GB/s\n\n",
			h.Cores, h.PeakSPGFLOPS, h.ERTDRAMGBs, h.ERTLLCGBs)
		plats = append(plats, &h)
	}

	for _, p := range plats {
		c := roofline.BuildCurve(p, 1.0/32, 128, *points)
		fmt.Print(roofline.FormatCurve(c))
		marks := roofline.KernelMarks(p)
		names := make([]string, 0, len(marks))
		for k := range marks {
			names = append(names, k)
		}
		sort.Slice(names, func(i, j int) bool { return marks[names[i]].OI < marks[names[j]].OI })
		fmt.Println("kernel operational intensities (Table 1 asymptotic):")
		for _, k := range names {
			pt := marks[k]
			fmt.Printf("  %-8s OI=%6.4f -> attainable %8.2f GFLOPS\n", k, pt.OI, pt.GFLOPS)
		}
		fmt.Println()
	}
}
