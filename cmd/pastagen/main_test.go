package main

import "testing"

func TestParseDims(t *testing.T) {
	dims, err := parseDims("4,5,6")
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 3 || dims[0] != 4 || dims[1] != 5 || dims[2] != 6 {
		t.Fatalf("dims = %v", dims)
	}
	dims, err = parseDims(" 10 , 20 ")
	if err != nil {
		t.Fatal(err)
	}
	if dims[0] != 10 || dims[1] != 20 {
		t.Fatalf("dims with spaces = %v", dims)
	}
	for _, bad := range []string{"", "a,b", "0,1", "-3,4", "1,2,99999999999999"} {
		if _, err := parseDims(bad); err == nil {
			t.Errorf("parseDims(%q): expected error", bad)
		}
	}
}

func TestParseModes(t *testing.T) {
	modes, err := parseModes("0,2")
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 2 || modes[0] != 0 || modes[1] != 2 {
		t.Fatalf("modes = %v", modes)
	}
	for _, bad := range []string{"", "x"} {
		if _, err := parseModes(bad); err == nil {
			t.Errorf("parseModes(%q): expected error", bad)
		}
	}
}
