// Command pastagen generates synthetic sparse tensors with the paper's
// two generators (§4.2) and writes them in the FROSTT .tns text format.
//
// Usage:
//
//	pastagen -gen kron -dims 65536,65536,65536 -nnz 1100000 -o regS.tns
//	pastagen -gen pl -dims 32768,32768,76 -sparse 0,1 -nnz 1000000 -o irrS.tns
//	pastagen -recipe s4 -nnz 100000 -o irrS-standin.tns   # a Table 3 recipe
//	pastagen -recipe deli -o deli.bten                    # fast binary output
//	pastagen -recipe deli -tiled -o deli.bten             # tiled v3 (out-of-core)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/gen"
	"repro/internal/tensor"
)

func main() {
	var (
		genKind = flag.String("gen", "kron", "generator: kron | pl")
		dimsArg = flag.String("dims", "", "comma-separated mode sizes, e.g. 1024,1024,1024")
		sparse  = flag.String("sparse", "", "comma-separated power-law modes (pl only)")
		nnz     = flag.Int("nnz", 100000, "target non-zero count")
		exp     = flag.Float64("exp", gen.DefaultExponent, "power-law exponent (pl only)")
		seed    = flag.Int64("seed", 1, "random seed (reproducible output)")
		recipe  = flag.String("recipe", "", "generate a Table 2/3 entry by ID or name (e.g. s4, irrS, deli)")
		out     = flag.String("o", "", "output path: .tns, .tns.gz, or .bten (default .tns to stdout)")
		binv1   = flag.Bool("binv1", false, "write .bten output in the legacy checksum-free v1 layout")
		tiled   = flag.Bool("tiled", false, "write .bten output in the tiled v3 layout (streamable tile-at-a-time)")
		tileNNZ = flag.Int("tile-nnz", tensor.DefaultTileNNZ, "target non-zeros per tile for -tiled output")
	)
	flag.Parse()

	var (
		x   *tensor.COO
		err error
	)
	switch {
	case *recipe != "":
		var e dataset.Entry
		e, err = dataset.ByID(*recipe)
		if err == nil {
			x, err = dataset.Materialize(e, *nnz, *seed)
		}
	case *genKind == "kron":
		dims, derr := parseDims(*dimsArg)
		if derr != nil {
			fail(derr)
		}
		x, err = gen.Kronecker(dims, *nnz, nil, rand.New(rand.NewSource(*seed)))
	case *genKind == "pl":
		dims, derr := parseDims(*dimsArg)
		if derr != nil {
			fail(derr)
		}
		modes, merr := parseModes(*sparse)
		if merr != nil {
			fail(merr)
		}
		x, err = gen.PowerLaw(gen.PowerLawConfig{
			Dims: dims, SparseModes: modes, Exponent: *exp, NNZ: *nnz,
		}, rand.New(rand.NewSource(*seed)))
	default:
		fail(fmt.Errorf("unknown generator %q (want kron or pl)", *genKind))
	}
	if err != nil {
		fail(err)
	}

	fmt.Fprintf(os.Stderr, "generated %v\n", x)
	if *out == "" {
		if err := tensor.WriteTNS(os.Stdout, x); err != nil {
			fail(err)
		}
		return
	}
	start := time.Now()
	if *tiled && *binv1 {
		fail(fmt.Errorf("pastagen: -tiled and -binv1 are mutually exclusive"))
	}
	if *tiled {
		if err := tensor.WriteFileTiled(*out, x, *tileNNZ); err != nil {
			fail(err)
		}
	} else if *binv1 {
		if !strings.HasSuffix(*out, ".bten") {
			fail(fmt.Errorf("pastagen: -binv1 requires a .bten output path"))
		}
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		if err := tensor.WriteBinaryV1(f, x); err != nil {
			f.Close()
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	} else if err := tensor.WriteFile(*out, x); err != nil {
		fail(err)
	}
	elapsed := time.Since(start)
	info, err := os.Stat(*out)
	if err != nil {
		fail(err)
	}
	mb := float64(info.Size()) / 1e6
	fmt.Fprintf(os.Stderr, "wrote %s: %.2f MB in %v (%.1f MB/s)\n",
		*out, mb, elapsed.Round(time.Millisecond), mb/elapsed.Seconds())
}

func parseDims(s string) ([]tensor.Index, error) {
	if s == "" {
		return nil, fmt.Errorf("pastagen: -dims is required (e.g. -dims 1024,1024,1024)")
	}
	parts := strings.Split(s, ",")
	dims := make([]tensor.Index, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(strings.TrimSpace(p), 10, 32)
		if err != nil || v == 0 {
			return nil, fmt.Errorf("pastagen: bad dimension %q", p)
		}
		dims[i] = tensor.Index(v)
	}
	return dims, nil
}

func parseModes(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("pastagen: -sparse is required for the power-law generator (e.g. -sparse 0,1)")
	}
	parts := strings.Split(s, ",")
	modes := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("pastagen: bad mode %q", p)
		}
		modes[i] = v
	}
	return modes, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
