// Command contraction demonstrates the sparse × sparse operations the
// paper's §7 lists as upcoming suite additions: general tensor
// contraction (a hash join over the contracted modes), the fully sparse
// inner product, and the tensor-times-sparse-vector product — all
// implemented in this reproduction as extensions.
package main

import (
	"fmt"
	"log"

	pasta "repro"
)

func main() {
	rng := pasta.GenerateSeeded(17)

	// Two graph-like tensors sharing a "user" dimension: interactions
	// X(user, item, time) and attributes Y(user, tag).
	x, err := pasta.PowerLaw(pasta.PowerLawConfig{
		Dims:        []pasta.Index{5000, 8000, 32},
		SparseModes: []int{0, 1},
		NNZ:         40_000,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	y, err := pasta.PowerLaw(pasta.PowerLawConfig{
		Dims:        []pasta.Index{5000, 300},
		SparseModes: []int{0},
		NNZ:         15_000,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("X = %v\nY = %v\n\n", x, y)

	// Contract the shared user mode: Z(item, time, tag) aggregates item
	// activity by tag.
	z, err := pasta.Contract(x, y, []int{0}, []int{0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Z = X ×_user Y = %v\n", z)
	fmt.Printf("   (item, time, tag) co-occurrence tensor, density %.3g\n\n", z.Density())

	// Sparse inner product of X with a perturbed copy: similarity score.
	x2 := x.Clone()
	for i := range x2.Vals {
		x2.Vals[i] *= 0.5
	}
	ip, err := pasta.InnerProduct(x, x2)
	if err != nil {
		log.Fatal(err)
	}
	var selfIP float64
	for _, v := range x.Vals {
		selfIP += float64(v) * float64(v)
	}
	fmt.Printf("<X, X/2> = %.4f (exactly half of <X, X> = %.4f)\n\n", ip, selfIP)

	// Tensor-times-sparse-vector: project onto a handful of hot users.
	hot := []pasta.Index{0, 1, 2, 3, 4}
	weights := []pasta.Value{5, 4, 3, 2, 1}
	proj, err := pasta.SpTtv(x, hot, weights, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SpTtv over %d hot users: %v\n", len(hot), proj)

	// Cross-check one coordinate against the dense Ttv kernel.
	dense := pasta.NewVector(int(x.Dim(0)))
	for i, ix := range hot {
		dense[ix] = weights[i]
	}
	want, err := pasta.Ttv(x, dense, 0)
	if err != nil {
		log.Fatal(err)
	}
	wm := want.ToMap()
	gm := proj.ToMap()
	worst := 0.0
	for k, wv := range wm {
		d := float64(gm[k] - wv)
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	fmt.Printf("max |SpTtv - dense Ttv| over stored outputs = %.2e\n", worst)
}
