// Command gpu runs the suite's GPU kernels on the simulated CUDA device
// (internal/gpusim) and cross-checks every result against the sequential
// CPU reference — the functional-correctness half of the paper's GPU
// story (timing for the P100/V100 platforms comes from the analytic
// model; see cmd/pastabench -exp fig6).
package main

import (
	"fmt"
	"log"
	"math"

	pasta "repro"
)

func main() {
	rng := pasta.GenerateSeeded(21)
	dev := pasta.NewDevice("sim-gpu", 0) // 0 → one SM per host core
	fmt.Printf("device: %s with %d SMs (simulated)\n\n", dev.Name, dev.SMs)

	x, err := pasta.PowerLaw(pasta.PowerLawConfig{
		Dims:        []pasta.Index{5000, 5000, 64},
		SparseModes: []int{0, 1},
		NNZ:         100_000,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tensor: %v\n\n", x)

	// Ts on GPU vs CPU.
	ts, err := pasta.PrepareTs(x, 2.5, pasta.OpMul)
	if err != nil {
		log.Fatal(err)
	}
	cpuOut := append([]pasta.Value(nil), ts.ExecuteSeq().Vals...)
	gpuOut := ts.ExecuteGPU(dev)
	report("Ts (1 thread / non-zero)", maxDiff(cpuOut, gpuOut.Vals))

	// Ttv on GPU: one thread per fiber.
	v := pasta.RandomVector(int(x.Dim(2)), rng)
	ttv, err := pasta.PrepareTtv(x, 2)
	if err != nil {
		log.Fatal(err)
	}
	seq, err := ttv.ExecuteSeq(v)
	if err != nil {
		log.Fatal(err)
	}
	cpuOut = append([]pasta.Value(nil), seq.Vals...)
	g, err := ttv.ExecuteGPU(dev, v)
	if err != nil {
		log.Fatal(err)
	}
	report("Ttv (1 thread / fiber)", maxDiff(cpuOut, g.Vals))

	// Mttkrp on GPU: 2-D blocks (x=columns, y=non-zeros) + atomicAdd.
	mats := make([]*pasta.Matrix, 3)
	for n := range mats {
		mats[n] = pasta.NewMatrix(int(x.Dim(n)), pasta.DefaultR)
		mats[n].Randomize(rng)
	}
	mk, err := pasta.PrepareMttkrp(x, 0, pasta.DefaultR)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := mk.ExecuteSeq(mats)
	if err != nil {
		log.Fatal(err)
	}
	cpuOut = append([]pasta.Value(nil), ref.Data...)
	gm, err := mk.ExecuteGPU(dev, mats)
	if err != nil {
		log.Fatal(err)
	}
	report("Mttkrp (atomicAdd output)", maxDiff(cpuOut, gm.Data))

	// HiCOO-Mttkrp on GPU: one tensor block per CUDA block (§3.4.2).
	h := pasta.ToHiCOO(x, pasta.DefaultBlockBits)
	mkh, err := pasta.PrepareMttkrpHiCOO(h, 0, pasta.DefaultR)
	if err != nil {
		log.Fatal(err)
	}
	gh, err := mkh.ExecuteGPU(dev, mats)
	if err != nil {
		log.Fatal(err)
	}
	report("HiCOO-Mttkrp (block / CUDA block)", maxDiff(cpuOut, gh.Data))

	k, b, th := dev.Counters()
	fmt.Printf("\ndevice counters: %d kernel launches, %d blocks, %d threads executed\n", k, b, th)
}

func maxDiff(a, b []pasta.Value) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func report(name string, diff float64) {
	status := "OK"
	if diff > 1e-2 {
		status = "MISMATCH"
	}
	fmt.Printf("%-36s max |gpu - cpu| = %.3e  [%s]\n", name, diff, status)
}
