// Command formats compares the suite's sparse tensor formats — COO,
// HiCOO, gHiCOO, and CSF — on tensors across the density spectrum,
// reproducing the storage trade-off that motivates gHiCOO (§3.3): HiCOO
// compresses clustered tensors but loses to COO on hyper-sparse ones
// whose blocks hold a single non-zero.
package main

import (
	"fmt"
	"log"

	pasta "repro"
)

func main() {
	rng := pasta.GenerateSeeded(3)

	type testcase struct {
		name string
		x    *pasta.COO
	}
	var cases []testcase

	// Clustered: small cube, high density.
	cases = append(cases, testcase{"clustered (128³, d=1e-2)",
		pasta.RandomCOO([]pasta.Index{128, 128, 128}, 20000, rng)})

	// Power-law: irregular, like the paper's irrS.
	pl, err := pasta.PowerLaw(pasta.PowerLawConfig{
		Dims:        []pasta.Index{32000, 32000, 76},
		SparseModes: []int{0, 1},
		NNZ:         100_000,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	cases = append(cases, testcase{"power-law (32K²×76)", pl})

	// Hyper-sparse: like the paper's deli/nell1 regime.
	kr, err := pasta.Kronecker([]pasta.Index{1 << 20, 1 << 20, 1 << 20}, 100_000, nil, rng)
	if err != nil {
		log.Fatal(err)
	}
	cases = append(cases, testcase{"hyper-sparse Kronecker (1M³)", kr})

	fmt.Printf("%-30s %12s %12s %12s %12s %10s\n",
		"tensor", "COO", "HiCOO", "gHiCOO(-k)", "CSF", "blocks")
	for _, c := range cases {
		h := pasta.ToHiCOO(c.x, pasta.DefaultBlockBits)
		g := pasta.ToGHiCOOExceptMode(c.x, c.x.Order()-1, pasta.DefaultBlockBits)
		cs, err := pasta.ToCSF(c.x, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s %12d %12d %12d %12d %10d\n",
			c.name, c.x.StorageBytes(), h.StorageBytes(), g.StorageBytes(), cs.StorageBytes(), h.NumBlocks())
	}

	fmt.Println("\nblock-occupancy detail (HiCOO B=128):")
	for _, c := range cases {
		st := pasta.ToHiCOO(c.x, pasta.DefaultBlockBits).ComputeStats()
		fmt.Printf("%-30s mean nnz/block %8.2f  singleton blocks %6.1f%%  compression vs COO %5.2fx\n",
			c.name, st.MeanNNZPerBlock,
			100*float64(st.SingletonBlocks)/float64(st.NumBlocks), st.CompressionVsCOO)
	}

	// Block-size ablation on the clustered tensor.
	fmt.Println("\nHiCOO block-size ablation (clustered tensor):")
	for _, bits := range []uint8{4, 5, 6, 7, 8} {
		st := pasta.ToHiCOO(cases[0].x, bits).ComputeStats()
		fmt.Printf("  B=%3d: %8d bytes, %7d blocks, mean occupancy %6.2f\n",
			1<<bits, st.StorageBytes, st.NumBlocks, st.MeanNNZPerBlock)
	}
}
