// Command decomposition runs a CANDECOMP/PARAFAC decomposition (CP-ALS)
// on a synthetic tensor — the tensor method whose bottleneck kernel,
// Mttkrp, this benchmark suite exists to characterize (§2.5). It first
// recovers an exactly low-rank tensor, then factorizes a power-law
// tensor such as a recommender system would produce.
package main

import (
	"fmt"
	"log"

	pasta "repro"
)

func main() {
	rng := pasta.GenerateSeeded(7)

	// Part 1: an exactly rank-3 tensor must be recovered near-perfectly.
	fmt.Println("== recovering an exactly rank-3 tensor ==")
	dims := []int{30, 25, 20}
	truth := make([]*pasta.Matrix, 3)
	td := make([]pasta.Index, 3)
	for n, d := range dims {
		truth[n] = pasta.NewMatrix(d, 3)
		truth[n].Randomize(rng)
		td[n] = pasta.Index(d)
	}
	x := pasta.NewCOO(td, dims[0]*dims[1]*dims[2])
	idx := make([]pasta.Index, 3)
	for i := 0; i < dims[0]; i++ {
		for j := 0; j < dims[1]; j++ {
			for k := 0; k < dims[2]; k++ {
				idx[0], idx[1], idx[2] = pasta.Index(i), pasta.Index(j), pasta.Index(k)
				var v float64
				for r := 0; r < 3; r++ {
					v += float64(truth[0].At(i, r)) * float64(truth[1].At(j, r)) * float64(truth[2].At(k, r))
				}
				x.Append(idx, pasta.Value(v))
			}
		}
	}
	res, err := pasta.CPALS(x, 3, 100, 1e-8, 1, pasta.Dynamic())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rank-3 fit: %.6f after %d sweeps (lambda = %.3f %.3f %.3f)\n\n",
		res.Fit, res.Iters, res.Lambda[0], res.Lambda[1], res.Lambda[2])

	// Part 2: factorize a sparse power-law tensor (user × item × context).
	fmt.Println("== CP-ALS on a power-law recommender tensor ==")
	y, err := pasta.PowerLaw(pasta.PowerLawConfig{
		Dims:        []pasta.Index{2000, 3000, 40},
		SparseModes: []int{0, 1},
		NNZ:         50_000,
	}, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tensor: %v\n", y)
	for _, rank := range []int{4, 8, 16} {
		res, err := pasta.CPALS(y, rank, 25, 1e-5, 2, pasta.Dynamic())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rank %2d: fit %.4f in %d sweeps\n", rank, res.Fit, res.Iters)
	}

	// Part 3: Tucker decomposition via HOOI (TTM-chain bottleneck, §7).
	fmt.Println("\n== Tucker HOOI on a small dense-ish tensor ==")
	z := pasta.RandomCOO([]pasta.Index{40, 30, 20}, 6000, rng)
	tk, err := pasta.TuckerHOOI(z, []int{6, 5, 4}, 15, 1e-6, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core %v, fit %.4f in %d sweeps\n", tk.Core.Dims, tk.Fit, tk.Iters)
}
