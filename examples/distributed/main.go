// Command distributed runs the message-passing Mttkrp across simulated
// ranks (goroutines exchanging messages over a ring), demonstrating the
// §7 "distributed systems" extension: sharded non-zeros, a real ring
// allreduce with measured communication volume, and the alpha-beta model
// that prices it on a 100 Gb/s interconnect.
package main

import (
	"fmt"
	"log"

	pasta "repro"
)

func main() {
	rng := pasta.GenerateSeeded(5)
	x, err := pasta.Kronecker([]pasta.Index{4096, 4096, 4096}, 200_000, nil, rng)
	if err != nil {
		log.Fatal(err)
	}
	r := pasta.DefaultR
	mats := make([]*pasta.Matrix, x.Order())
	for n := range mats {
		mats[n] = pasta.NewMatrix(int(x.Dim(n)), r)
		mats[n].Randomize(rng)
	}
	fmt.Printf("tensor: %v, R=%d\n\n", x, r)

	// Single-node reference.
	ref, err := pasta.Mttkrp(x, mats, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%6s %14s %10s %16s %12s\n", "ranks", "comm bytes", "messages", "modeled comm", "max |err|")
	for _, p := range []int{1, 2, 4, 8, 16} {
		comm, err := pasta.NewComm(p)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pasta.DistMttkrp(comm, pasta.DefaultNetwork, x, mats, 0, r)
		if err != nil {
			log.Fatal(err)
		}
		var worst float64
		for i := range ref.Data {
			d := float64(res.Out.Data[i] - ref.Data[i])
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		_, msgs := comm.Stats()
		fmt.Printf("%6d %14d %10d %13.3fms %12.2e\n",
			p, res.CommBytes, msgs, res.ModeledCommSec*1e3, worst)
	}
	fmt.Println("\ncommunication grows as 2·|Ã|·(P-1)/P per rank — the ring allreduce volume;")
	fmt.Println("results match the single-node kernel to float32 reduction-order noise.")
}
