// Command powermethod demonstrates the tensor power method (§2.3), the
// application that motivates the Ttv kernel: it extracts the dominant
// rank-1 component of a sparse tensor by repeated tensor-times-vector
// chains, then deflates and extracts a second component.
package main

import (
	"fmt"
	"log"

	pasta "repro"
)

func main() {
	rng := pasta.GenerateSeeded(99)

	// A Kronecker tensor: heavy-tailed structure gives a pronounced
	// dominant component.
	x, err := pasta.Kronecker([]pasta.Index{1024, 1024, 1024}, 100_000, nil, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tensor: %v\n\n", x)

	r1, err := pasta.PowerMethod(x, 60, 1e-7, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("component 1: lambda = %.4f after %d iterations\n", r1.Lambda, r1.Iters)
	for n, v := range r1.Vectors {
		fmt.Printf("  |u%d| peak coordinate value %.4f\n", n, maxAbs(v))
	}

	// Deflate: subtract lambda·u∘v∘w at the stored non-zeros and iterate
	// again for the second component.
	y := x.Clone()
	idx := make([]pasta.Index, y.Order())
	for m := 0; m < y.NNZ(); m++ {
		y.Entry(m, idx)
		est := pasta.Value(r1.Lambda)
		for n := range idx {
			est *= r1.Vectors[n][idx[n]]
		}
		y.Vals[m] -= est
	}
	r2, err := pasta.PowerMethod(y, 60, 1e-7, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncomponent 2 (after deflation): lambda = %.4f after %d iterations\n", r2.Lambda, r2.Iters)
	if r2.Lambda < r1.Lambda {
		fmt.Println("spectrum decays as expected: lambda2 < lambda1")
	}

	// A TtvChain on its own: contract modes 1 and 2, keep mode 0.
	ones1 := pasta.NewVector(int(x.Dim(1)))
	ones2 := pasta.NewVector(int(x.Dim(2)))
	for i := range ones1 {
		ones1[i] = 1
	}
	for i := range ones2 {
		ones2[i] = 1
	}
	rowSums, err := pasta.TtvChain(x, []pasta.Vector{nil, ones1, ones2}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmode-0 marginal via TtvChain: max slice mass = %.4f\n", maxAbs(rowSums))
}

func maxAbs(v pasta.Vector) float64 {
	var m float64
	for _, x := range v {
		f := float64(x)
		if f < 0 {
			f = -f
		}
		if f > m {
			m = f
		}
	}
	return m
}
