// Command quickstart walks through the suite's public API: build a sparse
// tensor, convert it to HiCOO, and run all five benchmark kernels (Tew,
// Ts, Ttv, Ttm, Mttkrp) in both formats on the CPU.
package main

import (
	"fmt"
	"log"

	pasta "repro"
)

func main() {
	rng := pasta.GenerateSeeded(42)

	// A 512×512×512 tensor with ~200K non-zeros from the paper's
	// stochastic Kronecker generator (power-law structure, like regS).
	dims := []pasta.Index{512, 512, 512}
	x, err := pasta.Kronecker(dims, 200_000, nil, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tensor: %v\n", x)
	fmt.Printf("COO storage: %d bytes\n", x.StorageBytes())

	h := pasta.ToHiCOO(x, pasta.DefaultBlockBits)
	st := h.ComputeStats()
	fmt.Printf("HiCOO storage: %d bytes (%.2fx vs COO, %d blocks of B=%d)\n\n",
		st.StorageBytes, st.CompressionVsCOO, st.NumBlocks, h.BlockSize())

	// ---- Tew: element-wise addition with a same-pattern operand --------
	y := x.Clone()
	for i := range y.Vals {
		y.Vals[i] = 2
	}
	tew, err := pasta.PrepareTew(x, y, pasta.OpAdd)
	if err != nil {
		log.Fatal(err)
	}
	z := tew.ExecuteOMP(pasta.Dynamic())
	fmt.Printf("Tew  add : %d non-zeros, z[0] = %.4f (x[0]+2)\n", z.NNZ(), z.Vals[0])

	// ---- Ts: tensor-scalar multiply -------------------------------------
	ts, err := pasta.PrepareTs(x, 3, pasta.OpMul)
	if err != nil {
		log.Fatal(err)
	}
	s := ts.ExecuteOMP(pasta.Dynamic())
	fmt.Printf("Ts   mul : s[0] = %.4f (3·x[0])\n", s.Vals[0])

	// ---- Ttv: tensor-times-vector in every mode -------------------------
	for mode := 0; mode < x.Order(); mode++ {
		v := pasta.RandomVector(int(x.Dim(mode)), rng)
		plan, err := pasta.PrepareTtv(x, mode)
		if err != nil {
			log.Fatal(err)
		}
		out, err := plan.ExecuteOMP(v, pasta.Dynamic())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Ttv  mode %d: output order %d with %d non-zeros (MF fibers)\n",
			mode, out.Order(), out.NNZ())
	}

	// ---- Ttm: tensor-times-matrix (R=16) --------------------------------
	u := pasta.NewMatrix(int(x.Dim(2)), pasta.DefaultR)
	u.Randomize(rng)
	ttm, err := pasta.PrepareTtm(x, 2, pasta.DefaultR)
	if err != nil {
		log.Fatal(err)
	}
	sc, err := ttm.ExecuteOMP(u, pasta.Dynamic())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Ttm  mode 2: sCOO output with %d fibers × %d dense columns\n",
		sc.NumFibers(), sc.DenseSize())

	// ---- Mttkrp (the CP-decomposition bottleneck) ------------------------
	mats := make([]*pasta.Matrix, x.Order())
	for n := range mats {
		mats[n] = pasta.NewMatrix(int(x.Dim(n)), pasta.DefaultR)
		mats[n].Randomize(rng)
	}
	mk, err := pasta.PrepareMttkrp(x, 0, pasta.DefaultR)
	if err != nil {
		log.Fatal(err)
	}
	a, err := mk.ExecuteOMP(mats, pasta.Dynamic())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mttkrp mode 0: output Ã is %d×%d, Ã(0,0) = %.4f\n", a.Rows, a.Cols, a.At(0, 0))

	// ---- The same Mttkrp in HiCOO (Algorithm 2) --------------------------
	mkh, err := pasta.PrepareMttkrpHiCOO(h, 0, pasta.DefaultR)
	if err != nil {
		log.Fatal(err)
	}
	ah, err := mkh.ExecuteOMP(mats, pasta.Dynamic())
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for i := range a.Data {
		d := float64(a.Data[i] - ah.Data[i])
		if d < 0 {
			d = -d
		}
		if d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("HiCOO-Mttkrp agrees with COO-Mttkrp to %.2e\n", maxDiff)
}
