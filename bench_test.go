// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5), one testing.B benchmark per artifact, plus the
// ablations DESIGN.md calls out. Custom metrics carry the figures' units:
// GFLOPS (per kernel/format), bytes (storage tables), GB/s (roofline).
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=BenchmarkFigure7 -benchtime=1x
package pasta_test

import (
	"fmt"
	"sync"
	"testing"

	pasta "repro"
	"repro/internal/dataset"
	"repro/internal/hicoo"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// benchNNZ keeps stand-ins small enough for go test -bench=. to finish
// quickly; pastabench regenerates the same artifacts at larger scale.
const benchNNZ = 20000

var (
	tensorCache = map[string]*tensor.COO{}
	cacheMu     sync.Mutex
)

func benchTensor(b *testing.B, id string) *tensor.COO {
	b.Helper()
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if t, ok := tensorCache[id]; ok {
		return t
	}
	e, err := dataset.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	t, err := dataset.Materialize(e, benchNNZ, 7)
	if err != nil {
		b.Fatal(err)
	}
	tensorCache[id] = t
	return t
}

// benchEntries is the reduced dataset the figure benchmarks sweep: one
// representative per class (regular/irregular × small, real graph, real
// uniform, 4th order).
var benchEntries = []string{"vast", "choa", "deli", "nips4d", "regS", "irrS", "irr2S4d"}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

// BenchmarkTable1OI regenerates Table 1: the work/bytes/OI formulas
// evaluated on a concrete cubical tensor.
func BenchmarkTable1OI(b *testing.B) {
	x := benchTensor(b, "regS")
	cfg := metrics.DefaultConfig()
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := metrics.Workloads(x, cfg)
		for _, k := range roofline.Kernels {
			rp := roofline.Params{Order: ws[0].Order, M: ws[0].M, MF: ws[0].MF, Nb: ws[0].Nb, R: ws[0].R, BlockSize: ws[0].BlockSize}
			sink += roofline.OI(k, roofline.COO, rp) + roofline.OI(k, roofline.HiCOO, rp)
		}
	}
	b.ReportMetric(sink/float64(b.N), "OI-sum")
}

// BenchmarkTable2RealTensors regenerates Table 2: materializing the
// real-tensor stand-ins and measuring their density.
func BenchmarkTable2RealTensors(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range dataset.RealTensors() {
			x, err := dataset.Materialize(e, 2000, 7)
			if err != nil {
				b.Fatal(err)
			}
			if x.NNZ() == 0 {
				b.Fatal("empty stand-in")
			}
		}
	}
	b.ReportMetric(15, "tensors")
}

// BenchmarkTable3Synthetic regenerates Table 3: running both generators
// over the synthetic recipes.
func BenchmarkTable3Synthetic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, e := range dataset.Synthetic() {
			x, err := dataset.Materialize(e, 2000, 7)
			if err != nil {
				b.Fatal(err)
			}
			if x.NNZ() == 0 {
				b.Fatal("empty tensor")
			}
		}
	}
	b.ReportMetric(15, "tensors")
}

// BenchmarkTable4Platforms regenerates Table 4's derived quantities.
func BenchmarkTable4Platforms(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, p := range platform.All() {
			sink += p.EfficiencyDRAM() + roofline.RidgeOI(p)
		}
	}
	b.ReportMetric(float64(len(platform.All())), "platforms")
	_ = sink
}

// ---------------------------------------------------------------------------
// Figure 3: Roofline models
// ---------------------------------------------------------------------------

// BenchmarkFigure3Roofline builds the four Roofline curves with kernel
// marks (the ERT host measurement is exercised once outside the loop).
func BenchmarkFigure3Roofline(b *testing.B) {
	h := roofline.MeasureHost(true)
	b.ReportMetric(h.ERTDRAMGBs, "host-GB/s")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range platform.All() {
			c := roofline.BuildCurve(p, 1.0/32, 128, 32)
			if len(c.DRAM) == 0 {
				b.Fatal("empty curve")
			}
			if len(roofline.KernelMarks(p)) != 5 {
				b.Fatal("missing kernel marks")
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Figures 4-7: kernel GFLOPS per platform (modeled series + host-measured
// kernels)
// ---------------------------------------------------------------------------

var (
	workloadCache   = map[string][]perfmodel.Workload{}
	workloadCacheMu sync.Mutex
)

func benchWorkloads(b *testing.B, id string) []perfmodel.Workload {
	b.Helper()
	x := benchTensor(b, id)
	workloadCacheMu.Lock()
	defer workloadCacheMu.Unlock()
	if ws, ok := workloadCache[id]; ok {
		return ws
	}
	ws := metrics.Workloads(x, metrics.DefaultConfig())
	workloadCache[id] = ws
	return ws
}

func benchFigure(b *testing.B, platName string) {
	p, err := platform.ByName(platName)
	if err != nil {
		b.Fatal(err)
	}
	// Workload measurement is preprocessing: hoisted out of the timed loop
	// (and cached across the four figure benchmarks).
	all := make([][]perfmodel.Workload, len(benchEntries))
	for i, id := range benchEntries {
		all[i] = benchWorkloads(b, id)
	}
	var sumGF float64
	var points int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sumGF, points = 0, 0
		for _, ws := range all {
			for _, k := range roofline.Kernels {
				for _, f := range []roofline.Format{roofline.COO, roofline.HiCOO} {
					r := metrics.ModelFromWorkloads(p, ws, k, f)
					sumGF += r.GFLOPS
					points++
				}
			}
		}
	}
	b.ReportMetric(sumGF/float64(points), "avg-GFLOPS")
}

// BenchmarkFigure4Bluesky regenerates the Figure 4 series (Bluesky).
func BenchmarkFigure4Bluesky(b *testing.B) { benchFigure(b, "Bluesky") }

// BenchmarkFigure5Wingtip regenerates the Figure 5 series (Wingtip).
func BenchmarkFigure5Wingtip(b *testing.B) { benchFigure(b, "Wingtip") }

// BenchmarkFigure6DGX1P regenerates the Figure 6 series (DGX-1P).
func BenchmarkFigure6DGX1P(b *testing.B) { benchFigure(b, "DGX-1P") }

// BenchmarkFigure7DGX1V regenerates the Figure 7 series (DGX-1V).
func BenchmarkFigure7DGX1V(b *testing.B) { benchFigure(b, "DGX-1V") }

// ---------------------------------------------------------------------------
// Host-measured kernel benches: the wall-clock counterpart of the figure
// bars, one sub-benchmark per kernel × format, reporting GFLOPS.
// ---------------------------------------------------------------------------

// BenchmarkKernelsHost times every kernel × format on the host for a
// representative tensor (the measured rows of Figures 4-7).
func BenchmarkKernelsHost(b *testing.B) {
	x := benchTensor(b, "irrS")
	opt := parallel.Options{Schedule: parallel.Dynamic}
	r := pasta.DefaultR

	y := x.Clone()
	for i := range y.Vals {
		y.Vals[i] = 2
	}
	hx := hicoo.FromCOO(x, hicoo.DefaultBlockBits)
	hy := hicoo.FromCOO(y, hicoo.DefaultBlockBits)
	v := tensor.RandomVector(int(x.Dims[0]), pasta.GenerateSeeded(1))
	u := tensor.NewMatrix(int(x.Dims[0]), r)
	u.Randomize(pasta.GenerateSeeded(2))
	mats := make([]*tensor.Matrix, x.Order())
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(pasta.GenerateSeeded(int64(n)))
	}

	run := func(name string, flops int64, body func()) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				body()
			}
			secs := b.Elapsed().Seconds() / float64(b.N)
			if secs > 0 {
				b.ReportMetric(float64(flops)/secs/1e9, "GFLOPS")
			}
		})
	}

	tew, err := pasta.PrepareTew(x, y, pasta.OpAdd)
	if err != nil {
		b.Fatal(err)
	}
	run("Tew/COO", tew.FlopCount(), func() { tew.ExecuteOMP(opt) })
	tewH, err := pasta.PrepareTewHiCOO(hx, hy, pasta.OpAdd)
	if err != nil {
		b.Fatal(err)
	}
	run("Tew/HiCOO", tewH.FlopCount(), func() { tewH.ExecuteOMP(opt) })

	ts, err := pasta.PrepareTs(x, 1.0001, pasta.OpMul)
	if err != nil {
		b.Fatal(err)
	}
	run("Ts/COO", ts.FlopCount(), func() { ts.ExecuteOMP(opt) })
	tsH, err := pasta.PrepareTsHiCOO(hx, 1.0001, pasta.OpMul)
	if err != nil {
		b.Fatal(err)
	}
	run("Ts/HiCOO", tsH.FlopCount(), func() { tsH.ExecuteOMP(opt) })

	ttv, err := pasta.PrepareTtv(x, 0)
	if err != nil {
		b.Fatal(err)
	}
	run("Ttv/COO", ttv.FlopCount(), func() { _, _ = ttv.ExecuteOMP(v, opt) })
	ttvH, err := pasta.PrepareTtvHiCOO(x, 0, hicoo.DefaultBlockBits)
	if err != nil {
		b.Fatal(err)
	}
	run("Ttv/HiCOO", ttvH.FlopCount(), func() { _, _ = ttvH.ExecuteOMP(v, opt) })

	ttm, err := pasta.PrepareTtm(x, 0, r)
	if err != nil {
		b.Fatal(err)
	}
	run("Ttm/COO", ttm.FlopCount(), func() { _, _ = ttm.ExecuteOMP(u, opt) })
	ttmH, err := pasta.PrepareTtmHiCOO(x, 0, r, hicoo.DefaultBlockBits)
	if err != nil {
		b.Fatal(err)
	}
	run("Ttm/HiCOO", ttmH.FlopCount(), func() { _, _ = ttmH.ExecuteOMP(u, opt) })

	mk, err := pasta.PrepareMttkrp(x, 0, r)
	if err != nil {
		b.Fatal(err)
	}
	run("Mttkrp/COO", mk.FlopCount(), func() { _, _ = mk.ExecuteOMP(mats, opt) })
	mkH, err := pasta.PrepareMttkrpHiCOO(hx, 0, r)
	if err != nil {
		b.Fatal(err)
	}
	run("Mttkrp/HiCOO", mkH.FlopCount(), func() { _, _ = mkH.ExecuteOMP(mats, opt) })
}

// BenchmarkKernelsGPUSim times the kernels on the functional GPU
// simulator (semantics check at scale; GPU GFLOPS come from the model).
func BenchmarkKernelsGPUSim(b *testing.B) {
	x := benchTensor(b, "regS")
	dev := pasta.NewDevice("bench-gpu", 0)
	ts, err := pasta.PrepareTs(x, 2, pasta.OpMul)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Ts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ts.ExecuteGPU(dev)
		}
	})
	ttv, err := pasta.PrepareTtv(x, 0)
	if err != nil {
		b.Fatal(err)
	}
	v := tensor.RandomVector(int(x.Dims[0]), pasta.GenerateSeeded(3))
	b.Run("Ttv", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = ttv.ExecuteGPU(dev, v)
		}
	})
}

// ---------------------------------------------------------------------------
// Ablations
// ---------------------------------------------------------------------------

// BenchmarkDistributedMttkrp runs the message-passing Mttkrp across rank
// counts, reporting the measured allreduce volume (§7 "distributed
// systems" extension).
func BenchmarkDistributedMttkrp(b *testing.B) {
	x := benchTensor(b, "regS")
	r := pasta.DefaultR
	mats := make([]*tensor.Matrix, x.Order())
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(pasta.GenerateSeeded(int64(n)))
	}
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", p), func(b *testing.B) {
			var commBytes int64
			for i := 0; i < b.N; i++ {
				c, err := pasta.NewComm(p)
				if err != nil {
					b.Fatal(err)
				}
				res, err := pasta.DistMttkrp(c, pasta.DefaultNetwork, x, mats, 0, r)
				if err != nil {
					b.Fatal(err)
				}
				commBytes = res.CommBytes
			}
			b.ReportMetric(float64(commBytes), "comm-bytes")
		})
	}
}

// BenchmarkAblationBlockSize sweeps the HiCOO block size (DESIGN.md §6).
func BenchmarkAblationBlockSize(b *testing.B) {
	x := benchTensor(b, "irrS")
	for _, bits := range []uint8{4, 6, 7, 8} {
		b.Run(fmt.Sprintf("B=%d", 1<<bits), func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				h := hicoo.FromCOO(x, bits)
				bytes = h.StorageBytes()
			}
			b.ReportMetric(float64(bytes), "bytes")
		})
	}
}

// BenchmarkAblationGHiCOO compares gHiCOO uncompressed-mode choices.
func BenchmarkAblationGHiCOO(b *testing.B) {
	x := benchTensor(b, "irrS")
	for mode := 0; mode < x.Order(); mode++ {
		b.Run(fmt.Sprintf("uncomp=%d", mode), func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				g := hicoo.FromCOOExceptMode(x, mode, hicoo.DefaultBlockBits)
				bytes = g.StorageBytes()
			}
			b.ReportMetric(float64(bytes), "bytes")
		})
	}
}

// BenchmarkAblationMttkrpStrategy compares the Mttkrp parallelization
// strategies: atomics, privatization, HiCOO blocks, CSF root-mode.
func BenchmarkAblationMttkrpStrategy(b *testing.B) {
	x := benchTensor(b, "irrS")
	r := pasta.DefaultR
	opt := parallel.Options{Schedule: parallel.Dynamic}
	mats := make([]*tensor.Matrix, x.Order())
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(pasta.GenerateSeeded(int64(n)))
	}
	p, err := pasta.PrepareMttkrp(x, 0, r)
	if err != nil {
		b.Fatal(err)
	}
	atomicOpt := opt
	atomicOpt.Strategy = pasta.StrategyAtomic
	b.Run("coo-atomic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = p.ExecuteOMP(mats, atomicOpt)
		}
	})
	b.Run("coo-privatized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = p.ExecuteOMPPrivatized(mats, opt)
		}
	})
	b.Run("coo-adaptive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = p.ExecuteOMP(mats, opt)
		}
		b.ReportMetric(float64(p.LastStrategy), "strategy")
	})
	h := hicoo.FromCOO(x, hicoo.DefaultBlockBits)
	hp, err := pasta.PrepareMttkrpHiCOO(h, 0, r)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("hicoo-blocks", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, _ = hp.ExecuteOMP(mats, opt)
		}
	})
	c, err := pasta.ToCSF(x, []int{0, 1, 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("csf-root", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.MttkrpRoot(mats, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("bcsf-balanced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.MttkrpRootBalanced(mats, opt, 0); err != nil {
				b.Fatal(err)
			}
		}
		st := c.ComputeTaskStats(0)
		b.ReportMetric(float64(st.Tasks), "tasks")
	})
}

// BenchmarkMultiGPUScaling runs the multi-device Mttkrp across 1-4
// simulated GPUs (§7's "multiple GPUs" extension).
func BenchmarkMultiGPUScaling(b *testing.B) {
	x := benchTensor(b, "regS")
	r := pasta.DefaultR
	mats := make([]*tensor.Matrix, x.Order())
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(pasta.GenerateSeeded(int64(n)))
	}
	p, err := pasta.PrepareMttkrp(x, 0, r)
	if err != nil {
		b.Fatal(err)
	}
	for _, nd := range []int{1, 2, 4} {
		devs := make([]*pasta.Device, nd)
		for i := range devs {
			devs[i] = pasta.NewDevice("multi", 4)
		}
		b.Run(fmt.Sprintf("devices=%d", nd), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := p.ExecuteMultiGPU(devs, mats); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSchedule compares OpenMP scheduling policies on the
// skewed-fiber Ttv workload.
func BenchmarkAblationSchedule(b *testing.B) {
	x := benchTensor(b, "deli")
	p, err := pasta.PrepareTtv(x, 1)
	if err != nil {
		b.Fatal(err)
	}
	v := tensor.RandomVector(int(x.Dims[1]), pasta.GenerateSeeded(4))
	for _, sched := range []parallel.Schedule{parallel.Static, parallel.Dynamic, parallel.Guided} {
		b.Run(sched.String(), func(b *testing.B) {
			opt := parallel.Options{Schedule: sched}
			for i := 0; i < b.N; i++ {
				_, _ = p.ExecuteOMP(v, opt)
			}
		})
	}
}

// BenchmarkAblationReordering measures how index reordering changes the
// Ttv gather locality and HiCOO block count (§3.2.1's reordering remark).
func BenchmarkAblationReordering(b *testing.B) {
	x := benchTensor(b, "deli")
	rng := pasta.GenerateSeeded(5)
	perms := map[string]*pasta.Reordering{
		"original":   pasta.ReorderIdentity(x.Dims),
		"random":     pasta.ReorderRandom(x.Dims, rng),
		"bydegree":   pasta.ReorderByDegree(x),
		"firsttouch": pasta.ReorderFirstTouch(x),
	}
	for _, name := range []string{"original", "random", "bydegree", "firsttouch"} {
		p := perms[name]
		y, err := p.Apply(x)
		if err != nil {
			b.Fatal(err)
		}
		h := hicoo.FromCOO(y, hicoo.DefaultBlockBits)
		tp, err := pasta.PrepareTtv(y, 1)
		if err != nil {
			b.Fatal(err)
		}
		v := p.ApplyToVector(tensor.RandomVector(int(x.Dims[1]), pasta.GenerateSeeded(6)), 1)
		b.Run(name, func(b *testing.B) {
			opt := parallel.Options{Schedule: parallel.Dynamic}
			for i := 0; i < b.N; i++ {
				if _, err := tp.ExecuteOMP(v, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(h.NumBlocks()), "hicoo-blocks")
		})
	}
}

// BenchmarkAblationFCOOSegments compares the F-COO segmented Ttv against
// the thread-per-fiber COO Ttv on the simulated GPU across segment sizes.
func BenchmarkAblationFCOOSegments(b *testing.B) {
	x := benchTensor(b, "deli") // skewed fibers: the case F-COO targets
	d := pasta.NewDevice("fcoo-bench", 0)
	v := tensor.RandomVector(int(x.Dims[1]), pasta.GenerateSeeded(8))
	tp, err := pasta.PrepareTtv(x, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("coo-thread-per-fiber", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tp.ExecuteGPU(d, v); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, seg := range []int{64, 256, 1024} {
		f, err := pasta.ToFCOO(x, 1, seg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("fcoo-seg=%d", seg), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.TtvGPU(d, v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFormatsConversion times the format converters themselves.
func BenchmarkFormatsConversion(b *testing.B) {
	x := benchTensor(b, "regS")
	b.Run("COO->HiCOO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hicoo.FromCOO(x, hicoo.DefaultBlockBits)
		}
	})
	b.Run("COO->FCOO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pasta.ToFCOO(x, 2, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("COO->gHiCOO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hicoo.FromCOOExceptMode(x, 2, hicoo.DefaultBlockBits)
		}
	})
	b.Run("COO->CSF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pasta.ToCSF(x, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
