// Package platform holds the Table 4 machine descriptions of the paper's
// four evaluation platforms — two Intel NUMA CPUs (Bluesky, Wingtip) and
// two NVIDIA GPUs (DGX-1P with P100, DGX-1V with V100) — plus a Host
// pseudo-platform describing the machine the suite actually runs on.
// The analytic performance model (internal/perfmodel) and the Roofline
// plots (internal/roofline) consume these parameters.
package platform

import (
	"fmt"
	"runtime"
)

// Kind distinguishes CPU and GPU platforms.
type Kind int

const (
	// CPU marks multicore CPU platforms (OpenMP kernels).
	CPU Kind = iota
	// GPU marks CUDA GPU platforms.
	GPU
)

func (k Kind) String() string {
	if k == GPU {
		return "GPU"
	}
	return "CPU"
}

// Platform captures the Table 4 parameters of one machine plus the
// ERT-calibrated obtainable bandwidths used by the Roofline model.
type Platform struct {
	Name      string
	Kind      Kind
	Processor string
	Microarch string
	FreqGHz   float64
	// Cores is the physical core (CUDA core) count; Sockets is the number
	// of NUMA nodes for CPUs (1 for GPUs).
	Cores   int
	Sockets int
	// PeakSPGFLOPS is the theoretical peak single-precision rate.
	PeakSPGFLOPS float64
	// LLCBytes is the last-level cache size.
	LLCBytes int64
	// MemBytes is main/global memory size.
	MemBytes int64
	MemType  string
	// MemBWGBs is the theoretical peak memory bandwidth (GB/s).
	MemBWGBs float64
	// ERTDRAMGBs is the obtainable DRAM/HBM bandwidth measured by
	// ERT-style micro-benchmarks (the "ERT-DRAM" line of Figure 3),
	// calibrated to the fractions such tools typically report.
	ERTDRAMGBs float64
	// ERTLLCGBs is the obtainable last-level-cache bandwidth (the
	// "ERT-LLC" line of Figure 3).
	ERTLLCGBs float64
	Compiler  string
}

// EfficiencyDRAM returns the obtainable fraction of theoretical bandwidth.
func (p *Platform) EfficiencyDRAM() float64 {
	if p.MemBWGBs == 0 {
		return 0
	}
	return p.ERTDRAMGBs / p.MemBWGBs
}

func (p *Platform) String() string {
	return fmt.Sprintf("%s (%s, %s, %.1f GFLOPS peak, %.0f GB/s DRAM)",
		p.Name, p.Kind, p.Processor, p.PeakSPGFLOPS, p.MemBWGBs)
}

const (
	mb = int64(1) << 20
	gb = int64(1) << 30
)

// Bluesky is the two-socket Skylake platform of Table 4.
var Bluesky = Platform{
	Name: "Bluesky", Kind: CPU,
	Processor: "Intel Xeon Gold 6126", Microarch: "Skylake",
	FreqGHz: 2.60, Cores: 24, Sockets: 2,
	PeakSPGFLOPS: 1000, LLCBytes: 19 * mb,
	MemBytes: 196 * gb, MemType: "DDR4", MemBWGBs: 256,
	ERTDRAMGBs: 205, ERTLLCGBs: 970,
	Compiler: "gcc 7.1.0",
}

// Wingtip is the four-socket Haswell platform of Table 4.
var Wingtip = Platform{
	Name: "Wingtip", Kind: CPU,
	Processor: "Intel Xeon E7-4850 v3", Microarch: "Haswell",
	FreqGHz: 2.20, Cores: 56, Sockets: 4,
	PeakSPGFLOPS: 2000, LLCBytes: 35 * mb,
	MemBytes: 2114 * gb, MemType: "DDR4", MemBWGBs: 273,
	ERTDRAMGBs: 198, ERTLLCGBs: 1450,
	Compiler: "gcc 5.5.0",
}

// DGX1P is the Pascal P100 platform of Table 4.
var DGX1P = Platform{
	Name: "DGX-1P", Kind: GPU,
	Processor: "NVIDIA Tesla P100", Microarch: "Pascal",
	FreqGHz: 1.48, Cores: 3584, Sockets: 1,
	PeakSPGFLOPS: 10600, LLCBytes: 3 * mb,
	MemBytes: 16 * gb, MemType: "HBM2", MemBWGBs: 732,
	ERTDRAMGBs: 549, ERTLLCGBs: 2000,
	Compiler: "CUDA Toolkit 9.1",
}

// DGX1V is the Volta V100 platform of Table 4.
var DGX1V = Platform{
	Name: "DGX-1V", Kind: GPU,
	Processor: "NVIDIA Tesla V100", Microarch: "Volta",
	FreqGHz: 1.53, Cores: 5120, Sockets: 1,
	PeakSPGFLOPS: 14900, LLCBytes: 6 * mb,
	MemBytes: 16 * gb, MemType: "HBM2", MemBWGBs: 900,
	ERTDRAMGBs: 792, ERTLLCGBs: 3200,
	Compiler: "CUDA Toolkit 9.0",
}

// All returns the paper's four platforms in Table 4 order.
func All() []*Platform {
	return []*Platform{&Bluesky, &Wingtip, &DGX1P, &DGX1V}
}

// ByName resolves a platform by (case-sensitive) name, including "host".
func ByName(name string) (*Platform, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	if name == "host" || name == "Host" {
		h := Host()
		return &h, nil
	}
	return nil, fmt.Errorf("platform: unknown platform %q (have Bluesky, Wingtip, DGX-1P, DGX-1V, host)", name)
}

// Host describes the machine the suite is running on. Peak and bandwidth
// are placeholders until calibrated by the ERT micro-benchmarks
// (roofline.MeasureHost overwrites them with measured values).
func Host() Platform {
	return Platform{
		Name: "host", Kind: CPU,
		Processor: runtime.GOARCH, Microarch: runtime.GOOS,
		Cores: runtime.NumCPU(), Sockets: 1,
		// Conservative defaults; MeasureHost replaces them.
		PeakSPGFLOPS: 50 * float64(runtime.NumCPU()),
		LLCBytes:     32 * mb,
		MemBytes:     8 * gb, MemType: "unknown",
		MemBWGBs: 20, ERTDRAMGBs: 16, ERTLLCGBs: 80,
		Compiler: runtime.Version(),
	}
}
