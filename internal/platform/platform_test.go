package platform

import "testing"

func TestTable4Entries(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("want 4 platforms, got %d", len(all))
	}
	names := []string{"Bluesky", "Wingtip", "DGX-1P", "DGX-1V"}
	for i, p := range all {
		if p.Name != names[i] {
			t.Fatalf("platform %d is %s, want %s", i, p.Name, names[i])
		}
	}
	// Table 4 values.
	if Bluesky.Cores != 24 || Bluesky.Sockets != 2 || Bluesky.FreqGHz != 2.60 {
		t.Fatal("Bluesky parameters wrong")
	}
	if Wingtip.Cores != 56 || Wingtip.Sockets != 4 || Wingtip.MemBWGBs != 273 {
		t.Fatal("Wingtip parameters wrong")
	}
	if DGX1P.Cores != 3584 || DGX1P.MemBWGBs != 732 || DGX1P.Microarch != "Pascal" {
		t.Fatal("DGX-1P parameters wrong")
	}
	if DGX1V.Cores != 5120 || DGX1V.MemBWGBs != 900 || DGX1V.LLCBytes != 6<<20 {
		t.Fatal("DGX-1V parameters wrong")
	}
}

func TestKinds(t *testing.T) {
	if Bluesky.Kind != CPU || Wingtip.Kind != CPU || DGX1P.Kind != GPU || DGX1V.Kind != GPU {
		t.Fatal("kinds wrong")
	}
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Fatal("Kind strings wrong")
	}
}

func TestEfficiencyDRAM(t *testing.T) {
	for _, p := range All() {
		e := p.EfficiencyDRAM()
		if e <= 0 || e >= 1 {
			t.Fatalf("%s: ERT fraction %v out of (0,1)", p.Name, e)
		}
	}
	var zero Platform
	if zero.EfficiencyDRAM() != 0 {
		t.Fatal("zero platform efficiency should be 0")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"Bluesky", "Wingtip", "DGX-1P", "DGX-1V"} {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("ByName(%s) = %v, %v", name, p, err)
		}
	}
	for _, host := range []string{"host", "Host"} {
		p, err := ByName(host)
		if err != nil || p.Name != "host" {
			t.Fatalf("ByName(%s) failed: %v", host, err)
		}
	}
	if _, err := ByName("bluesky"); err == nil {
		t.Fatal("ByName is case-sensitive; lowercase should fail")
	}
}

func TestHostDefaults(t *testing.T) {
	h := Host()
	if h.Cores < 1 || h.Kind != CPU || h.Name != "host" {
		t.Fatalf("host = %+v", h)
	}
	if h.PeakSPGFLOPS <= 0 || h.ERTDRAMGBs <= 0 {
		t.Fatal("host placeholders must be positive")
	}
}

func TestString(t *testing.T) {
	s := Bluesky.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
