package resilience

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/parallel"
)

func TestRunContainsDirectPanic(t *testing.T) {
	err := Run(Label{Kernel: "Tew", Format: "COO", Backend: "omp"}, func() error {
		panic("boom")
	})
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("err = %v (%T), want *KernelError", err, err)
	}
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic in chain", err)
	}
	if ke.Recovered != "boom" {
		t.Fatalf("Recovered = %v, want boom", ke.Recovered)
	}
	if len(ke.Stack) == 0 {
		t.Fatal("expected a captured stack")
	}
}

func TestRunContainsWorkerPanic(t *testing.T) {
	err := Run(Label{Kernel: "Ttv"}, func() error {
		return parallel.For(100, parallel.Options{Schedule: parallel.Dynamic, Chunk: 1, Threads: 4}, func(lo, _, _ int) {
			if lo >= 50 {
				panic("worker boom")
			}
		})
	})
	var ke *KernelError
	if !errors.As(err, &ke) {
		t.Fatalf("err = %v (%T), want *KernelError", err, err)
	}
	if !errors.Is(err, ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic in chain", err)
	}
	if ke.Recovered != "worker boom" {
		t.Fatalf("Recovered = %v, want the original panic value", ke.Recovered)
	}
	if len(ke.Stack) == 0 {
		t.Fatal("expected the worker goroutine's stack")
	}
}

func TestRunWrapsPlainError(t *testing.T) {
	base := errors.New("bad input")
	err := Run(Label{Kernel: "Ttm"}, func() error { return base })
	var ke *KernelError
	if !errors.As(err, &ke) || !errors.Is(err, base) {
		t.Fatalf("err = %v, want *KernelError wrapping the cause", err)
	}
	if got := Run(Label{}, func() error { return nil }); got != nil {
		t.Fatalf("nil error became %v", got)
	}
	// An already-typed error passes through unchanged.
	typed := &KernelError{Label: Label{Kernel: "X"}, Err: base}
	if got := Run(Label{Kernel: "Y"}, func() error { return typed }); got != error(typed) {
		t.Fatalf("typed error was re-wrapped: %v", got)
	}
}

func TestExecDeadlineEnforcedOnStall(t *testing.T) {
	const timeout = 60 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	release := make(chan struct{})
	start := time.Now()
	err, settled := Exec(ctx, Label{Kernel: "stall"}, func(context.Context) error {
		<-release // ignores its context entirely
		return nil
	})
	elapsed := time.Since(start)
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if elapsed > 2*timeout {
		t.Fatalf("Exec returned after %v, want <= %v", elapsed, 2*timeout)
	}
	close(release)
	select {
	case <-settled:
	case <-time.After(time.Second):
		t.Fatal("abandoned goroutine never settled")
	}
}

func TestExecFastPath(t *testing.T) {
	err, settled := Exec(context.Background(), Label{}, func(context.Context) error { return nil })
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	select {
	case <-settled:
	case <-time.After(time.Second):
		t.Fatal("settled not closed after fn returned")
	}
}

func TestCheckFinite(t *testing.T) {
	if err := CheckFinite([]float32{1, -2, 0}); err != nil {
		t.Fatalf("finite slice rejected: %v", err)
	}
	if err := CheckFinite([]float32{1, float32(math.NaN())}); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("NaN not detected: %v", err)
	}
	if err := CheckFinite([]float32{float32(math.Inf(1))}); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("Inf not detected: %v", err)
	}
}

func okRung(backend string) Rung {
	return Rung{Backend: backend, Exec: func(context.Context) error { return nil }}
}

func failRung(backend string) Rung {
	return Rung{Backend: backend, Exec: func(context.Context) error { return errors.New(backend + " failed") }}
}

func TestRunnerRecoversTransientFault(t *testing.T) {
	var calls atomic.Int32
	r := &Runner{}
	rep := r.Do(context.Background(), Trial{
		Label:   Label{Kernel: "Mttkrp"},
		Retries: 2,
		Rungs: []Rung{{Backend: "omp", Exec: func(context.Context) error {
			if calls.Add(1) == 1 {
				return errors.New("transient")
			}
			return nil
		}}},
	})
	if rep.Outcome != OutcomeRecovered || rep.Backend != "omp" || rep.Attempts != 2 {
		t.Fatalf("report = %+v, want recovered on omp after 2 attempts", rep)
	}
	if rep.String() != "recovered" {
		t.Fatalf("String() = %q", rep.String())
	}
}

func TestRunnerFallsBackAndVerifies(t *testing.T) {
	var verified atomic.Int32
	r := &Runner{}
	rep := r.Do(context.Background(), Trial{
		Label:   Label{Kernel: "Ttv"},
		Retries: 1,
		Rungs:   []Rung{failRung("gpu"), okRung("serial")},
		Verify:  func() error { verified.Add(1); return nil },
	})
	if rep.Outcome != OutcomeFellBack || rep.Backend != "serial" || rep.FellFrom != "gpu" {
		t.Fatalf("report = %+v, want fell-back:serial from gpu", rep)
	}
	if rep.Attempts != 3 { // 2 gpu attempts + 1 serial
		t.Fatalf("Attempts = %d, want 3", rep.Attempts)
	}
	if verified.Load() != 1 {
		t.Fatal("fallback result was not verified")
	}
	if rep.String() != "fell-back:serial" {
		t.Fatalf("String() = %q", rep.String())
	}
}

func TestRunnerVerifyRejectionIsTerminal(t *testing.T) {
	r := &Runner{}
	rep := r.Do(context.Background(), Trial{
		Label:  Label{Kernel: "Ttm"},
		Rungs:  []Rung{failRung("gpu"), okRung("serial")},
		Verify: func() error { return errors.New("mismatch vs reference") },
	})
	if rep.Outcome != OutcomeFailed || rep.Err == nil {
		t.Fatalf("report = %+v, want failed with error", rep)
	}
}

func TestRunnerCheckFailureIsTerminal(t *testing.T) {
	r := &Runner{}
	rep := r.Do(context.Background(), Trial{
		Label: Label{Kernel: "Tew"},
		Rungs: []Rung{okRung("omp"), okRung("serial")},
		Check: func() error { return CheckFinite([]float32{float32(math.NaN())}) },
	})
	if rep.Outcome != OutcomeFailed || !errors.Is(rep.Err, ErrNonFinite) {
		t.Fatalf("report = %+v, want failed with ErrNonFinite", rep)
	}
	if rep.Attempts != 1 {
		t.Fatalf("Attempts = %d: a data failure must not fall back", rep.Attempts)
	}
}

func TestRunnerExhaustsLadder(t *testing.T) {
	r := &Runner{}
	rep := r.Do(context.Background(), Trial{
		Label: Label{Kernel: "Ts"},
		Rungs: []Rung{failRung("gpu"), failRung("omp"), failRung("serial")},
	})
	if rep.Outcome != OutcomeFailed || !errors.Is(rep.Err, ErrExhausted) {
		t.Fatalf("report = %+v, want failed with ErrExhausted", rep)
	}
}

func TestRunnerTimeoutWithinTwiceDeadline(t *testing.T) {
	const timeout = 100 * time.Millisecond
	release := make(chan struct{})
	defer close(release)
	r := &Runner{DrainGrace: 20 * time.Millisecond}
	start := time.Now()
	rep := r.Do(context.Background(), Trial{
		Label:   Label{Kernel: "Mttkrp"},
		Timeout: timeout,
		Retries: 3, // must not matter: no retry after a deadline
		Rungs: []Rung{
			{Backend: "omp", Exec: func(context.Context) error { <-release; return nil }},
			okRung("serial"), // must not run: the budget is spent
		},
	})
	elapsed := time.Since(start)
	if rep.Outcome != OutcomeTimeout || !errors.Is(rep.Err, ErrDeadline) {
		t.Fatalf("report = %+v, want timeout with ErrDeadline", rep)
	}
	if elapsed > 2*timeout {
		t.Fatalf("trial took %v, want <= %v", elapsed, 2*timeout)
	}
	if rep.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1 (no retry, no fallback after deadline)", rep.Attempts)
	}
}

func TestRunnerBreakerOpensSkipsAndProbes(t *testing.T) {
	var gpuAttempts atomic.Int32
	r := &Runner{BreakerThreshold: 2, BreakerCooldown: 3}
	trial := Trial{
		Label: Label{Kernel: "Ttv"},
		Rungs: []Rung{
			{Backend: "gpu", Exec: func(context.Context) error {
				gpuAttempts.Add(1)
				return errors.New("gpu dead")
			}},
			okRung("serial"),
		},
	}
	// Trials 1-2 attempt gpu and fail it; the breaker opens at 2.
	for i := 0; i < 2; i++ {
		if rep := r.Do(context.Background(), trial); rep.Outcome != OutcomeFellBack {
			t.Fatalf("trial %d: %+v", i, rep)
		}
	}
	if !r.BreakerOpen("gpu") {
		t.Fatal("breaker should be open after 2 consecutive failures")
	}
	// Trials 3-5 skip gpu entirely (cooldown 3).
	for i := 0; i < 3; i++ {
		before := gpuAttempts.Load()
		rep := r.Do(context.Background(), trial)
		if rep.Outcome != OutcomeFellBack || gpuAttempts.Load() != before {
			t.Fatalf("cooldown trial %d attempted gpu: %+v", i, rep)
		}
	}
	// Trial 6 is the half-open probe: gpu attempted once, fails, re-opens.
	before := gpuAttempts.Load()
	r.Do(context.Background(), trial)
	if gpuAttempts.Load() != before+1 {
		t.Fatalf("half-open probe did not attempt gpu (attempts %d -> %d)", before, gpuAttempts.Load())
	}
	if !r.BreakerOpen("gpu") {
		t.Fatal("breaker should re-open after a failed probe")
	}
}

func TestRunnerNoRungs(t *testing.T) {
	r := &Runner{}
	if rep := r.Do(context.Background(), Trial{Label: Label{Kernel: "x"}}); rep.Outcome != OutcomeFailed {
		t.Fatalf("report = %+v", rep)
	}
}

func TestInjectorDeterministicFromSeed(t *testing.T) {
	a, b := NewInjector(42), NewInjector(42)
	for i := 0; i < 16; i++ {
		fa := a.ArmRandom(context.Background(), 10, 0)
		fb := b.ArmRandom(context.Background(), 10, 0)
		if fa != fb {
			t.Fatalf("draw %d: %v vs %v — same seed must give the same schedule", i, fa, fb)
		}
	}
	c := NewInjector(43)
	same := true
	for i := 0; i < 16; i++ {
		if a.ArmRandom(context.Background(), 10, 0) != c.ArmRandom(context.Background(), 10, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 16-draw schedule")
	}
}

func TestInjectorPanicOnNthCall(t *testing.T) {
	in := NewInjector(1)
	in.Arm(context.Background(), FaultPanic, 2, 0)
	in.chunkFault(0) // call 1: no fire
	fired := func() (fired bool) {
		defer func() { fired = recover() != nil }()
		in.chunkFault(0) // call 2: fires
		return false
	}()
	if !fired || in.Injected() != 1 {
		t.Fatalf("fired=%v injected=%d, want panic on exactly the 2nd call", fired, in.Injected())
	}
	in.chunkFault(0) // call 3: no fire
	if in.Injected() != 1 {
		t.Fatalf("injected=%d after call 3, want 1", in.Injected())
	}
}

func TestInjectorLaunchFailEveryCall(t *testing.T) {
	in := NewInjector(1)
	in.Arm(context.Background(), FaultLaunchFail, 0, 0)
	for i := 0; i < 3; i++ {
		if err := in.launchFault(); err == nil {
			t.Fatalf("launch %d did not fail under a persistent fault", i)
		}
	}
	if in.Injected() != 3 {
		t.Fatalf("injected = %d, want 3", in.Injected())
	}
	in.Disarm()
	if err := in.launchFault(); err != nil {
		t.Fatalf("disarmed injector still fired: %v", err)
	}
}

func TestInjectorStallBoundedByContext(t *testing.T) {
	in := NewInjector(1)
	ctx, cancel := context.WithCancel(context.Background())
	in.Arm(ctx, FaultStall, 0, 10*time.Second)
	done := make(chan struct{})
	start := time.Now()
	go func() {
		in.chunkFault(0)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("stalled worker did not unblock on context cancel")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("stall ran %v past cancel", elapsed)
	}
}
