package resilience

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Resilience events are rare by construction (a healthy run has none),
// so they count unconditionally rather than behind the hot-path gate.
var (
	ctrRetries      = obs.GetCounter("resilience.retries")
	ctrFallbacks    = obs.GetCounter("resilience.fallbacks")
	ctrBreakerTrips = obs.GetCounter("resilience.breaker_trips")
	ctrTimeouts     = obs.GetCounter("resilience.timeouts")
)

// Outcome classifies how a guarded trial ended.
type Outcome int

const (
	// OutcomeOK: the preferred backend succeeded on its first attempt.
	OutcomeOK Outcome = iota
	// OutcomeRecovered: the preferred backend failed transiently and a
	// retry on the same backend succeeded.
	OutcomeRecovered
	// OutcomeFellBack: a lower ladder rung produced the result, verified
	// against the reference when a Verify hook was given.
	OutcomeFellBack
	// OutcomeTimeout: the trial exceeded its deadline.
	OutcomeTimeout
	// OutcomeFailed: every rung failed (or the output failed validation).
	OutcomeFailed
	// OutcomeCancelled: the trial's context was cancelled outright (the
	// caller disconnected or the daemon is draining) — appended after
	// OutcomeFailed so existing outcome numbering is unchanged.
	OutcomeCancelled
)

func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeRecovered:
		return "recovered"
	case OutcomeFellBack:
		return "fell-back"
	case OutcomeTimeout:
		return "timeout"
	case OutcomeCancelled:
		return "cancelled"
	default:
		return "failed"
	}
}

// Rung is one backend on the degradation ladder.
type Rung struct {
	// Backend names the rung for reports and circuit breaking
	// ("gpu", "omp", "serial").
	Backend string
	// Exec runs the kernel on this backend. Cooperative implementations
	// thread ctx into parallel.Options.Ctx / gpusim.Device.SetContext;
	// non-cooperative ones are still bounded by Exec's goroutine race.
	Exec func(ctx context.Context) error
}

// Trial describes one guarded kernel invocation.
type Trial struct {
	Label Label
	// Timeout bounds the whole trial (all rungs and retries). Zero means
	// no deadline beyond the caller's ctx.
	Timeout time.Duration
	// Retries is how many extra same-rung attempts a transient fault
	// gets before the ladder falls to the next rung.
	Retries int
	// Backoff is the sleep before each retry, doubling per attempt.
	Backoff time.Duration
	// Rungs is the ladder, preferred backend first. At least one rung is
	// required.
	Rungs []Rung
	// Check validates the output after any successful attempt (e.g.
	// CheckFinite). A Check failure is terminal for the trial: bad data
	// from a clean run means the inputs — not the backend — are at
	// fault, so falling back would just recompute the same garbage.
	Check func() error
	// Verify validates a fallback rung's result (typically against the
	// serial reference). A Verify failure is terminal: a fallback that
	// disagrees with the reference must never be reported as a result.
	Verify func() error
}

// Report records how a trial ended.
type Report struct {
	Outcome Outcome
	// Backend that produced the accepted result (empty when none did).
	Backend string
	// FellFrom is the preferred backend when Outcome == OutcomeFellBack.
	FellFrom string
	// Attempts counts every Exec invocation across all rungs.
	Attempts int
	// Err is the terminal error for Timeout/Failed outcomes.
	Err error
	// Settled is closed once the last attempted kernel goroutine has
	// actually returned; after a timeout the caller must drain it before
	// reusing buffers the abandoned attempt may still write.
	Settled <-chan struct{}
}

// String renders the outcome for harness tables: "ok", "recovered",
// "fell-back:serial", "timeout", "failed".
func (r Report) String() string {
	if r.Outcome == OutcomeFellBack {
		return "fell-back:" + r.Backend
	}
	return r.Outcome.String()
}

// breaker is a count-based circuit breaker for one backend.
type breaker struct {
	consecFails int
	open        bool
	cooldown    int // trials left to skip while open
}

// Runner executes trials with per-backend circuit breaking. The zero
// value is usable; breakers populate lazily.
type Runner struct {
	// BreakerThreshold is the consecutive-failure count that opens a
	// backend's breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is how many trials skip an open backend before a
	// half-open probe is allowed through (default 8).
	BreakerCooldown int
	// DrainGrace bounds how long a timed-out trial waits for its
	// abandoned kernel goroutine to return before reporting (default
	// 100ms). Cooperative kernels settle almost immediately; the grace
	// keeps stragglers from racing the caller's next use of the output
	// buffers.
	DrainGrace time.Duration

	mu       sync.Mutex
	breakers map[string]*breaker
}

func (r *Runner) threshold() int {
	if r.BreakerThreshold > 0 {
		return r.BreakerThreshold
	}
	return 3
}

func (r *Runner) cooldown() int {
	if r.BreakerCooldown > 0 {
		return r.BreakerCooldown
	}
	return 8
}

func (r *Runner) drainGrace() time.Duration {
	if r.DrainGrace > 0 {
		return r.DrainGrace
	}
	return 100 * time.Millisecond
}

// admit reports whether the backend's breaker lets an attempt through.
// An open breaker counts down its cooldown on each skip and then admits
// a single half-open probe.
func (r *Runner) admit(backend string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.breakers == nil {
		r.breakers = make(map[string]*breaker)
	}
	b := r.breakers[backend]
	if b == nil {
		b = &breaker{}
		r.breakers[backend] = b
	}
	if !b.open {
		return true
	}
	if b.cooldown > 0 {
		b.cooldown--
		return false
	}
	// Half-open: admit one probe; record() re-opens on failure.
	return true
}

// record feeds an attempt result into the backend's breaker.
func (r *Runner) record(backend string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[backend]
	if b == nil {
		return
	}
	if ok {
		b.consecFails = 0
		b.open = false
		return
	}
	b.consecFails++
	if b.consecFails >= r.threshold() {
		if !b.open {
			ctrBreakerTrips.Inc()
			obs.Emit("breaker.open", backend, obs.PhaseFallback, -1)
		}
		b.open = true
		b.cooldown = r.cooldown()
	}
}

// BreakerOpen reports whether the backend's breaker is currently open
// (for harness diagnostics).
func (r *Runner) BreakerOpen(backend string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.breakers[backend]
	return b != nil && b.open
}

// Do executes one trial down the ladder and always returns a Report —
// never panics, never hangs past the deadline. The walk:
//
//   - The trial deadline (Trial.Timeout under the caller's ctx) covers
//     all rungs and retries; expiry is terminal with OutcomeTimeout.
//   - A rung whose breaker is open is skipped (its cooldown ticks).
//   - A transient failure (panic, launch error) retries the same rung
//     up to Retries times with doubling Backoff, then falls through.
//   - A success on rung 0 is OK (or Recovered after retries); a success
//     lower down runs Verify and is FellBack, or fails the trial when
//     Verify rejects it.
//   - Check runs after every accepted attempt; its failure is terminal.
func (r *Runner) Do(ctx context.Context, t Trial) Report {
	if len(t.Rungs) == 0 {
		return Report{Outcome: OutcomeFailed, Err: fmt.Errorf("resilience: trial %s has no rungs", t.Label)}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := func() {}
	if t.Timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, t.Timeout)
	}
	defer cancel()

	rep := Report{}
	var lastErr error
	for i, rung := range t.Rungs {
		if !r.admit(rung.Backend) {
			lastErr = fmt.Errorf("%w: backend %s", ErrBreakerOpen, rung.Backend)
			continue
		}
		label := t.Label
		label.Backend = rung.Backend
		backoff := t.Backoff
		for attempt := 0; attempt <= t.Retries; attempt++ {
			if attempt > 0 && backoff > 0 {
				select {
				case <-time.After(backoff):
				case <-ctx.Done():
				}
				backoff *= 2
			}
			if ctx.Err() != nil {
				return r.ctxReport(rep, label, ctx)
			}
			if attempt > 0 {
				ctrRetries.Inc()
			}
			rep.Attempts++
			err, settled := Exec(ctx, label, rung.Exec)
			rep.Settled = settled
			if err == nil {
				r.record(rung.Backend, true)
				return r.accept(rep, t, i, rung.Backend, attempt)
			}
			lastErr = err
			cancelled := IsCancelled(err)
			if !cancelled {
				// A cancellation says nothing about the backend's
				// health, so it must not feed the circuit breaker — an
				// impatient client walking away three times would trip
				// a perfectly good backend.
				r.record(rung.Backend, false)
			}
			if cancelled || errors.Is(err, ErrDeadline) {
				// A deadline (or cancellation) is a trial-level budget,
				// not a rung-level one: retrying or falling back would
				// start more work nobody is waiting for. Drain the
				// straggler briefly so it stops touching shared
				// buffers, then report.
				r.drain(settled)
				rep.Err = err
				if cancelled {
					rep.Outcome = OutcomeCancelled
				} else {
					ctrTimeouts.Inc()
					rep.Outcome = OutcomeTimeout
				}
				return rep
			}
			// Transient fault (panic, launch failure): retry this rung.
		}
	}
	rep.Outcome = OutcomeFailed
	rep.Err = fmt.Errorf("%w: %s: %w", ErrExhausted, t.Label, lastErr)
	return rep
}

// accept finalizes a successful attempt: output validation first, then
// fallback verification when the success came from a lower rung.
func (r *Runner) accept(rep Report, t Trial, rungIdx int, backend string, attempt int) Report {
	rep.Backend = backend
	if t.Check != nil {
		if err := t.Check(); err != nil {
			rep.Outcome = OutcomeFailed
			rep.Err = wrap(t.Label, err)
			return rep
		}
	}
	switch {
	case rungIdx == 0 && attempt == 0:
		rep.Outcome = OutcomeOK
	case rungIdx == 0:
		rep.Outcome = OutcomeRecovered
	default:
		if t.Verify != nil {
			if err := t.Verify(); err != nil {
				rep.Outcome = OutcomeFailed
				rep.Err = wrap(t.Label, fmt.Errorf("fallback result rejected: %w", err))
				return rep
			}
		}
		rep.Outcome = OutcomeFellBack
		rep.FellFrom = t.Rungs[0].Backend
		ctrFallbacks.Inc()
		obs.Emit("fallback", t.Label.String(), obs.PhaseFallback, -1,
			obs.Attr{Key: "from", Val: rep.FellFrom},
			obs.Attr{Key: "to", Val: backend})
	}
	return rep
}

// ctxReport closes out a trial whose context expired between attempts,
// classifying a deadline (timeout) apart from an outright cancel.
func (r *Runner) ctxReport(rep Report, label Label, ctx context.Context) Report {
	r.drain(rep.Settled)
	rep.Err = &KernelError{Label: label, Err: ctxTrialErr(ctx)}
	if errors.Is(ctx.Err(), context.Canceled) {
		rep.Outcome = OutcomeCancelled
		return rep
	}
	ctrTimeouts.Inc()
	rep.Outcome = OutcomeTimeout
	return rep
}

// drain waits up to DrainGrace for an abandoned kernel goroutine.
func (r *Runner) drain(settled <-chan struct{}) {
	if settled == nil {
		return
	}
	select {
	case <-settled:
	case <-time.After(r.drainGrace()):
	}
}
