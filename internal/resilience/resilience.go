// Package resilience is the suite's fault-tolerant trial-execution
// runtime. Benchmark harnesses sweep many kernel × format × backend ×
// thread-count combinations in one process; a single panicking kernel,
// wedged launch, or non-finite output must fail that one trial — with a
// typed, attributable error — and never the whole sweep.
//
// The runtime has four layers:
//
//  1. Panic containment: Run converts any panic raised by a kernel (or
//     re-raised from a parallel.For worker / gpusim block worker) into a
//     typed *KernelError carrying the trial label, the recovered value,
//     and the worker stack.
//  2. Deadlines: Exec enforces a context deadline even on kernels that
//     never check their context (the stall case) by running the kernel
//     on its own goroutine and abandoning it when the deadline wins the
//     race. Cooperative kernels (parallel.Options.Ctx,
//     gpusim.Device.SetContext) return parallel.ErrDeadline promptly on
//     their own.
//  3. Graceful degradation: Runner.Do walks a backend ladder (typically
//     GPU-sim → OMP → serial), retrying transient faults with backoff,
//     circuit-breaking backends that fail repeatedly, and verifying any
//     fallback result before reporting it.
//  4. Fault injection: Injector deterministically arms worker panics,
//     stalls, and launch failures so the chaos tests can drive every
//     recovery path on demand.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime/debug"

	"repro/internal/parallel"
)

// Sentinel errors of the failure taxonomy. ErrDeadline aliases
// parallel.ErrDeadline so errors.Is matches whether the deadline was
// detected cooperatively inside a loop or by Exec's race.
var (
	// ErrPanic marks a contained kernel panic.
	ErrPanic = errors.New("resilience: kernel panicked")
	// ErrDeadline marks a trial that exceeded its deadline.
	ErrDeadline = parallel.ErrDeadline
	// ErrNonFinite marks an output that failed the finite scan (NaN or
	// Inf — e.g. an element-wise division that hit a zero denominator).
	ErrNonFinite = errors.New("resilience: non-finite value in kernel output")
	// ErrExhausted marks a trial whose every ladder rung failed.
	ErrExhausted = errors.New("resilience: all backends exhausted")
	// ErrBreakerOpen marks a rung skipped because its backend's circuit
	// breaker is open.
	ErrBreakerOpen = errors.New("resilience: circuit breaker open")
	// ErrUnsupported marks a (kernel, format, backend) combination with no
	// registered implementation — a lookup failure, not a runtime fault.
	ErrUnsupported = errors.New("resilience: kernel variant not registered")
	// ErrCancelled marks a trial abandoned because its context was
	// cancelled outright (client disconnect, drain) rather than timing
	// out — the backend did nothing wrong, the caller walked away.
	ErrCancelled = errors.New("resilience: trial cancelled")
)

// IsCancelled reports whether err records an outright cancellation (as
// opposed to a deadline): ErrCancelled from Exec's race, or a
// context.Canceled cause threaded through a cooperative kernel's
// parallel.ErrDeadline.
func IsCancelled(err error) bool {
	return errors.Is(err, ErrCancelled) || errors.Is(err, context.Canceled)
}

// Label identifies the trial a failure belongs to in reports and error
// strings. Zero fields are simply omitted from the rendering.
type Label struct {
	Kernel  string // e.g. "Mttkrp"
	Format  string // e.g. "HiCOO"
	Backend string // e.g. "gpu"
}

func (l Label) String() string {
	s := l.Kernel
	if l.Format != "" {
		s += "/" + l.Format
	}
	if l.Backend != "" {
		s += "@" + l.Backend
	}
	if s == "" {
		return "kernel"
	}
	return s
}

// KernelError is the typed failure of one guarded kernel invocation.
type KernelError struct {
	Label     Label
	Err       error  // taxonomy sentinel or underlying cause
	Recovered any    // non-nil when a panic was contained
	Stack     []byte // stack of the panicking goroutine, when available
}

func (e *KernelError) Error() string {
	if e.Recovered != nil {
		return fmt.Sprintf("resilience: %s panicked: %v", e.Label, e.Recovered)
	}
	return fmt.Sprintf("resilience: %s failed: %v", e.Label, e.Err)
}

func (e *KernelError) Unwrap() error { return e.Err }

// Run executes fn with panic containment: any panic — including a
// *parallel.WorkerPanic re-raised from a worker goroutine — returns as a
// *KernelError wrapping ErrPanic instead of unwinding the process. A
// plain error return is wrapped with the label unless it already is a
// *KernelError.
func Run(label Label, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = asPanicError(label, r)
		}
	}()
	return wrap(label, fn())
}

// asPanicError converts a recovered panic value into a *KernelError,
// preserving the worker stack when the panic crossed a goroutine
// boundary as a *parallel.WorkerPanic.
func asPanicError(label Label, r any) *KernelError {
	ke := &KernelError{Label: label, Err: ErrPanic, Recovered: r}
	if wp, ok := r.(*parallel.WorkerPanic); ok {
		ke.Recovered = wp.Value
		ke.Stack = wp.Stack
	} else {
		ke.Stack = debug.Stack()
	}
	return ke
}

// wrap attaches the label to a non-nil error. Deadline errors keep
// ErrDeadline visible through Unwrap; existing *KernelError values pass
// through untouched.
func wrap(label Label, err error) error {
	if err == nil {
		return nil
	}
	var ke *KernelError
	if errors.As(err, &ke) {
		return err
	}
	return &KernelError{Label: label, Err: err}
}

// Exec runs fn under ctx with the deadline enforced even against a
// kernel that never checks its context: fn runs on its own goroutine and
// Exec returns a *KernelError wrapping ErrDeadline as soon as ctx
// expires. The second return is closed once fn has actually returned —
// immediately on the fast path, later when the goroutine was abandoned —
// so callers that share output buffers across trials can drain the
// straggler before reusing them.
func Exec(ctx context.Context, label Label, fn func(context.Context) error) (error, <-chan struct{}) {
	settled := make(chan struct{})
	res := make(chan error, 1) // buffered: an abandoned fn must not leak
	go func() {
		defer close(settled)
		res <- Run(label, func() error { return fn(ctx) })
	}()
	select {
	case err := <-res:
		return err, settled
	case <-ctx.Done():
		return &KernelError{Label: label, Err: ctxTrialErr(ctx)}, settled
	}
}

// ctxTrialErr classifies an expired trial context: a deadline keeps the
// historical ErrDeadline identity; an outright cancel reports
// ErrCancelled with the cancellation cause attached.
func ctxTrialErr(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.Canceled) {
		return fmt.Errorf("trial cancelled: %w (%w)", ErrCancelled, context.Cause(ctx))
	}
	return fmt.Errorf("trial deadline: %w", ErrDeadline)
}

// CheckFinite scans vals and returns ErrNonFinite (wrapped with the
// offending index) on the first NaN or Inf. It is the standard
// Trial.Check for kernels whose outputs must be finite.
func CheckFinite(vals []float32) error {
	for i, v := range vals {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return fmt.Errorf("%w: index %d is %v", ErrNonFinite, i, v)
		}
	}
	return nil
}
