package resilience

import (
	"context"
	"testing"

	"repro/internal/obs"
)

// TestChaosFallbackTrace drills the observability contract of the
// degradation ladder under an injected fault: a preferred rung that
// panics on the first attempt and on its single retry must surface in
// the trace as exactly one fallback span and in the counters as exactly
// one retry and one fallback — no double counting from the ladder's
// internal control flow. Run under -race this also exercises the
// tracer's concurrent record path against the Exec goroutine.
func TestChaosFallbackTrace(t *testing.T) {
	tr := obs.New()
	obs.Enable(tr)
	defer obs.Disable()
	before := obs.CounterSnapshot()

	gpuRuns := 0
	trial := Trial{
		Label:   Label{Kernel: "Mttkrp", Format: "COO", Backend: "gpu"},
		Retries: 1,
		Rungs: []Rung{
			{Backend: "gpu", Exec: func(context.Context) error {
				gpuRuns++
				panic("injected device fault")
			}},
			{Backend: "serial", Exec: func(context.Context) error { return nil }},
		},
	}
	var r Runner
	rep := r.Do(context.Background(), trial)
	if rep.Outcome != OutcomeFellBack || rep.Backend != "serial" || rep.FellFrom != "gpu" {
		t.Fatalf("report = %+v, want fell-back:serial from gpu", rep)
	}
	if gpuRuns != 2 {
		t.Fatalf("preferred rung ran %d times, want 2 (first attempt + one retry)", gpuRuns)
	}

	d := obs.DiffSnapshot(before, obs.CounterSnapshot())
	if d["resilience.retries"] != 1 {
		t.Fatalf("resilience.retries delta = %d, want exactly 1", d["resilience.retries"])
	}
	if d["resilience.fallbacks"] != 1 {
		t.Fatalf("resilience.fallbacks delta = %d, want exactly 1", d["resilience.fallbacks"])
	}
	if d["resilience.breaker_trips"] != 0 {
		t.Fatalf("two failures below the threshold of three tripped the breaker: %v", d)
	}

	var fallbackSpans int
	for _, s := range tr.Spans() {
		if s.Phase != obs.PhaseFallback || s.Name != "fallback" {
			continue
		}
		fallbackSpans++
		if !s.Instant {
			t.Errorf("fallback span recorded as interval, want instant")
		}
		attrs := map[string]string{}
		for _, a := range s.Attrs {
			attrs[a.Key] = a.Val
		}
		if attrs["from"] != "gpu" || attrs["to"] != "serial" {
			t.Errorf("fallback span attrs = %v, want from=gpu to=serial", attrs)
		}
	}
	if fallbackSpans != 1 {
		t.Fatalf("trace holds %d fallback spans, want exactly 1", fallbackSpans)
	}
}

// TestBreakerTripCounted opens a breaker and checks the trip is counted
// once on the closed→open transition, not on every subsequent failure.
func TestBreakerTripCounted(t *testing.T) {
	before := obs.CounterSnapshot()
	var r Runner   // threshold 3
	r.admit("gpu") // record only feeds breakers admit has created
	for i := 0; i < 5; i++ {
		r.record("gpu", false)
	}
	d := obs.DiffSnapshot(before, obs.CounterSnapshot())
	if d["resilience.breaker_trips"] != 1 {
		t.Fatalf("breaker_trips delta = %d, want 1", d["resilience.breaker_trips"])
	}
}
