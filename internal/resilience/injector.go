package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gpusim"
	"repro/internal/parallel"
)

// Fault is a failure mode the injector can arm.
type Fault int

const (
	// FaultNone disarms injection.
	FaultNone Fault = iota
	// FaultPanic panics inside a parallel.For chunk or gpusim block.
	FaultPanic
	// FaultStall blocks a worker past the trial deadline.
	FaultStall
	// FaultLaunchFail fails a gpusim launch before any block runs.
	FaultLaunchFail
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultPanic:
		return "panic"
	case FaultStall:
		return "stall"
	default:
		return "launch-fail"
	}
}

// Injector deterministically injects faults into the parallel and
// gpusim substrates through their hook points. One injector arms one
// fault at a time; the chaos tests re-arm it per scenario. All methods
// are safe for concurrent use with running kernels.
type Injector struct {
	rng *rand.Rand // seeded; only read under mu (ArmRandom)

	mu    sync.Mutex
	fault Fault
	nth   int64           // fire on the nth hook call, 1-based; 0 = every call
	stall time.Duration   // FaultStall block time (bounded by ctx)
	ctx   context.Context // unblocks armed stalls when done

	calls    atomic.Int64 // chunk/block hook invocations since Arm
	launches atomic.Int64 // launch hook invocations since Arm
	injected atomic.Int64 // faults actually fired since Arm
}

// NewInjector returns an injector whose ArmRandom draws are fully
// determined by seed, so a chaos run is reproducible from its -chaos-seed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Arm configures the next fault. nth selects which hook call fires
// (1-based); nth == 0 fires on every call — a persistent fault that
// retries cannot clear. ctx bounds any injected stall: the stall ends
// at min(stall, ctx done), so an abandoned stalled worker always
// unblocks once the caller cancels. Counters reset.
func (in *Injector) Arm(ctx context.Context, f Fault, nth int64, stall time.Duration) {
	if ctx == nil {
		ctx = context.Background()
	}
	in.mu.Lock()
	in.fault = f
	in.nth = nth
	in.stall = stall
	in.ctx = ctx
	in.mu.Unlock()
	in.calls.Store(0)
	in.launches.Store(0)
	in.injected.Store(0)
}

// ArmRandom arms a random fault in [FaultPanic, FaultLaunchFail] at a
// random call ordinal in [1, maxNth], drawn from the seeded stream.
func (in *Injector) ArmRandom(ctx context.Context, maxNth int64, stall time.Duration) Fault {
	if maxNth < 1 {
		maxNth = 1
	}
	in.mu.Lock()
	f := Fault(1 + in.rng.Intn(3))
	nth := 1 + in.rng.Int63n(maxNth)
	in.mu.Unlock()
	in.Arm(ctx, f, nth, stall)
	return f
}

// Disarm stops injecting without detaching installed hooks.
func (in *Injector) Disarm() { in.Arm(context.Background(), FaultNone, 0, 0) }

// Injected reports how many faults fired since the last Arm.
func (in *Injector) Injected() int64 { return in.injected.Load() }

// Install attaches the injector to the process-wide parallel.For chunk
// hook (the CPU-side injection point).
func (in *Injector) Install() { parallel.SetChunkHook(in.chunkFault) }

// Uninstall detaches the chunk hook.
func (in *Injector) Uninstall() { parallel.SetChunkHook(nil) }

// InstallDevice attaches the injector to a device's launch and block
// hooks (the GPU-side injection points).
func (in *Injector) InstallDevice(d *gpusim.Device) {
	d.SetLaunchHook(in.launchFault)
	d.SetBlockHook(in.blockFault)
}

// UninstallDevice detaches both device hooks.
func (in *Injector) UninstallDevice(d *gpusim.Device) {
	d.SetLaunchHook(nil)
	d.SetBlockHook(nil)
}

// snapshot reads the armed configuration consistently.
func (in *Injector) snapshot() (Fault, int64, time.Duration, context.Context) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fault, in.nth, in.stall, in.ctx
}

// chunkFault is the parallel.For hook: it fires panic/stall faults at
// chunk granularity on the armed ordinal.
func (in *Injector) chunkFault(worker int) {
	f, nth, stall, ctx := in.snapshot()
	if f != FaultPanic && f != FaultStall {
		return
	}
	n := in.calls.Add(1)
	if nth != 0 && n != nth {
		return
	}
	in.injected.Add(1)
	switch f {
	case FaultPanic:
		panic(fmt.Sprintf("resilience: injected panic (worker %d, call %d)", worker, n))
	case FaultStall:
		in.block(ctx, stall)
	}
}

// blockFault is the gpusim per-block hook; it shares the chunk
// counter so "the nth parallel unit" means the same thing on either
// backend.
func (in *Injector) blockFault(block int) { in.chunkFault(block) }

// launchFault is the gpusim launch hook: it fails the armed ordinal's
// launch before any block runs.
func (in *Injector) launchFault() error {
	f, nth, _, _ := in.snapshot()
	if f != FaultLaunchFail {
		return nil
	}
	n := in.launches.Add(1)
	if nth != 0 && n != nth {
		return nil
	}
	in.injected.Add(1)
	return fmt.Errorf("resilience: injected launch failure (launch %d)", n)
}

// block stalls for d but never outlives ctx, so a worker stalled past
// an abandoned trial's deadline still terminates once the caller
// cancels its chaos context.
func (in *Injector) block(ctx context.Context, d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}
