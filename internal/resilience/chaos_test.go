package resilience_test

// The chaos matrix: every variant the kernelreg registry knows — kernel
// × format × backend, including CSF and fCOO — is run under injected
// worker panics (transient and persistent), stalls past the trial
// deadline, and failed gpusim launches. The matrix enumerates
// kernelreg.All(), so registering a new variant chaos-covers it without
// editing this test. The invariant under test is the suite's robustness
// contract: an injected fault yields a typed error or a verified
// fallback result — never a process crash — and a trial that exceeds its
// deadline reports ErrDeadline within 2× the configured timeout.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/kernelreg"
	"repro/internal/parallel"
	"repro/internal/resilience"
	"repro/internal/tensor"
)

const (
	chaosDims     = 30
	chaosNNZ      = 2000
	chaosR        = 8
	chaosBits     = 3
	chaosSegSize  = 64 // small segments → many blocks → many fault sites
	chaosThreads  = 4
	chaosTol      = 2e-3
	chaosTimeout  = 250 * time.Millisecond
	chaosStallFor = 5 * time.Second // far past the deadline; ctx-bounded
)

func chaosOpt(ctx context.Context) parallel.Options {
	return parallel.Options{Ctx: ctx, Threads: chaosThreads, Schedule: parallel.Dynamic}
}

// chaosBench builds one scenario's workbench: a fresh tensor and config
// per scenario, so an attempt abandoned at the deadline can never write
// into a buffer a later scenario is reading.
func chaosBench() *kernelreg.Workbench {
	rng := rand.New(rand.NewSource(11))
	x := tensor.RandomCOO([]tensor.Index{chaosDims, chaosDims, chaosDims}, chaosNNZ, rng)
	return kernelreg.NewWorkbench(x, kernelreg.Config{
		R: chaosR, BlockBits: chaosBits, SegSize: chaosSegSize,
		Sched: parallel.Options{Threads: chaosThreads, Schedule: parallel.Dynamic},
	})
}

// TestChaosMatrix drives every registered variant through each fault
// mode and asserts the robustness contract.
func TestChaosMatrix(t *testing.T) {
	type faultCase struct {
		name  string
		fault resilience.Fault
		nth   int64 // 0 = every call (persistent)
		want  resilience.Outcome
	}
	for _, v := range kernelreg.All() {
		faults := []faultCase{
			{"panic-once", resilience.FaultPanic, 1, resilience.OutcomeRecovered},
			{"panic-persistent", resilience.FaultPanic, 0, resilience.OutcomeFellBack},
			{"stall", resilience.FaultStall, 1, resilience.OutcomeTimeout},
		}
		// Launch faults exist only on the simulated-device backends; OMP
		// and OOC run no gpusim launches, so the fault would never fire.
		if v.Backend == kernelreg.GPU || v.Backend == kernelreg.MultiGPU {
			faults = append(faults,
				faultCase{"launch-fail", resilience.FaultLaunchFail, 0, resilience.OutcomeFellBack})
		}
		for _, fc := range faults {
			v, fc := v, fc
			name := fmt.Sprintf("%s/%s/%s/%s", v.Kernel, v.Format, v.Backend, fc.name)
			t.Run(name, func(t *testing.T) {
				runChaosScenario(t, v, fc.fault, fc.nth, fc.want)
			})
		}
	}
}

func runChaosScenario(t *testing.T, v *kernelreg.Variant, fault resilience.Fault, nth int64, want resilience.Outcome) {
	wb := chaosBench()
	// The golden reference and both instances are built before any hook
	// is installed; prim and fall are separate instances so a straggler
	// abandoned on the primary rung cannot race the fallback's buffers.
	golden, err := wb.Reference(context.Background(), v.Kernel, 0)
	if err != nil {
		t.Fatalf("setup reference: %v", err)
	}
	prim, err := v.Prepare(wb, 0)
	if err != nil {
		t.Fatalf("setup primary: %v", err)
	}
	fall, err := v.Prepare(wb, 0)
	if err != nil {
		t.Fatalf("setup fallback: %v", err)
	}

	in := resilience.NewInjector(1)
	chaosCtx, cancel := context.WithCancel(context.Background())
	in.Arm(chaosCtx, fault, nth, chaosStallFor)
	in.Install()
	var devs []*gpusim.Device
	switch v.Backend {
	case kernelreg.GPU:
		devs = []*gpusim.Device{wb.Device()}
	case kernelreg.MultiGPU:
		devs = wb.Devices()
	}
	for _, d := range devs {
		in.InstallDevice(d)
	}
	defer func() {
		in.Uninstall()
		for _, d := range devs {
			in.UninstallDevice(d)
		}
		cancel() // unblock any still-stalled worker
	}()

	backend := v.Backend.String()
	runner := &resilience.Runner{DrainGrace: 50 * time.Millisecond}
	trial := resilience.Trial{
		Label:   v.Label(),
		Timeout: chaosTimeout,
		Retries: 2,
		Rungs: []resilience.Rung{
			{Backend: backend, Exec: prim.Run},
			{Backend: "serial", Exec: fall.Serial},
		},
		Verify: func() error {
			if dev := kernelreg.Compare(fall.Output(), golden); dev > chaosTol {
				return fmt.Errorf("fallback deviates %.2e from reference", dev)
			}
			return nil
		},
	}

	start := time.Now()
	rep := runner.Do(context.Background(), trial)
	elapsed := time.Since(start)

	if in.Injected() == 0 {
		t.Fatalf("fault %v never fired (report %+v)", fault, rep)
	}
	if rep.Outcome != want {
		t.Fatalf("outcome = %v (err %v), want %v", rep.Outcome, rep.Err, want)
	}
	switch want {
	case resilience.OutcomeTimeout:
		if !errors.Is(rep.Err, resilience.ErrDeadline) {
			t.Fatalf("timeout err = %v, want ErrDeadline in chain", rep.Err)
		}
		// The acceptance bound: ErrDeadline within 2× the configured
		// timeout (drain grace included well inside the margin).
		if elapsed > 2*chaosTimeout {
			t.Fatalf("deadline reported after %v, want <= %v", elapsed, 2*chaosTimeout)
		}
	case resilience.OutcomeFellBack:
		if rep.Backend != "serial" || rep.FellFrom != backend {
			t.Fatalf("report = %+v, want serial fallback from %s", rep, backend)
		}
	case resilience.OutcomeRecovered:
		if rep.Backend != backend {
			t.Fatalf("report = %+v, want recovery on %s", rep, backend)
		}
	}

	// Drain a stalled straggler before the next scenario reuses the
	// process-wide hook: cancel the chaos context and wait for the
	// abandoned attempt to settle.
	cancel()
	if rep.Settled != nil {
		select {
		case <-rep.Settled:
		case <-time.After(10 * time.Second):
			t.Fatal("abandoned attempt never settled after cancel")
		}
	}
}

// TestDivNonFiniteDetected is the Tew/Ts division regression: IEEE
// semantics make x/0 = ±Inf and 0/0 = NaN without any panic, so a
// division trial must catch non-finite outputs via its Check hook
// rather than report garbage as a result.
func TestDivNonFiniteDetected(t *testing.T) {
	dims := []tensor.Index{4, 4, 4}
	x := tensor.NewCOO(dims, 3)
	x.AppendIdx3(0, 0, 0, 1)
	x.AppendIdx3(1, 1, 1, 0)
	x.AppendIdx3(2, 2, 2, 5)
	y := x.Clone()
	y.Vals[0] = 2
	y.Vals[1] = 0 // 0/0 -> NaN
	y.Vals[2] = 0 // 5/0 -> +Inf

	t.Run("Tew", func(t *testing.T) {
		plan, err := core.PrepareTew(x, y, core.Div)
		if err != nil {
			t.Fatal(err)
		}
		r := &resilience.Runner{}
		rep := r.Do(context.Background(), resilience.Trial{
			Label: resilience.Label{Kernel: "Tew", Format: "COO", Backend: "omp"},
			Rungs: []resilience.Rung{{Backend: "omp", Exec: func(ctx context.Context) error {
				plan.ExecuteOMP(chaosOpt(ctx))
				return nil
			}}},
			Check: func() error { return resilience.CheckFinite(plan.Out.Vals) },
		})
		if rep.Outcome != resilience.OutcomeFailed || !errors.Is(rep.Err, resilience.ErrNonFinite) {
			t.Fatalf("report = %+v, want failed with ErrNonFinite", rep)
		}
	})

	t.Run("Ts", func(t *testing.T) {
		// Division by a zero scalar is rejected at prepare time.
		if _, err := core.PrepareTs(x, 0, core.Div); err == nil {
			t.Fatal("PrepareTs accepted division by zero")
		}
		// A finite divisor can still overflow float32 to +Inf; the trial
		// Check has to catch that.
		xb := x.Clone()
		xb.Vals[2] = 3e38
		plan, err := core.PrepareTs(xb, 1e-3, core.Div) // 3e38/1e-3 overflows
		if err != nil {
			t.Fatal(err)
		}
		r := &resilience.Runner{}
		rep := r.Do(context.Background(), resilience.Trial{
			Label: resilience.Label{Kernel: "Ts", Format: "COO", Backend: "omp"},
			Rungs: []resilience.Rung{{Backend: "omp", Exec: func(ctx context.Context) error {
				plan.ExecuteOMP(chaosOpt(ctx))
				return nil
			}}},
			Check: func() error { return resilience.CheckFinite(plan.Out.Vals) },
		})
		if rep.Outcome != resilience.OutcomeFailed || !errors.Is(rep.Err, resilience.ErrNonFinite) {
			t.Fatalf("report = %+v, want failed with ErrNonFinite", rep)
		}
	})
}
