package resilience_test

// The chaos matrix: every kernel × format × backend combination is run
// under injected worker panics (transient and persistent), stalls past
// the trial deadline, and failed gpusim launches. The invariant under
// test is the suite's robustness contract: an injected fault yields a
// typed error or a verified fallback result — never a process crash —
// and a trial that exceeds its deadline reports ErrDeadline within 2×
// the configured timeout.

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/hicoo"
	"repro/internal/parallel"
	"repro/internal/resilience"
	"repro/internal/tensor"
)

const (
	chaosDims     = 30
	chaosNNZ      = 2000
	chaosR        = 8
	chaosBits     = 3
	chaosThreads  = 4
	chaosTimeout  = 250 * time.Millisecond
	chaosStallFor = 5 * time.Second // far past the deadline; ctx-bounded
)

// trialSetup is one scenario's freshly-built execution closures. Every
// trial gets its own plans so an attempt abandoned at the deadline can
// never write into a buffer a later rung (or scenario) is reading.
type trialSetup struct {
	primary func(ctx context.Context) error // rung 0 on the scenario backend
	serial  func(ctx context.Context) error // fallback rung, hook-free
	verify  func() error                    // fallback output vs golden reference
}

func chaosOpt(ctx context.Context) parallel.Options {
	return parallel.Options{Ctx: ctx, Threads: chaosThreads, Schedule: parallel.Dynamic}
}

func approxEqual(got, want []tensor.Value) error {
	if len(got) != len(want) {
		return fmt.Errorf("length %d vs reference %d", len(got), len(want))
	}
	for i := range got {
		d := math.Abs(float64(got[i]) - float64(want[i]))
		scale := math.Max(math.Abs(float64(want[i])), 1)
		if d > 2e-3*scale {
			return fmt.Errorf("index %d: got %v, reference %v", i, got[i], want[i])
		}
	}
	return nil
}

func chaosInputs(seed int64) (*tensor.COO, *tensor.COO, tensor.Vector, *tensor.Matrix, []*tensor.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	dims := []tensor.Index{chaosDims, chaosDims, chaosDims}
	x := tensor.RandomCOO(dims, chaosNNZ, rng)
	y := x.Clone()
	for i := range y.Vals {
		y.Vals[i] = y.Vals[i]*0.5 + 1
	}
	v := make(tensor.Vector, chaosDims)
	for i := range v {
		v[i] = tensor.Value(rng.Float64())
	}
	u := tensor.NewMatrix(chaosDims, chaosR)
	u.Randomize(rng)
	mats := make([]*tensor.Matrix, x.Order())
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), chaosR)
		mats[n].Randomize(rng)
	}
	return x, y, v, u, mats
}

// gpuExec wraps a launch-based closure so the device observes the trial
// context for cooperative mid-grid abort.
func gpuExec(dev *gpusim.Device, run func() error) func(ctx context.Context) error {
	return func(ctx context.Context) error {
		dev.SetContext(ctx)
		defer dev.SetContext(nil)
		return run()
	}
}

// buildSetup constructs fresh plans for one kernel/format/backend trial
// and the closures the ladder runs. gpu == nil selects the OMP backend.
func buildSetup(t *testing.T, kernel, format string, dev *gpusim.Device) trialSetup {
	t.Helper()
	x, y, v, u, mats := chaosInputs(11)
	gpu := dev != nil
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("setup %s/%s: %v", kernel, format, err)
		}
	}

	switch kernel + "/" + format {
	case "Tew/COO":
		golden, err := core.PrepareTew(x, y, core.Add)
		must(err)
		golden.ExecuteSeq()
		prim, err := core.PrepareTew(x, y, core.Add)
		must(err)
		fall, err := core.PrepareTew(x, y, core.Add)
		must(err)
		primary := func(ctx context.Context) error { prim.ExecuteOMP(chaosOpt(ctx)); return nil }
		if gpu {
			primary = gpuExec(dev, func() error { prim.ExecuteGPU(dev); return nil })
		}
		return trialSetup{
			primary: primary,
			serial:  func(context.Context) error { fall.ExecuteSeq(); return nil },
			verify:  func() error { return approxEqual(fall.Out.Vals, golden.Out.Vals) },
		}
	case "Tew/HiCOO":
		hx, hy := hicoo.FromCOO(x, chaosBits), hicoo.FromCOO(y, chaosBits)
		golden, err := core.PrepareTewHiCOO(hx, hy, core.Add)
		must(err)
		gold := golden.ExecuteSeq()
		prim, err := core.PrepareTewHiCOO(hx, hy, core.Add)
		must(err)
		fall, err := core.PrepareTewHiCOO(hx, hy, core.Add)
		must(err)
		var fallOut *hicoo.HiCOO
		primary := func(ctx context.Context) error { prim.ExecuteOMP(chaosOpt(ctx)); return nil }
		if gpu {
			primary = gpuExec(dev, func() error { prim.ExecuteGPU(dev); return nil })
		}
		return trialSetup{
			primary: primary,
			serial:  func(context.Context) error { fallOut = fall.ExecuteSeq(); return nil },
			verify:  func() error { return approxEqual(fallOut.Vals, gold.Vals) },
		}
	case "Ts/COO":
		golden, err := core.PrepareTs(x, 2.5, core.Mul)
		must(err)
		golden.ExecuteSeq()
		prim, err := core.PrepareTs(x, 2.5, core.Mul)
		must(err)
		fall, err := core.PrepareTs(x, 2.5, core.Mul)
		must(err)
		primary := func(ctx context.Context) error { prim.ExecuteOMP(chaosOpt(ctx)); return nil }
		if gpu {
			primary = gpuExec(dev, func() error { prim.ExecuteGPU(dev); return nil })
		}
		return trialSetup{
			primary: primary,
			serial:  func(context.Context) error { fall.ExecuteSeq(); return nil },
			verify:  func() error { return approxEqual(fall.Out.Vals, golden.Out.Vals) },
		}
	case "Ts/HiCOO":
		hx := hicoo.FromCOO(x, chaosBits)
		golden, err := core.PrepareTsHiCOO(hx, 2.5, core.Mul)
		must(err)
		gold := golden.ExecuteSeq()
		prim, err := core.PrepareTsHiCOO(hx, 2.5, core.Mul)
		must(err)
		fall, err := core.PrepareTsHiCOO(hx, 2.5, core.Mul)
		must(err)
		var fallOut *hicoo.HiCOO
		primary := func(ctx context.Context) error { prim.ExecuteOMP(chaosOpt(ctx)); return nil }
		if gpu {
			primary = gpuExec(dev, func() error { prim.ExecuteGPU(dev); return nil })
		}
		return trialSetup{
			primary: primary,
			serial:  func(context.Context) error { fallOut = fall.ExecuteSeq(); return nil },
			verify:  func() error { return approxEqual(fallOut.Vals, gold.Vals) },
		}
	case "Ttv/COO":
		golden, err := core.PrepareTtv(x, 0)
		must(err)
		_, err = golden.ExecuteSeq(v)
		must(err)
		prim, err := core.PrepareTtv(x, 0)
		must(err)
		fall, err := core.PrepareTtv(x, 0)
		must(err)
		primary := func(ctx context.Context) error { _, err := prim.ExecuteOMP(v, chaosOpt(ctx)); return err }
		if gpu {
			primary = gpuExec(dev, func() error { _, err := prim.ExecuteGPU(dev, v); return err })
		}
		return trialSetup{
			primary: primary,
			serial:  func(context.Context) error { _, err := fall.ExecuteSeq(v); return err },
			verify:  func() error { return approxEqual(fall.Out.Vals, golden.Out.Vals) },
		}
	case "Ttv/HiCOO":
		golden, err := core.PrepareTtvHiCOO(x, 0, chaosBits)
		must(err)
		_, err = golden.ExecuteSeq(v)
		must(err)
		prim, err := core.PrepareTtvHiCOO(x, 0, chaosBits)
		must(err)
		fall, err := core.PrepareTtvHiCOO(x, 0, chaosBits)
		must(err)
		primary := func(ctx context.Context) error { _, err := prim.ExecuteOMP(v, chaosOpt(ctx)); return err }
		if gpu {
			primary = gpuExec(dev, func() error { _, err := prim.ExecuteGPU(dev, v); return err })
		}
		return trialSetup{
			primary: primary,
			serial:  func(context.Context) error { _, err := fall.ExecuteSeq(v); return err },
			verify:  func() error { return approxEqual(fall.Out.Vals, golden.Out.Vals) },
		}
	case "Ttm/COO":
		golden, err := core.PrepareTtm(x, 0, chaosR)
		must(err)
		_, err = golden.ExecuteSeq(u)
		must(err)
		prim, err := core.PrepareTtm(x, 0, chaosR)
		must(err)
		fall, err := core.PrepareTtm(x, 0, chaosR)
		must(err)
		primary := func(ctx context.Context) error { _, err := prim.ExecuteOMP(u, chaosOpt(ctx)); return err }
		if gpu {
			primary = gpuExec(dev, func() error { _, err := prim.ExecuteGPU(dev, u); return err })
		}
		return trialSetup{
			primary: primary,
			serial:  func(context.Context) error { _, err := fall.ExecuteSeq(u); return err },
			verify:  func() error { return approxEqual(fall.Out.Vals, golden.Out.Vals) },
		}
	case "Ttm/HiCOO":
		golden, err := core.PrepareTtmHiCOO(x, 0, chaosR, chaosBits)
		must(err)
		_, err = golden.ExecuteSeq(u)
		must(err)
		prim, err := core.PrepareTtmHiCOO(x, 0, chaosR, chaosBits)
		must(err)
		fall, err := core.PrepareTtmHiCOO(x, 0, chaosR, chaosBits)
		must(err)
		primary := func(ctx context.Context) error { _, err := prim.ExecuteOMP(u, chaosOpt(ctx)); return err }
		if gpu {
			primary = gpuExec(dev, func() error { _, err := prim.ExecuteGPU(dev, u); return err })
		}
		return trialSetup{
			primary: primary,
			serial:  func(context.Context) error { _, err := fall.ExecuteSeq(u); return err },
			verify:  func() error { return approxEqual(fall.Out.Vals, golden.Out.Vals) },
		}
	case "Mttkrp/COO":
		golden, err := core.PrepareMttkrp(x, 0, chaosR)
		must(err)
		_, err = golden.ExecuteSeq(mats)
		must(err)
		prim, err := core.PrepareMttkrp(x, 0, chaosR)
		must(err)
		fall, err := core.PrepareMttkrp(x, 0, chaosR)
		must(err)
		primary := func(ctx context.Context) error { _, err := prim.ExecuteOMP(mats, chaosOpt(ctx)); return err }
		if gpu {
			primary = gpuExec(dev, func() error { _, err := prim.ExecuteGPU(dev, mats); return err })
		}
		return trialSetup{
			primary: primary,
			serial:  func(context.Context) error { _, err := fall.ExecuteSeq(mats); return err },
			verify:  func() error { return approxEqual(fall.Out.Data, golden.Out.Data) },
		}
	case "Mttkrp/HiCOO":
		hx := hicoo.FromCOO(x, chaosBits)
		golden, err := core.PrepareMttkrpHiCOO(hx, 0, chaosR)
		must(err)
		_, err = golden.ExecuteSeq(mats)
		must(err)
		prim, err := core.PrepareMttkrpHiCOO(hx, 0, chaosR)
		must(err)
		fall, err := core.PrepareMttkrpHiCOO(hx, 0, chaosR)
		must(err)
		primary := func(ctx context.Context) error { _, err := prim.ExecuteOMP(mats, chaosOpt(ctx)); return err }
		if gpu {
			primary = gpuExec(dev, func() error { _, err := prim.ExecuteGPU(dev, mats); return err })
		}
		return trialSetup{
			primary: primary,
			serial:  func(context.Context) error { _, err := fall.ExecuteSeq(mats); return err },
			verify:  func() error { return approxEqual(fall.Out.Data, golden.Out.Data) },
		}
	}
	t.Fatalf("unknown scenario %s/%s", kernel, format)
	return trialSetup{}
}

// TestChaosMatrix drives every kernel × format × backend combination
// through each fault mode and asserts the robustness contract.
func TestChaosMatrix(t *testing.T) {
	kernels := []string{"Tew", "Ts", "Ttv", "Ttm", "Mttkrp"}
	formats := []string{"COO", "HiCOO"}
	backends := []string{"omp", "gpu"}

	type faultCase struct {
		name  string
		fault resilience.Fault
		nth   int64 // 0 = every call (persistent)
		want  resilience.Outcome
	}
	for _, kernel := range kernels {
		for _, format := range formats {
			for _, backend := range backends {
				faults := []faultCase{
					{"panic-once", resilience.FaultPanic, 1, resilience.OutcomeRecovered},
					{"panic-persistent", resilience.FaultPanic, 0, resilience.OutcomeFellBack},
					{"stall", resilience.FaultStall, 1, resilience.OutcomeTimeout},
				}
				if backend == "gpu" {
					faults = append(faults,
						faultCase{"launch-fail", resilience.FaultLaunchFail, 0, resilience.OutcomeFellBack})
				}
				for _, fc := range faults {
					name := fmt.Sprintf("%s/%s/%s/%s", kernel, format, backend, fc.name)
					t.Run(name, func(t *testing.T) {
						runChaosScenario(t, kernel, format, backend, fc.fault, fc.nth, fc.want)
					})
				}
			}
		}
	}
}

func runChaosScenario(t *testing.T, kernel, format, backend string, fault resilience.Fault, nth int64, want resilience.Outcome) {
	var dev *gpusim.Device
	if backend == "gpu" {
		dev = gpusim.NewDevice("chaos-gpu", chaosThreads)
	}
	setup := buildSetup(t, kernel, format, dev)

	in := resilience.NewInjector(1)
	chaosCtx, cancel := context.WithCancel(context.Background())
	in.Arm(chaosCtx, fault, nth, chaosStallFor)
	in.Install()
	if dev != nil {
		in.InstallDevice(dev)
	}
	defer func() {
		in.Uninstall()
		if dev != nil {
			in.UninstallDevice(dev)
		}
		cancel() // unblock any still-stalled worker
	}()

	runner := &resilience.Runner{DrainGrace: 50 * time.Millisecond}
	trial := resilience.Trial{
		Label:   resilience.Label{Kernel: kernel, Format: format, Backend: backend},
		Timeout: chaosTimeout,
		Retries: 2,
		Rungs: []resilience.Rung{
			{Backend: backend, Exec: setup.primary},
			{Backend: "serial", Exec: setup.serial},
		},
		Verify: setup.verify,
	}

	start := time.Now()
	rep := runner.Do(context.Background(), trial)
	elapsed := time.Since(start)

	if in.Injected() == 0 {
		t.Fatalf("fault %v never fired (report %+v)", fault, rep)
	}
	if rep.Outcome != want {
		t.Fatalf("outcome = %v (err %v), want %v", rep.Outcome, rep.Err, want)
	}
	switch want {
	case resilience.OutcomeTimeout:
		if !errors.Is(rep.Err, resilience.ErrDeadline) {
			t.Fatalf("timeout err = %v, want ErrDeadline in chain", rep.Err)
		}
		// The acceptance bound: ErrDeadline within 2× the configured
		// timeout (drain grace included well inside the margin).
		if elapsed > 2*chaosTimeout {
			t.Fatalf("deadline reported after %v, want <= %v", elapsed, 2*chaosTimeout)
		}
	case resilience.OutcomeFellBack:
		if rep.Backend != "serial" || rep.FellFrom != backend {
			t.Fatalf("report = %+v, want serial fallback from %s", rep, backend)
		}
	case resilience.OutcomeRecovered:
		if rep.Backend != backend {
			t.Fatalf("report = %+v, want recovery on %s", rep, backend)
		}
	}

	// Drain a stalled straggler before the next scenario reuses the
	// process-wide hook: cancel the chaos context and wait for the
	// abandoned attempt to settle.
	cancel()
	if rep.Settled != nil {
		select {
		case <-rep.Settled:
		case <-time.After(10 * time.Second):
			t.Fatal("abandoned attempt never settled after cancel")
		}
	}
}

// TestDivNonFiniteDetected is the Tew/Ts division regression: IEEE
// semantics make x/0 = ±Inf and 0/0 = NaN without any panic, so a
// division trial must catch non-finite outputs via its Check hook
// rather than report garbage as a result.
func TestDivNonFiniteDetected(t *testing.T) {
	dims := []tensor.Index{4, 4, 4}
	x := tensor.NewCOO(dims, 3)
	x.AppendIdx3(0, 0, 0, 1)
	x.AppendIdx3(1, 1, 1, 0)
	x.AppendIdx3(2, 2, 2, 5)
	y := x.Clone()
	y.Vals[0] = 2
	y.Vals[1] = 0 // 0/0 -> NaN
	y.Vals[2] = 0 // 5/0 -> +Inf

	t.Run("Tew", func(t *testing.T) {
		plan, err := core.PrepareTew(x, y, core.Div)
		if err != nil {
			t.Fatal(err)
		}
		r := &resilience.Runner{}
		rep := r.Do(context.Background(), resilience.Trial{
			Label: resilience.Label{Kernel: "Tew", Format: "COO", Backend: "omp"},
			Rungs: []resilience.Rung{{Backend: "omp", Exec: func(ctx context.Context) error {
				plan.ExecuteOMP(chaosOpt(ctx))
				return nil
			}}},
			Check: func() error { return resilience.CheckFinite(plan.Out.Vals) },
		})
		if rep.Outcome != resilience.OutcomeFailed || !errors.Is(rep.Err, resilience.ErrNonFinite) {
			t.Fatalf("report = %+v, want failed with ErrNonFinite", rep)
		}
	})

	t.Run("Ts", func(t *testing.T) {
		// Division by a zero scalar is rejected at prepare time.
		if _, err := core.PrepareTs(x, 0, core.Div); err == nil {
			t.Fatal("PrepareTs accepted division by zero")
		}
		// A finite divisor can still overflow float32 to +Inf; the trial
		// Check has to catch that.
		xb := x.Clone()
		xb.Vals[2] = 3e38
		plan, err := core.PrepareTs(xb, 1e-3, core.Div) // 3e38/1e-3 overflows
		if err != nil {
			t.Fatal(err)
		}
		r := &resilience.Runner{}
		rep := r.Do(context.Background(), resilience.Trial{
			Label: resilience.Label{Kernel: "Ts", Format: "COO", Backend: "omp"},
			Rungs: []resilience.Rung{{Backend: "omp", Exec: func(ctx context.Context) error {
				plan.ExecuteOMP(chaosOpt(ctx))
				return nil
			}}},
			Check: func() error { return resilience.CheckFinite(plan.Out.Vals) },
		})
		if rep.Outcome != resilience.OutcomeFailed || !errors.Is(rep.Err, resilience.ErrNonFinite) {
			t.Fatalf("report = %+v, want failed with ErrNonFinite", rep)
		}
	})
}
