// Package gen implements the paper's two synthetic sparse tensor
// generators (§4.2): the stochastic Kronecker graph model extended to
// N-mode tensors, and the FireHose-style biased power-law streaming
// generator. Both produce tensors whose non-zero patterns preserve the
// power-law distribution, small diameter, and clustering properties of
// real-world (hyper-)graphs.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Initiator is the Kronecker initiator tensor τ₁: a small dense
// probability tensor whose repeated Kronecker product defines the
// self-similar distribution of the generated tensor (§4.2.1).
type Initiator struct {
	// Dims holds the initiator's mode sizes (usually all 2).
	Dims []int
	// Probs holds the 2^N (or Π Dims) cell probabilities, row-major,
	// summing to 1.
	Probs []float64
}

// DefaultInitiator returns an RMAT-style corner-biased initiator of the
// given order with 2-sized modes: the probability of a cell decays
// geometrically (factor rho) with the number of 1-coordinates, which
// concentrates non-zeros near the origin exactly like RMAT's
// (A,B,C,D) = (0.57, 0.19, 0.19, 0.05) does for matrices.
func DefaultInitiator(order int) *Initiator {
	const rho = 1.0 / 3.0
	cells := 1 << order
	probs := make([]float64, cells)
	var sum float64
	for c := 0; c < cells; c++ {
		ones := 0
		for n := 0; n < order; n++ {
			if c>>n&1 == 1 {
				ones++
			}
		}
		probs[c] = math.Pow(rho, float64(ones))
		sum += probs[c]
	}
	for c := range probs {
		probs[c] /= sum
	}
	dims := make([]int, order)
	for n := range dims {
		dims[n] = 2
	}
	return &Initiator{Dims: dims, Probs: probs}
}

// Validate checks the initiator's structural invariants.
func (in *Initiator) Validate() error {
	if len(in.Dims) == 0 {
		return fmt.Errorf("gen: initiator has no modes")
	}
	cells := 1
	for _, d := range in.Dims {
		if d < 2 {
			return fmt.Errorf("gen: initiator mode size %d < 2", d)
		}
		cells *= d
	}
	if len(in.Probs) != cells {
		return fmt.Errorf("gen: initiator has %d probabilities, want %d", len(in.Probs), cells)
	}
	var sum float64
	for _, p := range in.Probs {
		if p < 0 {
			return fmt.Errorf("gen: negative initiator probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("gen: initiator probabilities sum to %v, want 1", sum)
	}
	return nil
}

// cellCoords decomposes a row-major cell index into per-mode coordinates.
func (in *Initiator) cellCoords(cell int, dst []int) {
	for n := len(in.Dims) - 1; n >= 0; n-- {
		dst[n] = cell % in.Dims[n]
		cell /= in.Dims[n]
	}
}

// Kronecker generates a sparse tensor with the given mode sizes and
// (approximately) nnz distinct non-zeros by sampling the stochastic
// Kronecker distribution: each sample descends L levels of the initiator,
// where L is the smallest power covering the largest mode; coordinates
// falling outside dims are stripped and re-drawn, implementing the
// paper's extra-iteration trick for non-power sizes. Values are uniform
// in (0,1]. The result is sorted in natural order with duplicates
// removed (Bernoulli realization: a coordinate appears at most once).
func Kronecker(dims []tensor.Index, nnz int, init *Initiator, rng *rand.Rand) (*tensor.COO, error) {
	if init == nil {
		init = DefaultInitiator(len(dims))
	}
	if err := init.Validate(); err != nil {
		return nil, err
	}
	if len(init.Dims) != len(dims) {
		return nil, fmt.Errorf("gen: initiator order %d, tensor order %d", len(init.Dims), len(dims))
	}
	if nnz < 0 {
		return nil, fmt.Errorf("gen: negative nnz")
	}
	// Levels: enough initiator iterations to cover every mode (the paper's
	// "additional iteration ... and strip off" approach).
	levels := 1
	for n, d := range dims {
		l := int(math.Ceil(math.Log(float64(d)) / math.Log(float64(init.Dims[n]))))
		if l > levels {
			levels = l
		}
	}
	// Cumulative distribution over initiator cells for inverse sampling.
	cdf := make([]float64, len(init.Probs))
	acc := 0.0
	for c, p := range init.Probs {
		acc += p
		cdf[c] = acc
	}

	order := len(dims)
	t := tensor.NewCOO(dims, nnz)
	seen := make(map[string]struct{}, nnz)
	idx := make([]tensor.Index, order)
	cc := make([]int, order)
	key := make([]byte, 4*order)

	maxAttempts := 50*nnz + 1000
	for attempts := 0; t.NNZ() < nnz && attempts < maxAttempts; attempts++ {
		for n := range idx {
			idx[n] = 0
		}
		for l := 0; l < levels; l++ {
			cell := sampleCDF(cdf, rng.Float64())
			init.cellCoords(cell, cc)
			for n := 0; n < order; n++ {
				idx[n] = idx[n]*tensor.Index(init.Dims[n]) + tensor.Index(cc[n])
			}
		}
		inRange := true
		for n := 0; n < order; n++ {
			if idx[n] >= dims[n] {
				inRange = false
				break
			}
		}
		if !inRange {
			continue // strip: coordinate outside the requested size
		}
		for n := 0; n < order; n++ {
			k := 4 * n
			i := idx[n]
			key[k], key[k+1], key[k+2], key[k+3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		}
		if _, dup := seen[string(key)]; dup {
			continue
		}
		seen[string(key)] = struct{}{}
		t.Append(idx, tensor.Value(1-rng.Float64()))
	}
	t.SortNatural()
	return t, nil
}

func sampleCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
