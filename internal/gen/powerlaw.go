package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// PowerLawConfig configures the biased power-law generator (§4.2.2),
// extended from the FireHose streaming benchmark's biased generator. The
// generator emits a stream of coordinates whose sparse (hyper-sparse)
// modes follow a power-law distribution while the dense modes are small
// and uniformly covered — combining the per-slice sparse graphs into a
// higher-order hyper-graph tensor.
type PowerLawConfig struct {
	// Dims holds the mode sizes.
	Dims []tensor.Index
	// SparseModes lists the modes whose indices follow the power law
	// (the equidimensional hyper-sparse modes of the paper's irregular
	// tensors); the remaining modes are sampled uniformly (the "entirely
	// dense and smaller" modes).
	SparseModes []int
	// Exponent is the power-law (Zipf) exponent; must be > 1. The
	// default 1.5 reproduces heavy skew without degenerating to a single
	// hub.
	Exponent float64
	// NNZ is the number of distinct non-zeros to generate.
	NNZ int
}

// DefaultExponent is the Zipf exponent used when Exponent is zero.
const DefaultExponent = 1.5

// PowerLaw generates a sparse tensor per the configuration. Values are
// uniform in (0,1]; the result is sorted in natural order and duplicate
// coordinates are removed.
func PowerLaw(cfg PowerLawConfig, rng *rand.Rand) (*tensor.COO, error) {
	if len(cfg.Dims) == 0 {
		return nil, fmt.Errorf("gen: power law needs at least one mode")
	}
	if cfg.NNZ < 0 {
		return nil, fmt.Errorf("gen: negative nnz")
	}
	exp := cfg.Exponent
	if exp == 0 {
		exp = DefaultExponent
	}
	if exp <= 1 {
		return nil, fmt.Errorf("gen: power-law exponent must be > 1, got %v", exp)
	}
	order := len(cfg.Dims)
	isSparse := make([]bool, order)
	for _, n := range cfg.SparseModes {
		if n < 0 || n >= order {
			return nil, fmt.Errorf("gen: sparse mode %d out of range", n)
		}
		isSparse[n] = true
	}
	// One Zipf stream per sparse mode; a shared permutation would bias
	// diagonal entries, so each mode draws independently and is scattered
	// through an independent random relabeling to avoid the "index 0 is
	// always the hub" artifact across modes.
	zipfs := make([]*rand.Zipf, order)
	relabel := make([][]tensor.Index, order)
	for n := 0; n < order; n++ {
		if !isSparse[n] {
			continue
		}
		if cfg.Dims[n] < 2 {
			return nil, fmt.Errorf("gen: sparse mode %d has size %d < 2", n, cfg.Dims[n])
		}
		zipfs[n] = rand.NewZipf(rng, exp, 1, uint64(cfg.Dims[n]-1))
		relabel[n] = randomPermutation(int(cfg.Dims[n]), rng)
	}

	t := tensor.NewCOO(cfg.Dims, cfg.NNZ)
	seen := make(map[string]struct{}, cfg.NNZ)
	idx := make([]tensor.Index, order)
	key := make([]byte, 4*order)
	maxAttempts := 50*cfg.NNZ + 1000
	for attempts := 0; t.NNZ() < cfg.NNZ && attempts < maxAttempts; attempts++ {
		for n := 0; n < order; n++ {
			if isSparse[n] {
				idx[n] = relabel[n][zipfs[n].Uint64()]
			} else {
				idx[n] = tensor.Index(rng.Intn(int(cfg.Dims[n])))
			}
		}
		for n := 0; n < order; n++ {
			k := 4 * n
			i := idx[n]
			key[k], key[k+1], key[k+2], key[k+3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
		}
		if _, dup := seen[string(key)]; dup {
			continue
		}
		seen[string(key)] = struct{}{}
		t.Append(idx, tensor.Value(1-rng.Float64()))
	}
	t.SortNatural()
	return t, nil
}

func randomPermutation(n int, rng *rand.Rand) []tensor.Index {
	p := make([]tensor.Index, n)
	for i := range p {
		p[i] = tensor.Index(i)
	}
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// DegreeSkew measures the ratio of the heaviest mode-n index count to the
// mean count — a quick power-law witness used by tests and dataset
// summaries (≫1 for power-law modes, ≈1 for uniform ones).
func DegreeSkew(t *tensor.COO, n int) float64 {
	if t.NNZ() == 0 {
		return 0
	}
	counts := make(map[tensor.Index]int)
	for _, i := range t.Inds[n] {
		counts[i]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	mean := float64(t.NNZ()) / float64(len(counts))
	return float64(maxC) / mean
}
