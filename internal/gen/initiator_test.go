package gen

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestKroneckerCustomInitiator drives the generator with a hand-built
// non-2×2 initiator, exercising the general cellCoords/sampling paths.
func TestKroneckerCustomInitiator(t *testing.T) {
	// 3×3 initiator per mode (order 2), strongly biased to cell (0,0).
	probs := make([]float64, 9)
	rest := 0.4 / 8
	for i := range probs {
		probs[i] = rest
	}
	probs[0] = 0.6
	init := &Initiator{Dims: []int{3, 3}, Probs: probs}
	if err := init.Validate(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x, err := Kronecker([]tensor.Index{729, 729}, 3000, init, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if x.NNZ() != 3000 {
		t.Fatalf("nnz %d, want 3000", x.NNZ())
	}
	// Corner bias: the first third of each mode must hold well over a
	// third of the non-zeros.
	inCorner := 0
	for m := 0; m < x.NNZ(); m++ {
		if x.Inds[0][m] < 243 && x.Inds[1][m] < 243 {
			inCorner++
		}
	}
	if frac := float64(inCorner) / float64(x.NNZ()); frac < 0.3 {
		t.Fatalf("corner fraction %v, want heavy bias", frac)
	}
}

// TestKroneckerSaturatedSpace: requesting more distinct coordinates than
// exist must terminate via the attempt cap rather than hang.
func TestKroneckerSaturatedSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, err := Kronecker([]tensor.Index{4, 4}, 100, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if x.NNZ() > 16 {
		t.Fatalf("nnz %d exceeds the coordinate space", x.NNZ())
	}
	if x.NNZ() == 0 {
		t.Fatal("generator produced nothing")
	}
}

// TestPowerLawSaturatedSpace mirrors the cap check for the PL generator.
func TestPowerLawSaturatedSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, err := PowerLaw(PowerLawConfig{
		Dims:        []tensor.Index{3, 3, 2},
		SparseModes: []int{0, 1},
		NNZ:         500,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if x.NNZ() > 18 || x.NNZ() == 0 {
		t.Fatalf("nnz %d outside (0,18]", x.NNZ())
	}
}

func TestSampleCDF(t *testing.T) {
	cdf := []float64{0.25, 0.5, 0.75, 1.0}
	cases := []struct {
		u    float64
		want int
	}{{0.0, 0}, {0.2, 0}, {0.25, 0}, {0.26, 1}, {0.74, 2}, {0.99, 3}, {1.0, 3}}
	for _, c := range cases {
		if got := sampleCDF(cdf, c.u); got != c.want {
			t.Errorf("sampleCDF(%v) = %d, want %d", c.u, got, c.want)
		}
	}
}
