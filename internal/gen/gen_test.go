package gen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestDefaultInitiator(t *testing.T) {
	for order := 2; order <= 4; order++ {
		in := DefaultInitiator(order)
		if err := in.Validate(); err != nil {
			t.Fatalf("order %d: %v", order, err)
		}
		if len(in.Probs) != 1<<order {
			t.Fatalf("order %d: %d cells", order, len(in.Probs))
		}
		// Corner cell (all zeros) must be the heaviest.
		for c := 1; c < len(in.Probs); c++ {
			if in.Probs[c] >= in.Probs[0] {
				t.Fatalf("order %d: cell %d prob %v >= corner %v", order, c, in.Probs[c], in.Probs[0])
			}
		}
	}
}

func TestInitiatorValidateErrors(t *testing.T) {
	bad := []*Initiator{
		{Dims: nil, Probs: nil},
		{Dims: []int{1, 2}, Probs: []float64{0.5, 0.5}},
		{Dims: []int{2}, Probs: []float64{0.5}},
		{Dims: []int{2}, Probs: []float64{1.5, -0.5}},
		{Dims: []int{2}, Probs: []float64{0.3, 0.3}},
	}
	for i, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestKroneckerBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dims := []tensor.Index{1000, 1000, 1000}
	x, err := Kronecker(dims, 5000, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if x.NNZ() != 5000 {
		t.Fatalf("nnz = %d, want 5000", x.NNZ())
	}
	// No duplicates (Bernoulli realization).
	if len(x.ToMap()) != x.NNZ() {
		t.Fatal("duplicate coordinates present")
	}
}

func TestKroneckerNonPowerDims(t *testing.T) {
	// Dims that are not powers of 2 exercise the strip-and-redraw path.
	rng := rand.New(rand.NewSource(2))
	dims := []tensor.Index{700, 300, 90}
	x, err := Kronecker(dims, 2000, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	for n := range dims {
		for _, i := range x.Inds[n] {
			if i >= dims[n] {
				t.Fatalf("mode %d index %d out of range", n, i)
			}
		}
	}
}

func TestKroneckerIsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, err := Kronecker([]tensor.Index{4096, 4096, 4096}, 20000, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The corner bias must produce a heavy-tailed per-index distribution.
	if skew := DegreeSkew(x, 0); skew < 5 {
		t.Fatalf("Kronecker mode-0 skew = %v, want >= 5 (power-law-like)", skew)
	}
}

func TestKroneckerErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := Kronecker([]tensor.Index{8, 8}, -1, nil, rng); err == nil {
		t.Fatal("expected negative-nnz error")
	}
	badInit := &Initiator{Dims: []int{2}, Probs: []float64{1}}
	if _, err := Kronecker([]tensor.Index{8, 8}, 10, badInit, rng); err == nil {
		t.Fatal("expected order-mismatch error")
	}
}

func TestKroneckerOrder4(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, err := Kronecker([]tensor.Index{128, 128, 128, 128}, 3000, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if x.Order() != 4 || x.NNZ() != 3000 {
		t.Fatalf("order=%d nnz=%d", x.Order(), x.NNZ())
	}
}

func TestPowerLawBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := PowerLawConfig{
		Dims:        []tensor.Index{50000, 50000, 76},
		SparseModes: []int{0, 1},
		NNZ:         8000,
	}
	x, err := PowerLaw(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if x.NNZ() != 8000 {
		t.Fatalf("nnz = %d, want 8000", x.NNZ())
	}
	// Sparse modes are heavily skewed, the dense mode is not.
	if s := DegreeSkew(x, 0); s < 10 {
		t.Fatalf("sparse mode skew = %v, want >= 10", s)
	}
	if s := DegreeSkew(x, 2); s > 3 {
		t.Fatalf("dense mode skew = %v, want <= 3 (uniform)", s)
	}
}

func TestPowerLawDenseModeFullyCovered(t *testing.T) {
	// "one mode completely dense": with nnz >> dim every index appears.
	rng := rand.New(rand.NewSource(7))
	cfg := PowerLawConfig{
		Dims:        []tensor.Index{10000, 10000, 20},
		SparseModes: []int{0, 1},
		NNZ:         5000,
	}
	x, err := PowerLaw(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := tensor.DistinctModeIndices(x, 2); d != 20 {
		t.Fatalf("dense mode covers %d/20 indices", d)
	}
}

func TestPowerLawErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cases := []PowerLawConfig{
		{},
		{Dims: []tensor.Index{10}, NNZ: -1},
		{Dims: []tensor.Index{10, 10}, SparseModes: []int{5}, NNZ: 5},
		{Dims: []tensor.Index{10, 10}, SparseModes: []int{0}, Exponent: 0.5, NNZ: 5},
		{Dims: []tensor.Index{1, 10}, SparseModes: []int{0}, NNZ: 5},
	}
	for i, cfg := range cases {
		if _, err := PowerLaw(cfg, rng); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestPowerLawOrder4TwoDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := PowerLawConfig{
		Dims:        []tensor.Index{20000, 20000, 30, 50},
		SparseModes: []int{0, 1},
		NNZ:         4000,
	}
	x, err := PowerLaw(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	if x.Order() != 4 || x.NNZ() != 4000 {
		t.Fatalf("order=%d nnz=%d", x.Order(), x.NNZ())
	}
}

func TestGeneratorsReproducible(t *testing.T) {
	// Same seed, same tensor — the paper's reproducibility requirement.
	a, _ := Kronecker([]tensor.Index{512, 512, 512}, 1000, nil, rand.New(rand.NewSource(42)))
	b, _ := Kronecker([]tensor.Index{512, 512, 512}, 1000, nil, rand.New(rand.NewSource(42)))
	if tensor.AbsDiff(a, b) != 0 {
		t.Fatal("Kronecker not reproducible for fixed seed")
	}
	cfg := PowerLawConfig{Dims: []tensor.Index{1000, 1000, 16}, SparseModes: []int{0, 1}, NNZ: 500}
	c, _ := PowerLaw(cfg, rand.New(rand.NewSource(43)))
	d, _ := PowerLaw(cfg, rand.New(rand.NewSource(43)))
	if tensor.AbsDiff(c, d) != 0 {
		t.Fatal("PowerLaw not reproducible for fixed seed")
	}
}

func TestGeneratorsProperty(t *testing.T) {
	f := func(seed int64, nnzRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		nnz := int(nnzRaw)%500 + 1
		x, err := Kronecker([]tensor.Index{256, 256, 256}, nnz, nil, rng)
		if err != nil || x.Validate() != nil || x.NNZ() != nnz {
			return false
		}
		y, err := PowerLaw(PowerLawConfig{
			Dims:        []tensor.Index{512, 512, 8},
			SparseModes: []int{0, 1},
			NNZ:         nnz,
		}, rng)
		return err == nil && y.Validate() == nil && y.NNZ() == nnz
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
