package perfmodel

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/platform"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// largeWorkload fabricates the statistics of a choa-scale tensor
// (27M non-zeros, 712K × 10K × 767) without generating it.
func largeWorkload() Workload {
	return Workload{
		Order: 3, M: 27e6, MF: 9e6, Nb: 2.5e6, R: 16, BlockSize: 128,
		Dims: []int64{712000, 10000, 767}, Mode: 0,
		FiberImbalance: 40, BlockImbalance: 25, Collisions: 38,
	}
}

// smallWorkload fabricates a regS-scale tensor (1M non-zeros) whose Tew
// working set fits Bluesky's 19MB LLC.
func smallWorkload() Workload {
	return Workload{
		Order: 3, M: 1.1e6, MF: 6e5, Nb: 4e5, R: 16, BlockSize: 128,
		Dims: []int64{65536, 65536, 65536}, Mode: 0,
		FiberImbalance: 12, BlockImbalance: 8, Collisions: 4,
	}
}

func TestPredictPositiveAndBounded(t *testing.T) {
	for _, p := range platform.All() {
		for _, k := range roofline.Kernels {
			for _, f := range []roofline.Format{roofline.COO, roofline.HiCOO} {
				for _, w := range []Workload{largeWorkload(), smallWorkload()} {
					b := Predict(p, k, f, w)
					if b.TimeSec <= 0 || b.GFLOPS <= 0 {
						t.Fatalf("%s/%v/%v: non-positive prediction %+v", p.Name, k, f, b)
					}
					if b.GFLOPS > p.PeakSPGFLOPS {
						t.Fatalf("%s/%v/%v: prediction above peak", p.Name, k, f)
					}
					if b.ImbalanceFactor < 1 {
						t.Fatalf("%s/%v/%v: imbalance < 1", p.Name, k, f)
					}
				}
			}
		}
	}
}

func TestObservation2SmallTensorsExceedRoofline(t *testing.T) {
	// Small synthetic tensors (≈1M nnz) fit Bluesky's LLC for Tew/Ts and
	// run above the DRAM Roofline; large real tensors do not.
	small, large := smallWorkload(), largeWorkload()
	for _, k := range []roofline.Kernel{roofline.Tew, roofline.Ts} {
		bs := Predict(&platform.Bluesky, k, roofline.COO, small)
		if bs.Efficiency <= 1 {
			t.Errorf("%v small: efficiency %v, want > 1 (cache-resident)", k, bs.Efficiency)
		}
		bl := Predict(&platform.Bluesky, k, roofline.COO, large)
		if bl.Efficiency > 1.05 {
			t.Errorf("%v large: efficiency %v, want <= ~1", k, bl.Efficiency)
		}
	}
}

func TestObservation3NUMAPenalty(t *testing.T) {
	// Four-socket Wingtip achieves lower efficiency than two-socket
	// Bluesky on the gather-heavy fiber kernels (paper: Ttv 31%→9%,
	// Ttm 64%→52%)…
	w := largeWorkload()
	for _, k := range []roofline.Kernel{roofline.Ttv, roofline.Ttm} {
		eb := Predict(&platform.Bluesky, k, roofline.COO, w).Efficiency
		ew := Predict(&platform.Wingtip, k, roofline.COO, w).Efficiency
		if ew >= eb {
			t.Errorf("%v: Wingtip efficiency %v >= Bluesky %v", k, ew, eb)
		}
	}
	// …while Mttkrp efficiency is slightly *higher* on Wingtip (paper:
	// 9% vs 6%, "the increment could come from better parallelism of
	// Wingtip with 56 cores") — the atomic term scales with cores.
	ebm := Predict(&platform.Bluesky, roofline.Mttkrp, roofline.COO, w).Efficiency
	ewm := Predict(&platform.Wingtip, roofline.Mttkrp, roofline.COO, w).Efficiency
	if ewm <= ebm {
		t.Errorf("Mttkrp: Wingtip efficiency %v <= Bluesky %v, paper reports the reverse", ewm, ebm)
	}
	// And the GPUs beat Wingtip on Mttkrp efficiency (Observation 3).
	ew := Predict(&platform.Wingtip, roofline.Mttkrp, roofline.COO, w).Efficiency
	for _, p := range []*platform.Platform{&platform.DGX1P, &platform.DGX1V} {
		if eg := Predict(p, roofline.Mttkrp, roofline.COO, w).Efficiency; eg <= ew {
			t.Errorf("%s Mttkrp efficiency %v <= Wingtip %v", p.Name, eg, ew)
		}
	}
}

func TestObservation4HiCOOvsCOO(t *testing.T) {
	w := largeWorkload()
	// CPU: HiCOO ≥ COO for Tew, Ts, Ttv.
	for _, k := range []roofline.Kernel{roofline.Tew, roofline.Ts, roofline.Ttv} {
		gc := Predict(&platform.Bluesky, k, roofline.COO, w).GFLOPS
		gh := Predict(&platform.Bluesky, k, roofline.HiCOO, w).GFLOPS
		if gh < gc {
			t.Errorf("CPU %v: HiCOO %v < COO %v", k, gh, gc)
		}
	}
	// GPU: HiCOO-Mttkrp below COO-Mttkrp (block imbalance + parallelism).
	for _, p := range []*platform.Platform{&platform.DGX1P, &platform.DGX1V} {
		gc := Predict(p, roofline.Mttkrp, roofline.COO, w).GFLOPS
		gh := Predict(p, roofline.Mttkrp, roofline.HiCOO, w).GFLOPS
		if gh >= gc {
			t.Errorf("%s: HiCOO-Mttkrp %v >= COO-Mttkrp %v", p.Name, gh, gc)
		}
	}
}

func TestMttkrpLeastEfficientOnCPU(t *testing.T) {
	// Figures 4-5: Mttkrp has by far the lowest efficiency of the five
	// kernels on the CPU platforms (atomic-bound).
	w := largeWorkload()
	em := Predict(&platform.Bluesky, roofline.Mttkrp, roofline.COO, w).Efficiency
	for _, k := range []roofline.Kernel{roofline.Tew, roofline.Ts, roofline.Ttv, roofline.Ttm} {
		if e := Predict(&platform.Bluesky, k, roofline.COO, w).Efficiency; e <= em {
			t.Errorf("%v efficiency %v <= Mttkrp %v", k, e, em)
		}
	}
	if em > 0.2 {
		t.Errorf("CPU Mttkrp efficiency %v, paper reports ~5-9%%", em)
	}
}

func TestVoltaAtomicsBeatPascal(t *testing.T) {
	// Observation 2: V100's improved atomics lift Mttkrp efficiency above
	// P100's (110% vs 40% for COO in the paper).
	w := largeWorkload()
	ep := Predict(&platform.DGX1P, roofline.Mttkrp, roofline.COO, w).Efficiency
	ev := Predict(&platform.DGX1V, roofline.Mttkrp, roofline.COO, w).Efficiency
	if ev <= ep {
		t.Fatalf("V100 Mttkrp efficiency %v <= P100 %v", ev, ep)
	}
}

func TestGPUsFasterThanCPUsInAbsoluteGFLOPS(t *testing.T) {
	// The GPUs' bandwidth advantage must show in the streaming kernels.
	w := largeWorkload()
	for _, k := range []roofline.Kernel{roofline.Tew, roofline.Ts} {
		gc := Predict(&platform.Bluesky, k, roofline.COO, w).GFLOPS
		gg := Predict(&platform.DGX1V, k, roofline.COO, w).GFLOPS
		if gg <= gc {
			t.Errorf("%v: V100 %v <= Bluesky %v", k, gg, gc)
		}
	}
}

func TestFromTensorMeasuresStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, err := gen.PowerLaw(gen.PowerLawConfig{
		Dims:        []tensor.Index{5000, 5000, 30},
		SparseModes: []int{0, 1},
		NNZ:         4000,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	w := FromTensor(x, 0, 16, 7)
	if w.M != int64(x.NNZ()) || w.Order != 3 || w.R != 16 || w.BlockSize != 128 {
		t.Fatalf("workload basics wrong: %+v", w)
	}
	if w.MF <= 0 || w.MF > w.M {
		t.Fatalf("MF = %d out of range", w.MF)
	}
	if w.Nb <= 0 || w.Nb > w.M {
		t.Fatalf("Nb = %d out of range", w.Nb)
	}
	if w.FiberImbalance < 1 || w.BlockImbalance < 1 || w.Collisions < 1 {
		t.Fatalf("skew stats wrong: %+v", w)
	}
	// Power-law mode 0 must show real collision skew.
	if w.Collisions < 1.2 {
		t.Fatalf("collisions %v too low for a power-law tensor", w.Collisions)
	}
	// Predictions from measured workloads behave.
	b := Predict(&platform.DGX1P, roofline.Ttv, roofline.COO, w)
	if b.TimeSec <= 0 || b.GFLOPS <= 0 {
		t.Fatalf("prediction invalid: %+v", b)
	}
}

func TestImbalanceBlend(t *testing.T) {
	// Many items per worker → factor near 1; few items → near raw skew.
	if f := blend(10, 1e7, 24); f > 1.01 {
		t.Fatalf("well-balanced blend = %v", f)
	}
	if f := blend(10, 24, 24); f < 5 {
		t.Fatalf("skewed blend = %v, want near raw imbalance", f)
	}
	if blend(0.5, 100, 10) != 1 || blend(2, 0, 10) != 1 {
		t.Fatal("degenerate blends should be 1")
	}
}

func TestEffectiveBandwidthInterpolation(t *testing.T) {
	p := &platform.Bluesky
	llc := float64(p.LLCBytes)
	if bw := effectiveBandwidth(p, llc/2); bw != p.ERTLLCGBs {
		t.Fatal("cache-resident should use LLC bandwidth")
	}
	if bw := effectiveBandwidth(p, llc*100); bw != p.ERTDRAMGBs {
		t.Fatal("streaming should use DRAM bandwidth")
	}
	mid := effectiveBandwidth(p, llc*2)
	if mid <= p.ERTDRAMGBs || mid >= p.ERTLLCGBs {
		t.Fatalf("interpolated bandwidth %v outside (DRAM, LLC)", mid)
	}
}
