// Package perfmodel predicts kernel execution time and GFLOPS on the
// paper's four platforms (Table 4) from workload statistics, replacing
// the physical machines this reproduction cannot run on. It extends the
// Roofline bound (Table 1 traffic / ERT bandwidth) with the second-order
// effects the paper's five observations attribute performance to:
//
//   - cache residency: working sets fitting the LLC run at cache rather
//     than DRAM bandwidth (Observation 2's above-Roofline small tensors);
//   - irregular gathers: Ttv/Ttm/Mttkrp gather vector/matrix rows through
//     tensor indices, overfetching cache lines when the gathered set
//     exceeds the LLC, amplified on multi-socket NUMA machines
//     (Observation 3);
//   - atomics: Mttkrp's output updates serialize at a per-platform atomic
//     throughput (low on CPUs, much higher on Volta — Observation 2's
//     "improved atomic operation performance");
//   - load imbalance: thread-per-fiber (Ttv/Ttm GPU) and block-per-CUDA-
//     block (HiCOO-Mttkrp GPU) mappings inherit the fiber/block skew
//     (Observation 4);
//   - HiCOO locality: Morton-ordered blocks improve gather locality on
//     CPUs with large LLCs, less so on GPUs (Observation 4).
//
// Constants are calibrated so the paper's qualitative results hold; the
// model makes no claim of absolute-number fidelity (see DESIGN.md).
package perfmodel

import (
	"math"

	"repro/internal/hicoo"
	"repro/internal/platform"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// Workload carries the statistics of one (tensor, mode, R) benchmark
// configuration consumed by Predict.
type Workload struct {
	// Order, M, MF, Nb, R, BlockSize feed the Table 1 formulas.
	Order     int
	M         int64
	MF        int64
	Nb        int64
	R         int64
	BlockSize int64
	// Dims holds the mode sizes (for gather working-set estimation).
	Dims []int64
	// Mode is the kernel mode n.
	Mode int
	// FiberImbalance is max/mean mode-n fiber length.
	FiberImbalance float64
	// BlockImbalance is max/mean non-zeros per HiCOO block.
	BlockImbalance float64
	// Collisions is M divided by the distinct mode-n indices (atomic
	// contention density for Mttkrp).
	Collisions float64
}

// FromTensor measures a Workload from a tensor for the given mode, factor
// count, and HiCOO block bits. It is preprocessing-stage work (sorting a
// clone) and should be cached per (tensor, mode); use FromTensorAllModes
// to amortize the HiCOO conversion across modes.
func FromTensor(x *tensor.COO, mode, r int, blockBits uint8) Workload {
	return FromTensorAllModes(x, r, blockBits)[mode]
}

// FromTensorAllModes measures the Workload of every mode at once,
// converting to HiCOO (whose block statistics are mode-independent) a
// single time.
func FromTensorAllModes(x *tensor.COO, r int, blockBits uint8) []Workload {
	h := hicoo.FromCOO(x, blockBits)
	st := h.ComputeStats()
	nb := int64(st.NumBlocks)
	blockImb := 1.0
	if st.MeanNNZPerBlock > 0 {
		blockImb = float64(st.MaxNNZPerBlock) / st.MeanNNZPerBlock
	}
	dims := make([]int64, x.Order())
	for n, d := range x.Dims {
		dims[n] = int64(d)
	}
	out := make([]Workload, x.Order())
	for mode := range out {
		fs := tensor.ComputeFiberStats(x, mode)
		out[mode] = Workload{
			Order:          x.Order(),
			M:              int64(x.NNZ()),
			MF:             int64(fs.NumFibers),
			Nb:             nb,
			R:              int64(r),
			BlockSize:      1 << blockBits,
			Dims:           dims,
			Mode:           mode,
			FiberImbalance: fs.Imbalance,
			BlockImbalance: blockImb,
			Collisions:     tensor.ModeCollisions(x, mode),
		}
	}
	return out
}

// ScaleTo returns a copy of the workload with the non-zero count set to m
// and the mode sizes replaced by dims, scaling the derived counts (MF, Nb)
// proportionally. Because the dataset stand-ins preserve the originals'
// density regime and skew class, measuring structure at stand-in scale and
// scaling the counts to Table 2/3's true sizes yields paper-scale model
// inputs without materializing 100M-non-zero tensors.
func (w Workload) ScaleTo(m int64, dims []int64) Workload {
	out := w
	if w.M > 0 && m > 0 {
		r := float64(m) / float64(w.M)
		out.M = m
		out.MF = int64(float64(w.MF) * r)
		if out.MF > m {
			out.MF = m
		}
		if out.MF < 1 {
			out.MF = 1
		}
		out.Nb = int64(float64(w.Nb) * r)
		if out.Nb > m {
			out.Nb = m
		}
		if out.Nb < 1 {
			out.Nb = 1
		}
	}
	if len(dims) == len(w.Dims) {
		out.Dims = append([]int64(nil), dims...)
	}
	return out
}

// Breakdown is the result of one prediction, exposing the contributing
// terms for the harness's analysis output.
type Breakdown struct {
	TimeSec float64
	GFLOPS  float64
	// Term times (seconds); TimeSec = max(Mem, Compute, Atomic) ×
	// Imbalance + Overhead.
	MemTime     float64
	ComputeTime float64
	AtomicTime  float64
	Overhead    float64
	// ImbalanceFactor multiplies the dominant term.
	ImbalanceFactor float64
	// EffBW is the bandwidth the memory term used (GB/s) after cache
	// residency and gather penalties.
	EffBW float64
	// Flops and Bytes are the Table 1 quantities.
	Flops int64
	Bytes int64
	// OI is the accurate flops/bytes ratio.
	OI float64
	// RooflineGFLOPS is the plain Roofline bound for reference.
	RooflineGFLOPS float64
	// Efficiency is GFLOPS / RooflineGFLOPS (can exceed 1 for
	// cache-resident workloads).
	Efficiency float64
}

// Model constants (calibration documented in DESIGN.md §2 and verified
// relationally by the package tests).
const (
	cacheLine = 64.0
	// gatherOverfetchTtv: Ttv reads 4-byte vector entries through an
	// irregular index, so a missing line delivers 64 bytes for 4 useful.
	gatherOverfetchTtv = 8.0
	// ttmRowPenalty: Ttm/Mttkrp gather whole R-length rows (64 bytes at
	// R=16), so lines are fully used but row misses still stall.
	ttmRowPenalty = 0.55
	// numaGatherSlope: extra gather cost per additional socket.
	numaGatherSlope = 0.9
	// numaNonStreamExp: the non-streaming kernels (Ttv/Ttm/Mttkrp) lose
	// effective bandwidth as sockets^exp on NUMA CPUs — remote accesses
	// and cross-socket coherence that "numactl --interleave" cannot hide
	// for irregular access patterns (Observation 3).
	numaNonStreamExp = 0.75
	// hicooGatherRelief: fraction of gather misses HiCOO's Morton
	// blocking removes on CPUs.
	hicooGatherRelief = 0.45
	// hicooStreamBonus: effective-bandwidth bonus of HiCOO's smaller
	// footprint for streaming kernels on CPUs.
	hicooStreamBonus = 1.10
	// computeEfficiency: fraction of theoretical peak reachable by
	// scalar sparse inner loops.
	computeEfficiency = 0.35
	// cpuAtomicOpsPerCore: sustained atomic float adds per second per
	// CPU core under contention.
	cpuAtomicOpsPerCore = 4.0e7
	// gpuAtomicOps: sustained atomicAdd throughput (ops/s).
	pascalAtomicOps = 2.0e10
	voltaAtomicOps  = 6.0e10
	// launchOverheadGPU / parallelOverheadCPU: per-execution fixed costs.
	launchOverheadGPU  = 12e-6
	parallelOverhead   = 4e-6
	denseLatencyFactor = 1.0
)

// Predict estimates one kernel execution on a platform.
func Predict(p *platform.Platform, k roofline.Kernel, f roofline.Format, w Workload) Breakdown {
	rp := roofline.Params{Order: w.Order, M: w.M, MF: w.MF, Nb: w.Nb, R: w.R, BlockSize: w.BlockSize}
	flops := roofline.Work(k, rp)
	baseBytes := roofline.Bytes(k, f, rp)

	var b Breakdown
	b.Flops = flops
	b.Bytes = baseBytes
	b.OI = roofline.OI(k, f, rp)
	b.RooflineGFLOPS = roofline.Attainable(p, b.OI)

	// --- Memory term -----------------------------------------------------
	ws := workingSet(k, f, rp, w)
	bw := effectiveBandwidth(p, ws)
	if p.Kind == platform.CPU && f == roofline.HiCOO && (k == roofline.Tew || k == roofline.Ts || k == roofline.Ttv) {
		bw *= hicooStreamBonus
	}
	if p.Kind == platform.CPU && p.Sockets > 1 &&
		(k == roofline.Ttv || k == roofline.Ttm || k == roofline.Mttkrp) {
		bw /= math.Pow(float64(p.Sockets), numaNonStreamExp)
	}
	extra := gatherExtraBytes(p, k, f, w)
	b.EffBW = bw
	b.MemTime = (float64(baseBytes) + extra) / (bw * 1e9)

	// --- Compute term ----------------------------------------------------
	b.ComputeTime = float64(flops) / (p.PeakSPGFLOPS * computeEfficiency * 1e9)

	// --- Atomic term (Mttkrp only) ---------------------------------------
	if k == roofline.Mttkrp {
		ops := float64(w.M) * float64(w.R)
		rate := atomicRate(p)
		contention := 1 + 0.15*math.Log2(1+w.Collisions)
		b.AtomicTime = ops * contention / rate
	}

	// --- Imbalance factor ------------------------------------------------
	b.ImbalanceFactor = imbalance(p, k, f, w)

	// --- Combine ----------------------------------------------------------
	dom := math.Max(b.MemTime, math.Max(b.ComputeTime, b.AtomicTime))
	b.Overhead = overhead(p)
	b.TimeSec = dom*b.ImbalanceFactor + b.Overhead
	if b.TimeSec > 0 {
		b.GFLOPS = float64(flops) / b.TimeSec / 1e9
	}
	if b.RooflineGFLOPS > 0 {
		b.Efficiency = b.GFLOPS / b.RooflineGFLOPS
	}
	return b
}

// workingSet estimates the bytes touched repeatedly across the averaged
// runs — when it fits the LLC the kernel streams from cache.
func workingSet(k roofline.Kernel, f roofline.Format, rp roofline.Params, w Workload) float64 {
	base := float64(roofline.Bytes(k, f, rp))
	switch k {
	case roofline.Ttv:
		base += 4 * float64(w.Dims[w.Mode])
	case roofline.Ttm:
		base += 4 * float64(w.Dims[w.Mode]) * float64(w.R)
	case roofline.Mttkrp:
		for _, d := range w.Dims {
			base += 4 * float64(d) * float64(w.R)
		}
	}
	return base
}

// effectiveBandwidth interpolates between LLC and DRAM bandwidth by cache
// residency.
func effectiveBandwidth(p *platform.Platform, ws float64) float64 {
	llc := float64(p.LLCBytes)
	switch {
	case ws <= llc:
		return p.ERTLLCGBs
	case ws <= 4*llc:
		// Geometric interpolation over one octave of overflow.
		t := math.Log2(ws/llc) / 2 // 0..1
		return p.ERTLLCGBs * math.Pow(p.ERTDRAMGBs/p.ERTLLCGBs, t)
	default:
		return p.ERTDRAMGBs
	}
}

// gatherExtraBytes models the cache-line overfetch of irregular accesses,
// scaled by the miss probability of the gathered set against the LLC and
// by the NUMA remote-access penalty.
func gatherExtraBytes(p *platform.Platform, k roofline.Kernel, f roofline.Format, w Workload) float64 {
	var gathered, target float64
	switch k {
	case roofline.Ttv:
		gathered = 4 * float64(w.M) * (gatherOverfetchTtv - 1)
		target = 4 * float64(w.Dims[w.Mode])
	case roofline.Ttm:
		gathered = 4 * float64(w.M) * float64(w.R) * ttmRowPenalty
		target = 4 * float64(w.Dims[w.Mode]) * float64(w.R)
	case roofline.Mttkrp:
		gathered = 4 * float64(w.M) * float64(w.R) * float64(w.Order-1) * ttmRowPenalty
		for n, d := range w.Dims {
			if n != w.Mode {
				target += 4 * float64(d) * float64(w.R)
			}
		}
	default:
		return 0
	}
	miss := missProbability(target, float64(p.LLCBytes))
	numa := 1 + numaGatherSlope*float64(p.Sockets-1)
	relief := 1.0
	if f == roofline.HiCOO && p.Kind == platform.CPU {
		relief = 1 - hicooGatherRelief
	}
	return gathered * miss * numa * relief * denseLatencyFactor
}

// missProbability estimates the gather miss rate. Only about half the
// LLC is effectively available to the gathered set — the kernel's
// streaming traffic (values, indices, outputs) continuously evicts it.
func missProbability(target, llc float64) float64 {
	avail := 0.5 * llc
	if target <= avail {
		return 0.05
	}
	return math.Min(1, 1-avail/target+0.05)
}

func atomicRate(p *platform.Platform) float64 {
	if p.Kind == platform.CPU {
		return cpuAtomicOpsPerCore * float64(p.Cores) / float64(p.Sockets) * 1.5
	}
	if p.Microarch == "Volta" {
		return voltaAtomicOps
	}
	return pascalAtomicOps
}

// imbalance returns the multiplicative load-imbalance factor of the
// platform's parallel mapping for this kernel/format.
func imbalance(p *platform.Platform, k roofline.Kernel, f roofline.Format, w Workload) float64 {
	workers := float64(p.Cores)
	if p.Kind == platform.GPU {
		// Blocks in flight ≈ SM count × occupancy.
		workers = float64(p.Cores) / 64
	}
	switch k {
	case roofline.Ttv, roofline.Ttm:
		// Fiber-parallel on CPU and thread-per-fiber on GPU.
		return blend(w.FiberImbalance, float64(w.MF), workers)
	case roofline.Mttkrp:
		if f == roofline.HiCOO {
			if p.Kind == platform.GPU {
				// One tensor block per CUDA block (§3.4.2): skewed block
				// populations and possibly too few blocks.
				under := 1.0
				if float64(w.Nb) < workers {
					under = workers / math.Max(1, float64(w.Nb))
				}
				return blend(w.BlockImbalance, float64(w.Nb), workers) * under
			}
			return blend(w.BlockImbalance, float64(w.Nb), workers)
		}
		return 1 // non-zero-parallel COO-Mttkrp is balanced
	default:
		return 1
	}
}

// blend interpolates between perfect balance (many items per worker) and
// the raw max/mean skew (items ≈ workers).
func blend(imb, items, workers float64) float64 {
	if imb <= 1 || items <= 0 {
		return 1
	}
	weight := workers / (workers + items/8)
	return 1 + (imb-1)*weight
}

func overhead(p *platform.Platform) float64 {
	if p.Kind == platform.GPU {
		return launchOverheadGPU
	}
	return parallelOverhead
}
