package perfmodel

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/roofline"
)

// TestGPUUnderutilizationFewBlocks exercises the HiCOO-Mttkrp GPU branch
// where the tensor has fewer blocks than the device can keep in flight:
// the prediction must degrade relative to a block-rich workload.
func TestGPUUnderutilizationFewBlocks(t *testing.T) {
	rich := largeWorkload()
	poor := rich
	poor.Nb = 4 // four tensor blocks for a 56-SM device
	poor.BlockImbalance = 8
	gRich := Predict(&platform.DGX1P, roofline.Mttkrp, roofline.HiCOO, rich).GFLOPS
	gPoor := Predict(&platform.DGX1P, roofline.Mttkrp, roofline.HiCOO, poor).GFLOPS
	if gPoor >= gRich {
		t.Fatalf("few-blocks workload %v >= block-rich %v", gPoor, gRich)
	}
}

// TestHiCOOGatherReliefCPUOnly verifies the Morton-locality relief lowers
// CPU Ttv time but not GPU time.
func TestHiCOOGatherReliefCPUOnly(t *testing.T) {
	w := largeWorkload()
	// Make the gather target huge so the miss term dominates.
	w.Dims = []int64{50_000_000, 10000, 767}
	cpuCOO := Predict(&platform.Bluesky, roofline.Ttv, roofline.COO, w)
	cpuHi := Predict(&platform.Bluesky, roofline.Ttv, roofline.HiCOO, w)
	if cpuHi.TimeSec >= cpuCOO.TimeSec {
		t.Fatalf("CPU HiCOO Ttv %v >= COO %v", cpuHi.TimeSec, cpuCOO.TimeSec)
	}
	gpuCOO := Predict(&platform.DGX1V, roofline.Ttv, roofline.COO, w)
	gpuHi := Predict(&platform.DGX1V, roofline.Ttv, roofline.HiCOO, w)
	ratio := gpuHi.TimeSec / gpuCOO.TimeSec
	if ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("GPU Ttv HiCOO/COO time ratio %v, want ≈ 1 (no relief on GPUs)", ratio)
	}
}

// TestFiberImbalanceHurtsGPUMoreThanCPU: thread-per-fiber mapping with a
// few fibers amplifies skew on the GPU.
func TestFiberImbalanceDegradesTtv(t *testing.T) {
	balanced := largeWorkload()
	balanced.FiberImbalance = 1
	skewed := balanced
	skewed.FiberImbalance = 500
	skewed.MF = 2000 // few fibers: imbalance cannot average out
	gb := Predict(&platform.DGX1P, roofline.Ttv, roofline.COO, balanced).GFLOPS
	gs := Predict(&platform.DGX1P, roofline.Ttv, roofline.COO, skewed).GFLOPS
	if gs >= gb {
		t.Fatalf("skewed Ttv %v >= balanced %v", gs, gb)
	}
}

// TestCollisionsRaiseAtomicTime pins the Mttkrp contention term.
func TestCollisionsRaiseAtomicTime(t *testing.T) {
	lo := largeWorkload()
	lo.Collisions = 1
	hi := largeWorkload()
	hi.Collisions = 10000
	bl := Predict(&platform.Bluesky, roofline.Mttkrp, roofline.COO, lo)
	bh := Predict(&platform.Bluesky, roofline.Mttkrp, roofline.COO, hi)
	if bh.AtomicTime <= bl.AtomicTime {
		t.Fatalf("contended atomic time %v <= uncontended %v", bh.AtomicTime, bl.AtomicTime)
	}
}

// TestBreakdownFieldsPopulated checks the exposed diagnostics.
func TestBreakdownFieldsPopulated(t *testing.T) {
	b := Predict(&platform.DGX1V, roofline.Mttkrp, roofline.COO, largeWorkload())
	if b.MemTime <= 0 || b.ComputeTime <= 0 || b.AtomicTime <= 0 {
		t.Fatalf("missing term times: %+v", b)
	}
	if b.Overhead <= 0 || b.EffBW <= 0 || b.OI <= 0 || b.Bytes <= 0 || b.Flops <= 0 {
		t.Fatalf("missing diagnostics: %+v", b)
	}
	ts := Predict(&platform.Bluesky, roofline.Ts, roofline.COO, largeWorkload())
	if ts.AtomicTime != 0 {
		t.Fatal("Ts should have no atomic term")
	}
	if ts.ImbalanceFactor != 1 {
		t.Fatal("Ts should have no imbalance factor")
	}
}
