package metrics

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/kernelreg"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// guard wraps measured runs in the resilience runner when the Config
// asks for deadlines, fallback, or fault injection. A nil *guard is the
// plain fast path; all methods tolerate it.
type guard struct {
	cfg      Config
	runner   *resilience.Runner
	inj      *resilience.Injector
	outcomes map[string]int
}

// newGuard returns nil when cfg enables no resilience feature.
func newGuard(cfg Config) *guard {
	if cfg.Timeout <= 0 && !cfg.Fallback && cfg.ChaosSeed == 0 {
		return nil
	}
	g := &guard{cfg: cfg, runner: &resilience.Runner{}, outcomes: make(map[string]int)}
	if cfg.ChaosSeed != 0 {
		g.inj = resilience.NewInjector(cfg.ChaosSeed)
		g.inj.Install()
	}
	return g
}

// close detaches the process-wide injector hook.
func (g *guard) close() {
	if g != nil && g.inj != nil {
		g.inj.Uninstall()
	}
}

// stallFor is the injected stall length: past the trial deadline when
// one is set, so FaultStall actually exercises the timeout path.
func (g *guard) stallFor() time.Duration {
	if g.cfg.Timeout > 0 {
		return 2 * g.cfg.Timeout
	}
	return 200 * time.Millisecond
}

// measure runs one warm-up trial plus `runs` timed trials of a prepared
// registry instance through the degradation ladder, recording each
// trial's outcome, and returns the mean seconds of the successful timed
// trials plus each such trial's individual wall-clock seconds.
func (g *guard) measure(inst *kernelreg.Instance, label resilience.Label, runs int) (float64, []float64, error) {
	t := resilience.Trial{
		Label:   label,
		Timeout: g.cfg.Timeout,
		Retries: 1,
		Backoff: time.Millisecond,
		Rungs:   []resilience.Rung{{Backend: label.Backend, Exec: inst.Run}},
		Check:   inst.Check,
	}
	if g.cfg.Fallback && inst.Serial != nil {
		t.Rungs = append(t.Rungs, resilience.Rung{Backend: "serial", Exec: inst.Serial})
	}
	var (
		total   float64
		trials  []float64
		lastErr error
	)
	for i := 0; i <= runs; i++ {
		armCtx, cancel := context.WithCancel(context.Background())
		if g.inj != nil {
			g.inj.ArmRandom(armCtx, 32, g.stallFor())
		}
		sp := obs.Begin("metrics.trial", label.String(), obs.PhaseTrial, -1)
		start := time.Now()
		rep := g.runner.Do(context.Background(), t)
		elapsed := time.Since(start).Seconds()
		sp.Attr("outcome", rep.String())
		sp.End()
		cancel() // unblocks any injected stall the trial abandoned
		if rep.Settled != nil {
			// The straggler must stop touching the plan's output buffer
			// before the next trial reuses it.
			<-rep.Settled
		}
		g.outcomes[rep.String()]++
		if rep.Err != nil {
			lastErr = rep.Err
			continue
		}
		if i > 0 { // the warm-up stays out of the average, like the plain path
			total += elapsed
			trials = append(trials, elapsed)
		}
	}
	if len(trials) == 0 {
		if lastErr == nil {
			lastErr = fmt.Errorf("metrics: no timed run of %s succeeded", label)
		}
		return 0, nil, lastErr
	}
	return total / float64(len(trials)), trials, nil
}

// joinOutcomes renders the per-outcome trial counts for harness tables:
// "ok" when every trial was clean, otherwise e.g.
// "fell-back:serial=2,ok=10".
func joinOutcomes(m map[string]int) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) == 1 && keys[0] == resilience.OutcomeOK.String() {
		return keys[0]
	}
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, m[k]))
	}
	return strings.Join(parts, ",")
}
