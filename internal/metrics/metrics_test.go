package metrics

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/platform"
	"repro/internal/resilience"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

func quickConfig() Config {
	c := DefaultConfig()
	c.Runs = 1
	return c
}

func testTensor(seed int64) *tensor.COO {
	return tensor.RandomCOO([]tensor.Index{60, 50, 40}, 3000, rand.New(rand.NewSource(seed)))
}

func TestMeasureHostAllKernelsAndFormats(t *testing.T) {
	host := platform.Host()
	x := testTensor(1)
	cfg := quickConfig()
	for _, k := range roofline.Kernels {
		for _, f := range []roofline.Format{roofline.COO, roofline.HiCOO} {
			r, err := MeasureHost(&host, x, k, f, cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", k, f, err)
			}
			if r.GFLOPS <= 0 || r.TimeSec <= 0 || r.Flops <= 0 {
				t.Fatalf("%v/%v: degenerate result %+v", k, f, r)
			}
			if r.Source != Measured || r.Platform != "host" {
				t.Fatalf("%v/%v: metadata wrong %+v", k, f, r)
			}
			if r.Roofline <= 0 || r.Efficiency <= 0 {
				t.Fatalf("%v/%v: roofline missing %+v", k, f, r)
			}
		}
	}
}

func TestMeasureFlopAccounting(t *testing.T) {
	host := platform.Host()
	x := testTensor(2)
	cfg := quickConfig()
	m := int64(x.NNZ())
	r, err := MeasureHost(&host, x, roofline.Tew, roofline.COO, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Flops != m {
		t.Fatalf("Tew flops %d, want M=%d", r.Flops, m)
	}
	r, err = MeasureHost(&host, x, roofline.Mttkrp, roofline.COO, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Flops != 3*m*int64(cfg.R) {
		t.Fatalf("Mttkrp flops %d, want 3MR=%d", r.Flops, 3*m*int64(cfg.R))
	}
}

func TestModelAllPlatforms(t *testing.T) {
	x := testTensor(3)
	cfg := quickConfig()
	for _, p := range platform.All() {
		for _, k := range roofline.Kernels {
			for _, f := range []roofline.Format{roofline.COO, roofline.HiCOO} {
				r := Model(p, x, k, f, cfg)
				if r.GFLOPS <= 0 || r.TimeSec <= 0 {
					t.Fatalf("%s/%v/%v: degenerate %+v", p.Name, k, f, r)
				}
				if r.Source != Modeled || r.Platform != p.Name {
					t.Fatalf("%s/%v/%v: metadata wrong", p.Name, k, f)
				}
				if r.GFLOPS > p.PeakSPGFLOPS {
					t.Fatalf("%s/%v/%v: above peak", p.Name, k, f)
				}
			}
		}
	}
}

func TestModelSmallTensorOverheadBound(t *testing.T) {
	// A 3000-nnz tensor moves ~24KB for Ts: on a GPU the kernel-launch
	// overhead dominates and the CPU (lower overhead) comes out ahead —
	// the size regime where GPUs lose, consistent with the figures'
	// small-tensor behavior.
	x := testTensor(4)
	cfg := quickConfig()
	rv := Model(&platform.DGX1V, x, roofline.Ts, roofline.COO, cfg)
	if rv.TimeSec < 10e-6 {
		t.Fatalf("V100 small-tensor time %v below launch overhead", rv.TimeSec)
	}
	gb := Model(&platform.Bluesky, x, roofline.Ts, roofline.COO, cfg).GFLOPS
	if gb <= rv.GFLOPS {
		t.Fatalf("overhead-bound GPU (%v) should lose to CPU (%v) at this size", rv.GFLOPS, gb)
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.R != 16 {
		t.Fatalf("R = %d, want 16", c.R)
	}
	if 1<<c.BlockBits != 128 {
		t.Fatalf("block size = %d, want 128", 1<<c.BlockBits)
	}
	if c.Runs != 5 {
		t.Fatalf("runs = %d, want 5", c.Runs)
	}
}

// TestMeasureHostRecordsPerModeStrategies is the regression test for the
// strategy-overwrite bug: MeasureHost used to store only the last mode's
// reduction strategy, hiding per-mode differences from ablation output.
func TestMeasureHostRecordsPerModeStrategies(t *testing.T) {
	host := platform.Host()
	x := testTensor(6)
	cfg := quickConfig()
	for _, k := range []roofline.Kernel{roofline.Ttv, roofline.Ttm, roofline.Mttkrp} {
		for _, f := range []roofline.Format{roofline.COO, roofline.HiCOO} {
			r, err := MeasureHost(&host, x, k, f, cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", k, f, err)
			}
			if len(r.Strategies) != x.Order() {
				t.Fatalf("%v/%v: %d strategies recorded, want one per mode (%d): %v",
					k, f, len(r.Strategies), x.Order(), r.Strategies)
			}
			for n, s := range r.Strategies {
				if s == "" {
					t.Fatalf("%v/%v: mode %d strategy empty", k, f, n)
				}
			}
			if r.Strategy != joinStrategies(r.Strategies) {
				t.Fatalf("%v/%v: summary %q does not reflect %v", k, f, r.Strategy, r.Strategies)
			}
		}
	}
	// Non-reduction kernels record no strategies.
	r, err := MeasureHost(&host, x, roofline.Tew, roofline.COO, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Strategies) != 0 || r.Strategy != "" {
		t.Fatalf("Tew should record no strategies, got %q / %v", r.Strategy, r.Strategies)
	}
}

func TestJoinStrategies(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{nil, ""},
		{[]string{"atomic"}, "atomic"},
		{[]string{"owner", "owner", "owner"}, "owner"},
		{[]string{"atomic", "privatized", "atomic"}, "atomic,privatized,atomic"},
	}
	for _, c := range cases {
		if got := joinStrategies(c.in); got != c.want {
			t.Errorf("joinStrategies(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestSourceString(t *testing.T) {
	if Measured.String() != "measured" || Modeled.String() != "modeled" {
		t.Fatal("Source strings wrong")
	}
}

// TestMeasureHostRegistryFormats exercises the formats the registry
// wired into the harness beyond COO/HiCOO: CSF is measured on its OMP
// variant, fCOO (GPU-only) on the simulated device.
func TestMeasureHostRegistryFormats(t *testing.T) {
	host := platform.Host()
	x := testTensor(7)
	cfg := quickConfig()
	for _, c := range []struct {
		k roofline.Kernel
		f roofline.Format
	}{
		{roofline.Ttv, roofline.CSF},
		{roofline.Mttkrp, roofline.CSF},
		{roofline.Ttv, roofline.FCOO},
		{roofline.Mttkrp, roofline.FCOO},
	} {
		r, err := MeasureHost(&host, x, c.k, c.f, cfg)
		if err != nil {
			t.Fatalf("%v/%v: %v", c.k, c.f, err)
		}
		if r.GFLOPS <= 0 || r.TimeSec <= 0 || r.Flops <= 0 || r.Roofline <= 0 {
			t.Fatalf("%v/%v: degenerate result %+v", c.k, c.f, r)
		}
	}
}

// TestMeasureHostUnsupportedTyped pins the fixed unknown-format path: a
// (kernel, format) with no registered variant fails with the typed
// resilience taxonomy, not a bare fmt.Errorf, so pastabench outcome
// aggregation can classify it.
func TestMeasureHostUnsupportedTyped(t *testing.T) {
	host := platform.Host()
	x := testTensor(8)
	_, err := MeasureHost(&host, x, roofline.Tew, roofline.CSF, quickConfig())
	if !errors.Is(err, resilience.ErrUnsupported) {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
	var ke *resilience.KernelError
	if !errors.As(err, &ke) || ke.Label.Kernel != "Tew" || ke.Label.Format != "CSF" {
		t.Fatalf("err not a labeled KernelError: %v", err)
	}
}
