package metrics

import (
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/roofline"
)

// TestMeasureHostGuardedClean runs every kernel × format through the
// resilience-guarded path with no faults armed: results must match the
// plain path's shape and every trial must report "ok".
func TestMeasureHostGuardedClean(t *testing.T) {
	host := platform.Host()
	x := testTensor(7)
	cfg := quickConfig()
	cfg.Timeout = 30 * time.Second
	cfg.Fallback = true
	for _, k := range roofline.Kernels {
		for _, f := range []roofline.Format{roofline.COO, roofline.HiCOO} {
			r, err := MeasureHost(&host, x, k, f, cfg)
			if err != nil {
				t.Fatalf("%v/%v: %v", k, f, err)
			}
			if r.GFLOPS <= 0 || r.TimeSec <= 0 {
				t.Fatalf("%v/%v: degenerate guarded result %+v", k, f, r)
			}
			if r.Outcome != "ok" {
				t.Fatalf("%v/%v: clean guarded run reported outcome %q (%v)", k, f, r.Outcome, r.Outcomes)
			}
		}
	}
}

// TestMeasureHostChaosSurvives injects random faults into host
// measurement: whatever the injector does, MeasureHost must neither
// crash nor hang, and any completed result must carry outcome counts.
func TestMeasureHostChaosSurvives(t *testing.T) {
	host := platform.Host()
	x := testTensor(8)
	cfg := quickConfig()
	cfg.Runs = 3
	cfg.Timeout = 5 * time.Second
	cfg.Fallback = true
	cfg.ChaosSeed = 42
	for _, f := range []roofline.Format{roofline.COO, roofline.HiCOO} {
		r, err := MeasureHost(&host, x, roofline.Mttkrp, f, cfg)
		if err != nil {
			// A persistent fault may exhaust every run; that is a valid
			// contained outcome, not a crash.
			t.Logf("Mttkrp/%v: measurement failed under chaos (contained): %v", f, err)
			continue
		}
		if len(r.Outcomes) == 0 || r.Outcome == "" {
			t.Fatalf("Mttkrp/%v: guarded chaos run reported no outcomes: %+v", f, r)
		}
	}
}

func TestJoinOutcomes(t *testing.T) {
	cases := []struct {
		in   map[string]int
		want string
	}{
		{nil, ""},
		{map[string]int{"ok": 12}, "ok"},
		{map[string]int{"ok": 10, "fell-back:serial": 2}, "fell-back:serial=2,ok=10"},
		{map[string]int{"timeout": 1}, "timeout=1"},
	}
	for _, c := range cases {
		if got := joinOutcomes(c.in); got != c.want {
			t.Errorf("joinOutcomes(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
