package metrics

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/roofline"
)

// paperScaled measures a stand-in's structure and lifts it to the
// entry's Table 2/3 size — the pipeline pastabench -paper-scale uses.
func paperScaled(t *testing.T, id string) []perfmodel.Workload {
	t.Helper()
	e, err := dataset.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dataset.Materialize(e, 8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	ws := Workloads(x, DefaultConfig())
	out := make([]perfmodel.Workload, len(ws))
	for i, w := range ws {
		out[i] = w.ScaleTo(e.PaperNNZ, e.PaperDims)
	}
	return out
}

// TestPaperScaleObservation2 pins the Observation 2 mechanism at unit-test
// level: the ~1M-nnz synthetic tensors exceed Bluesky's Tew Roofline
// (LLC-resident), the ~100M-nnz real tensors do not.
func TestPaperScaleObservation2(t *testing.T) {
	small := paperScaled(t, "regS") // 1.1M nnz → 13 MB Tew working set
	big := paperScaled(t, "deli")   // 140M nnz → DRAM-bound

	rs := ModelFromWorkloads(&platform.Bluesky, small, roofline.Tew, roofline.COO)
	if rs.Efficiency <= 1 {
		t.Fatalf("regS paper-scale Tew efficiency %v, want > 1 (cache-resident)", rs.Efficiency)
	}
	rb := ModelFromWorkloads(&platform.Bluesky, big, roofline.Tew, roofline.COO)
	if rb.Efficiency > 1.05 {
		t.Fatalf("deli paper-scale Tew efficiency %v, want <= ~1", rb.Efficiency)
	}
}

// TestPaperScaleObservation3 pins the NUMA ordering on a real-size
// workload: Wingtip's Ttv/Ttm efficiency below Bluesky's.
func TestPaperScaleObservation3(t *testing.T) {
	ws := paperScaled(t, "fb-m")
	for _, k := range []roofline.Kernel{roofline.Ttv, roofline.Ttm} {
		eb := ModelFromWorkloads(&platform.Bluesky, ws, k, roofline.COO).Efficiency
		ew := ModelFromWorkloads(&platform.Wingtip, ws, k, roofline.COO).Efficiency
		if ew >= eb {
			t.Fatalf("%v: Wingtip efficiency %v >= Bluesky %v", k, ew, eb)
		}
	}
}

// TestPaperScaleObservation4 pins the GPU Mttkrp format ordering on a
// heavy-hub 4th-order tensor (the irr2*4d class where the paper sees
// HiCOO-Mttkrp-GPU collapse).
func TestPaperScaleObservation4(t *testing.T) {
	ws := paperScaled(t, "irr2S4d")
	for _, p := range []*platform.Platform{&platform.DGX1P, &platform.DGX1V} {
		gc := ModelFromWorkloads(p, ws, roofline.Mttkrp, roofline.COO).GFLOPS
		gh := ModelFromWorkloads(p, ws, roofline.Mttkrp, roofline.HiCOO).GFLOPS
		if gh >= gc {
			t.Fatalf("%s: HiCOO-Mttkrp %v >= COO-Mttkrp %v", p.Name, gh, gc)
		}
	}
}

// TestPaperScaleMttkrpEfficiencyBand checks the headline Mttkrp numbers
// stay in the paper's neighborhood: CPUs in single digits, V100 above
// P100.
func TestPaperScaleMttkrpEfficiencyBand(t *testing.T) {
	ws := paperScaled(t, "choa")
	eb := ModelFromWorkloads(&platform.Bluesky, ws, roofline.Mttkrp, roofline.COO).Efficiency
	if eb > 0.15 {
		t.Fatalf("Bluesky Mttkrp efficiency %v, paper reports ~6%%", eb)
	}
	ep := ModelFromWorkloads(&platform.DGX1P, ws, roofline.Mttkrp, roofline.COO).Efficiency
	ev := ModelFromWorkloads(&platform.DGX1V, ws, roofline.Mttkrp, roofline.COO).Efficiency
	if ev <= ep {
		t.Fatalf("V100 Mttkrp efficiency %v <= P100 %v", ev, ep)
	}
	if ep <= eb {
		t.Fatalf("P100 Mttkrp efficiency %v <= Bluesky %v", ep, eb)
	}
}
