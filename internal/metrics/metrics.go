// Package metrics is the measurement harness of the benchmark suite: it
// runs a kernel in a given format on the host (wall-clock timed, averaged
// over 5 runs and over all tensor modes, as §5.1.2 prescribes) or
// evaluates the analytic model for one of the paper's platforms, and
// reports GFLOPS against the Roofline bound. Which implementations exist
// — and how each is prepared, run, and modeled — comes from the
// kernelreg registry; this package only times and aggregates.
package metrics

import (
	"context"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/hicoo"
	"repro/internal/kernelreg"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/perfmodel"
	"repro/internal/platform"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// Source tells whether a Result was measured on the host or predicted by
// the analytic model.
type Source int

const (
	// Measured results come from host wall-clock timing.
	Measured Source = iota
	// Modeled results come from the perfmodel prediction.
	Modeled
)

func (s Source) String() string {
	if s == Modeled {
		return "modeled"
	}
	return "measured"
}

// Config holds the experiment parameters of §5.1.2.
type Config struct {
	// R is the factor-matrix column count (paper: 16).
	R int
	// BlockBits is log2 of the HiCOO block size (paper: B=128 → 7).
	BlockBits uint8
	// Runs is the number of timed repetitions averaged (paper: 5).
	Runs int
	// Sched is the OpenMP scheduling policy for host measurement.
	Sched parallel.Options
	// Timeout bounds each guarded measurement trial (all retries and
	// fallback rungs); zero disables deadlines.
	Timeout time.Duration
	// Fallback adds a serial rung below the variant's backend so a
	// faulting run degrades to a slower, correct result instead of
	// failing the measurement.
	Fallback bool
	// ChaosSeed, when non-zero, installs the deterministic fault
	// injector for the duration of the measurement, arming a random
	// fault per trial from this seed (fault drills for the ladder).
	ChaosSeed int64
}

// DefaultConfig returns the paper's experiment configuration.
func DefaultConfig() Config {
	return Config{
		R:         core.DefaultR,
		BlockBits: hicoo.DefaultBlockBits,
		Runs:      5,
		Sched:     parallel.Options{Schedule: parallel.Dynamic},
	}
}

// regConfig maps the experiment parameters onto a workbench config.
func regConfig(cfg Config) kernelreg.Config {
	return kernelreg.Config{R: cfg.R, BlockBits: cfg.BlockBits, Sched: cfg.Sched}
}

// Result is one bar of Figures 4-7: a (tensor, kernel, format, platform)
// performance point.
type Result struct {
	TensorID   string
	TensorName string
	Kernel     roofline.Kernel
	Format     roofline.Format
	Platform   string
	Source     Source
	// GFLOPS is flops (Table 1 Work) divided by the mode-and-run-averaged
	// execution time.
	GFLOPS float64
	// Roofline is the attainable bound from the per-tensor accurate OI.
	Roofline float64
	// Efficiency is GFLOPS / Roofline.
	Efficiency float64
	// TimeSec is the averaged per-execution time.
	TimeSec float64
	// Flops is the per-execution floating point work.
	Flops int64
	// Strategy summarizes the reduction strategies the kernel's OMP path
	// resolved to ("owner", "atomic", "privatized") on measured runs of
	// the reduction kernels: the single value when every mode agreed,
	// otherwise the comma-joined per-mode list (e.g.
	// "atomic,privatized,atomic"); empty otherwise.
	Strategy string
	// Strategies records the strategy each mode resolved to, in mode
	// order. The adaptive selector may pick differently per mode, so
	// ablation output must not pretend the last mode's choice covered
	// the whole measurement.
	Strategies []string
	// Plan names the conversion path the planner chose while preparing
	// the variant ("direct:levels.Build:bCSF",
	// "reuse-csf:levels.BlockRoot", ...): the single value when every
	// mode agreed, otherwise the comma-joined per-mode list; empty for
	// variants with no planned conversion.
	Plan string `json:"Plan,omitempty"`
	// Outcome summarizes how the guarded trials ended ("ok", or e.g.
	// "fell-back:serial=2,ok=10"); empty when resilience guarding is
	// off (no Timeout, Fallback, or ChaosSeed configured).
	Outcome string
	// Outcomes counts trials per resilience outcome across all modes,
	// runs, and warm-ups of this measurement; nil when guarding is off.
	Outcomes map[string]int
	// TrialSec lists every timed trial's wall-clock seconds in execution
	// order (cfg.Runs entries per mode, warm-ups excluded), so consumers
	// can compute variance instead of trusting the mean. Nil-valued
	// fields stay absent from JSON, keeping pre-existing output
	// byte-compatible.
	TrialSec []float64 `json:"TrialSec,omitempty"`
	// Counters is the obs counter delta attributable to this measurement
	// (preparation included); nil unless obs counting was enabled.
	Counters map[string]int64 `json:"Counters,omitempty"`
}

// MeasureHost times one kernel × format on the host CPU, averaging over
// all modes (for the mode-dependent kernels) and cfg.Runs repetitions
// per mode, excluding the preprocessing stage exactly as the paper does.
// The implementation comes from the kernelreg registry (the OMP variant
// when one is registered, else the simulated-device variant — how the
// GPU-only fCOO format gets host rows); an unregistered (kernel, format)
// returns the typed resilience.ErrUnsupported taxonomy error. When the
// Config enables a Timeout, Fallback, or ChaosSeed, every run executes
// as a resilience trial: panics are contained, the deadline is enforced,
// and a faulting run may degrade to the serial rung; per-trial outcomes
// aggregate into Result.Outcome.
func MeasureHost(host *platform.Platform, x *tensor.COO, k roofline.Kernel, f roofline.Format, cfg Config) (Result, error) {
	res := Result{
		Kernel: k, Format: f, Platform: host.Name, Source: Measured,
	}
	v, err := kernelreg.HostVariant(k, f)
	if err != nil {
		return res, err
	}
	wb := kernelreg.NewWorkbench(x, regConfig(cfg))
	g := newGuard(cfg)
	defer g.close()
	label := v.Label()
	variant := v.String()
	counting := obs.Counting()
	var ctrBefore map[string]int64
	if counting {
		ctrBefore = obs.CounterSnapshot()
	}
	var (
		totalTime  float64
		totalFlops int64
		execs      int
		plans      []string
	)
	for mode := 0; mode < v.Modes(x); mode++ {
		inst, err := v.Prepare(wb, mode)
		if err != nil {
			return res, err
		}
		if inst.Plan != "" {
			plans = append(plans, inst.Plan)
		}
		if g == nil {
			if err := inst.Run(context.Background()); err != nil { // warm-up, also verifies the path once
				return res, err
			}
			var modeTotal float64
			for i := 0; i < cfg.Runs; i++ {
				sp := obs.Begin("metrics.trial", variant, obs.PhaseTrial, -1)
				start := time.Now()
				err := inst.Run(context.Background())
				elapsed := time.Since(start).Seconds()
				sp.End()
				if err != nil {
					return res, err
				}
				modeTotal += elapsed
				res.TrialSec = append(res.TrialSec, elapsed)
			}
			totalTime += modeTotal / float64(cfg.Runs)
		} else {
			sec, trials, err := g.measure(inst, label, cfg.Runs)
			if err != nil {
				return res, err
			}
			totalTime += sec
			res.TrialSec = append(res.TrialSec, trials...)
		}
		totalFlops += inst.Flops
		execs++
		if inst.Strategy != nil {
			res.Strategies = append(res.Strategies, inst.Strategy())
		}
	}

	if g != nil {
		res.Outcomes = g.outcomes
		res.Outcome = joinOutcomes(g.outcomes)
	}
	res.TimeSec = totalTime / float64(execs)
	res.Flops = totalFlops / int64(execs)
	if res.TimeSec > 0 {
		res.GFLOPS = float64(res.Flops) / res.TimeSec / 1e9
	}
	res.Strategy = joinStrategies(res.Strategies)
	res.Plan = joinStrategies(plans)
	res.Roofline, res.Efficiency = rooflineBound(host, x, v, cfg, res.GFLOPS)
	if counting {
		res.Counters = obs.DiffSnapshot(ctrBefore, obs.CounterSnapshot())
	}
	return res, nil
}

// joinStrategies collapses per-mode strategies for display: the single
// value when every mode agreed, otherwise the comma-joined list.
func joinStrategies(s []string) string {
	if len(s) == 0 {
		return ""
	}
	for _, v := range s[1:] {
		if v != s[0] {
			return strings.Join(s, ",")
		}
	}
	return s[0]
}

// Workloads precomputes the per-mode workload statistics of a tensor so a
// sweep over kernels, formats, and platforms measures each (tensor, mode)
// only once.
func Workloads(x *tensor.COO, cfg Config) []perfmodel.Workload {
	return perfmodel.FromTensorAllModes(x, cfg.R, cfg.BlockBits)
}

// Model evaluates the analytic model for one kernel × format on a
// platform, averaging the per-mode predictions like the measurement path.
func Model(p *platform.Platform, x *tensor.COO, k roofline.Kernel, f roofline.Format, cfg Config) Result {
	return ModelFromWorkloads(p, Workloads(x, cfg), k, f)
}

// ModelFromWorkloads is Model with precomputed per-mode workloads.
func ModelFromWorkloads(p *platform.Platform, ws []perfmodel.Workload, k roofline.Kernel, f roofline.Format) Result {
	res := Result{
		Kernel: k, Format: f, Platform: p.Name, Source: Modeled,
	}
	modes := len(ws)
	if !kernelreg.ModeDependent(k) {
		modes = 1
	}
	var totalTime, oiSum float64
	var totalFlops int64
	for mode := 0; mode < modes; mode++ {
		b := perfmodel.Predict(p, k, f, ws[mode])
		totalTime += b.TimeSec
		totalFlops += b.Flops
		oiSum += b.OI
	}
	res.TimeSec = totalTime / float64(modes)
	res.Flops = totalFlops / int64(modes)
	if res.TimeSec > 0 {
		res.GFLOPS = float64(res.Flops) / res.TimeSec / 1e9
	}
	oi := oiSum / float64(modes)
	res.Roofline = roofline.Attainable(p, oi)
	if res.Roofline > 0 {
		res.Efficiency = res.GFLOPS / res.Roofline
	}
	return res
}

// rooflineBound computes the per-tensor accurate-OI Roofline bound from
// the variant's model hook, averaging the OI across modes for the
// mode-dependent kernels.
func rooflineBound(p *platform.Platform, x *tensor.COO, v *kernelreg.Variant, cfg Config, gflops float64) (bound, eff float64) {
	modes := v.Modes(x)
	var oiSum float64
	for mode := 0; mode < modes; mode++ {
		rp := paramsFor(x, mode, cfg)
		oiSum += v.OI(rp)
	}
	oi := oiSum / float64(modes)
	bound = roofline.Attainable(p, oi)
	if bound > 0 {
		eff = gflops / bound
	}
	return bound, eff
}

// paramsFor measures the Table 1 quantities of one (tensor, mode).
func paramsFor(x *tensor.COO, mode int, cfg Config) roofline.Params {
	rp := roofline.Params{
		Order: x.Order(), M: int64(x.NNZ()),
		R: int64(cfg.R), BlockSize: 1 << cfg.BlockBits,
	}
	fs := tensor.ComputeFiberStats(x, mode)
	rp.MF = int64(fs.NumFibers)
	h := hicoo.FromCOO(x, cfg.BlockBits)
	rp.Nb = int64(h.NumBlocks())
	return rp
}
