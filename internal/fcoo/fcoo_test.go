package fcoo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/gpusim"
	"repro/internal/tensor"
)

func randTensor(seed int64, dims []tensor.Index, nnz int) *tensor.COO {
	return tensor.RandomCOO(dims, nnz, rand.New(rand.NewSource(seed)))
}

func dev() *gpusim.Device { return gpusim.NewDevice("fcoo", 8) }

func TestFromCOOStructure(t *testing.T) {
	x := randTensor(1, []tensor.Index{20, 25, 30}, 800)
	for mode := 0; mode < 3; mode++ {
		f, err := FromCOO(x, mode, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if f.NNZ() != x.NNZ() {
			t.Fatalf("nnz %d, want %d", f.NNZ(), x.NNZ())
		}
		fs := tensor.ComputeFiberStats(x, mode)
		if f.NumFibers() != fs.NumFibers {
			t.Fatalf("mode %d: %d fibers, want %d", mode, f.NumFibers(), fs.NumFibers)
		}
		if f.StorageBytes() <= 0 {
			t.Fatal("storage must be positive")
		}
	}
}

func TestFromCOOErrors(t *testing.T) {
	x := randTensor(2, []tensor.Index{5, 5}, 10)
	if _, err := FromCOO(x, 3, 0); err == nil {
		t.Fatal("expected mode error")
	}
	vec := tensor.NewCOO([]tensor.Index{5}, 0)
	if _, err := FromCOO(vec, 0, 0); err == nil {
		t.Fatal("expected order error")
	}
	if _, err := FromCOOMttkrp(x, -1, 0); err == nil {
		t.Fatal("expected Mttkrp mode error")
	}
	if _, err := FromCOOMttkrp(vec, 0, 0); err == nil {
		t.Fatal("expected Mttkrp order error")
	}
}

func TestTtvGPUMatchesCOO(t *testing.T) {
	x := randTensor(3, []tensor.Index{40, 50, 30}, 3000)
	rng := rand.New(rand.NewSource(4))
	for mode := 0; mode < 3; mode++ {
		for _, seg := range []int{16, 256} {
			f, err := FromCOO(x, mode, seg)
			if err != nil {
				t.Fatal(err)
			}
			v := tensor.RandomVector(int(x.Dims[mode]), rng)
			got, err := f.TtvGPU(dev(), v)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.Ttv(x, v, mode)
			if err != nil {
				t.Fatal(err)
			}
			if d := tensor.AbsDiff(got, want); d > 1e-3 {
				t.Fatalf("mode %d seg %d: diff %v", mode, seg, d)
			}
		}
	}
}

func TestTtvGPUSegmentBoundaryCarry(t *testing.T) {
	// One long fiber spanning many segments: every segment carries, so
	// the atomicAdd path handles every partial.
	x := tensor.NewCOO([]tensor.Index{2, 2, 1000}, 600)
	for k := 0; k < 600; k++ {
		x.AppendIdx3(1, 1, tensor.Index(k), 1)
	}
	f, err := FromCOO(x, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.NumFibers() != 1 {
		t.Fatalf("fibers = %d, want 1", f.NumFibers())
	}
	v := tensor.NewVector(1000)
	for i := range v {
		v[i] = 1
	}
	got, err := f.TtvGPU(dev(), v)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 1 || got.Vals[0] != 600 {
		t.Fatalf("got %v (nnz=%d), want 600", got.Vals, got.NNZ())
	}
}

func TestTtvGPUErrors(t *testing.T) {
	x := randTensor(5, []tensor.Index{5, 5, 5}, 20)
	f, err := FromCOO(x, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.TtvGPU(dev(), tensor.NewVector(3)); err == nil {
		t.Fatal("expected vector-length error")
	}
}

func TestMttkrpGPUMatchesCOO(t *testing.T) {
	x := randTensor(6, []tensor.Index{30, 35, 25}, 2500)
	r := 8
	rng := rand.New(rand.NewSource(7))
	mats := make([]*tensor.Matrix, 3)
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	for mode := 0; mode < 3; mode++ {
		for _, seg := range []int{32, 512} {
			f, err := FromCOOMttkrp(x, mode, seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Validate(); err != nil {
				t.Fatal(err)
			}
			got, err := f.MttkrpGPU(dev(), mats, r)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.Mttkrp(x, mats, mode)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Data {
				g, w := float64(got.Data[i]), float64(want.Data[i])
				if math.Abs(g-w) > 2e-3*math.Max(1, math.Abs(w)) {
					t.Fatalf("mode %d seg %d: element %d = %v, want %v", mode, seg, i, g, w)
				}
			}
		}
	}
}

func TestMttkrpGPUOrder4(t *testing.T) {
	x := randTensor(8, []tensor.Index{12, 10, 14, 8}, 700)
	r := 4
	rng := rand.New(rand.NewSource(9))
	mats := make([]*tensor.Matrix, 4)
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	f, err := FromCOOMttkrp(x, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.MttkrpGPU(dev(), mats, r)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Mttkrp(x, mats, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		g, w := float64(got.Data[i]), float64(want.Data[i])
		if math.Abs(g-w) > 2e-3*math.Max(1, math.Abs(w)) {
			t.Fatalf("element %d = %v, want %v", i, g, w)
		}
	}
}

func TestMttkrpGPUErrors(t *testing.T) {
	x := randTensor(10, []tensor.Index{6, 6, 6}, 30)
	f, err := FromCOO(x, 0, 0) // Ttv layout: lacks OtherInds
	if err != nil {
		t.Fatal(err)
	}
	mats := []*tensor.Matrix{nil, tensor.NewMatrix(6, 4), tensor.NewMatrix(6, 4)}
	if _, err := f.MttkrpGPU(dev(), mats, 4); err == nil {
		t.Fatal("expected layout error for Ttv-built F-COO")
	}
	fm, err := FromCOOMttkrp(x, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fm.MttkrpGPU(dev(), mats[:2], 4); err == nil {
		t.Fatal("expected arity error")
	}
	bad := []*tensor.Matrix{nil, tensor.NewMatrix(5, 4), tensor.NewMatrix(6, 4)}
	if _, err := fm.MttkrpGPU(dev(), bad, 4); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestFCOOStorageCompetitive(t *testing.T) {
	// F-COO for Ttv drops the N-1 per-non-zero index arrays in favor of
	// one bit per non-zero plus fiber output indices — smaller than COO
	// whenever fibers are reasonably populated.
	x := randTensor(11, []tensor.Index{64, 64, 64}, 20000)
	f, err := FromCOO(x, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.StorageBytes() >= x.StorageBytes() {
		t.Fatalf("F-COO %d bytes >= COO %d bytes on clustered tensor", f.StorageBytes(), x.StorageBytes())
	}
}

func TestFCOOProperty(t *testing.T) {
	f := func(seed int64, modeRaw, segRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []tensor.Index{
			tensor.Index(rng.Intn(20) + 2),
			tensor.Index(rng.Intn(20) + 2),
			tensor.Index(rng.Intn(20) + 2),
		}
		x := tensor.RandomCOO(dims, rng.Intn(300)+1, rng)
		mode := int(modeRaw) % 3
		seg := int(segRaw)%60 + 4
		fc, err := FromCOO(x, mode, seg)
		if err != nil || fc.Validate() != nil {
			return false
		}
		v := tensor.RandomVector(int(dims[mode]), rng)
		got, err := fc.TtvGPU(dev(), v)
		if err != nil {
			return false
		}
		want, err := core.Ttv(x, v, mode)
		if err != nil {
			return false
		}
		return tensor.AbsDiff(got, want) <= 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
