// Package fcoo implements the flagged-COO (F-COO) sparse tensor format of
// Liu et al. (CLUSTER'17), one of the formats the paper's §3 surveys next
// to CSF and HiCOO. F-COO is *mode-specific*: for a computation in mode n
// it stores the product-mode indices per non-zero plus one bit flag
// marking the start of each output unit (fiber), and per-segment start
// flags so fixed-size segments can be processed independently by GPU
// thread blocks with a segmented reduction — replacing both the fiber
// pointers of COO kernels and most of their atomics.
package fcoo

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/tensor"
)

// DefaultSegSize is the number of non-zeros a GPU thread block processes.
const DefaultSegSize = 256

// FCOO is an F-COO representation specialized for one product mode.
type FCOO struct {
	// Dims holds the size of every mode.
	Dims []tensor.Index
	// Mode is the product mode the format is specialized for.
	Mode int
	// SegSize is the segment length (non-zeros per thread block).
	SegSize int
	// KInd holds the product-mode index of each non-zero.
	KInd []tensor.Index
	// Vals holds the non-zero values in fiber order.
	Vals []tensor.Value
	// BitFlag is a packed bitset with one bit per non-zero: set when the
	// non-zero starts a new fiber (a new output element).
	BitFlag []uint64
	// StartFlag has one bit per segment: set when the segment's first
	// non-zero CONTINUES the previous segment's fiber (the carry case).
	StartFlag []uint64
	// SegFiber maps each segment to the fiber its first non-zero belongs
	// to (per-segment metadata, like F-COO's precomputed block starts).
	SegFiber []int32
	// numFlagged counts the set bits in BitFlag.
	numFlagged int
	// OutInds holds the output coordinates of each fiber, one array per
	// non-product mode (ascending mode order). Set by FromCOO (the
	// Ttv-oriented layout).
	OutInds [][]tensor.Index
	// OtherInds holds per-NON-ZERO index arrays for the non-output modes
	// (ascending mode order). Set by FromCOOMttkrp (the Mttkrp-oriented
	// layout, where Mode is the OUTPUT mode and KInd carries output rows).
	OtherInds [][]tensor.Index
}

// NNZ returns the number of stored non-zeros.
func (f *FCOO) NNZ() int { return len(f.Vals) }

// NumFibers returns the number of output units (fibers for the Ttv
// layout, distinct output-row runs for the Mttkrp layout).
func (f *FCOO) NumFibers() int {
	if len(f.OutInds) > 0 {
		return len(f.OutInds[0])
	}
	return f.numFlagged
}

// NumSegments returns the number of fixed-size segments.
func (f *FCOO) NumSegments() int { return (f.NNZ() + f.SegSize - 1) / f.SegSize }

// StorageBytes returns the F-COO footprint: values, product-mode indices,
// one bit per non-zero, per-segment metadata, and the fiber output
// indices.
func (f *FCOO) StorageBytes() int64 {
	m := int64(f.NNZ())
	segs := int64(f.NumSegments())
	b := 4*m + 4*m + (m+7)/8 + segs/8 + 4*segs
	for range f.OutInds {
		b += 4 * int64(f.NumFibers())
	}
	return b
}

func bitGet(set []uint64, i int64) bool { return set[i>>6]>>(uint(i)&63)&1 == 1 }
func bitSet(set []uint64, i int64)      { set[i>>6] |= 1 << (uint(i) & 63) }

// FromCOO builds the mode-n F-COO representation. The tensor is sorted so
// mode-n fibers are contiguous (a clone is sorted if needed); segSize <= 0
// selects DefaultSegSize.
func FromCOO(t *tensor.COO, mode, segSize int) (*FCOO, error) {
	if mode < 0 || mode >= t.Order() {
		return nil, fmt.Errorf("fcoo: mode %d out of range for order-%d tensor", mode, t.Order())
	}
	if t.Order() < 2 {
		return nil, fmt.Errorf("fcoo: need an order >= 2 tensor")
	}
	if segSize <= 0 {
		segSize = DefaultSegSize
	}
	xs := t
	if !xs.IsSortedBy(tensor.ModeOrder(t.Order(), mode)) {
		xs = t.Clone()
		xs.SortForMode(mode)
	}
	fptr := xs.FiberPointers(mode)
	mf := len(fptr) - 1
	m := xs.NNZ()

	f := &FCOO{
		Dims:    append([]tensor.Index(nil), t.Dims...),
		Mode:    mode,
		SegSize: segSize,
		KInd:    append([]tensor.Index(nil), xs.Inds[mode]...),
		Vals:    append([]tensor.Value(nil), xs.Vals...),
		BitFlag: make([]uint64, (m+63)/64+1),
	}
	for _, n := range otherModes(t.Order(), mode) {
		ind := make([]tensor.Index, mf)
		src := xs.Inds[n]
		for fi := 0; fi < mf; fi++ {
			ind[fi] = src[fptr[fi]]
		}
		f.OutInds = append(f.OutInds, ind)
	}
	for fi := 0; fi < mf; fi++ {
		bitSet(f.BitFlag, fptr[fi])
	}
	f.numFlagged = mf
	f.buildSegments()
	return f, nil
}

// FromCOOMttkrp builds the Mttkrp-oriented F-COO layout for output mode
// n: non-zeros sorted with mode n outermost, KInd carrying the OUTPUT row
// of each non-zero, bit flags marking output-row changes, and per-non-
// zero index arrays for the other modes.
func FromCOOMttkrp(t *tensor.COO, mode, segSize int) (*FCOO, error) {
	if mode < 0 || mode >= t.Order() {
		return nil, fmt.Errorf("fcoo: mode %d out of range for order-%d tensor", mode, t.Order())
	}
	if t.Order() < 2 {
		return nil, fmt.Errorf("fcoo: need an order >= 2 tensor")
	}
	if segSize <= 0 {
		segSize = DefaultSegSize
	}
	// Sort with the output mode outermost.
	perm := append([]int{mode}, otherModes(t.Order(), mode)...)
	xs := t
	if !xs.IsSortedBy(perm) {
		xs = t.Clone()
		xs.Sort(perm)
	}
	m := xs.NNZ()
	f := &FCOO{
		Dims:    append([]tensor.Index(nil), t.Dims...),
		Mode:    mode,
		SegSize: segSize,
		KInd:    append([]tensor.Index(nil), xs.Inds[mode]...),
		Vals:    append([]tensor.Value(nil), xs.Vals...),
		BitFlag: make([]uint64, (m+63)/64+1),
	}
	for _, n := range otherModes(t.Order(), mode) {
		f.OtherInds = append(f.OtherInds, append([]tensor.Index(nil), xs.Inds[n]...))
	}
	for x := 0; x < m; x++ {
		if x == 0 || f.KInd[x] != f.KInd[x-1] {
			bitSet(f.BitFlag, int64(x))
			f.numFlagged++
		}
	}
	f.buildSegments()
	return f, nil
}

// buildSegments derives the per-segment metadata from the bit flags.
func (f *FCOO) buildSegments() {
	m := int64(f.NNZ())
	segs := f.NumSegments()
	f.StartFlag = make([]uint64, (int64(segs)+63)/64+1)
	f.SegFiber = make([]int32, segs)
	fiber := int32(-1)
	for s := 0; s < segs; s++ {
		start := int64(s) * int64(f.SegSize)
		if bitGet(f.BitFlag, start) {
			fiber++
		} else {
			bitSet(f.StartFlag, int64(s)) // carries the previous fiber
		}
		f.SegFiber[s] = fiber
		end := start + int64(f.SegSize)
		if end > m {
			end = m
		}
		for x := start + 1; x < end; x++ {
			if bitGet(f.BitFlag, x) {
				fiber++
			}
		}
	}
}

func otherModes(order, mode int) []int {
	out := make([]int, 0, order-1)
	for n := 0; n < order; n++ {
		if n != mode {
			out = append(out, n)
		}
	}
	return out
}

// Validate checks structural invariants.
func (f *FCOO) Validate() error {
	m := int64(f.NNZ())
	if m == 0 {
		return nil
	}
	if !bitGet(f.BitFlag, 0) {
		return fmt.Errorf("fcoo: first non-zero must start a fiber")
	}
	flags := int64(0)
	for x := int64(0); x < m; x++ {
		if bitGet(f.BitFlag, x) {
			flags++
		}
	}
	if flags != int64(f.NumFibers()) {
		return fmt.Errorf("fcoo: %d fiber flags for %d output fibers", flags, f.NumFibers())
	}
	for s := 0; s < f.NumSegments(); s++ {
		start := int64(s) * int64(f.SegSize)
		carries := !bitGet(f.BitFlag, start)
		if carries != bitGet(f.StartFlag, int64(s)) {
			return fmt.Errorf("fcoo: segment %d start flag inconsistent", s)
		}
	}
	d := f.Dims[f.Mode]
	for _, k := range f.KInd {
		if k >= d {
			return fmt.Errorf("fcoo: product index %d out of range", k)
		}
	}
	return nil
}

// TtvGPU computes Y = X ×ₙ v with a segmented reduction: one thread block
// per segment accumulates fiber partials locally (threads within a block
// cooperate on the segment) and combines cross-segment carries with
// atomicAdd — F-COO's replacement for the one-thread-per-fiber COO kernel
// whose load imbalance the paper highlights. The output is a COO tensor
// of order N-1.
func (f *FCOO) TtvGPU(dev *gpusim.Device, v tensor.Vector) (*tensor.COO, error) {
	if len(v) != int(f.Dims[f.Mode]) {
		return nil, fmt.Errorf("fcoo: vector length %d, want %d", len(v), f.Dims[f.Mode])
	}
	mf := f.NumFibers()
	outDims := make([]tensor.Index, 0, len(f.Dims)-1)
	for _, n := range otherModes(len(f.Dims), f.Mode) {
		outDims = append(outDims, f.Dims[n])
	}
	out := &tensor.COO{
		Dims: outDims,
		Inds: make([][]tensor.Index, len(outDims)),
		Vals: make([]tensor.Value, mf),
	}
	for i := range out.Inds {
		out.Inds[i] = append([]tensor.Index(nil), f.OutInds[i]...)
	}
	if f.NNZ() == 0 {
		return out, nil
	}

	m := int64(f.NNZ())
	segSize := int64(f.SegSize)
	segs := f.NumSegments()
	yv := out.Vals
	// One block per segment; thread 0 performs the segment's sequential
	// segmented scan (gpusim threads in a block run sequentially, so a
	// cooperative scan would be semantically identical).
	dev.Launch(gpusim.Dim1(segs), gpusim.Dim1(1), func(ctx gpusim.Ctx) {
		s := ctx.BlockIdx.X
		start := int64(s) * segSize
		end := start + segSize
		if end > m {
			end = m
		}
		fiber := f.SegFiber[s]
		var acc tensor.Value
		carrying := bitGet(f.StartFlag, int64(s))
		for x := start; x < end; x++ {
			if x > start && bitGet(f.BitFlag, x) {
				// Close the current fiber: the first partial of a carrying
				// segment and the final partial may race with neighbor
				// segments, so they use atomicAdd; interior fibers are
				// exclusive to this segment.
				if carrying {
					gpusim.AtomicAdd(&yv[fiber], acc)
					carrying = false
				} else {
					yv[fiber] += acc
				}
				acc = 0
				fiber++
			}
			acc += f.Vals[x] * v[f.KInd[x]]
		}
		// Final partial: the fiber may continue into the next segment.
		gpusim.AtomicAdd(&yv[fiber], acc)
	})
	return out, nil
}

// MttkrpGPU computes the Mttkrp for the output mode this F-COO was built
// with (FromCOOMttkrp) using the same segmented scheme: per segment,
// R-wide partials are accumulated per output row and merged with atomics
// only where a row spans a segment boundary — F-COO's answer to
// COO-Mttkrp's per-non-zero atomics.
func (f *FCOO) MttkrpGPU(dev *gpusim.Device, mats []*tensor.Matrix, r int) (*tensor.Matrix, error) {
	order := len(f.Dims)
	if len(mats) != order {
		return nil, fmt.Errorf("fcoo: got %d factor matrices, want %d", len(mats), order)
	}
	others := otherModes(order, f.Mode)
	if len(f.OtherInds) != len(others) {
		return nil, fmt.Errorf("fcoo: representation lacks other-mode indices (build with FromCOOMttkrp)")
	}
	for _, n := range others {
		u := mats[n]
		if u == nil || u.Rows != int(f.Dims[n]) || u.Cols != r {
			return nil, fmt.Errorf("fcoo: factor %d malformed", n)
		}
	}
	out := tensor.NewMatrix(int(f.Dims[f.Mode]), r)
	if f.NNZ() == 0 {
		return out, nil
	}
	m := int64(f.NNZ())
	segSize := int64(f.SegSize)
	segs := f.NumSegments()
	od := out.Data
	dev.Launch(gpusim.Dim1(segs), gpusim.Dim1(1), func(ctx gpusim.Ctx) {
		s := ctx.BlockIdx.X
		start := int64(s) * segSize
		end := start + segSize
		if end > m {
			end = m
		}
		acc := make([]tensor.Value, r)
		flush := func(row int, atomically bool) {
			base := row * r
			for c := 0; c < r; c++ {
				if acc[c] == 0 {
					continue
				}
				if atomically {
					gpusim.AtomicAdd(&od[base+c], acc[c])
				} else {
					od[base+c] += acc[c]
				}
				acc[c] = 0
			}
		}
		carrying := bitGet(f.StartFlag, int64(s))
		row := int(f.KInd[start])
		for x := start; x < end; x++ {
			if x > start && bitGet(f.BitFlag, x) {
				flush(row, carrying)
				carrying = false
				row = int(f.KInd[x])
			}
			for c := 0; c < r; c++ {
				p := f.Vals[x]
				for oi, n := range others {
					p *= mats[n].Data[int(f.OtherInds[oi][x])*r+c]
				}
				acc[c] += p
			}
		}
		flush(row, true)
	})
	return out, nil
}
