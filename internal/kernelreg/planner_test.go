package kernelreg

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/roofline"
	"repro/internal/tensor"
)

func plannerTensor() *tensor.COO {
	return tensor.RandomCOO([]tensor.Index{30, 25, 20}, 400, rand.New(rand.NewSource(11)))
}

// TestConvCostsTable pins the cost table's lookup order: a measured
// edge beats its prior, an unmeasured edge falls back to the static
// prior, an unknown edge to the FromCOO prior, and Observe folds
// repeated measurements into a moving average rather than keeping only
// the last sample.
func TestConvCostsTable(t *testing.T) {
	c := NewConvCosts()
	if c.Measured(EdgeCSFFromCOO) {
		t.Fatal("fresh table claims a measurement")
	}
	if got := c.Estimate(EdgeBlockRoot); got != defaultCostPriors[EdgeBlockRoot] {
		t.Fatalf("unmeasured estimate %g, want prior %g", got, defaultCostPriors[EdgeBlockRoot])
	}
	if got := c.Estimate("no.such.edge"); got != defaultCostPriors[EdgeCSFFromCOO] {
		t.Fatalf("unknown-edge estimate %g, want FromCOO prior %g", got, defaultCostPriors[EdgeCSFFromCOO])
	}
	// 1000 nnz in 10µs → 10 ns/nnz; then 1000 nnz in 30µs → 30 ns/nnz;
	// the EWMA (α=0.5) lands at 20.
	c.Observe(EdgeCSFFromCOO, 1000, 10*time.Microsecond)
	c.Observe(EdgeCSFFromCOO, 1000, 30*time.Microsecond)
	if got := c.Estimate(EdgeCSFFromCOO); got != 20 {
		t.Fatalf("EWMA estimate %g, want 20", got)
	}
	c.Observe(EdgeCSFFromCOO, 0, time.Second) // zero nnz: ignored
	if got := c.Estimate(EdgeCSFFromCOO); got != 20 {
		t.Fatalf("zero-nnz observation changed estimate to %g", got)
	}
	if !c.Measured(EdgeCSFFromCOO) {
		t.Fatal("observed edge not marked measured")
	}
	if snap := c.Snapshot(); snap[EdgeCSFFromCOO] != 20 {
		t.Fatalf("snapshot %v missing the measurement", snap)
	}
}

// TestPlannerPicksCheaperPath injects synthetic cost tables and checks
// the planner picks the measured-cheapest conversion path for each
// scenario, reporting the choice in the plan string. Each scenario uses
// a fresh workbench so cached hierarchies and resident CSF trees from
// one case cannot leak into the next.
func TestPlannerPicksCheaperPath(t *testing.T) {
	mo := []int{0, 1, 2}
	cases := []struct {
		name    string
		format  roofline.Format
		seedCSF bool // make a CSF tree resident before planning
		costs   map[string]float64
		want    string
	}{
		{
			name:   "bCSF direct when build is cheap",
			format: roofline.BCSF,
			costs: map[string]float64{
				EdgeBuild + ":bCSF": 1,
				EdgeCSFFromCOO:      1000,
				EdgeBlockRoot:       1000,
			},
			want: "direct:" + EdgeBuild + ":bCSF",
		},
		{
			name:   "bCSF via CSF when sort dominates build",
			format: roofline.BCSF,
			costs: map[string]float64{
				EdgeBuild + ":bCSF": 1000,
				EdgeCSFFromCOO:      1,
				EdgeBlockRoot:       1,
			},
			want: "via-csf:" + EdgeCSFFromCOO + "+" + EdgeBlockRoot,
		},
		{
			name:    "bCSF reuses a resident tree",
			format:  roofline.BCSF,
			seedCSF: true,
			costs: map[string]float64{
				EdgeBuild + ":bCSF": 1000,
				EdgeBlockRoot:       1,
			},
			want: "reuse-csf:" + EdgeBlockRoot,
		},
		{
			name:   "CSF direct when build is cheap",
			format: roofline.CSF,
			costs: map[string]float64{
				EdgeBuild + ":CSF": 1,
				EdgeCSFFromCOO:     1000,
			},
			want: "direct:" + EdgeBuild + ":CSF",
		},
		{
			name:   "CSF via FromCOO when it measures cheaper",
			format: roofline.CSF,
			costs: map[string]float64{
				EdgeBuild + ":CSF": 1000,
				EdgeCSFFromCOO:     1,
			},
			want: "via-csf:" + EdgeCSFFromCOO,
		},
		{
			name:    "CSF wraps a resident tree for free",
			format:  roofline.CSF,
			seedCSF: true,
			costs: map[string]float64{
				EdgeBuild + ":CSF": 1, // even a cheap direct build loses to a free wrap
				EdgeCSFFromCOO:     1000,
			},
			want: "reuse-csf",
		},
		{
			name:   "COO has no CSF shortcut",
			format: roofline.COO,
			costs: map[string]float64{
				EdgeCSFFromCOO: 0.001, // irrelevant however cheap
			},
			want: "direct:" + EdgeBuild + ":COO",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			wb := NewWorkbench(plannerTensor(), DefaultConfig())
			if tc.seedCSF {
				if _, err := wb.CSF(mo, "seed"); err != nil {
					t.Fatal(err)
				}
			}
			for edge, ns := range tc.costs {
				wb.Costs().Set(edge, ns)
			}
			h, plan, err := wb.Hier(tc.format, mo, "test")
			if err != nil {
				t.Fatal(err)
			}
			if plan != tc.want {
				t.Fatalf("plan = %q, want %q", plan, tc.want)
			}
			if err := h.Validate(); err != nil {
				t.Fatalf("planned hierarchy invalid: %v", err)
			}
			if h.NNZ() < wb.X.NNZ() {
				t.Fatalf("planned hierarchy holds %d values, want >= %d", h.NNZ(), wb.X.NNZ())
			}
			// A second request must hit the hierarchy cache, whatever the
			// table says now.
			wb.Costs().Set(EdgeBuild+":"+tc.format.String(), 1e9)
			h2, plan2, err := wb.Hier(tc.format, mo, "test")
			if err != nil {
				t.Fatal(err)
			}
			if plan2 != "cached" || h2 != h {
				t.Fatalf("second request: plan %q (want cached), same hierarchy %v", plan2, h2 == h)
			}
		})
	}
}

// TestPlannerLearnsFromConversions checks the feedback loop: executing
// a conversion populates the cost table with a measurement, so later
// plans run on observed costs rather than priors.
func TestPlannerLearnsFromConversions(t *testing.T) {
	wb := NewWorkbench(plannerTensor(), DefaultConfig())
	if _, _, err := wb.Hier(roofline.BCSF, []int{0, 1, 2}, "test"); err != nil {
		t.Fatal(err)
	}
	// Priors tie FromCOO and direct build at 100, so the cold bCSF path is
	// the direct build; that edge must now be measured.
	if !wb.Costs().Measured(EdgeBuild + ":bCSF") {
		t.Fatalf("direct build left no measurement; table: %v", wb.Costs().Snapshot())
	}
	if _, err := wb.CSF([]int{2, 1, 0}, "seed"); err != nil {
		t.Fatal(err)
	}
	if !wb.Costs().Measured(EdgeCSFFromCOO) {
		t.Fatalf("CSF conversion left no measurement; table: %v", wb.Costs().Snapshot())
	}
}

// TestGeneratedVariantSurfacesPlan checks the plan string rides the
// Instance out of Prepare — the hook pastabench rows and pastad's /run
// response read — and that a generic CSF kernel reuses the tree a
// hand-tuned CSF kernel already built (both order the product mode at
// the leaves, so the trees coincide).
func TestGeneratedVariantSurfacesPlan(t *testing.T) {
	wb := NewWorkbench(plannerTensor(), DefaultConfig())
	ttm, err := Lookup(roofline.Ttm, roofline.CSF, OMP)
	if err != nil {
		t.Fatal(err)
	}
	if !ttm.Generated {
		t.Fatalf("%s: expected a generated variant", ttm)
	}
	inst, err := ttm.Prepare(wb, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Cold workbench, tied priors: the direct build wins.
	if inst.Plan != "direct:"+EdgeBuild+":CSF" {
		t.Fatalf("cold plan = %q, want direct build", inst.Plan)
	}

	// On a fresh workbench, run the hand-tuned Ttv/CSF first: its tree
	// (product mode at the leaf) is exactly what generic Ttm wants.
	wb2 := NewWorkbench(plannerTensor(), DefaultConfig())
	ttv, err := Lookup(roofline.Ttv, roofline.CSF, OMP)
	if err != nil {
		t.Fatal(err)
	}
	if ttv.Generated {
		t.Fatalf("%s: expected the hand-tuned fast path", ttv)
	}
	if _, err := ttv.Prepare(wb2, 1); err != nil {
		t.Fatal(err)
	}
	inst2, err := ttm.Prepare(wb2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if inst2.Plan != "reuse-csf" {
		t.Fatalf("plan after hand-tuned CSF prep = %q, want reuse-csf", inst2.Plan)
	}
	if err := inst2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ref, err := wb2.Reference(context.Background(), roofline.Ttm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dev := Compare(inst2.Output(), ref); dev > agreementTol {
		t.Fatalf("reused-tree output deviates %g from reference", dev)
	}
}
