package kernelreg

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/resilience"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// TestGridGeneration is the grid-closure lint: the registered grid must
// be exactly what enumerating kernel × format × backend under the two
// generation rules produces — every hand-tuned override claims its
// cell, every unclaimed (generic kernel, level-view format, OMP) cell
// carries a generated variant, and nothing else exists. A format added
// by declaring its level signature shows up here without kernel code;
// a generated variant leaking into a cell the rules don't cover fails
// here, not in a benchmark run.
func TestGridGeneration(t *testing.T) {
	hand := handTuned()
	expected := 0
	for _, k := range roofline.Kernels {
		for _, f := range roofline.Formats {
			for _, b := range Backends {
				_, claimed := hand[regKey{k, f, b}]
				wantGenerated := !claimed && genericCell(k, f, b)
				wantStreaming := !claimed && !wantGenerated && streamingCell(k, f, b)
				v, err := Lookup(k, f, b)
				switch {
				case claimed || wantGenerated || wantStreaming:
					expected++
					if err != nil {
						t.Errorf("%s/%s@%s: expected in grid, Lookup: %v", k, f, b, err)
						continue
					}
					if v.Generated != wantGenerated {
						t.Errorf("%s: Generated = %v, want %v", v, v.Generated, wantGenerated)
					}
				default:
					if err == nil {
						t.Errorf("%s/%s@%s: registered but neither hand-tuned nor generable", k, f, b)
					}
				}
			}
		}
	}
	if got := len(All()); got != expected {
		t.Errorf("registry holds %d variants, enumeration expects %d", got, expected)
	}

	// Every generated variant carries the capability contract rule 2
	// assigns and a printable level signature.
	for _, v := range All() {
		if !v.Generated {
			continue
		}
		if v.Backend != OMP {
			t.Errorf("%s: generated off the OMP backend", v)
		}
		if !v.Caps.ModeDependent || !v.Caps.SerialRef {
			t.Errorf("%s: generated variant caps %+v lack ModeDependent/SerialRef", v, v.Caps)
		}
		wantFactors := v.Kernel == roofline.Ttm || v.Kernel == roofline.Mttkrp
		if v.Caps.NeedsFactors != wantFactors {
			t.Errorf("%s: NeedsFactors = %v, want %v", v, v.Caps.NeedsFactors, wantFactors)
		}
		if v.Caps.StrategyAware {
			t.Errorf("%s: generated variant claims StrategyAware", v)
		}
		if v.Levels == "" {
			t.Errorf("%s: generated variant has no level signature", v)
		}
	}

	// The element-wise kernels have no generic level-iterator body, so
	// the tree formats stay unregistered for them even under generation.
	for _, k := range []roofline.Kernel{roofline.Tew, roofline.Ts} {
		for _, f := range []roofline.Format{roofline.CSF, roofline.BCSF} {
			if _, err := Lookup(k, f, OMP); !errors.Is(err, resilience.ErrUnsupported) {
				t.Errorf("Lookup(%s, %s) error = %v, want ErrUnsupported", k, f, err)
			}
		}
	}

	// bCSF itself arrived purely by declaration: every generic kernel
	// must reach it.
	for _, k := range genericKernels {
		if _, err := Lookup(k, roofline.BCSF, OMP); err != nil {
			t.Errorf("declared format bCSF missing %s variant: %v", k, err)
		}
	}

	// Rule 3: the streaming kernels exist on the OOC backend, carry the
	// streaming capability contract, and nothing else does.
	for _, k := range streamingKernels {
		v, err := Lookup(k, roofline.COO, OOC)
		if err != nil {
			t.Errorf("streaming kernel %s missing OOC variant: %v", k, err)
			continue
		}
		if v.Generated {
			t.Errorf("%s: streaming variant marked Generated", v)
		}
		if !v.Caps.ModeDependent || v.Caps.SerialRef || v.Caps.StrategyAware {
			t.Errorf("%s: streaming variant caps %+v, want ModeDependent only", v, v.Caps)
		}
		if want := k == roofline.Mttkrp; v.Caps.NeedsFactors != want {
			t.Errorf("%s: NeedsFactors = %v, want %v", v, v.Caps.NeedsFactors, want)
		}
	}
	for _, k := range []roofline.Kernel{roofline.Tew, roofline.Ts, roofline.Ttm} {
		if _, err := Lookup(k, roofline.COO, OOC); !errors.Is(err, resilience.ErrUnsupported) {
			t.Errorf("Lookup(%s, COO, ooc) error = %v, want ErrUnsupported", k, err)
		}
	}
}

// TestGeneratedVariantsVerify runs every generated variant through the
// registry's own Verify gate on every mode: the generic bodies must
// agree with the serial COO reference within the suite tolerance. This
// is the acceptance check that a declared format is actually runnable,
// not just enumerable.
func TestGeneratedVariantsVerify(t *testing.T) {
	x := lintTensor()
	wb := NewWorkbench(x, DefaultConfig())
	ctx := context.Background()
	for _, v := range All() {
		if !v.Generated {
			continue
		}
		for mode := 0; mode < v.Modes(x); mode++ {
			dev, err := v.Verify(ctx, wb, mode)
			if err != nil {
				t.Errorf("%s mode %d: Verify: %v", v, mode, err)
				continue
			}
			if dev > agreementTol {
				t.Errorf("%s mode %d: deviation %g exceeds %g", v, mode, dev, agreementTol)
			}
		}
	}
}

// agreementShapes are the structural extremes the generic bodies must
// survive: dense-ish (long runs, dense-level candidates), hypersparse
// (every fiber nearly a singleton), and a degenerate mode of extent 1.
var agreementShapes = []struct {
	name string
	dims []tensor.Index
	nnz  int
}{
	{"dense-ish", []tensor.Index{24, 20, 16}, 4000},
	{"hypersparse", []tensor.Index{3000, 2500, 2000}, 600},
	{"degenerate-1mode", []tensor.Index{50, 1, 60}, 800},
}

// TestGenericAgreesWithHandTuned instantiates the generic
// level-iterator body for every level-view format — including the
// cells where a hand-tuned override wins the registry slot — and
// checks it against the hand-tuned output (when one exists) and the
// serial COO reference, across the structural-extreme shapes. This
// pins the contract that lets hand-tuned kernels remain pure
// fast-path overrides: both implementations compute the same thing.
func TestGenericAgreesWithHandTuned(t *testing.T) {
	ctx := context.Background()
	for _, sh := range agreementShapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			x := tensor.RandomCOO(sh.dims, sh.nnz, rand.New(rand.NewSource(42)))
			wb := NewWorkbench(x, DefaultConfig())
			for _, k := range genericKernels {
				for _, f := range roofline.Formats {
					if _, ok := LevelSignature(f, x.Order(), wb.cfg.BlockBits); !ok {
						continue
					}
					prep := genericPrep(k, f)
					for mode := 0; mode < x.Order(); mode++ {
						inst, err := prep(wb, mode, OMP)
						if err != nil {
							t.Errorf("%s/%s mode %d: generic prepare: %v", k, f, mode, err)
							continue
						}
						if err := inst.Run(ctx); err != nil {
							t.Errorf("%s/%s mode %d: generic run: %v", k, f, mode, err)
							continue
						}
						gen := inst.Output()
						ref, err := wb.Reference(ctx, k, mode)
						if err != nil {
							t.Fatalf("%s mode %d: reference: %v", k, mode, err)
						}
						if dev := Compare(gen, ref); dev > agreementTol {
							t.Errorf("%s/%s mode %d: generic vs reference deviation %g", k, f, mode, dev)
						}
						// Hand-tuned fast path, when this cell has one.
						hv, err := Lookup(k, f, OMP)
						if err != nil || hv.Generated {
							continue
						}
						hinst, err := hv.Prepare(wb, mode)
						if err != nil {
							t.Errorf("%s mode %d: hand prepare: %v", hv, mode, err)
							continue
						}
						if err := hinst.Run(ctx); err != nil {
							t.Errorf("%s mode %d: hand run: %v", hv, mode, err)
							continue
						}
						if dev := Compare(gen, hinst.Output()); dev > agreementTol {
							t.Errorf("%s/%s mode %d: generic vs hand-tuned deviation %g", k, f, mode, dev)
						}
					}
				}
			}
		})
	}
}

// TestEstimateCoversMeasuredPerFormat is the admission-control check for
// every planner-reachable format: after actually preparing the host
// Mttkrp variant on all modes (which materializes the format's storage
// through the planner or the hand-tuned conversion), the up-front
// EstimateFootprint must land within an order of magnitude of the
// measured workbench — close enough to admit by, never absurdly small.
func TestEstimateCoversMeasuredPerFormat(t *testing.T) {
	ctx := context.Background()
	for _, f := range roofline.Formats {
		if _, ok := LevelSignature(f, 3, 7); !ok {
			continue
		}
		f := f
		t.Run(f.String(), func(t *testing.T) {
			x := tensor.RandomCOO([]tensor.Index{50, 60, 70}, 5000, rand.New(rand.NewSource(3)))
			wb := NewWorkbench(x, DefaultConfig())
			v, err := HostVariant(roofline.Mttkrp, f)
			if err != nil {
				t.Fatalf("HostVariant(Mttkrp, %s): %v", f, err)
			}
			for mode := 0; mode < v.Modes(x); mode++ {
				inst, err := v.Prepare(wb, mode)
				if err != nil {
					t.Fatalf("mode %d: %v", mode, err)
				}
				if err := inst.Run(ctx); err != nil {
					t.Fatalf("mode %d: %v", mode, err)
				}
			}
			measured := wb.MemBytes()
			est := EstimateFootprint(roofline.Mttkrp, f, []int64{50, 60, 70}, int64(x.NNZ()), Config{})
			if est.Workbench < measured/10 || est.Workbench > measured*10 {
				t.Fatalf("%s: estimated workbench %d vs measured %d: off by more than 10x",
					f, est.Workbench, measured)
			}
		})
	}
}
