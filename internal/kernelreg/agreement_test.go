package kernelreg

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// agreementTol covers float32 reduction-order noise at these sizes.
const agreementTol = 2e-3

// TestCrossFormatAgreement is the registry-driven replacement for the
// suite's ad-hoc per-kernel agreement checks: every registered variant,
// on every mode, must match the serial COO reference on three
// structurally extreme shapes — dense-ish (heavy fibers, collisions),
// hypersparse (mostly singleton fibers), and a degenerate extent-1 mode
// (empty/one-wide index space in the middle of the tensor).
func TestCrossFormatAgreement(t *testing.T) {
	shapes := []struct {
		name string
		dims []tensor.Index
		nnz  int
	}{
		{"dense-ish", []tensor.Index{24, 20, 16}, 4000},
		{"hypersparse", []tensor.Index{3000, 2500, 2000}, 600},
		{"degenerate-1mode", []tensor.Index{50, 1, 60}, 800},
	}
	for _, sh := range shapes {
		sh := sh
		t.Run(sh.name, func(t *testing.T) {
			x := tensor.RandomCOO(sh.dims, sh.nnz, rand.New(rand.NewSource(42)))
			wb := NewWorkbench(x, DefaultConfig())
			ctx := context.Background()
			for _, v := range All() {
				for mode := 0; mode < v.Modes(x); mode++ {
					dev, err := v.Verify(ctx, wb, mode)
					if err != nil {
						t.Errorf("%s mode %d: %v", v, mode, err)
						continue
					}
					if dev > agreementTol {
						t.Errorf("%s mode %d: max rel dev %.2e > %.0e", v, mode, dev, agreementTol)
					}
				}
			}
		})
	}
}

// TestSerialRungAgreement drives every variant's fallback rung the same
// way: the serial path the degradation ladder lands on must itself match
// the reference.
func TestSerialRungAgreement(t *testing.T) {
	x := tensor.RandomCOO([]tensor.Index{18, 14, 22}, 1200, rand.New(rand.NewSource(9)))
	wb := NewWorkbench(x, DefaultConfig())
	ctx := context.Background()
	for _, v := range All() {
		ref, err := wb.Reference(ctx, v.Kernel, 0)
		if err != nil {
			t.Fatalf("%s reference: %v", v, err)
		}
		inst, err := v.Prepare(wb, 0)
		if err != nil {
			t.Fatalf("%s Prepare: %v", v, err)
		}
		if err := inst.Serial(ctx); err != nil {
			t.Errorf("%s serial rung: %v", v, err)
			continue
		}
		if err := inst.Check(); err != nil {
			t.Errorf("%s serial check: %v", v, err)
			continue
		}
		if dev := Compare(inst.Output(), ref); dev > agreementTol {
			t.Errorf("%s serial rung: max rel dev %.2e", v, dev)
		}
	}
}
