package kernelreg

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/fcoo"
	"repro/internal/obs"
	"repro/internal/roofline"
)

// tsScalar is the Ts multiplicand: near-1 so repeated timed executions
// cannot drift the output magnitude.
const tsScalar = 1.000001

// tableModel is the default Roofline hook: the Table 1 work and traffic
// formulas for the variant's kernel and format.
func tableModel(k roofline.Kernel, f roofline.Format) func(roofline.Params) (int64, int64) {
	return func(p roofline.Params) (int64, int64) {
		return roofline.Work(k, p), roofline.Bytes(k, f, p)
	}
}

// handOverride pins one hand-tuned implementation to a grid cell; cells
// with no override are filled by the generic level-iterator kernels
// (see grid.go).
type handOverride struct {
	caps Caps
	prep func(wb *Workbench, mode int, b Backend) (*Instance, error)
}

// handTuned is the override table the grid generator consults: the
// suite's tuned COO/HiCOO paths on both backends, the multi-device
// partitioned reductions, CSF's tree kernels, and F-COO's segmented GPU
// kernels. Everything the old hand-enumerated init registered is here;
// the agreement tests pin the generated generics against these.
func handTuned() map[regKey]handOverride {
	hand := make(map[regKey]handOverride)
	add := func(k roofline.Kernel, f roofline.Format, b Backend, caps Caps,
		prep func(wb *Workbench, mode int, b Backend) (*Instance, error)) {
		hand[regKey{k, f, b}] = handOverride{caps, prep}
	}
	for _, b := range []Backend{OMP, GPU} {
		strat := b == OMP // only the OMP reduction paths resolve a strategy
		add(roofline.Tew, roofline.COO, b, Caps{}, prepTewCOO)
		add(roofline.Tew, roofline.HiCOO, b, Caps{}, prepTewHiCOO)
		add(roofline.Ts, roofline.COO, b, Caps{}, prepTsCOO)
		add(roofline.Ts, roofline.HiCOO, b, Caps{}, prepTsHiCOO)
		add(roofline.Ttv, roofline.COO, b,
			Caps{ModeDependent: true, StrategyAware: strat}, prepTtvCOO)
		add(roofline.Ttv, roofline.HiCOO, b,
			Caps{ModeDependent: true, StrategyAware: strat}, prepTtvHiCOO)
		add(roofline.Ttm, roofline.COO, b,
			Caps{ModeDependent: true, NeedsFactors: true, StrategyAware: strat}, prepTtmCOO)
		add(roofline.Ttm, roofline.HiCOO, b,
			Caps{ModeDependent: true, NeedsFactors: true, StrategyAware: strat}, prepTtmHiCOO)
		add(roofline.Mttkrp, roofline.COO, b,
			Caps{ModeDependent: true, NeedsFactors: true, StrategyAware: strat}, prepMttkrpCOO)
		add(roofline.Mttkrp, roofline.HiCOO, b,
			Caps{ModeDependent: true, NeedsFactors: true, StrategyAware: strat}, prepMttkrpHiCOO)
	}
	// Multi-device partitioned paths exist for the reduction kernels that
	// have them in core.
	add(roofline.Ttv, roofline.COO, MultiGPU,
		Caps{ModeDependent: true}, prepTtvCOO)
	add(roofline.Mttkrp, roofline.COO, MultiGPU,
		Caps{ModeDependent: true, NeedsFactors: true}, prepMttkrpCOO)
	// CSF: the mode of interest is placed at the tree position its kernel
	// wants (leaf for Ttv, root for Mttkrp). No native serial path — the
	// serial rung is the COO reference.
	add(roofline.Ttv, roofline.CSF, OMP,
		Caps{ModeDependent: true, SerialRef: true}, prepTtvCSF)
	add(roofline.Mttkrp, roofline.CSF, OMP,
		Caps{ModeDependent: true, NeedsFactors: true, SerialRef: true}, prepMttkrpCSF)
	// F-COO: segmented-reduction GPU kernels only.
	add(roofline.Ttv, roofline.FCOO, GPU,
		Caps{ModeDependent: true, SerialRef: true}, prepTtvFCOO)
	add(roofline.Mttkrp, roofline.FCOO, GPU,
		Caps{ModeDependent: true, NeedsFactors: true, SerialRef: true}, prepMttkrpFCOO)
	return hand
}

// otherModesOf lists every mode but `mode` in natural order.
func otherModesOf(order, mode int) []int {
	out := make([]int, 0, order-1)
	for n := 0; n < order; n++ {
		if n != mode {
			out = append(out, n)
		}
	}
	return out
}

func badBackend(what string, b Backend) error {
	return fmt.Errorf("kernelreg: %s has no %s path", what, b)
}

func prepTewCOO(wb *Workbench, _ int, b Backend) (*Instance, error) {
	p, err := core.PrepareTew(wb.X, wb.Y(), core.Add)
	if err != nil {
		return nil, err
	}
	inst := &Instance{Flops: p.FlopCount()}
	inst.out = func() any { return p.Out }
	inst.Check = func() error { return checkFinite(p.Out) }
	inst.Serial = func(context.Context) error { p.ExecuteSeq(); return nil }
	switch b {
	case OMP:
		inst.Run = func(ctx context.Context) error { p.ExecuteOMP(wb.Opt(ctx)); return nil }
	case GPU:
		inst.Run = wb.onDevice(func() error { p.ExecuteGPU(wb.Device()); return nil })
	default:
		return nil, badBackend("Tew/COO", b)
	}
	return inst, nil
}

func prepTewHiCOO(wb *Workbench, _ int, b Backend) (*Instance, error) {
	p, err := core.PrepareTewHiCOO(wb.HX(), wb.HY(), core.Add)
	if err != nil {
		return nil, err
	}
	inst := &Instance{Flops: p.FlopCount()}
	inst.out = func() any { return p.Out }
	inst.Check = func() error { return checkFinite(p.Out) }
	inst.Serial = func(context.Context) error { p.ExecuteSeq(); return nil }
	switch b {
	case OMP:
		inst.Run = func(ctx context.Context) error { p.ExecuteOMP(wb.Opt(ctx)); return nil }
	case GPU:
		inst.Run = wb.onDevice(func() error { p.ExecuteGPU(wb.Device()); return nil })
	default:
		return nil, badBackend("Tew/HiCOO", b)
	}
	return inst, nil
}

func prepTsCOO(wb *Workbench, _ int, b Backend) (*Instance, error) {
	p, err := core.PrepareTs(wb.X, tsScalar, core.Mul)
	if err != nil {
		return nil, err
	}
	inst := &Instance{Flops: p.FlopCount()}
	inst.out = func() any { return p.Out }
	inst.Check = func() error { return checkFinite(p.Out) }
	inst.Serial = func(context.Context) error { p.ExecuteSeq(); return nil }
	switch b {
	case OMP:
		inst.Run = func(ctx context.Context) error { p.ExecuteOMP(wb.Opt(ctx)); return nil }
	case GPU:
		inst.Run = wb.onDevice(func() error { p.ExecuteGPU(wb.Device()); return nil })
	default:
		return nil, badBackend("Ts/COO", b)
	}
	return inst, nil
}

func prepTsHiCOO(wb *Workbench, _ int, b Backend) (*Instance, error) {
	p, err := core.PrepareTsHiCOO(wb.HX(), tsScalar, core.Mul)
	if err != nil {
		return nil, err
	}
	inst := &Instance{Flops: p.FlopCount()}
	inst.out = func() any { return p.Out }
	inst.Check = func() error { return checkFinite(p.Out) }
	inst.Serial = func(context.Context) error { p.ExecuteSeq(); return nil }
	switch b {
	case OMP:
		inst.Run = func(ctx context.Context) error { p.ExecuteOMP(wb.Opt(ctx)); return nil }
	case GPU:
		inst.Run = wb.onDevice(func() error { p.ExecuteGPU(wb.Device()); return nil })
	default:
		return nil, badBackend("Ts/HiCOO", b)
	}
	return inst, nil
}

func prepTtvCOO(wb *Workbench, mode int, b Backend) (*Instance, error) {
	p, err := core.PrepareTtv(wb.X, mode)
	if err != nil {
		return nil, err
	}
	v := wb.Vec(mode)
	inst := &Instance{Flops: p.FlopCount()}
	inst.out = func() any { return p.Out }
	inst.Check = func() error { return checkFinite(p.Out) }
	inst.Serial = func(context.Context) error { _, err := p.ExecuteSeq(v); return err }
	switch b {
	case OMP:
		inst.Run = func(ctx context.Context) error { _, err := p.ExecuteOMP(v, wb.Opt(ctx)); return err }
		inst.Strategy = func() string { return p.LastStrategy.String() }
	case GPU:
		inst.Run = wb.onDevice(func() error { _, err := p.ExecuteGPU(wb.Device(), v); return err })
	case MultiGPU:
		inst.Run = wb.onDevices(func() error { _, err := p.ExecuteMultiGPU(wb.Devices(), v); return err })
	}
	return inst, nil
}

func prepTtvHiCOO(wb *Workbench, mode int, b Backend) (*Instance, error) {
	p, err := core.PrepareTtvHiCOO(wb.X, mode, wb.BlockBits())
	if err != nil {
		return nil, err
	}
	v := wb.Vec(mode)
	inst := &Instance{Flops: p.FlopCount()}
	inst.out = func() any { return p.Out }
	inst.Check = func() error { return checkFinite(p.Out) }
	inst.Serial = func(context.Context) error { _, err := p.ExecuteSeq(v); return err }
	switch b {
	case OMP:
		inst.Run = func(ctx context.Context) error { _, err := p.ExecuteOMP(v, wb.Opt(ctx)); return err }
		inst.Strategy = func() string { return p.LastStrategy.String() }
	case GPU:
		inst.Run = wb.onDevice(func() error { _, err := p.ExecuteGPU(wb.Device(), v); return err })
	default:
		return nil, badBackend("Ttv/HiCOO", b)
	}
	return inst, nil
}

func prepTtmCOO(wb *Workbench, mode int, b Backend) (*Instance, error) {
	p, err := core.PrepareTtm(wb.X, mode, wb.R())
	if err != nil {
		return nil, err
	}
	u := wb.TtmMat(mode)
	inst := &Instance{Flops: p.FlopCount()}
	inst.out = func() any { return p.Out }
	inst.Check = func() error { return checkFinite(p.Out) }
	inst.Serial = func(context.Context) error { _, err := p.ExecuteSeq(u); return err }
	switch b {
	case OMP:
		inst.Run = func(ctx context.Context) error { _, err := p.ExecuteOMP(u, wb.Opt(ctx)); return err }
		inst.Strategy = func() string { return p.LastStrategy.String() }
	case GPU:
		inst.Run = wb.onDevice(func() error { _, err := p.ExecuteGPU(wb.Device(), u); return err })
	default:
		return nil, badBackend("Ttm/COO", b)
	}
	return inst, nil
}

func prepTtmHiCOO(wb *Workbench, mode int, b Backend) (*Instance, error) {
	p, err := core.PrepareTtmHiCOO(wb.X, mode, wb.R(), wb.BlockBits())
	if err != nil {
		return nil, err
	}
	u := wb.TtmMat(mode)
	inst := &Instance{Flops: p.FlopCount()}
	inst.out = func() any { return p.Out }
	inst.Check = func() error { return checkFinite(p.Out) }
	inst.Serial = func(context.Context) error { _, err := p.ExecuteSeq(u); return err }
	switch b {
	case OMP:
		inst.Run = func(ctx context.Context) error { _, err := p.ExecuteOMP(u, wb.Opt(ctx)); return err }
		inst.Strategy = func() string { return p.LastStrategy.String() }
	case GPU:
		inst.Run = wb.onDevice(func() error { _, err := p.ExecuteGPU(wb.Device(), u); return err })
	default:
		return nil, badBackend("Ttm/HiCOO", b)
	}
	return inst, nil
}

func prepMttkrpCOO(wb *Workbench, mode int, b Backend) (*Instance, error) {
	p, err := core.PrepareMttkrp(wb.X, mode, wb.R())
	if err != nil {
		return nil, err
	}
	mats := wb.Mats()
	inst := &Instance{Flops: p.FlopCount()}
	inst.out = func() any { return p.Out }
	inst.Check = func() error { return checkFinite(p.Out) }
	inst.Serial = func(context.Context) error { _, err := p.ExecuteSeq(mats); return err }
	switch b {
	case OMP:
		inst.Run = func(ctx context.Context) error { _, err := p.ExecuteOMP(mats, wb.Opt(ctx)); return err }
		inst.Strategy = func() string { return p.LastStrategy.String() }
	case GPU:
		inst.Run = wb.onDevice(func() error { _, err := p.ExecuteGPU(wb.Device(), mats); return err })
	case MultiGPU:
		inst.Run = wb.onDevices(func() error { _, err := p.ExecuteMultiGPU(wb.Devices(), mats); return err })
	}
	return inst, nil
}

func prepMttkrpHiCOO(wb *Workbench, mode int, b Backend) (*Instance, error) {
	p, err := core.PrepareMttkrpHiCOO(wb.HX(), mode, wb.R())
	if err != nil {
		return nil, err
	}
	mats := wb.Mats()
	inst := &Instance{Flops: p.FlopCount()}
	inst.out = func() any { return p.Out }
	inst.Check = func() error { return checkFinite(p.Out) }
	inst.Serial = func(context.Context) error { _, err := p.ExecuteSeq(mats); return err }
	switch b {
	case OMP:
		inst.Run = func(ctx context.Context) error { _, err := p.ExecuteOMP(mats, wb.Opt(ctx)); return err }
		inst.Strategy = func() string { return p.LastStrategy.String() }
	case GPU:
		inst.Run = wb.onDevice(func() error { _, err := p.ExecuteGPU(wb.Device(), mats); return err })
	default:
		return nil, badBackend("Mttkrp/HiCOO", b)
	}
	return inst, nil
}

// prepTtvCSF builds a CSF tree with the product mode at the leaf level
// and reduces leaves per fiber. The serial rung is the COO reference.
func prepTtvCSF(wb *Workbench, mode int, b Backend) (*Instance, error) {
	if b != OMP {
		return nil, badBackend("Ttv/CSF", b)
	}
	mo := append(otherModesOf(wb.X.Order(), mode), mode)
	c, err := wb.CSF(mo, "Ttv-leaf")
	if err != nil {
		return nil, err
	}
	ref, err := core.PrepareTtv(wb.X, mode)
	if err != nil {
		return nil, err
	}
	v := wb.Vec(mode)
	var cur any
	inst := &Instance{Flops: 2 * int64(wb.X.NNZ())}
	inst.out = func() any { return cur }
	inst.Check = func() error { return checkFinite(cur) }
	inst.Run = func(ctx context.Context) error {
		out, err := c.TtvLeaf(v, wb.Opt(ctx))
		if err == nil {
			cur = out
		}
		return err
	}
	inst.Serial = func(context.Context) error {
		_, err := ref.ExecuteSeq(v)
		if err == nil {
			cur = ref.Out
		}
		return err
	}
	return inst, nil
}

// prepMttkrpCSF builds a CSF tree with the output mode at the root:
// root subtrees own disjoint output rows, so the parallel loop needs no
// atomics. The serial rung is the COO reference.
func prepMttkrpCSF(wb *Workbench, mode int, b Backend) (*Instance, error) {
	if b != OMP {
		return nil, badBackend("Mttkrp/CSF", b)
	}
	mo := append([]int{mode}, otherModesOf(wb.X.Order(), mode)...)
	c, err := wb.CSF(mo, "Mttkrp-root")
	if err != nil {
		return nil, err
	}
	ref, err := core.PrepareMttkrp(wb.X, mode, wb.R())
	if err != nil {
		return nil, err
	}
	mats := wb.Mats()
	var cur any
	inst := &Instance{Flops: int64(wb.X.Order()) * int64(wb.X.NNZ()) * int64(wb.R())}
	inst.out = func() any { return cur }
	inst.Check = func() error { return checkFinite(cur) }
	inst.Run = func(ctx context.Context) error {
		out, err := c.MttkrpRoot(mats, wb.Opt(ctx))
		if err == nil {
			cur = out
		}
		return err
	}
	inst.Serial = func(context.Context) error {
		_, err := ref.ExecuteSeq(mats)
		if err == nil {
			cur = ref.Out
		}
		return err
	}
	return inst, nil
}

// prepTtvFCOO runs F-COO's segmented-reduction Ttv on the simulated GPU.
// The serial rung is the COO reference.
func prepTtvFCOO(wb *Workbench, mode int, b Backend) (*Instance, error) {
	if b != GPU {
		return nil, badBackend("Ttv/fCOO", b)
	}
	csp := obs.Begin("fcoo.FromCOO", "Ttv", obs.PhaseConvert, -1)
	fc, err := fcoo.FromCOO(wb.X, mode, wb.SegSize())
	csp.End()
	if err != nil {
		return nil, err
	}
	ref, err := core.PrepareTtv(wb.X, mode)
	if err != nil {
		return nil, err
	}
	v := wb.Vec(mode)
	var cur any
	inst := &Instance{Flops: 2 * int64(wb.X.NNZ())}
	inst.out = func() any { return cur }
	inst.Check = func() error { return checkFinite(cur) }
	inst.Run = wb.onDevice(func() error {
		out, err := fc.TtvGPU(wb.Device(), v)
		if err == nil {
			cur = out
		}
		return err
	})
	inst.Serial = func(context.Context) error {
		_, err := ref.ExecuteSeq(v)
		if err == nil {
			cur = ref.Out
		}
		return err
	}
	return inst, nil
}

// prepMttkrpFCOO runs F-COO's segmented Mttkrp on the simulated GPU.
// The serial rung is the COO reference.
func prepMttkrpFCOO(wb *Workbench, mode int, b Backend) (*Instance, error) {
	if b != GPU {
		return nil, badBackend("Mttkrp/fCOO", b)
	}
	csp := obs.Begin("fcoo.FromCOOMttkrp", "Mttkrp", obs.PhaseConvert, -1)
	fc, err := fcoo.FromCOOMttkrp(wb.X, mode, wb.SegSize())
	csp.End()
	if err != nil {
		return nil, err
	}
	ref, err := core.PrepareMttkrp(wb.X, mode, wb.R())
	if err != nil {
		return nil, err
	}
	mats := wb.Mats()
	var cur any
	inst := &Instance{Flops: int64(wb.X.Order()) * int64(wb.X.NNZ()) * int64(wb.R())}
	inst.out = func() any { return cur }
	inst.Check = func() error { return checkFinite(cur) }
	inst.Run = wb.onDevice(func() error {
		out, err := fc.MttkrpGPU(wb.Device(), mats, wb.R())
		if err == nil {
			cur = out
		}
		return err
	})
	inst.Serial = func(context.Context) error {
		_, err := ref.ExecuteSeq(mats)
		if err == nil {
			cur = ref.Out
		}
		return err
	}
	return inst, nil
}
