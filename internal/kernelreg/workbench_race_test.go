package kernelreg

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// TestWorkbenchConcurrentVariants hammers one shared Workbench from many
// goroutines across every registered variant and mode: each goroutine
// prepares its own Instance (racing the operand/device lazy-init and the
// reference cache), runs it, and verifies the output against the serial
// COO reference. Before the Workbench grew its internal locks this
// failed under -race on the first concurrent HX()/Mats() build; it now
// pins the documented guarantee the pastad daemon relies on.
func TestWorkbenchConcurrentVariants(t *testing.T) {
	x := tensor.RandomCOO([]tensor.Index{20, 15, 10}, 300, rand.New(rand.NewSource(42)))
	wb := NewWorkbench(x, DefaultConfig())

	type work struct {
		v    *Variant
		mode int
	}
	var items []work
	for _, v := range All() {
		for mode := 0; mode < v.Modes(x); mode++ {
			items = append(items, work{v, mode})
		}
	}

	const goroutines = 8
	ctx := context.Background()
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Offset the start index per goroutine so different goroutines
			// contend on different lazy-init paths at the same time.
			for i := range items {
				it := items[(i+g*len(items)/goroutines)%len(items)]
				dev, err := it.v.Verify(ctx, wb, it.mode)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %s mode %d: %w", g, it.v, it.mode, err)
					return
				}
				if dev > 2e-3 {
					errs <- fmt.Errorf("goroutine %d: %s mode %d deviates %v from reference", g, it.v, it.mode, dev)
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestWorkbenchConcurrentAccessors races the raw lazy-init accessors
// directly (no kernel execution), asserting every goroutine observes the
// same cached objects — one build per operand, not one per caller.
func TestWorkbenchConcurrentAccessors(t *testing.T) {
	x := tensor.RandomCOO([]tensor.Index{12, 11, 9}, 200, rand.New(rand.NewSource(7)))
	wb := NewWorkbench(x, DefaultConfig())

	const goroutines = 16
	type views struct {
		y    *tensor.COO
		hx   any
		mats []*tensor.Matrix
		dev  any
	}
	got := make([]views, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = views{y: wb.Y(), hx: wb.HX(), mats: wb.Mats(), dev: wb.Device()}
			wb.Vec(0)
			wb.TtmMat(1)
			wb.HY()
			wb.Devices()
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g].y != got[0].y || got[g].hx != got[0].hx || got[g].dev != got[0].dev {
			t.Fatalf("goroutine %d observed different cached operands than goroutine 0", g)
		}
		if &got[g].mats[0] == nil || got[g].mats[0] != got[0].mats[0] {
			t.Fatalf("goroutine %d observed a different Mats build", g)
		}
	}
}
