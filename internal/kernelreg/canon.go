package kernelreg

import (
	"fmt"
	"math"

	"repro/internal/hicoo"
	"repro/internal/resilience"
	"repro/internal/tensor"
)

// Canon is the canonical coordinate→value form of a kernel output:
// duplicate coordinates accumulate, so two outputs agree exactly when
// they represent the same tensor regardless of format, entry order, or
// duplicate splitting.
type Canon map[string]float64

// canonOf converts any output object a registered variant produces into
// canonical form. A nil or unknown output canonicalizes to nil, which
// Compare treats as maximally deviant — a variant that never ran cannot
// accidentally verify.
func canonOf(out any) Canon {
	switch o := out.(type) {
	case *tensor.COO:
		return cooCanon(o)
	case *hicoo.HiCOO:
		return cooCanon(o.ToCOO())
	case *tensor.SemiCOO:
		return cooCanon(o.ToCOO())
	case *hicoo.SemiHiCOO:
		return cooCanon(o.ToSemiCOO().ToCOO())
	case *tensor.Matrix:
		m := make(Canon, len(o.Data))
		for i := 0; i < o.Rows; i++ {
			row := o.Row(i)
			for j, v := range row {
				if v != 0 {
					m[fmt.Sprintf("r%d,c%d", i, j)] += float64(v)
				}
			}
		}
		return m
	}
	return nil
}

// CanonOf converts a kernel output object (dense matrix, COO, HiCOO,
// semi-sparse forms) into canonical form for Compare. Exported so
// out-of-package harnesses — e.g. the distributed layer's cross-checks
// against Workbench.Reference — verify through the same canonicalization
// the registry uses.
func CanonOf(out any) Canon { return canonOf(out) }

// cooCanon accumulates a COO tensor into coordinate→value form.
func cooCanon(t *tensor.COO) Canon {
	m := make(Canon, t.NNZ())
	idx := make([]tensor.Index, t.Order())
	for x := 0; x < t.NNZ(); x++ {
		v := t.Entry(x, idx)
		m[fmt.Sprint(idx)] += float64(v)
	}
	return m
}

// valsOf extracts the raw value array of a variant output for the finite
// scan; nil for unknown output kinds.
func valsOf(out any) []tensor.Value {
	switch o := out.(type) {
	case *tensor.COO:
		return o.Vals
	case *hicoo.HiCOO:
		return o.Vals
	case *tensor.SemiCOO:
		return o.Vals
	case *hicoo.SemiHiCOO:
		return o.Vals
	case *tensor.Matrix:
		return o.Data
	}
	return nil
}

// checkFinite is the standard Instance.Check: scan whichever output the
// last rung wrote for NaN/Inf.
func checkFinite(out any) error {
	if out == nil {
		return fmt.Errorf("kernelreg: no output to check: %w", resilience.ErrNonFinite)
	}
	return resilience.CheckFinite(valsOf(out))
}

// Compare returns the worst relative deviation between two canonical
// outputs over the union of their coordinates (absolute deviation for
// magnitudes below 1). Either side nil compares as all-zeros against the
// other, so a missing output deviates by the other's largest entry.
func Compare(a, b Canon) float64 {
	var worst float64
	for k, av := range a {
		if d := relDev(av, b[k]); d > worst {
			worst = d
		}
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			if d := relDev(0, bv); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func relDev(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return d / scale
}
