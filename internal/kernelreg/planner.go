package kernelreg

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/csf"
	"repro/internal/levels"
	"repro/internal/obs"
	"repro/internal/roofline"
)

// Conversion-cost planning. Format conversions (COO→CSF, COO→hierarchy,
// CSF→blocked-CSF) are the untimed Prepare work the obs PhaseConvert
// spans measure; the planner turns those measurements into a per-dataset
// cost table and picks the cheapest path to the hierarchy a generic
// kernel asks for — replacing the hardcoded FromCOO call sites. The
// table lives on the Workbench, which the daemon caches per dataset, so
// costs learned by one request steer the next.

// Conversion edges. Each edge name doubles as its obs span label, so
// the cost table and the trace read the same vocabulary.
const (
	// EdgeCSFFromCOO clones, sorts, and compresses COO into a CSF tree.
	EdgeCSFFromCOO = "csf.FromCOO"
	// EdgeBuild is a direct COO→hierarchy materialization; the full span
	// label carries the format, e.g. "levels.Build:bCSF".
	EdgeBuild = "levels.Build"
	// EdgeBlockRoot splits a resident CSF-shaped hierarchy's root into a
	// coarse blocked level (one linear scan).
	EdgeBlockRoot = "levels.BlockRoot"
)

// defaultCostPriors seeds the table before any measurement: sort-based
// conversions are comparable, the root split is an order of magnitude
// cheaper. Units are ns per non-zero; only ratios matter for planning.
var defaultCostPriors = map[string]float64{
	EdgeCSFFromCOO:       100,
	EdgeBuild + ":COO":   100,
	EdgeBuild + ":HiCOO": 100,
	EdgeBuild + ":CSF":   100,
	EdgeBuild + ":bCSF":  100,
	EdgeBlockRoot:        5,
}

// ConvCosts is the per-dataset conversion cost table: an exponentially
// weighted moving average of ns-per-nonzero per edge, updated from
// measured PhaseConvert durations.
type ConvCosts struct {
	mu sync.Mutex
	ns map[string]float64
}

// NewConvCosts returns a table holding only the static priors.
func NewConvCosts() *ConvCosts {
	return &ConvCosts{ns: make(map[string]float64)}
}

// Observe folds one measured conversion into the edge's moving average.
func (c *ConvCosts) Observe(edge string, nnz int, d time.Duration) {
	if nnz <= 0 {
		return
	}
	per := float64(d.Nanoseconds()) / float64(nnz)
	c.mu.Lock()
	defer c.mu.Unlock()
	if prev, ok := c.ns[edge]; ok {
		c.ns[edge] = 0.5*prev + 0.5*per
	} else {
		c.ns[edge] = per
	}
}

// Set pins an edge's cost directly (tests inject synthetic tables).
func (c *ConvCosts) Set(edge string, nsPerNNZ float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ns[edge] = nsPerNNZ
}

// Estimate returns the edge's ns-per-nonzero: the measured average when
// one exists, else the static prior.
func (c *ConvCosts) Estimate(edge string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.ns[edge]; ok {
		return v
	}
	if v, ok := defaultCostPriors[edge]; ok {
		return v
	}
	return defaultCostPriors[EdgeCSFFromCOO]
}

// Measured reports whether the edge has at least one observation.
func (c *ConvCosts) Measured(edge string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.ns[edge]
	return ok
}

// Snapshot copies the measured table (diagnostics).
func (c *ConvCosts) Snapshot() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.ns))
	for k, v := range c.ns {
		out[k] = v
	}
	return out
}

// Costs returns the workbench's conversion cost table.
func (wb *Workbench) Costs() *ConvCosts { return wb.costs }

// LevelSignature returns a format's declared level signature for one
// tensor order, or false for formats without a level view (fCOO's
// segmented flags do not decompose into per-mode levels).
func LevelSignature(f roofline.Format, order int, blockBits uint8) (levels.Signature, bool) {
	switch f {
	case roofline.COO:
		return levels.COOSig(order), true
	case roofline.HiCOO:
		return levels.HiCOOSig(order, blockBits), true
	case roofline.CSF:
		return levels.CSFSig(order), true
	case roofline.BCSF:
		return levels.BCSFSig(order, blockBits), true
	}
	return levels.Signature{}, false
}

func moKey(modeOrder []int) string { return fmt.Sprint(modeOrder) }

// CSF returns the workbench's CSF tree for one mode order, building and
// caching it on first use. site labels the conversion span's operand so
// distinct call sites (Ttv's leaf-ordered tree, Mttkrp's root-ordered
// tree, planner via-CSF steps) stay distinct trace lanes; the measured
// duration feeds the cost table.
func (wb *Workbench) CSF(modeOrder []int, site string) (*csf.CSF, error) {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return wb.csfLocked(modeOrder, site)
}

func (wb *Workbench) csfLocked(modeOrder []int, site string) (*csf.CSF, error) {
	key := moKey(modeOrder)
	if c, ok := wb.csfs[key]; ok {
		return c, nil
	}
	sp := obs.Begin(EdgeCSFFromCOO, site, obs.PhaseConvert, -1)
	start := time.Now()
	c, err := csf.FromCOO(wb.X, modeOrder)
	sp.End()
	if err != nil {
		return nil, err
	}
	wb.costs.Observe(EdgeCSFFromCOO, wb.X.NNZ(), time.Since(start))
	wb.csfs[key] = c
	return c, nil
}

// Hier returns a hierarchy of format f over the given mode order,
// choosing the cheapest conversion path by the cost table and caching
// the result. The returned plan string names the chosen path (surfaced
// through Instance.Plan into pastabench rows and pastad's /run
// response).
func (wb *Workbench) Hier(f roofline.Format, modeOrder []int, site string) (*levels.Hierarchy, string, error) {
	sig, ok := LevelSignature(f, wb.X.Order(), wb.cfg.BlockBits)
	if !ok {
		return nil, "", fmt.Errorf("kernelreg: format %s has no level view", f)
	}
	wb.mu.Lock()
	defer wb.mu.Unlock()
	key := f.String() + moKey(modeOrder)
	if h, ok := wb.hiers[key]; ok {
		return h, "cached", nil
	}

	buildEdge := EdgeBuild + ":" + f.String()
	direct := wb.costs.Estimate(buildEdge)
	_, csfResident := wb.csfs[moKey(modeOrder)]

	var h *levels.Hierarchy
	var plan string
	var err error
	switch f {
	case roofline.CSF:
		// Wrapping a CSF tree is free, so a resident tree always wins;
		// cold, FromCOO+wrap competes with the direct build on cost.
		viaCost := wb.costs.Estimate(EdgeCSFFromCOO)
		switch {
		case csfResident:
			h, err = wb.hierViaCSF(f, modeOrder, site, 0)
			plan = "reuse-csf"
		case viaCost < direct:
			h, err = wb.hierViaCSF(f, modeOrder, site, 0)
			plan = "via-csf:" + EdgeCSFFromCOO
		default:
			h, err = wb.buildHier(sig, modeOrder, buildEdge, site)
			plan = "direct:" + buildEdge
		}
	case roofline.BCSF:
		// Splitting a resident tree's root is one linear scan; cold, the
		// two-step FromCOO+BlockRoot competes with the direct build.
		split := wb.costs.Estimate(EdgeBlockRoot)
		viaCost := wb.costs.Estimate(EdgeCSFFromCOO) + split
		switch {
		case csfResident && split < direct:
			h, err = wb.hierViaCSF(f, modeOrder, site, wb.cfg.BlockBits)
			plan = "reuse-csf:" + EdgeBlockRoot
		case !csfResident && viaCost < direct:
			h, err = wb.hierViaCSF(f, modeOrder, site, wb.cfg.BlockBits)
			plan = "via-csf:" + EdgeCSFFromCOO + "+" + EdgeBlockRoot
		default:
			h, err = wb.buildHier(sig, modeOrder, buildEdge, site)
			plan = "direct:" + buildEdge
		}
	default:
		// COO and HiCOO level views have no CSF shortcut.
		h, err = wb.buildHier(sig, modeOrder, buildEdge, site)
		plan = "direct:" + buildEdge
	}
	if err != nil {
		return nil, "", err
	}
	wb.hiers[key] = h
	return h, plan, nil
}

// buildHier executes the direct COO→hierarchy edge under an observed
// conversion span and feeds the cost table.
func (wb *Workbench) buildHier(sig levels.Signature, modeOrder []int, edge, site string) (*levels.Hierarchy, error) {
	sp := obs.Begin(edge, site, obs.PhaseConvert, -1)
	start := time.Now()
	h, err := levels.Build(wb.X, sig, modeOrder)
	sp.End()
	if err != nil {
		return nil, err
	}
	wb.costs.Observe(edge, wb.X.NNZ(), time.Since(start))
	return h, nil
}

// hierViaCSF executes the via-CSF path: obtain (or reuse) the CSF tree,
// wrap it as a hierarchy, and — when bits > 0 — split its root into a
// coarse blocked level under an observed span.
func (wb *Workbench) hierViaCSF(f roofline.Format, modeOrder []int, site string, bits uint8) (*levels.Hierarchy, error) {
	c, err := wb.csfLocked(modeOrder, site)
	if err != nil {
		return nil, err
	}
	h := levels.FromCSF(c)
	if bits == 0 {
		return h, nil
	}
	sp := obs.Begin(EdgeBlockRoot, site, obs.PhaseConvert, -1)
	start := time.Now()
	h, err = levels.BlockRoot(h, bits)
	sp.End()
	if err != nil {
		return nil, err
	}
	wb.costs.Observe(EdgeBlockRoot, wb.X.NNZ(), time.Since(start))
	return h, nil
}

// convSites is the static table of (span label, operand) pairs the
// registry's conversion call sites emit, pinned by the obs-label lint:
// two sites sharing a (label, operand) pair would merge into one trace
// lane and one cost sample stream.
var convSites = [][2]string{
	{EdgeCSFFromCOO, "Ttv-leaf"},
	{EdgeCSFFromCOO, "Mttkrp-root"},
	{"fcoo.FromCOO", "Ttv"},
	{"fcoo.FromCOOMttkrp", "Mttkrp"},
	{"hicoo.FromCOO", "X"},
	{"hicoo.FromCOO", "Y"},
}
