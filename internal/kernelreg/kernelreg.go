// Package kernelreg is the suite's single dispatch layer: a declarative
// registry of kernel variants keyed by (kernel, format, backend). Each
// variant knows how to prepare itself on a Workbench, run, validate its
// output, verify against the serial-COO reference, and evaluate its
// Roofline flops/bytes model — so the measurement harness
// (internal/metrics), the verification binary (cmd/pastaverify), the
// table/figure generator (cmd/pastabench), and the chaos matrix
// (internal/resilience) all iterate the same grid instead of each
// hand-enumerating kernel × format switches.
//
// Adding a format or backend is one Register call in one file: the new
// variant immediately appears in pastainfo -variants, is measured by
// metrics.MeasureHost, verified by pastaverify, listed in pastabench
// tables, and fault-drilled by the chaos matrix.
package kernelreg

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// Backend identifies the execution backend of a variant.
type Backend int

const (
	// OMP is the multi-threaded CPU backend (parallel.For).
	OMP Backend = iota
	// GPU is the simulated-GPU backend (gpusim single device).
	GPU
	// MultiGPU partitions across several simulated devices.
	MultiGPU
	// OOC is the out-of-core streaming backend (internal/ooc): kernels
	// run over a PSTB v3 tile stream under a byte budget instead of the
	// in-core tensor.
	OOC
)

// Backends lists the backends in registry order. OOC is last so
// HostVariant keeps preferring the in-core implementations.
var Backends = []Backend{OMP, GPU, MultiGPU, OOC}

func (b Backend) String() string {
	switch b {
	case GPU:
		return "gpu"
	case MultiGPU:
		return "multigpu"
	case OOC:
		return "ooc"
	}
	return "omp"
}

// Caps is the capability metadata consumers use to drive a variant
// without knowing its kernel.
type Caps struct {
	// ModeDependent: the kernel is computed per tensor mode and harnesses
	// sweep/average all modes (Ttv, Ttm, Mttkrp).
	ModeDependent bool
	// NeedsFactors: the kernel consumes dense factor matrices (Ttm,
	// Mttkrp), so R is part of its workload.
	NeedsFactors bool
	// StrategyAware: the path resolves a reduction strategy
	// (owner/atomic/privatized) that Instance.Strategy reports.
	StrategyAware bool
	// SerialRef: the format has no native serial path, so the Instance's
	// Serial rung is the serial COO reference (CSF, fCOO).
	SerialRef bool
}

// Variant is one registered (kernel, format, backend) implementation.
type Variant struct {
	Kernel  roofline.Kernel
	Format  roofline.Format
	Backend Backend
	Caps    Caps
	// Generated marks a variant instantiated from the format's level
	// declaration by the generic kernel bodies (internal/levels), as
	// opposed to a hand-tuned registered override.
	Generated bool
	// Levels is the format's declared level signature (rendered for a
	// third-order tensor), empty for formats without a level view.
	Levels string
	// Model is the Roofline hook: Table 1 work and memory traffic for one
	// execution under the given workload parameters.
	Model func(p roofline.Params) (flops, bytes int64)
	// Prepare builds an executable Instance on the workbench for one
	// tensor mode (ignored by mode-independent kernels). Preparation —
	// format conversion, sorting, operand generation — is the untimed
	// preprocessing stage.
	Prepare func(wb *Workbench, mode int) (*Instance, error)
}

// String renders the variant like a resilience label: "Ttv/CSF@omp".
func (v *Variant) String() string {
	return fmt.Sprintf("%s/%s@%s", v.Kernel, v.Format, v.Backend)
}

// Label is the resilience taxonomy label of this variant's trials.
func (v *Variant) Label() resilience.Label {
	return resilience.Label{Kernel: v.Kernel.String(), Format: v.Format.String(), Backend: v.Backend.String()}
}

// Modes returns how many modes of x a harness should sweep for this
// variant: every mode when the kernel is mode-dependent, else one.
func (v *Variant) Modes(x *tensor.COO) int {
	if v.Caps.ModeDependent {
		return x.Order()
	}
	return 1
}

// OI evaluates the variant's model as an operational intensity.
func (v *Variant) OI(p roofline.Params) float64 {
	flops, bytes := v.Model(p)
	if bytes == 0 {
		return 0
	}
	return float64(flops) / float64(bytes)
}

// Pair is one (kernel, format) column of the benchmark grid.
type Pair struct {
	Kernel roofline.Kernel
	Format roofline.Format
}

type regKey struct {
	k roofline.Kernel
	f roofline.Format
	b Backend
}

var (
	variants []*Variant
	index    = make(map[regKey]*Variant)
)

// Register adds a variant to the registry. It panics on a duplicate key
// or a variant missing its Prepare or Model hook — registration happens
// in init, and a malformed variant must fail the build's first test, not
// a later benchmark run.
func Register(v *Variant) {
	if v.Prepare == nil || v.Model == nil {
		panic(fmt.Sprintf("kernelreg: variant %s lacks Prepare or Model", v))
	}
	key := regKey{v.Kernel, v.Format, v.Backend}
	if _, dup := index[key]; dup {
		panic(fmt.Sprintf("kernelreg: duplicate variant %s", v))
	}
	// Wrap Prepare once so every harness gets the preprocessing span for
	// free; the label is rendered here rather than per call because
	// Variant.String allocates.
	prep := v.Prepare
	label := v.String()
	v.Prepare = func(wb *Workbench, mode int) (*Instance, error) {
		sp := obs.Begin("kernelreg.Prepare", label, obs.PhasePrepare, -1)
		defer sp.End()
		return prep(wb, mode)
	}
	index[key] = v
	variants = append(variants, v)
}

// All returns every registered variant in deterministic kernel-major
// (Table 1) order, then format, then backend.
func All() []*Variant {
	out := append([]*Variant(nil), variants...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Kernel != b.Kernel {
			return a.Kernel < b.Kernel
		}
		if a.Format != b.Format {
			return a.Format < b.Format
		}
		return a.Backend < b.Backend
	})
	return out
}

// Lookup finds the variant for an exact (kernel, format, backend) key.
// The miss is a typed *resilience.KernelError wrapping ErrUnsupported so
// harness outcome aggregation can classify it.
func Lookup(k roofline.Kernel, f roofline.Format, b Backend) (*Variant, error) {
	if v, ok := index[regKey{k, f, b}]; ok {
		return v, nil
	}
	return nil, &resilience.KernelError{
		Label: resilience.Label{Kernel: k.String(), Format: f.String(), Backend: b.String()},
		Err:   resilience.ErrUnsupported,
	}
}

// HostVariant picks the variant MeasureHost times for a (kernel, format):
// the OMP implementation when one is registered, else the first
// simulated-device implementation (how fCOO, a GPU-only format, gets
// host-measured rows).
func HostVariant(k roofline.Kernel, f roofline.Format) (*Variant, error) {
	for _, b := range Backends {
		if v, ok := index[regKey{k, f, b}]; ok {
			return v, nil
		}
	}
	return nil, &resilience.KernelError{
		Label: resilience.Label{Kernel: k.String(), Format: f.String()},
		Err:   resilience.ErrUnsupported,
	}
}

// FormatsFor lists the formats with at least one registered variant of
// kernel k, in roofline.Formats order.
func FormatsFor(k roofline.Kernel) []roofline.Format {
	var out []roofline.Format
	for _, f := range roofline.Formats {
		for _, b := range Backends {
			if _, ok := index[regKey{k, f, b}]; ok {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// BackendsFor lists the backends registered for (kernel, format).
func BackendsFor(k roofline.Kernel, f roofline.Format) []Backend {
	var out []Backend
	for _, b := range Backends {
		if _, ok := index[regKey{k, f, b}]; ok {
			out = append(out, b)
		}
	}
	return out
}

// Grid returns the distinct (kernel, format) pairs with registered
// variants — the columns of the pastabench tables and figures.
func Grid() []Pair {
	var out []Pair
	for _, k := range roofline.Kernels {
		for _, f := range FormatsFor(k) {
			out = append(out, Pair{k, f})
		}
	}
	return out
}

// ModeDependent reports whether kernel k sweeps tensor modes, derived
// from its registered variants' capability metadata.
func ModeDependent(k roofline.Kernel) bool {
	for _, v := range variants {
		if v.Kernel == k {
			return v.Caps.ModeDependent
		}
	}
	return false
}
