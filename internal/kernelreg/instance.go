package kernelreg

import "context"

// Instance is one prepared, executable unit of a variant on a workbench
// mode. Run and Serial are alternative rungs over the same logical
// computation; Check and Output always reflect whichever rung wrote
// last, so a degradation ladder can validate exactly the buffer it is
// about to report.
type Instance struct {
	// Flops is the Table 1 work of one execution (plan FlopCount).
	Flops int64
	// Run executes the variant's native backend under ctx (cooperative
	// cancellation via parallel.Options.Ctx / gpusim.Device.SetContext).
	Run func(ctx context.Context) error
	// Serial is the fallback rung: the format's native serial path, or
	// the serial COO reference when Caps.SerialRef is set.
	Serial func(ctx context.Context) error
	// Check scans the current output for non-finite values.
	Check func() error
	// Strategy reports the reduction strategy the last Run resolved
	// (StrategyAware variants); nil otherwise.
	Strategy func() string
	// Plan names the conversion path the planner chose while preparing
	// this instance (e.g. "reuse-csf:levels.BlockRoot"); empty when no
	// planned conversion happened.
	Plan string
	// out yields the current output object for Output()/Check.
	out func() any
}

// Output returns the canonical form of the instance's current output.
func (i *Instance) Output() Canon { return canonOf(i.out()) }
