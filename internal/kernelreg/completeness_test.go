package kernelreg

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/resilience"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

func lintTensor() *tensor.COO {
	return tensor.RandomCOO([]tensor.Index{8, 9, 10}, 60, rand.New(rand.NewSource(7)))
}

// TestRegistryComplete is the completeness lint: every kernel and format
// enum value must have at least one registered variant, and every
// variant must carry its model hook and prepare into a fully wired
// instance (run, serial rung, finite check, canonical output, positive
// flops). A variant that drifts back toward a bare switch — registered
// without verify machinery — fails here, not in a later benchmark run.
func TestRegistryComplete(t *testing.T) {
	for _, k := range roofline.Kernels {
		if len(FormatsFor(k)) == 0 {
			t.Errorf("kernel %s has no registered variants", k)
		}
	}
	for _, f := range roofline.Formats {
		found := false
		for _, v := range All() {
			if v.Format == f {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("format %s has no registered variants", f)
		}
	}

	x := lintTensor()
	wb := NewWorkbench(x, DefaultConfig())
	for _, v := range All() {
		if v.Model == nil {
			t.Errorf("%s lacks a model hook", v)
			continue
		}
		flops, bytes := v.Model(roofline.Params{Order: 3, M: 1000, MF: 100, Nb: 10, R: 16, BlockSize: 128})
		if flops <= 0 || bytes <= 0 {
			t.Errorf("%s model returned flops=%d bytes=%d", v, flops, bytes)
		}
		inst, err := v.Prepare(wb, 0)
		if err != nil {
			t.Errorf("%s Prepare: %v", v, err)
			continue
		}
		if inst.Run == nil || inst.Serial == nil || inst.Check == nil || inst.out == nil {
			t.Errorf("%s instance lacks verify machinery (Run/Serial/Check/Output)", v)
		}
		if inst.Flops <= 0 {
			t.Errorf("%s instance reports flops %d", v, inst.Flops)
		}
		if v.Caps.StrategyAware && inst.Strategy == nil {
			t.Errorf("%s claims StrategyAware but has no Strategy hook", v)
		}
		if !v.Caps.StrategyAware && inst.Strategy != nil {
			t.Errorf("%s has a Strategy hook but does not claim StrategyAware", v)
		}
	}
}

// TestRegistryObsLabelsStable is the observability half of the
// completeness lint: counters and spans attribute work by
// Variant.String() and trials by Label().String(), so every registered
// variant must render a non-empty label, no two variants may collide,
// and the two renderings must agree — a duplicate or empty label would
// silently merge two variants' counters into one trace lane.
func TestRegistryObsLabelsStable(t *testing.T) {
	seen := make(map[string]*Variant, len(All()))
	for _, v := range All() {
		s := v.String()
		if s == "" {
			t.Errorf("variant %+v renders an empty String()", v)
			continue
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("variants %+v and %+v share the label %q", prev, v, s)
		}
		seen[s] = v
		l := v.Label().String()
		if l == "" {
			t.Errorf("%s renders an empty resilience label", s)
		}
		if l != s {
			t.Errorf("%s: Variant.String() and Label().String() disagree (%q vs %q); spans and trial outcomes would land under different keys", s, s, l)
		}
	}

	// Conversion spans attribute Prepare work by (label, operand): two
	// call sites sharing a pair would merge into one trace lane and one
	// cost-sample stream, so the static site table must be duplicate-free
	// and fully labeled.
	sites := make(map[[2]string]bool, len(convSites))
	for _, site := range convSites {
		if site[0] == "" || site[1] == "" {
			t.Errorf("conversion site %q has an empty label or operand", site)
		}
		if sites[site] {
			t.Errorf("conversion site %q listed twice", site)
		}
		sites[site] = true
	}
	// The CSF sites the registry actually distinguishes must stay
	// distinct operands of the same span label.
	if !sites[[2]string{EdgeCSFFromCOO, "Ttv-leaf"}] || !sites[[2]string{EdgeCSFFromCOO, "Mttkrp-root"}] {
		t.Error("csf.FromCOO call sites lost their distinct operand labels")
	}
}

// TestLookupAndGrid covers the registry's query surface: exact lookups
// round-trip, misses carry the typed taxonomy error, the grid lists
// every (kernel, format) exactly once, and the host-variant preference
// picks OMP when present.
func TestLookupAndGrid(t *testing.T) {
	for _, v := range All() {
		got, err := Lookup(v.Kernel, v.Format, v.Backend)
		if err != nil || got != v {
			t.Fatalf("Lookup(%s) = %v, %v", v, got, err)
		}
	}
	_, err := Lookup(roofline.Tew, roofline.CSF, OMP)
	if !errors.Is(err, resilience.ErrUnsupported) {
		t.Fatalf("miss error = %v, want ErrUnsupported", err)
	}
	var ke *resilience.KernelError
	if !errors.As(err, &ke) || ke.Label.Kernel != "Tew" || ke.Label.Format != "CSF" {
		t.Fatalf("miss error not a labeled KernelError: %v", err)
	}

	seen := map[Pair]bool{}
	for _, pr := range Grid() {
		if seen[pr] {
			t.Fatalf("grid lists %v/%v twice", pr.Kernel, pr.Format)
		}
		seen[pr] = true
		if _, err := HostVariant(pr.Kernel, pr.Format); err != nil {
			t.Fatalf("grid pair %v/%v has no host variant: %v", pr.Kernel, pr.Format, err)
		}
	}
	if !seen[(Pair{roofline.Ttv, roofline.CSF})] || !seen[(Pair{roofline.Mttkrp, roofline.FCOO})] {
		t.Fatal("grid is missing the CSF/fCOO pairs")
	}

	hv, err := HostVariant(roofline.Mttkrp, roofline.CSF)
	if err != nil || hv.Backend != OMP {
		t.Fatalf("HostVariant(Mttkrp, CSF) = %v, %v; want OMP", hv, err)
	}
	hv, err = HostVariant(roofline.Ttv, roofline.FCOO)
	if err != nil || hv.Backend != GPU {
		t.Fatalf("HostVariant(Ttv, fCOO) = %v, %v; want GPU", hv, err)
	}
}

// TestModeDependenceMetadata pins the capability metadata harnesses
// average modes by.
func TestModeDependenceMetadata(t *testing.T) {
	want := map[roofline.Kernel]bool{
		roofline.Tew: false, roofline.Ts: false,
		roofline.Ttv: true, roofline.Ttm: true, roofline.Mttkrp: true,
	}
	for k, dep := range want {
		if ModeDependent(k) != dep {
			t.Errorf("ModeDependent(%s) = %v, want %v", k, !dep, dep)
		}
	}
	x := lintTensor()
	for _, v := range All() {
		modes := v.Modes(x)
		if v.Caps.ModeDependent && modes != x.Order() {
			t.Errorf("%s Modes = %d, want %d", v, modes, x.Order())
		}
		if !v.Caps.ModeDependent && modes != 1 {
			t.Errorf("%s Modes = %d, want 1", v, modes)
		}
	}
}

// TestWorkbenchOperandsDeterministic pins the operand seeds the
// measurement harness has always used: the Tew operand shares X's
// non-zero pattern, and repeated workbenches generate identical data.
func TestWorkbenchOperandsDeterministic(t *testing.T) {
	x := lintTensor()
	a, b := NewWorkbench(x, DefaultConfig()), NewWorkbench(x, DefaultConfig())
	ya, yb := a.Y(), b.Y()
	if ya.NNZ() != x.NNZ() {
		t.Fatalf("operand nnz %d, want %d", ya.NNZ(), x.NNZ())
	}
	for n := range ya.Inds {
		for i := range ya.Inds[n] {
			if ya.Inds[n][i] != x.Inds[n][i] {
				t.Fatal("operand does not share X's pattern")
			}
		}
	}
	for i := range ya.Vals {
		if ya.Vals[i] != yb.Vals[i] {
			t.Fatal("operand values not deterministic")
		}
	}
	if va, vb := a.Vec(1), b.Vec(1); len(va) != len(vb) || va[0] != vb[0] {
		t.Fatal("mode vectors not deterministic")
	}
	ma, mb := a.Mats(), b.Mats()
	for n := range ma {
		for i := range ma[n].Data {
			if ma[n].Data[i] != mb[n].Data[i] {
				t.Fatal("factor matrices not deterministic")
			}
		}
	}
}

// TestReferenceCached ensures the serial-COO reference is computed once
// per (kernel, mode) on a workbench.
func TestReferenceCached(t *testing.T) {
	wb := NewWorkbench(lintTensor(), DefaultConfig())
	c1, err := wb.Reference(context.Background(), roofline.Ttv, 1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := wb.Reference(context.Background(), roofline.Ttv, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1) == 0 {
		t.Fatal("empty reference")
	}
	// A cached reference shares the same underlying map.
	c1["sentinel"] = 1
	if c2["sentinel"] != 1 {
		t.Fatal("reference recomputed instead of cached")
	}
}
