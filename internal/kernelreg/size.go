package kernelreg

import (
	"runtime"
	"unsafe"

	"repro/internal/roofline"
	"repro/internal/tensor"
)

// valueBytes is the in-memory size of one tensor.Value, derived from
// the type so the accounting tracks a precision change.
const valueBytes = int64(unsafe.Sizeof(tensor.Value(0)))

// indexBytes is the in-memory size of one tensor.Index.
const indexBytes = int64(unsafe.Sizeof(tensor.Index(0)))

// MemBytes reports the workbench's measured resident footprint: the
// input tensor plus every lazily built operand and format conversion.
// It walks only what has actually been materialized, so the number
// grows as variants touch the workbench — the measured complement to
// EstimateFootprint's pre-admission prediction.
func (wb *Workbench) MemBytes() int64 {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	b := wb.X.StorageBytes()
	if wb.y != nil {
		b += wb.y.StorageBytes()
	}
	if wb.hx != nil {
		b += wb.hx.StorageBytes()
	}
	if wb.hy != nil {
		b += wb.hy.StorageBytes()
	}
	for _, v := range wb.vecs {
		b += valueBytes * int64(len(v))
	}
	for _, m := range wb.ttm {
		b += valueBytes * int64(len(m.Data))
	}
	for _, m := range wb.mats {
		b += valueBytes * int64(len(m.Data))
	}
	for _, c := range wb.csfs {
		b += c.StorageBytes()
	}
	for _, h := range wb.hiers {
		b += h.StorageBytes()
	}
	return b
}

// Footprint is the predicted working-set cost of one (kernel, format)
// execution, split by lifetime so an admission controller can skip
// components that are already cache-resident.
type Footprint struct {
	// Workbench is the dataset-lifetime component: the materialized COO
	// tensor plus the kernel's operands (second Tew tensor, factor
	// matrices, dense Ttm matrix, Ttv vector).
	Workbench int64
	// Instance is the prepared-instance component: the format
	// conversion (Prepare clones the COO before sorting, so the clone
	// is charged too) plus the output buffer the instance owns.
	Instance int64
	// Run is the per-execution transient component: the unique bytes a
	// trial touches — the Table 1 roofline traffic clamped to the
	// resident set (traffic counts re-reads; the working set does not)
	// — plus per-worker reduction scratch.
	Run int64
}

// Total is the full admission charge for a cold request.
func (f Footprint) Total() int64 { return f.Workbench + f.Instance + f.Run }

// EstimateFootprint predicts the working-set bytes of one execution
// before anything is materialized, from the dataset shape alone. The
// estimate leans conservative (fiber and block counts are proxied by
// their nnz upper bounds) — for admission control an overcharge sheds a
// borderline request, an undercharge OOMs the daemon.
func EstimateFootprint(k roofline.Kernel, f roofline.Format, dims []int64, nnz int64, cfg Config) Footprint {
	if cfg.R < 1 {
		cfg.R = DefaultConfig().R
	}
	if cfg.BlockBits < 1 {
		cfg.BlockBits = DefaultConfig().BlockBits
	}
	order := int64(len(dims))
	if order < 1 {
		order = 1
	}
	r := int64(cfg.R)
	blockSize := int64(1) << cfg.BlockBits
	var sumDims, maxDim int64
	for _, d := range dims {
		sumDims += d
		if d > maxDim {
			maxDim = d
		}
	}
	coo := (order + 1) * indexBytes * nnz // index arrays + values

	fp := Footprint{Workbench: coo}
	switch k {
	case roofline.Tew:
		fp.Workbench += coo // the second operand Y shares X's pattern
	case roofline.Ttv:
		fp.Workbench += valueBytes * maxDim
	case roofline.Ttm:
		fp.Workbench += valueBytes * maxDim * r
	case roofline.Mttkrp:
		fp.Workbench += valueBytes * sumDims * r // one factor matrix per mode
	}

	// Prepare clones the COO before sorting, then converts; the clone
	// and the converted structure coexist, so both are charged.
	conv := coo
	switch f {
	case roofline.HiCOO:
		// Block pointers + block indices + 8-bit element indices + values.
		nb := nnz/blockSize + 1
		conv += (8+4*order)*nb + (valueBytes+order)*nnz
	case roofline.CSF:
		conv += 8*nnz + 4*order*nnz // fiber pointers + per-level ids (nnz upper bound)
	case roofline.BCSF:
		// CSF storage plus the root split: one coarse blocked level
		// (crd + ptr, ≤ root-node count ≤ nnz) and the refined root crds.
		conv += 8*nnz + 4*order*nnz + (8+4+4)*nnz
	case roofline.FCOO:
		conv += 2*4*nnz + nnz/8 + 4*nnz // inds + vals + flag bitmaps
	}
	out := outputBytes(k, order, nnz, maxDim, r)
	fp.Instance = conv + out

	// The roofline byte models count every read, including re-reads of
	// resident data; the unique bytes a trial touches are bounded by
	// what is resident. The clamp keeps high-reuse kernels (Mttkrp's
	// 4NMR factor traffic) from being charged terabytes they never
	// allocate.
	p := roofline.Params{Order: int(order), M: nnz, MF: nnz, Nb: nnz/blockSize + 1, R: r, BlockSize: blockSize}
	run := roofline.Bytes(k, f, p)
	if resident := fp.Workbench + fp.Instance; run > resident {
		run = resident
	}
	// Per-worker privatized reduction scratch (cache-line padded rows).
	run += int64(runtime.GOMAXPROCS(0)) * 64 * valueBytes
	fp.Run = run
	return fp
}

// outputBytes estimates the output object one prepared instance owns.
func outputBytes(k roofline.Kernel, order, nnz, maxDim, r int64) int64 {
	switch k {
	case roofline.Tew, roofline.Ts:
		return (order + 1) * indexBytes * nnz // same-pattern COO output
	case roofline.Ttv:
		// One value per fiber plus N-1 index arrays; fibers ≤ nnz.
		return order * indexBytes * nnz
	case roofline.Ttm:
		// Semi-sparse output: R values per fiber (fibers ≤ nnz).
		return valueBytes*nnz*r + (order-1)*indexBytes*nnz
	case roofline.Mttkrp:
		return valueBytes * maxDim * r
	}
	return valueBytes * nnz
}
