package kernelreg

import (
	"math/rand"
	"testing"

	"repro/internal/roofline"
	"repro/internal/tensor"
)

func TestMemBytesGrowsWithOperands(t *testing.T) {
	x := tensor.RandomCOO([]tensor.Index{40, 40, 40}, 2000, rand.New(rand.NewSource(7)))
	wb := NewWorkbench(x, Config{})
	base := wb.MemBytes()
	if base < x.StorageBytes() {
		t.Fatalf("MemBytes() = %d, below the input tensor's %d", base, x.StorageBytes())
	}
	wb.Mats() // force the factor matrices
	withMats := wb.MemBytes()
	if withMats <= base {
		t.Fatalf("MemBytes() after Mats() = %d, want > %d", withMats, base)
	}
	wb.HX() // force the HiCOO conversion
	withHX := wb.MemBytes()
	if withHX <= withMats {
		t.Fatalf("MemBytes() after HX() = %d, want > %d", withHX, withMats)
	}
	wantDelta := wb.HX().StorageBytes()
	if got := withHX - withMats; got != wantDelta {
		t.Fatalf("HX delta = %d, want the conversion's StorageBytes %d", got, wantDelta)
	}
}

func TestEstimateFootprintShape(t *testing.T) {
	dims := []int64{100, 200, 300}
	for _, k := range roofline.Kernels {
		for _, f := range roofline.Formats {
			small := EstimateFootprint(k, f, dims, 10_000, Config{})
			big := EstimateFootprint(k, f, dims, 1_000_000, Config{})
			if small.Workbench <= 0 || small.Instance <= 0 || small.Run <= 0 {
				t.Fatalf("%s/%s: non-positive component in %+v", k, f, small)
			}
			if big.Total() <= small.Total() {
				t.Fatalf("%s/%s: footprint not monotone in nnz (%d vs %d)",
					k, f, big.Total(), small.Total())
			}
			// The Run component is a working-set estimate, not raw
			// traffic: it must stay within the resident set plus scratch.
			if small.Run > small.Workbench+small.Instance+1<<20 {
				t.Fatalf("%s/%s: Run %d exceeds resident set %d",
					k, f, small.Run, small.Workbench+small.Instance)
			}
		}
	}
}

// The estimate must land within an order of magnitude of the measured
// workbench for the operands it models — close enough to admit by.
func TestEstimateTracksMeasuredWorkbench(t *testing.T) {
	x := tensor.RandomCOO([]tensor.Index{50, 60, 70}, 5000, rand.New(rand.NewSource(3)))
	wb := NewWorkbench(x, Config{})
	wb.Mats()
	measured := wb.MemBytes()
	dims := []int64{50, 60, 70}
	est := EstimateFootprint(roofline.Mttkrp, roofline.COO, dims, int64(x.NNZ()), Config{})
	if est.Workbench < measured/10 || est.Workbench > measured*10 {
		t.Fatalf("estimated workbench %d vs measured %d: off by more than 10x",
			est.Workbench, measured)
	}
}
