package kernelreg

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/levels"
	"repro/internal/roofline"
)

// Generic variant instantiation: the grid cells no hand-tuned override
// claims are filled by the level-iterator kernel bodies in
// internal/levels, prepared on whatever hierarchy the conversion
// planner deems cheapest. The serial rung is always the COO reference
// (SerialRef), matching the CSF/fCOO convention.

// genericModeOrder places the kernel's mode of interest where its
// generic body wants it: Mttkrp assembles the output mode first (root
// subtrees own disjoint output rows — no atomics), Ttv and Ttm reduce
// the product mode at the leaves.
func genericModeOrder(k roofline.Kernel, order, mode int) []int {
	if k == roofline.Mttkrp {
		return append([]int{mode}, otherModesOf(order, mode)...)
	}
	return append(otherModesOf(order, mode), mode)
}

// genericPrep returns the Prepare hook of one generated variant.
func genericPrep(k roofline.Kernel, f roofline.Format) func(wb *Workbench, mode int, b Backend) (*Instance, error) {
	site := fmt.Sprintf("%s/%s@%s", k, f, OMP)
	return func(wb *Workbench, mode int, b Backend) (*Instance, error) {
		if b != OMP {
			return nil, badBackend(site, b)
		}
		h, plan, err := wb.Hier(f, genericModeOrder(k, wb.X.Order(), mode), site)
		if err != nil {
			return nil, err
		}
		nnz := int64(wb.X.NNZ())
		var cur any
		inst := &Instance{Plan: plan}
		inst.out = func() any { return cur }
		inst.Check = func() error { return checkFinite(cur) }
		switch k {
		case roofline.Ttv:
			v := wb.Vec(mode)
			inst.Flops = 2 * nnz
			inst.Run = func(ctx context.Context) error {
				out, err := levels.Ttv(h, mode, v, wb.Opt(ctx))
				if err == nil {
					cur = out
				}
				return err
			}
			ref, err := core.PrepareTtv(wb.X, mode)
			if err != nil {
				return nil, err
			}
			inst.Serial = func(context.Context) error {
				_, err := ref.ExecuteSeq(v)
				if err == nil {
					cur = ref.Out
				}
				return err
			}
		case roofline.Ttm:
			u := wb.TtmMat(mode)
			inst.Flops = 2 * nnz * int64(wb.R())
			inst.Run = func(ctx context.Context) error {
				out, err := levels.Ttm(h, mode, u, wb.Opt(ctx))
				if err == nil {
					cur = out
				}
				return err
			}
			ref, err := core.PrepareTtm(wb.X, mode, wb.R())
			if err != nil {
				return nil, err
			}
			inst.Serial = func(context.Context) error {
				_, err := ref.ExecuteSeq(u)
				if err == nil {
					cur = ref.Out
				}
				return err
			}
		case roofline.Mttkrp:
			mats := wb.Mats()
			inst.Flops = int64(wb.X.Order()) * nnz * int64(wb.R())
			inst.Run = func(ctx context.Context) error {
				out, err := levels.Mttkrp(h, mode, mats, wb.Opt(ctx))
				if err == nil {
					cur = out
				}
				return err
			}
			ref, err := core.PrepareMttkrp(wb.X, mode, wb.R())
			if err != nil {
				return nil, err
			}
			inst.Serial = func(context.Context) error {
				_, err := ref.ExecuteSeq(mats)
				if err == nil {
					cur = ref.Out
				}
				return err
			}
		default:
			return nil, fmt.Errorf("kernelreg: no generic body for %s", k)
		}
		return inst, nil
	}
}
