package kernelreg

import (
	"context"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/csf"
	"repro/internal/fcoo"
	"repro/internal/gpusim"
	"repro/internal/hicoo"
	"repro/internal/levels"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Config carries the experiment parameters a Workbench prepares variants
// with (the §5.1.2 settings harnesses already use).
type Config struct {
	// R is the factor-matrix column count (paper: 16).
	R int
	// BlockBits is log2 of the HiCOO block size (paper: 7 → B=128).
	BlockBits uint8
	// SegSize is the F-COO segment length (0 → fcoo.DefaultSegSize).
	SegSize int
	// Sched is the scheduling policy OMP instances run with.
	Sched parallel.Options
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		R:         core.DefaultR,
		BlockBits: hicoo.DefaultBlockBits,
		SegSize:   fcoo.DefaultSegSize,
		Sched:     parallel.Options{Schedule: parallel.Dynamic},
	}
}

// Workbench holds one input tensor plus lazily built, deterministically
// seeded operands (the seeds the measurement harness has always used) and
// simulated devices, shared by every variant prepared on it.
//
// A Workbench is safe for concurrent use: operand, reference, and device
// lazy-initialization is serialized by an internal mutex, X and every
// cached operand are read-only once built (Prepare paths clone before
// sorting), and device-backend executions serialize on a per-workbench
// device lock so concurrent trials cannot clobber each other's device
// context. Distinct Instances prepared from one workbench own their own
// output buffers and may Run concurrently; a single Instance is NOT
// concurrency-safe — callers (e.g. the pastad batcher) must serialize
// runs of the same Instance.
type Workbench struct {
	// X is the input tensor every variant computes on. It is read-only:
	// every Prepare and format conversion clones before sorting.
	X   *tensor.COO
	cfg Config

	// mu guards the lazy-initialized operand and device fields below.
	// The critical sections are pure construction (no kernel execution),
	// so holding mu never blocks on a running trial.
	mu    sync.Mutex
	y     *tensor.COO
	hx    *hicoo.HiCOO
	hy    *hicoo.HiCOO
	vecs  map[int]tensor.Vector
	ttm   map[int]*tensor.Matrix
	mats  []*tensor.Matrix
	csfs  map[string]*csf.CSF          // CSF trees keyed by mode order
	hiers map[string]*levels.Hierarchy // level hierarchies keyed by format+mode order
	dev   *gpusim.Device
	devs  []*gpusim.Device
	tiled *tensor.TileReader // v3 tile view of X for the OOC variants

	// costs is the per-dataset conversion cost table the planner reads
	// and every observed conversion feeds (see planner.go).
	costs *ConvCosts

	// refMu guards refs. References are computed outside the lock (the
	// computation itself Prepares and runs a serial instance, which takes
	// mu), so two goroutines may race to compute the same reference; both
	// produce the identical canon and the first store wins.
	refMu sync.Mutex
	refs  map[refKey]Canon

	// devMu serializes device-backend executions: the simulated devices
	// are shared per workbench and SetContext is a per-launch setting.
	devMu sync.Mutex
}

// NewWorkbench builds a workbench for x, normalizing zero Config fields
// to the paper defaults.
func NewWorkbench(x *tensor.COO, cfg Config) *Workbench {
	if cfg.R < 1 {
		cfg.R = core.DefaultR
	}
	if cfg.BlockBits < 1 || cfg.BlockBits > hicoo.MaxBlockBits {
		cfg.BlockBits = hicoo.DefaultBlockBits
	}
	if cfg.SegSize <= 0 {
		cfg.SegSize = fcoo.DefaultSegSize
	}
	return &Workbench{
		X:     x,
		cfg:   cfg,
		vecs:  make(map[int]tensor.Vector),
		ttm:   make(map[int]*tensor.Matrix),
		csfs:  make(map[string]*csf.CSF),
		hiers: make(map[string]*levels.Hierarchy),
		refs:  make(map[refKey]Canon),
		costs: NewConvCosts(),
	}
}

// R returns the factor-matrix column count.
func (wb *Workbench) R() int { return wb.cfg.R }

// BlockBits returns the HiCOO block-size exponent.
func (wb *Workbench) BlockBits() uint8 { return wb.cfg.BlockBits }

// SegSize returns the F-COO segment length.
func (wb *Workbench) SegSize() int { return wb.cfg.SegSize }

// Opt threads a trial context into the scheduling options so OMP kernels
// observe deadlines at chunk granularity.
func (wb *Workbench) Opt(ctx context.Context) parallel.Options {
	opt := wb.cfg.Sched
	opt.Ctx = ctx
	return opt
}

// Y is the second Tew operand: same non-zero pattern as X, fresh
// deterministic values (seed 12345, as the harness has always used).
func (wb *Workbench) Y() *tensor.COO {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return wb.yLocked()
}

// yLocked builds Y under wb.mu (HY needs it while already holding the
// lock).
func (wb *Workbench) yLocked() *tensor.COO {
	if wb.y == nil {
		y := wb.X.Clone()
		rng := rand.New(rand.NewSource(12345))
		for i := range y.Vals {
			y.Vals[i] = tensor.Value(1 - rng.Float64())
		}
		wb.y = y
	}
	return wb.y
}

// HX is X converted to HiCOO, built once per workbench.
func (wb *Workbench) HX() *hicoo.HiCOO {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	if wb.hx == nil {
		sp := obs.Begin("hicoo.FromCOO", "X", obs.PhaseConvert, -1)
		wb.hx = hicoo.FromCOO(wb.X, wb.cfg.BlockBits)
		sp.End()
	}
	return wb.hx
}

// HY is Y converted to HiCOO.
func (wb *Workbench) HY() *hicoo.HiCOO {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	if wb.hy == nil {
		y := wb.yLocked()
		sp := obs.Begin("hicoo.FromCOO", "Y", obs.PhaseConvert, -1)
		wb.hy = hicoo.FromCOO(y, wb.cfg.BlockBits)
		sp.End()
	}
	return wb.hy
}

// Vec is the Ttv vector for one mode (seeded by mode number).
func (wb *Workbench) Vec(mode int) tensor.Vector {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	if v, ok := wb.vecs[mode]; ok {
		return v
	}
	v := tensor.RandomVector(int(wb.X.Dims[mode]), rand.New(rand.NewSource(int64(mode))))
	wb.vecs[mode] = v
	return v
}

// TtmMat is the dense Ttm matrix for one mode (seed mode+100).
func (wb *Workbench) TtmMat(mode int) *tensor.Matrix {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	if u, ok := wb.ttm[mode]; ok {
		return u
	}
	u := tensor.NewMatrix(int(wb.X.Dims[mode]), wb.cfg.R)
	u.Randomize(rand.New(rand.NewSource(int64(mode) + 100)))
	wb.ttm[mode] = u
	return u
}

// Mats are the Mttkrp factor matrices, one per mode (seed 777).
func (wb *Workbench) Mats() []*tensor.Matrix {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	if wb.mats == nil {
		rng := rand.New(rand.NewSource(777))
		mats := make([]*tensor.Matrix, wb.X.Order())
		for n := range mats {
			mats[n] = tensor.NewMatrix(int(wb.X.Dims[n]), wb.cfg.R)
			mats[n].Randomize(rng)
		}
		wb.mats = mats
	}
	return wb.mats
}

// Device is the workbench's simulated GPU, created on first use.
func (wb *Workbench) Device() *gpusim.Device {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return wb.deviceLocked()
}

func (wb *Workbench) deviceLocked() *gpusim.Device {
	if wb.dev == nil {
		wb.dev = gpusim.NewDevice("kernelreg", 0)
	}
	return wb.dev
}

// Devices is the two-device set MultiGPU variants partition across.
func (wb *Workbench) Devices() []*gpusim.Device {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return wb.devicesLocked()
}

func (wb *Workbench) devicesLocked() []*gpusim.Device {
	if wb.devs == nil {
		wb.devs = []*gpusim.Device{
			gpusim.NewDevice("kernelreg-0", 4),
			gpusim.NewDevice("kernelreg-1", 4),
		}
	}
	return wb.devs
}

// onDevice wraps a device kernel so the trial context reaches the
// device's cooperative-cancellation hook for exactly the call's duration.
// Device runs serialize on wb.devMu: the device (and its attached
// context) is a shared per-workbench resource, so two concurrent trials
// must not interleave SetContext calls.
func (wb *Workbench) onDevice(run func() error) func(context.Context) error {
	return func(ctx context.Context) error {
		wb.devMu.Lock()
		defer wb.devMu.Unlock()
		dev := wb.Device()
		dev.SetContext(ctx)
		defer dev.SetContext(nil)
		return run()
	}
}

// onDevices is onDevice for the MultiGPU device set.
func (wb *Workbench) onDevices(run func() error) func(context.Context) error {
	return func(ctx context.Context) error {
		wb.devMu.Lock()
		defer wb.devMu.Unlock()
		for _, d := range wb.Devices() {
			d.SetContext(ctx)
		}
		defer func() {
			for _, d := range wb.Devices() {
				d.SetContext(nil)
			}
		}()
		return run()
	}
}
