package kernelreg

import (
	"context"

	"repro/internal/obs"
	"repro/internal/roofline"
)

type refKey struct {
	k    roofline.Kernel
	mode int
}

// Reference returns the canonical serial-COO reference output for kernel
// k on one mode, computed (once per workbench) via the registry's own
// (k, COO, OMP) variant run on its serial rung — the registry defines
// its own ground truth instead of a parallel switch.
//
// The reference is computed outside refMu (the computation Prepares a
// fresh instance, which takes the operand lock): concurrent callers may
// duplicate the work, but each runs on its own output buffer and
// produces the identical deterministic canon, so the first store wins.
func (wb *Workbench) Reference(ctx context.Context, k roofline.Kernel, mode int) (Canon, error) {
	key := refKey{k, mode}
	wb.refMu.Lock()
	c, ok := wb.refs[key]
	wb.refMu.Unlock()
	if ok {
		return c, nil
	}
	v, err := Lookup(k, roofline.COO, OMP)
	if err != nil {
		return nil, err
	}
	inst, err := v.Prepare(wb, mode)
	if err != nil {
		return nil, err
	}
	if err := inst.Serial(ctx); err != nil {
		return nil, err
	}
	c = inst.Output()
	wb.refMu.Lock()
	if prev, ok := wb.refs[key]; ok {
		c = prev // a concurrent computation won; keep one canonical object
	} else {
		wb.refs[key] = c
	}
	wb.refMu.Unlock()
	return c, nil
}

// Verify prepares the variant on one mode, runs its native backend once
// under ctx, scans the output for non-finite values, and returns the
// worst relative deviation from the serial COO reference. Harnesses gate
// on a tolerance (2e-3 covers float32 reduction-order noise at the
// suite's sizes).
func (v *Variant) Verify(ctx context.Context, wb *Workbench, mode int) (float64, error) {
	sp := obs.Begin("kernelreg.Verify", v.String(), obs.PhaseVerify, -1)
	defer sp.End()
	ref, err := wb.Reference(ctx, v.Kernel, mode)
	if err != nil {
		return 0, err
	}
	inst, err := v.Prepare(wb, mode)
	if err != nil {
		return 0, err
	}
	if err := inst.Run(ctx); err != nil {
		return 0, err
	}
	if err := inst.Check(); err != nil {
		return 0, err
	}
	return Compare(inst.Output(), ref), nil
}
