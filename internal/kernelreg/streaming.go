package kernelreg

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/ooc"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// The OOC backend's variants (grid rule 3): Ttv and Mttkrp running over
// a PSTB v3 tile stream via internal/ooc instead of the in-core tensor.
// Prepare serializes the workbench tensor into an in-memory tiled image
// sliced into several tiles and streams it under a budget a small
// multiple of the largest tile, so pastaverify and the chaos matrix
// exercise the real pipeline — leasing, prefetch, eviction — even on
// lint-sized tensors. The Run rung is the parallel stream; the Serial
// rung is the deterministic stream, whose output is bit-exact against
// the serial in-core kernels.

// streamTiles is the minimum tile count the workbench image is cut into.
const streamTiles = 8

// streamingPrep returns the rule-3 Prepare hook for kernel k.
func streamingPrep(k roofline.Kernel) func(wb *Workbench, mode int, b Backend) (*Instance, error) {
	return func(wb *Workbench, mode int, b Backend) (*Instance, error) {
		if b != OOC {
			return nil, badBackend(fmt.Sprintf("%s/COO streaming", k), b)
		}
		switch k {
		case roofline.Ttv:
			return prepTtvOOC(wb, mode)
		case roofline.Mttkrp:
			return prepMttkrpOOC(wb, mode)
		}
		return nil, fmt.Errorf("kernelreg: kernel %s has no streaming body", k)
	}
}

// TileReader returns the v3 tile view of X, serialized once per
// workbench into an in-memory image of at least streamTiles tiles. The
// reader is safe for concurrent streams: ReadAt is stateless and the
// directory is read-only; each stream owns its decode buffers.
func (wb *Workbench) TileReader() (*tensor.TileReader, error) {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	if wb.tiled != nil {
		return wb.tiled, nil
	}
	tileNNZ := (wb.X.NNZ() + streamTiles - 1) / streamTiles
	if tileNNZ < 1 {
		tileNNZ = 1
	}
	var buf bytes.Buffer
	if err := tensor.WriteBinaryTiled(&buf, wb.X, tileNNZ); err != nil {
		return nil, err
	}
	raw := buf.Bytes()
	tr, err := tensor.NewTileReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		return nil, err
	}
	wb.tiled = tr
	return tr, nil
}

// streamBudget is the tile-residency budget the workbench variants run
// under: five times the largest tile — enough for the double-buffered
// pipeline (two leases of at most 2× a tile each), small enough that
// the stream actually cycles leases on multi-tile images.
func streamBudget(tr *tensor.TileReader) int64 {
	b := 5 * tr.MaxTileBytes()
	if b < 1<<16 {
		b = 1 << 16
	}
	return b
}

func prepMttkrpOOC(wb *Workbench, mode int) (*Instance, error) {
	tr, err := wb.TileReader()
	if err != nil {
		return nil, err
	}
	mats := wb.Mats()
	out := tensor.NewMatrix(int(tr.Dims[mode]), wb.R())
	inst := &Instance{Flops: ooc.MttkrpFlops(tr, wb.R())}
	inst.out = func() any { return out }
	inst.Check = func() error { return checkFinite(out) }
	run := func(ctx context.Context, det bool) error {
		o, _, err := ooc.Mttkrp(ctx, tr, mats, mode, ooc.Options{
			MemBudget: streamBudget(tr), Deterministic: det, Sched: wb.Opt(ctx),
		})
		if err != nil {
			return err
		}
		out = o
		return nil
	}
	inst.Run = func(ctx context.Context) error { return run(ctx, false) }
	inst.Serial = func(ctx context.Context) error { return run(ctx, true) }
	return inst, nil
}

func prepTtvOOC(wb *Workbench, mode int) (*Instance, error) {
	tr, err := wb.TileReader()
	if err != nil {
		return nil, err
	}
	v := wb.Vec(mode)
	outDims := make([]tensor.Index, 0, tr.Order()-1)
	for n, d := range tr.Dims {
		if n != mode {
			outDims = append(outDims, d)
		}
	}
	out := tensor.NewCOO(outDims, 0)
	inst := &Instance{Flops: ooc.TtvFlops(tr)}
	inst.out = func() any { return out }
	inst.Check = func() error { return checkFinite(out) }
	run := func(ctx context.Context, det bool) error {
		o, _, err := ooc.Ttv(ctx, tr, v, mode, ooc.Options{
			MemBudget: streamBudget(tr), Deterministic: det, Sched: wb.Opt(ctx),
		})
		if err != nil {
			return err
		}
		out = o
		return nil
	}
	inst.Run = func(ctx context.Context) error { return run(ctx, false) }
	inst.Serial = func(ctx context.Context) error { return run(ctx, true) }
	return inst, nil
}
