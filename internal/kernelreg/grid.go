package kernelreg

import (
	"fmt"
	"strings"

	"repro/internal/roofline"
)

// Grid generation. The registry's variant grid is produced by
// enumerating kernel × format × backend and applying three rules,
// instead of hand-listing every cell:
//
//  1. A cell claimed by the hand-tuned override table (variants.go)
//     registers that implementation — the suite's tuned fast paths.
//  2. An unclaimed cell whose format declares a level signature and
//     whose kernel has a generic level-iterator body (Ttv, Ttm, Mttkrp
//     on the OMP backend) registers the generic implementation.
//  3. A cell on the OOC backend whose kernel has a streaming body
//     (Ttv, Mttkrp over a COO tile stream) registers the out-of-core
//     implementation (streaming.go) — so the streamed kernels are
//     verified by pastaverify and fault-drilled by the chaos matrix
//     like every in-core variant.
//
// Adding a format is therefore one signature declaration: blocked-CSF
// appears in pastaverify, pastabench, pastainfo, and the chaos matrix
// with zero kernel code. The CI grid lint (completeness tests) asserts
// rule 2's closure: every declared hierarchy × generic kernel × OMP
// cell is registered and verifies against the serial-COO reference.

// genericKernels lists the kernels with generic level-iterator bodies.
var genericKernels = []roofline.Kernel{roofline.Ttv, roofline.Ttm, roofline.Mttkrp}

// streamingKernels lists the kernels with out-of-core streaming bodies
// (internal/ooc).
var streamingKernels = []roofline.Kernel{roofline.Ttv, roofline.Mttkrp}

// streamingCell reports whether rule 3 fills (k, f, b): the streaming
// bodies consume a COO tile stream on the OOC backend.
func streamingCell(k roofline.Kernel, f roofline.Format, b Backend) bool {
	if b != OOC || f != roofline.COO {
		return false
	}
	for _, sk := range streamingKernels {
		if sk == k {
			return true
		}
	}
	return false
}

// genericCell reports whether rule 2 fills (k, f, b): the generic
// bodies run on parallel.For (OMP) and need a level view of the format.
func genericCell(k roofline.Kernel, f roofline.Format, b Backend) bool {
	if b != OMP {
		return false
	}
	if _, ok := LevelSignature(f, 3, 7); !ok {
		return false
	}
	for _, gk := range genericKernels {
		if gk == k {
			return true
		}
	}
	return false
}

// levelsLabel renders a format's level signature for display (order 3,
// the paper's default block bits), without the format-name prefix.
func levelsLabel(f roofline.Format) string {
	sig, ok := LevelSignature(f, 3, 7)
	if !ok {
		return ""
	}
	s := sig.String()
	if i := strings.Index(s, ": "); i >= 0 {
		return s[i+2:]
	}
	return s
}

func init() {
	hand := handTuned()
	for _, k := range roofline.Kernels {
		for _, f := range roofline.Formats {
			for _, b := range Backends {
				key := regKey{k, f, b}
				if h, ok := hand[key]; ok {
					registerCell(k, f, b, h.caps, false, h.prep)
					delete(hand, key)
					continue
				}
				if genericCell(k, f, b) {
					caps := Caps{
						ModeDependent: true,
						NeedsFactors:  k == roofline.Ttm || k == roofline.Mttkrp,
						SerialRef:     true,
					}
					registerCell(k, f, b, caps, true, genericPrep(k, f))
					continue
				}
				if streamingCell(k, f, b) {
					// The serial rung is the deterministic stream — a
					// native path, not the COO reference — so SerialRef
					// stays unset.
					caps := Caps{
						ModeDependent: true,
						NeedsFactors:  k == roofline.Mttkrp,
					}
					registerCell(k, f, b, caps, false, streamingPrep(k))
				}
			}
		}
	}
	if len(hand) != 0 {
		// An override keyed outside the enumerated space would silently
		// vanish from the grid; fail the build's first test instead.
		panic(fmt.Sprintf("kernelreg: %d hand-tuned overrides not reachable by grid enumeration", len(hand)))
	}
}

// registerCell wires one grid cell into the registry.
func registerCell(k roofline.Kernel, f roofline.Format, b Backend, caps Caps, generated bool,
	prep func(wb *Workbench, mode int, b Backend) (*Instance, error)) {
	Register(&Variant{
		Kernel: k, Format: f, Backend: b, Caps: caps,
		Generated: generated,
		Levels:    levelsLabel(f),
		Model:     tableModel(k, f),
		Prepare:   func(wb *Workbench, mode int) (*Instance, error) { return prep(wb, mode, b) },
	})
}
