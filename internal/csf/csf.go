// Package csf implements the Compressed Sparse Fiber format of SPLATT
// (Smith et al., IPDPS'15), which the paper's §7 lists as the next format
// to add to the suite. CSF stores a sparse tensor as a forest: one tree
// level per mode (in a configurable mode order), with fiber pointers
// between levels. Mttkrp in the root mode parallelizes over root
// subtrees without atomics — the lock-free contrast to COO-Mttkrp's
// atomic updates.
package csf

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// CSF is a compressed-sparse-fiber tensor.
type CSF struct {
	// Dims holds the size of each mode (tensor-mode numbering).
	Dims []tensor.Index
	// ModeOrder maps tree level → tensor mode (level 0 is the root).
	ModeOrder []int
	// FIds[l] holds the mode index of every node at level l; FIds[N-1]
	// parallels Vals.
	FIds [][]tensor.Index
	// FPtr[l] holds, for each node at level l, the range of its children
	// at level l+1 (len = numNodes(l)+1); there are N-1 pointer arrays.
	FPtr [][]int64
	// Vals holds the non-zero values at the leaves.
	Vals []tensor.Value
}

// Order returns the number of modes.
func (c *CSF) Order() int { return len(c.Dims) }

// NNZ returns the number of stored non-zeros.
func (c *CSF) NNZ() int { return len(c.Vals) }

// NumNodes returns the node count at a level.
func (c *CSF) NumNodes(level int) int { return len(c.FIds[level]) }

// StorageBytes returns the CSF footprint: 64-bit fiber pointers, 32-bit
// node indices, 32-bit values.
func (c *CSF) StorageBytes() int64 {
	var b int64
	for _, p := range c.FPtr {
		b += 8 * int64(len(p))
	}
	for _, f := range c.FIds {
		b += 4 * int64(len(f))
	}
	return b + 4*int64(len(c.Vals))
}

// FromCOO builds a CSF tensor with the given level→mode order (defaults
// to natural order when nil). The input is not modified.
func FromCOO(t *tensor.COO, modeOrder []int) (*CSF, error) {
	order := t.Order()
	if modeOrder == nil {
		modeOrder = make([]int, order)
		for i := range modeOrder {
			modeOrder[i] = i
		}
	}
	if len(modeOrder) != order {
		return nil, fmt.Errorf("csf: mode order length %d, want %d", len(modeOrder), order)
	}
	seen := make([]bool, order)
	for _, m := range modeOrder {
		if m < 0 || m >= order || seen[m] {
			return nil, fmt.Errorf("csf: invalid mode order %v", modeOrder)
		}
		seen[m] = true
	}
	xs := t
	if !xs.IsSortedBy(modeOrder) {
		xs = t.Clone()
		xs.Sort(modeOrder)
	}
	m := xs.NNZ()
	c := &CSF{
		Dims:      append([]tensor.Index(nil), t.Dims...),
		ModeOrder: append([]int(nil), modeOrder...),
		FIds:      make([][]tensor.Index, order),
		FPtr:      make([][]int64, order-1),
		Vals:      append([]tensor.Value(nil), xs.Vals...),
	}
	// Leaf level: every non-zero is a node.
	leaf := order - 1
	c.FIds[leaf] = append([]tensor.Index(nil), xs.Inds[modeOrder[leaf]]...)

	// Build upper levels bottom-up: a node at level l is a maximal run of
	// non-zeros agreeing on modes modeOrder[0..l].
	for l := leaf - 1; l >= 0; l-- {
		var fids []tensor.Index
		var fptr []int64
		for x := 0; x < m; x++ {
			if x == 0 || !sameUpTo(xs, modeOrder, l, x-1, x) {
				fids = append(fids, xs.Inds[modeOrder[l]][x])
				fptr = append(fptr, int64(x))
			}
		}
		fptr = append(fptr, int64(m))
		// fptr currently indexes non-zeros; convert to child-node indexes
		// by mapping positions through the child level's own starts.
		if l == leaf-1 {
			c.FPtr[l] = fptr
		} else {
			childStarts := c.nodeStarts(xs, modeOrder, l+1)
			conv := make([]int64, len(fptr))
			for i, p := range fptr {
				conv[i] = int64(searchInt64(childStarts, p))
			}
			c.FPtr[l] = conv
		}
		c.FIds[l] = fids
	}
	return c, nil
}

// nodeStarts recomputes the first-non-zero offset of every node at a
// level (used to convert non-zero offsets into child node numbers).
func (c *CSF) nodeStarts(xs *tensor.COO, modeOrder []int, level int) []int64 {
	var starts []int64
	m := xs.NNZ()
	for x := 0; x < m; x++ {
		if x == 0 || !sameUpTo(xs, modeOrder, level, x-1, x) {
			starts = append(starts, int64(x))
		}
	}
	return starts
}

func sameUpTo(xs *tensor.COO, modeOrder []int, level, a, b int) bool {
	for l := 0; l <= level; l++ {
		n := modeOrder[l]
		if xs.Inds[n][a] != xs.Inds[n][b] {
			return false
		}
	}
	return true
}

func searchInt64(a []int64, v int64) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// ToCOO expands the CSF tensor back to coordinate format.
func (c *CSF) ToCOO() *tensor.COO {
	out := tensor.NewCOO(c.Dims, c.NNZ())
	idx := make([]tensor.Index, c.Order())
	c.walk(0, 0, c.NumNodes(0), idx, &walkState{out: out})
	return out
}

type walkState struct{ out *tensor.COO }

// walk traverses nodes [lo, hi) at the given level depth-first.
func (c *CSF) walk(level int, lo, hi int, idx []tensor.Index, st *walkState) {
	leaf := c.Order() - 1
	for node := lo; node < hi; node++ {
		idx[c.ModeOrder[level]] = c.FIds[level][node]
		if level == leaf {
			st.out.Append(idx, c.Vals[node])
			continue
		}
		c.walk(level+1, int(c.FPtr[level][node]), int(c.FPtr[level][node+1]), idx, st)
	}
}

// Validate checks structural invariants.
func (c *CSF) Validate() error {
	order := c.Order()
	if len(c.FIds) != order || len(c.FPtr) != order-1 {
		return fmt.Errorf("csf: level arrays malformed")
	}
	for l := 0; l < order-1; l++ {
		if len(c.FPtr[l]) != len(c.FIds[l])+1 {
			return fmt.Errorf("csf: level %d has %d pointers for %d nodes", l, len(c.FPtr[l]), len(c.FIds[l]))
		}
		if c.FPtr[l][0] != 0 || c.FPtr[l][len(c.FPtr[l])-1] != int64(len(c.FIds[l+1])) {
			return fmt.Errorf("csf: level %d pointers do not span children", l)
		}
		for i := 0; i+1 < len(c.FPtr[l]); i++ {
			if c.FPtr[l][i+1] <= c.FPtr[l][i] {
				return fmt.Errorf("csf: level %d node %d has no children", l, i)
			}
		}
	}
	if len(c.FIds[order-1]) != len(c.Vals) {
		return fmt.Errorf("csf: leaf count %d != value count %d", len(c.FIds[order-1]), len(c.Vals))
	}
	for l := 0; l < order; l++ {
		d := c.Dims[c.ModeOrder[l]]
		for _, i := range c.FIds[l] {
			if i >= d {
				return fmt.Errorf("csf: level %d index %d out of range", l, i)
			}
		}
	}
	return nil
}

// MttkrpRoot computes the Mttkrp in the CSF's root mode without atomics:
// root subtrees own disjoint output rows, so the parallel loop is
// race-free — the structural advantage over COO-Mttkrp.
func (c *CSF) MttkrpRoot(mats []*tensor.Matrix, opt parallel.Options) (*tensor.Matrix, error) {
	order := c.Order()
	if len(mats) != order {
		return nil, fmt.Errorf("csf: got %d factor matrices, want %d", len(mats), order)
	}
	rootMode := c.ModeOrder[0]
	r := 0
	for l, u := range mats {
		if l == rootMode {
			continue
		}
		if u == nil {
			return nil, fmt.Errorf("csf: factor matrix %d is nil", l)
		}
		if r == 0 {
			r = u.Cols
		}
		if u.Rows != int(c.Dims[l]) || u.Cols != r {
			return nil, fmt.Errorf("csf: factor %d is %dx%d, want %dx%d", l, u.Rows, u.Cols, c.Dims[l], r)
		}
	}
	out := tensor.NewMatrix(int(c.Dims[rootMode]), r)
	parallel.For(c.NumNodes(0), opt, func(lo, hi, _ int) {
		scratch := make([]tensor.Value, (c.Order()-1)*r)
		for root := lo; root < hi; root++ {
			row := out.Row(int(c.FIds[0][root]))
			c.accumulate(1, int(c.FPtr[0][root]), int(c.FPtr[0][root+1]), mats, scratch, r, row)
		}
	})
	return out, nil
}

// accumulate adds the subtree contribution Σ_child U_l(fid,:) ⊙ g(child)
// into dst; scratch provides one r-vector per tree level.
func (c *CSF) accumulate(level, lo, hi int, mats []*tensor.Matrix, scratch []tensor.Value, r int, dst []tensor.Value) {
	leaf := c.Order() - 1
	mode := c.ModeOrder[level]
	u := mats[mode]
	if level == leaf {
		for node := lo; node < hi; node++ {
			v := c.Vals[node]
			urow := u.Row(int(c.FIds[level][node]))
			for i := 0; i < r; i++ {
				dst[i] += v * urow[i]
			}
		}
		return
	}
	buf := scratch[(level-1)*r : level*r]
	for node := lo; node < hi; node++ {
		for i := range buf {
			buf[i] = 0
		}
		c.accumulate(level+1, int(c.FPtr[level][node]), int(c.FPtr[level][node+1]), mats, scratch, r, buf)
		urow := u.Row(int(c.FIds[level][node]))
		for i := 0; i < r; i++ {
			dst[i] += urow[i] * buf[i]
		}
	}
}

// TtvLeaf computes the tensor-times-vector product in the CSF's leaf
// mode: each level-(N-2) node reduces its leaves to one output non-zero.
// The output is returned in COO format.
func (c *CSF) TtvLeaf(v tensor.Vector, opt parallel.Options) (*tensor.COO, error) {
	order := c.Order()
	leafMode := c.ModeOrder[order-1]
	if len(v) != int(c.Dims[leafMode]) {
		return nil, fmt.Errorf("csf: vector length %d, want %d", len(v), c.Dims[leafMode])
	}
	outDims := make([]tensor.Index, 0, order-1)
	for n := 0; n < order; n++ {
		if n != leafMode {
			outDims = append(outDims, c.Dims[n])
		}
	}
	parents := c.NumNodes(order - 2)
	out := &tensor.COO{
		Dims: outDims,
		Inds: make([][]tensor.Index, order-1),
		Vals: make([]tensor.Value, parents),
	}
	for on := range out.Inds {
		out.Inds[on] = make([]tensor.Index, parents)
	}
	// Map every level < N-1 to its output mode slot.
	outSlot := make([]int, order) // tensor mode → output mode position
	pos := 0
	for n := 0; n < order; n++ {
		if n != leafMode {
			outSlot[n] = pos
			pos++
		}
	}
	// Fill indices by walking the upper levels once (sequential, cheap),
	// then reduce leaves in parallel.
	c.fillParentIndices(0, 0, c.NumNodes(0), make([]tensor.Index, order), outSlot, out)
	fptr := c.FPtr[order-2]
	leafIds := c.FIds[order-1]
	parallel.For(parents, opt, func(lo, hi, _ int) {
		for p := lo; p < hi; p++ {
			var acc tensor.Value
			for x := fptr[p]; x < fptr[p+1]; x++ {
				acc += c.Vals[x] * v[leafIds[x]]
			}
			out.Vals[p] = acc
		}
	})
	return out, nil
}

// fillParentIndices writes the coordinates of every level-(N-2) node into
// the output index arrays (one output non-zero per node, in node order).
func (c *CSF) fillParentIndices(level, lo, hi int, idx []tensor.Index, outSlot []int, out *tensor.COO) {
	parentLevel := c.Order() - 2
	for node := lo; node < hi; node++ {
		mode := c.ModeOrder[level]
		idx[mode] = c.FIds[level][node]
		if level == parentLevel {
			for l := 0; l <= parentLevel; l++ {
				m := c.ModeOrder[l]
				out.Inds[outSlot[m]][node] = idx[m]
			}
			continue
		}
		c.fillParentIndices(level+1, int(c.FPtr[level][node]), int(c.FPtr[level][node+1]), idx, outSlot, out)
	}
}

func (c *CSF) String() string {
	return fmt.Sprintf("CSF(order=%d dims=%v nnz=%d modeOrder=%v)", c.Order(), c.Dims, c.NNZ(), c.ModeOrder)
}
