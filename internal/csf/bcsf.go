package csf

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Balanced CSF (BCSF, Nisa et al. — cited as [25] in the paper's §7
// future-work list) fixes the load imbalance of subtree-parallel Mttkrp:
// power-law tensors concentrate most non-zeros under a few hub roots, so
// a thread per root idles the rest of the machine. BCSF splits overweight
// roots into bounded-size tasks; tasks of a shared root combine their
// partial rows with atomic adds.

// task is one balanced work unit: children [lo, hi) at level 1 under
// root. A root light enough to fit the budget yields exactly one task.
type task struct {
	root   int32
	lo, hi int64
}

// leafRange returns the leaf (non-zero) span under a node range at a
// level by composing the fiber pointers down to the leaves.
func (c *CSF) leafRange(level int, lo, hi int64) (int64, int64) {
	for l := level; l < c.Order()-1; l++ {
		lo = c.FPtr[l][lo]
		hi = c.FPtr[l][hi]
	}
	return lo, hi
}

// buildTasks splits each root's level-1 children greedily so no task
// exceeds maxLeaves non-zeros (single overweight children still form
// their own task — the granularity floor is one child subtree).
func (c *CSF) buildTasks(maxLeaves int64) []task {
	if maxLeaves < 1 {
		maxLeaves = 1
	}
	var tasks []task
	if c.Order() < 2 {
		return tasks
	}
	for root := 0; root < c.NumNodes(0); root++ {
		lo := c.FPtr[0][root]
		hi := c.FPtr[0][root+1]
		start := lo
		var acc int64
		for ch := lo; ch < hi; ch++ {
			cl, chh := c.leafRange(1, ch, ch+1)
			w := chh - cl
			if acc > 0 && acc+w > maxLeaves {
				tasks = append(tasks, task{int32(root), start, ch})
				start = ch
				acc = 0
			}
			acc += w
		}
		if start < hi {
			tasks = append(tasks, task{int32(root), start, hi})
		}
	}
	return tasks
}

// MttkrpRootBalanced computes the root-mode Mttkrp with BCSF-style
// balanced tasks: roots whose subtrees exceed maxLeaves non-zeros are
// split, and each task accumulates a private R-vector that is atomically
// merged into the shared output row. maxLeaves <= 0 selects a heuristic
// (total non-zeros / 8·workers).
func (c *CSF) MttkrpRootBalanced(mats []*tensor.Matrix, opt parallel.Options, maxLeaves int64) (*tensor.Matrix, error) {
	order := c.Order()
	if order < 2 {
		return nil, fmt.Errorf("csf: Mttkrp needs an order >= 2 tensor")
	}
	if len(mats) != order {
		return nil, fmt.Errorf("csf: got %d factor matrices, want %d", len(mats), order)
	}
	rootMode := c.ModeOrder[0]
	r := 0
	for l, u := range mats {
		if l == rootMode {
			continue
		}
		if u == nil {
			return nil, fmt.Errorf("csf: factor matrix %d is nil", l)
		}
		if r == 0 {
			r = u.Cols
		}
		if u.Rows != int(c.Dims[l]) || u.Cols != r {
			return nil, fmt.Errorf("csf: factor %d is %dx%d, want %dx%d", l, u.Rows, u.Cols, c.Dims[l], r)
		}
	}
	if maxLeaves <= 0 {
		workers := opt.Threads
		if workers <= 0 {
			workers = parallel.NumThreads()
		}
		maxLeaves = int64(c.NNZ())/(8*int64(workers)) + 1
	}
	tasks := c.buildTasks(maxLeaves)
	out := tensor.NewMatrix(int(c.Dims[rootMode]), r)

	parallel.For(len(tasks), opt, func(lo, hi, _ int) {
		scratch := make([]tensor.Value, (c.Order()-1)*r)
		local := make([]tensor.Value, r)
		for ti := lo; ti < hi; ti++ {
			t := tasks[ti]
			for i := range local {
				local[i] = 0
			}
			c.accumulate(1, int(t.lo), int(t.hi), mats, scratch, r, local)
			row := out.Row(int(c.FIds[0][t.root]))
			for i := 0; i < r; i++ {
				if local[i] != 0 {
					parallel.AtomicAddFloat32(&row[i], local[i])
				}
			}
		}
	})
	return out, nil
}

// TaskStats reports the balance the task decomposition achieved — the
// quantity BCSF improves over plain subtree parallelism.
type TaskStats struct {
	Roots     int
	Tasks     int
	MaxLeaves int64 // heaviest task
	MinLeaves int64 // lightest task
}

// ComputeTaskStats builds the task list for a budget and measures it.
func (c *CSF) ComputeTaskStats(maxLeaves int64) TaskStats {
	tasks := c.buildTasks(maxLeaves)
	st := TaskStats{Roots: c.NumNodes(0), Tasks: len(tasks)}
	for i, t := range tasks {
		lo, hi := c.leafRange(1, t.lo, t.hi)
		w := hi - lo
		if i == 0 || w > st.MaxLeaves {
			st.MaxLeaves = w
		}
		if i == 0 || w < st.MinLeaves {
			st.MinLeaves = w
		}
	}
	return st
}
