package csf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

func randTensor(seed int64, dims []tensor.Index, nnz int) *tensor.COO {
	return tensor.RandomCOO(dims, nnz, rand.New(rand.NewSource(seed)))
}

func TestFromCOORoundTrip(t *testing.T) {
	x := randTensor(1, []tensor.Index{20, 30, 25}, 600)
	c, err := FromCOO(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if c.NNZ() != x.NNZ() {
		t.Fatalf("nnz %d, want %d", c.NNZ(), x.NNZ())
	}
	if d := tensor.AbsDiff(x, c.ToCOO()); d != 0 {
		t.Fatalf("roundtrip diff %v", d)
	}
	if c.StorageBytes() <= 0 {
		t.Fatal("storage must be positive")
	}
}

func TestFromCOOModeOrders(t *testing.T) {
	x := randTensor(2, []tensor.Index{15, 25, 10, 8}, 400)
	orders := [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {1, 3, 0, 2}}
	for _, mo := range orders {
		c, err := FromCOO(x, mo)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("order %v: %v", mo, err)
		}
		if d := tensor.AbsDiff(x, c.ToCOO()); d != 0 {
			t.Fatalf("order %v: roundtrip diff %v", mo, d)
		}
	}
}

func TestFromCOOInvalidOrders(t *testing.T) {
	x := randTensor(3, []tensor.Index{4, 4}, 6)
	for _, mo := range [][]int{{0}, {0, 0}, {0, 5}, {1, -1}} {
		if _, err := FromCOO(x, mo); err == nil {
			t.Errorf("order %v: expected error", mo)
		}
	}
}

func TestCSFCompressesVsCOO(t *testing.T) {
	// A clustered tensor shares upper-level nodes, so CSF is smaller.
	x := randTensor(4, []tensor.Index{40, 40, 4000}, 20000)
	c, err := FromCOO(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.StorageBytes() >= x.StorageBytes() {
		t.Fatalf("CSF %d bytes >= COO %d bytes on clustered tensor", c.StorageBytes(), x.StorageBytes())
	}
}

func TestMttkrpRootMatchesCOO(t *testing.T) {
	x := randTensor(5, []tensor.Index{30, 35, 25}, 2000)
	r := 8
	rng := rand.New(rand.NewSource(6))
	mats := make([]*tensor.Matrix, 3)
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	for mode := 0; mode < 3; mode++ {
		// CSF with the target mode as root.
		mo := []int{mode}
		for n := 0; n < 3; n++ {
			if n != mode {
				mo = append(mo, n)
			}
		}
		c, err := FromCOO(x, mo)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.MttkrpRoot(mats, parallel.Options{Schedule: parallel.Dynamic})
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Mttkrp(x, mats, mode)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < got.Rows; i++ {
			for cix := 0; cix < r; cix++ {
				g, w := float64(got.At(i, cix)), float64(want.At(i, cix))
				if math.Abs(g-w) > 2e-4*math.Max(1, math.Abs(w)) {
					t.Fatalf("mode %d (%d,%d): CSF %v, COO %v", mode, i, cix, g, w)
				}
			}
		}
	}
}

func TestMttkrpRootOrder4(t *testing.T) {
	x := randTensor(7, []tensor.Index{12, 10, 14, 9}, 700)
	r := 4
	rng := rand.New(rand.NewSource(8))
	mats := make([]*tensor.Matrix, 4)
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	c, err := FromCOO(x, []int{2, 0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.MttkrpRoot(mats, parallel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Mttkrp(x, mats, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < got.Rows; i++ {
		for cix := 0; cix < r; cix++ {
			g, w := float64(got.At(i, cix)), float64(want.At(i, cix))
			if math.Abs(g-w) > 2e-4*math.Max(1, math.Abs(w)) {
				t.Fatalf("(%d,%d): CSF %v, COO %v", i, cix, g, w)
			}
		}
	}
}

func TestMttkrpRootErrors(t *testing.T) {
	x := randTensor(9, []tensor.Index{6, 6, 6}, 30)
	c, _ := FromCOO(x, nil)
	if _, err := c.MttkrpRoot([]*tensor.Matrix{nil}, parallel.Options{}); err == nil {
		t.Fatal("expected matrix-count error")
	}
	mats := []*tensor.Matrix{nil, tensor.NewMatrix(6, 4), tensor.NewMatrix(5, 4)}
	if _, err := c.MttkrpRoot(mats, parallel.Options{}); err == nil {
		t.Fatal("expected shape error")
	}
	mats2 := []*tensor.Matrix{nil, nil, tensor.NewMatrix(6, 4)}
	if _, err := c.MttkrpRoot(mats2, parallel.Options{}); err == nil {
		t.Fatal("expected nil-matrix error")
	}
}

func TestTtvLeafMatchesCOO(t *testing.T) {
	x := randTensor(10, []tensor.Index{25, 30, 40}, 1500)
	rng := rand.New(rand.NewSource(11))
	for mode := 0; mode < 3; mode++ {
		mo := []int{}
		for n := 0; n < 3; n++ {
			if n != mode {
				mo = append(mo, n)
			}
		}
		mo = append(mo, mode) // target mode last = leaf
		c, err := FromCOO(x, mo)
		if err != nil {
			t.Fatal(err)
		}
		v := tensor.RandomVector(int(x.Dims[mode]), rng)
		got, err := c.TtvLeaf(v, parallel.Options{Schedule: parallel.Static})
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Ttv(x, v, mode)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.AbsDiff(got, want); d > 1e-3 {
			t.Fatalf("mode %d: diff %v", mode, d)
		}
	}
}

func TestTtvLeafVectorLengthError(t *testing.T) {
	x := randTensor(12, []tensor.Index{5, 5, 5}, 20)
	c, _ := FromCOO(x, nil)
	if _, err := c.TtvLeaf(tensor.NewVector(3), parallel.Options{}); err == nil {
		t.Fatal("expected length error")
	}
}

func TestCSFRoundTripProperty(t *testing.T) {
	f := func(seed int64, orderRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		order := int(orderRaw)%3 + 2
		dims := make([]tensor.Index, order)
		for n := range dims {
			dims[n] = tensor.Index(rng.Intn(20) + 1)
		}
		x := tensor.RandomCOO(dims, rng.Intn(200)+1, rng)
		c, err := FromCOO(x, nil)
		if err != nil || c.Validate() != nil {
			return false
		}
		return tensor.AbsDiff(x, c.ToCOO()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
