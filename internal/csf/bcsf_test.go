package csf

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

func hubTensor(seed int64) *tensor.COO {
	// Mode 0 is a heavy hub: most non-zeros share a few roots, the case
	// that starves subtree-parallel Mttkrp.
	rng := rand.New(rand.NewSource(seed))
	return tensor.RandomCOOSkewed([]tensor.Index{500, 200, 200}, 6000, rng)
}

func mttkrpMats(x *tensor.COO, r int, seed int64) []*tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	mats := make([]*tensor.Matrix, x.Order())
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	return mats
}

func matricesClose(t *testing.T, a, b *tensor.Matrix, label string) {
	t.Helper()
	if a.Rows != b.Rows || a.Cols != b.Cols {
		t.Fatalf("%s: shape mismatch", label)
	}
	for i := range a.Data {
		x, y := float64(a.Data[i]), float64(b.Data[i])
		if math.Abs(x-y) > 2e-3*math.Max(1, math.Max(math.Abs(x), math.Abs(y))) {
			t.Fatalf("%s: element %d differs: %v vs %v", label, i, x, y)
		}
	}
}

func TestMttkrpRootBalancedMatchesPlain(t *testing.T) {
	x := hubTensor(1)
	c, err := FromCOO(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	mats := mttkrpMats(x, 8, 2)
	want, err := c.MttkrpRoot(mats, parallel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int64{0, 1, 16, 100, 1 << 30} {
		got, err := c.MttkrpRootBalanced(mats, parallel.Options{Schedule: parallel.Dynamic}, budget)
		if err != nil {
			t.Fatal(err)
		}
		matricesClose(t, got, want, "balanced vs plain")
	}
}

func TestMttkrpRootBalancedMatchesCOOReference(t *testing.T) {
	x := hubTensor(3)
	c, err := FromCOO(x, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	mats := mttkrpMats(x, 4, 4)
	want, err := core.Mttkrp(x, mats, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.MttkrpRootBalanced(mats, parallel.Options{}, 50)
	if err != nil {
		t.Fatal(err)
	}
	matricesClose(t, got, want, "balanced vs COO reference")
}

func TestBalancedTasksBoundHubs(t *testing.T) {
	x := hubTensor(5)
	c, err := FromCOO(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	unbounded := c.ComputeTaskStats(1 << 30)
	if unbounded.Tasks != unbounded.Roots {
		t.Fatalf("unbounded budget should give one task per root: %d vs %d", unbounded.Tasks, unbounded.Roots)
	}
	bounded := c.ComputeTaskStats(64)
	if bounded.Tasks <= bounded.Roots {
		t.Fatalf("hub tensor with budget 64 should split roots: %d tasks for %d roots", bounded.Tasks, bounded.Roots)
	}
	// The heaviest task must be far below the heaviest root's subtree.
	if bounded.MaxLeaves >= unbounded.MaxLeaves {
		t.Fatalf("balancing did not reduce the heaviest task: %d vs %d", bounded.MaxLeaves, unbounded.MaxLeaves)
	}
	// Budget is respected except for single overweight children.
	if bounded.MaxLeaves > 10*64 {
		t.Fatalf("task weight %d wildly exceeds budget", bounded.MaxLeaves)
	}
}

func TestMttkrpRootBalancedErrors(t *testing.T) {
	x := hubTensor(6)
	c, _ := FromCOO(x, nil)
	if _, err := c.MttkrpRootBalanced([]*tensor.Matrix{nil}, parallel.Options{}, 0); err == nil {
		t.Fatal("expected matrix-count error")
	}
	mats := mttkrpMats(x, 4, 7)
	mats[1] = tensor.NewMatrix(3, 4)
	if _, err := c.MttkrpRootBalanced(mats, parallel.Options{}, 0); err == nil {
		t.Fatal("expected shape error")
	}
	mats[1] = nil
	if _, err := c.MttkrpRootBalanced(mats, parallel.Options{}, 0); err == nil {
		t.Fatal("expected nil-matrix error")
	}
}

func TestLeafRange(t *testing.T) {
	// Third-order: leaf range of the full root span must cover all nnz.
	x := hubTensor(8)
	c, err := FromCOO(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := c.leafRange(0, 0, int64(c.NumNodes(0)))
	if lo != 0 || hi != int64(c.NNZ()) {
		t.Fatalf("full leaf range [%d,%d), want [0,%d)", lo, hi, c.NNZ())
	}
	// Per-root ranges partition the leaves.
	var total int64
	for root := 0; root < c.NumNodes(0); root++ {
		l, h := c.leafRange(0, int64(root), int64(root+1))
		if h <= l {
			t.Fatal("empty root subtree")
		}
		total += h - l
	}
	if total != int64(c.NNZ()) {
		t.Fatalf("root subtrees cover %d leaves, want %d", total, c.NNZ())
	}
}

func TestBalancedOrder4(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.RandomCOOSkewed([]tensor.Index{300, 40, 40, 20}, 3000, rng)
	c, err := FromCOO(x, nil)
	if err != nil {
		t.Fatal(err)
	}
	mats := mttkrpMats(x, 4, 10)
	want, err := core.Mttkrp(x, mats, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.MttkrpRootBalanced(mats, parallel.Options{Schedule: parallel.Guided}, 32)
	if err != nil {
		t.Fatal(err)
	}
	matricesClose(t, got, want, "order-4 balanced")
}
