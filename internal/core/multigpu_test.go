package core

import (
	"math/rand"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/tensor"
)

func testDevices(n int) []*gpusim.Device {
	devs := make([]*gpusim.Device, n)
	for i := range devs {
		devs[i] = gpusim.NewDevice("multi", 4)
	}
	return devs
}

func TestTtvMultiGPUMatchesSingle(t *testing.T) {
	x := randTensor(200, []tensor.Index{40, 50, 30}, 3000)
	rng := rand.New(rand.NewSource(201))
	for _, nd := range []int{1, 2, 4, 7} {
		p, err := PrepareTtv(x, 1)
		if err != nil {
			t.Fatal(err)
		}
		v := tensor.RandomVector(50, rng)
		want, err := p.ExecuteSeq(v)
		if err != nil {
			t.Fatal(err)
		}
		wantVals := append([]tensor.Value(nil), want.Vals...)
		got, err := p.ExecuteMultiGPU(testDevices(nd), v)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantVals {
			if got.Vals[i] != wantVals[i] {
				t.Fatalf("%d devices: fiber %d differs", nd, i)
			}
		}
	}
}

func TestMttkrpMultiGPUMatchesReference(t *testing.T) {
	x := randTensor(202, []tensor.Index{30, 35, 25}, 2500)
	r := 8
	mats := randMats(203, x, r)
	want := refMttkrp(x, mats, 0, r)
	for _, nd := range []int{1, 3, 5} {
		p, err := PrepareMttkrp(x, 0, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.ExecuteMultiGPU(testDevices(nd), mats)
		if err != nil {
			t.Fatal(err)
		}
		compareMatrix(t, got, want, "multi-GPU Mttkrp")
	}
}

func TestMultiGPUMoreDevicesThanWork(t *testing.T) {
	// More devices than fibers/non-zeros: empty shards must be harmless.
	x := randTensor(204, []tensor.Index{6, 6, 6}, 5)
	p, err := PrepareTtv(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	v := tensor.NewVector(6)
	for i := range v {
		v[i] = 1
	}
	want, err := p.ExecuteSeq(v)
	if err != nil {
		t.Fatal(err)
	}
	wantVals := append([]tensor.Value(nil), want.Vals...)
	got, err := p.ExecuteMultiGPU(testDevices(16), v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantVals {
		if got.Vals[i] != wantVals[i] {
			t.Fatal("oversharded Ttv differs")
		}
	}

	mk, err := PrepareMttkrp(x, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	mats := randMats(205, x, 2)
	g, err := mk.ExecuteMultiGPU(testDevices(16), mats)
	if err != nil {
		t.Fatal(err)
	}
	compareMatrix(t, g, refMttkrp(x, mats, 0, 2), "oversharded Mttkrp")
}

func TestMultiGPUErrors(t *testing.T) {
	x := randTensor(206, []tensor.Index{5, 5, 5}, 20)
	p, _ := PrepareTtv(x, 0)
	if _, err := p.ExecuteMultiGPU(nil, tensor.NewVector(5)); err == nil {
		t.Fatal("expected no-devices error")
	}
	if _, err := p.ExecuteMultiGPU(testDevices(2), tensor.NewVector(3)); err == nil {
		t.Fatal("expected vector-length error")
	}
	mk, _ := PrepareMttkrp(x, 0, 4)
	if _, err := mk.ExecuteMultiGPU(nil, randMats(207, x, 4)); err == nil {
		t.Fatal("expected no-devices error")
	}
	if _, err := mk.ExecuteMultiGPU(testDevices(2), nil); err == nil {
		t.Fatal("expected matrices error")
	}
}
