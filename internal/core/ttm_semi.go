package core

import (
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TtmSemiPlan is the tensor-times-matrix kernel for a SEMI-SPARSE input
// (sCOO): the multiplication of an already partially dense tensor with a
// matrix along one of its remaining sparse modes. It is the kernel a
// Tucker TTM-chain needs after its first step (§7), where each Ttm output
// is semi-sparse; chaining through TtmSemi avoids re-expanding to COO.
type TtmSemiPlan struct {
	// X is the semi-sparse input.
	X *tensor.SemiCOO
	// Mode is the (sparse) product mode n.
	Mode int
	// R is the matrix column count.
	R int
	// Out is the preallocated semi-sparse output: X's dense modes plus
	// Mode (now of size R).
	Out *tensor.SemiCOO
	// LastStrategy records the reduction strategy the most recent
	// ExecuteOMP call resolved to (for harness reporting).
	LastStrategy parallel.Strategy

	// outFiberInputs groups the input fibers feeding each output fiber
	// (they differ only in their mode-n coordinate).
	outFiberInputs [][]int32
	// ofOf maps each input fiber to the output fiber it feeds (the
	// inverse of outFiberInputs, for the racy input-parallel strategies).
	ofOf []int32
	// kOf is each input fiber's mode-n coordinate.
	kOf []tensor.Index
	// baseOff maps an input dense offset to its output dense offset at
	// r = 0; strideR is the output stride of the new dense mode.
	baseOff []int32
	strideR int
}

// PrepareTtmSemi builds the plan: groups input fibers by their remaining
// sparse coordinates, allocates the output (with indices), and precomputes
// the dense-layout mapping.
func PrepareTtmSemi(x *tensor.SemiCOO, mode, r int) (*TtmSemiPlan, error) {
	if mode < 0 || mode >= x.Order() {
		return nil, fmt.Errorf("core: TtmSemi mode %d out of range for order-%d tensor", mode, x.Order())
	}
	if x.IsDenseMode(mode) {
		return nil, fmt.Errorf("core: TtmSemi mode %d is already dense", mode)
	}
	if r <= 0 {
		return nil, fmt.Errorf("core: TtmSemi needs R >= 1, got %d", r)
	}
	sparse := x.SparseModes()
	modeSlot := -1
	for si, n := range sparse {
		if n == mode {
			modeSlot = si
		}
	}
	if modeSlot < 0 {
		return nil, fmt.Errorf("core: TtmSemi internal: mode %d not found among sparse modes", mode)
	}

	outDims := append([]tensor.Index(nil), x.Dims...)
	outDims[mode] = tensor.Index(r)
	outDense := append(append([]int(nil), x.DenseModes...), mode)
	sort.Ints(outDense)

	p := &TtmSemiPlan{X: x, Mode: mode, R: r}
	p.Out = tensor.NewSemiCOO(outDims, outDense, 16)

	// Group input fibers by their sparse coordinates excluding mode.
	nf := x.NumFibers()
	p.kOf = make([]tensor.Index, nf)
	p.ofOf = make([]int32, nf)
	groups := make(map[string]int, nf)
	key := make([]byte, 4*(len(sparse)-1))
	outSparseIdx := make([]tensor.Index, len(sparse)-1)
	for f := 0; f < nf; f++ {
		p.kOf[f] = x.Inds[modeSlot][f]
		w := 0
		for si := range sparse {
			if si == modeSlot {
				continue
			}
			i := x.Inds[si][f]
			key[4*w], key[4*w+1], key[4*w+2], key[4*w+3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
			outSparseIdx[w] = i
			w++
		}
		of, ok := groups[string(key)]
		if !ok {
			of = p.Out.AppendFiber(outSparseIdx)
			groups[string(key)] = of
			p.outFiberInputs = append(p.outFiberInputs, nil)
		}
		p.outFiberInputs[of] = append(p.outFiberInputs[of], int32(f))
		p.ofOf[f] = int32(of)
	}

	// Dense-layout mapping: decompose each input dense offset over X's
	// dense modes and recompose over the output's dense modes with the
	// new mode at 0; record the new mode's stride.
	dsIn := x.DenseSize()
	p.baseOff = make([]int32, dsIn)
	inCoords := make([]tensor.Index, len(x.DenseModes))
	stride := 1
	for i := len(outDense) - 1; i >= 0; i-- {
		if outDense[i] == mode {
			p.strideR = stride
		}
		stride *= int(outDims[outDense[i]])
	}
	for d := 0; d < dsIn; d++ {
		// Unravel d over X's dense modes (row-major, ascending).
		off := d
		for i := len(x.DenseModes) - 1; i >= 0; i-- {
			dim := int(x.Dims[x.DenseModes[i]])
			inCoords[i] = tensor.Index(off % dim)
			off /= dim
		}
		// Ravel over the output dense modes with mode's coordinate 0.
		out := 0
		for _, n := range outDense {
			out *= int(outDims[n])
			if n == mode {
				continue // coordinate 0
			}
			for i, xn := range x.DenseModes {
				if xn == n {
					out += int(inCoords[i])
					break
				}
			}
		}
		p.baseOff[d] = int32(out)
	}
	return p, nil
}

// ExecuteSeq runs the value computation sequentially.
func (p *TtmSemiPlan) ExecuteSeq(u *tensor.Matrix) (*tensor.SemiCOO, error) {
	if err := p.checkMat(u); err != nil {
		return nil, err
	}
	p.executeOutFibers(0, len(p.outFiberInputs), u)
	return p.Out, nil
}

// ExecuteOMP runs the value computation with the strategy-selected
// decomposition: owner-computes over output fibers (input fibers sharing
// an output fiber handled by one worker, so no races), or balanced over
// input fibers with the shared output protected by atomics or pooled
// per-worker private copies.
func (p *TtmSemiPlan) ExecuteOMP(u *tensor.Matrix, opt parallel.Options) (*tensor.SemiCOO, error) {
	if err := p.checkMat(u); err != nil {
		return nil, err
	}
	nf := p.X.NumFibers()
	nOut := len(p.outFiberInputs)
	st, threads := planReduction(opt, nf, len(p.Out.Vals), len(p.X.Vals)*p.R, nOut)
	p.LastStrategy = st
	switch st {
	case parallel.Owner:
		if err := parallel.For(nOut, opt, func(lo, hi, _ int) {
			p.executeOutFibers(lo, hi, u)
		}); err != nil {
			return nil, err
		}
	case parallel.Privatized:
		if err := privatizedReduce(nf, threads, opt, p.Out.Vals, func(lo, hi int, priv []tensor.Value) {
			p.executeInFibers(lo, hi, u, priv, false)
		}); err != nil {
			return nil, err
		}
	default: // Atomic
		if err := zeroValues(p.Out.Vals, threads, opt.Ctx); err != nil {
			return nil, err
		}
		opt.Threads = threads
		atomicUpd := threads > 1
		if err := parallel.For(nf, opt, func(lo, hi, _ int) {
			p.executeInFibers(lo, hi, u, p.Out.Vals, atomicUpd)
		}); err != nil {
			return nil, err
		}
	}
	return p.Out, nil
}

// executeInFibers processes input fibers [lo, hi), scattering each
// fiber's R-expanded contribution into the output fiber it feeds (out is
// the shared output or a worker's private copy, which must arrive
// zeroed).
func (p *TtmSemiPlan) executeInFibers(lo, hi int, u *tensor.Matrix, out []tensor.Value, atomicUpd bool) {
	dsIn := p.X.DenseSize()
	dsOut := p.Out.DenseSize()
	r := p.R
	ud := u.Data
	for f := lo; f < hi; f++ {
		of := int(p.ofOf[f])
		dst := out[of*dsOut : (of+1)*dsOut]
		in := p.X.Vals[f*dsIn : (f+1)*dsIn]
		urow := ud[int(p.kOf[f])*r : int(p.kOf[f])*r+r]
		for d, v := range in {
			if v == 0 {
				continue
			}
			base := int(p.baseOff[d])
			if atomicUpd {
				for c := 0; c < r; c++ {
					parallel.AtomicAddFloat32(&dst[base+c*p.strideR], v*urow[c])
				}
			} else {
				for c := 0; c < r; c++ {
					dst[base+c*p.strideR] += v * urow[c]
				}
			}
		}
	}
}

func (p *TtmSemiPlan) executeOutFibers(lo, hi int, u *tensor.Matrix) {
	dsIn := p.X.DenseSize()
	r := p.R
	ud := u.Data
	for of := lo; of < hi; of++ {
		out := p.Out.FiberVals(of)
		for i := range out {
			out[i] = 0
		}
		for _, f := range p.outFiberInputs[of] {
			in := p.X.Vals[int(f)*dsIn : (int(f)+1)*dsIn]
			urow := ud[int(p.kOf[f])*r : int(p.kOf[f])*r+r]
			for d, v := range in {
				if v == 0 {
					continue
				}
				base := int(p.baseOff[d])
				for c := 0; c < r; c++ {
					out[base+c*p.strideR] += v * urow[c]
				}
			}
		}
	}
}

func (p *TtmSemiPlan) checkMat(u *tensor.Matrix) error {
	if u.Rows != int(p.X.Dims[p.Mode]) || u.Cols != p.R {
		return fmt.Errorf("core: TtmSemi matrix is %dx%d, want %dx%d", u.Rows, u.Cols, p.X.Dims[p.Mode], p.R)
	}
	return nil
}

// FlopCount returns the floating-point work of one execution: two flops
// per stored input value per output column.
func (p *TtmSemiPlan) FlopCount() int64 {
	return 2 * int64(len(p.X.Vals)) * int64(p.R)
}

// TtmSemi is the convenience one-shot form.
func TtmSemi(x *tensor.SemiCOO, u *tensor.Matrix, mode int) (*tensor.SemiCOO, error) {
	p, err := PrepareTtmSemi(x, mode, u.Cols)
	if err != nil {
		return nil, err
	}
	return p.ExecuteSeq(u)
}
