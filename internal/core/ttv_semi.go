package core

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TtvSemiPlan is the tensor-times-vector kernel for a semi-sparse (sCOO)
// input: contracting a sparse mode of an already partially dense tensor
// against a dense vector. Together with TtmSemi it lets mixed Ttv/Ttm
// chains (e.g. partial Tucker projections followed by vector
// contractions) stay in semi-sparse form.
type TtvSemiPlan struct {
	// X is the semi-sparse input.
	X *tensor.SemiCOO
	// Mode is the (sparse) product mode n.
	Mode int
	// Out is the preallocated semi-sparse output: X's dense modes with
	// mode n removed entirely.
	Out *tensor.SemiCOO

	// LastStrategy records the reduction strategy the most recent
	// ExecuteOMP call resolved to (for harness reporting).
	LastStrategy parallel.Strategy

	outFiberInputs [][]int32
	// ofOf maps each input fiber to the output fiber it feeds (the
	// inverse of outFiberInputs, for the racy input-parallel strategies).
	ofOf []int32
	kOf  []tensor.Index
}

// PrepareTtvSemi groups the input fibers by their remaining sparse
// coordinates and allocates the output.
func PrepareTtvSemi(x *tensor.SemiCOO, mode int) (*TtvSemiPlan, error) {
	if mode < 0 || mode >= x.Order() {
		return nil, fmt.Errorf("core: TtvSemi mode %d out of range for order-%d tensor", mode, x.Order())
	}
	if x.IsDenseMode(mode) {
		return nil, fmt.Errorf("core: TtvSemi mode %d is dense; contract sparse modes only", mode)
	}
	sparse := x.SparseModes()
	modeSlot := -1
	for si, n := range sparse {
		if n == mode {
			modeSlot = si
		}
	}
	if modeSlot < 0 {
		return nil, fmt.Errorf("core: TtvSemi internal: mode %d not sparse", mode)
	}

	// Output: drop mode n; dense modes keep their sizes, renumbered.
	outDims := make([]tensor.Index, 0, x.Order()-1)
	outDense := make([]int, 0, len(x.DenseModes))
	for n := 0; n < x.Order(); n++ {
		if n == mode {
			continue
		}
		newN := n
		if n > mode {
			newN = n - 1
		}
		outDims = append(outDims, x.Dims[n])
		if x.IsDenseMode(n) {
			outDense = append(outDense, newN)
		}
	}
	p := &TtvSemiPlan{X: x, Mode: mode}
	p.Out = tensor.NewSemiCOO(outDims, outDense, 16)

	nf := x.NumFibers()
	p.kOf = make([]tensor.Index, nf)
	p.ofOf = make([]int32, nf)
	groups := make(map[string]int, nf)
	key := make([]byte, 4*(len(sparse)-1))
	outSparseIdx := make([]tensor.Index, len(sparse)-1)
	for f := 0; f < nf; f++ {
		p.kOf[f] = x.Inds[modeSlot][f]
		w := 0
		for si := range sparse {
			if si == modeSlot {
				continue
			}
			i := x.Inds[si][f]
			key[4*w], key[4*w+1], key[4*w+2], key[4*w+3] = byte(i), byte(i>>8), byte(i>>16), byte(i>>24)
			outSparseIdx[w] = i
			w++
		}
		of, ok := groups[string(key)]
		if !ok {
			of = p.Out.AppendFiber(outSparseIdx)
			groups[string(key)] = of
			p.outFiberInputs = append(p.outFiberInputs, nil)
		}
		p.outFiberInputs[of] = append(p.outFiberInputs[of], int32(f))
		p.ofOf[f] = int32(of)
	}
	return p, nil
}

// ExecuteSeq runs the value computation sequentially.
func (p *TtvSemiPlan) ExecuteSeq(v tensor.Vector) (*tensor.SemiCOO, error) {
	if err := p.checkVec(v); err != nil {
		return nil, err
	}
	p.executeOutFibers(0, len(p.outFiberInputs), v)
	return p.Out, nil
}

// ExecuteOMP runs the value computation with the strategy-selected
// decomposition: owner-computes over output fibers (input fibers sharing
// an output fiber handled by one worker), or balanced over input fibers
// with the shared output protected by atomics or pooled per-worker
// private copies.
func (p *TtvSemiPlan) ExecuteOMP(v tensor.Vector, opt parallel.Options) (*tensor.SemiCOO, error) {
	if err := p.checkVec(v); err != nil {
		return nil, err
	}
	nf := p.X.NumFibers()
	nOut := len(p.outFiberInputs)
	st, threads := planReduction(opt, nf, len(p.Out.Vals), len(p.X.Vals), nOut)
	p.LastStrategy = st
	switch st {
	case parallel.Owner:
		if err := parallel.For(nOut, opt, func(lo, hi, _ int) {
			p.executeOutFibers(lo, hi, v)
		}); err != nil {
			return nil, err
		}
	case parallel.Privatized:
		if err := privatizedReduce(nf, threads, opt, p.Out.Vals, func(lo, hi int, priv []tensor.Value) {
			p.executeInFibers(lo, hi, v, priv, false)
		}); err != nil {
			return nil, err
		}
	default: // Atomic
		if err := zeroValues(p.Out.Vals, threads, opt.Ctx); err != nil {
			return nil, err
		}
		opt.Threads = threads
		atomicUpd := threads > 1
		if err := parallel.For(nf, opt, func(lo, hi, _ int) {
			p.executeInFibers(lo, hi, v, p.Out.Vals, atomicUpd)
		}); err != nil {
			return nil, err
		}
	}
	return p.Out, nil
}

// executeInFibers processes input fibers [lo, hi), scattering each
// fiber's contribution into the output fiber it feeds (out is the shared
// output or a worker's private copy, which must arrive zeroed).
func (p *TtvSemiPlan) executeInFibers(lo, hi int, v tensor.Vector, out []tensor.Value, atomicUpd bool) {
	ds := p.X.DenseSize() // output dense size equals input dense size
	for f := lo; f < hi; f++ {
		of := int(p.ofOf[f])
		dst := out[of*ds : (of+1)*ds]
		in := p.X.Vals[f*ds : (f+1)*ds]
		vv := v[p.kOf[f]]
		if atomicUpd {
			for d, x := range in {
				if x != 0 {
					parallel.AtomicAddFloat32(&dst[d], x*vv)
				}
			}
		} else {
			for d, x := range in {
				dst[d] += x * vv
			}
		}
	}
}

func (p *TtvSemiPlan) executeOutFibers(lo, hi int, v tensor.Vector) {
	ds := p.X.DenseSize() // output dense size equals input dense size
	for of := lo; of < hi; of++ {
		out := p.Out.FiberVals(of)
		for i := range out {
			out[i] = 0
		}
		for _, f := range p.outFiberInputs[of] {
			in := p.X.Vals[int(f)*ds : (int(f)+1)*ds]
			vv := v[p.kOf[f]]
			for d, x := range in {
				out[d] += x * vv
			}
		}
	}
}

func (p *TtvSemiPlan) checkVec(v tensor.Vector) error {
	if len(v) != int(p.X.Dims[p.Mode]) {
		return fmt.Errorf("core: TtvSemi vector length %d, want %d", len(v), p.X.Dims[p.Mode])
	}
	return nil
}

// FlopCount returns the floating-point work of one execution.
func (p *TtvSemiPlan) FlopCount() int64 { return 2 * int64(len(p.X.Vals)) }

// TtvSemi is the convenience one-shot form.
func TtvSemi(x *tensor.SemiCOO, v tensor.Vector, mode int) (*tensor.SemiCOO, error) {
	p, err := PrepareTtvSemi(x, mode)
	if err != nil {
		return nil, err
	}
	return p.ExecuteSeq(v)
}
