package core

import (
	"math/rand"
	"testing"

	"repro/internal/hicoo"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Edge cases: empty tensors, single non-zeros, order-2 tensors, extreme
// shapes, and plan-reuse semantics across every kernel.

func emptyTensor() *tensor.COO { return tensor.NewCOO([]tensor.Index{8, 8, 8}, 0) }

func singleton() *tensor.COO {
	x := tensor.NewCOO([]tensor.Index{8, 8, 8}, 1)
	x.AppendIdx3(3, 4, 5, 2.5)
	return x
}

func TestKernelsOnEmptyTensor(t *testing.T) {
	x := emptyTensor()
	y := emptyTensor()

	tp, err := PrepareTew(x, y, Add)
	if err != nil {
		t.Fatal(err)
	}
	if out := tp.ExecuteSeq(); out.NNZ() != 0 {
		t.Fatal("Tew on empty produced non-zeros")
	}
	tp.ExecuteOMP(parallel.Options{})
	tp.ExecuteGPU(testDevice())

	sp, err := PrepareTs(x, 2, Mul)
	if err != nil {
		t.Fatal(err)
	}
	sp.ExecuteSeq()
	sp.ExecuteGPU(testDevice())

	vp, err := PrepareTtv(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if vp.NumFibers() != 0 {
		t.Fatal("empty tensor has fibers")
	}
	v := tensor.NewVector(8)
	if _, err := vp.ExecuteSeq(v); err != nil {
		t.Fatal(err)
	}
	if _, err := vp.ExecuteGPU(testDevice(), v); err != nil {
		t.Fatal(err)
	}

	mp, err := PrepareTtm(x, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	u := tensor.NewMatrix(8, 4)
	if _, err := mp.ExecuteSeq(u); err != nil {
		t.Fatal(err)
	}
	if _, err := mp.ExecuteGPU(testDevice(), u); err != nil {
		t.Fatal(err)
	}

	kp, err := PrepareMttkrp(x, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	mats := []*tensor.Matrix{nil, tensor.NewMatrix(8, 4), tensor.NewMatrix(8, 4)}
	out, err := kp.ExecuteSeq(mats)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Data {
		if v != 0 {
			t.Fatal("empty Mttkrp produced non-zero output")
		}
	}
	if _, err := kp.ExecuteGPU(testDevice(), mats); err != nil {
		t.Fatal(err)
	}
}

func TestKernelsOnSingleton(t *testing.T) {
	x := singleton()
	v := tensor.NewVector(8)
	v[5] = 10
	y, err := Ttv(x, v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if y.NNZ() != 1 {
		t.Fatalf("singleton Ttv nnz %d", y.NNZ())
	}
	if got, _ := y.At(3, 4); got != 25 {
		t.Fatalf("singleton Ttv = %v, want 25", got)
	}

	h := hicoo.FromCOO(x, 3)
	if h.NumBlocks() != 1 || h.NNZ() != 1 {
		t.Fatal("singleton HiCOO malformed")
	}
	mats := randMats(1, x, 2)
	got, err := Mttkrp(x, mats, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := refMttkrp(x, mats, 0, 2)
	compareMatrix(t, got, want, "singleton Mttkrp")
}

func TestKernelsOrder2(t *testing.T) {
	// Order-2 tensors are sparse matrices; every kernel must handle them.
	rng := rand.New(rand.NewSource(80))
	x := tensor.RandomCOO([]tensor.Index{40, 30}, 300, rng)

	v := tensor.RandomVector(30, rng)
	y, err := Ttv(x, v, 1) // SpMV
	if err != nil {
		t.Fatal(err)
	}
	compareMaps(t, cooToF64Map(y), refTtv(x, v, 1), "order-2 Ttv")

	u := tensor.NewMatrix(30, 4)
	u.Randomize(rng)
	s, err := Ttm(x, u, 1) // SpMM
	if err != nil {
		t.Fatal(err)
	}
	compareMaps(t, semiCOOToF64Map(s), refTtm(x, u, 1), "order-2 Ttm")

	mats := randMats(81, x, 4)
	got, err := Mttkrp(x, mats, 0)
	if err != nil {
		t.Fatal(err)
	}
	compareMatrix(t, got, refMttkrp(x, mats, 0, 4), "order-2 Mttkrp")

	hp, err := PrepareTtvHiCOO(x, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := hp.ExecuteSeq(v)
	if err != nil {
		t.Fatal(err)
	}
	compareMaps(t, cooToF64Map(hy.ToCOO()), refTtv(x, v, 1), "order-2 HiCOO Ttv")
}

func TestPlanReuseAcrossExecutes(t *testing.T) {
	// A plan must be reusable: repeated executions with different operands
	// produce independent correct results (the 5-run averaging pattern).
	x := randTensor(82, []tensor.Index{25, 25, 25}, 800)
	p, err := PrepareTtv(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 3; trial++ {
		v := tensor.RandomVector(25, rng)
		got, err := p.ExecuteOMP(v, parallel.Options{Schedule: parallel.Dynamic})
		if err != nil {
			t.Fatal(err)
		}
		compareMaps(t, cooToF64Map(got), refTtv(p.X, v, 0), "plan reuse")
	}
}

func TestTewAllOpsDifferentPatternsGPUAndOMPAgree(t *testing.T) {
	x := randTensor(84, []tensor.Index{15, 15, 15}, 120)
	y := randTensor(85, []tensor.Index{15, 15, 15}, 130)
	for _, op := range []Op{Add, Sub, Mul, Div} {
		p, err := PrepareTew(x, y, op)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]tensor.Value(nil), p.ExecuteSeq().Vals...)
		p.ExecuteOMP(parallel.Options{Schedule: parallel.Guided})
		for i := range want {
			if p.Out.Vals[i] != want[i] {
				t.Fatalf("%v: OMP differs at %d", op, i)
			}
		}
		p.ExecuteGPU(testDevice())
		for i := range want {
			if p.Out.Vals[i] != want[i] {
				t.Fatalf("%v: GPU differs at %d", op, i)
			}
		}
	}
}

func TestTtvWithSizeOneProductMode(t *testing.T) {
	// Mode of size 1: every fiber has exactly one entry.
	x := tensor.NewCOO([]tensor.Index{5, 5, 1}, 3)
	x.AppendIdx3(0, 1, 0, 2)
	x.AppendIdx3(2, 3, 0, 4)
	x.AppendIdx3(4, 4, 0, 6)
	v := tensor.Vector{3}
	y, err := Ttv(x, v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if y.NNZ() != 3 {
		t.Fatalf("nnz %d", y.NNZ())
	}
	if got, _ := y.At(2, 3); got != 12 {
		t.Fatalf("got %v, want 12", got)
	}
}

func TestMttkrpRIsOne(t *testing.T) {
	x := randTensor(86, []tensor.Index{10, 10, 10}, 100)
	mats := randMats(87, x, 1)
	got, err := Mttkrp(x, mats, 2)
	if err != nil {
		t.Fatal(err)
	}
	compareMatrix(t, got, refMttkrp(x, mats, 2, 1), "R=1 Mttkrp")
}

func TestHiCOOKernelsSingleBlock(t *testing.T) {
	// All non-zeros in one block exercises the degenerate parallel case.
	x := randTensor(88, []tensor.Index{16, 16, 16}, 200)
	h := hicoo.FromCOO(x, 8) // B=256 >= dims: single block
	if h.NumBlocks() != 1 {
		t.Fatalf("expected 1 block, got %d", h.NumBlocks())
	}
	mats := randMats(89, x, 4)
	hp, err := PrepareMttkrpHiCOO(h, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := hp.ExecuteOMP(mats, parallel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	compareMatrix(t, got, refMttkrp(x, mats, 0, 4), "single-block HiCOO Mttkrp")
	got, err = hp.ExecuteGPU(testDevice(), mats)
	if err != nil {
		t.Fatal(err)
	}
	compareMatrix(t, got, refMttkrp(x, mats, 0, 4), "single-block HiCOO Mttkrp GPU")
}

func TestLargeRExceedsBlockThreads(t *testing.T) {
	// R larger than the 256-thread block: ny clamps to 1 and the GPU
	// geometry still covers all columns.
	x := randTensor(90, []tensor.Index{12, 12, 12}, 150)
	r := 300
	mats := randMats(91, x, r)
	p, err := PrepareMttkrp(x, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.ExecuteGPU(testDevice(), mats)
	if err != nil {
		t.Fatal(err)
	}
	compareMatrix(t, got, refMttkrp(x, mats, 0, r), "large-R GPU Mttkrp")
}
