// Package core implements the five sparse tensor kernels of the benchmark
// suite — Tew (element-wise), Ts (tensor-scalar), Ttv (tensor-times-
// vector), Ttm (tensor-times-matrix), and Mttkrp (matricized tensor times
// Khatri-Rao product) — in COO and HiCOO formats, each with a sequential
// reference, an OpenMP-style multicore implementation, and a GPU
// implementation running on the gpusim substrate.
//
// Following the paper (§3), every kernel except Mttkrp is split into a
// preprocessing stage (sorting, fiber detection, output allocation and
// index setup — captured in a *Plan type) and a value-computation stage
// (the Execute* methods), which is the part the benchmarks time. Plans
// are reusable: repeated Execute calls recompute the output values using
// the same preallocated output.
package core

import "fmt"

// Op selects the element-wise operation of the Tew and Ts kernels.
type Op int

const (
	// Add is element-wise/scalar addition.
	Add Op = iota
	// Sub is element-wise subtraction.
	Sub
	// Mul is element-wise/scalar multiplication (the Hadamard product for Tew).
	Mul
	// Div is element-wise division.
	Div
)

func (o Op) String() string {
	switch o {
	case Add:
		return "add"
	case Sub:
		return "sub"
	case Mul:
		return "mul"
	case Div:
		return "div"
	}
	return "unknown"
}

// Apply evaluates the scalar operation.
func (o Op) Apply(a, b float32) float32 {
	switch o {
	case Add:
		return a + b
	case Sub:
		return a - b
	case Mul:
		return a * b
	case Div:
		return a / b
	}
	panic(fmt.Sprintf("core: unknown op %d", int(o)))
}

// DefaultR is the factor-matrix column count used throughout the paper's
// experiments ("we use 16 as the column size for matrices in Ttm and
// Mttkrp, to reflect the low-rank feature in popular tensor methods").
const DefaultR = 16
