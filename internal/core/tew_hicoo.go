package core

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/hicoo"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TewHiCOOPlan is the HiCOO element-wise kernel (§3.4.1): the value
// computation is identical to the COO kernel — only the preprocessing
// differs, allocating and index-setting the output in HiCOO format. The
// operands must share their non-zero pattern block-for-block (the case
// the paper analyzes); differing patterns are supported via the COO path.
type TewHiCOOPlan struct {
	// X and Y are the operands.
	X, Y *hicoo.HiCOO
	// Op is the element-wise operation.
	Op Op
	// Out is the preallocated output; its block structure aliases X's
	// (read-only to the kernel) with a fresh value array.
	Out *hicoo.HiCOO
}

// PrepareTewHiCOO validates that the operands are structurally identical
// HiCOO tensors and preallocates the output.
func PrepareTewHiCOO(x, y *hicoo.HiCOO, op Op) (*TewHiCOOPlan, error) {
	if err := sameHiCOOStructure(x, y); err != nil {
		return nil, err
	}
	out := &hicoo.HiCOO{
		Dims:      append([]tensor.Index(nil), x.Dims...),
		BlockBits: x.BlockBits,
		BPtr:      x.BPtr,
		BInds:     x.BInds,
		EInds:     x.EInds,
		Vals:      make([]tensor.Value, x.NNZ()),
	}
	return &TewHiCOOPlan{X: x, Y: y, Op: op, Out: out}, nil
}

// sameHiCOOStructure checks full structural equality of block and element
// indices (an O(M) preprocessing-stage check).
func sameHiCOOStructure(x, y *hicoo.HiCOO) error {
	if len(x.Dims) != len(y.Dims) || x.NNZ() != y.NNZ() || x.NumBlocks() != y.NumBlocks() || x.BlockBits != y.BlockBits {
		return fmt.Errorf("core: HiCOO Tew requires identically structured operands (use the COO path for differing patterns)")
	}
	for n := range x.Dims {
		if x.Dims[n] != y.Dims[n] {
			return tensor.ErrShapeMismatch
		}
	}
	for b := range x.BPtr {
		if x.BPtr[b] != y.BPtr[b] {
			return fmt.Errorf("core: HiCOO Tew operands have different block partitions")
		}
	}
	for n := range x.BInds {
		for b := range x.BInds[n] {
			if x.BInds[n][b] != y.BInds[n][b] {
				return fmt.Errorf("core: HiCOO Tew operands have different block indices")
			}
		}
		for e := range x.EInds[n] {
			if x.EInds[n][e] != y.EInds[n][e] {
				return fmt.Errorf("core: HiCOO Tew operands have different element indices")
			}
		}
	}
	return nil
}

// ExecuteSeq runs the value computation sequentially.
func (p *TewHiCOOPlan) ExecuteSeq() *hicoo.HiCOO {
	tewValues(p.X.Vals, p.Y.Vals, p.Out.Vals, p.Op, 0, p.X.NNZ())
	return p.Out
}

// ExecuteOMP runs the value computation with the OpenMP-style runtime.
func (p *TewHiCOOPlan) ExecuteOMP(opt parallel.Options) *hicoo.HiCOO {
	parallel.For(p.X.NNZ(), opt, func(lo, hi, _ int) {
		tewValues(p.X.Vals, p.Y.Vals, p.Out.Vals, p.Op, lo, hi)
	})
	return p.Out
}

// ExecuteGPU runs HiCOO-Tew-GPU, which the paper notes shares its
// execution code with the COO version: one thread per non-zero.
func (p *TewHiCOOPlan) ExecuteGPU(dev *gpusim.Device) *hicoo.HiCOO {
	m := p.X.NNZ()
	if m == 0 {
		return p.Out
	}
	block := gpusim.Dim1(gpusim.DefaultBlockThreads)
	grid := gpusim.Grid1DFor(m, block.X)
	xv, yv, zv := p.X.Vals, p.Y.Vals, p.Out.Vals
	op := p.Op
	dev.Launch(grid, block, func(ctx gpusim.Ctx) {
		if i := ctx.GlobalX(); i < m {
			zv[i] = op.Apply(xv[i], yv[i])
		}
	})
	return p.Out
}

// FlopCount returns the floating-point work of one execution (M flops).
func (p *TewHiCOOPlan) FlopCount() int64 { return int64(p.X.NNZ()) }

func tewValues(xv, yv, zv []tensor.Value, op Op, lo, hi int) {
	switch op {
	case Add:
		for i := lo; i < hi; i++ {
			zv[i] = xv[i] + yv[i]
		}
	case Sub:
		for i := lo; i < hi; i++ {
			zv[i] = xv[i] - yv[i]
		}
	case Mul:
		for i := lo; i < hi; i++ {
			zv[i] = xv[i] * yv[i]
		}
	case Div:
		for i := lo; i < hi; i++ {
			zv[i] = xv[i] / yv[i]
		}
	default:
		panic(fmt.Sprintf("core: unknown op %v", op))
	}
}

// TsHiCOOPlan is the HiCOO tensor-scalar kernel; like Tew, its value
// computation matches the COO version with HiCOO output preprocessing.
type TsHiCOOPlan struct {
	// X is the input tensor.
	X *hicoo.HiCOO
	// S is the (already normalized) scalar operand.
	S tensor.Value
	// Op is Add or Mul after normalization.
	Op Op
	// Out aliases X's block structure with a fresh value array.
	Out *hicoo.HiCOO
}

// PrepareTsHiCOO normalizes the operation (Sub→Add, Div→Mul) and
// preallocates the output.
func PrepareTsHiCOO(x *hicoo.HiCOO, s tensor.Value, op Op) (*TsHiCOOPlan, error) {
	switch op {
	case Add, Mul:
	case Sub:
		op, s = Add, -s
	case Div:
		if s == 0 {
			return nil, fmt.Errorf("core: tensor-scalar division by zero")
		}
		op, s = Mul, 1/s
	default:
		return nil, fmt.Errorf("core: unknown op %v", op)
	}
	out := &hicoo.HiCOO{
		Dims:      append([]tensor.Index(nil), x.Dims...),
		BlockBits: x.BlockBits,
		BPtr:      x.BPtr,
		BInds:     x.BInds,
		EInds:     x.EInds,
		Vals:      make([]tensor.Value, x.NNZ()),
	}
	return &TsHiCOOPlan{X: x, S: s, Op: op, Out: out}, nil
}

// ExecuteSeq runs the value computation sequentially.
func (p *TsHiCOOPlan) ExecuteSeq() *hicoo.HiCOO {
	p.executeRange(0, p.X.NNZ())
	return p.Out
}

// ExecuteOMP runs the value computation with the OpenMP-style runtime.
func (p *TsHiCOOPlan) ExecuteOMP(opt parallel.Options) *hicoo.HiCOO {
	parallel.For(p.X.NNZ(), opt, func(lo, hi, _ int) {
		p.executeRange(lo, hi)
	})
	return p.Out
}

// ExecuteGPU runs HiCOO-Ts-GPU: one thread per non-zero.
func (p *TsHiCOOPlan) ExecuteGPU(dev *gpusim.Device) *hicoo.HiCOO {
	m := p.X.NNZ()
	if m == 0 {
		return p.Out
	}
	block := gpusim.Dim1(gpusim.DefaultBlockThreads)
	grid := gpusim.Grid1DFor(m, block.X)
	xv, zv, s := p.X.Vals, p.Out.Vals, p.S
	if p.Op == Add {
		dev.Launch(grid, block, func(ctx gpusim.Ctx) {
			if i := ctx.GlobalX(); i < m {
				zv[i] = xv[i] + s
			}
		})
	} else {
		dev.Launch(grid, block, func(ctx gpusim.Ctx) {
			if i := ctx.GlobalX(); i < m {
				zv[i] = xv[i] * s
			}
		})
	}
	return p.Out
}

func (p *TsHiCOOPlan) executeRange(lo, hi int) {
	xv, zv, s := p.X.Vals, p.Out.Vals, p.S
	if p.Op == Add {
		for i := lo; i < hi; i++ {
			zv[i] = xv[i] + s
		}
		return
	}
	for i := lo; i < hi; i++ {
		zv[i] = xv[i] * s
	}
}

// FlopCount returns the floating-point work of one execution (M flops).
func (p *TsHiCOOPlan) FlopCount() int64 { return int64(p.X.NNZ()) }
