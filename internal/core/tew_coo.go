package core

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TewPlan is the prepared state of a COO element-wise kernel (§2.1, §3.2):
// operands validated, output non-zero pattern predicted, and output space
// with indices preallocated, so Execute* performs only the value
// computation the paper times.
type TewPlan struct {
	// X and Y are the operands (possibly re-sorted clones when a general
	// pattern merge was required).
	X, Y *tensor.COO
	// Op is the element-wise operation.
	Op Op
	// SamePattern records whether the operands share their non-zero
	// pattern entry-for-entry, the fast path the paper analyzes.
	SamePattern bool
	// Out is the preallocated output; its index arrays are final and its
	// values are recomputed by each Execute call.
	Out *tensor.COO
	// xi and yi map each output entry to its source position in X and Y
	// for the general (different-pattern) case; -1 means the operand has
	// no entry at that coordinate. Both are nil on the same-pattern path.
	xi, yi []int32
}

// PrepareTew validates the operands and builds the output pattern.
// Same-pattern inputs take the fast path with the output indices aliased
// to X's (they are read-only to the kernels). Different patterns trigger
// the general sorted merge: union of coordinates for Add/Sub, intersection
// for Mul/Div (absent entries are zero, and zero products/dividends are
// not stored).
func PrepareTew(x, y *tensor.COO, op Op) (*TewPlan, error) {
	if !tensor.SameShape(x, y) {
		return nil, tensor.ErrShapeMismatch
	}
	p := &TewPlan{X: x, Y: y, Op: op}
	if samePattern(x, y) {
		p.SamePattern = true
		p.Out = &tensor.COO{
			Dims: append([]tensor.Index(nil), x.Dims...),
			Inds: x.Inds,
			Vals: make([]tensor.Value, x.NNZ()),
		}
		return p, nil
	}
	// General case: sorted coordinate merge.
	xs, ys := x, y
	if !xs.IsSortedBy(naturalPerm(x.Order())) {
		xs = x.Clone()
		xs.SortNatural()
	}
	if !ys.IsSortedBy(naturalPerm(y.Order())) {
		ys = y.Clone()
		ys.SortNatural()
	}
	p.X, p.Y = xs, ys
	union := op == Add || op == Sub
	n := x.Order()
	out := tensor.NewCOO(x.Dims, max(xs.NNZ(), ys.NNZ()))
	idx := make([]tensor.Index, n)
	a, b := 0, 0
	for a < xs.NNZ() || b < ys.NNZ() {
		c := compareAt(xs, a, ys, b)
		switch {
		case c == 0:
			xs.Entry(a, idx)
			out.Append(idx, 0)
			p.xi = append(p.xi, int32(a))
			p.yi = append(p.yi, int32(b))
			a++
			b++
		case c < 0:
			if union {
				xs.Entry(a, idx)
				out.Append(idx, 0)
				p.xi = append(p.xi, int32(a))
				p.yi = append(p.yi, -1)
			}
			a++
		default:
			if union {
				ys.Entry(b, idx)
				out.Append(idx, 0)
				p.xi = append(p.xi, -1)
				p.yi = append(p.yi, int32(b))
			}
			b++
		}
	}
	p.Out = out
	return p, nil
}

// compareAt compares entry a of xs against entry b of ys in natural
// coordinate order, treating an exhausted operand as +infinity.
func compareAt(xs *tensor.COO, a int, ys *tensor.COO, b int) int {
	switch {
	case a >= xs.NNZ() && b >= ys.NNZ():
		return 0
	case a >= xs.NNZ():
		return 1
	case b >= ys.NNZ():
		return -1
	}
	for n := range xs.Inds {
		ia, ib := xs.Inds[n][a], ys.Inds[n][b]
		if ia != ib {
			if ia < ib {
				return -1
			}
			return 1
		}
	}
	return 0
}

func samePattern(x, y *tensor.COO) bool {
	if x.NNZ() != y.NNZ() {
		return false
	}
	for n := range x.Inds {
		xi, yi := x.Inds[n], y.Inds[n]
		for m := range xi {
			if xi[m] != yi[m] {
				return false
			}
		}
	}
	return true
}

func naturalPerm(order int) []int {
	p := make([]int, order)
	for i := range p {
		p[i] = i
	}
	return p
}

// ExecuteSeq runs the value computation sequentially and returns the
// (plan-owned) output tensor.
func (p *TewPlan) ExecuteSeq() *tensor.COO {
	p.executeRange(0, p.Out.NNZ())
	return p.Out
}

// ExecuteOMP runs the value computation with the OpenMP-style runtime.
func (p *TewPlan) ExecuteOMP(opt parallel.Options) *tensor.COO {
	parallel.For(p.Out.NNZ(), opt, func(lo, hi, _ int) {
		p.executeRange(lo, hi)
	})
	return p.Out
}

// ExecuteGPU runs the COO-Tew-GPU kernel: a 1-D grid of 1-D thread blocks,
// one thread per non-zero (§3.2.2).
func (p *TewPlan) ExecuteGPU(dev *gpusim.Device) *tensor.COO {
	m := p.Out.NNZ()
	if m == 0 {
		return p.Out
	}
	block := gpusim.Dim1(gpusim.DefaultBlockThreads)
	grid := gpusim.Grid1DFor(m, block.X)
	xv, yv, zv := p.X.Vals, p.Y.Vals, p.Out.Vals
	op := p.Op
	if p.SamePattern {
		dev.Launch(grid, block, func(ctx gpusim.Ctx) {
			i := ctx.GlobalX()
			if i < m {
				zv[i] = op.Apply(xv[i], yv[i])
			}
		})
		return p.Out
	}
	xi, yi := p.xi, p.yi
	dev.Launch(grid, block, func(ctx gpusim.Ctx) {
		i := ctx.GlobalX()
		if i >= m {
			return
		}
		var a, b tensor.Value
		if s := xi[i]; s >= 0 {
			a = xv[s]
		}
		if s := yi[i]; s >= 0 {
			b = yv[s]
		}
		zv[i] = op.Apply(a, b)
	})
	return p.Out
}

func (p *TewPlan) executeRange(lo, hi int) {
	xv, yv, zv := p.X.Vals, p.Y.Vals, p.Out.Vals
	op := p.Op
	if p.SamePattern {
		switch op {
		case Add:
			for i := lo; i < hi; i++ {
				zv[i] = xv[i] + yv[i]
			}
		case Sub:
			for i := lo; i < hi; i++ {
				zv[i] = xv[i] - yv[i]
			}
		case Mul:
			for i := lo; i < hi; i++ {
				zv[i] = xv[i] * yv[i]
			}
		case Div:
			for i := lo; i < hi; i++ {
				zv[i] = xv[i] / yv[i]
			}
		default:
			panic(fmt.Sprintf("core: unknown op %v", op))
		}
		return
	}
	for i := lo; i < hi; i++ {
		var a, b tensor.Value
		if s := p.xi[i]; s >= 0 {
			a = xv[s]
		}
		if s := p.yi[i]; s >= 0 {
			b = yv[s]
		}
		zv[i] = op.Apply(a, b)
	}
}

// FlopCount returns the floating-point work of one execution (Table 1:
// M flops for Tew).
func (p *TewPlan) FlopCount() int64 { return int64(p.Out.NNZ()) }

// Tew is the convenience one-shot form: prepare and execute sequentially.
func Tew(x, y *tensor.COO, op Op) (*tensor.COO, error) {
	p, err := PrepareTew(x, y, op)
	if err != nil {
		return nil, err
	}
	return p.ExecuteSeq(), nil
}
