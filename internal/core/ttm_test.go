package core

import (
	"math/rand"
	"testing"

	"repro/internal/hicoo"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

func TestTtmHandcrafted(t *testing.T) {
	// X(0,0,1)=2, X(0,0,3)=3; U is 4x2 with U(k,r) = k*10 + r.
	x := tensor.NewCOO([]tensor.Index{2, 3, 4}, 2)
	x.AppendIdx3(0, 0, 1, 2)
	x.AppendIdx3(0, 0, 3, 3)
	u := tensor.NewMatrix(4, 2)
	for k := 0; k < 4; k++ {
		for r := 0; r < 2; r++ {
			u.Set(k, r, tensor.Value(k*10+r))
		}
	}
	y, err := Ttm(x, u, 2)
	if err != nil {
		t.Fatal(err)
	}
	if y.Order() != 3 || y.Dims[2] != 2 || !y.IsDenseMode(2) {
		t.Fatalf("output shape %v dense=%v", y.Dims, y.DenseModes)
	}
	if y.NumFibers() != 1 {
		t.Fatalf("fibers = %d, want 1", y.NumFibers())
	}
	row := y.FiberVals(0)
	// r=0: 2*10 + 3*30 = 110; r=1: 2*11 + 3*31 = 115.
	if row[0] != 110 || row[1] != 115 {
		t.Fatalf("row = %v, want [110 115]", row)
	}
}

func TestTtmAgainstReferenceAllModes(t *testing.T) {
	for _, dims := range [][]tensor.Index{
		{20, 25, 30},
		{10, 12, 8, 9},
	} {
		x := randTensor(50, dims, 600)
		rng := rand.New(rand.NewSource(51))
		r := 8
		for mode := 0; mode < len(dims); mode++ {
			u := tensor.NewMatrix(int(dims[mode]), r)
			u.Randomize(rng)
			y, err := Ttm(x, u, mode)
			if err != nil {
				t.Fatal(err)
			}
			if err := y.Validate(); err != nil {
				t.Fatalf("mode %d output invalid: %v", mode, err)
			}
			compareMaps(t, semiCOOToF64Map(y), refTtm(x, u, mode), "Ttm")
		}
	}
}

func TestTtmParallelAndGPUAgree(t *testing.T) {
	x := randTensor(52, []tensor.Index{40, 50, 45}, 4000)
	rng := rand.New(rand.NewSource(53))
	r := DefaultR
	for mode := 0; mode < 3; mode++ {
		p, err := PrepareTtm(x, mode, r)
		if err != nil {
			t.Fatal(err)
		}
		u := tensor.NewMatrix(int(x.Dims[mode]), r)
		u.Randomize(rng)
		seq, err := p.ExecuteSeq(u)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]tensor.Value(nil), seq.Vals...)
		if _, err := p.ExecuteOMP(u, parallel.Options{Schedule: parallel.Dynamic}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if p.Out.Vals[i] != want[i] {
				t.Fatalf("mode %d OMP value %d differs", mode, i)
			}
		}
		if _, err := p.ExecuteGPU(testDevice(), u); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !closeEnough(float64(p.Out.Vals[i]), float64(want[i])) {
				t.Fatalf("mode %d GPU value %d = %v, want %v", mode, i, p.Out.Vals[i], want[i])
			}
		}
	}
}

func TestTtmHiCOOMatchesCOO(t *testing.T) {
	x := randTensor(54, []tensor.Index{30, 40, 35}, 2000)
	rng := rand.New(rand.NewSource(55))
	r := 8
	for mode := 0; mode < 3; mode++ {
		u := tensor.NewMatrix(int(x.Dims[mode]), r)
		u.Randomize(rng)
		hp, err := PrepareTtmHiCOO(x, mode, r, hicoo.DefaultBlockBits)
		if err != nil {
			t.Fatal(err)
		}
		hy, err := hp.ExecuteSeq(u)
		if err != nil {
			t.Fatal(err)
		}
		if err := hy.Validate(); err != nil {
			t.Fatalf("mode %d sHiCOO invalid: %v", mode, err)
		}
		compareMaps(t, semiCOOToF64Map(hy.ToSemiCOO()), refTtm(x, u, mode), "HiCOO-Ttm")

		want := append([]tensor.Value(nil), hy.Vals...)
		if _, err := hp.ExecuteOMP(u, parallel.Options{Schedule: parallel.Static}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if hp.Out.Vals[i] != want[i] {
				t.Fatalf("mode %d HiCOO OMP value %d differs", mode, i)
			}
		}
		if _, err := hp.ExecuteGPU(testDevice(), u); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !closeEnough(float64(hp.Out.Vals[i]), float64(want[i])) {
				t.Fatalf("mode %d HiCOO GPU value %d differs", mode, i)
			}
		}
	}
}

func TestTtmErrors(t *testing.T) {
	x := randTensor(56, []tensor.Index{5, 5, 5}, 20)
	if _, err := PrepareTtm(x, 5, 4); err == nil {
		t.Fatal("expected mode error")
	}
	if _, err := PrepareTtm(x, 0, 0); err == nil {
		t.Fatal("expected R error")
	}
	p, _ := PrepareTtm(x, 0, 4)
	bad := tensor.NewMatrix(5, 7) // wrong column count
	if _, err := p.ExecuteSeq(bad); err == nil {
		t.Fatal("expected matrix shape error")
	}
	bad2 := tensor.NewMatrix(3, 4) // wrong row count
	if _, err := p.ExecuteOMP(bad2, parallel.Options{}); err == nil {
		t.Fatal("expected matrix shape error (OMP)")
	}
	if _, err := p.ExecuteGPU(testDevice(), bad2); err == nil {
		t.Fatal("expected matrix shape error (GPU)")
	}
	if _, err := PrepareTtmHiCOO(x, -1, 4, 4); err == nil {
		t.Fatal("expected HiCOO mode error")
	}
	if _, err := PrepareTtmHiCOO(x, 0, 0, 4); err == nil {
		t.Fatal("expected HiCOO R error")
	}
}

func TestTtmOutputDims(t *testing.T) {
	x := randTensor(57, []tensor.Index{6, 7, 8, 9}, 100)
	p, err := PrepareTtm(x, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []tensor.Index{6, 7, 5, 9}
	for n := range want {
		if p.Out.Dims[n] != want[n] {
			t.Fatalf("output dims %v, want %v", p.Out.Dims, want)
		}
	}
	if p.FlopCount() != 2*int64(x.NNZ())*5 {
		t.Fatalf("FlopCount = %d", p.FlopCount())
	}
}

func TestTtmRepeatedExecuteIsIdempotent(t *testing.T) {
	// Execute zeroes the output rows, so repeated runs must agree.
	x := randTensor(58, []tensor.Index{20, 20, 20}, 500)
	rng := rand.New(rand.NewSource(59))
	p, _ := PrepareTtm(x, 1, 4)
	u := tensor.NewMatrix(20, 4)
	u.Randomize(rng)
	first, _ := p.ExecuteSeq(u)
	want := append([]tensor.Value(nil), first.Vals...)
	p.ExecuteSeq(u)
	for i := range want {
		if p.Out.Vals[i] != want[i] {
			t.Fatal("repeated execute diverged")
		}
	}
}
