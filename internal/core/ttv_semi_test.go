package core

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

func TestTtvSemiMatchesCOOPath(t *testing.T) {
	// Semi-sparse tensor from a Ttm, then contract another mode with a
	// vector: must equal expanding to COO and running the Ttv kernel.
	s := semiFromTtm(t, 300, []tensor.Index{15, 12, 18}, 500, 1, 4)
	rng := rand.New(rand.NewSource(301))
	for _, mode := range []int{0, 2} {
		v := tensor.RandomVector(int(s.Dims[mode]), rng)
		got, err := TtvSemi(s, v, mode)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("mode %d: invalid output: %v", mode, err)
		}
		want, err := Ttv(s.ToCOO(), v, mode)
		if err != nil {
			t.Fatal(err)
		}
		compareMaps(t, semiCOOToF64Map(got), cooToF64Map(want), "TtvSemi")
	}
}

func TestTtvSemiOutputShape(t *testing.T) {
	s := semiFromTtm(t, 302, []tensor.Index{10, 12, 8, 9}, 300, 3, 5)
	v := tensor.NewVector(10)
	got, err := TtvSemi(s, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Mode 0 removed: dims (12, 8, 5) with the last (previously mode 3,
	// dense) renumbered to mode 2.
	if got.Order() != 3 || got.Dims[0] != 12 || got.Dims[1] != 8 || got.Dims[2] != 5 {
		t.Fatalf("output dims %v", got.Dims)
	}
	if len(got.DenseModes) != 1 || got.DenseModes[0] != 2 {
		t.Fatalf("dense modes %v, want [2]", got.DenseModes)
	}
}

func TestTtvSemiOMPMatchesSeq(t *testing.T) {
	s := semiFromTtm(t, 303, []tensor.Index{30, 25, 20}, 2000, 2, 8)
	v := tensor.RandomVector(30, rand.New(rand.NewSource(304)))
	p, err := PrepareTtvSemi(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := p.ExecuteSeq(v)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]tensor.Value(nil), seq.Vals...)
	if _, err := p.ExecuteOMP(v, parallel.Options{Schedule: parallel.Dynamic}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if p.Out.Vals[i] != want[i] {
			t.Fatalf("OMP value %d differs", i)
		}
	}
}

func TestTtvSemiErrors(t *testing.T) {
	s := semiFromTtm(t, 305, []tensor.Index{8, 8, 8}, 40, 1, 3)
	if _, err := PrepareTtvSemi(s, 1); err == nil {
		t.Fatal("expected dense-mode error")
	}
	if _, err := PrepareTtvSemi(s, 5); err == nil {
		t.Fatal("expected range error")
	}
	p, err := PrepareTtvSemi(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ExecuteSeq(tensor.NewVector(3)); err == nil {
		t.Fatal("expected vector-length error")
	}
	if _, err := p.ExecuteOMP(tensor.NewVector(3), parallel.Options{}); err == nil {
		t.Fatal("expected vector-length error (OMP)")
	}
	if p.FlopCount() != 2*int64(len(s.Vals)) {
		t.Fatalf("FlopCount = %d", p.FlopCount())
	}
}

func TestTtvSemiChainEqualsTtvChain(t *testing.T) {
	// Ttm on one mode then TtvSemi on the others must match contracting
	// the original with Ttv first and Ttm last.
	x := randTensor(306, []tensor.Index{12, 14, 10}, 400)
	rng := rand.New(rand.NewSource(307))
	u := tensor.NewMatrix(12, 4)
	u.Randomize(rng)
	v1 := tensor.RandomVector(14, rng)
	v2 := tensor.RandomVector(10, rng)

	// Path A: Ttm(0) → TtvSemi(1) → TtvSemi(2).
	s, err := Ttm(x, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err = TtvSemi(s, v1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err = TtvSemi(s, v2, 1) // previous mode 2 renumbered to 1
	if err != nil {
		t.Fatal(err)
	}
	if s.Order() != 1 || s.DenseSize() != 4 {
		t.Fatalf("final shape %v dense %d", s.Dims, s.DenseSize())
	}

	// Path B: Ttv(2), Ttv(1) on COO, then Ttm(0).
	y, err := Ttv(x, v2, 2)
	if err != nil {
		t.Fatal(err)
	}
	y, err = Ttv(y, v1, 1)
	if err != nil {
		t.Fatal(err)
	}
	w, err := Ttm(y, u, 0)
	if err != nil {
		t.Fatal(err)
	}
	compareMaps(t, semiCOOToF64Map(s), semiCOOToF64Map(w), "mixed chain")
}
