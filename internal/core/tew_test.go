package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hicoo"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// samePatternPair returns two tensors sharing a non-zero pattern with
// independent values in (0,1].
func samePatternPair(seed int64, dims []tensor.Index, nnz int) (*tensor.COO, *tensor.COO) {
	x := randTensor(seed, dims, nnz)
	y := x.Clone()
	rng := rand.New(rand.NewSource(seed + 1000))
	for i := range y.Vals {
		y.Vals[i] = tensor.Value(1 - rng.Float64())
	}
	return x, y
}

func TestTewSamePatternAllOps(t *testing.T) {
	x, y := samePatternPair(1, []tensor.Index{10, 12, 14}, 300)
	for _, op := range []Op{Add, Sub, Mul, Div} {
		p, err := PrepareTew(x, y, op)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		if !p.SamePattern {
			t.Fatalf("%v: expected same-pattern fast path", op)
		}
		z := p.ExecuteSeq()
		if z.NNZ() != x.NNZ() {
			t.Fatalf("%v: output nnz %d, want %d", op, z.NNZ(), x.NNZ())
		}
		for i := range z.Vals {
			want := op.Apply(x.Vals[i], y.Vals[i])
			if z.Vals[i] != want {
				t.Fatalf("%v: entry %d = %v, want %v", op, i, z.Vals[i], want)
			}
		}
	}
}

func TestTewShapeMismatch(t *testing.T) {
	x := randTensor(2, []tensor.Index{4, 4}, 5)
	y := randTensor(3, []tensor.Index{4, 5}, 5)
	if _, err := PrepareTew(x, y, Add); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestTewDifferentPatternUnion(t *testing.T) {
	x := tensor.NewCOO([]tensor.Index{4, 4}, 3)
	x.Append([]tensor.Index{0, 0}, 1)
	x.Append([]tensor.Index{1, 1}, 2)
	y := tensor.NewCOO([]tensor.Index{4, 4}, 3)
	y.Append([]tensor.Index{1, 1}, 10)
	y.Append([]tensor.Index{2, 2}, 20)

	z, err := Tew(x, y, Add)
	if err != nil {
		t.Fatal(err)
	}
	if z.NNZ() != 3 {
		t.Fatalf("union nnz = %d, want 3", z.NNZ())
	}
	checks := map[[2]tensor.Index]tensor.Value{
		{0, 0}: 1, {1, 1}: 12, {2, 2}: 20,
	}
	for k, want := range checks {
		if v, ok := z.At(k[0], k[1]); !ok || v != want {
			t.Fatalf("Add at %v = %v,%v want %v", k, v, ok, want)
		}
	}

	zs, err := Tew(x, y, Sub)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := zs.At(1, 1); v != -8 {
		t.Fatalf("Sub at (1,1) = %v, want -8", v)
	}
	if v, _ := zs.At(2, 2); v != -20 {
		t.Fatalf("Sub at (2,2) = %v, want -20", v)
	}
}

func TestTewDifferentPatternIntersection(t *testing.T) {
	x := tensor.NewCOO([]tensor.Index{4, 4}, 2)
	x.Append([]tensor.Index{0, 0}, 3)
	x.Append([]tensor.Index{1, 1}, 8)
	y := tensor.NewCOO([]tensor.Index{4, 4}, 2)
	y.Append([]tensor.Index{1, 1}, 2)
	y.Append([]tensor.Index{3, 3}, 7)

	zm, err := Tew(x, y, Mul)
	if err != nil {
		t.Fatal(err)
	}
	if zm.NNZ() != 1 {
		t.Fatalf("Mul intersection nnz = %d, want 1", zm.NNZ())
	}
	if v, _ := zm.At(1, 1); v != 16 {
		t.Fatalf("Mul at (1,1) = %v, want 16", v)
	}

	zd, err := Tew(x, y, Div)
	if err != nil {
		t.Fatal(err)
	}
	if zd.NNZ() != 1 {
		t.Fatalf("Div intersection nnz = %d, want 1", zd.NNZ())
	}
	if v, _ := zd.At(1, 1); v != 4 {
		t.Fatalf("Div at (1,1) = %v, want 4", v)
	}
}

func TestTewOMPAndGPUAgreeWithSeq(t *testing.T) {
	x, y := samePatternPair(4, []tensor.Index{30, 20, 25}, 2000)
	for _, op := range []Op{Add, Mul} {
		p, err := PrepareTew(x, y, op)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]tensor.Value(nil), p.ExecuteSeq().Vals...)
		for _, sched := range []parallel.Schedule{parallel.Static, parallel.Dynamic, parallel.Guided} {
			got := p.ExecuteOMP(parallel.Options{Schedule: sched})
			for i := range want {
				if got.Vals[i] != want[i] {
					t.Fatalf("OMP(%v) entry %d differs", sched, i)
				}
			}
		}
		got := p.ExecuteGPU(testDevice())
		for i := range want {
			if got.Vals[i] != want[i] {
				t.Fatalf("GPU entry %d differs", i)
			}
		}
	}
}

func TestTewGPUDifferentPattern(t *testing.T) {
	x := randTensor(5, []tensor.Index{20, 20}, 150)
	y := randTensor(6, []tensor.Index{20, 20}, 150)
	p, err := PrepareTew(x, y, Add)
	if err != nil {
		t.Fatal(err)
	}
	if p.SamePattern {
		t.Skip("random tensors unexpectedly share pattern")
	}
	want := append([]tensor.Value(nil), p.ExecuteSeq().Vals...)
	got := p.ExecuteGPU(testDevice())
	for i := range want {
		if got.Vals[i] != want[i] {
			t.Fatalf("GPU general-path entry %d differs", i)
		}
	}
}

func TestTewGeneralMatchesMapSemantics(t *testing.T) {
	f := func(seedX, seedY int64) bool {
		x := randTensor(seedX, []tensor.Index{6, 6, 6}, 40)
		y := randTensor(seedY, []tensor.Index{6, 6, 6}, 40)
		z, err := Tew(x, y, Add)
		if err != nil {
			return false
		}
		xm, ym := cooToF64Map(x), cooToF64Map(y)
		want := make(map[string]float64, len(xm)+len(ym))
		for k, v := range xm {
			want[k] += v
		}
		for k, v := range ym {
			want[k] += v
		}
		got := cooToF64Map(z)
		if len(got) != len(want) {
			return false
		}
		for k, wv := range want {
			if !closeEnough(got[k], wv) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTewHiCOOMatchesCOO(t *testing.T) {
	x, y := samePatternPair(7, []tensor.Index{50, 60, 40}, 1500)
	hx := hicoo.FromCOO(x, hicoo.DefaultBlockBits)
	hy := hicoo.FromCOO(y, hicoo.DefaultBlockBits)
	for _, op := range []Op{Add, Sub, Mul, Div} {
		hp, err := PrepareTewHiCOO(hx, hy, op)
		if err != nil {
			t.Fatalf("%v: %v", op, err)
		}
		hz := hp.ExecuteSeq()
		if err := hz.Validate(); err != nil {
			t.Fatalf("%v: output invalid: %v", op, err)
		}
		cz, err := Tew(x, y, op)
		if err != nil {
			t.Fatal(err)
		}
		compareMaps(t, cooToF64Map(hz.ToCOO()), cooToF64Map(cz), "HiCOO-Tew "+op.String())

		// Parallel and GPU paths agree entry-for-entry with sequential.
		want := append([]tensor.Value(nil), hz.Vals...)
		hp.ExecuteOMP(parallel.Options{Schedule: parallel.Dynamic})
		for i := range want {
			if hp.Out.Vals[i] != want[i] {
				t.Fatalf("%v: HiCOO OMP entry %d differs", op, i)
			}
		}
		hp.ExecuteGPU(testDevice())
		for i := range want {
			if hp.Out.Vals[i] != want[i] {
				t.Fatalf("%v: HiCOO GPU entry %d differs", op, i)
			}
		}
	}
}

func TestTewHiCOORejectsDifferentStructure(t *testing.T) {
	x := randTensor(8, []tensor.Index{30, 30, 30}, 200)
	y := randTensor(9, []tensor.Index{30, 30, 30}, 200)
	hx := hicoo.FromCOO(x, hicoo.DefaultBlockBits)
	hy := hicoo.FromCOO(y, hicoo.DefaultBlockBits)
	if _, err := PrepareTewHiCOO(hx, hy, Add); err == nil {
		t.Fatal("expected structural mismatch error")
	}
	// Different block bits also rejected.
	hy2 := hicoo.FromCOO(x, 5)
	if _, err := PrepareTewHiCOO(hx, hy2, Add); err == nil {
		t.Fatal("expected block-bits mismatch error")
	}
}

func TestTewFlopCount(t *testing.T) {
	x, y := samePatternPair(10, []tensor.Index{10, 10}, 50)
	p, err := PrepareTew(x, y, Add)
	if err != nil {
		t.Fatal(err)
	}
	if p.FlopCount() != int64(p.Out.NNZ()) {
		t.Fatalf("FlopCount = %d, want %d", p.FlopCount(), p.Out.NNZ())
	}
}

func TestOpString(t *testing.T) {
	if Add.String() != "add" || Sub.String() != "sub" || Mul.String() != "mul" || Div.String() != "div" {
		t.Fatal("Op.String wrong")
	}
	if Op(42).String() != "unknown" {
		t.Fatal("unknown Op string wrong")
	}
}

func TestOpApplyPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Op(42).Apply(1, 2)
}
