package core

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TsPlan is the prepared state of a COO tensor-scalar kernel (§2.2): the
// output keeps the input's non-zero pattern, so preprocessing only
// allocates the value array and aliases the index arrays. The suite
// implements Tsa (add) and Tsm (multiply), which the paper notes are
// sufficient to support all four operations.
type TsPlan struct {
	// X is the input tensor.
	X *tensor.COO
	// S is the scalar operand.
	S tensor.Value
	// Op is Add or Mul (Sub and Div reduce to them).
	Op Op
	// Out is the preallocated output, indices aliased to X.
	Out *tensor.COO
}

// PrepareTs validates the operation and preallocates the output. Sub and
// Div are normalized to Add/Mul with a transformed scalar, mirroring the
// paper's "Tsa and Tsm are sufficient to support them all".
func PrepareTs(x *tensor.COO, s tensor.Value, op Op) (*TsPlan, error) {
	switch op {
	case Add, Mul:
	case Sub:
		op, s = Add, -s
	case Div:
		if s == 0 {
			return nil, fmt.Errorf("core: tensor-scalar division by zero")
		}
		op, s = Mul, 1/s
	default:
		return nil, fmt.Errorf("core: unknown op %v", op)
	}
	return &TsPlan{
		X:  x,
		S:  s,
		Op: op,
		Out: &tensor.COO{
			Dims: append([]tensor.Index(nil), x.Dims...),
			Inds: x.Inds,
			Vals: make([]tensor.Value, x.NNZ()),
		},
	}, nil
}

// ExecuteSeq runs the value computation sequentially.
func (p *TsPlan) ExecuteSeq() *tensor.COO {
	p.executeRange(0, p.X.NNZ())
	return p.Out
}

// ExecuteOMP runs the value computation with the OpenMP-style runtime.
func (p *TsPlan) ExecuteOMP(opt parallel.Options) *tensor.COO {
	parallel.For(p.X.NNZ(), opt, func(lo, hi, _ int) {
		p.executeRange(lo, hi)
	})
	return p.Out
}

// ExecuteGPU runs the COO-Ts-GPU kernel: one thread per non-zero in a 1-D
// grid of 256-thread blocks (§3.2.2).
func (p *TsPlan) ExecuteGPU(dev *gpusim.Device) *tensor.COO {
	m := p.X.NNZ()
	if m == 0 {
		return p.Out
	}
	block := gpusim.Dim1(gpusim.DefaultBlockThreads)
	grid := gpusim.Grid1DFor(m, block.X)
	xv, zv, s := p.X.Vals, p.Out.Vals, p.S
	if p.Op == Add {
		dev.Launch(grid, block, func(ctx gpusim.Ctx) {
			if i := ctx.GlobalX(); i < m {
				zv[i] = xv[i] + s
			}
		})
	} else {
		dev.Launch(grid, block, func(ctx gpusim.Ctx) {
			if i := ctx.GlobalX(); i < m {
				zv[i] = xv[i] * s
			}
		})
	}
	return p.Out
}

func (p *TsPlan) executeRange(lo, hi int) {
	xv, zv, s := p.X.Vals, p.Out.Vals, p.S
	if p.Op == Add {
		for i := lo; i < hi; i++ {
			zv[i] = xv[i] + s
		}
		return
	}
	for i := lo; i < hi; i++ {
		zv[i] = xv[i] * s
	}
}

// FlopCount returns the floating-point work of one execution (Table 1:
// M flops for Ts).
func (p *TsPlan) FlopCount() int64 { return int64(p.X.NNZ()) }

// Ts is the convenience one-shot form: prepare and execute sequentially.
func Ts(x *tensor.COO, s tensor.Value, op Op) (*tensor.COO, error) {
	p, err := PrepareTs(x, s, op)
	if err != nil {
		return nil, err
	}
	return p.ExecuteSeq(), nil
}
