package core

import (
	"fmt"
	"sort"

	"repro/internal/gpusim"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TtvPlan is the prepared state of a COO tensor-times-vector kernel in a
// fixed mode (Algorithm 1, COO-Ttv-OMP). Preprocessing sorts the tensor so
// the mode-n fibers are contiguous, records the fiber pointers fptr, and
// preallocates the order-(N-1) sparse output with MF non-zeros whose
// indices follow the sparse-dense property: they equal the non-product
// coordinates of the input fibers.
type TtvPlan struct {
	// X is the input, sorted for Mode (a sorted clone if the caller's
	// tensor was not already in fiber order).
	X *tensor.COO
	// Mode is the product mode n.
	Mode int
	// Fptr holds the fiber start offsets (MF+1 entries).
	Fptr []int64
	// Out is the preallocated output tensor of order N-1 with MF
	// non-zeros; indices are final, values recomputed per Execute.
	Out *tensor.COO
	// LastStrategy records the reduction strategy the most recent
	// ExecuteOMP call resolved to (for harness reporting).
	LastStrategy parallel.Strategy
}

// PrepareTtv performs the preprocessing stage of Ttv in mode n.
func PrepareTtv(x *tensor.COO, mode int) (*TtvPlan, error) {
	if mode < 0 || mode >= x.Order() {
		return nil, fmt.Errorf("core: Ttv mode %d out of range for order-%d tensor", mode, x.Order())
	}
	if x.Order() < 2 {
		return nil, fmt.Errorf("core: Ttv needs an order >= 2 tensor")
	}
	xs := x
	if !xs.IsSortedBy(tensor.ModeOrder(x.Order(), mode)) {
		xs = x.Clone()
		xs.SortForMode(mode)
	}
	fptr := xs.FiberPointers(mode)
	mf := len(fptr) - 1

	outDims := make([]tensor.Index, 0, x.Order()-1)
	otherModes := make([]int, 0, x.Order()-1)
	for n := 0; n < x.Order(); n++ {
		if n != mode {
			outDims = append(outDims, x.Dims[n])
			otherModes = append(otherModes, n)
		}
	}
	out := &tensor.COO{
		Dims: outDims,
		Inds: make([][]tensor.Index, len(outDims)),
		Vals: make([]tensor.Value, mf),
	}
	for on, n := range otherModes {
		ind := make([]tensor.Index, mf)
		src := xs.Inds[n]
		for f := 0; f < mf; f++ {
			ind[f] = src[fptr[f]]
		}
		out.Inds[on] = ind
	}
	return &TtvPlan{X: xs, Mode: mode, Fptr: fptr, Out: out}, nil
}

// NumFibers returns MF, the number of mode-n fibers.
func (p *TtvPlan) NumFibers() int { return len(p.Fptr) - 1 }

// ExecuteSeq runs the value computation sequentially: one reduction per
// fiber, y_f = Σ_m x_m · v[k_m].
func (p *TtvPlan) ExecuteSeq(v tensor.Vector) (*tensor.COO, error) {
	if err := p.checkVec(v); err != nil {
		return nil, err
	}
	p.executeFibers(0, p.NumFibers(), v)
	return p.Out, nil
}

// ExecuteOMP runs the value computation with the strategy-selected
// decomposition: owner-computes over independent fibers ("parfor
// f = 1..MF", race-free but exposed to the fiber-length imbalance the
// paper highlights), or balanced over non-zeros with the per-fiber
// reduction protected by atomics or pooled per-worker private outputs.
func (p *TtvPlan) ExecuteOMP(v tensor.Vector, opt parallel.Options) (*tensor.COO, error) {
	if err := p.checkVec(v); err != nil {
		return nil, err
	}
	m := p.X.NNZ()
	mf := p.NumFibers()
	st, threads := planReduction(opt, m, mf, m, mf)
	p.LastStrategy = st
	switch st {
	case parallel.Owner:
		if err := parallel.For(mf, opt, func(lo, hi, _ int) {
			p.executeFibers(lo, hi, v)
		}); err != nil {
			return nil, err
		}
	case parallel.Privatized:
		if err := privatizedReduce(m, threads, opt, p.Out.Vals, func(lo, hi int, priv []tensor.Value) {
			p.executeNNZ(lo, hi, v, priv, false)
		}); err != nil {
			return nil, err
		}
	default: // Atomic
		if err := zeroValues(p.Out.Vals, threads, opt.Ctx); err != nil {
			return nil, err
		}
		opt.Threads = threads
		atomicUpd := threads > 1
		if err := parallel.For(m, opt, func(lo, hi, _ int) {
			p.executeNNZ(lo, hi, v, p.Out.Vals, atomicUpd)
		}); err != nil {
			return nil, err
		}
	}
	return p.Out, nil
}

// executeNNZ processes non-zeros [lo, hi) of the fiber-sorted tensor: a
// segmented reduction that accumulates each contiguous fiber segment
// locally and flushes it once per segment, so only fibers split across
// workers ever contend on yv.
func (p *TtvPlan) executeNNZ(lo, hi int, v tensor.Vector, yv []tensor.Value, atomicUpd bool) {
	fptr := p.Fptr
	kInd := p.X.Inds[p.Mode]
	xv := p.X.Vals
	f := sort.Search(len(fptr)-1, func(i int) bool { return fptr[i+1] > int64(lo) })
	for m := lo; m < hi; {
		for fptr[f+1] <= int64(m) {
			f++
		}
		end := hi
		if fptr[f+1] < int64(end) {
			end = int(fptr[f+1])
		}
		var acc tensor.Value
		for ; m < end; m++ {
			acc += xv[m] * v[kInd[m]]
		}
		if atomicUpd {
			parallel.AtomicAddFloat32(&yv[f], acc)
		} else {
			yv[f] += acc
		}
	}
}

// ExecuteGPU runs the COO-Ttv-GPU kernel: a 1-D grid of 1-D thread blocks
// with one thread per fiber (§3.2.2), so unbalanced fiber lengths cause
// the performance drop the paper notes.
func (p *TtvPlan) ExecuteGPU(dev *gpusim.Device, v tensor.Vector) (*tensor.COO, error) {
	if err := p.checkVec(v); err != nil {
		return nil, err
	}
	mf := p.NumFibers()
	if mf == 0 {
		return p.Out, nil
	}
	block := gpusim.Dim1(gpusim.DefaultBlockThreads)
	grid := gpusim.Grid1DFor(mf, block.X)
	fptr := p.Fptr
	kInd := p.X.Inds[p.Mode]
	xv := p.X.Vals
	yv := p.Out.Vals
	if _, err := dev.TryLaunch(grid, block, func(ctx gpusim.Ctx) {
		f := ctx.GlobalX()
		if f >= mf {
			return
		}
		var acc tensor.Value
		for m := fptr[f]; m < fptr[f+1]; m++ {
			acc += xv[m] * v[kInd[m]]
		}
		yv[f] = acc
	}); err != nil {
		return nil, err
	}
	return p.Out, nil
}

func (p *TtvPlan) executeFibers(lo, hi int, v tensor.Vector) {
	fptr := p.Fptr
	kInd := p.X.Inds[p.Mode]
	xv := p.X.Vals
	yv := p.Out.Vals
	for f := lo; f < hi; f++ {
		var acc tensor.Value
		for m := fptr[f]; m < fptr[f+1]; m++ {
			acc += xv[m] * v[kInd[m]]
		}
		yv[f] = acc
	}
}

func (p *TtvPlan) checkVec(v tensor.Vector) error {
	if len(v) != int(p.X.Dims[p.Mode]) {
		return fmt.Errorf("core: Ttv vector length %d, want mode-%d size %d", len(v), p.Mode, p.X.Dims[p.Mode])
	}
	return nil
}

// FlopCount returns the floating-point work of one execution (Table 1:
// 2M flops for Ttv).
func (p *TtvPlan) FlopCount() int64 { return 2 * int64(p.X.NNZ()) }

// Ttv is the convenience one-shot form: prepare and execute sequentially.
func Ttv(x *tensor.COO, v tensor.Vector, mode int) (*tensor.COO, error) {
	p, err := PrepareTtv(x, mode)
	if err != nil {
		return nil, err
	}
	return p.ExecuteSeq(v)
}
