package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hicoo"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

func TestMttkrpHandcrafted(t *testing.T) {
	// X(0,1,2)=2 with R=1: Ã(0,0) = 2 * B(1,0) * C(2,0).
	x := tensor.NewCOO([]tensor.Index{2, 3, 4}, 1)
	x.AppendIdx3(0, 1, 2, 2)
	b := tensor.NewMatrix(3, 1)
	b.Set(1, 0, 5)
	c := tensor.NewMatrix(4, 1)
	c.Set(2, 0, 7)
	a, err := Mttkrp(x, []*tensor.Matrix{nil, b, c}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rows != 2 || a.Cols != 1 {
		t.Fatalf("output %dx%d", a.Rows, a.Cols)
	}
	if a.At(0, 0) != 70 {
		t.Fatalf("Ã(0,0) = %v, want 70", a.At(0, 0))
	}
	if a.At(1, 0) != 0 {
		t.Fatalf("Ã(1,0) = %v, want 0", a.At(1, 0))
	}
}

func TestMttkrpAgainstReferenceAllModes(t *testing.T) {
	for _, dims := range [][]tensor.Index{
		{25, 30, 20},
		{10, 14, 8, 12},
	} {
		x := randTensor(60, dims, 700)
		r := 8
		mats := randMats(61, x, r)
		for mode := 0; mode < len(dims); mode++ {
			p, err := PrepareMttkrp(x, mode, r)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.ExecuteSeq(mats)
			if err != nil {
				t.Fatal(err)
			}
			compareMatrix(t, got, refMttkrp(x, mats, mode, r), "Mttkrp seq")
		}
	}
}

func TestMttkrpParallelStrategiesAgree(t *testing.T) {
	x := randTensor(62, []tensor.Index{60, 50, 40}, 5000)
	r := DefaultR
	mats := randMats(63, x, r)
	for mode := 0; mode < 3; mode++ {
		want := refMttkrp(x, mats, mode, r)
		p, _ := PrepareMttkrp(x, mode, r)

		got, err := p.ExecuteOMP(mats, parallel.Options{Schedule: parallel.Dynamic})
		if err != nil {
			t.Fatal(err)
		}
		compareMatrix(t, got, want, "Mttkrp OMP-atomic")

		got, err = p.ExecuteOMPPrivatized(mats, parallel.Options{Schedule: parallel.Static})
		if err != nil {
			t.Fatal(err)
		}
		compareMatrix(t, got, want, "Mttkrp OMP-privatized")

		got, err = p.ExecuteGPU(testDevice(), mats)
		if err != nil {
			t.Fatal(err)
		}
		compareMatrix(t, got, want, "Mttkrp GPU")
	}
}

func TestMttkrpHiCOOMatchesReference(t *testing.T) {
	x := randTensor(64, []tensor.Index{50, 45, 55}, 3000)
	r := DefaultR
	mats := randMats(65, x, r)
	h := hicoo.FromCOO(x, hicoo.DefaultBlockBits)
	for mode := 0; mode < 3; mode++ {
		want := refMttkrp(x, mats, mode, r)
		hp, err := PrepareMttkrpHiCOO(h, mode, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := hp.ExecuteSeq(mats)
		if err != nil {
			t.Fatal(err)
		}
		compareMatrix(t, got, want, "HiCOO-Mttkrp seq")

		got, err = hp.ExecuteOMP(mats, parallel.Options{Schedule: parallel.Dynamic})
		if err != nil {
			t.Fatal(err)
		}
		compareMatrix(t, got, want, "HiCOO-Mttkrp OMP")

		got, err = hp.ExecuteGPU(testDevice(), mats)
		if err != nil {
			t.Fatal(err)
		}
		compareMatrix(t, got, want, "HiCOO-Mttkrp GPU")
	}
}

func TestMttkrpHiCOOOrder4(t *testing.T) {
	x := randTensor(66, []tensor.Index{14, 12, 10, 16}, 800)
	r := 4
	mats := randMats(67, x, r)
	h := hicoo.FromCOO(x, 3)
	for mode := 0; mode < 4; mode++ {
		want := refMttkrp(x, mats, mode, r)
		hp, err := PrepareMttkrpHiCOO(h, mode, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := hp.ExecuteSeq(mats)
		if err != nil {
			t.Fatal(err)
		}
		compareMatrix(t, got, want, "HiCOO-Mttkrp-4d seq")
		got, err = hp.ExecuteOMP(mats, parallel.Options{})
		if err != nil {
			t.Fatal(err)
		}
		compareMatrix(t, got, want, "HiCOO-Mttkrp-4d OMP")
		got, err = hp.ExecuteGPU(testDevice(), mats)
		if err != nil {
			t.Fatal(err)
		}
		compareMatrix(t, got, want, "HiCOO-Mttkrp-4d GPU")
	}
}

func TestMttkrpSkewedTensor(t *testing.T) {
	// Heavy collisions on mode 0 stress the atomic paths.
	rng := rand.New(rand.NewSource(68))
	x := tensor.RandomCOOSkewed([]tensor.Index{100, 40, 40}, 4000, rng)
	r := 8
	mats := randMats(69, x, r)
	want := refMttkrp(x, mats, 0, r)
	p, _ := PrepareMttkrp(x, 0, r)
	got, err := p.ExecuteOMP(mats, parallel.Options{Schedule: parallel.Static})
	if err != nil {
		t.Fatal(err)
	}
	compareMatrix(t, got, want, "Mttkrp skewed OMP")
	got, err = p.ExecuteGPU(testDevice(), mats)
	if err != nil {
		t.Fatal(err)
	}
	compareMatrix(t, got, want, "Mttkrp skewed GPU")
}

func TestMttkrpErrors(t *testing.T) {
	x := randTensor(70, []tensor.Index{5, 6, 7}, 30)
	if _, err := PrepareMttkrp(x, 3, 4); err == nil {
		t.Fatal("expected mode error")
	}
	if _, err := PrepareMttkrp(x, 0, 0); err == nil {
		t.Fatal("expected R error")
	}
	p, _ := PrepareMttkrp(x, 0, 4)
	if _, err := p.ExecuteSeq([]*tensor.Matrix{nil, nil}); err == nil {
		t.Fatal("expected matrix-count error")
	}
	mats := randMats(71, x, 4)
	mats[1] = nil
	if _, err := p.ExecuteSeq(mats); err == nil {
		t.Fatal("expected nil-matrix error")
	}
	mats = randMats(72, x, 4)
	mats[2] = tensor.NewMatrix(7, 9)
	if _, err := p.ExecuteSeq(mats); err == nil {
		t.Fatal("expected matrix-shape error")
	}
	h := hicoo.FromCOO(x, 4)
	if _, err := PrepareMttkrpHiCOO(h, 7, 4); err == nil {
		t.Fatal("expected HiCOO mode error")
	}
	if _, err := PrepareMttkrpHiCOO(h, 0, -2); err == nil {
		t.Fatal("expected HiCOO R error")
	}
}

func TestMttkrpProperty(t *testing.T) {
	f := func(seed int64, modeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []tensor.Index{
			tensor.Index(rng.Intn(20) + 1),
			tensor.Index(rng.Intn(20) + 1),
			tensor.Index(rng.Intn(20) + 1),
		}
		mode := int(modeRaw) % 3
		x := tensor.RandomCOO(dims, rng.Intn(250)+1, rng)
		r := rng.Intn(8) + 1
		mats := randMats(seed+1, x, r)
		want := refMttkrp(x, mats, mode, r)

		p, err := PrepareMttkrp(x, mode, r)
		if err != nil {
			return false
		}
		got, err := p.ExecuteSeq(mats)
		if err != nil {
			return false
		}
		h := hicoo.FromCOO(x, 5)
		hp, err := PrepareMttkrpHiCOO(h, mode, r)
		if err != nil {
			return false
		}
		hgot, err := hp.ExecuteSeq(mats)
		if err != nil {
			return false
		}
		for i := 0; i < got.Rows; i++ {
			for c := 0; c < r; c++ {
				if !closeEnough(float64(got.At(i, c)), want[i][c]) {
					return false
				}
				if !closeEnough(float64(hgot.At(i, c)), want[i][c]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMttkrpFlopCount(t *testing.T) {
	x := randTensor(73, []tensor.Index{10, 10, 10}, 100)
	p, _ := PrepareMttkrp(x, 0, 16)
	if p.FlopCount() != 3*int64(x.NNZ())*16 {
		t.Fatalf("FlopCount = %d, want %d", p.FlopCount(), 3*x.NNZ()*16)
	}
	x4 := randTensor(74, []tensor.Index{8, 8, 8, 8}, 100)
	p4, _ := PrepareMttkrp(x4, 1, 16)
	if p4.FlopCount() != 4*int64(x4.NNZ())*16 {
		t.Fatalf("order-4 FlopCount = %d", p4.FlopCount())
	}
}
