package core

import (
	"testing"

	"repro/internal/hicoo"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

func TestTsAllOps(t *testing.T) {
	x := randTensor(20, []tensor.Index{15, 15, 15}, 400)
	cases := []struct {
		op   Op
		s    tensor.Value
		want func(v tensor.Value) tensor.Value
	}{
		{Add, 2.5, func(v tensor.Value) tensor.Value { return v + 2.5 }},
		{Sub, 1.5, func(v tensor.Value) tensor.Value { return v - 1.5 }},
		{Mul, 3, func(v tensor.Value) tensor.Value { return v * 3 }},
		{Div, 4, func(v tensor.Value) tensor.Value { return v * 0.25 }},
	}
	for _, c := range cases {
		z, err := Ts(x, c.s, c.op)
		if err != nil {
			t.Fatalf("%v: %v", c.op, err)
		}
		if z.NNZ() != x.NNZ() {
			t.Fatalf("%v: nnz changed", c.op)
		}
		for i := range z.Vals {
			if z.Vals[i] != c.want(x.Vals[i]) {
				t.Fatalf("%v: entry %d = %v, want %v", c.op, i, z.Vals[i], c.want(x.Vals[i]))
			}
		}
	}
}

func TestTsNormalization(t *testing.T) {
	x := randTensor(21, []tensor.Index{8, 8}, 20)
	p, err := PrepareTs(x, 2, Sub)
	if err != nil {
		t.Fatal(err)
	}
	if p.Op != Add || p.S != -2 {
		t.Fatalf("Sub not normalized: op=%v s=%v", p.Op, p.S)
	}
	p2, err := PrepareTs(x, 4, Div)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Op != Mul || p2.S != 0.25 {
		t.Fatalf("Div not normalized: op=%v s=%v", p2.Op, p2.S)
	}
}

func TestTsDivByZero(t *testing.T) {
	x := randTensor(22, []tensor.Index{4, 4}, 5)
	if _, err := PrepareTs(x, 0, Div); err == nil {
		t.Fatal("expected division-by-zero error")
	}
	hx := hicoo.FromCOO(x, 4)
	if _, err := PrepareTsHiCOO(hx, 0, Div); err == nil {
		t.Fatal("expected HiCOO division-by-zero error")
	}
}

func TestTsOMPAndGPUAgree(t *testing.T) {
	x := randTensor(23, []tensor.Index{40, 30, 20}, 3000)
	for _, op := range []Op{Add, Mul} {
		p, err := PrepareTs(x, 1.75, op)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]tensor.Value(nil), p.ExecuteSeq().Vals...)
		p.ExecuteOMP(parallel.Options{Schedule: parallel.Static})
		for i := range want {
			if p.Out.Vals[i] != want[i] {
				t.Fatalf("%v OMP entry %d differs", op, i)
			}
		}
		p.ExecuteGPU(testDevice())
		for i := range want {
			if p.Out.Vals[i] != want[i] {
				t.Fatalf("%v GPU entry %d differs", op, i)
			}
		}
	}
}

func TestTsHiCOOMatchesCOO(t *testing.T) {
	x := randTensor(24, []tensor.Index{60, 60, 60}, 2000)
	hx := hicoo.FromCOO(x, hicoo.DefaultBlockBits)
	for _, op := range []Op{Add, Sub, Mul, Div} {
		hp, err := PrepareTsHiCOO(hx, 2, op)
		if err != nil {
			t.Fatal(err)
		}
		hz := hp.ExecuteSeq()
		if err := hz.Validate(); err != nil {
			t.Fatalf("%v: invalid output: %v", op, err)
		}
		cz, err := Ts(x, 2, op)
		if err != nil {
			t.Fatal(err)
		}
		compareMaps(t, cooToF64Map(hz.ToCOO()), cooToF64Map(cz), "HiCOO-Ts "+op.String())

		want := append([]tensor.Value(nil), hz.Vals...)
		hp.ExecuteOMP(parallel.Options{Schedule: parallel.Guided})
		for i := range want {
			if hp.Out.Vals[i] != want[i] {
				t.Fatalf("%v: HiCOO OMP entry %d differs", op, i)
			}
		}
		hp.ExecuteGPU(testDevice())
		for i := range want {
			if hp.Out.Vals[i] != want[i] {
				t.Fatalf("%v: HiCOO GPU entry %d differs", op, i)
			}
		}
	}
}

func TestTsUnknownOp(t *testing.T) {
	x := randTensor(25, []tensor.Index{4, 4}, 5)
	if _, err := PrepareTs(x, 1, Op(9)); err == nil {
		t.Fatal("expected unknown-op error")
	}
}

func TestTsFlopCount(t *testing.T) {
	x := randTensor(26, []tensor.Index{10, 10}, 37)
	p, _ := PrepareTs(x, 1, Add)
	if p.FlopCount() != int64(x.NNZ()) {
		t.Fatalf("FlopCount = %d, want %d", p.FlopCount(), x.NNZ())
	}
	hx := hicoo.FromCOO(x, 4)
	hp, _ := PrepareTsHiCOO(hx, 1, Add)
	if hp.FlopCount() != int64(x.NNZ()) {
		t.Fatal("HiCOO FlopCount wrong")
	}
}

func TestTsOutputSharesPattern(t *testing.T) {
	// The output's index arrays alias the input's: the sparse pattern is
	// unchanged by construction (sparse-dense property trivial case).
	x := randTensor(27, []tensor.Index{12, 12}, 30)
	p, _ := PrepareTs(x, 5, Mul)
	z := p.ExecuteSeq()
	for n := range x.Inds {
		if &z.Inds[n][0] != &x.Inds[n][0] {
			t.Fatal("expected aliased index arrays")
		}
	}
}
