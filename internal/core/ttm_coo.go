package core

import (
	"fmt"
	"sort"

	"repro/internal/gpusim"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TtmPlan is the prepared state of a COO tensor-times-matrix kernel in a
// fixed mode (§2.4, §3.2). By the sparse-dense property the product mode
// becomes dense in the output, so preprocessing allocates a semi-sparse
// (sCOO) output with one R-length dense row per mode-n fiber.
type TtmPlan struct {
	// X is the input, sorted for Mode.
	X *tensor.COO
	// Mode is the product mode n.
	Mode int
	// R is the matrix column count (typically 16; R < 100 in low-rank
	// methods).
	R int
	// Fptr holds the fiber start offsets (MF+1 entries).
	Fptr []int64
	// Out is the preallocated sCOO output with Mode dense of size R.
	Out *tensor.SemiCOO
	// LastStrategy records the reduction strategy the most recent
	// ExecuteOMP call resolved to (for harness reporting).
	LastStrategy parallel.Strategy
}

// PrepareTtm performs the preprocessing stage of Ttm in mode n with R
// output columns.
func PrepareTtm(x *tensor.COO, mode, r int) (*TtmPlan, error) {
	if mode < 0 || mode >= x.Order() {
		return nil, fmt.Errorf("core: Ttm mode %d out of range for order-%d tensor", mode, x.Order())
	}
	if r <= 0 {
		return nil, fmt.Errorf("core: Ttm needs R >= 1, got %d", r)
	}
	xs := x
	if !xs.IsSortedBy(tensor.ModeOrder(x.Order(), mode)) {
		xs = x.Clone()
		xs.SortForMode(mode)
	}
	fptr := xs.FiberPointers(mode)
	mf := len(fptr) - 1

	outDims := append([]tensor.Index(nil), x.Dims...)
	outDims[mode] = tensor.Index(r)
	out := tensor.NewSemiCOO(outDims, []int{mode}, mf)
	sparseIdx := make([]tensor.Index, x.Order()-1)
	for f := 0; f < mf; f++ {
		si := 0
		for n := 0; n < x.Order(); n++ {
			if n == mode {
				continue
			}
			sparseIdx[si] = xs.Inds[n][fptr[f]]
			si++
		}
		out.AppendFiber(sparseIdx)
	}
	return &TtmPlan{X: xs, Mode: mode, R: r, Fptr: fptr, Out: out}, nil
}

// NumFibers returns MF.
func (p *TtmPlan) NumFibers() int { return len(p.Fptr) - 1 }

// ExecuteSeq runs the value computation sequentially:
// Y(f, r) = Σ_m x_m · U(k_m, r) per fiber f.
func (p *TtmPlan) ExecuteSeq(u *tensor.Matrix) (*tensor.SemiCOO, error) {
	if err := p.checkMat(u); err != nil {
		return nil, err
	}
	p.executeFibers(0, p.NumFibers(), u)
	return p.Out, nil
}

// ExecuteOMP runs the value computation with the strategy-selected
// decomposition: owner-computes over independent fibers (with the
// innermost column loop playing the role of the paper's "omp simd"
// vectorization), or balanced over non-zeros with the per-fiber R-row
// reduction protected by atomics or pooled per-worker private outputs.
func (p *TtmPlan) ExecuteOMP(u *tensor.Matrix, opt parallel.Options) (*tensor.SemiCOO, error) {
	if err := p.checkMat(u); err != nil {
		return nil, err
	}
	m := p.X.NNZ()
	mf := p.NumFibers()
	st, threads := planReduction(opt, m, mf*p.R, m*p.R, mf)
	p.LastStrategy = st
	switch st {
	case parallel.Owner:
		if err := parallel.For(mf, opt, func(lo, hi, _ int) {
			p.executeFibers(lo, hi, u)
		}); err != nil {
			return nil, err
		}
	case parallel.Privatized:
		if err := privatizedReduce(m, threads, opt, p.Out.Vals, func(lo, hi int, priv []tensor.Value) {
			p.executeNNZ(lo, hi, u, priv, nil)
		}); err != nil {
			return nil, err
		}
	default: // Atomic
		if err := zeroValues(p.Out.Vals, threads, opt.Ctx); err != nil {
			return nil, err
		}
		opt.Threads = threads
		if threads > 1 {
			// Per-worker R-wide segment accumulators from the pool: each
			// contiguous fiber segment flushes its row once, atomically.
			ws := parallel.SharedWorkspace()
			acc := ws.Set(threads, p.R)
			err := parallel.For(m, opt, func(lo, hi, w int) {
				p.executeNNZ(lo, hi, u, p.Out.Vals, acc.Bufs[w])
			})
			ws.PutSet(acc)
			if err != nil {
				return nil, err
			}
		} else {
			if err := parallel.For(m, opt, func(lo, hi, _ int) {
				p.executeNNZ(lo, hi, u, p.Out.Vals, nil)
			}); err != nil {
				return nil, err
			}
		}
	}
	return p.Out, nil
}

// executeNNZ processes non-zeros [lo, hi) of the fiber-sorted tensor as
// a segmented reduction over the output's R-length fiber rows. With acc
// nil the contribution adds directly into out (single writer or private
// copy); otherwise each contiguous fiber segment accumulates into acc
// and flushes once with atomic adds.
func (p *TtmPlan) executeNNZ(lo, hi int, u *tensor.Matrix, out []tensor.Value, acc []tensor.Value) {
	fptr := p.Fptr
	kInd := p.X.Inds[p.Mode]
	xv := p.X.Vals
	r := p.R
	ud := u.Data
	f := sort.Search(len(fptr)-1, func(i int) bool { return fptr[i+1] > int64(lo) })
	for m := lo; m < hi; {
		for fptr[f+1] <= int64(m) {
			f++
		}
		end := hi
		if fptr[f+1] < int64(end) {
			end = int(fptr[f+1])
		}
		if acc != nil {
			for c := range acc {
				acc[c] = 0
			}
			for ; m < end; m++ {
				v := xv[m]
				urow := ud[int(kInd[m])*r : int(kInd[m])*r+r]
				for c, uv := range urow {
					acc[c] += v * uv
				}
			}
			row := out[f*r : f*r+r]
			for c, a := range acc {
				if a != 0 {
					parallel.AtomicAddFloat32(&row[c], a)
				}
			}
		} else {
			row := out[f*r : f*r+r]
			for ; m < end; m++ {
				v := xv[m]
				urow := ud[int(kInd[m])*r : int(kInd[m])*r+r]
				for c, uv := range urow {
					row[c] += v * uv
				}
			}
		}
	}
}

// ExecuteGPU runs the COO-Ttm-GPU kernel following ParTI: a 1-D grid of
// 2-D thread blocks where the x-dimension covers the R matrix columns
// (memory coalescing) and the y-dimension covers a fiber's non-zeros; the
// per-column partial products are accumulated with atomicAdd (§3.2.2).
func (p *TtmPlan) ExecuteGPU(dev *gpusim.Device, u *tensor.Matrix) (*tensor.SemiCOO, error) {
	if err := p.checkMat(u); err != nil {
		return nil, err
	}
	mf := p.NumFibers()
	if mf == 0 {
		return p.Out, nil
	}
	r := p.R
	ny := gpusim.DefaultBlockThreads / r
	if ny < 1 {
		ny = 1
	}
	block := gpusim.Dim2(r, ny)
	grid := gpusim.Dim1(mf) // one block per fiber
	fptr := p.Fptr
	kInd := p.X.Inds[p.Mode]
	xv := p.X.Vals
	out := p.Out.Vals
	ud := u.Data
	for i := range out {
		out[i] = 0
	}
	if _, err := dev.TryLaunch(grid, block, func(ctx gpusim.Ctx) {
		f := ctx.BlockIdx.X
		col := ctx.ThreadIdx.X
		var acc tensor.Value
		for m := fptr[f] + int64(ctx.ThreadIdx.Y); m < fptr[f+1]; m += int64(ctx.BlockDim.Y) {
			acc += xv[m] * ud[int(kInd[m])*r+col]
		}
		if acc != 0 {
			gpusim.AtomicAdd(&out[f*r+col], acc)
		}
	}); err != nil {
		return nil, err
	}
	return p.Out, nil
}

func (p *TtmPlan) executeFibers(lo, hi int, u *tensor.Matrix) {
	fptr := p.Fptr
	kInd := p.X.Inds[p.Mode]
	xv := p.X.Vals
	r := p.R
	ud := u.Data
	for f := lo; f < hi; f++ {
		row := p.Out.Vals[f*r : (f+1)*r]
		for c := range row {
			row[c] = 0
		}
		for m := fptr[f]; m < fptr[f+1]; m++ {
			v := xv[m]
			urow := ud[int(kInd[m])*r : int(kInd[m])*r+r]
			for c, uv := range urow {
				row[c] += v * uv
			}
		}
	}
}

func (p *TtmPlan) checkMat(u *tensor.Matrix) error {
	if u.Rows != int(p.X.Dims[p.Mode]) || u.Cols != p.R {
		return fmt.Errorf("core: Ttm matrix is %dx%d, want %dx%d", u.Rows, u.Cols, p.X.Dims[p.Mode], p.R)
	}
	return nil
}

// FlopCount returns the floating-point work of one execution (Table 1:
// 2MR flops for Ttm).
func (p *TtmPlan) FlopCount() int64 { return 2 * int64(p.X.NNZ()) * int64(p.R) }

// Ttm is the convenience one-shot form: prepare and execute sequentially.
func Ttm(x *tensor.COO, u *tensor.Matrix, mode int) (*tensor.SemiCOO, error) {
	p, err := PrepareTtm(x, mode, u.Cols)
	if err != nil {
		return nil, err
	}
	return p.ExecuteSeq(u)
}
