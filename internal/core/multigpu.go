package core

import (
	"fmt"
	"sync"

	"repro/internal/gpusim"
	"repro/internal/tensor"
)

// Multi-GPU execution (§7 lists "multiple GPUs" among the suite's next
// platforms). The data-parallel scheme mirrors what a multi-GPU PASTA
// would do over NVLink-attached devices: shard the non-zeros (or fibers)
// across devices, run the single-GPU kernel per shard concurrently, and
// reduce any shared outputs on the host.

// ExecuteMultiGPU runs the COO Ttv kernel across several devices by
// sharding fibers: fiber outputs are disjoint, so no reduction is needed.
func (p *TtvPlan) ExecuteMultiGPU(devs []*gpusim.Device, v tensor.Vector) (*tensor.COO, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("core: ExecuteMultiGPU needs at least one device")
	}
	if err := p.checkVec(v); err != nil {
		return nil, err
	}
	mf := p.NumFibers()
	if mf == 0 {
		return p.Out, nil
	}
	fptr := p.Fptr
	kInd := p.X.Inds[p.Mode]
	xv := p.X.Vals
	yv := p.Out.Vals

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	nd := len(devs)
	wg.Add(nd)
	for d := 0; d < nd; d++ {
		lo := d * mf / nd
		hi := (d + 1) * mf / nd
		go func(dev *gpusim.Device, lo, hi int) {
			defer wg.Done()
			n := hi - lo
			if n == 0 {
				return
			}
			block := gpusim.Dim1(gpusim.DefaultBlockThreads)
			grid := gpusim.Grid1DFor(n, block.X)
			if _, err := dev.TryLaunch(grid, block, func(ctx gpusim.Ctx) {
				f := lo + ctx.GlobalX()
				if f >= hi {
					return
				}
				var acc tensor.Value
				for m := fptr[f]; m < fptr[f+1]; m++ {
					acc += xv[m] * v[kInd[m]]
				}
				yv[f] = acc
			}); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(devs[d], lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return p.Out, nil
}

// ExecuteMultiGPU runs the COO Mttkrp kernel across several devices by
// sharding non-zeros. Each device accumulates into a private copy of Ã
// (device-local memory in a real system), and the copies are reduced on
// the host afterwards — the standard replicate-and-reduce scheme for
// multi-GPU MTTKRP.
func (p *MttkrpPlan) ExecuteMultiGPU(devs []*gpusim.Device, mats []*tensor.Matrix) (*tensor.Matrix, error) {
	if len(devs) == 0 {
		return nil, fmt.Errorf("core: ExecuteMultiGPU needs at least one device")
	}
	if err := p.checkMats(mats); err != nil {
		return nil, err
	}
	m := p.X.NNZ()
	r := p.R
	nd := len(devs)
	priv := make([]*tensor.Matrix, nd)
	for d := range priv {
		priv[d] = tensor.NewMatrix(p.Out.Rows, p.Out.Cols)
	}
	nInd := p.X.Inds[p.Mode]
	xv := p.X.Vals
	order := p.X.Order()
	mode := p.Mode

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	wg.Add(nd)
	for d := 0; d < nd; d++ {
		lo := d * m / nd
		hi := (d + 1) * m / nd
		go func(dev *gpusim.Device, out []tensor.Value, lo, hi int) {
			defer wg.Done()
			n := hi - lo
			if n == 0 {
				return
			}
			ny := gpusim.DefaultBlockThreads / r
			if ny < 1 {
				ny = 1
			}
			block := gpusim.Dim2(r, ny)
			grid := gpusim.Grid1DFor(n, ny)
			if _, err := dev.TryLaunch(grid, block, func(ctx gpusim.Ctx) {
				x := lo + ctx.BlockIdx.X*ctx.BlockDim.Y + ctx.ThreadIdx.Y
				if x >= hi {
					return
				}
				col := ctx.ThreadIdx.X
				v := xv[x]
				for mo := 0; mo < order; mo++ {
					if mo == mode {
						continue
					}
					v *= mats[mo].Data[int(p.X.Inds[mo][x])*r+col]
				}
				gpusim.AtomicAdd(&out[int(nInd[x])*r+col], v)
			}); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(devs[d], priv[d].Data, lo, hi)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Host-side reduction of the device-private outputs.
	p.Out.Zero()
	for d := range priv {
		src := priv[d].Data
		dst := p.Out.Data
		for i := range dst {
			dst[i] += src[i]
		}
	}
	return p.Out, nil
}
