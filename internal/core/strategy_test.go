package core

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/hicoo"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// strategyKernel adapts one reduction kernel for the strategy matrix
// tests: runSeq computes the reference output, runOMP executes with the
// given options and reports the resolved strategy, out exposes the
// (shared) output buffer.
type strategyKernel struct {
	name   string
	runSeq func() error
	runOMP func(opt parallel.Options) (parallel.Strategy, error)
	out    func() []tensor.Value
	// hasOwner reports whether the kernel has an owner-computes
	// decomposition (all but Mttkrp do).
	hasOwner bool
}

// strategyKernels builds one plan per reduction kernel over shared random
// inputs sized so every strategy has real work (multiple fibers per
// output, collisions on the product mode).
func strategyKernels(t *testing.T) []strategyKernel {
	t.Helper()
	x := randTensor(900, []tensor.Index{40, 30, 25}, 4000)
	r := 8
	mats := randMats(901, x, r)
	rng := rand.New(rand.NewSource(902))
	v := tensor.RandomVector(40, rng)
	u := tensor.NewMatrix(40, r)
	u.Randomize(rng)
	h := hicoo.FromCOO(x, hicoo.DefaultBlockBits)
	s := semiFromTtm(t, 903, []tensor.Index{40, 30, 25}, 4000, 2, 6)
	sv := tensor.RandomVector(40, rng)
	su := tensor.NewMatrix(40, 5)
	su.Randomize(rng)

	mp, err := PrepareMttkrp(x, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	mhp, err := PrepareMttkrpHiCOO(h, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	tvp, err := PrepareTtv(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	tvhp, err := PrepareTtvHiCOO(x, 0, hicoo.DefaultBlockBits)
	if err != nil {
		t.Fatal(err)
	}
	tvsp, err := PrepareTtvSemi(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	tmp, err := PrepareTtm(x, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	tmhp, err := PrepareTtmHiCOO(x, 0, r, hicoo.DefaultBlockBits)
	if err != nil {
		t.Fatal(err)
	}
	tmsp, err := PrepareTtmSemi(s, 0, 5)
	if err != nil {
		t.Fatal(err)
	}

	return []strategyKernel{
		{
			name:   "MttkrpCOO",
			runSeq: func() error { _, err := mp.ExecuteSeq(mats); return err },
			runOMP: func(opt parallel.Options) (parallel.Strategy, error) {
				_, err := mp.ExecuteOMP(mats, opt)
				return mp.LastStrategy, err
			},
			out: func() []tensor.Value { return mp.Out.Data },
		},
		{
			name:   "MttkrpHiCOO",
			runSeq: func() error { _, err := mhp.ExecuteSeq(mats); return err },
			runOMP: func(opt parallel.Options) (parallel.Strategy, error) {
				_, err := mhp.ExecuteOMP(mats, opt)
				return mhp.LastStrategy, err
			},
			out: func() []tensor.Value { return mhp.Out.Data },
		},
		{
			name:   "TtvCOO",
			runSeq: func() error { _, err := tvp.ExecuteSeq(v); return err },
			runOMP: func(opt parallel.Options) (parallel.Strategy, error) {
				_, err := tvp.ExecuteOMP(v, opt)
				return tvp.LastStrategy, err
			},
			out:      func() []tensor.Value { return tvp.Out.Vals },
			hasOwner: true,
		},
		{
			name:   "TtvHiCOO",
			runSeq: func() error { _, err := tvhp.ExecuteSeq(v); return err },
			runOMP: func(opt parallel.Options) (parallel.Strategy, error) {
				_, err := tvhp.ExecuteOMP(v, opt)
				return tvhp.LastStrategy, err
			},
			out:      func() []tensor.Value { return tvhp.Out.Vals },
			hasOwner: true,
		},
		{
			name:   "TtvSemi",
			runSeq: func() error { _, err := tvsp.ExecuteSeq(sv); return err },
			runOMP: func(opt parallel.Options) (parallel.Strategy, error) {
				_, err := tvsp.ExecuteOMP(sv, opt)
				return tvsp.LastStrategy, err
			},
			out:      func() []tensor.Value { return tvsp.Out.Vals },
			hasOwner: true,
		},
		{
			name:   "TtmCOO",
			runSeq: func() error { _, err := tmp.ExecuteSeq(u); return err },
			runOMP: func(opt parallel.Options) (parallel.Strategy, error) {
				_, err := tmp.ExecuteOMP(u, opt)
				return tmp.LastStrategy, err
			},
			out:      func() []tensor.Value { return tmp.Out.Vals },
			hasOwner: true,
		},
		{
			name:   "TtmHiCOO",
			runSeq: func() error { _, err := tmhp.ExecuteSeq(u); return err },
			runOMP: func(opt parallel.Options) (parallel.Strategy, error) {
				_, err := tmhp.ExecuteOMP(u, opt)
				return tmhp.LastStrategy, err
			},
			out:      func() []tensor.Value { return tmhp.Out.Vals },
			hasOwner: true,
		},
		{
			name:   "TtmSemi",
			runSeq: func() error { _, err := tmsp.ExecuteSeq(su); return err },
			runOMP: func(opt parallel.Options) (parallel.Strategy, error) {
				_, err := tmsp.ExecuteOMP(su, opt)
				return tmsp.LastStrategy, err
			},
			out:      func() []tensor.Value { return tmsp.Out.Vals },
			hasOwner: true,
		},
	}
}

// TestAllStrategiesMatchSeq is the property the selector rests on: every
// reduction kernel produces the same values (within float32 reassociation
// tolerance) under every strategy and several thread counts.
func TestAllStrategiesMatchSeq(t *testing.T) {
	for _, k := range strategyKernels(t) {
		if err := k.runSeq(); err != nil {
			t.Fatalf("%s: seq: %v", k.name, err)
		}
		want := make([]float64, len(k.out()))
		for i, x := range k.out() {
			want[i] = float64(x)
		}
		strategies := []parallel.Strategy{parallel.Auto, parallel.Atomic, parallel.Privatized}
		if k.hasOwner {
			strategies = append(strategies, parallel.Owner)
		}
		for _, st := range strategies {
			for _, threads := range []int{1, 3, 8} {
				opt := parallel.Options{Schedule: parallel.Dynamic, Threads: threads, Strategy: st}
				last, err := k.runOMP(opt)
				if err != nil {
					t.Fatalf("%s/%v/T=%d: %v", k.name, st, threads, err)
				}
				if last == parallel.Auto {
					t.Fatalf("%s/%v/T=%d: LastStrategy not resolved", k.name, st, threads)
				}
				if st != parallel.Auto && st != parallel.Owner && last != st {
					t.Fatalf("%s/T=%d: forced %v but ran %v", k.name, threads, st, last)
				}
				for i, x := range k.out() {
					if !closeEnough(float64(x), want[i]) {
						t.Fatalf("%s/%v/T=%d: out[%d] = %v, want %v", k.name, st, threads, i, x, want[i])
					}
				}
			}
		}
	}
}

// TestStrategiesUnderThreadChurn runs the racy strategies while another
// goroutine flips the global thread count — the failure mode the pinned
// ResolveThreads count guards against. Values are still checked each
// iteration; run under -race this also proves no data race on the
// runtime's own state.
func TestStrategiesUnderThreadChurn(t *testing.T) {
	orig := parallel.NumThreads()
	defer parallel.SetNumThreads(orig)

	x := randTensor(910, []tensor.Index{30, 20, 15}, 1500)
	r := 4
	mats := randMats(911, x, r)
	v := tensor.RandomVector(30, rand.New(rand.NewSource(912)))
	mp, err := PrepareMttkrp(x, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	tvp, err := PrepareTtv(x, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mp.ExecuteSeq(mats); err != nil {
		t.Fatal(err)
	}
	wantM := append([]tensor.Value(nil), mp.Out.Data...)
	if _, err := tvp.ExecuteSeq(v); err != nil {
		t.Fatal(err)
	}
	wantV := append([]tensor.Value(nil), tvp.Out.Vals...)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			parallel.SetNumThreads(i%7 + 1)
		}
	}()

	for iter := 0; iter < 60; iter++ {
		st := parallel.Atomic
		if iter%2 == 1 {
			st = parallel.Privatized
		}
		opt := parallel.Options{Schedule: parallel.Dynamic, Strategy: st}
		if _, err := mp.ExecuteOMP(mats, opt); err != nil {
			t.Fatal(err)
		}
		for i, got := range mp.Out.Data {
			if !closeEnough(float64(got), float64(wantM[i])) {
				t.Fatalf("iter %d %v: Mttkrp out[%d] = %v, want %v", iter, st, i, got, wantM[i])
			}
		}
		if _, err := tvp.ExecuteOMP(v, opt); err != nil {
			t.Fatal(err)
		}
		for i, got := range tvp.Out.Vals {
			if !closeEnough(float64(got), float64(wantV[i])) {
				t.Fatalf("iter %d %v: Ttv out[%d] = %v, want %v", iter, st, i, got, wantV[i])
			}
		}
	}
	close(stop)
	<-done
}

// TestPrivatizedSteadyStateAllocations pins the workspace-pooling
// contract: after warm-up, ExecuteOMPPrivatized takes all privatization
// scratch from the pool (zero workspace misses) and its residual per-call
// allocation — goroutine and closure bookkeeping — is orders of magnitude
// below one private output copy.
func TestPrivatizedSteadyStateAllocations(t *testing.T) {
	// Mode-0 output of 4096×16 values: one private copy is 256 KiB, so
	// the old alloc-per-call behaviour fails the bytes bound immediately.
	x := randTensor(920, []tensor.Index{4096, 64, 64}, 20000)
	r := 16
	mats := randMats(921, x, r)
	p, err := PrepareMttkrp(x, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	opt := parallel.Options{Schedule: parallel.Static, Threads: 4}
	for i := 0; i < 3; i++ { // warm the pool
		if _, err := p.ExecuteOMPPrivatized(mats, opt); err != nil {
			t.Fatal(err)
		}
	}
	warm := parallel.SharedWorkspace().Stats()

	const runs = 50
	allocs := testing.AllocsPerRun(runs, func() {
		if _, err := p.ExecuteOMPPrivatized(mats, opt); err != nil {
			t.Fatal(err)
		}
	})
	st := parallel.SharedWorkspace().Stats()
	if st.Misses != warm.Misses {
		t.Fatalf("steady state missed the workspace pool: %d -> %d misses", warm.Misses, st.Misses)
	}
	// Scheduling scaffolding only: a handful of fixed-size allocations,
	// never the O(threads × OutElems) private buffers.
	if allocs > 32 {
		t.Fatalf("AllocsPerRun = %v, want <= 32", allocs)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		if _, err := p.ExecuteOMPPrivatized(mats, opt); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	perRun := (after.TotalAlloc - before.TotalAlloc) / runs
	outBytes := uint64(len(p.Out.Data)) * 4
	if perRun > outBytes/4 {
		t.Fatalf("steady-state allocation %d B/run, want well under one %d B private copy", perRun, outBytes)
	}
}

// TestReduceWorkspaceStatsExposed sanity-checks the shared workspace's
// observability hook used by the harness.
func TestReduceWorkspaceStatsExposed(t *testing.T) {
	ws := parallel.SharedWorkspace()
	before := ws.Stats()
	buf := ws.Float32(48)
	ws.PutFloat32(buf)
	after := ws.Stats()
	if after.Hits+after.Misses <= before.Hits+before.Misses {
		t.Fatal("workspace stats did not advance")
	}
}
