package core

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/hicoo"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// MttkrpHiCOOPlan is the HiCOO Mttkrp kernel (Algorithm 2). The factor
// matrices are addressed through per-block base rows (Ab, Bb, Cb) so the
// inner loop works purely on 8-bit element indices, which increases
// locality via blocking and Morton-order construction. CPU parallelism is
// over tensor blocks rather than non-zeros; because distinct tensor blocks
// can still share output block-rows, updates remain atomic — and on GPUs
// the per-block mapping loses COO's balanced non-zero distribution, which
// is why the paper observes HiCOO-Mttkrp-GPU below COO-Mttkrp-GPU.
type MttkrpHiCOOPlan struct {
	// X is the input tensor in HiCOO format.
	X *hicoo.HiCOO
	// Mode is the Mttkrp mode n.
	Mode int
	// R is the factor-matrix column count.
	R int
	// Out is the dense output matrix, zeroed at the start of each Execute.
	Out *tensor.Matrix
	// LastStrategy records the reduction strategy the most recent
	// ExecuteOMP call resolved to (for harness reporting).
	LastStrategy parallel.Strategy
}

// PrepareMttkrpHiCOO validates the mode and allocates the output matrix.
func PrepareMttkrpHiCOO(x *hicoo.HiCOO, mode, r int) (*MttkrpHiCOOPlan, error) {
	if mode < 0 || mode >= x.Order() {
		return nil, fmt.Errorf("core: Mttkrp mode %d out of range for order-%d tensor", mode, x.Order())
	}
	if x.Order() < 2 {
		return nil, fmt.Errorf("core: Mttkrp needs an order >= 2 tensor")
	}
	if r <= 0 {
		return nil, fmt.Errorf("core: Mttkrp needs R >= 1, got %d", r)
	}
	return &MttkrpHiCOOPlan{X: x, Mode: mode, R: r, Out: tensor.NewMatrix(int(x.Dims[mode]), r)}, nil
}

func (p *MttkrpHiCOOPlan) checkMats(mats []*tensor.Matrix) error {
	if len(mats) != p.X.Order() {
		return fmt.Errorf("core: Mttkrp got %d factor matrices, want %d", len(mats), p.X.Order())
	}
	for m, u := range mats {
		if m == p.Mode {
			continue
		}
		if u == nil {
			return fmt.Errorf("core: Mttkrp factor matrix %d is nil", m)
		}
		if u.Rows != int(p.X.Dims[m]) || u.Cols != p.R {
			return fmt.Errorf("core: Mttkrp factor %d is %dx%d, want %dx%d", m, u.Rows, u.Cols, p.X.Dims[m], p.R)
		}
	}
	return nil
}

// ExecuteSeq runs Algorithm 2 sequentially over the tensor blocks.
func (p *MttkrpHiCOOPlan) ExecuteSeq(mats []*tensor.Matrix) (*tensor.Matrix, error) {
	if err := p.checkMats(mats); err != nil {
		return nil, err
	}
	p.Out.Zero()
	p.executeBlocks(0, p.X.NumBlocks(), mats, p.Out.Data, false)
	return p.Out, nil
}

// ExecuteOMP runs HiCOO-Mttkrp-OMP: "parfor b = 1..nb" over tensor blocks
// (Algorithm 2). Distinct blocks may share output rows, so the shared
// output needs protection: atomic updates, or pooled per-worker private
// copies merged after the loop (Options.Strategy; Auto adapts per call).
// The reference implementation deliberately skips the lock-avoiding
// scheduling of the HiCOO paper (§3.4).
func (p *MttkrpHiCOOPlan) ExecuteOMP(mats []*tensor.Matrix, opt parallel.Options) (*tensor.Matrix, error) {
	if err := p.checkMats(mats); err != nil {
		return nil, err
	}
	nb := p.X.NumBlocks()
	st, threads := planReduction(opt, nb, len(p.Out.Data), p.X.NNZ()*p.R, 0)
	p.LastStrategy = st
	opt.Threads = threads
	if st == parallel.Privatized {
		if err := privatizedReduce(nb, threads, opt, p.Out.Data, func(lo, hi int, priv []tensor.Value) {
			p.executeBlocks(lo, hi, mats, priv, false)
		}); err != nil {
			return nil, err
		}
		return p.Out, nil
	}
	p.Out.Zero()
	atomicUpd := threads > 1
	if err := parallel.For(nb, opt, func(lo, hi, _ int) {
		p.executeBlocks(lo, hi, mats, p.Out.Data, atomicUpd)
	}); err != nil {
		return nil, err
	}
	return p.Out, nil
}

// ExecuteGPU runs the unoptimized HiCOO-Mttkrp-GPU of §3.4.2: one tensor
// block maps to one CUDA thread block (x-threads over columns, y-threads
// striding the block's non-zeros) and atomicAdd protects the output. The
// non-uniform non-zeros per tensor block produce the load imbalance the
// paper reports.
func (p *MttkrpHiCOOPlan) ExecuteGPU(dev *gpusim.Device, mats []*tensor.Matrix) (*tensor.Matrix, error) {
	if err := p.checkMats(mats); err != nil {
		return nil, err
	}
	p.Out.Zero()
	nb := p.X.NumBlocks()
	if nb == 0 {
		return p.Out, nil
	}
	r := p.R
	ny := gpusim.DefaultBlockThreads / r
	if ny < 1 {
		ny = 1
	}
	block := gpusim.Dim2(r, ny)
	grid := gpusim.Dim1(nb)
	h := p.X
	bits := h.BlockBits
	out := p.Out.Data
	xv := h.Vals
	order := h.Order()
	mode := p.Mode
	if _, err := dev.TryLaunch(grid, block, func(ctx gpusim.Ctx) {
		b := ctx.BlockIdx.X
		col := ctx.ThreadIdx.X
		outBase := int(h.BInds[mode][b]) << bits
		for x := h.BPtr[b] + int64(ctx.ThreadIdx.Y); x < h.BPtr[b+1]; x += int64(ctx.BlockDim.Y) {
			v := xv[x]
			for mo := 0; mo < order; mo++ {
				if mo == mode {
					continue
				}
				row := (int(h.BInds[mo][b]) << bits) + int(h.EInds[mo][x])
				v *= mats[mo].Data[row*r+col]
			}
			oi := (outBase + int(h.EInds[mode][x])) * r
			gpusim.AtomicAdd(&out[oi+col], v)
		}
	}); err != nil {
		return nil, err
	}
	return p.Out, nil
}

// executeBlocks processes tensor blocks [lo, hi) following Algorithm 2:
// per-block factor bases, 8-bit element indexing, R-wide inner loop,
// adding into out (the shared output or a worker's private copy) either
// plainly or atomically.
func (p *MttkrpHiCOOPlan) executeBlocks(lo, hi int, mats []*tensor.Matrix, out []tensor.Value, atomicUpd bool) {
	h := p.X
	r := p.R
	bits := h.BlockBits
	xv := h.Vals
	mode := p.Mode

	if h.Order() == 3 {
		m1, m2 := otherTwoModes(mode)
		bd, cd := mats[m1].Data, mats[m2].Data
		for b := lo; b < hi; b++ {
			// Block matrix bases Ab, Bb, Cb of Algorithm 2 line 3.
			aBase := int(h.BInds[mode][b]) << bits
			bBase := int(h.BInds[m1][b]) << bits
			cBase := int(h.BInds[m2][b]) << bits
			for x := h.BPtr[b]; x < h.BPtr[b+1]; x++ {
				v := xv[x]
				bo := (bBase + int(h.EInds[m1][x])) * r
				co := (cBase + int(h.EInds[m2][x])) * r
				oo := (aBase + int(h.EInds[mode][x])) * r
				if atomicUpd {
					for c := 0; c < r; c++ {
						parallel.AtomicAddFloat32(&out[oo+c], v*bd[bo+c]*cd[co+c])
					}
				} else {
					for c := 0; c < r; c++ {
						out[oo+c] += v * bd[bo+c] * cd[co+c]
					}
				}
			}
		}
		return
	}

	order := h.Order()
	prod := make([]tensor.Value, r)
	for b := lo; b < hi; b++ {
		outBase := int(h.BInds[mode][b]) << bits
		for x := h.BPtr[b]; x < h.BPtr[b+1]; x++ {
			v := xv[x]
			for c := 0; c < r; c++ {
				prod[c] = v
			}
			for mo := 0; mo < order; mo++ {
				if mo == mode {
					continue
				}
				row := (int(h.BInds[mo][b]) << bits) + int(h.EInds[mo][x])
				urow := mats[mo].Row(row)
				for c := 0; c < r; c++ {
					prod[c] *= urow[c]
				}
			}
			oo := (outBase + int(h.EInds[mode][x])) * r
			if atomicUpd {
				for c := 0; c < r; c++ {
					parallel.AtomicAddFloat32(&out[oo+c], prod[c])
				}
			} else {
				for c := 0; c < r; c++ {
					out[oo+c] += prod[c]
				}
			}
		}
	}
}

// FlopCount returns the floating-point work of one execution (N·M·R).
func (p *MttkrpHiCOOPlan) FlopCount() int64 {
	return int64(p.X.Order()) * int64(p.X.NNZ()) * int64(p.R)
}
