package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/hicoo"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

func TestTtvHandcrafted(t *testing.T) {
	// X(0,0,1)=2, X(0,0,3)=3, X(1,2,0)=4; v = [1,10,100,1000].
	x := tensor.NewCOO([]tensor.Index{2, 3, 4}, 3)
	x.AppendIdx3(0, 0, 1, 2)
	x.AppendIdx3(0, 0, 3, 3)
	x.AppendIdx3(1, 2, 0, 4)
	v := tensor.Vector{1, 10, 100, 1000}
	y, err := Ttv(x, v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if y.Order() != 2 || y.Dims[0] != 2 || y.Dims[1] != 3 {
		t.Fatalf("output shape %v", y.Dims)
	}
	if y.NNZ() != 2 {
		t.Fatalf("output nnz %d, want 2", y.NNZ())
	}
	if got, _ := y.At(0, 0); got != 2*10+3*1000 {
		t.Fatalf("y(0,0) = %v, want 3020", got)
	}
	if got, _ := y.At(1, 2); got != 4 {
		t.Fatalf("y(1,2) = %v, want 4", got)
	}
}

func TestTtvAgainstReferenceAllModes(t *testing.T) {
	for _, dims := range [][]tensor.Index{
		{20, 30, 40},
		{15, 10, 8, 12},
	} {
		x := randTensor(30, dims, 800)
		rng := rand.New(rand.NewSource(31))
		for mode := 0; mode < len(dims); mode++ {
			v := tensor.RandomVector(int(dims[mode]), rng)
			y, err := Ttv(x, v, mode)
			if err != nil {
				t.Fatal(err)
			}
			compareMaps(t, cooToF64Map(y), refTtv(x, v, mode), "Ttv")
		}
	}
}

func TestTtvParallelAndGPUAgree(t *testing.T) {
	x := randTensor(32, []tensor.Index{50, 60, 70}, 5000)
	rng := rand.New(rand.NewSource(33))
	for mode := 0; mode < 3; mode++ {
		p, err := PrepareTtv(x, mode)
		if err != nil {
			t.Fatal(err)
		}
		v := tensor.RandomVector(int(x.Dims[mode]), rng)
		seq, err := p.ExecuteSeq(v)
		if err != nil {
			t.Fatal(err)
		}
		want := append([]tensor.Value(nil), seq.Vals...)
		for _, sched := range []parallel.Schedule{parallel.Static, parallel.Dynamic, parallel.Guided} {
			if _, err := p.ExecuteOMP(v, parallel.Options{Schedule: sched}); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if p.Out.Vals[i] != want[i] {
					t.Fatalf("mode %d OMP(%v) fiber %d differs", mode, sched, i)
				}
			}
		}
		if _, err := p.ExecuteGPU(testDevice(), v); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if p.Out.Vals[i] != want[i] {
				t.Fatalf("mode %d GPU fiber %d differs", mode, i)
			}
		}
	}
}

func TestTtvHiCOOMatchesCOO(t *testing.T) {
	x := randTensor(34, []tensor.Index{40, 50, 60}, 2500)
	rng := rand.New(rand.NewSource(35))
	for mode := 0; mode < 3; mode++ {
		v := tensor.RandomVector(int(x.Dims[mode]), rng)
		hp, err := PrepareTtvHiCOO(x, mode, hicoo.DefaultBlockBits)
		if err != nil {
			t.Fatal(err)
		}
		hy, err := hp.ExecuteSeq(v)
		if err != nil {
			t.Fatal(err)
		}
		if err := hy.Validate(); err != nil {
			t.Fatalf("mode %d: HiCOO output invalid: %v", mode, err)
		}
		compareMaps(t, cooToF64Map(hy.ToCOO()), refTtv(x, v, mode), "HiCOO-Ttv")

		want := append([]tensor.Value(nil), hy.Vals...)
		if _, err := hp.ExecuteOMP(v, parallel.Options{Schedule: parallel.Dynamic}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if hp.Out.Vals[i] != want[i] {
				t.Fatalf("mode %d HiCOO OMP fiber %d differs", mode, i)
			}
		}
		if _, err := hp.ExecuteGPU(testDevice(), v); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if hp.Out.Vals[i] != want[i] {
				t.Fatalf("mode %d HiCOO GPU fiber %d differs", mode, i)
			}
		}
	}
}

func TestTtvOrder4HiCOO(t *testing.T) {
	x := randTensor(36, []tensor.Index{12, 14, 10, 16}, 900)
	rng := rand.New(rand.NewSource(37))
	for mode := 0; mode < 4; mode++ {
		v := tensor.RandomVector(int(x.Dims[mode]), rng)
		hp, err := PrepareTtvHiCOO(x, mode, 4)
		if err != nil {
			t.Fatal(err)
		}
		hy, err := hp.ExecuteSeq(v)
		if err != nil {
			t.Fatal(err)
		}
		compareMaps(t, cooToF64Map(hy.ToCOO()), refTtv(x, v, mode), "HiCOO-Ttv-4d")
	}
}

func TestTtvErrors(t *testing.T) {
	x := randTensor(38, []tensor.Index{5, 5, 5}, 20)
	if _, err := PrepareTtv(x, 3); err == nil {
		t.Fatal("expected out-of-range mode error")
	}
	if _, err := PrepareTtv(x, -1); err == nil {
		t.Fatal("expected negative mode error")
	}
	p, _ := PrepareTtv(x, 0)
	if _, err := p.ExecuteSeq(tensor.NewVector(3)); err == nil {
		t.Fatal("expected vector-length error")
	}
	if _, err := p.ExecuteOMP(tensor.NewVector(3), parallel.Options{}); err == nil {
		t.Fatal("expected vector-length error (OMP)")
	}
	if _, err := p.ExecuteGPU(testDevice(), tensor.NewVector(3)); err == nil {
		t.Fatal("expected vector-length error (GPU)")
	}
	vec := tensor.NewCOO([]tensor.Index{5}, 0)
	if _, err := PrepareTtv(vec, 0); err == nil {
		t.Fatal("expected order error for order-1 tensor")
	}
	if _, err := PrepareTtvHiCOO(x, 9, 4); err == nil {
		t.Fatal("expected HiCOO mode error")
	}
}

func TestTtvDoesNotModifyInput(t *testing.T) {
	x := randTensor(39, []tensor.Index{10, 10, 10}, 100)
	before := cooToF64Map(x)
	v := tensor.NewVector(10)
	if _, err := Ttv(x, v, 1); err != nil {
		t.Fatal(err)
	}
	after := cooToF64Map(x)
	for k, bv := range before {
		if after[k] != bv {
			t.Fatal("Ttv modified its input")
		}
	}
}

func TestTtvProperty(t *testing.T) {
	f := func(seed int64, modeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []tensor.Index{
			tensor.Index(rng.Intn(25) + 1),
			tensor.Index(rng.Intn(25) + 1),
			tensor.Index(rng.Intn(25) + 1),
		}
		mode := int(modeRaw) % 3
		x := tensor.RandomCOO(dims, rng.Intn(300)+1, rng)
		v := tensor.RandomVector(int(dims[mode]), rng)
		y, err := Ttv(x, v, mode)
		if err != nil {
			return false
		}
		want := refTtv(x, v, mode)
		got := cooToF64Map(y)
		for k, wv := range want {
			if !closeEnough(got[k], wv) {
				return false
			}
		}
		return len(got) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTtvFlopCount(t *testing.T) {
	x := randTensor(40, []tensor.Index{10, 10, 10}, 100)
	p, _ := PrepareTtv(x, 0)
	if p.FlopCount() != 2*int64(x.NNZ()) {
		t.Fatalf("FlopCount = %d, want %d", p.FlopCount(), 2*x.NNZ())
	}
}
