package core

import (
	"fmt"
	"sort"

	"repro/internal/gpusim"
	"repro/internal/hicoo"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TtvHiCOOPlan is the HiCOO tensor-times-vector kernel (§3.4.1). The
// input is represented in gHiCOO with the product mode left uncompressed,
// which "bypasses the blocking nature of HiCOO": fibers are contiguous
// and block-race-free, so the value computation is exactly the COO one.
// Preprocessing builds the order-(N-1) output directly in HiCOO format —
// one output non-zero per fiber, inheriting the fiber's block and element
// indices on the compressed modes.
type TtvHiCOOPlan struct {
	// X is the input in gHiCOO with only Mode uncompressed.
	X *hicoo.GHiCOO
	// Mode is the product mode n.
	Mode int
	// Fptr holds the fiber start offsets (MF+1 entries).
	Fptr []int64
	// FiberBlock maps each fiber to its gHiCOO block.
	FiberBlock []int32
	// Out is the preallocated order-(N-1) HiCOO output.
	Out *hicoo.HiCOO
	// LastStrategy records the reduction strategy the most recent
	// ExecuteOMP call resolved to (for harness reporting).
	LastStrategy parallel.Strategy
}

// PrepareTtvHiCOO converts the tensor to gHiCOO (compressing every mode
// except mode) and builds the HiCOO output skeleton.
func PrepareTtvHiCOO(x *tensor.COO, mode int, blockBits uint8) (*TtvHiCOOPlan, error) {
	if mode < 0 || mode >= x.Order() {
		return nil, fmt.Errorf("core: Ttv mode %d out of range for order-%d tensor", mode, x.Order())
	}
	if x.Order() < 2 {
		return nil, fmt.Errorf("core: Ttv needs an order >= 2 tensor")
	}
	g := hicoo.FromCOOExceptMode(x, mode, blockBits)
	fptr, fiberBlock := g.FiberPointers()
	mf := len(fptr) - 1

	// Output dims: drop the product mode. The compressed modes of X map
	// one-to-one onto the output's modes, in order.
	outDims := make([]tensor.Index, len(g.CompModes))
	for ci, n := range g.CompModes {
		outDims[ci] = x.Dims[n]
	}
	nc := len(g.CompModes)
	out := &hicoo.HiCOO{
		Dims:      outDims,
		BlockBits: blockBits,
		BInds:     make([][]tensor.Index, nc),
		EInds:     make([][]uint8, nc),
		Vals:      make([]tensor.Value, mf),
	}
	for ci := 0; ci < nc; ci++ {
		out.EInds[ci] = make([]uint8, mf)
	}
	// Fibers arrive grouped by block (FiberPointers walks blocks in
	// order), so output blocks are runs of equal FiberBlock.
	for f := 0; f < mf; f++ {
		if f == 0 || fiberBlock[f] != fiberBlock[f-1] {
			out.BPtr = append(out.BPtr, int64(f))
			b := int(fiberBlock[f])
			for ci := 0; ci < nc; ci++ {
				out.BInds[ci] = append(out.BInds[ci], g.BInds[ci][b])
			}
		}
		head := fptr[f]
		for ci := 0; ci < nc; ci++ {
			out.EInds[ci][f] = g.EInds[ci][head]
		}
	}
	out.BPtr = append(out.BPtr, int64(mf))
	return &TtvHiCOOPlan{X: g, Mode: mode, Fptr: fptr, FiberBlock: fiberBlock, Out: out}, nil
}

// NumFibers returns MF.
func (p *TtvHiCOOPlan) NumFibers() int { return len(p.Fptr) - 1 }

// ExecuteSeq runs the value computation sequentially.
func (p *TtvHiCOOPlan) ExecuteSeq(v tensor.Vector) (*hicoo.HiCOO, error) {
	if err := p.checkVec(v); err != nil {
		return nil, err
	}
	p.executeFibers(0, p.NumFibers(), v)
	return p.Out, nil
}

// ExecuteOMP runs the value computation exactly as the COO kernel does:
// owner-computes over independent fibers, or — when the strategy
// selector picks a racy balanced decomposition — over non-zeros with
// atomic or pooled-privatized per-fiber reduction.
func (p *TtvHiCOOPlan) ExecuteOMP(v tensor.Vector, opt parallel.Options) (*hicoo.HiCOO, error) {
	if err := p.checkVec(v); err != nil {
		return nil, err
	}
	m := p.X.NNZ()
	mf := p.NumFibers()
	st, threads := planReduction(opt, m, mf, m, mf)
	p.LastStrategy = st
	switch st {
	case parallel.Owner:
		if err := parallel.For(mf, opt, func(lo, hi, _ int) {
			p.executeFibers(lo, hi, v)
		}); err != nil {
			return nil, err
		}
	case parallel.Privatized:
		if err := privatizedReduce(m, threads, opt, p.Out.Vals, func(lo, hi int, priv []tensor.Value) {
			p.executeNNZ(lo, hi, v, priv, false)
		}); err != nil {
			return nil, err
		}
	default: // Atomic
		if err := zeroValues(p.Out.Vals, threads, opt.Ctx); err != nil {
			return nil, err
		}
		opt.Threads = threads
		atomicUpd := threads > 1
		if err := parallel.For(m, opt, func(lo, hi, _ int) {
			p.executeNNZ(lo, hi, v, p.Out.Vals, atomicUpd)
		}); err != nil {
			return nil, err
		}
	}
	return p.Out, nil
}

// executeNNZ is the segmented reduction over non-zeros [lo, hi): each
// contiguous fiber segment accumulates locally and flushes once, so only
// fibers split across workers contend on yv.
func (p *TtvHiCOOPlan) executeNNZ(lo, hi int, v tensor.Vector, yv []tensor.Value, atomicUpd bool) {
	fptr := p.Fptr
	kInd := p.X.UInds[0]
	xv := p.X.Vals
	f := sort.Search(len(fptr)-1, func(i int) bool { return fptr[i+1] > int64(lo) })
	for m := lo; m < hi; {
		for fptr[f+1] <= int64(m) {
			f++
		}
		end := hi
		if fptr[f+1] < int64(end) {
			end = int(fptr[f+1])
		}
		var acc tensor.Value
		for ; m < end; m++ {
			acc += xv[m] * v[kInd[m]]
		}
		if atomicUpd {
			parallel.AtomicAddFloat32(&yv[f], acc)
		} else {
			yv[f] += acc
		}
	}
}

// ExecuteGPU runs HiCOO-Ttv-GPU (same execution as COO per §3.4.2): one
// thread per fiber.
func (p *TtvHiCOOPlan) ExecuteGPU(dev *gpusim.Device, v tensor.Vector) (*hicoo.HiCOO, error) {
	if err := p.checkVec(v); err != nil {
		return nil, err
	}
	mf := p.NumFibers()
	if mf == 0 {
		return p.Out, nil
	}
	block := gpusim.Dim1(gpusim.DefaultBlockThreads)
	grid := gpusim.Grid1DFor(mf, block.X)
	fptr := p.Fptr
	kInd := p.X.UInds[0]
	xv := p.X.Vals
	yv := p.Out.Vals
	if _, err := dev.TryLaunch(grid, block, func(ctx gpusim.Ctx) {
		f := ctx.GlobalX()
		if f >= mf {
			return
		}
		var acc tensor.Value
		for m := fptr[f]; m < fptr[f+1]; m++ {
			acc += xv[m] * v[kInd[m]]
		}
		yv[f] = acc
	}); err != nil {
		return nil, err
	}
	return p.Out, nil
}

func (p *TtvHiCOOPlan) executeFibers(lo, hi int, v tensor.Vector) {
	fptr := p.Fptr
	kInd := p.X.UInds[0]
	xv := p.X.Vals
	yv := p.Out.Vals
	for f := lo; f < hi; f++ {
		var acc tensor.Value
		for m := fptr[f]; m < fptr[f+1]; m++ {
			acc += xv[m] * v[kInd[m]]
		}
		yv[f] = acc
	}
}

func (p *TtvHiCOOPlan) checkVec(v tensor.Vector) error {
	if len(v) != int(p.X.Dims[p.Mode]) {
		return fmt.Errorf("core: Ttv vector length %d, want mode-%d size %d", len(v), p.Mode, p.X.Dims[p.Mode])
	}
	return nil
}

// FlopCount returns the floating-point work of one execution (2M flops).
func (p *TtvHiCOOPlan) FlopCount() int64 { return 2 * int64(p.X.NNZ()) }
