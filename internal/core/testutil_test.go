package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/tensor"
)

// relTol is the comparison tolerance between implementations: float32
// reductions in different orders legitimately differ in the last bits.
const relTol = 2e-4

func testDevice() *gpusim.Device { return gpusim.NewDevice("test-gpu", 8) }

func randTensor(seed int64, dims []tensor.Index, nnz int) *tensor.COO {
	return tensor.RandomCOO(dims, nnz, rand.New(rand.NewSource(seed)))
}

func coordKey(idx []tensor.Index) string { return fmt.Sprint(idx) }

func closeEnough(a, b float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= relTol*math.Max(scale, 1)
}

// cooToF64Map flattens a COO tensor into coordinate→value.
func cooToF64Map(t *tensor.COO) map[string]float64 {
	m := make(map[string]float64, t.NNZ())
	idx := make([]tensor.Index, t.Order())
	for x := 0; x < t.NNZ(); x++ {
		v := t.Entry(x, idx)
		m[coordKey(idx)] += float64(v)
	}
	return m
}

func compareMaps(t *testing.T, got, want map[string]float64, label string) {
	t.Helper()
	for k, wv := range want {
		gv, ok := got[k]
		if !ok && math.Abs(wv) > relTol {
			t.Fatalf("%s: missing coordinate %s (want %v)", label, k, wv)
		}
		if !closeEnough(gv, wv) {
			t.Fatalf("%s: at %s got %v, want %v", label, k, gv, wv)
		}
	}
	for k, gv := range got {
		if _, ok := want[k]; !ok && math.Abs(gv) > relTol {
			t.Fatalf("%s: unexpected coordinate %s = %v", label, k, gv)
		}
	}
}

// refTtv computes X ×_n v with float64 accumulation, independently of the
// kernel implementations.
func refTtv(x *tensor.COO, v tensor.Vector, mode int) map[string]float64 {
	out := make(map[string]float64)
	idx := make([]tensor.Index, x.Order())
	rem := make([]tensor.Index, 0, x.Order()-1)
	for m := 0; m < x.NNZ(); m++ {
		val := x.Entry(m, idx)
		rem = rem[:0]
		for n := 0; n < x.Order(); n++ {
			if n != mode {
				rem = append(rem, idx[n])
			}
		}
		out[coordKey(rem)] += float64(val) * float64(v[idx[mode]])
	}
	return out
}

// refTtm computes X ×_n U with float64 accumulation, keyed by full output
// coordinates (including the dense mode).
func refTtm(x *tensor.COO, u *tensor.Matrix, mode int) map[string]float64 {
	out := make(map[string]float64)
	idx := make([]tensor.Index, x.Order())
	oidx := make([]tensor.Index, x.Order())
	for m := 0; m < x.NNZ(); m++ {
		val := x.Entry(m, idx)
		copy(oidx, idx)
		k := int(idx[mode])
		for r := 0; r < u.Cols; r++ {
			oidx[mode] = tensor.Index(r)
			out[coordKey(oidx)] += float64(val) * float64(u.At(k, r))
		}
	}
	return out
}

// refMttkrp computes the mode-n Mttkrp with float64 accumulation.
func refMttkrp(x *tensor.COO, mats []*tensor.Matrix, mode, r int) [][]float64 {
	rows := int(x.Dims[mode])
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, r)
	}
	idx := make([]tensor.Index, x.Order())
	for m := 0; m < x.NNZ(); m++ {
		val := float64(x.Entry(m, idx))
		for c := 0; c < r; c++ {
			p := val
			for mo := 0; mo < x.Order(); mo++ {
				if mo == mode {
					continue
				}
				p *= float64(mats[mo].At(int(idx[mo]), c))
			}
			out[idx[mode]][c] += p
		}
	}
	return out
}

func compareMatrix(t *testing.T, got *tensor.Matrix, want [][]float64, label string) {
	t.Helper()
	if got.Rows != len(want) {
		t.Fatalf("%s: rows = %d, want %d", label, got.Rows, len(want))
	}
	for i := 0; i < got.Rows; i++ {
		for c := 0; c < got.Cols; c++ {
			if !closeEnough(float64(got.At(i, c)), want[i][c]) {
				t.Fatalf("%s: (%d,%d) got %v, want %v", label, i, c, got.At(i, c), want[i][c])
			}
		}
	}
}

func randMats(seed int64, x *tensor.COO, r int) []*tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	mats := make([]*tensor.Matrix, x.Order())
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	return mats
}

// semiCOOToF64Map flattens an sCOO tensor including stored zeros dropped.
func semiCOOToF64Map(s *tensor.SemiCOO) map[string]float64 {
	return cooToF64Map(s.ToCOO())
}
