package core

import (
	"fmt"
	"sort"

	"repro/internal/gpusim"
	"repro/internal/hicoo"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// TtmHiCOOPlan is the HiCOO tensor-times-matrix kernel (§3.4.1): gHiCOO
// input with the product mode uncompressed, sHiCOO output with an
// R-length dense row per fiber, and the COO value computation.
type TtmHiCOOPlan struct {
	// X is the input in gHiCOO with only Mode uncompressed.
	X *hicoo.GHiCOO
	// Mode is the product mode n.
	Mode int
	// R is the matrix column count.
	R int
	// Fptr holds the fiber start offsets (MF+1 entries).
	Fptr []int64
	// Out is the preallocated sHiCOO output.
	Out *hicoo.SemiHiCOO
	// LastStrategy records the reduction strategy the most recent
	// ExecuteOMP call resolved to (for harness reporting).
	LastStrategy parallel.Strategy
}

// PrepareTtmHiCOO converts the tensor to gHiCOO (compressing every mode
// except mode) and builds the sHiCOO output skeleton.
func PrepareTtmHiCOO(x *tensor.COO, mode, r int, blockBits uint8) (*TtmHiCOOPlan, error) {
	if mode < 0 || mode >= x.Order() {
		return nil, fmt.Errorf("core: Ttm mode %d out of range for order-%d tensor", mode, x.Order())
	}
	if r <= 0 {
		return nil, fmt.Errorf("core: Ttm needs R >= 1, got %d", r)
	}
	g := hicoo.FromCOOExceptMode(x, mode, blockBits)
	fptr, fiberBlock := g.FiberPointers()
	mf := len(fptr) - 1

	outDims := append([]tensor.Index(nil), x.Dims...)
	outDims[mode] = tensor.Index(r)
	nc := len(g.CompModes)
	out := &hicoo.SemiHiCOO{
		Dims:       outDims,
		DenseModes: []int{mode},
		BlockBits:  g.BlockBits,
		BInds:      make([][]tensor.Index, nc),
		EInds:      make([][]uint8, nc),
		Vals:       make([]tensor.Value, mf*r),
	}
	for ci := 0; ci < nc; ci++ {
		out.EInds[ci] = make([]uint8, mf)
	}
	for f := 0; f < mf; f++ {
		if f == 0 || fiberBlock[f] != fiberBlock[f-1] {
			out.BPtr = append(out.BPtr, int64(f))
			b := int(fiberBlock[f])
			for ci := 0; ci < nc; ci++ {
				out.BInds[ci] = append(out.BInds[ci], g.BInds[ci][b])
			}
		}
		head := fptr[f]
		for ci := 0; ci < nc; ci++ {
			out.EInds[ci][f] = g.EInds[ci][head]
		}
	}
	out.BPtr = append(out.BPtr, int64(mf))
	return &TtmHiCOOPlan{X: g, Mode: mode, R: r, Fptr: fptr, Out: out}, nil
}

// NumFibers returns MF.
func (p *TtmHiCOOPlan) NumFibers() int { return len(p.Fptr) - 1 }

// ExecuteSeq runs the value computation sequentially.
func (p *TtmHiCOOPlan) ExecuteSeq(u *tensor.Matrix) (*hicoo.SemiHiCOO, error) {
	if err := p.checkMat(u); err != nil {
		return nil, err
	}
	p.executeFibers(0, p.NumFibers(), u)
	return p.Out, nil
}

// ExecuteOMP runs the value computation with the strategy-selected
// decomposition, exactly as the COO Ttm kernel: owner-computes over
// fibers, or balanced over non-zeros with atomic or pooled-privatized
// per-fiber reduction.
func (p *TtmHiCOOPlan) ExecuteOMP(u *tensor.Matrix, opt parallel.Options) (*hicoo.SemiHiCOO, error) {
	if err := p.checkMat(u); err != nil {
		return nil, err
	}
	m := p.X.NNZ()
	mf := p.NumFibers()
	st, threads := planReduction(opt, m, mf*p.R, m*p.R, mf)
	p.LastStrategy = st
	switch st {
	case parallel.Owner:
		if err := parallel.For(mf, opt, func(lo, hi, _ int) {
			p.executeFibers(lo, hi, u)
		}); err != nil {
			return nil, err
		}
	case parallel.Privatized:
		if err := privatizedReduce(m, threads, opt, p.Out.Vals, func(lo, hi int, priv []tensor.Value) {
			p.executeNNZ(lo, hi, u, priv, nil)
		}); err != nil {
			return nil, err
		}
	default: // Atomic
		if err := zeroValues(p.Out.Vals, threads, opt.Ctx); err != nil {
			return nil, err
		}
		opt.Threads = threads
		if threads > 1 {
			ws := parallel.SharedWorkspace()
			acc := ws.Set(threads, p.R)
			err := parallel.For(m, opt, func(lo, hi, w int) {
				p.executeNNZ(lo, hi, u, p.Out.Vals, acc.Bufs[w])
			})
			ws.PutSet(acc)
			if err != nil {
				return nil, err
			}
		} else {
			if err := parallel.For(m, opt, func(lo, hi, _ int) {
				p.executeNNZ(lo, hi, u, p.Out.Vals, nil)
			}); err != nil {
				return nil, err
			}
		}
	}
	return p.Out, nil
}

// executeNNZ is the segmented reduction over non-zeros [lo, hi) (see
// TtmPlan.executeNNZ): direct adds when acc is nil, per-segment local
// accumulation with one atomic flush otherwise.
func (p *TtmHiCOOPlan) executeNNZ(lo, hi int, u *tensor.Matrix, out []tensor.Value, acc []tensor.Value) {
	fptr := p.Fptr
	kInd := p.X.UInds[0]
	xv := p.X.Vals
	r := p.R
	ud := u.Data
	f := sort.Search(len(fptr)-1, func(i int) bool { return fptr[i+1] > int64(lo) })
	for m := lo; m < hi; {
		for fptr[f+1] <= int64(m) {
			f++
		}
		end := hi
		if fptr[f+1] < int64(end) {
			end = int(fptr[f+1])
		}
		if acc != nil {
			for c := range acc {
				acc[c] = 0
			}
			for ; m < end; m++ {
				v := xv[m]
				urow := ud[int(kInd[m])*r : int(kInd[m])*r+r]
				for c, uv := range urow {
					acc[c] += v * uv
				}
			}
			row := out[f*r : f*r+r]
			for c, a := range acc {
				if a != 0 {
					parallel.AtomicAddFloat32(&row[c], a)
				}
			}
		} else {
			row := out[f*r : f*r+r]
			for ; m < end; m++ {
				v := xv[m]
				urow := ud[int(kInd[m])*r : int(kInd[m])*r+r]
				for c, uv := range urow {
					row[c] += v * uv
				}
			}
		}
	}
}

// ExecuteGPU runs HiCOO-Ttm-GPU with the same geometry as the COO kernel:
// one block per fiber, x-threads over columns, y-threads over the fiber's
// non-zeros with atomic accumulation.
func (p *TtmHiCOOPlan) ExecuteGPU(dev *gpusim.Device, u *tensor.Matrix) (*hicoo.SemiHiCOO, error) {
	if err := p.checkMat(u); err != nil {
		return nil, err
	}
	mf := p.NumFibers()
	if mf == 0 {
		return p.Out, nil
	}
	r := p.R
	ny := gpusim.DefaultBlockThreads / r
	if ny < 1 {
		ny = 1
	}
	block := gpusim.Dim2(r, ny)
	grid := gpusim.Dim1(mf)
	fptr := p.Fptr
	kInd := p.X.UInds[0]
	xv := p.X.Vals
	out := p.Out.Vals
	ud := u.Data
	for i := range out {
		out[i] = 0
	}
	if _, err := dev.TryLaunch(grid, block, func(ctx gpusim.Ctx) {
		f := ctx.BlockIdx.X
		col := ctx.ThreadIdx.X
		var acc tensor.Value
		for m := fptr[f] + int64(ctx.ThreadIdx.Y); m < fptr[f+1]; m += int64(ctx.BlockDim.Y) {
			acc += xv[m] * ud[int(kInd[m])*r+col]
		}
		if acc != 0 {
			gpusim.AtomicAdd(&out[f*r+col], acc)
		}
	}); err != nil {
		return nil, err
	}
	return p.Out, nil
}

func (p *TtmHiCOOPlan) executeFibers(lo, hi int, u *tensor.Matrix) {
	fptr := p.Fptr
	kInd := p.X.UInds[0]
	xv := p.X.Vals
	r := p.R
	ud := u.Data
	for f := lo; f < hi; f++ {
		row := p.Out.Vals[f*r : (f+1)*r]
		for c := range row {
			row[c] = 0
		}
		for m := fptr[f]; m < fptr[f+1]; m++ {
			v := xv[m]
			urow := ud[int(kInd[m])*r : int(kInd[m])*r+r]
			for c, uv := range urow {
				row[c] += v * uv
			}
		}
	}
}

func (p *TtmHiCOOPlan) checkMat(u *tensor.Matrix) error {
	if u.Rows != int(p.X.Dims[p.Mode]) || u.Cols != p.R {
		return fmt.Errorf("core: Ttm matrix is %dx%d, want %dx%d", u.Rows, u.Cols, p.X.Dims[p.Mode], p.R)
	}
	return nil
}

// FlopCount returns the floating-point work of one execution (2MR flops).
func (p *TtmHiCOOPlan) FlopCount() int64 { return 2 * int64(p.X.NNZ()) * int64(p.R) }
