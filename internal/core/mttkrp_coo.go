package core

import (
	"fmt"

	"repro/internal/gpusim"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// MttkrpPlan is the prepared state of a COO Mttkrp kernel in a fixed mode
// (§2.5, §3.2). Unlike the other kernels Mttkrp needs no preprocessing
// (the paper times it without one); the plan only validates shapes and
// owns the dense output matrix Ã ∈ R^{I_n × R}.
type MttkrpPlan struct {
	// X is the input tensor in any non-zero order.
	X *tensor.COO
	// Mode is the Mttkrp mode n.
	Mode int
	// R is the factor-matrix column count.
	R int
	// Out is the dense output matrix, zeroed at the start of each Execute.
	Out *tensor.Matrix
	// LastStrategy records the reduction strategy the most recent
	// ExecuteOMP* call resolved to (for harness reporting).
	LastStrategy parallel.Strategy
}

// PrepareMttkrp validates the mode and allocates the output matrix.
func PrepareMttkrp(x *tensor.COO, mode, r int) (*MttkrpPlan, error) {
	if mode < 0 || mode >= x.Order() {
		return nil, fmt.Errorf("core: Mttkrp mode %d out of range for order-%d tensor", mode, x.Order())
	}
	if x.Order() < 2 {
		return nil, fmt.Errorf("core: Mttkrp needs an order >= 2 tensor")
	}
	if r <= 0 {
		return nil, fmt.Errorf("core: Mttkrp needs R >= 1, got %d", r)
	}
	return &MttkrpPlan{X: x, Mode: mode, R: r, Out: tensor.NewMatrix(int(x.Dims[mode]), r)}, nil
}

// checkMats validates the factor matrices: one per mode, mats[m] of shape
// Dims[m] × R. mats[Mode] participates only via its shape (its values are
// not read), matching the U~(n) update of Equation (5).
func (p *MttkrpPlan) checkMats(mats []*tensor.Matrix) error {
	if len(mats) != p.X.Order() {
		return fmt.Errorf("core: Mttkrp got %d factor matrices, want %d", len(mats), p.X.Order())
	}
	for m, u := range mats {
		if m == p.Mode {
			continue // output slot; may even be nil
		}
		if u == nil {
			return fmt.Errorf("core: Mttkrp factor matrix %d is nil", m)
		}
		if u.Rows != int(p.X.Dims[m]) || u.Cols != p.R {
			return fmt.Errorf("core: Mttkrp factor %d is %dx%d, want %dx%d", m, u.Rows, u.Cols, p.X.Dims[m], p.R)
		}
	}
	return nil
}

// ExecuteSeq runs the kernel sequentially: each row of Ã accumulates the
// non-zero value times the Hadamard product of the other modes' factor
// rows.
func (p *MttkrpPlan) ExecuteSeq(mats []*tensor.Matrix) (*tensor.Matrix, error) {
	if err := p.checkMats(mats); err != nil {
		return nil, err
	}
	p.Out.Zero()
	p.executeRange(0, p.X.NNZ(), mats, p.Out.Data, false)
	return p.Out, nil
}

// ExecuteOMP runs COO-Mttkrp-OMP: parallelized by non-zeros with the
// shared output matrix protected per Options.Strategy — "omp atomic"
// updates, or the privatization the paper's Observation 5 points to
// ([42]): each worker accumulates into a pooled private copy of Ã and
// the copies are reduced afterwards, trading memory (T×I_n×R) for
// atomic-free updates. Auto picks per call from the output-size×threads
// vs NNZ shape.
func (p *MttkrpPlan) ExecuteOMP(mats []*tensor.Matrix, opt parallel.Options) (*tensor.Matrix, error) {
	if err := p.checkMats(mats); err != nil {
		return nil, err
	}
	m := p.X.NNZ()
	st, threads := planReduction(opt, m, len(p.Out.Data), m*p.R, 0)
	p.LastStrategy = st
	opt.Threads = threads
	if st == parallel.Privatized {
		if err := privatizedReduce(m, threads, opt, p.Out.Data, func(lo, hi int, priv []tensor.Value) {
			p.executeRange(lo, hi, mats, priv, false)
		}); err != nil {
			return nil, err
		}
		return p.Out, nil
	}
	p.Out.Zero()
	atomicUpd := threads > 1
	if err := parallel.For(m, opt, func(lo, hi, _ int) {
		p.executeRange(lo, hi, mats, p.Out.Data, atomicUpd)
	}); err != nil {
		return nil, err
	}
	return p.Out, nil
}

// ExecuteOMPPrivatized forces the privatized strategy regardless of the
// adaptive selector (the explicit form benchmarks compare against).
func (p *MttkrpPlan) ExecuteOMPPrivatized(mats []*tensor.Matrix, opt parallel.Options) (*tensor.Matrix, error) {
	opt.Strategy = parallel.Privatized
	return p.ExecuteOMP(mats, opt)
}

// ExecuteGPU runs COO-Mttkrp-GPU following ParTI: a 1-D grid of 2-D thread
// blocks (x = matrix columns for coalescing, y = non-zeros) with atomicAdd
// on the output matrix (§3.2.2).
func (p *MttkrpPlan) ExecuteGPU(dev *gpusim.Device, mats []*tensor.Matrix) (*tensor.Matrix, error) {
	if err := p.checkMats(mats); err != nil {
		return nil, err
	}
	p.Out.Zero()
	m := p.X.NNZ()
	if m == 0 {
		return p.Out, nil
	}
	r := p.R
	ny := gpusim.DefaultBlockThreads / r
	if ny < 1 {
		ny = 1
	}
	block := gpusim.Dim2(r, ny)
	grid := gpusim.Grid1DFor(m, ny)
	out := p.Out.Data
	nInd := p.X.Inds[p.Mode]
	xv := p.X.Vals
	order := p.X.Order()

	if order == 3 {
		// Specialized third-order path, the shape the paper's Table 1
		// analyzes: Ã(i,r) += x · C(k,r) · B(j,r).
		m1, m2 := otherTwoModes(p.Mode)
		bInd, cInd := p.X.Inds[m1], p.X.Inds[m2]
		bd, cd := mats[m1].Data, mats[m2].Data
		if _, err := dev.TryLaunch(grid, block, func(ctx gpusim.Ctx) {
			x := ctx.BlockIdx.X*ctx.BlockDim.Y + ctx.ThreadIdx.Y
			if x >= m {
				return
			}
			col := ctx.ThreadIdx.X
			v := xv[x] * bd[int(bInd[x])*r+col] * cd[int(cInd[x])*r+col]
			gpusim.AtomicAdd(&out[int(nInd[x])*r+col], v)
		}); err != nil {
			return nil, err
		}
		return p.Out, nil
	}

	if _, err := dev.TryLaunch(grid, block, func(ctx gpusim.Ctx) {
		x := ctx.BlockIdx.X*ctx.BlockDim.Y + ctx.ThreadIdx.Y
		if x >= m {
			return
		}
		col := ctx.ThreadIdx.X
		v := xv[x]
		for mo := 0; mo < order; mo++ {
			if mo == p.Mode {
				continue
			}
			v *= mats[mo].Data[int(p.X.Inds[mo][x])*r+col]
		}
		gpusim.AtomicAdd(&out[int(nInd[x])*r+col], v)
	}); err != nil {
		return nil, err
	}
	return p.Out, nil
}

// executeRange processes non-zeros [lo, hi), adding into out (a Dims[n]×R
// row-major matrix) either plainly (single writer) or atomically (shared
// writers).
func (p *MttkrpPlan) executeRange(lo, hi int, mats []*tensor.Matrix, out []tensor.Value, atomicUpd bool) {
	r := p.R
	nInd := p.X.Inds[p.Mode]
	xv := p.X.Vals
	if p.X.Order() == 3 {
		m1, m2 := otherTwoModes(p.Mode)
		bInd, cInd := p.X.Inds[m1], p.X.Inds[m2]
		bd, cd := mats[m1].Data, mats[m2].Data
		for x := lo; x < hi; x++ {
			v := xv[x]
			bo := int(bInd[x]) * r
			co := int(cInd[x]) * r
			oo := int(nInd[x]) * r
			if atomicUpd {
				for c := 0; c < r; c++ {
					parallel.AtomicAddFloat32(&out[oo+c], v*bd[bo+c]*cd[co+c])
				}
			} else {
				for c := 0; c < r; c++ {
					out[oo+c] += v * bd[bo+c] * cd[co+c]
				}
			}
		}
		return
	}
	prod := make([]tensor.Value, r)
	for x := lo; x < hi; x++ {
		v := xv[x]
		for c := 0; c < r; c++ {
			prod[c] = v
		}
		for mo := 0; mo < p.X.Order(); mo++ {
			if mo == p.Mode {
				continue
			}
			row := mats[mo].Row(int(p.X.Inds[mo][x]))
			for c := 0; c < r; c++ {
				prod[c] *= row[c]
			}
		}
		oo := int(nInd[x]) * r
		if atomicUpd {
			for c := 0; c < r; c++ {
				parallel.AtomicAddFloat32(&out[oo+c], prod[c])
			}
		} else {
			for c := 0; c < r; c++ {
				out[oo+c] += prod[c]
			}
		}
	}
}

func otherTwoModes(mode int) (int, int) {
	switch mode {
	case 0:
		return 1, 2
	case 1:
		return 0, 2
	default:
		return 0, 1
	}
}

// FlopCount returns the floating-point work of one execution: N·M·R flops
// for an order-N tensor (3MR for third order, matching Table 1).
func (p *MttkrpPlan) FlopCount() int64 {
	return int64(p.X.Order()) * int64(p.X.NNZ()) * int64(p.R)
}

// Mttkrp is the convenience one-shot form: prepare and execute
// sequentially.
func Mttkrp(x *tensor.COO, mats []*tensor.Matrix, mode int) (*tensor.Matrix, error) {
	r := 0
	for m, u := range mats {
		if m != mode && u != nil {
			r = u.Cols
			break
		}
	}
	p, err := PrepareMttkrp(x, mode, r)
	if err != nil {
		return nil, err
	}
	return p.ExecuteSeq(mats)
}
