package core

import (
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// ttmSemiViaCOO is the reference: expand the semi-sparse tensor to COO,
// run the ordinary Ttm, and compare as coordinate maps.
func ttmSemiViaCOO(t *testing.T, x *tensor.SemiCOO, u *tensor.Matrix, mode int) map[string]float64 {
	t.Helper()
	coo := x.ToCOO()
	return refTtm(coo, u, mode)
}

func semiFromTtm(t *testing.T, seed int64, dims []tensor.Index, nnz, firstMode, r int) *tensor.SemiCOO {
	t.Helper()
	x := randTensor(seed, dims, nnz)
	u := tensor.NewMatrix(int(dims[firstMode]), r)
	u.Randomize(rand.New(rand.NewSource(seed + 1)))
	s, err := Ttm(x, u, firstMode)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTtmSemiMatchesCOOPath(t *testing.T) {
	// Build a semi-sparse tensor (one dense mode) via Ttm, then contract a
	// second mode with TtmSemi and check against the COO-expanded path.
	s := semiFromTtm(t, 100, []tensor.Index{15, 18, 12}, 400, 1, 5)
	rng := rand.New(rand.NewSource(101))
	for _, mode := range []int{0, 2} {
		u := tensor.NewMatrix(int(s.Dims[mode]), 4)
		u.Randomize(rng)
		got, err := TtmSemi(s, u, mode)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("mode %d output invalid: %v", mode, err)
		}
		compareMaps(t, semiCOOToF64Map(got), ttmSemiViaCOO(t, s, u, mode), "TtmSemi")
	}
}

func TestTtmSemiChainAllModes(t *testing.T) {
	// Contract every mode in sequence; after each step the result must
	// match the COO-expanded Ttm, and at the end no sparse modes remain.
	s := semiFromTtm(t, 102, []tensor.Index{10, 12, 8, 9}, 300, 0, 3)
	rng := rand.New(rand.NewSource(103))
	for mode := 1; mode < 4; mode++ {
		u := tensor.NewMatrix(int(s.Dims[mode]), 2+mode)
		u.Randomize(rng)
		want := ttmSemiViaCOO(t, s, u, mode)
		var err error
		s2, err := TtmSemi(s, u, mode)
		if err != nil {
			t.Fatal(err)
		}
		compareMaps(t, semiCOOToF64Map(s2), want, "TtmSemi chain")
		s = s2
	}
	if len(s.SparseModes()) != 0 {
		t.Fatalf("sparse modes remain: %v", s.SparseModes())
	}
	if s.NumFibers() != 1 {
		t.Fatalf("fully dense result has %d fibers", s.NumFibers())
	}
}

func TestTtmSemiOMPMatchesSeq(t *testing.T) {
	s := semiFromTtm(t, 104, []tensor.Index{30, 25, 20}, 2000, 2, 8)
	u := tensor.NewMatrix(int(s.Dims[0]), 6)
	u.Randomize(rand.New(rand.NewSource(105)))
	p, err := PrepareTtmSemi(s, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := p.ExecuteSeq(u)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]tensor.Value(nil), seq.Vals...)
	for _, sched := range []parallel.Schedule{parallel.Static, parallel.Dynamic, parallel.Guided} {
		if _, err := p.ExecuteOMP(u, parallel.Options{Schedule: sched}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if p.Out.Vals[i] != want[i] {
				t.Fatalf("OMP(%v) value %d differs", sched, i)
			}
		}
	}
}

func TestTtmSemiErrors(t *testing.T) {
	s := semiFromTtm(t, 106, []tensor.Index{8, 8, 8}, 50, 1, 3)
	if _, err := PrepareTtmSemi(s, 1, 4); err == nil {
		t.Fatal("expected already-dense error")
	}
	if _, err := PrepareTtmSemi(s, 5, 4); err == nil {
		t.Fatal("expected mode range error")
	}
	if _, err := PrepareTtmSemi(s, 0, 0); err == nil {
		t.Fatal("expected R error")
	}
	p, err := PrepareTtmSemi(s, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	bad := tensor.NewMatrix(3, 4)
	if _, err := p.ExecuteSeq(bad); err == nil {
		t.Fatal("expected matrix shape error")
	}
	if _, err := p.ExecuteOMP(bad, parallel.Options{}); err == nil {
		t.Fatal("expected matrix shape error (OMP)")
	}
}

func TestTtmSemiFlopCount(t *testing.T) {
	s := semiFromTtm(t, 107, []tensor.Index{8, 8, 8}, 50, 1, 3)
	p, err := PrepareTtmSemi(s, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.FlopCount() != 2*int64(len(s.Vals))*4 {
		t.Fatalf("FlopCount = %d", p.FlopCount())
	}
}

func TestTtmSemiGroupsFibers(t *testing.T) {
	// Two input fibers sharing their non-product sparse coordinates must
	// collapse into one output fiber.
	s := tensor.NewSemiCOO([]tensor.Index{4, 4, 3}, []int{2}, 2)
	f0 := s.AppendFiber([]tensor.Index{1, 0}) // (i=1, j=0)
	copy(s.FiberVals(f0), []tensor.Value{1, 2, 3})
	f1 := s.AppendFiber([]tensor.Index{1, 2}) // (i=1, j=2)
	copy(s.FiberVals(f1), []tensor.Value{4, 5, 6})
	u := tensor.NewMatrix(4, 2) // contract mode 1 (j)
	u.Set(0, 0, 1)
	u.Set(0, 1, 2)
	u.Set(2, 0, 10)
	u.Set(2, 1, 20)
	out, err := TtmSemi(s, u, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumFibers() != 1 {
		t.Fatalf("fibers = %d, want 1 (grouped)", out.NumFibers())
	}
	// Output dense modes are {1, 2} with sizes {2, 3}; layout (r, k).
	// out(r, k) = Σ_j x(1, j, k) U(j, r):
	// r=0: k-row = 1*[1,2,3] + 10*[4,5,6] = [41,52,63]
	// r=1: 2*[1,2,3] + 20*[4,5,6] = [82,104,126]
	want := []tensor.Value{41, 52, 63, 82, 104, 126}
	got := out.FiberVals(0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dense block = %v, want %v", got, want)
		}
	}
}
