package core

import (
	"context"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// reduce.go is the shared reduction runtime of the OMP kernels: every
// Execute with a shared output (Mttkrp, and the racy nnz/input-parallel
// decompositions of Ttv and Ttm) resolves its worker count once, asks the
// strategy selector whether to run owner-computes, atomic, or privatized,
// and draws privatization scratch from the pooled workspace instead of
// allocating per call.

// planReduction resolves the worker count for a loop of loopN iterations
// and the update strategy for the given reduction shape. The returned
// thread count MUST be passed back to every parallel.For of the
// invocation via Options.Threads: it is the single NumThreads read of the
// call, so per-worker state stays consistent under SetNumThreads churn.
func planReduction(opt parallel.Options, loopN, outElems, updates, ownerUnits int) (parallel.Strategy, int) {
	threads := parallel.ResolveThreads(loopN, opt)
	st := parallel.Choose(opt.Strategy, parallel.ReductionShape{
		OutElems:   outElems,
		Updates:    updates,
		OwnerUnits: ownerUnits,
		Threads:    threads,
	})
	return st, threads
}

// privatizedReduce runs body over [0, n) with each worker accumulating
// into a pooled private copy of out, then merges the copies into out in
// parallel. The privates arrive zeroed and go back to the shared
// workspace afterwards, so steady-state calls allocate no scratch. A
// cancelled loop (Options.Ctx) skips the merge — the privates hold
// partial sums — and surfaces ErrDeadline to the kernel.
func privatizedReduce(n, threads int, opt parallel.Options, out []tensor.Value, body func(lo, hi int, priv []tensor.Value)) error {
	ws := parallel.SharedWorkspace()
	set := ws.Set(threads, len(out))
	opt.Threads = threads
	err := parallel.For(n, opt, func(lo, hi, w int) {
		body(lo, hi, set.Bufs[w])
	})
	if err == nil {
		err = mergePrivates(out, set.Bufs, threads, opt.Ctx)
	}
	ws.PutSet(set)
	return err
}

// mergePrivates overwrites out with the element-wise sum of the private
// copies, parallelized over the output.
func mergePrivates(out []tensor.Value, privs [][]float32, threads int, ctx context.Context) error {
	return parallel.For(len(out), parallel.Options{Schedule: parallel.Static, Threads: threads, Ctx: ctx}, func(lo, hi, _ int) {
		copy(out[lo:hi], privs[0][lo:hi])
		for _, p := range privs[1:] {
			src := p[lo:hi]
			dst := out[lo:hi]
			for i := range dst {
				dst[i] += src[i]
			}
		}
	})
}

// zeroValues zeroes out in parallel (the atomic strategy's preamble for
// scatter-accumulated outputs).
func zeroValues(out []tensor.Value, threads int, ctx context.Context) error {
	return parallel.For(len(out), parallel.Options{Schedule: parallel.Static, Threads: threads, Ctx: ctx}, func(lo, hi, _ int) {
		dst := out[lo:hi]
		for i := range dst {
			dst[i] = 0
		}
	})
}
