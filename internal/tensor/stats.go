package tensor

import (
	"math"
	"sort"
)

// FiberStats summarizes the mode-n fiber structure of a tensor. The
// benchmark's Ttv/Ttm kernels parallelize over fibers, so fiber-length
// skew drives their load imbalance; Mttkrp atomic contention scales with
// the collision density of the output mode.
type FiberStats struct {
	Mode      int     // the mode the fibers run along
	NumFibers int     // MF in the paper's notation
	MinLen    int     // shortest fiber
	MaxLen    int     // longest fiber
	MeanLen   float64 // M / MF
	CV        float64 // coefficient of variation of fiber lengths
	Imbalance float64 // MaxLen / MeanLen; 1.0 is perfectly balanced
}

// ComputeFiberStats sorts (a clone of) the tensor for mode n and measures
// its fiber-length distribution. The input tensor is not modified.
func ComputeFiberStats(t *COO, n int) FiberStats {
	work := t
	if !t.IsSortedBy(ModeOrder(t.Order(), n)) {
		work = t.Clone()
		work.SortForMode(n)
	}
	fptr := work.FiberPointers(n)
	return fiberStatsFromPtr(fptr, n)
}

func fiberStatsFromPtr(fptr []int64, mode int) FiberStats {
	nf := len(fptr) - 1
	st := FiberStats{Mode: mode, NumFibers: nf}
	if nf <= 0 {
		return st
	}
	total := fptr[nf] - fptr[0]
	st.MeanLen = float64(total) / float64(nf)
	st.MinLen = int(fptr[1] - fptr[0])
	var sumSq float64
	for f := 0; f < nf; f++ {
		l := int(fptr[f+1] - fptr[f])
		if l < st.MinLen {
			st.MinLen = l
		}
		if l > st.MaxLen {
			st.MaxLen = l
		}
		d := float64(l) - st.MeanLen
		sumSq += d * d
	}
	if st.MeanLen > 0 {
		st.CV = math.Sqrt(sumSq/float64(nf)) / st.MeanLen
		st.Imbalance = float64(st.MaxLen) / st.MeanLen
	}
	return st
}

// ModeCollisions returns M / D_n where D_n is the number of distinct
// indices appearing in mode n: the average number of non-zeros that write
// the same output row in a mode-n Mttkrp. Values near 1 mean nearly
// collision-free atomics; large values mean heavy contention.
func ModeCollisions(t *COO, n int) float64 {
	if t.NNZ() == 0 {
		return 0
	}
	distinct := DistinctModeIndices(t, n)
	return float64(t.NNZ()) / float64(distinct)
}

// DistinctModeIndices counts the distinct coordinates used in mode n.
func DistinctModeIndices(t *COO, n int) int {
	ind := t.Inds[n]
	if len(ind) == 0 {
		return 0
	}
	sorted := append([]Index(nil), ind...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	d := 1
	for i := 1; i < len(sorted); i++ {
		if sorted[i] != sorted[i-1] {
			d++
		}
	}
	return d
}

// AbsDiff returns the largest absolute element-wise difference between two
// tensors viewed as coordinate→value maps (so ordering differences do not
// matter). Missing coordinates compare against zero. Intended for tests.
func AbsDiff(a, b *COO) float64 {
	am, bm := a.ToMap(), b.ToMap()
	var worst float64
	for k, av := range am {
		d := math.Abs(float64(av) - float64(bm[k]))
		if d > worst {
			worst = d
		}
	}
	for k, bv := range bm {
		if _, ok := am[k]; !ok {
			d := math.Abs(float64(bv))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}
