package tensor

import (
	"fmt"
	"time"
)

// LoadStats reports the throughput of one tensor load, the ingest-side
// counterpart of the kernel GFLOPS metrics: loader speed is a
// first-class concern for sparse-tensor pipelines once inputs reach the
// paper's 100M-non-zero scale.
type LoadStats struct {
	// Path is the file the tensor was loaded from.
	Path string
	// Format is the detected on-disk format: "pstb-v1", "pstb-v2",
	// "tns", or "tns.gz".
	Format string
	// Bytes is the on-disk input size (compressed size for .tns.gz).
	Bytes int64
	// Order and NNZ describe the loaded tensor.
	Order int
	NNZ   int
	// Elapsed is the wall time of the load, parsing included.
	Elapsed time.Duration
}

// MBPerSec returns the load throughput in decimal megabytes per second.
func (s LoadStats) MBPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.Bytes) / 1e6 / s.Elapsed.Seconds()
}

// NNZPerSec returns the load throughput in non-zeros per second.
func (s LoadStats) NNZPerSec() float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	return float64(s.NNZ) / s.Elapsed.Seconds()
}

// String formats the stats as a one-line human-readable summary.
func (s LoadStats) String() string {
	return fmt.Sprintf("%s: %.2f MB, %d nnz in %v (%.1f MB/s, %.2fM nnz/s)",
		s.Format, float64(s.Bytes)/1e6, s.NNZ,
		s.Elapsed.Round(time.Microsecond), s.MBPerSec(), s.NNZPerSec()/1e6)
}
