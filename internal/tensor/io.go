package tensor

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadTNS parses the FROSTT ".tns" text format: one non-zero per line as
// whitespace-separated 1-based coordinates followed by the value. Lines
// that are empty or start with '#' are skipped. Mode sizes are inferred
// as the maximum coordinate per mode (FROSTT files carry no header).
//
// The whole stream is buffered in memory so large inputs can be parsed
// chunk-parallel; see ParseTNS.
func ReadTNS(r io.Reader) (*COO, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("tns: %v", err)
	}
	return ParseTNS(data)
}

// ReadTNSFile reads a .tns file from disk; files ending in ".gz" (the
// form FROSTT distributes) are decompressed transparently.
func ReadTNSFile(path string) (*COO, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("tns: %s: %v", path, err)
		}
		text, err := io.ReadAll(gz)
		if err != nil {
			return nil, fmt.Errorf("tns: %s: %v", path, err)
		}
		if err := gz.Close(); err != nil {
			return nil, fmt.Errorf("tns: %s: %v", path, err)
		}
		return ParseTNS(text)
	}
	return ParseTNS(data)
}

// WriteTNS emits the tensor in FROSTT .tns text format with 1-based
// coordinates. Values are formatted with the shortest decimal string
// that round-trips through float32 ('g', precision -1, bitSize 32), so
// write→read reproduces every value bit-exactly; %g-style fixed
// precision would truncate e.g. 0.30000001 to 0.3.
func WriteTNS(w io.Writer, t *COO) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	line := make([]byte, 0, 64)
	m := t.NNZ()
	for x := 0; x < m; x++ {
		line = line[:0]
		for n := 0; n < t.Order(); n++ {
			line = strconv.AppendUint(line, uint64(t.Inds[n][x])+1, 10)
			line = append(line, ' ')
		}
		line = strconv.AppendFloat(line, float64(t.Vals[x]), 'g', -1, 32)
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTNSFile writes a .tns file to disk, gzip-compressed when the path
// ends in ".gz".
func WriteTNSFile(path string, t *COO) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		if err := WriteTNS(gz, t); err != nil {
			gz.Close()
			f.Close()
			return err
		}
		if err := gz.Close(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := WriteTNS(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
