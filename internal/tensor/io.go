package tensor

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadTNS parses the FROSTT ".tns" text format: one non-zero per line as
// whitespace-separated 1-based coordinates followed by the value. Lines
// that are empty or start with '#' are skipped. Mode sizes are inferred
// as the maximum coordinate per mode unless every line agrees on a
// declared size (FROSTT files carry no header).
func ReadTNS(r io.Reader) (*COO, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	var (
		order int
		inds  [][]Index
		vals  []Value
		dims  []Index
		line  int
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if order == 0 {
			order = len(fields) - 1
			if order < 1 {
				return nil, fmt.Errorf("tns: line %d: need at least one coordinate and a value", line)
			}
			inds = make([][]Index, order)
			dims = make([]Index, order)
		}
		if len(fields) != order+1 {
			return nil, fmt.Errorf("tns: line %d: %d fields, want %d", line, len(fields), order+1)
		}
		for n := 0; n < order; n++ {
			u, err := strconv.ParseUint(fields[n], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("tns: line %d: bad coordinate %q: %v", line, fields[n], err)
			}
			if u == 0 {
				return nil, fmt.Errorf("tns: line %d: coordinates are 1-based, got 0", line)
			}
			i := Index(u - 1)
			inds[n] = append(inds[n], i)
			if i+1 > dims[n] {
				dims[n] = i + 1
			}
		}
		v, err := strconv.ParseFloat(fields[order], 32)
		if err != nil {
			return nil, fmt.Errorf("tns: line %d: bad value %q: %v", line, fields[order], err)
		}
		vals = append(vals, Value(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tns: %v", err)
	}
	if order == 0 {
		return nil, fmt.Errorf("tns: empty input")
	}
	return &COO{Dims: dims, Inds: inds, Vals: vals}, nil
}

// ReadTNSFile reads a .tns file from disk; files ending in ".gz" (the
// form FROSTT distributes) are decompressed transparently.
func ReadTNSFile(path string) (*COO, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("tns: %s: %v", path, err)
		}
		defer gz.Close()
		return ReadTNS(gz)
	}
	return ReadTNS(f)
}

// WriteTNS emits the tensor in FROSTT .tns text format with 1-based
// coordinates.
func WriteTNS(w io.Writer, t *COO) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	m := t.NNZ()
	for x := 0; x < m; x++ {
		for n := 0; n < t.Order(); n++ {
			if _, err := fmt.Fprintf(bw, "%d ", t.Inds[n][x]+1); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(bw, "%g\n", t.Vals[x]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteTNSFile writes a .tns file to disk, gzip-compressed when the path
// ends in ".gz".
func WriteTNSFile(path string, t *COO) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		if err := WriteTNS(gz, t); err != nil {
			gz.Close()
			f.Close()
			return err
		}
		if err := gz.Close(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := WriteTNS(f, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
