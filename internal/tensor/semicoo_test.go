package tensor

import (
	"math/rand"
	"testing"
)

func TestSemiCOOBasics(t *testing.T) {
	// 3x4x5 tensor with mode 1 dense.
	s := NewSemiCOO([]Index{3, 4, 5}, []int{1}, 2)
	if s.Order() != 3 {
		t.Fatalf("Order = %d, want 3", s.Order())
	}
	if s.DenseSize() != 4 {
		t.Fatalf("DenseSize = %d, want 4", s.DenseSize())
	}
	sm := s.SparseModes()
	if len(sm) != 2 || sm[0] != 0 || sm[1] != 2 {
		t.Fatalf("SparseModes = %v, want [0 2]", sm)
	}
	if !s.IsDenseMode(1) || s.IsDenseMode(0) || s.IsDenseMode(2) {
		t.Fatal("IsDenseMode wrong")
	}
	f := s.AppendFiber([]Index{1, 3})
	if f != 0 || s.NumFibers() != 1 {
		t.Fatalf("AppendFiber returned %d, NumFibers=%d", f, s.NumFibers())
	}
	vals := s.FiberVals(0)
	if len(vals) != 4 {
		t.Fatalf("FiberVals length %d, want 4", len(vals))
	}
	vals[2] = 7
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := s.StorageBytes(); got != 4*2*1+4*4 {
		t.Fatalf("StorageBytes = %d, want 24", got)
	}
}

func TestSemiCOOToCOO(t *testing.T) {
	s := NewSemiCOO([]Index{2, 3, 2}, []int{1}, 2)
	f0 := s.AppendFiber([]Index{0, 1})
	copy(s.FiberVals(f0), []Value{1, 0, 2})
	f1 := s.AppendFiber([]Index{1, 0})
	copy(s.FiberVals(f1), []Value{0, 0, 5})
	c := s.ToCOO()
	if c.NNZ() != 3 {
		t.Fatalf("ToCOO NNZ = %d, want 3 (zeros dropped)", c.NNZ())
	}
	checks := []struct {
		i, j, k Index
		v       Value
	}{{0, 0, 1, 1}, {0, 2, 1, 2}, {1, 2, 0, 5}}
	for _, c2 := range checks {
		if v, ok := c.At(c2.i, c2.j, c2.k); !ok || v != c2.v {
			t.Fatalf("At(%d,%d,%d) = %v,%v want %v,true", c2.i, c2.j, c2.k, v, ok, c2.v)
		}
	}
}

func TestSemiCOOMultipleDenseModes(t *testing.T) {
	s := NewSemiCOO([]Index{3, 2, 2}, []int{1, 2}, 1)
	if s.DenseSize() != 4 {
		t.Fatalf("DenseSize = %d, want 4", s.DenseSize())
	}
	f := s.AppendFiber([]Index{2})
	// Row-major dense layout over modes (1,2): offsets (j,k) = j*2+k.
	copy(s.FiberVals(f), []Value{10, 11, 12, 13})
	c := s.ToCOO()
	if v, ok := c.At(2, 1, 0); !ok || v != 12 {
		t.Fatalf("At(2,1,0) = %v, want 12", v)
	}
	if v, ok := c.At(2, 0, 1); !ok || v != 11 {
		t.Fatalf("At(2,0,1) = %v, want 11", v)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSemiCOOValidateCatchesErrors(t *testing.T) {
	s := NewSemiCOO([]Index{3, 4, 5}, []int{1}, 1)
	s.AppendFiber([]Index{1, 2})
	s.Inds[0][0] = 99
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range sparse index")
	}
	s.Inds[0][0] = 1
	s.Vals = s.Vals[:2]
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted truncated values")
	}
}

func TestSemiCOODenseModesMustAscend(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-ascending dense modes")
		}
	}()
	NewSemiCOO([]Index{2, 2, 2}, []int{2, 1}, 0)
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At roundtrip failed")
	}
	r := m.Row(1)
	if len(r) != 4 || r[2] != 5 {
		t.Fatalf("Row = %v", r)
	}
	m.Fill(2)
	if m.At(0, 0) != 2 || m.At(2, 3) != 2 {
		t.Fatal("Fill failed")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliased storage")
	}
	m.Zero()
	if m.At(2, 3) != 0 {
		t.Fatal("Zero failed")
	}
	if m.StorageBytes() != 48 {
		t.Fatalf("StorageBytes = %d, want 48", m.StorageBytes())
	}
	m.Randomize(rand.New(rand.NewSource(1)))
	var sum Value
	for _, v := range m.Data {
		if v < 0 || v >= 1 {
			t.Fatalf("Randomize out of range: %v", v)
		}
		sum += v
	}
	if sum == 0 {
		t.Fatal("Randomize produced all zeros")
	}
}

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if d := v.Dot(w); d != 32 {
		t.Fatalf("Dot = %v, want 32", d)
	}
	if n := (Vector{3, 4}).Norm2(); n != 5 {
		t.Fatalf("Norm2 = %v, want 5", n)
	}
	c := v.Clone()
	c.Scale(2)
	if c[0] != 2 || v[0] != 1 {
		t.Fatal("Scale/Clone interaction wrong")
	}
	rv := RandomVector(10, rand.New(rand.NewSource(2)))
	if len(rv) != 10 {
		t.Fatal("RandomVector length wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dot with mismatched lengths should panic")
		}
	}()
	v.Dot(Vector{1})
}
