package tensor

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestTNSGzipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tns.gz")
	rng := rand.New(rand.NewSource(77))
	x := RandomCOO([]Index{30, 30, 30}, 500, rng)
	if err := WriteTNSFile(path, x); err != nil {
		t.Fatal(err)
	}
	// The file must actually be gzip (magic bytes 1f 8b).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("output is not gzip-compressed")
	}
	y, err := ReadTNSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := AbsDiff(x, y); d > 1e-6 {
		t.Fatalf("gzip roundtrip diff %v", d)
	}
}

func TestReadTNSFileRejectsCorruptGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.tns.gz")
	if err := os.WriteFile(path, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTNSFile(path); err == nil {
		t.Fatal("expected gzip error")
	}
}
