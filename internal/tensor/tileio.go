package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strings"
)

// PSTB v3: the tiled layout for out-of-core streaming. A v3 file is a
// v2 file whose payload has been split into independently checksummed
// tiles — contiguous non-zero ranges of the naturally sorted tensor —
// described by a directory placed before the data, so a reader can
// fetch any tile with one ReadAt and never materialize the full COO:
//
//	prologue: magic "PSTB" | u8 3 | u8 order | u16 flags=0 | u32 headerLen
//	header  (headerLen = 24+4*order bytes):
//	        u64 nnz | u32 dims[order] | u64 payloadLen |
//	        u32 tileCount | u32 targetTileNNZ
//	u32 headerCRC — CRC32C over prologue+header
//	directory (tileCount entries × (28+8*order) bytes):
//	        u64 start | u32 count | u64 offset | u32 length | u32 tileCRC |
//	        u32 boxLo[order] | u32 boxHi[order]
//	u32 dirCRC — CRC32C over the directory bytes
//	tile payloads, contiguous and in directory order
//	        (each: u32 inds[order][count] | f32 vals[count])
//
// start is the tile's first non-zero position in the sorted tensor,
// offset is the absolute file offset of its payload, and boxLo/boxHi
// are the inclusive per-mode coordinate bounds of the tile's entries
// (the sentinel lo=0xFFFFFFFF, hi=0 marks an empty tile). Tiles
// partition the non-zeros in order: a sequential read of every tile
// reconstructs exactly the v2 payload of the sorted tensor.
const (
	// DefaultTileNNZ is the writer's default non-zeros per tile: with
	// an order-3 tensor this is a 4 MiB tile, large enough to amortize
	// per-tile overheads and small enough that a double-buffered
	// streaming budget stays in tens of megabytes.
	DefaultTileNNZ = 1 << 18

	// maxBinTiles is the sanity cap on the declared tile count, the
	// directory analog of maxBinNNZ.
	maxBinTiles = 1 << 24

	// emptyBoxLo is the boxLo sentinel of a tile with no entries.
	emptyBoxLo = ^Index(0)
)

// TileInfo is one directory entry of a PSTB v3 file.
type TileInfo struct {
	// Start is the tile's first non-zero position in the sorted tensor.
	Start uint64
	// Count is the number of non-zeros stored in the tile.
	Count uint32
	// Offset is the absolute file offset of the tile payload.
	Offset uint64
	// Bytes is the payload length: 4*(order+1)*Count.
	Bytes uint32
	// CRC is the CRC32C of the tile payload.
	CRC uint32
	// BoxLo and BoxHi are the inclusive per-mode coordinate bounds of
	// the tile's entries; an empty tile carries BoxLo=0xFFFFFFFF,
	// BoxHi=0 (lo > hi, an impossible box).
	BoxLo, BoxHi []Index
}

// Empty reports whether the tile holds no entries.
func (ti *TileInfo) Empty() bool { return ti.Count == 0 }

// tileDirEntryLen is the encoded size of one directory entry.
func tileDirEntryLen(order int) int { return 28 + 8*order }

// WriteBinaryTiled emits the tensor in the PSTB v3 tiled format with
// at most tileNNZ non-zeros per tile (tileNNZ <= 0 selects
// DefaultTileNNZ). The payload is written in natural sort order — a
// clone is sorted if t is not already — so tiles are coordinate-
// contiguous ranges with tight bounding boxes.
func WriteBinaryTiled(w io.Writer, t *COO, tileNNZ int) error {
	if tileNNZ <= 0 {
		tileNNZ = DefaultTileNNZ
	}
	nnz := uint64(t.NNZ())
	bounds := make([]uint64, 0, nnz/uint64(tileNNZ)+2)
	for at := uint64(0); at < nnz; at += uint64(tileNNZ) {
		bounds = append(bounds, at)
	}
	bounds = append(bounds, nnz)
	return writeBinaryTiled(w, t, uint32(tileNNZ), bounds)
}

// WriteFileTiled stores t at path (which must end in .bten) in the
// PSTB v3 tiled layout.
func WriteFileTiled(path string, t *COO, tileNNZ int) error {
	if !strings.HasSuffix(path, ".bten") {
		return fmt.Errorf("tensor: %s: tiled output requires a .bten path", path)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBinaryTiled(f, t, tileNNZ); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeBinaryTiled writes the v3 layout with explicit tile bounds:
// bounds[i]..bounds[i+1] is tile i's non-zero range (bounds must start
// at 0, end at nnz, and be non-decreasing — equal neighbors produce an
// empty tile, which the format permits and the reader tolerates).
func writeBinaryTiled(w io.Writer, t *COO, targetTileNNZ uint32, bounds []uint64) error {
	order := t.Order()
	if order < 1 || order > 255 {
		return fmt.Errorf("tensor: order %d outside binary format range [1,255]", order)
	}
	nnz := uint64(t.NNZ())
	if len(bounds) < 1 || bounds[0] != 0 || bounds[len(bounds)-1] != nnz {
		return fmt.Errorf("tensor: tile bounds must span [0,%d]", nnz)
	}
	tiles := len(bounds) - 1
	if tiles > maxBinTiles {
		return fmt.Errorf("tensor: %d tiles exceeds sanity limit", tiles)
	}
	xs := t
	if !xs.IsSortedBy(naturalOrder(order)) {
		xs = t.Clone()
		xs.SortNatural()
	}

	scratch, put := acquireScratch(uint64(order+1) * 4 * nnz)
	defer put()
	bw := bufio.NewWriterSize(w, len(scratch))

	headerLen := uint32(24 + 4*order)
	payloadLen := uint64(order+1) * 4 * nnz
	dirLen := tiles * tileDirEntryLen(order)
	dataStart := uint64(12) + uint64(headerLen) + 4 + uint64(dirLen) + 4

	// Prologue + header, checksummed together like v2.
	hdr := make([]byte, 12+headerLen)
	copy(hdr[0:4], binMagic)
	hdr[4] = binVersion3
	hdr[5] = byte(order)
	binary.LittleEndian.PutUint16(hdr[6:8], 0) // flags, reserved
	binary.LittleEndian.PutUint32(hdr[8:12], headerLen)
	binary.LittleEndian.PutUint64(hdr[12:20], nnz)
	for n := 0; n < order; n++ {
		binary.LittleEndian.PutUint32(hdr[20+4*n:], xs.Dims[n])
	}
	binary.LittleEndian.PutUint64(hdr[20+4*order:], payloadLen)
	binary.LittleEndian.PutUint32(hdr[28+4*order:], uint32(tiles))
	binary.LittleEndian.PutUint32(hdr[32+4*order:], targetTileNNZ)
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	if err := writeU32(bw, crc32.Checksum(hdr, castagnoli)); err != nil {
		return err
	}

	// Directory. Per-tile payload CRCs are computed in a first pass
	// over the data (encode-to-scratch without writing), so the writer
	// never buffers a tile, let alone the payload.
	dir := make([]byte, dirLen)
	off := dataStart
	for i := 0; i < tiles; i++ {
		lo, hi := bounds[i], bounds[i+1]
		if hi < lo {
			return fmt.Errorf("tensor: tile %d bounds [%d,%d) are inverted", i, lo, hi)
		}
		cnt := hi - lo
		length := uint64(order+1) * 4 * cnt
		if cnt > math.MaxUint32 || length > math.MaxUint32 {
			return fmt.Errorf("tensor: tile %d holds %d non-zeros, exceeding the per-tile limit", i, cnt)
		}
		crc := crc32.New(castagnoli)
		for n := 0; n < order; n++ {
			if err := writeU32Chunked(crc, xs.Inds[n][lo:hi], scratch); err != nil {
				return err
			}
		}
		if err := writeF32Chunked(crc, xs.Vals[lo:hi], scratch); err != nil {
			return err
		}
		e := dir[i*tileDirEntryLen(order):]
		binary.LittleEndian.PutUint64(e[0:8], lo)
		binary.LittleEndian.PutUint32(e[8:12], uint32(cnt))
		binary.LittleEndian.PutUint64(e[12:20], off)
		binary.LittleEndian.PutUint32(e[20:24], uint32(length))
		binary.LittleEndian.PutUint32(e[24:28], crc.Sum32())
		for n := 0; n < order; n++ {
			boxLo, boxHi := emptyBoxLo, Index(0)
			if cnt > 0 {
				// Natural order sorts mode 0 outermost, so its bounds are
				// the range endpoints; inner modes need the scan.
				ind := xs.Inds[n][lo:hi]
				if n == 0 {
					boxLo, boxHi = ind[0], ind[cnt-1]
				} else {
					boxLo, boxHi = ind[0], ind[0]
					for _, ix := range ind[1:] {
						if ix < boxLo {
							boxLo = ix
						}
						if ix > boxHi {
							boxHi = ix
						}
					}
				}
			}
			binary.LittleEndian.PutUint32(e[28+4*n:], boxLo)
			binary.LittleEndian.PutUint32(e[28+4*order+4*n:], boxHi)
		}
		off += length
	}
	if _, err := bw.Write(dir); err != nil {
		return err
	}
	if err := writeU32(bw, crc32.Checksum(dir, castagnoli)); err != nil {
		return err
	}

	// Tile payloads, second pass.
	for i := 0; i < tiles; i++ {
		lo, hi := bounds[i], bounds[i+1]
		for n := 0; n < order; n++ {
			if err := writeU32Chunked(bw, xs.Inds[n][lo:hi], scratch); err != nil {
				return err
			}
		}
		if err := writeF32Chunked(bw, xs.Vals[lo:hi], scratch); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// naturalOrder is the identity mode permutation.
func naturalOrder(order int) []int {
	perm := make([]int, order)
	for i := range perm {
		perm[i] = i
	}
	return perm
}

// tiledMeta is the parsed prologue + header + directory of a v3 input,
// shared by the streaming TileReader and the in-core v3 reader.
type tiledMeta struct {
	dims          []Index
	nnz           uint64
	payloadLen    uint64
	targetTileNNZ uint32
	tiles         []TileInfo
	dataStart     uint64
}

// parseTiledHeader consumes the v3 header and directory from b, which
// must be positioned just past the 5-byte magic+version prefix. Every
// declared size is validated against the remaining input before
// allocation, and both section checksums are verified.
func parseTiledHeader(b *binReader) (*tiledMeta, error) {
	crc := crc32.New(castagnoli)
	crc.Write([]byte{'P', 'S', 'T', 'B', binVersion3}) // consumed by dispatch
	pro := make([]byte, 7)
	if err := b.full(pro, "binary v3 prologue"); err != nil {
		return nil, err
	}
	crc.Write(pro)
	order := int(pro[0])
	flags := binary.LittleEndian.Uint16(pro[1:3])
	headerLen := binary.LittleEndian.Uint32(pro[3:7])
	if order == 0 {
		return nil, fmt.Errorf("tensor: binary tensor with zero order")
	}
	if flags != 0 {
		return nil, fmt.Errorf("tensor: binary v3 reserved flags %#x are non-zero", flags)
	}
	if want := uint32(24 + 4*order); headerLen != want {
		return nil, fmt.Errorf("tensor: binary v3 header length %d, want %d for order %d", headerLen, want, order)
	}
	hdr := make([]byte, headerLen)
	if err := b.full(hdr, "binary v3 header"); err != nil {
		return nil, err
	}
	crc.Write(hdr)
	var got [4]byte
	if err := b.full(got[:], "binary v3 header checksum"); err != nil {
		return nil, err
	}
	if sum := binary.LittleEndian.Uint32(got[:]); sum != crc.Sum32() {
		return nil, fmt.Errorf("tensor: binary v3 header checksum mismatch (stored %#08x, computed %#08x): corrupt header", sum, crc.Sum32())
	}

	m := &tiledMeta{dims: make([]Index, order)}
	m.nnz = binary.LittleEndian.Uint64(hdr[0:8])
	for n := range m.dims {
		m.dims[n] = binary.LittleEndian.Uint32(hdr[8+4*n:])
		if m.dims[n] == 0 {
			return nil, fmt.Errorf("tensor: binary mode %d has zero size", n)
		}
	}
	m.payloadLen = binary.LittleEndian.Uint64(hdr[8+4*order:])
	tileCount := binary.LittleEndian.Uint32(hdr[16+4*order:])
	m.targetTileNNZ = binary.LittleEndian.Uint32(hdr[20+4*order:])
	if m.nnz > maxBinNNZ {
		return nil, fmt.Errorf("tensor: binary nnz %d exceeds sanity limit", m.nnz)
	}
	if want := uint64(order+1) * 4 * m.nnz; m.payloadLen != want {
		return nil, fmt.Errorf("tensor: binary v3 payload length %d inconsistent with order %d × nnz %d (want %d)", m.payloadLen, order, m.nnz, want)
	}
	if tileCount > maxBinTiles {
		return nil, fmt.Errorf("tensor: binary v3 tile count %d exceeds sanity limit", tileCount)
	}

	entryLen := tileDirEntryLen(order)
	dirLen := uint64(tileCount) * uint64(entryLen)
	if err := b.need(dirLen+4, "binary v3 tile directory"); err != nil {
		return nil, err
	}
	// The directory is read in chunks like the payload: when the input
	// size is unknown a lying tileCount then fails at the first short
	// read instead of forcing a gigabyte allocation up front.
	var dir []byte
	if b.rem >= 0 {
		dir = make([]byte, 0, dirLen)
	}
	scratch, put := acquireScratch(dirLen)
	for got := uint64(0); got < dirLen; {
		c := dirLen - got
		if m := uint64(len(scratch)); c > m {
			c = m
		}
		if err := b.full(scratch[:c], "binary v3 tile directory"); err != nil {
			put()
			return nil, err
		}
		dir = append(dir, scratch[:c]...)
		got += c
	}
	put()
	if err := b.full(got[:], "binary v3 directory checksum"); err != nil {
		return nil, err
	}
	if sum, want := binary.LittleEndian.Uint32(got[:]), crc32.Checksum(dir, castagnoli); sum != want {
		return nil, fmt.Errorf("tensor: binary v3 directory checksum mismatch (stored %#08x, computed %#08x): corrupt tile directory", sum, want)
	}

	m.dataStart = 12 + uint64(headerLen) + 4 + dirLen + 4
	m.tiles = make([]TileInfo, tileCount)
	pos, at := m.dataStart, uint64(0)
	for i := range m.tiles {
		e := dir[uint64(i)*uint64(entryLen):]
		ti := &m.tiles[i]
		ti.Start = binary.LittleEndian.Uint64(e[0:8])
		ti.Count = binary.LittleEndian.Uint32(e[8:12])
		ti.Offset = binary.LittleEndian.Uint64(e[12:20])
		ti.Bytes = binary.LittleEndian.Uint32(e[20:24])
		ti.CRC = binary.LittleEndian.Uint32(e[24:28])
		ti.BoxLo = make([]Index, order)
		ti.BoxHi = make([]Index, order)
		for n := 0; n < order; n++ {
			ti.BoxLo[n] = binary.LittleEndian.Uint32(e[28+4*n:])
			ti.BoxHi[n] = binary.LittleEndian.Uint32(e[28+4*order+4*n:])
		}
		if ti.Start != at {
			return nil, fmt.Errorf("tensor: binary v3 tile %d starts at non-zero %d, want %d: directory does not partition the payload", i, ti.Start, at)
		}
		if want := uint64(order+1) * 4 * uint64(ti.Count); uint64(ti.Bytes) != want {
			return nil, fmt.Errorf("tensor: binary v3 tile %d length %d inconsistent with count %d (want %d)", i, ti.Bytes, ti.Count, want)
		}
		if ti.Offset != pos {
			return nil, fmt.Errorf("tensor: binary v3 tile %d at offset %d, want %d: tiles must be contiguous", i, ti.Offset, pos)
		}
		pos += uint64(ti.Bytes)
		at += uint64(ti.Count)
	}
	if at != m.nnz {
		return nil, fmt.Errorf("tensor: binary v3 directory covers %d non-zeros, header declares %d", at, m.nnz)
	}
	return m, nil
}

// Tile is a reusable decode buffer for one tile's entries. The zero
// value is ready to use; passing the same Tile to successive ReadTile
// calls reuses its allocations, so a steady-state streaming loop stops
// allocating once the buffers have grown to the largest tile.
type Tile struct {
	// Inds holds one index slice per mode, each Count entries long.
	Inds [][]Index
	// Vals holds the tile's values, parallel to Inds.
	Vals []Value
	raw  []byte
}

// NNZ returns the number of entries currently decoded into the tile.
func (tl *Tile) NNZ() int { return len(tl.Vals) }

// TileReader reads a PSTB v3 file tile-at-a-time through an
// io.ReaderAt, holding only the directory in memory. It is safe for
// concurrent ReadTile calls with distinct Tile buffers.
type TileReader struct {
	// Dims holds the tensor's mode sizes.
	Dims []Index
	// NNZ is the total non-zero count across all tiles.
	NNZ uint64
	// TargetTileNNZ echoes the writer's tile-size setting.
	TargetTileNNZ uint32
	// Tiles is the parsed tile directory.
	Tiles []TileInfo

	r      io.ReaderAt
	closer io.Closer
}

// OpenTiled opens a v3 .bten file for tile-at-a-time reading. The
// caller owns the reader and must Close it.
func OpenTiled(path string) (*TileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	tr, err := NewTileReader(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	tr.closer = f
	return tr, nil
}

// NewTileReader parses the v3 header and directory from r (size is the
// total input length) and returns a reader positioned to serve tiles.
func NewTileReader(r io.ReaderAt, size int64) (*TileReader, error) {
	b := &binReader{r: io.NewSectionReader(r, 0, size), rem: size}
	head := make([]byte, 5)
	if err := b.full(head, "binary magic"); err != nil {
		return nil, err
	}
	if string(head[:4]) != binMagic {
		return nil, fmt.Errorf("tensor: bad magic %q, want %q", head[:4], binMagic)
	}
	if head[4] != binVersion3 {
		return nil, fmt.Errorf("tensor: binary version %d is not tiled (want v3; rewrite with WriteBinaryTiled)", head[4])
	}
	m, err := parseTiledHeader(b)
	if err != nil {
		return nil, err
	}
	for i := range m.tiles {
		ti := &m.tiles[i]
		if end := ti.Offset + uint64(ti.Bytes); end > uint64(size) {
			return nil, fmt.Errorf("tensor: binary v3 tile %d extends to byte %d past input size %d: truncated input", i, end, size)
		}
	}
	return &TileReader{
		Dims:          m.dims,
		NNZ:           m.nnz,
		TargetTileNNZ: m.targetTileNNZ,
		Tiles:         m.tiles,
		r:             r,
	}, nil
}

// Close releases the underlying file when the reader owns one.
func (tr *TileReader) Close() error {
	if tr.closer != nil {
		return tr.closer.Close()
	}
	return nil
}

// Order returns the tensor order.
func (tr *TileReader) Order() int { return len(tr.Dims) }

// NumTiles returns the tile count.
func (tr *TileReader) NumTiles() int { return len(tr.Tiles) }

// MaxTileBytes returns the decoded size of the largest tile — the
// minimum budget a streaming executor needs to hold one tile resident.
func (tr *TileReader) MaxTileBytes() int64 {
	var max int64
	for i := range tr.Tiles {
		if b := int64(tr.Tiles[i].Bytes); b > max {
			max = b
		}
	}
	return max
}

// ReadTile fetches and decodes tile i into tl, reusing tl's buffers.
// The payload checksum is verified and every index is checked against
// the tensor dims and the directory bounding box, so corruption
// surfaces as an error here rather than an out-of-range panic inside a
// kernel.
func (tr *TileReader) ReadTile(i int, tl *Tile) error {
	if i < 0 || i >= len(tr.Tiles) {
		return fmt.Errorf("tensor: tile %d out of range [0,%d)", i, len(tr.Tiles))
	}
	ti := &tr.Tiles[i]
	order := tr.Order()
	if cap(tl.raw) < int(ti.Bytes) {
		tl.raw = make([]byte, ti.Bytes)
	}
	raw := tl.raw[:ti.Bytes]
	if ti.Bytes > 0 {
		if _, err := tr.r.ReadAt(raw, int64(ti.Offset)); err != nil {
			return fmt.Errorf("tensor: tile %d read: %v", i, err)
		}
	}
	if sum := crc32.Checksum(raw, castagnoli); sum != ti.CRC {
		return fmt.Errorf("tensor: tile %d checksum mismatch (stored %#08x, computed %#08x): corrupt tile", i, ti.CRC, sum)
	}
	cnt := int(ti.Count)
	if cap(tl.Inds) < order {
		tl.Inds = make([][]Index, order)
	}
	tl.Inds = tl.Inds[:order]
	for n := 0; n < order; n++ {
		if cap(tl.Inds[n]) < cnt {
			tl.Inds[n] = make([]Index, cnt)
		}
		ind := tl.Inds[n][:cnt]
		base := n * cnt * 4
		for x := 0; x < cnt; x++ {
			ix := binary.LittleEndian.Uint32(raw[base+4*x:])
			if ix >= tr.Dims[n] {
				return fmt.Errorf("tensor: tile %d entry %d mode %d index %d outside dim %d: corrupt tile", i, x, n, ix, tr.Dims[n])
			}
			if ix < ti.BoxLo[n] || ix > ti.BoxHi[n] {
				return fmt.Errorf("tensor: tile %d entry %d mode %d index %d outside directory box [%d,%d]", i, x, n, ix, ti.BoxLo[n], ti.BoxHi[n])
			}
			ind[x] = ix
		}
		tl.Inds[n] = ind
	}
	if cap(tl.Vals) < cnt {
		tl.Vals = make([]Value, cnt)
	}
	tl.Vals = tl.Vals[:cnt]
	base := order * cnt * 4
	for x := 0; x < cnt; x++ {
		tl.Vals[x] = math.Float32frombits(binary.LittleEndian.Uint32(raw[base+4*x:]))
	}
	return nil
}

// readBinaryV3 is the in-core v3 path ReadBinary/ReadFile dispatch to:
// the whole tiled payload is assembled into one COO, with both section
// checksums and every per-tile checksum verified. Streaming consumers
// use TileReader instead.
func readBinaryV3(b *binReader) (*COO, error) {
	m, err := parseTiledHeader(b)
	if err != nil {
		return nil, err
	}
	order := len(m.dims)
	if err := b.need(m.payloadLen, "binary v3 payload"); err != nil {
		return nil, err
	}
	t := &COO{Dims: m.dims, Inds: make([][]Index, order)}
	prealloc := b.rem >= 0
	if prealloc {
		for n := range t.Inds {
			t.Inds[n] = make([]Index, 0, m.nnz)
		}
		t.Vals = make([]Value, 0, m.nnz)
	}
	scratch, put := acquireScratch(m.payloadLen)
	defer put()
	for i := range m.tiles {
		ti := &m.tiles[i]
		cnt := uint64(ti.Count)
		crc := crc32.New(castagnoli)
		for n := 0; n < order; n++ {
			ind, err := appendU32Chunked(b, t.Inds[n], cnt, crc, scratch,
				fmt.Sprintf("binary v3 tile %d mode-%d indices", i, n))
			if err != nil {
				return nil, err
			}
			t.Inds[n] = ind
		}
		vals, err := appendF32Chunked(b, t.Vals, cnt, crc, scratch,
			fmt.Sprintf("binary v3 tile %d values", i))
		if err != nil {
			return nil, err
		}
		t.Vals = vals
		if sum := crc.Sum32(); sum != ti.CRC {
			return nil, fmt.Errorf("tensor: tile %d checksum mismatch (stored %#08x, computed %#08x): corrupt tile", i, ti.CRC, sum)
		}
	}
	for n := range t.Inds {
		if t.Inds[n] == nil {
			t.Inds[n] = []Index{}
		}
	}
	if t.Vals == nil {
		t.Vals = []Value{}
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("tensor: binary content invalid: %v", err)
	}
	return t, nil
}

// ReadTileDirectory parses only the header and tile directory of a v3
// .bten file — what pastainfo prints — without touching the payload.
// v1/v2 files return a nil directory and ok=false rather than an
// error, so callers degrade gracefully on untiled inputs.
func ReadTileDirectory(path string) (*TileReader, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	var head [5]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return nil, false, fmt.Errorf("tensor: %s: %v", path, err)
	}
	if string(head[:4]) != binMagic || head[4] != binVersion3 {
		return nil, false, nil
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, false, err
	}
	tr, err := NewTileReader(f, fi.Size())
	if err != nil {
		return nil, false, fmt.Errorf("%s: %v", path, err)
	}
	tr.r = nil // the file closes with this call; only the directory survives
	return tr, true, nil
}
