package tensor

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTNS exercises the FROSTT parser against arbitrary inputs: it
// must never panic, and any tensor it accepts must be structurally valid
// and round-trip through the writer.
func FuzzReadTNS(f *testing.F) {
	f.Add("1 1 1 1.0\n")
	f.Add("# comment\n2 3 4 -1.5\n1 1 1 0.25\n")
	f.Add("")
	f.Add("0 0 0 0\n")
	f.Add("1 2 3\n")
	f.Add("1 1 1 nan\n")
	f.Add("4294967295 1 1 1\n")
	f.Add("1 1 1 1\n1 1 2\n")
	f.Fuzz(func(t *testing.T, in string) {
		x, err := ReadTNS(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := x.Validate(); verr != nil {
			// NaN/Inf values are representable in .tns input but rejected
			// by Validate; that combination is acceptable. Structural
			// breakage is not.
			if !strings.Contains(verr.Error(), "non-finite") {
				t.Fatalf("parser accepted structurally invalid tensor: %v", verr)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteTNS(&buf, x); err != nil {
			t.Fatalf("writer failed on parsed tensor: %v", err)
		}
		y, err := ReadTNS(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if y.NNZ() != x.NNZ() || y.Order() != x.Order() {
			t.Fatalf("roundtrip changed shape: %d/%d -> %d/%d", x.Order(), x.NNZ(), y.Order(), y.NNZ())
		}
	})
}

// FuzzReadBinary exercises the PSTB reader (all three versions, both
// the sized and unknown-size paths) against arbitrary bytes: it must
// never panic or over-allocate, any tensor it accepts must be
// structurally valid, and accepted tensors must round-trip through the
// v2 writer.
func FuzzReadBinary(f *testing.F) {
	small := NewCOO([]Index{3, 4, 5}, 4)
	small.Append([]Index{0, 1, 2}, 1.5)
	small.Append([]Index{2, 3, 4}, -0.25)
	var v1, v2, v3 bytes.Buffer
	if err := WriteBinaryV1(&v1, small); err != nil {
		f.Fatal(err)
	}
	if err := WriteBinary(&v2, small); err != nil {
		f.Fatal(err)
	}
	if err := WriteBinaryTiled(&v3, small, 1); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v3.Bytes())
	f.Add(v1.Bytes()[:len(v1.Bytes())/2]) // truncated
	f.Add(v2.Bytes()[:len(v2.Bytes())/2])
	f.Add(v3.Bytes()[:len(v3.Bytes())/2])
	flipped := append([]byte(nil), v2.Bytes()...)
	flipped[len(flipped)/2] ^= 0x10 // payload corruption
	f.Add(flipped)
	flipped3 := append([]byte(nil), v3.Bytes()...)
	flipped3[len(flipped3)-2] ^= 0x10 // tile payload corruption
	f.Add(flipped3)
	dirFlipped := append([]byte(nil), v3.Bytes()...)
	dirFlipped[60] ^= 0x01 // tile directory corruption
	f.Add(dirFlipped)
	f.Add([]byte("PSTB"))
	f.Add([]byte("PSTB\x01\xff"))                                         // huge order, no dims
	f.Add([]byte("PSTB\x02\x02\x00\x00\x18\x00\x00\x00"))                 // v2 prologue only
	f.Add([]byte("PSTB\x03\x02\x00\x00\x20\x00\x00\x00"))                 // v3 prologue only
	f.Add([]byte("PSTB\x01\x01\x02\x00\x00\x00\xff\xff\xff\xff\xff\xff")) // absurd nnz
	f.Fuzz(func(t *testing.T, raw []byte) {
		x, err := ReadBinary(bytes.NewReader(raw))
		xu, erru := ReadBinary(opaqueReader{bytes.NewReader(raw)})
		if (err == nil) != (erru == nil) {
			t.Fatalf("sized/chunked disagree: %v vs %v", err, erru)
		}
		if err != nil {
			return
		}
		if verr := x.Validate(); verr != nil {
			t.Fatalf("reader accepted invalid tensor: %v", verr)
		}
		if !identicalCOO(x, xu) {
			t.Fatal("sized and chunked parses differ")
		}
		var buf bytes.Buffer
		if werr := WriteBinary(&buf, x); werr != nil {
			t.Fatalf("writer failed on accepted tensor: %v", werr)
		}
		y, rerr := ReadBinary(&buf)
		if rerr != nil {
			t.Fatalf("re-read of rewritten tensor failed: %v", rerr)
		}
		if !identicalCOO(x, y) {
			t.Fatal("v2 round trip changed content")
		}
	})
}

// FuzzDedupSort checks that arbitrary coordinate streams survive
// Dedup/Sort with invariants intact.
func FuzzDedupSort(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, uint8(2))
	f.Add([]byte{255, 255, 0, 0}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, orderRaw uint8) {
		order := int(orderRaw)%4 + 1
		dims := make([]Index, order)
		for n := range dims {
			dims[n] = 16
		}
		x := NewCOO(dims, len(raw)/order)
		idx := make([]Index, order)
		for i := 0; i+order <= len(raw); i += order {
			for n := 0; n < order; n++ {
				idx[n] = Index(raw[i+n]) % 16
			}
			x.Append(idx, Value(i+1))
		}
		before := x.ToMap()
		x.Dedup()
		if err := x.Validate(); err != nil {
			t.Fatalf("Dedup broke invariants: %v", err)
		}
		after := x.ToMap()
		if len(after) != x.NNZ() {
			t.Fatal("duplicates survived Dedup")
		}
		for k, v := range before {
			if after[k] != v {
				t.Fatal("Dedup changed summed content")
			}
		}
		for mode := 0; mode < order; mode++ {
			x.SortForMode(mode)
			x.FiberPointers(mode) // must not panic
		}
	})
}
