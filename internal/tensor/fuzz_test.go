package tensor

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTNS exercises the FROSTT parser against arbitrary inputs: it
// must never panic, and any tensor it accepts must be structurally valid
// and round-trip through the writer.
func FuzzReadTNS(f *testing.F) {
	f.Add("1 1 1 1.0\n")
	f.Add("# comment\n2 3 4 -1.5\n1 1 1 0.25\n")
	f.Add("")
	f.Add("0 0 0 0\n")
	f.Add("1 2 3\n")
	f.Add("1 1 1 nan\n")
	f.Add("4294967295 1 1 1\n")
	f.Add("1 1 1 1\n1 1 2\n")
	f.Fuzz(func(t *testing.T, in string) {
		x, err := ReadTNS(strings.NewReader(in))
		if err != nil {
			return
		}
		if verr := x.Validate(); verr != nil {
			// NaN/Inf values are representable in .tns input but rejected
			// by Validate; that combination is acceptable. Structural
			// breakage is not.
			if !strings.Contains(verr.Error(), "non-finite") {
				t.Fatalf("parser accepted structurally invalid tensor: %v", verr)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteTNS(&buf, x); err != nil {
			t.Fatalf("writer failed on parsed tensor: %v", err)
		}
		y, err := ReadTNS(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if y.NNZ() != x.NNZ() || y.Order() != x.Order() {
			t.Fatalf("roundtrip changed shape: %d/%d -> %d/%d", x.Order(), x.NNZ(), y.Order(), y.NNZ())
		}
	})
}

// FuzzDedupSort checks that arbitrary coordinate streams survive
// Dedup/Sort with invariants intact.
func FuzzDedupSort(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, uint8(2))
	f.Add([]byte{255, 255, 0, 0}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, orderRaw uint8) {
		order := int(orderRaw)%4 + 1
		dims := make([]Index, order)
		for n := range dims {
			dims[n] = 16
		}
		x := NewCOO(dims, len(raw)/order)
		idx := make([]Index, order)
		for i := 0; i+order <= len(raw); i += order {
			for n := 0; n < order; n++ {
				idx[n] = Index(raw[i+n]) % 16
			}
			x.Append(idx, Value(i+1))
		}
		before := x.ToMap()
		x.Dedup()
		if err := x.Validate(); err != nil {
			t.Fatalf("Dedup broke invariants: %v", err)
		}
		after := x.ToMap()
		if len(after) != x.NNZ() {
			t.Fatal("duplicates survived Dedup")
		}
		for k, v := range before {
			if after[k] != v {
				t.Fatal("Dedup changed summed content")
			}
		}
		for mode := 0; mode < order; mode++ {
			x.SortForMode(mode)
			x.FiberPointers(mode) // must not panic
		}
	})
}
