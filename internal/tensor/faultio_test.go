package tensor

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math/rand"
	"testing"
)

// This file is the corrupt-input fault-injection harness for the PSTB
// binary formats: it programmatically truncates, bit-flips, and garbles
// v1 and v2 images and asserts that every corruption yields an error —
// never a panic, an OOM-sized allocation, or (for v2) silently wrong
// data. v1 carries no checksums, so for payload corruption it can only
// promise "error or visibly different tensor", which is exactly the gap
// v2 closes.

// opaqueReader hides Len/Seek so ReadBinary exercises the unknown-size
// chunked path.
type opaqueReader struct{ r io.Reader }

func (o opaqueReader) Read(p []byte) (int, error) { return o.r.Read(p) }

func faultTensor(t *testing.T) *COO {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	return RandomCOO([]Index{60, 50, 40}, 200, rng)
}

func faultImages(t *testing.T) map[string][]byte {
	t.Helper()
	x := faultTensor(t)
	var v1, v2 bytes.Buffer
	if err := WriteBinaryV1(&v1, x); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&v2, x); err != nil {
		t.Fatal(err)
	}
	return map[string][]byte{"v1": v1.Bytes(), "v2": v2.Bytes()}
}

// identicalCOO reports exact equality of dims, index order, and value
// bits — the "silent wrong data" detector.
func identicalCOO(a, b *COO) bool {
	if a.Order() != b.Order() || a.NNZ() != b.NNZ() {
		return false
	}
	for n := range a.Dims {
		if a.Dims[n] != b.Dims[n] {
			return false
		}
	}
	for n := range a.Inds {
		for i := range a.Inds[n] {
			if a.Inds[n][i] != b.Inds[n][i] {
				return false
			}
		}
	}
	for i := range a.Vals {
		if a.Vals[i] != b.Vals[i] {
			return false
		}
	}
	return true
}

// readBoth parses raw through both the sized (bytes.Reader) and
// unknown-size (opaque) paths and requires them to agree on
// success/failure; it returns the sized result.
func readBoth(t *testing.T, raw []byte) (*COO, error) {
	t.Helper()
	got, err := ReadBinary(bytes.NewReader(raw))
	gotU, errU := ReadBinary(opaqueReader{bytes.NewReader(raw)})
	// The sized path validates declared lengths up front; the chunked
	// path discovers the same truncations at read time. They must agree
	// on accept/reject — an asymmetry either way is a validation hole.
	if (err == nil) != (errU == nil) {
		t.Fatalf("sized/chunked paths disagree: sized err=%v, chunked err=%v", err, errU)
	}
	if err == nil && errU == nil && !identicalCOO(got, gotU) {
		t.Fatal("sized and chunked paths disagree on content")
	}
	return got, err
}

// TestFaultTruncationEveryByte cuts each image at every length from 0 to
// len-1; every prefix must produce an error, not a panic or a hang.
func TestFaultTruncationEveryByte(t *testing.T) {
	for name, raw := range faultImages(t) {
		for cut := 0; cut < len(raw); cut++ {
			if _, err := readBoth(t, raw[:cut]); err == nil {
				t.Fatalf("%s: truncation at byte %d/%d accepted", name, cut, len(raw))
			}
		}
	}
}

// TestFaultTruncationSectionBoundaries documents the exact section
// edges — the cuts most likely to be "cleanly" wrong.
func TestFaultTruncationSectionBoundaries(t *testing.T) {
	x := faultTensor(t)
	order, nnz := x.Order(), x.NNZ()
	images := faultImages(t)

	v1Bounds := []int{4, 5, 6, 6 + 4*order, 6 + 4*order + 8}
	for m := 1; m <= order; m++ {
		v1Bounds = append(v1Bounds, 6+4*order+8+4*nnz*m)
	}
	v2HeaderEnd := 12 + 16 + 4*order
	v2Bounds := []int{4, 5, 12, v2HeaderEnd, v2HeaderEnd + 4}
	for m := 1; m <= order+1; m++ {
		v2Bounds = append(v2Bounds, v2HeaderEnd+4+4*nnz*m)
	}
	for name, bounds := range map[string][]int{"v1": v1Bounds, "v2": v2Bounds} {
		raw := images[name]
		for _, cut := range bounds {
			if cut >= len(raw) {
				t.Fatalf("%s: boundary %d outside image of %d bytes", name, cut, len(raw))
			}
			if _, err := readBoth(t, raw[:cut]); err == nil {
				t.Errorf("%s: truncation at section boundary %d accepted", name, cut)
			}
		}
		// The full image still parses: the harness itself is sound.
		if _, err := readBoth(t, raw); err != nil {
			t.Fatalf("%s: uncorrupted image rejected: %v", name, err)
		}
	}
}

// TestFaultBitFlipsV2 flips every bit of the v2 image; the checksums
// (plus magic/version/flags/length validation) must catch every one.
func TestFaultBitFlipsV2(t *testing.T) {
	raw := faultImages(t)["v2"]
	flipped := make([]byte, len(raw))
	for pos := 0; pos < len(raw); pos++ {
		for bit := 0; bit < 8; bit++ {
			copy(flipped, raw)
			flipped[pos] ^= 1 << bit
			if _, err := readBoth(t, flipped); err == nil {
				t.Fatalf("v2: bit flip at byte %d bit %d accepted silently", pos, bit)
			}
		}
	}
}

// TestFaultBitFlipsV1 flips every bit of the v1 image. v1 has no
// checksums, so a flip may legally parse — but then the result must
// differ visibly from the original (no silent acceptance of identical-
// looking data), and structural fields (magic, order, nnz, dims) must
// still be caught by the size and validation checks.
func TestFaultBitFlipsV1(t *testing.T) {
	orig := faultTensor(t)
	raw := faultImages(t)["v1"]
	flipped := make([]byte, len(raw))
	accepted := 0
	for pos := 0; pos < len(raw); pos++ {
		for bit := 0; bit < 8; bit++ {
			copy(flipped, raw)
			flipped[pos] ^= 1 << bit
			got, err := ReadBinary(bytes.NewReader(flipped))
			if err != nil {
				continue
			}
			accepted++
			if identicalCOO(orig, got) {
				t.Fatalf("v1: bit flip at byte %d bit %d parsed to a tensor identical to the original", pos, bit)
			}
		}
	}
	// nnz flips that *grow* the count must fail against the known input
	// size (a shrinking flip legally parses a prefix in checksum-free
	// v1 — the gap the v2 header CRC closes).
	nnzOff := 6 + 4*orig.Order()
	nnz := binary.LittleEndian.Uint64(raw[nnzOff:])
	for bit := 0; bit < 64; bit++ {
		if nnz^(1<<bit) <= nnz {
			continue
		}
		copy(flipped, raw)
		flipped[nnzOff+bit/8] ^= 1 << (bit % 8)
		if _, err := ReadBinary(bytes.NewReader(flipped)); err == nil {
			t.Fatalf("v1: nnz-growing bit flip %d accepted with size hint", bit)
		}
	}
	if accepted == 0 {
		t.Log("v1: every bit flip happened to error (no undetectable payload flips in this image)")
	}
}

// TestFaultOversizedHeaderFields plants absurd nnz/order declarations
// and asserts the readers fail fast — descriptive error, no multi-GB
// allocation — on both the sized and unknown-size paths.
func TestFaultOversizedHeaderFields(t *testing.T) {
	raw := faultImages(t)["v1"]
	order := faultTensor(t).Order()

	huge := make([]byte, len(raw))
	copy(huge, raw)
	binary.LittleEndian.PutUint64(huge[6+4*order:], 1<<62)
	if _, err := readBoth(t, huge); err == nil {
		t.Fatal("v1: nnz=2^62 accepted")
	}
	// Below the sanity cap but far beyond the input: the size hint must
	// reject it, and the chunked path must fail after at most one chunk.
	binary.LittleEndian.PutUint64(huge[6+4*order:], 1<<30)
	if _, err := readBoth(t, huge); err == nil {
		t.Fatal("v1: nnz=2^30 with tiny payload accepted")
	}

	// v2: forge a big-nnz header with a *valid* CRC; the payload-length
	// cross-check and size validation must still reject it.
	forged := forgeV2Header(t, 255, 1<<30)
	if _, err := readBoth(t, forged); err == nil {
		t.Fatal("v2: forged huge header accepted")
	}
}

// forgeV2Header builds a v2 image whose header checksums correctly but
// whose nnz/order promise far more payload than follows.
func forgeV2Header(t *testing.T, order int, nnz uint64) []byte {
	t.Helper()
	headerLen := 16 + 4*order
	buf := make([]byte, 12+headerLen)
	copy(buf[0:4], binMagic)
	buf[4] = binVersion2
	buf[5] = byte(order)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(headerLen))
	binary.LittleEndian.PutUint64(buf[12:20], nnz)
	for n := 0; n < order; n++ {
		binary.LittleEndian.PutUint32(buf[20+4*n:], 1000)
	}
	binary.LittleEndian.PutUint64(buf[20+4*order:], uint64(order+1)*4*nnz)
	sum := crc32.Checksum(buf, castagnoli)
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], sum)
	return append(buf, crcb[:]...)
}

// TestFaultGarbledStreams feeds deterministic random garbage (with and
// without a valid magic prefix) through both readers: errors only,
// never panics.
func TestFaultGarbledStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		n := rng.Intn(256)
		raw := make([]byte, n)
		rng.Read(raw)
		if i%2 == 0 && n >= 5 {
			copy(raw, binMagic)
			raw[4] = byte(1 + rng.Intn(2)) // valid version byte
		}
		got, err := readBoth(t, raw)
		if err == nil {
			// Vanishingly unlikely, but if garbage parses it must at
			// least be structurally valid.
			if verr := got.Validate(); verr != nil {
				t.Fatalf("garbage %d parsed to invalid tensor: %v", i, verr)
			}
		}
	}
}

// TestFaultTNSCorruption garbles the text format too: truncation
// mid-line and mid-token must error or parse to a strictly smaller
// valid tensor, and injected junk tokens must error.
func TestFaultTNSCorruption(t *testing.T) {
	x := faultTensor(t)
	var buf bytes.Buffer
	if err := WriteTNS(&buf, x); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 300; i++ {
		cut := rng.Intn(len(raw))
		got, err := ParseTNS(raw[:cut])
		if err != nil {
			continue
		}
		if verr := got.Validate(); verr != nil {
			t.Fatalf("truncated .tns parsed to invalid tensor: %v", verr)
		}
		if got.NNZ() > x.NNZ() {
			t.Fatal("truncation grew the tensor")
		}
	}
	for _, junk := range []string{"1 2 x 1.0\n", "0 1 1 1.0\n", "4294967296 1 1 1.0\n", "1 1 1 1 1.0\n", "1 1\n"} {
		corrupted := append(append([]byte{}, raw...), junk...)
		if _, err := ParseTNS(corrupted); err == nil {
			t.Errorf("junk line %q accepted", junk)
		}
	}
}
