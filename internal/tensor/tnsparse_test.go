package tensor

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/parallel"
)

// genTNSBytes renders a deterministic random tensor to .tns text,
// sprinkling comments and blank lines so shard splitting has to cope
// with non-data lines.
func genTNSBytes(tb testing.TB, dims []Index, nnz int, seed int64) []byte {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := RandomCOO(dims, nnz, rng)
	var buf bytes.Buffer
	buf.WriteString("# generated test tensor\n\n")
	if err := WriteTNS(&buf, x); err != nil {
		tb.Fatal(err)
	}
	buf.WriteString("# trailing comment\n")
	return buf.Bytes()
}

// TestParallelMatchesSerialByteIdentical is the acceptance check for the
// chunk-parallel parser: dims, index order, and value bits must be
// exactly what the serial parser produces, across thread counts and
// input shapes.
func TestParallelMatchesSerialByteIdentical(t *testing.T) {
	inputs := map[string][]byte{
		"3d":          genTNSBytes(t, []Index{500, 400, 300}, 20000, 1),
		"4d":          genTNSBytes(t, []Index{50, 40, 30, 20}, 15000, 2),
		"order1":      genTNSBytes(t, []Index{100000}, 5000, 3),
		"comments":    []byte("# c\n1 1 1 1.5\n\n# c2\n2 2 2 -0.25\n"),
		"no-newline":  []byte("1 1 1 1.5\n2 3 4 2.5"),
		"crlf":        []byte("1 1 1 1.5\r\n2 3 4 2.5\r\n"),
		"extreme-val": []byte("1 1 1 0.30000001\n2 2 2 3.4028235e38\n3 3 3 1e-45\n"),
		"max-coord":   []byte("4294967295 1 1 1\n"),
	}
	for name, data := range inputs {
		want, err := parseTNSSerial(data)
		if err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		for _, threads := range []int{2, 3, 4, 7, 16, 64} {
			got, err := parseTNSParallel(data, threads)
			if err != nil {
				t.Fatalf("%s/t%d: parallel: %v", name, threads, err)
			}
			if !reflect.DeepEqual(want.Dims, got.Dims) {
				t.Fatalf("%s/t%d: dims %v != %v", name, threads, got.Dims, want.Dims)
			}
			if !reflect.DeepEqual(want.Vals, got.Vals) {
				t.Fatalf("%s/t%d: values differ", name, threads)
			}
			for n := range want.Inds {
				if !reflect.DeepEqual(want.Inds[n], got.Inds[n]) {
					t.Fatalf("%s/t%d: mode-%d indices differ", name, threads, n)
				}
			}
		}
	}
}

// TestParseTNSAutoParallel drives the public entry point over the
// parallel threshold with multiple workers configured (this test runs
// under -race in CI, covering the shard writes and the stitch copies).
func TestParseTNSAutoParallel(t *testing.T) {
	old := parallel.NumThreads()
	parallel.SetNumThreads(8)
	defer parallel.SetNumThreads(old)

	data := genTNSBytes(t, []Index{2000, 2000, 100}, 90000, 4)
	if len(data) < parallelTNSMinBytes {
		// Pad with comment lines to cross the threshold.
		pad := bytes.Repeat([]byte("# padding so the input crosses the parallel threshold\n"), 1+(parallelTNSMinBytes-len(data))/55)
		data = append(data, pad...)
	}
	want, err := parseTNSSerial(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseTNS(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want.Dims, got.Dims) || !reflect.DeepEqual(want.Vals, got.Vals) {
		t.Fatal("auto-parallel parse differs from serial")
	}
	for n := range want.Inds {
		if !reflect.DeepEqual(want.Inds[n], got.Inds[n]) {
			t.Fatalf("mode-%d indices differ", n)
		}
	}
}

// TestParallelErrorLineNumbers corrupts one line deep in a large input
// and checks the parallel parser reports the same global line number as
// the serial one.
func TestParallelErrorLineNumbers(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("# header comment\n")
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&buf, "%d %d %d 1.0\n", i%97+1, i%89+1, i%83+1)
	}
	buf.WriteString("3 bad 1 1.0\n") // line 5002
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&buf, "%d %d %d 2.0\n", i%97+1, i%89+1, i%83+1)
	}
	data := buf.Bytes()
	_, serr := parseTNSSerial(data)
	if serr == nil || !strings.Contains(serr.Error(), "line 5002") {
		t.Fatalf("serial error %v should name line 5002", serr)
	}
	for _, threads := range []int{2, 5, 16} {
		_, perr := parseTNSParallel(data, threads)
		if perr == nil {
			t.Fatalf("t%d: expected error", threads)
		}
		if perr.Error() != serr.Error() {
			t.Fatalf("t%d: error %q, serial said %q", threads, perr, serr)
		}
	}
}

func TestParseTNSRejects(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"comments only":   "# nothing\n\n# here\n",
		"zero coord":      "0 1 1.0\n",
		"bad coord":       "a 1 1.0\n",
		"plus coord":      "+1 1 1.0\n",
		"bad value":       "1 1 x\n",
		"ragged fields":   "1 1 1 1.0\n1 1 2.0\n",
		"value only":      "3.5\n",
		"negative coord":  "-1 1 1.0\n",
		"coord overflow":  "4294967296 1 1.0\n",
		"coord overflow2": "99999999999999999999 1 1.0\n",
	}
	for name, in := range cases {
		if _, err := ParseTNS([]byte(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestWriteTNSFloat32RoundTrip is the regression test for the %g
// formatting bug: values like 0.30000001 must survive a write→read
// round trip bit-exactly.
func TestWriteTNSFloat32RoundTrip(t *testing.T) {
	vals := []Value{0.30000001, 0.1, 1.0 / 3.0, 3.4028235e38, 1.1754944e-38, 1e-45, -2.7182817}
	x := NewCOO([]Index{uint32(len(vals))}, len(vals))
	for i, v := range vals {
		x.Append([]Index{Index(i)}, v)
	}
	var buf bytes.Buffer
	if err := WriteTNS(&buf, x); err != nil {
		t.Fatal(err)
	}
	y, err := ReadTNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.NNZ() != len(vals) {
		t.Fatalf("nnz %d, want %d", y.NNZ(), len(vals))
	}
	for i, v := range vals {
		if got := y.Vals[i]; got != v {
			t.Errorf("value %d: wrote %v, read back %v", i, v, got)
		}
	}
}

// BenchmarkParseTNS compares the serial and chunk-parallel parsers on a
// ~1M-non-zero input. On a multicore host the parallel path should be
// ≥2× faster; on a single-core host it degenerates to serial speed.
func BenchmarkParseTNS(b *testing.B) {
	data := genTNSBytes(b, []Index{3000, 3000, 1000}, 1_000_000, 9)
	b.Logf("input: %.1f MB", float64(len(data))/1e6)
	b.Run("serial", func(b *testing.B) {
		b.SetBytes(int64(len(data)))
		for i := 0; i < b.N; i++ {
			if _, err := parseTNSSerial(data); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, threads := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("parallel-%d", threads), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				if _, err := parseTNSParallel(data, threads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
