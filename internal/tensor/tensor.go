// Package tensor provides the coordinate (COO) sparse tensor format, its
// semi-sparse variant (sCOO), and the dense matrix/vector operands used by
// the PASTA benchmark kernels.
//
// Conventions follow the paper "A Parallel Sparse Tensor Benchmark Suite on
// CPUs and GPUs" (Li et al., 2020): values are single-precision floats,
// indices are 32-bit, and an Nth-order COO tensor with M non-zeros occupies
// 4(N+1)M bytes.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Value is the scalar element type of all tensors in the suite. The paper
// benchmarks single precision, so Value is float32.
type Value = float32

// Index is the 32-bit coordinate type used by COO and block indices.
type Index = uint32

// COO is a sparse tensor in coordinate format: one index array per mode and
// a flat value array. It makes no ordering guarantee unless a Sort* method
// has been called; SortOrder reports the active ordering.
type COO struct {
	// Dims holds the size of each mode; len(Dims) is the tensor order.
	Dims []Index
	// Inds holds one index array per mode, each of length NNZ().
	Inds [][]Index
	// Vals holds the non-zero values, parallel to the index arrays.
	Vals []Value

	// sortOrder records the mode permutation of the last sort, outermost
	// first, or nil if the ordering is unknown.
	sortOrder []int
}

// NewCOO returns an empty COO tensor with the given mode sizes and capacity
// for M non-zeros. It panics if dims is empty or contains a zero size.
func NewCOO(dims []Index, capacity int) *COO {
	if len(dims) == 0 {
		panic("tensor: NewCOO with no modes")
	}
	for n, d := range dims {
		if d == 0 {
			panic(fmt.Sprintf("tensor: NewCOO mode %d has zero size", n))
		}
	}
	t := &COO{
		Dims: append([]Index(nil), dims...),
		Inds: make([][]Index, len(dims)),
		Vals: make([]Value, 0, capacity),
	}
	for n := range t.Inds {
		t.Inds[n] = make([]Index, 0, capacity)
	}
	return t
}

// Order returns the number of modes.
func (t *COO) Order() int { return len(t.Dims) }

// NNZ returns the number of stored non-zero entries.
func (t *COO) NNZ() int { return len(t.Vals) }

// Dim returns the size of mode n.
func (t *COO) Dim(n int) Index { return t.Dims[n] }

// NumEl returns the number of positions in the dense index space as a
// float64 (the product easily overflows int64 for the paper's tensors,
// e.g. regL4d has (8.3M)^4 positions).
func (t *COO) NumEl() float64 {
	p := 1.0
	for _, d := range t.Dims {
		p *= float64(d)
	}
	return p
}

// Density returns NNZ divided by the dense position count.
func (t *COO) Density() float64 {
	n := t.NumEl()
	if n == 0 {
		return 0
	}
	return float64(t.NNZ()) / n
}

// StorageBytes returns the COO storage footprint following the paper's
// accounting: 4(N+1)M bytes (32-bit indices plus 32-bit values).
func (t *COO) StorageBytes() int64 {
	return int64(4*(t.Order()+1)) * int64(t.NNZ())
}

// Append adds one non-zero entry. idx must have one coordinate per mode;
// coordinates are not range-checked here (Validate does that).
func (t *COO) Append(idx []Index, v Value) {
	for n := range t.Inds {
		t.Inds[n] = append(t.Inds[n], idx[n])
	}
	t.Vals = append(t.Vals, v)
	t.sortOrder = nil
}

// AppendIdx3 adds one entry to a third-order tensor without an index slice
// allocation at the call site.
func (t *COO) AppendIdx3(i, j, k Index, v Value) {
	t.Inds[0] = append(t.Inds[0], i)
	t.Inds[1] = append(t.Inds[1], j)
	t.Inds[2] = append(t.Inds[2], k)
	t.Vals = append(t.Vals, v)
	t.sortOrder = nil
}

// Entry copies the coordinates of non-zero m into dst (which must have
// length Order) and returns its value.
func (t *COO) Entry(m int, dst []Index) Value {
	for n := range t.Inds {
		dst[n] = t.Inds[n][m]
	}
	return t.Vals[m]
}

// Clone returns a deep copy, preserving the recorded sort order.
func (t *COO) Clone() *COO {
	c := &COO{
		Dims: append([]Index(nil), t.Dims...),
		Inds: make([][]Index, t.Order()),
		Vals: append([]Value(nil), t.Vals...),
	}
	for n := range t.Inds {
		c.Inds[n] = append([]Index(nil), t.Inds[n]...)
	}
	if t.sortOrder != nil {
		c.sortOrder = append([]int(nil), t.sortOrder...)
	}
	return c
}

// Validate checks structural invariants: matching array lengths, in-range
// coordinates, and finite values.
func (t *COO) Validate() error {
	if len(t.Inds) != len(t.Dims) {
		return fmt.Errorf("tensor: %d index arrays for order-%d tensor", len(t.Inds), len(t.Dims))
	}
	m := len(t.Vals)
	for n, ind := range t.Inds {
		if len(ind) != m {
			return fmt.Errorf("tensor: mode-%d index array has %d entries, want %d", n, len(ind), m)
		}
		d := t.Dims[n]
		for x, i := range ind {
			if i >= d {
				return fmt.Errorf("tensor: entry %d mode %d index %d out of range [0,%d)", x, n, i, d)
			}
		}
	}
	for x, v := range t.Vals {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			return fmt.Errorf("tensor: entry %d has non-finite value %v", x, v)
		}
	}
	return nil
}

// ErrShapeMismatch is returned by operations whose operands must share
// order and mode sizes.
var ErrShapeMismatch = errors.New("tensor: operand shapes differ")

// SameShape reports whether two tensors have identical order and mode sizes.
func SameShape(a, b *COO) bool {
	if a.Order() != b.Order() {
		return false
	}
	for n := range a.Dims {
		if a.Dims[n] != b.Dims[n] {
			return false
		}
	}
	return true
}

// At returns the value at the given coordinates using a linear scan, and
// whether the coordinate is stored. It is O(M) and intended for tests and
// small tensors only.
func (t *COO) At(idx ...Index) (Value, bool) {
	if len(idx) != t.Order() {
		panic("tensor: At with wrong number of coordinates")
	}
scan:
	for m := 0; m < t.NNZ(); m++ {
		for n := range idx {
			if t.Inds[n][m] != idx[n] {
				continue scan
			}
		}
		return t.Vals[m], true
	}
	return 0, false
}

// ToMap returns a coordinate→value map. Duplicate coordinates are summed.
// Intended for tests; allocation is O(M).
func (t *COO) ToMap() map[string]Value {
	m := make(map[string]Value, t.NNZ())
	key := make([]byte, 0, 4*t.Order())
	for x := 0; x < t.NNZ(); x++ {
		key = key[:0]
		for n := range t.Inds {
			i := t.Inds[n][x]
			key = append(key, byte(i), byte(i>>8), byte(i>>16), byte(i>>24))
		}
		m[string(key)] += t.Vals[x]
	}
	return m
}

// String summarizes the tensor without printing its contents.
func (t *COO) String() string {
	return fmt.Sprintf("COO(order=%d dims=%v nnz=%d density=%.3g)", t.Order(), t.Dims, t.NNZ(), t.Density())
}
