package tensor

import "math/rand"

// RandomCOO generates a sparse tensor with approximately nnz uniformly
// distributed non-zeros (duplicates are coalesced, so the result may hold
// slightly fewer) and values uniform in (0, 1]. It is used by tests and by
// the dataset stand-ins for tensors with near-uniform non-zero patterns.
func RandomCOO(dims []Index, nnz int, rng *rand.Rand) *COO {
	t := NewCOO(dims, nnz)
	idx := make([]Index, len(dims))
	for m := 0; m < nnz; m++ {
		for n, d := range dims {
			idx[n] = Index(rng.Intn(int(d)))
		}
		// Values in (0,1] so stored entries are never exact zeros.
		t.Append(idx, Value(1-rng.Float64()))
	}
	t.Dedup()
	return t
}

// RandomCOOSkewed generates a sparse tensor whose mode-0 index follows a
// Zipf-like distribution (exponent ~1.1), producing the fiber-length and
// output-row skew typical of the paper's graph-derived real tensors.
func RandomCOOSkewed(dims []Index, nnz int, rng *rand.Rand) *COO {
	t := NewCOO(dims, nnz)
	idx := make([]Index, len(dims))
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(dims[0]-1))
	for m := 0; m < nnz; m++ {
		idx[0] = Index(zipf.Uint64())
		for n := 1; n < len(dims); n++ {
			idx[n] = Index(rng.Intn(int(dims[n])))
		}
		t.Append(idx, Value(1-rng.Float64()))
	}
	t.Dedup()
	return t
}
