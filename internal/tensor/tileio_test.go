package tensor

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tiledImage(t *testing.T, x *COO, tileNNZ int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinaryTiled(&buf, x, tileNNZ); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTiledRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := RandomCOO([]Index{40, 30, 20}, 900, rng)
	raw := tiledImage(t, x, 128)
	if raw[4] != binVersion3 {
		t.Fatalf("version byte %d, want %d", raw[4], binVersion3)
	}
	// The in-core dispatch path assembles the full tensor.
	y, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if d := AbsDiff(x, y); d != 0 {
		t.Fatalf("content diff %v", d)
	}
	// The unknown-size path agrees.
	yu, err := ReadBinary(opaqueReader{bytes.NewReader(raw)})
	if err != nil {
		t.Fatal(err)
	}
	if !identicalCOO(y, yu) {
		t.Fatal("sized and chunked v3 parses differ")
	}
}

func TestTileReaderStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := RandomCOO([]Index{64, 48, 32}, 1000, rng)
	raw := tiledImage(t, x, 100)
	tr, err := NewTileReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if want := (x.NNZ() + 99) / 100; tr.NumTiles() != want {
		t.Fatalf("tile count %d, want %d", tr.NumTiles(), want)
	}
	if tr.TargetTileNNZ != 100 || tr.NNZ != uint64(x.NNZ()) {
		t.Fatalf("header fields target=%d nnz=%d", tr.TargetTileNNZ, tr.NNZ)
	}
	// Reassemble through one reused Tile buffer; every index must sit
	// inside its directory bounding box (ReadTile enforces it, so a
	// successful read is the assertion).
	got := &COO{Dims: tr.Dims, Inds: make([][]Index, tr.Order())}
	var tl Tile
	var total uint64
	for i := 0; i < tr.NumTiles(); i++ {
		if err := tr.ReadTile(i, &tl); err != nil {
			t.Fatalf("tile %d: %v", i, err)
		}
		if uint64(tl.NNZ()) != uint64(tr.Tiles[i].Count) {
			t.Fatalf("tile %d decoded %d entries, directory says %d", i, tl.NNZ(), tr.Tiles[i].Count)
		}
		total += uint64(tl.NNZ())
		for n := range got.Inds {
			got.Inds[n] = append(got.Inds[n], tl.Inds[n]...)
		}
		got.Vals = append(got.Vals, tl.Vals...)
	}
	if total != tr.NNZ {
		t.Fatalf("tiles held %d entries, header says %d", total, tr.NNZ)
	}
	if d := AbsDiff(x, got); d != 0 {
		t.Fatalf("streamed content diff %v", d)
	}
	// The streamed payload is the naturally sorted tensor.
	if !got.isSorted(naturalOrder(got.Order())) {
		t.Fatal("tile stream is not in natural sort order")
	}
}

func TestTiledSingleTile(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := RandomCOO([]Index{10, 10, 10}, 200, rng)
	raw := tiledImage(t, x, 10_000_000)
	tr, err := NewTileReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTiles() != 1 {
		t.Fatalf("tile count %d, want 1", tr.NumTiles())
	}
	if tr.MaxTileBytes() != int64(4*(x.Order()+1)*x.NNZ()) {
		t.Fatalf("MaxTileBytes %d", tr.MaxTileBytes())
	}
	var tl Tile
	if err := tr.ReadTile(0, &tl); err != nil {
		t.Fatal(err)
	}
	if tl.NNZ() != x.NNZ() {
		t.Fatalf("single tile holds %d entries, want %d", tl.NNZ(), x.NNZ())
	}
}

func TestTiledEmptyTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := RandomCOO([]Index{16, 16, 16}, 120, rng)
	x.SortNatural()
	nnz := uint64(x.NNZ())
	// Explicit bounds with empty tiles at the front, middle, and end.
	var buf bytes.Buffer
	if err := writeBinaryTiled(&buf, x, 50, []uint64{0, 0, 50, 50, 50, nnz, nnz}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	tr, err := NewTileReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTiles() != 6 {
		t.Fatalf("tile count %d, want 6", tr.NumTiles())
	}
	var tl Tile
	gotNNZ := 0
	for i := 0; i < tr.NumTiles(); i++ {
		ti := &tr.Tiles[i]
		if err := tr.ReadTile(i, &tl); err != nil {
			t.Fatalf("tile %d: %v", i, err)
		}
		gotNNZ += tl.NNZ()
		if ti.Empty() {
			if tl.NNZ() != 0 || ti.Bytes != 0 {
				t.Fatalf("empty tile %d decoded %d entries, %d bytes", i, tl.NNZ(), ti.Bytes)
			}
			for n := 0; n < tr.Order(); n++ {
				if ti.BoxLo[n] != emptyBoxLo || ti.BoxHi[n] != 0 {
					t.Fatalf("empty tile %d box sentinel wrong: [%d,%d]", i, ti.BoxLo[n], ti.BoxHi[n])
				}
			}
		}
	}
	if gotNNZ != x.NNZ() {
		t.Fatalf("tiles held %d entries, want %d", gotNNZ, x.NNZ())
	}
	// The in-core path tolerates empty tiles too.
	y, err := ReadBinary(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if d := AbsDiff(x, y); d != 0 {
		t.Fatalf("content diff %v", d)
	}
}

func TestTiledEmptyTensor(t *testing.T) {
	x := NewCOO([]Index{4, 5}, 0)
	raw := tiledImage(t, x, 64)
	tr, err := NewTileReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTiles() != 0 || tr.NNZ != 0 {
		t.Fatalf("empty tensor parsed as %d tiles, %d nnz", tr.NumTiles(), tr.NNZ)
	}
	if _, err := ReadBinary(bytes.NewReader(raw)); err != nil {
		t.Fatal(err)
	}
}

// TestTiledCorruption is the v3 leg of the corrupt-input fault matrix:
// every corruption — tile payload bit-flips, directory bit-flips,
// truncation at any prefix — must produce an error, never a panic or
// silently wrong data.
func TestTiledCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := RandomCOO([]Index{30, 30, 30}, 400, rng)
	raw := tiledImage(t, x, 64)
	tr, err := NewTileReader(bytes.NewReader(raw), int64(len(raw)))
	if err != nil {
		t.Fatal(err)
	}

	t.Run("tile-payload-flip", func(t *testing.T) {
		for i := range tr.Tiles {
			ti := &tr.Tiles[i]
			for _, at := range []uint64{ti.Offset, ti.Offset + uint64(ti.Bytes)/2, ti.Offset + uint64(ti.Bytes) - 1} {
				bad := append([]byte(nil), raw...)
				bad[at] ^= 0x40
				btr, err := NewTileReader(bytes.NewReader(bad), int64(len(bad)))
				if err != nil {
					t.Fatalf("tile %d: directory parse should survive payload corruption: %v", i, err)
				}
				var tl Tile
				if err := btr.ReadTile(i, &tl); err == nil {
					t.Fatalf("tile %d: corrupt payload at %d read without error", i, at)
				}
				if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
					t.Fatalf("tile %d: in-core read accepted corrupt payload at %d", i, at)
				}
			}
		}
	})

	t.Run("directory-flip", func(t *testing.T) {
		// The directory spans from the end of the header checksum to the
		// first tile offset minus the directory checksum.
		dirStart := uint64(12+24+4*3) + 4
		dirEnd := tr.Tiles[0].Offset - 4
		for at := dirStart; at < dirEnd; at += 7 {
			bad := append([]byte(nil), raw...)
			bad[at] ^= 0x01
			if _, err := NewTileReader(bytes.NewReader(bad), int64(len(bad))); err == nil {
				t.Fatalf("directory corruption at %d parsed without error", at)
			}
			if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
				t.Fatalf("in-core read accepted directory corruption at %d", at)
			}
		}
	})

	t.Run("truncation", func(t *testing.T) {
		for cut := 0; cut < len(raw); cut += 97 {
			trunc := raw[:cut]
			if _, err := NewTileReader(bytes.NewReader(trunc), int64(len(trunc))); err == nil {
				t.Fatalf("truncation at %d parsed a TileReader without error", cut)
			}
			if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
				t.Fatalf("in-core read accepted truncation at %d", cut)
			}
		}
		// A reader over a full directory but truncated data errors at
		// ReadTile, not at open, when only ReaderAt size lies.
		last := tr.Tiles[len(tr.Tiles)-1]
		cut := last.Offset + uint64(last.Bytes) - 3
		if _, err := NewTileReader(bytes.NewReader(raw[:cut]), int64(cut)); err == nil {
			t.Fatal("NewTileReader accepted an input shorter than the directory promises")
		}
	})
}

func TestReadTileDirectory(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(16))
	x := RandomCOO([]Index{20, 20, 20}, 300, rng)

	v3 := filepath.Join(dir, "tiled.bten")
	if err := WriteFileTiled(v3, x, 64); err != nil {
		t.Fatal(err)
	}
	tr, ok, err := ReadTileDirectory(v3)
	if err != nil || !ok {
		t.Fatalf("v3 directory: ok=%v err=%v", ok, err)
	}
	if tr.NumTiles() != (x.NNZ()+63)/64 {
		t.Fatalf("directory lists %d tiles", tr.NumTiles())
	}

	// v2 files degrade to "not tiled", not an error.
	v2 := filepath.Join(dir, "flat.bten")
	if err := WriteFile(v2, x); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := ReadTileDirectory(v2); err != nil || ok {
		t.Fatalf("v2 file: ok=%v err=%v, want graceful degrade", ok, err)
	}

	// ReadFileStats reports the tiled format version.
	if _, st, err := ReadFileStats(v3); err != nil || st.Format != "pstb-v3" {
		t.Fatalf("ReadFileStats: format=%q err=%v", st.Format, err)
	}

	if err := WriteFileTiled(filepath.Join(dir, "bad.tns"), x, 64); err == nil ||
		!strings.Contains(err.Error(), ".bten") {
		t.Fatalf("WriteFileTiled accepted a non-.bten path: %v", err)
	}
}

func TestOpenTiledFile(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(17))
	x := RandomCOO([]Index{25, 25, 25}, 500, rng)
	path := filepath.Join(dir, "t.bten")
	if err := WriteFileTiled(path, x, 100); err != nil {
		t.Fatal(err)
	}
	tr, err := OpenTiled(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var tl Tile
	total := 0
	for i := 0; i < tr.NumTiles(); i++ {
		if err := tr.ReadTile(i, &tl); err != nil {
			t.Fatalf("tile %d: %v", i, err)
		}
		total += tl.NNZ()
	}
	if total != x.NNZ() {
		t.Fatalf("streamed %d entries, want %d", total, x.NNZ())
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestReadBinaryAllocsConstant is the satellite-1 regression gate: the
// chunked read path stages through a pooled scratch buffer, so the
// allocation count of a read must not grow with the number of chunks a
// payload spans. A multi-chunk read may cost at most a couple more
// allocations than a single-chunk read (pool warm-up), never one per
// chunk.
func TestReadBinaryAllocsConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	mk := func(nnz int) []byte {
		x := RandomCOO([]Index{1 << 12, 1 << 12, 1 << 12}, nnz, rng)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, x); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	small := mk(40_000)   // ~0.6 MiB payload: one chunk
	large := mk(400_000)  // ~6 MiB payload: several chunks
	measure := func(raw []byte) float64 {
		r := bytes.NewReader(raw)
		return testing.AllocsPerRun(10, func() {
			r.Reset(raw)
			if _, err := ReadBinarySized(r, int64(len(raw))); err != nil {
				t.Fatal(err)
			}
		})
	}
	aSmall, aLarge := measure(small), measure(large)
	if aLarge > aSmall+4 {
		t.Fatalf("multi-chunk read costs %.0f allocs vs %.0f single-chunk: scratch is being reallocated per chunk", aLarge, aSmall)
	}
	// Streaming tile reads into a reused buffer settle to near-zero
	// allocations once the buffers have grown.
	x, _ := ReadBinarySized(bytes.NewReader(large), int64(len(large)))
	var tbuf bytes.Buffer
	if err := WriteBinaryTiled(&tbuf, x, 50_000); err != nil {
		t.Fatal(err)
	}
	traw := tbuf.Bytes()
	tr, err := NewTileReader(bytes.NewReader(traw), int64(len(traw)))
	if err != nil {
		t.Fatal(err)
	}
	var tl Tile
	for i := 0; i < tr.NumTiles(); i++ { // warm the buffers
		if err := tr.ReadTile(i, &tl); err != nil {
			t.Fatal(err)
		}
	}
	perTile := testing.AllocsPerRun(10, func() {
		for i := 0; i < tr.NumTiles(); i++ {
			if err := tr.ReadTile(i, &tl); err != nil {
				t.Fatal(err)
			}
		}
	})
	if perTile > 1 {
		t.Fatalf("warmed tile reads cost %.1f allocs per pass, want ~0", perTile)
	}
}

// TestTiledFileUnreadable pins the error path when the file vanishes.
func TestTiledFileUnreadable(t *testing.T) {
	if _, err := OpenTiled(filepath.Join(t.TempDir(), "missing.bten")); !os.IsNotExist(err) {
		t.Fatalf("err = %v, want not-exist", err)
	}
}
