package tensor

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"unsafe"

	"repro/internal/parallel"
)

// parallelTNSMinBytes is the input size below which ParseTNS parses
// serially: splitting and stitching overhead beats the gain on small
// files.
const parallelTNSMinBytes = 1 << 20

// ParseTNS parses FROSTT .tns bytes into a COO tensor. Large inputs are
// split into newline-aligned byte ranges parsed concurrently on
// parallel.For workers and stitched back in order, so the result — dims,
// entry order, and values — is identical to a serial parse. Text parsing
// dominates load time for the paper's 100M-non-zero tensors, which is
// why this path is parallel (and why the PSTB binary format exists at
// all).
func ParseTNS(data []byte) (*COO, error) {
	threads := parallel.NumThreads()
	if len(data) < parallelTNSMinBytes || threads <= 1 {
		return parseTNSSerial(data)
	}
	return parseTNSParallel(data, threads)
}

// parseTNSSerial is the single-worker reference parser: one shard
// covering the whole input. parseTNSParallel must produce byte-identical
// results (tnsparse_test.go asserts this).
func parseTNSSerial(data []byte) (*COO, error) {
	order, err := tnsOrder(data)
	if err != nil {
		return nil, err
	}
	var sh tnsShard
	parseTNSShard(data, order, &sh)
	if sh.err != nil {
		return nil, fmt.Errorf("tns: line %d: %v", sh.errLine, sh.err)
	}
	return &COO{Dims: sh.dims, Inds: sh.inds, Vals: sh.vals}, nil
}

func parseTNSParallel(data []byte, threads int) (*COO, error) {
	order, err := tnsOrder(data)
	if err != nil {
		return nil, err
	}
	// Chunk boundaries: near-equal byte ranges advanced to the next
	// newline so no line straddles two shards.
	bounds := make([]int, 1, threads+1)
	for w := 1; w < threads; w++ {
		p := len(data) / threads * w
		if p <= bounds[len(bounds)-1] {
			continue
		}
		nl := bytes.IndexByte(data[p:], '\n')
		if nl < 0 {
			break
		}
		p += nl + 1
		if p < len(data) && p > bounds[len(bounds)-1] {
			bounds = append(bounds, p)
		}
	}
	bounds = append(bounds, len(data))
	nshards := len(bounds) - 1
	shards := make([]tnsShard, nshards)
	opt := parallel.Options{Schedule: parallel.Static, Threads: nshards}
	parallel.For(nshards, opt, func(lo, hi, _ int) {
		for s := lo; s < hi; s++ {
			parseTNSShard(data[bounds[s]:bounds[s+1]], order, &shards[s])
		}
	})

	// Report the first error in input order; every shard before it
	// completed, so its global line number is exact.
	lineBase := 0
	for s := range shards {
		if shards[s].err != nil {
			return nil, fmt.Errorf("tns: line %d: %v", lineBase+shards[s].errLine, shards[s].err)
		}
		lineBase += shards[s].lines
	}

	total := 0
	for s := range shards {
		total += len(shards[s].vals)
	}
	dims := make([]Index, order)
	for s := range shards {
		for n, d := range shards[s].dims {
			if d > dims[n] {
				dims[n] = d
			}
		}
	}
	t := &COO{
		Dims: dims,
		Inds: make([][]Index, order),
		Vals: make([]Value, total),
	}
	for n := range t.Inds {
		t.Inds[n] = make([]Index, total)
	}
	offs := make([]int, nshards+1)
	for s := range shards {
		offs[s+1] = offs[s] + len(shards[s].vals)
	}
	parallel.For(nshards, opt, func(lo, hi, _ int) {
		for s := lo; s < hi; s++ {
			copy(t.Vals[offs[s]:offs[s+1]], shards[s].vals)
			for n := 0; n < order; n++ {
				copy(t.Inds[n][offs[s]:offs[s+1]], shards[s].inds[n])
			}
		}
	})
	return t, nil
}

// tnsShard is one worker's private builder: entries in input order plus
// the per-mode maxima needed to infer dims.
type tnsShard struct {
	inds    [][]Index
	vals    []Value
	dims    []Index
	lines   int // lines scanned, including blanks and comments
	err     error
	errLine int // 1-based line of err within this shard
}

// tnsOrder finds the first data line and returns its field count minus
// one — the tensor order every other line must match.
func tnsOrder(data []byte) (int, error) {
	line := 0
	for len(data) > 0 {
		var ln []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			ln, data = data[:nl], data[nl+1:]
		} else {
			ln, data = data, nil
		}
		line++
		ln = trimTNSSpace(ln)
		if len(ln) == 0 || ln[0] == '#' {
			continue
		}
		order := countTNSFields(ln) - 1
		if order < 1 {
			return 0, fmt.Errorf("tns: line %d: need at least one coordinate and a value", line)
		}
		if order > 255 {
			return 0, fmt.Errorf("tns: line %d: order %d exceeds format limit of 255", line, order)
		}
		return order, nil
	}
	return 0, fmt.Errorf("tns: empty input")
}

// parseTNSShard parses one newline-aligned byte range into sh. On a bad
// line it records the cause and the shard-local line number but still
// leaves sh.lines as the count scanned so far (callers only need full
// counts for shards before the first error).
func parseTNSShard(data []byte, order int, sh *tnsShard) {
	sh.inds = make([][]Index, order)
	sh.dims = make([]Index, order)
	coords := make([]Index, order)
	for len(data) > 0 {
		var ln []byte
		if nl := bytes.IndexByte(data, '\n'); nl >= 0 {
			ln, data = data[:nl], data[nl+1:]
		} else {
			ln, data = data, nil
		}
		sh.lines++
		ln = trimTNSSpace(ln)
		if len(ln) == 0 || ln[0] == '#' {
			continue
		}
		v, err := parseTNSDataLine(ln, order, coords)
		if err != nil {
			sh.err = err
			sh.errLine = sh.lines
			return
		}
		for n := 0; n < order; n++ {
			i := coords[n]
			sh.inds[n] = append(sh.inds[n], i)
			if i+1 > sh.dims[n] {
				sh.dims[n] = i + 1
			}
		}
		sh.vals = append(sh.vals, v)
	}
}

// parseTNSDataLine parses "c1 c2 ... cN value" into coords (0-based) and
// the value. ln has been trimmed and is non-empty.
func parseTNSDataLine(ln []byte, order int, coords []Index) (Value, error) {
	rest := ln
	for n := 0; n < order; n++ {
		var tok []byte
		tok, rest = nextTNSField(rest)
		if tok == nil {
			return 0, fmt.Errorf("%d fields, want %d", countTNSFields(ln), order+1)
		}
		i, err := parseTNSCoord(tok)
		if err != nil {
			return 0, err
		}
		coords[n] = i
	}
	tok, rest := nextTNSField(rest)
	if tok == nil {
		return 0, fmt.Errorf("%d fields, want %d", countTNSFields(ln), order+1)
	}
	if extra, _ := nextTNSField(rest); extra != nil {
		return 0, fmt.Errorf("%d fields, want %d", countTNSFields(ln), order+1)
	}
	v, err := strconv.ParseFloat(bstr(tok), 32)
	if err != nil {
		return 0, fmt.Errorf("bad value %q: %v", tok, err)
	}
	return Value(v), nil
}

// parseTNSCoord converts a 1-based text coordinate to a 0-based Index.
// It rejects zero (the format is 1-based) and anything above 2^32-1,
// whose -1/+1 round trip through the 32-bit Index type would wrap and
// silently corrupt the inferred dims.
func parseTNSCoord(tok []byte) (Index, error) {
	var u uint64
	for _, c := range tok {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("bad coordinate %q: invalid syntax", tok)
		}
		u = u*10 + uint64(c-'0')
		if u > math.MaxUint32 {
			return 0, fmt.Errorf("coordinate %q overflows the 32-bit index space", tok)
		}
	}
	if u == 0 {
		return 0, fmt.Errorf("coordinates are 1-based, got 0")
	}
	return Index(u - 1), nil
}

// nextTNSField returns the next whitespace-separated token and the
// remainder, or (nil, rest) when none is left.
func nextTNSField(b []byte) (tok, rest []byte) {
	i := 0
	for i < len(b) && isTNSSpace(b[i]) {
		i++
	}
	if i == len(b) {
		return nil, nil
	}
	j := i
	for j < len(b) && !isTNSSpace(b[j]) {
		j++
	}
	return b[i:j], b[j:]
}

func countTNSFields(b []byte) int {
	n := 0
	for {
		var tok []byte
		tok, b = nextTNSField(b)
		if tok == nil {
			return n
		}
		n++
	}
}

func trimTNSSpace(b []byte) []byte {
	for len(b) > 0 && isTNSSpace(b[0]) {
		b = b[1:]
	}
	for len(b) > 0 && isTNSSpace(b[len(b)-1]) {
		b = b[:len(b)-1]
	}
	return b
}

func isTNSSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f'
}

// bstr views a byte slice as a string without copying (the slice must
// not be mutated while the string is live; parse fields never are).
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(unsafe.SliceData(b), len(b))
}
