package tensor

import "repro/internal/parallel"

// ModeOrder returns the canonical mode permutation that places mode n last
// and keeps the remaining modes in ascending order. Sorting a tensor with
// this permutation makes the mode-n fibers contiguous, which is the
// pre-processing step of the Ttv and Ttm kernels (Algorithm 1).
func ModeOrder(order, n int) []int {
	perm := make([]int, 0, order)
	for m := 0; m < order; m++ {
		if m != n {
			perm = append(perm, m)
		}
	}
	return append(perm, n)
}

// Sort orders the non-zeros lexicographically by the given mode
// permutation (outermost mode first). It panics if perm is not a
// permutation of the modes.
func (t *COO) Sort(perm []int) {
	if !validPerm(perm, t.Order()) {
		panic("tensor: Sort with invalid mode permutation")
	}
	if t.isSorted(perm) {
		t.sortOrder = append(t.sortOrder[:0], perm...)
		return
	}
	idx := make([]int32, t.NNZ())
	for i := range idx {
		idx[i] = int32(i)
	}
	inds := t.Inds
	parallel.SortInt32s(idx, func(x, y int32) bool {
		for _, n := range perm {
			ia, ib := inds[n][x], inds[n][y]
			if ia != ib {
				return ia < ib
			}
		}
		return false
	})
	t.applyPerm(idx)
	t.sortOrder = append([]int(nil), perm...)
}

// SortForMode sorts so that mode-n fibers are contiguous, i.e. by
// ModeOrder(order, n).
func (t *COO) SortForMode(n int) { t.Sort(ModeOrder(t.Order(), n)) }

// SortNatural sorts by mode 0, 1, ..., N-1, the natural order in which
// FROSTT files are usually stored.
func (t *COO) SortNatural() {
	perm := make([]int, t.Order())
	for i := range perm {
		perm[i] = i
	}
	t.Sort(perm)
}

// SortOrder returns the mode permutation of the last sort (outermost
// first), or nil if the ordering is unknown. The returned slice must not
// be modified.
func (t *COO) SortOrder() []int { return t.sortOrder }

// IsSortedBy reports whether the tensor is known to be sorted by perm.
func (t *COO) IsSortedBy(perm []int) bool {
	if len(t.sortOrder) != len(perm) {
		return false
	}
	for i := range perm {
		if t.sortOrder[i] != perm[i] {
			return false
		}
	}
	return true
}

func validPerm(perm []int, order int) bool {
	if len(perm) != order {
		return false
	}
	seen := make([]bool, order)
	for _, n := range perm {
		if n < 0 || n >= order || seen[n] {
			return false
		}
		seen[n] = true
	}
	return true
}

// isSorted verifies the actual data ordering (used to skip re-sorting
// already-ordered inputs, which FROSTT files typically are).
func (t *COO) isSorted(perm []int) bool {
	m := t.NNZ()
	for x := 1; x < m; x++ {
		for _, n := range perm {
			a, b := t.Inds[n][x-1], t.Inds[n][x]
			if a < b {
				break
			}
			if a > b {
				return false
			}
		}
	}
	return true
}

// applyPerm reorders every parallel array by the given index permutation.
func (t *COO) applyPerm(idx []int32) {
	for n := range t.Inds {
		src := t.Inds[n]
		dst := make([]Index, len(src))
		for i, x := range idx {
			dst[i] = src[x]
		}
		t.Inds[n] = dst
	}
	vsrc := t.Vals
	vdst := make([]Value, len(vsrc))
	for i, x := range idx {
		vdst[i] = vsrc[x]
	}
	t.Vals = vdst
}

// Dedup coalesces duplicate coordinates by summing their values. The
// tensor is left sorted in natural order. Generators use this to realize
// Bernoulli-sampled tensors where the same coordinate may be drawn twice.
func (t *COO) Dedup() {
	if t.NNZ() == 0 {
		return
	}
	t.SortNatural()
	w := 0
	m := t.NNZ()
	for x := 1; x < m; x++ {
		if t.sameCoord(w, x) {
			t.Vals[w] += t.Vals[x]
			continue
		}
		w++
		if w != x {
			for n := range t.Inds {
				t.Inds[n][w] = t.Inds[n][x]
			}
			t.Vals[w] = t.Vals[x]
		}
	}
	for n := range t.Inds {
		t.Inds[n] = t.Inds[n][:w+1]
	}
	t.Vals = t.Vals[:w+1]
}

func (t *COO) sameCoord(a, b int) bool {
	for n := range t.Inds {
		if t.Inds[n][a] != t.Inds[n][b] {
			return false
		}
	}
	return true
}

// FiberPointers returns the start offsets of the mode-n fibers of a tensor
// sorted with SortForMode(n): fptr has one entry per fiber plus a final
// sentinel equal to NNZ. A mode-n fiber is a maximal run of non-zeros that
// agree on every coordinate except mode n. It panics if the tensor is not
// sorted for mode n.
func (t *COO) FiberPointers(n int) []int64 {
	if !t.IsSortedBy(ModeOrder(t.Order(), n)) {
		panic("tensor: FiberPointers requires SortForMode(n) first")
	}
	m := t.NNZ()
	fptr := make([]int64, 0, 16)
	for x := 0; x < m; x++ {
		if x == 0 || !t.sameFiber(x-1, x, n) {
			fptr = append(fptr, int64(x))
		}
	}
	return append(fptr, int64(m))
}

func (t *COO) sameFiber(a, b, skip int) bool {
	for n := range t.Inds {
		if n == skip {
			continue
		}
		if t.Inds[n][a] != t.Inds[n][b] {
			return false
		}
	}
	return true
}
