package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustValidate(t *testing.T, x *COO) {
	t.Helper()
	if err := x.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestNewCOOBasics(t *testing.T) {
	x := NewCOO([]Index{4, 5, 6}, 8)
	if x.Order() != 3 {
		t.Fatalf("Order = %d, want 3", x.Order())
	}
	if x.NNZ() != 0 {
		t.Fatalf("NNZ = %d, want 0", x.NNZ())
	}
	if x.Dim(1) != 5 {
		t.Fatalf("Dim(1) = %d, want 5", x.Dim(1))
	}
	x.AppendIdx3(0, 1, 2, 1.5)
	x.Append([]Index{3, 4, 5}, 2.5)
	if x.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", x.NNZ())
	}
	mustValidate(t, x)
	if got := x.NumEl(); got != 120 {
		t.Fatalf("NumEl = %v, want 120", got)
	}
	if got := x.Density(); got != 2.0/120 {
		t.Fatalf("Density = %v, want %v", got, 2.0/120)
	}
	if got := x.StorageBytes(); got != 4*4*2 {
		t.Fatalf("StorageBytes = %d, want 32", got)
	}
}

func TestNewCOOPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"no modes":  func() { NewCOO(nil, 0) },
		"zero size": func() { NewCOO([]Index{3, 0}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestValidateCatchesOutOfRange(t *testing.T) {
	x := NewCOO([]Index{2, 2}, 1)
	x.Append([]Index{1, 1}, 1)
	x.Inds[0][0] = 5
	if err := x.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range index")
	}
}

func TestValidateCatchesNaN(t *testing.T) {
	x := NewCOO([]Index{2, 2}, 1)
	x.Append([]Index{1, 1}, Value(nan32()))
	if err := x.Validate(); err == nil {
		t.Fatal("Validate accepted NaN value")
	}
}

func nan32() float32 {
	z := float32(0)
	return z / z
}

func TestAtAndToMap(t *testing.T) {
	x := NewCOO([]Index{3, 3}, 4)
	x.Append([]Index{0, 1}, 2)
	x.Append([]Index{2, 2}, 3)
	x.Append([]Index{0, 1}, 5) // duplicate coordinate
	if v, ok := x.At(2, 2); !ok || v != 3 {
		t.Fatalf("At(2,2) = %v,%v want 3,true", v, ok)
	}
	if _, ok := x.At(1, 1); ok {
		t.Fatal("At(1,1) should be absent")
	}
	m := x.ToMap()
	if len(m) != 2 {
		t.Fatalf("ToMap has %d keys, want 2 (duplicates summed)", len(m))
	}
}

func TestCloneIndependence(t *testing.T) {
	x := RandomCOO([]Index{10, 10, 10}, 50, rand.New(rand.NewSource(1)))
	c := x.Clone()
	c.Vals[0] = 999
	c.Inds[0][0] = 9
	if x.Vals[0] == 999 || x.Inds[0][0] == c.Inds[0][0] && c.Inds[0][0] == 9 && x.Inds[0][0] == 9 {
		// Only fails if the clone aliased storage.
		if &x.Vals[0] == &c.Vals[0] {
			t.Fatal("Clone aliased value storage")
		}
	}
	if x.NNZ() != c.NNZ() {
		t.Fatal("Clone changed NNZ")
	}
}

func TestSortNatural(t *testing.T) {
	x := NewCOO([]Index{4, 4}, 4)
	x.Append([]Index{3, 0}, 1)
	x.Append([]Index{0, 2}, 2)
	x.Append([]Index{0, 1}, 3)
	x.Append([]Index{2, 3}, 4)
	x.SortNatural()
	wantI := []Index{0, 0, 2, 3}
	wantJ := []Index{1, 2, 3, 0}
	wantV := []Value{3, 2, 4, 1}
	for m := range wantV {
		if x.Inds[0][m] != wantI[m] || x.Inds[1][m] != wantJ[m] || x.Vals[m] != wantV[m] {
			t.Fatalf("entry %d = (%d,%d,%v), want (%d,%d,%v)",
				m, x.Inds[0][m], x.Inds[1][m], x.Vals[m], wantI[m], wantJ[m], wantV[m])
		}
	}
	if !x.IsSortedBy([]int{0, 1}) {
		t.Fatal("sort order not recorded")
	}
}

func TestSortForModePutsModeLast(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := RandomCOO([]Index{8, 9, 10}, 200, rng)
	for mode := 0; mode < 3; mode++ {
		x.SortForMode(mode)
		perm := ModeOrder(3, mode)
		for m := 1; m < x.NNZ(); m++ {
			for _, n := range perm {
				a, b := x.Inds[n][m-1], x.Inds[n][m]
				if a < b {
					break
				}
				if a > b {
					t.Fatalf("mode %d: entries %d,%d out of order in mode %d", mode, m-1, m, n)
				}
			}
		}
	}
}

func TestSortPreservesContent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := RandomCOO([]Index{16, 16, 16}, 300, rng)
	before := x.ToMap()
	x.SortForMode(2)
	x.SortForMode(0)
	x.SortNatural()
	after := x.ToMap()
	if len(before) != len(after) {
		t.Fatalf("sort changed nnz: %d -> %d", len(before), len(after))
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatal("sort changed tensor content")
		}
	}
}

func TestSortInvalidPermPanics(t *testing.T) {
	x := NewCOO([]Index{2, 2}, 0)
	for _, perm := range [][]int{{0}, {0, 0}, {0, 2}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("perm %v: expected panic", perm)
				}
			}()
			x.Sort(perm)
		}()
	}
}

func TestModeOrder(t *testing.T) {
	cases := []struct {
		order, n int
		want     []int
	}{
		{3, 0, []int{1, 2, 0}},
		{3, 1, []int{0, 2, 1}},
		{3, 2, []int{0, 1, 2}},
		{4, 1, []int{0, 2, 3, 1}},
	}
	for _, c := range cases {
		got := ModeOrder(c.order, c.n)
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("ModeOrder(%d,%d) = %v, want %v", c.order, c.n, got, c.want)
				break
			}
		}
	}
}

func TestDedupSums(t *testing.T) {
	x := NewCOO([]Index{3, 3}, 5)
	x.Append([]Index{1, 1}, 1)
	x.Append([]Index{0, 0}, 2)
	x.Append([]Index{1, 1}, 3)
	x.Append([]Index{1, 1}, 4)
	x.Dedup()
	if x.NNZ() != 2 {
		t.Fatalf("NNZ after dedup = %d, want 2", x.NNZ())
	}
	if v, _ := x.At(1, 1); v != 8 {
		t.Fatalf("At(1,1) = %v, want 8", v)
	}
	if v, _ := x.At(0, 0); v != 2 {
		t.Fatalf("At(0,0) = %v, want 2", v)
	}
}

func TestFiberPointers(t *testing.T) {
	// Tensor with known fibers along mode 2:
	// (0,0,*): entries k=1,3; (0,1,*): k=0; (2,2,*): k=2.
	x := NewCOO([]Index{3, 3, 4}, 4)
	x.AppendIdx3(0, 0, 1, 1)
	x.AppendIdx3(0, 0, 3, 2)
	x.AppendIdx3(0, 1, 0, 3)
	x.AppendIdx3(2, 2, 2, 4)
	x.SortForMode(2)
	fptr := x.FiberPointers(2)
	want := []int64{0, 2, 3, 4}
	if len(fptr) != len(want) {
		t.Fatalf("fptr = %v, want %v", fptr, want)
	}
	for i := range want {
		if fptr[i] != want[i] {
			t.Fatalf("fptr = %v, want %v", fptr, want)
		}
	}
}

func TestFiberPointersRequiresSort(t *testing.T) {
	x := RandomCOO([]Index{5, 5, 5}, 20, rand.New(rand.NewSource(3)))
	x.sortOrder = nil
	defer func() {
		if recover() == nil {
			t.Fatal("FiberPointers on unsorted tensor should panic")
		}
	}()
	x.FiberPointers(1)
}

// Property: fiber pointers partition [0, M) and each fiber is coherent.
func TestFiberPointersProperty(t *testing.T) {
	f := func(seed int64, modeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		dims := []Index{Index(rng.Intn(20) + 1), Index(rng.Intn(20) + 1), Index(rng.Intn(20) + 1)}
		x := RandomCOO(dims, rng.Intn(400)+1, rng)
		mode := int(modeRaw) % 3
		x.SortForMode(mode)
		fptr := x.FiberPointers(mode)
		if fptr[0] != 0 || fptr[len(fptr)-1] != int64(x.NNZ()) {
			return false
		}
		for f := 0; f+1 < len(fptr); f++ {
			if fptr[f+1] <= fptr[f] {
				return false
			}
			for m := fptr[f] + 1; m < fptr[f+1]; m++ {
				if !x.sameFiber(int(m-1), int(m), mode) {
					return false
				}
			}
			// Adjacent fibers must differ.
			if f+1 < len(fptr)-1 && x.sameFiber(int(fptr[f+1]-1), int(fptr[f+1]), mode) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSameShape(t *testing.T) {
	a := NewCOO([]Index{2, 3}, 0)
	b := NewCOO([]Index{2, 3}, 0)
	c := NewCOO([]Index{3, 2}, 0)
	d := NewCOO([]Index{2, 3, 4}, 0)
	if !SameShape(a, b) {
		t.Fatal("identical shapes reported different")
	}
	if SameShape(a, c) || SameShape(a, d) {
		t.Fatal("different shapes reported same")
	}
}

func TestRandomCOOWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := RandomCOO([]Index{7, 13, 3}, 500, rng)
	mustValidate(t, x)
	if x.NNZ() == 0 || x.NNZ() > 500 {
		t.Fatalf("NNZ = %d, want in (0,500]", x.NNZ())
	}
	y := RandomCOOSkewed([]Index{100, 13, 3}, 500, rng)
	mustValidate(t, y)
}

func TestAbsDiff(t *testing.T) {
	a := NewCOO([]Index{4, 4}, 2)
	a.Append([]Index{0, 0}, 1)
	a.Append([]Index{1, 1}, 2)
	b := a.Clone()
	if d := AbsDiff(a, b); d != 0 {
		t.Fatalf("AbsDiff(identical) = %v, want 0", d)
	}
	b.Vals[1] = 2.5
	if d := AbsDiff(a, b); d != 0.5 {
		t.Fatalf("AbsDiff = %v, want 0.5", d)
	}
	c := NewCOO([]Index{4, 4}, 1)
	c.Append([]Index{3, 3}, 4)
	if d := AbsDiff(a, c); d != 4 {
		t.Fatalf("AbsDiff(disjoint) = %v, want 4", d)
	}
}
