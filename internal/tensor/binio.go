package tensor

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strings"
	"sync"
	"time"
)

// Binary tensor format ("PSTB"): parsing the FROSTT text format dominates
// load time for 100M-non-zero tensors, so the suite also supports a flat
// little-endian binary layout (the same reason ParTI and PASTA ship .bin
// formats). Three versions exist (v3, the tiled layout for out-of-core
// streaming, is specified in tileio.go):
//
// v1 (legacy, read-only):
//
//	magic "PSTB" | u8 1 | u8 order | u32 dims[order] |
//	u64 nnz | u32 inds[order][nnz] | f32 vals[nnz]
//
// v2 (written by WriteBinary) adds section-length fields and CRC32C
// checksums so truncation and corruption are detected instead of
// producing silent wrong data:
//
//	prologue: magic "PSTB" | u8 2 | u8 order | u16 flags=0 | u32 headerLen
//	header  (headerLen = 16+4*order bytes): u64 nnz | u32 dims[order] | u64 payloadLen
//	u32 headerCRC   — CRC32C over prologue+header
//	payload (payloadLen = 4*(order+1)*nnz bytes): u32 inds[order][nnz] | f32 vals[nnz]
//	u32 payloadCRC  — CRC32C over payload
//
// Both readers are bounded-memory: declared sizes are validated against
// the remaining input size when it is known (files, byte readers), and
// the payload is read in fixed-size chunks, so a truncated or malicious
// nnz/order field fails fast with a descriptive error instead of
// allocating tens of gigabytes up front.
const (
	binMagic    = "PSTB"
	binVersion1 = 1
	binVersion2 = 2
	binVersion3 = 3 // tiled layout, see tileio.go

	// maxBinNNZ is the sanity cap on the declared non-zero count, the
	// last line of defense when the input size is unknown.
	maxBinNNZ = 1 << 33
	// binChunkBytes is the fixed chunk size for payload encode/decode.
	binChunkBytes = 1 << 20
)

// castagnoli is the CRC32C polynomial table (hardware-accelerated on
// amd64/arm64), the checksum v2 uses for header and payload.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// WriteBinary emits the tensor in the PSTB v2 binary format.
func WriteBinary(w io.Writer, t *COO) error {
	order := t.Order()
	if order < 1 || order > 255 {
		return fmt.Errorf("tensor: order %d outside binary format range [1,255]", order)
	}
	nnz := uint64(t.NNZ())
	headerLen := uint32(16 + 4*order)
	payloadLen := uint64(order+1) * 4 * nnz
	scratch, put := acquireScratch(payloadLen)
	defer put()
	bw := bufio.NewWriterSize(w, len(scratch))
	crc := crc32.New(castagnoli)
	hw := io.MultiWriter(bw, crc)

	hdr := make([]byte, 12+headerLen)
	copy(hdr[0:4], binMagic)
	hdr[4] = binVersion2
	hdr[5] = byte(order)
	binary.LittleEndian.PutUint16(hdr[6:8], 0) // flags, reserved
	binary.LittleEndian.PutUint32(hdr[8:12], headerLen)
	binary.LittleEndian.PutUint64(hdr[12:20], nnz)
	for n := 0; n < order; n++ {
		binary.LittleEndian.PutUint32(hdr[20+4*n:], t.Dims[n])
	}
	binary.LittleEndian.PutUint64(hdr[20+4*order:], payloadLen)
	if _, err := hw.Write(hdr); err != nil {
		return err
	}
	if err := writeU32(bw, crc.Sum32()); err != nil {
		return err
	}

	pcrc := crc32.New(castagnoli)
	pw := io.MultiWriter(bw, pcrc)
	for n := range t.Inds {
		if err := writeU32Chunked(pw, t.Inds[n], scratch); err != nil {
			return err
		}
	}
	if err := writeF32Chunked(pw, t.Vals, scratch); err != nil {
		return err
	}
	if err := writeU32(bw, pcrc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteBinaryV1 emits the legacy checksum-free PSTB v1 layout. It exists
// for compatibility testing and for producing inputs older readers
// accept; new files should use WriteBinary.
func WriteBinaryV1(w io.Writer, t *COO) error {
	order := t.Order()
	if order < 1 || order > 255 {
		return fmt.Errorf("tensor: order %d outside binary format range [1,255]", order)
	}
	scratch, put := acquireScratch(uint64(order+1) * 4 * uint64(t.NNZ()))
	defer put()
	bw := bufio.NewWriterSize(w, len(scratch))
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binVersion1); err != nil {
		return err
	}
	if err := bw.WriteByte(byte(order)); err != nil {
		return err
	}
	if err := writeU32Chunked(bw, t.Dims, scratch); err != nil {
		return err
	}
	var nnzBuf [8]byte
	binary.LittleEndian.PutUint64(nnzBuf[:], uint64(t.NNZ()))
	if _, err := bw.Write(nnzBuf[:]); err != nil {
		return err
	}
	for n := range t.Inds {
		if err := writeU32Chunked(bw, t.Inds[n], scratch); err != nil {
			return err
		}
	}
	if err := writeF32Chunked(bw, t.Vals, scratch); err != nil {
		return err
	}
	return bw.Flush()
}

// scratchPool recycles the fixed chunk buffers the chunked encode and
// decode paths stage through. A streaming consumer reads thousands of
// tiles per run; without the pool each read (and each write) allocated
// up to a megabyte of scratch, which is pure GC churn on buffers with
// identical lifetimes. Buffers are always full-size; acquireScratch
// returns a shorter view for small payloads so the chunking behavior
// is unchanged.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, binChunkBytes)
		return &b
	},
}

// acquireScratch leases a pooled chunk buffer sized for the payload: a
// full chunk for large payloads, a smaller view for small ones (always
// a multiple of 4). The returned put func must be called exactly once
// when the buffer is no longer referenced.
func acquireScratch(payloadBytes uint64) ([]byte, func()) {
	n := uint64(binChunkBytes)
	if payloadBytes < n {
		n = payloadBytes
	}
	if n < 64 {
		n = 64
	}
	p := scratchPool.Get().(*[]byte)
	return (*p)[:n], func() { scratchPool.Put(p) }
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func writeU32Chunked(w io.Writer, src []uint32, scratch []byte) error {
	for len(src) > 0 {
		c := len(src)
		if m := len(scratch) / 4; c > m {
			c = m
		}
		b := scratch[:c*4]
		for i := 0; i < c; i++ {
			binary.LittleEndian.PutUint32(b[i*4:], src[i])
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
		src = src[c:]
	}
	return nil
}

func writeF32Chunked(w io.Writer, src []float32, scratch []byte) error {
	for len(src) > 0 {
		c := len(src)
		if m := len(scratch) / 4; c > m {
			c = m
		}
		b := scratch[:c*4]
		for i := 0; i < c; i++ {
			binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(src[i]))
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
		src = src[c:]
	}
	return nil
}

// ReadBinary parses either PSTB binary version. The remaining input size
// is auto-detected when r exposes it (os.File, bytes.Reader/Buffer, any
// io.Seeker); use ReadBinarySized to supply it for plain streams.
func ReadBinary(r io.Reader) (*COO, error) {
	t, _, err := readBinary(r, inputSize(r))
	return t, err
}

// ReadBinarySized parses a PSTB stream whose remaining length is known
// to be size bytes, letting the reader reject oversized nnz/order/dims
// declarations before allocating anything. size < 0 means unknown.
func ReadBinarySized(r io.Reader, size int64) (*COO, error) {
	t, _, err := readBinary(r, size)
	return t, err
}

// binReader wraps a reader with the remaining-size bookkeeping the
// bounded-memory contract needs: every declared section length is
// checked against rem before a single byte of it is read or allocated.
type binReader struct {
	r   io.Reader
	rem int64 // remaining input bytes, or -1 when unknown
}

// need verifies that n more bytes can exist in the input.
func (b *binReader) need(n uint64, what string) error {
	if b.rem >= 0 && (n > math.MaxInt64 || int64(n) > b.rem) {
		return fmt.Errorf("tensor: truncated or corrupt input: %s declares %d bytes but only %d remain", what, n, b.rem)
	}
	return nil
}

// full reads exactly len(p) bytes, mapping any shortfall to a
// descriptive truncation error.
func (b *binReader) full(p []byte, what string) error {
	if err := b.need(uint64(len(p)), what); err != nil {
		return err
	}
	if _, err := io.ReadFull(b.r, p); err != nil {
		return fmt.Errorf("tensor: %s: %v", what, err)
	}
	if b.rem >= 0 {
		b.rem -= int64(len(p))
	}
	return nil
}

func readBinary(r io.Reader, size int64) (*COO, int, error) {
	// No bufio wrapper: every read below is a bulk io.ReadFull, and the
	// corrupt-input sweeps parse tiny images by the tens of thousands —
	// a megabyte of buffer per call would be pure churn.
	b := &binReader{r: r, rem: size}
	head := make([]byte, 5)
	if err := b.full(head, "binary magic"); err != nil {
		return nil, 0, err
	}
	if string(head[:4]) != binMagic {
		return nil, 0, fmt.Errorf("tensor: bad magic %q, want %q", head[:4], binMagic)
	}
	switch head[4] {
	case binVersion1:
		t, err := readBinaryV1(b)
		return t, binVersion1, err
	case binVersion2:
		t, err := readBinaryV2(b)
		return t, binVersion2, err
	case binVersion3:
		t, err := readBinaryV3(b)
		return t, binVersion3, err
	}
	return nil, 0, fmt.Errorf("tensor: unsupported binary version %d", head[4])
}

func readBinaryV1(b *binReader) (*COO, error) {
	var orderB [1]byte
	if err := b.full(orderB[:], "binary order"); err != nil {
		return nil, err
	}
	order := int(orderB[0])
	if order == 0 {
		return nil, fmt.Errorf("tensor: binary tensor with zero order")
	}
	dimsRaw := make([]byte, 4*order+8)
	if err := b.full(dimsRaw, "binary dims"); err != nil {
		return nil, err
	}
	dims := make([]Index, order)
	for n := range dims {
		dims[n] = binary.LittleEndian.Uint32(dimsRaw[4*n:])
		if dims[n] == 0 {
			return nil, fmt.Errorf("tensor: binary mode %d has zero size", n)
		}
	}
	nnz := binary.LittleEndian.Uint64(dimsRaw[4*order:])
	if nnz > maxBinNNZ {
		return nil, fmt.Errorf("tensor: binary nnz %d exceeds sanity limit", nnz)
	}
	payloadLen := uint64(order+1) * 4 * nnz
	if err := b.need(payloadLen, "binary payload"); err != nil {
		return nil, err
	}
	t := &COO{Dims: dims, Inds: make([][]Index, order)}
	scratch, put := acquireScratch(payloadLen)
	defer put()
	prealloc := b.rem >= 0
	for n := 0; n < order; n++ {
		ind, err := readU32Chunked(b, nnz, prealloc, nil, scratch, fmt.Sprintf("binary mode-%d indices", n))
		if err != nil {
			return nil, err
		}
		t.Inds[n] = ind
	}
	vals, err := readF32Chunked(b, nnz, prealloc, nil, scratch, "binary values")
	if err != nil {
		return nil, err
	}
	t.Vals = vals
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("tensor: binary content invalid: %v", err)
	}
	return t, nil
}

func readBinaryV2(b *binReader) (*COO, error) {
	crc := crc32.New(castagnoli)
	crc.Write([]byte{'P', 'S', 'T', 'B', binVersion2}) // already consumed by dispatch
	pro := make([]byte, 7)
	if err := b.full(pro, "binary v2 prologue"); err != nil {
		return nil, err
	}
	crc.Write(pro)
	order := int(pro[0])
	flags := binary.LittleEndian.Uint16(pro[1:3])
	headerLen := binary.LittleEndian.Uint32(pro[3:7])
	if order == 0 {
		return nil, fmt.Errorf("tensor: binary tensor with zero order")
	}
	if flags != 0 {
		return nil, fmt.Errorf("tensor: binary v2 reserved flags %#x are non-zero", flags)
	}
	if want := uint32(16 + 4*order); headerLen != want {
		return nil, fmt.Errorf("tensor: binary v2 header length %d, want %d for order %d", headerLen, want, order)
	}
	hdr := make([]byte, headerLen)
	if err := b.full(hdr, "binary v2 header"); err != nil {
		return nil, err
	}
	crc.Write(hdr)
	var got [4]byte
	if err := b.full(got[:], "binary v2 header checksum"); err != nil {
		return nil, err
	}
	if sum := binary.LittleEndian.Uint32(got[:]); sum != crc.Sum32() {
		return nil, fmt.Errorf("tensor: binary v2 header checksum mismatch (stored %#08x, computed %#08x): corrupt header", sum, crc.Sum32())
	}

	nnz := binary.LittleEndian.Uint64(hdr[0:8])
	dims := make([]Index, order)
	for n := range dims {
		dims[n] = binary.LittleEndian.Uint32(hdr[8+4*n:])
		if dims[n] == 0 {
			return nil, fmt.Errorf("tensor: binary mode %d has zero size", n)
		}
	}
	payloadLen := binary.LittleEndian.Uint64(hdr[8+4*order:])
	if nnz > maxBinNNZ {
		return nil, fmt.Errorf("tensor: binary nnz %d exceeds sanity limit", nnz)
	}
	if want := uint64(order+1) * 4 * nnz; payloadLen != want {
		return nil, fmt.Errorf("tensor: binary v2 payload length %d inconsistent with order %d × nnz %d (want %d)", payloadLen, order, nnz, want)
	}
	if err := b.need(payloadLen+4, "binary v2 payload"); err != nil {
		return nil, err
	}

	pcrc := crc32.New(castagnoli)
	t := &COO{Dims: dims, Inds: make([][]Index, order)}
	scratch, put := acquireScratch(payloadLen)
	defer put()
	prealloc := b.rem >= 0
	for n := 0; n < order; n++ {
		ind, err := readU32Chunked(b, nnz, prealloc, pcrc, scratch, fmt.Sprintf("binary mode-%d indices", n))
		if err != nil {
			return nil, err
		}
		t.Inds[n] = ind
	}
	vals, err := readF32Chunked(b, nnz, prealloc, pcrc, scratch, "binary values")
	if err != nil {
		return nil, err
	}
	t.Vals = vals
	if err := b.full(got[:], "binary v2 payload checksum"); err != nil {
		return nil, err
	}
	if sum := binary.LittleEndian.Uint32(got[:]); sum != pcrc.Sum32() {
		return nil, fmt.Errorf("tensor: binary v2 payload checksum mismatch (stored %#08x, computed %#08x): corrupt payload", sum, pcrc.Sum32())
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("tensor: binary content invalid: %v", err)
	}
	return t, nil
}

// readU32Chunked reads n little-endian u32s in fixed-size chunks. When
// the input size was pre-validated (prealloc) the result is allocated
// once; otherwise it grows with the data actually read, so a lying
// header cannot force a huge up-front allocation.
func readU32Chunked(b *binReader, n uint64, prealloc bool, crc hash.Hash32, scratch []byte, what string) ([]Index, error) {
	var out []Index
	if prealloc {
		out = make([]Index, 0, n)
	}
	out, err := appendU32Chunked(b, out, n, crc, scratch, what)
	if err != nil {
		return nil, err
	}
	if out == nil {
		out = []Index{}
	}
	return out, nil
}

// appendU32Chunked decodes n u32s onto dst (the v3 reader appends every
// tile into one array; the v1/v2 readers pass a fresh slice).
func appendU32Chunked(b *binReader, dst []Index, n uint64, crc hash.Hash32, scratch []byte, what string) ([]Index, error) {
	for done := uint64(0); done < n; {
		c := n - done
		if m := uint64(len(scratch) / 4); c > m {
			c = m
		}
		buf := scratch[:c*4]
		if err := b.full(buf, what); err != nil {
			return nil, err
		}
		if crc != nil {
			crc.Write(buf)
		}
		for i := uint64(0); i < c; i++ {
			dst = append(dst, binary.LittleEndian.Uint32(buf[i*4:]))
		}
		done += c
	}
	return dst, nil
}

func readF32Chunked(b *binReader, n uint64, prealloc bool, crc hash.Hash32, scratch []byte, what string) ([]Value, error) {
	var out []Value
	if prealloc {
		out = make([]Value, 0, n)
	}
	out, err := appendF32Chunked(b, out, n, crc, scratch, what)
	if err != nil {
		return nil, err
	}
	if out == nil {
		out = []Value{}
	}
	return out, nil
}

// appendF32Chunked decodes n f32s onto dst, the value-array analog of
// appendU32Chunked.
func appendF32Chunked(b *binReader, dst []Value, n uint64, crc hash.Hash32, scratch []byte, what string) ([]Value, error) {
	for done := uint64(0); done < n; {
		c := n - done
		if m := uint64(len(scratch) / 4); c > m {
			c = m
		}
		buf := scratch[:c*4]
		if err := b.full(buf, what); err != nil {
			return nil, err
		}
		if crc != nil {
			crc.Write(buf)
		}
		for i := uint64(0); i < c; i++ {
			dst = append(dst, math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:])))
		}
		done += c
	}
	return dst, nil
}

// inputSize reports how many bytes remain in r, or -1 when that cannot
// be determined without consuming the stream.
func inputSize(r io.Reader) int64 {
	if l, ok := r.(interface{ Len() int }); ok {
		return int64(l.Len())
	}
	if f, ok := r.(*os.File); ok {
		fi, err := f.Stat()
		if err != nil || !fi.Mode().IsRegular() {
			return -1
		}
		pos, err := f.Seek(0, io.SeekCurrent)
		if err != nil || pos > fi.Size() {
			return -1
		}
		return fi.Size() - pos
	}
	if s, ok := r.(io.Seeker); ok {
		cur, err := s.Seek(0, io.SeekCurrent)
		if err != nil {
			return -1
		}
		end, err := s.Seek(0, io.SeekEnd)
		if err != nil {
			return -1
		}
		if _, err := s.Seek(cur, io.SeekStart); err != nil || end < cur {
			return -1
		}
		return end - cur
	}
	return -1
}

// ReadFile loads a tensor by extension: ".bten" (PSTB binary, any
// version — v3 tiled files are assembled in-core; use OpenTiled to
// stream them), ".tns", or ".tns.gz" (FROSTT text, optionally
// gzipped). Other extensions are rejected.
func ReadFile(path string) (*COO, error) {
	t, _, err := ReadFileStats(path)
	return t, err
}

// ReadFileStats is ReadFile plus load-throughput measurement: on-disk
// bytes, detected format, and elapsed wall time.
func ReadFileStats(path string) (*COO, LoadStats, error) {
	st := LoadStats{Path: path}
	start := time.Now()
	var t *COO
	switch {
	case strings.HasSuffix(path, ".bten"):
		f, err := os.Open(path)
		if err != nil {
			return nil, st, err
		}
		defer f.Close()
		size := inputSize(f)
		st.Bytes = size
		var ver int
		t, ver, err = readBinary(f, size)
		if err != nil {
			return nil, st, fmt.Errorf("%s: %v", path, err)
		}
		st.Format = fmt.Sprintf("pstb-v%d", ver)
	case strings.HasSuffix(path, ".tns.gz"):
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, st, err
		}
		st.Bytes = int64(len(data))
		st.Format = "tns.gz"
		gz, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, st, fmt.Errorf("tns: %s: %v", path, err)
		}
		text, err := io.ReadAll(gz)
		if err != nil {
			return nil, st, fmt.Errorf("tns: %s: %v", path, err)
		}
		if t, err = ParseTNS(text); err != nil {
			return nil, st, fmt.Errorf("%s: %v", path, err)
		}
	case strings.HasSuffix(path, ".tns"):
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, st, err
		}
		st.Bytes = int64(len(data))
		st.Format = "tns"
		if t, err = ParseTNS(data); err != nil {
			return nil, st, fmt.Errorf("%s: %v", path, err)
		}
	default:
		return nil, st, fmt.Errorf("tensor: %s: unsupported extension (want .bten, .tns, or .tns.gz)", path)
	}
	st.Elapsed = time.Since(start)
	st.Order = t.Order()
	st.NNZ = t.NNZ()
	return t, st, nil
}

// WriteFile stores a tensor by extension, mirroring ReadFile; ".bten"
// output uses PSTB v2.
func WriteFile(path string, t *COO) error {
	switch {
	case strings.HasSuffix(path, ".bten"):
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := WriteBinary(f, t); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	case strings.HasSuffix(path, ".tns"), strings.HasSuffix(path, ".tns.gz"):
		return WriteTNSFile(path, t)
	}
	return fmt.Errorf("tensor: %s: unsupported extension (want .bten, .tns, or .tns.gz)", path)
}
