package tensor

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strings"
)

// Binary tensor format ("PSTB"): parsing the FROSTT text format dominates
// load time for 100M-non-zero tensors, so the suite also supports a flat
// little-endian binary layout (the same reason ParTI ships a .bin
// format):
//
//	magic "PSTB" | u8 version | u8 order | u32 dims[order] |
//	u64 nnz | u32 inds[order][nnz] | f32 vals[nnz]
const (
	binMagic   = "PSTB"
	binVersion = 1
)

// WriteBinary emits the tensor in the PSTB binary format.
func WriteBinary(w io.Writer, t *COO) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(binVersion); err != nil {
		return err
	}
	if t.Order() > 255 {
		return fmt.Errorf("tensor: order %d exceeds binary format limit", t.Order())
	}
	if err := bw.WriteByte(byte(t.Order())); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Dims); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(t.NNZ())); err != nil {
		return err
	}
	for n := range t.Inds {
		if err := binary.Write(bw, binary.LittleEndian, t.Inds[n]); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, t.Vals); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary parses the PSTB binary format.
func ReadBinary(r io.Reader) (*COO, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("tensor: binary header: %v", err)
	}
	if string(magic) != binMagic {
		return nil, fmt.Errorf("tensor: bad magic %q, want %q", magic, binMagic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != binVersion {
		return nil, fmt.Errorf("tensor: unsupported binary version %d", version)
	}
	orderB, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	order := int(orderB)
	if order == 0 {
		return nil, fmt.Errorf("tensor: binary tensor with zero order")
	}
	dims := make([]Index, order)
	if err := binary.Read(br, binary.LittleEndian, dims); err != nil {
		return nil, err
	}
	for n, d := range dims {
		if d == 0 {
			return nil, fmt.Errorf("tensor: binary mode %d has zero size", n)
		}
	}
	var nnz uint64
	if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
		return nil, err
	}
	const maxNNZ = 1 << 33
	if nnz > maxNNZ {
		return nil, fmt.Errorf("tensor: binary nnz %d exceeds sanity limit", nnz)
	}
	t := &COO{
		Dims: dims,
		Inds: make([][]Index, order),
		Vals: make([]Value, nnz),
	}
	for n := 0; n < order; n++ {
		t.Inds[n] = make([]Index, nnz)
		if err := binary.Read(br, binary.LittleEndian, t.Inds[n]); err != nil {
			return nil, fmt.Errorf("tensor: binary mode-%d indices: %v", n, err)
		}
	}
	if err := binary.Read(br, binary.LittleEndian, t.Vals); err != nil {
		return nil, fmt.Errorf("tensor: binary values: %v", err)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("tensor: binary content invalid: %v", err)
	}
	return t, nil
}

// ReadFile loads a tensor by extension: ".bten" (PSTB binary), ".tns",
// or ".tns.gz" (FROSTT text, optionally gzipped).
func ReadFile(path string) (*COO, error) {
	if strings.HasSuffix(path, ".bten") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ReadBinary(f)
	}
	return ReadTNSFile(path)
}

// WriteFile stores a tensor by extension, mirroring ReadFile.
func WriteFile(path string, t *COO) error {
	if strings.HasSuffix(path, ".bten") {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := WriteBinary(f, t); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return WriteTNSFile(path, t)
}
