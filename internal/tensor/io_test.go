package tensor

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadTNS(t *testing.T) {
	in := `# a comment
1 1 1 1.5

2 3 4 -2.0
1 2 1 0.25
`
	x, err := ReadTNS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if x.Order() != 3 || x.NNZ() != 3 {
		t.Fatalf("order=%d nnz=%d, want 3,3", x.Order(), x.NNZ())
	}
	// Dims inferred from max coordinate.
	want := []Index{2, 3, 4}
	for n := range want {
		if x.Dims[n] != want[n] {
			t.Fatalf("Dims = %v, want %v", x.Dims, want)
		}
	}
	if v, ok := x.At(0, 0, 0); !ok || v != 1.5 {
		t.Fatalf("At(0,0,0) = %v,%v", v, ok)
	}
	if v, ok := x.At(1, 2, 3); !ok || v != -2 {
		t.Fatalf("At(1,2,3) = %v,%v", v, ok)
	}
}

func TestReadTNSErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"zero coord":     "0 1 1.0\n",
		"bad coord":      "a 1 1.0\n",
		"bad value":      "1 1 x\n",
		"ragged fields":  "1 1 1 1.0\n1 1 2.0\n",
		"value only":     "3.5\n",
		"negative coord": "-1 1 1.0\n",
	}
	for name, in := range cases {
		if _, err := ReadTNS(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestTNSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := RandomCOO([]Index{20, 30, 10, 5}, 200, rng)
	var buf bytes.Buffer
	if err := WriteTNS(&buf, x); err != nil {
		t.Fatal(err)
	}
	y, err := ReadTNS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.Order() != x.Order() || y.NNZ() != x.NNZ() {
		t.Fatalf("roundtrip shape: got order=%d nnz=%d", y.Order(), y.NNZ())
	}
	// Dims may shrink to the max used coordinate — content must match.
	if d := AbsDiff(x, y); d > 1e-6 {
		t.Fatalf("roundtrip content diff %v", d)
	}
}

func TestTNSFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.tns")
	rng := rand.New(rand.NewSource(6))
	x := RandomCOO([]Index{8, 8, 8}, 40, rng)
	if err := WriteTNSFile(path, x); err != nil {
		t.Fatal(err)
	}
	y, err := ReadTNSFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if d := AbsDiff(x, y); d > 1e-6 {
		t.Fatalf("file roundtrip diff %v", d)
	}
	if _, err := ReadTNSFile(filepath.Join(dir, "missing.tns")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestStatsFiber(t *testing.T) {
	// Mode-2 fibers: (0,0,*) has 3 nnz, (1,1,*) has 1 nnz.
	x := NewCOO([]Index{2, 2, 8}, 4)
	x.AppendIdx3(0, 0, 0, 1)
	x.AppendIdx3(0, 0, 3, 1)
	x.AppendIdx3(0, 0, 7, 1)
	x.AppendIdx3(1, 1, 2, 1)
	st := ComputeFiberStats(x, 2)
	if st.NumFibers != 2 || st.MinLen != 1 || st.MaxLen != 3 || st.MeanLen != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Imbalance != 1.5 {
		t.Fatalf("Imbalance = %v, want 1.5", st.Imbalance)
	}
	// ComputeFiberStats must not disturb the input ordering metadata.
	if x.SortOrder() != nil {
		t.Fatal("ComputeFiberStats modified input sort state")
	}
}

func TestModeCollisions(t *testing.T) {
	x := NewCOO([]Index{4, 4}, 4)
	x.Append([]Index{0, 0}, 1)
	x.Append([]Index{0, 1}, 1)
	x.Append([]Index{0, 2}, 1)
	x.Append([]Index{1, 3}, 1)
	if c := ModeCollisions(x, 0); c != 2 { // 4 nnz / 2 distinct
		t.Fatalf("ModeCollisions mode0 = %v, want 2", c)
	}
	if c := ModeCollisions(x, 1); c != 1 { // all distinct
		t.Fatalf("ModeCollisions mode1 = %v, want 1", c)
	}
	empty := NewCOO([]Index{4}, 0)
	if c := ModeCollisions(empty, 0); c != 0 {
		t.Fatalf("ModeCollisions empty = %v, want 0", c)
	}
}
