package tensor

import "fmt"

// SemiCOO is the sCOO format of the paper (§3.1, Figure 1b): a semi-sparse
// tensor whose dense modes are stored as dense arrays per fiber while the
// remaining modes keep explicit COO indices. The Ttm kernel produces its
// output in this format — the product mode becomes dense by the
// sparse-dense property, with R values per surviving fiber.
type SemiCOO struct {
	// Dims holds the size of every mode, dense ones included.
	Dims []Index
	// DenseModes lists the dense modes in ascending order.
	DenseModes []int
	// Inds holds one index array per sparse mode (ascending mode order),
	// each of length NumFibers.
	Inds [][]Index
	// Vals holds NumFibers × DenseSize values, fiber-major, with the dense
	// modes laid out row-major in ascending mode order.
	Vals []Value
}

// NewSemiCOO returns an empty sCOO tensor with capacity for nf fibers.
func NewSemiCOO(dims []Index, denseModes []int, nf int) *SemiCOO {
	t := &SemiCOO{
		Dims:       append([]Index(nil), dims...),
		DenseModes: append([]int(nil), denseModes...),
	}
	for i := 1; i < len(t.DenseModes); i++ {
		if t.DenseModes[i] <= t.DenseModes[i-1] {
			panic("tensor: NewSemiCOO dense modes must be strictly ascending")
		}
	}
	ns := len(dims) - len(denseModes)
	if ns < 0 {
		panic("tensor: NewSemiCOO with more dense modes than modes")
	}
	t.Inds = make([][]Index, ns)
	for i := range t.Inds {
		t.Inds[i] = make([]Index, 0, nf)
	}
	t.Vals = make([]Value, 0, nf*t.DenseSize())
	return t
}

// Order returns the number of modes, dense ones included.
func (t *SemiCOO) Order() int { return len(t.Dims) }

// NumFibers returns the number of stored sparse fibers.
func (t *SemiCOO) NumFibers() int {
	if len(t.Inds) == 0 {
		if t.DenseSize() == 0 {
			return 0
		}
		return len(t.Vals) / t.DenseSize()
	}
	return len(t.Inds[0])
}

// DenseSize returns the product of the dense mode sizes (the number of
// values stored per fiber).
func (t *SemiCOO) DenseSize() int {
	p := 1
	for _, n := range t.DenseModes {
		p *= int(t.Dims[n])
	}
	return p
}

// SparseModes returns the sparse modes in ascending order.
func (t *SemiCOO) SparseModes() []int {
	out := make([]int, 0, t.Order()-len(t.DenseModes))
	d := 0
	for n := 0; n < t.Order(); n++ {
		if d < len(t.DenseModes) && t.DenseModes[d] == n {
			d++
			continue
		}
		out = append(out, n)
	}
	return out
}

// IsDenseMode reports whether mode n is stored densely.
func (t *SemiCOO) IsDenseMode(n int) bool {
	for _, d := range t.DenseModes {
		if d == n {
			return true
		}
	}
	return false
}

// FiberVals returns a slice aliasing the dense values of fiber f.
func (t *SemiCOO) FiberVals(f int) []Value {
	ds := t.DenseSize()
	return t.Vals[f*ds : (f+1)*ds]
}

// AppendFiber adds a fiber with the given sparse coordinates (one per
// sparse mode, ascending mode order) and zeroed dense values, returning
// the new fiber's number.
func (t *SemiCOO) AppendFiber(sparseIdx []Index) int {
	if len(sparseIdx) != len(t.Inds) {
		panic("tensor: AppendFiber with wrong number of sparse coordinates")
	}
	for i := range t.Inds {
		t.Inds[i] = append(t.Inds[i], sparseIdx[i])
	}
	t.Vals = append(t.Vals, make([]Value, t.DenseSize())...)
	return t.NumFibers() - 1
}

// StorageBytes returns the sCOO footprint: 32-bit indices for the sparse
// modes of each fiber plus 32-bit values for the dense blocks.
func (t *SemiCOO) StorageBytes() int64 {
	return 4*int64(len(t.Inds))*int64(t.NumFibers()) + 4*int64(len(t.Vals))
}

// ToCOO expands the semi-sparse tensor to coordinate format, dropping
// exact zeros. Intended for tests and small tensors.
func (t *SemiCOO) ToCOO() *COO {
	out := NewCOO(t.Dims, t.NumFibers())
	sparse := t.SparseModes()
	ds := t.DenseSize()
	idx := make([]Index, t.Order())
	denseIdx := make([]Index, len(t.DenseModes))
	for f := 0; f < t.NumFibers(); f++ {
		for si, n := range sparse {
			idx[n] = t.Inds[si][f]
		}
		vals := t.Vals[f*ds : (f+1)*ds]
		for o, v := range vals {
			if v == 0 {
				continue
			}
			t.unravelDense(o, denseIdx)
			for di, n := range t.DenseModes {
				idx[n] = denseIdx[di]
			}
			out.Append(idx, v)
		}
	}
	return out
}

// unravelDense converts a row-major offset within a fiber's dense block
// into per-dense-mode coordinates.
func (t *SemiCOO) unravelDense(off int, dst []Index) {
	for i := len(t.DenseModes) - 1; i >= 0; i-- {
		d := int(t.Dims[t.DenseModes[i]])
		dst[i] = Index(off % d)
		off /= d
	}
}

// Validate checks structural invariants.
func (t *SemiCOO) Validate() error {
	ns := t.Order() - len(t.DenseModes)
	if len(t.Inds) != ns {
		return fmt.Errorf("tensor: sCOO has %d sparse index arrays, want %d", len(t.Inds), ns)
	}
	nf := t.NumFibers()
	for i, ind := range t.Inds {
		if len(ind) != nf {
			return fmt.Errorf("tensor: sCOO sparse mode %d has %d entries, want %d", i, len(ind), nf)
		}
	}
	if len(t.Vals) != nf*t.DenseSize() {
		return fmt.Errorf("tensor: sCOO has %d values, want %d", len(t.Vals), nf*t.DenseSize())
	}
	sparse := t.SparseModes()
	for si, n := range sparse {
		d := t.Dims[n]
		for x, i := range t.Inds[si] {
			if i >= d {
				return fmt.Errorf("tensor: sCOO fiber %d mode %d index %d out of range [0,%d)", x, n, i, d)
			}
		}
	}
	return nil
}

func (t *SemiCOO) String() string {
	return fmt.Sprintf("sCOO(order=%d dims=%v dense=%v fibers=%d)", t.Order(), t.Dims, t.DenseModes, t.NumFibers())
}
