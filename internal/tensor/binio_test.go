package tensor

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := RandomCOO([]Index{100, 80, 60, 10}, 2000, rng)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, x); err != nil {
		t.Fatal(err)
	}
	y, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.Order() != 4 || y.NNZ() != x.NNZ() {
		t.Fatalf("shape changed: order=%d nnz=%d", y.Order(), y.NNZ())
	}
	for n := range x.Dims {
		if y.Dims[n] != x.Dims[n] {
			t.Fatal("dims changed")
		}
	}
	if d := AbsDiff(x, y); d != 0 {
		t.Fatalf("content diff %v", d)
	}
}

func TestBinaryV1RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := RandomCOO([]Index{50, 40, 30}, 800, rng)
	var buf bytes.Buffer
	if err := WriteBinaryV1(&buf, x); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[4] != binVersion1 {
		t.Fatalf("version byte %d, want %d", buf.Bytes()[4], binVersion1)
	}
	y, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if d := AbsDiff(x, y); d != 0 {
		t.Fatalf("v1 content diff %v", d)
	}
}

func TestBinaryRoundTripUnknownSize(t *testing.T) {
	// The chunked slow path (no size hint) must produce the same tensor.
	rng := rand.New(rand.NewSource(11))
	x := RandomCOO([]Index{64, 64, 64}, 1500, rng)
	for name, write := range map[string]func(*bytes.Buffer) error{
		"v1": func(b *bytes.Buffer) error { return WriteBinaryV1(b, x) },
		"v2": func(b *bytes.Buffer) error { return WriteBinary(b, x) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		y, err := ReadBinary(opaqueReader{bytes.NewReader(buf.Bytes())})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := AbsDiff(x, y); d != 0 {
			t.Fatalf("%s: content diff %v", name, d)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("NOPE\x01\x03"),
		"bad version":  []byte("PSTB\x09\x03"),
		"truncated v1": []byte("PSTB\x01\x03\x04\x00\x00"),
		"truncated v2": []byte("PSTB\x02\x03\x00\x00\x1c"),
		"zero order":   []byte("PSTB\x01\x00"),
	}
	for name, raw := range cases {
		if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBinaryRejectsCorruptIndices(t *testing.T) {
	// v1 has no checksum, so an out-of-range index must be caught by
	// Validate. Layout: 4 magic + 1 ver + 1 order + 8 dims + 8 nnz.
	x := NewCOO([]Index{4, 4}, 1)
	x.Append([]Index{1, 1}, 2)
	var buf bytes.Buffer
	if err := WriteBinaryV1(&buf, x); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4+1+1+8+8] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestBinaryV2RejectsCorruptPayload(t *testing.T) {
	x := NewCOO([]Index{4, 4}, 1)
	x.Append([]Index{1, 1}, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, x); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Payload starts after prologue (12) + header (16+4*2) + header CRC (4).
	raw[12+24+4] ^= 0x01
	_, err := ReadBinary(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("expected checksum error")
	}
	if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("error %v should name the checksum", err)
	}
}

func TestReadWriteFileDispatch(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	x := RandomCOO([]Index{20, 20, 20}, 300, rng)
	wantFormat := map[string]string{"a.bten": "pstb-v2", "b.tns": "tns", "c.tns.gz": "tns.gz"}
	for name, format := range wantFormat {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, x); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y, st, err := ReadFileStats(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := AbsDiff(x, y); d > 1e-6 {
			t.Fatalf("%s: diff %v", name, d)
		}
		if st.Format != format {
			t.Errorf("%s: detected format %q, want %q", name, st.Format, format)
		}
		if st.NNZ != x.NNZ() || st.Order != 3 || st.Bytes <= 0 {
			t.Errorf("%s: stats %+v look wrong", name, st)
		}
	}
	// v1 files are still read through the same dispatch.
	v1path := filepath.Join(dir, "legacy.bten")
	f, err := os.Create(v1path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBinaryV1(f, x); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	y, st, err := ReadFileStats(v1path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Format != "pstb-v1" || AbsDiff(x, y) != 0 {
		t.Fatalf("v1 dispatch: format %q diff %v", st.Format, AbsDiff(x, y))
	}
}

func TestReadWriteFileRejectUnknownExtension(t *testing.T) {
	dir := t.TempDir()
	x := NewCOO([]Index{2, 2}, 1)
	x.Append([]Index{0, 1}, 1)
	for _, name := range []string{"t.txt", "t.bin", "t.gz", "t"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, x); err == nil {
			t.Errorf("WriteFile(%s): expected unsupported-extension error", name)
		}
		if _, err := ReadFile(path); err == nil {
			t.Errorf("ReadFile(%s): expected error", name)
		}
	}
}

func TestBinaryEmptyTensorRoundTrip(t *testing.T) {
	// Zero non-zeros is representable in the binary format (the text
	// format cannot express it: no lines means no dims).
	x := NewCOO([]Index{5, 6, 7}, 0)
	for name, write := range map[string]func(*bytes.Buffer) error{
		"v1": func(b *bytes.Buffer) error { return WriteBinaryV1(b, x) },
		"v2": func(b *bytes.Buffer) error { return WriteBinary(b, x) },
	} {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if y.NNZ() != 0 || y.Order() != 3 || y.Dims[2] != 7 {
			t.Fatalf("%s: got %v", name, y)
		}
		if err := y.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestOrder1RoundTripBothFormats(t *testing.T) {
	x := NewCOO([]Index{9}, 3)
	x.Append([]Index{0}, 1.5)
	x.Append([]Index{8}, -2.25)
	x.Append([]Index{4}, 0.30000001)
	dir := t.TempDir()
	for _, name := range []string{"o1.bten", "o1.tns"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, x); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if y.Order() != 1 || y.NNZ() != 3 {
			t.Fatalf("%s: got %v", name, y)
		}
		if d := AbsDiff(x, y); d != 0 {
			t.Fatalf("%s: diff %v (order-1 values must round-trip exactly)", name, d)
		}
	}
}
