package tensor

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := RandomCOO([]Index{100, 80, 60, 10}, 2000, rng)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, x); err != nil {
		t.Fatal(err)
	}
	y, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if y.Order() != 4 || y.NNZ() != x.NNZ() {
		t.Fatalf("shape changed: order=%d nnz=%d", y.Order(), y.NNZ())
	}
	for n := range x.Dims {
		if y.Dims[n] != x.Dims[n] {
			t.Fatal("dims changed")
		}
	}
	if d := AbsDiff(x, y); d != 0 {
		t.Fatalf("content diff %v", d)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   []byte("NOPE\x01\x03"),
		"bad version": []byte("PSTB\x09\x03"),
		"truncated":   []byte("PSTB\x01\x03\x04\x00\x00"),
		"zero order":  []byte("PSTB\x01\x00"),
	}
	for name, raw := range cases {
		if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestBinaryRejectsCorruptIndices(t *testing.T) {
	x := NewCOO([]Index{4, 4}, 1)
	x.Append([]Index{1, 1}, 2)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, x); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Corrupt the first index to an out-of-range value; Validate on read
	// must reject it. Layout: 4 magic + 1 ver + 1 order + 8 dims + 8 nnz.
	raw[4+1+1+8+8] = 0xFF
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestReadWriteFileDispatch(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	x := RandomCOO([]Index{20, 20, 20}, 300, rng)
	for _, name := range []string{"a.bten", "b.tns", "c.tns.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteFile(path, x); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		y, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d := AbsDiff(x, y); d > 1e-6 {
			t.Fatalf("%s: diff %v", name, d)
		}
	}
}
