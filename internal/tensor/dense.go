package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Matrix is a dense row-major matrix. The benchmark kernels use tall
// skinny factor matrices (rows = a mode size, Cols = R, typically 16).
type Matrix struct {
	Rows, Cols int
	Data       []Value
}

// NewMatrix returns a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: NewMatrix with negative size")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]Value, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) Value { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v Value) { m.Data[i*m.Cols+j] = v }

// Row returns a slice aliasing row i.
func (m *Matrix) Row(i int) []Value { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Fill sets every element to v.
func (m *Matrix) Fill(v Value) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Zero clears the matrix.
func (m *Matrix) Zero() { m.Fill(0) }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{Rows: m.Rows, Cols: m.Cols, Data: append([]Value(nil), m.Data...)}
}

// Randomize fills the matrix with uniform values in [0, 1) from rng.
func (m *Matrix) Randomize(rng *rand.Rand) {
	for i := range m.Data {
		m.Data[i] = Value(rng.Float64())
	}
}

// StorageBytes returns the dense footprint in bytes.
func (m *Matrix) StorageBytes() int64 { return 4 * int64(len(m.Data)) }

func (m *Matrix) String() string { return fmt.Sprintf("Matrix(%dx%d)", m.Rows, m.Cols) }

// Vector is a dense vector of single-precision values.
type Vector []Value

// NewVector returns a zeroed vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// RandomVector returns a vector with uniform values in [0, 1) from rng.
func RandomVector(n int, rng *rand.Rand) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = Value(rng.Float64())
	}
	return v
}

// Clone returns a copy of the vector.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Dot returns the inner product of two equal-length vectors.
func (v Vector) Dot(w Vector) Value {
	if len(v) != len(w) {
		panic("tensor: Dot with mismatched lengths")
	}
	var s Value
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm computed in float64 for stability.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// Scale multiplies every element by s in place.
func (v Vector) Scale(s Value) {
	for i := range v {
		v[i] *= s
	}
}
