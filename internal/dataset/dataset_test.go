package dataset

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/tensor"
)

func TestRegistriesMatchTableCounts(t *testing.T) {
	real := RealTensors()
	if len(real) != 15 {
		t.Fatalf("Table 2 has %d entries, want 15", len(real))
	}
	syn := Synthetic()
	if len(syn) != 15 {
		t.Fatalf("Table 3 has %d entries, want 15", len(syn))
	}
	// Paper ordering: real tensors sorted by order then decreasing density.
	for i, e := range real {
		wantID := "r" + itoa(i+1)
		if e.ID != wantID {
			t.Fatalf("entry %d has ID %s, want %s", i, e.ID, wantID)
		}
	}
	for i := 1; i < 9; i++ { // r1..r9 are third-order, densities decreasing
		if real[i].Order() != 3 {
			t.Fatalf("%s should be third order", real[i].ID)
		}
		if real[i].PaperDensity() > real[i-1].PaperDensity() {
			t.Fatalf("%s density above %s", real[i].ID, real[i-1].ID)
		}
	}
	for i := 9; i < 15; i++ {
		if real[i].Order() != 4 {
			t.Fatalf("%s should be fourth order", real[i].ID)
		}
	}
}

func itoa(n int) string {
	if n >= 10 {
		return string(rune('0'+n/10)) + string(rune('0'+n%10))
	}
	return string(rune('0' + n))
}

func TestTable2SpotValues(t *testing.T) {
	e, err := ByID("choa")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "r3" || e.Order() != 3 || e.PaperNNZ != 27e6 {
		t.Fatalf("choa entry wrong: %+v", e)
	}
	d := e.PaperDensity()
	if d < 4e-6 || d > 6e-6 { // paper: 5.0e-6
		t.Fatalf("choa density %v, paper says 5.0e-6", d)
	}
	deli4d, _ := ByID("deli4d")
	d4 := deli4d.PaperDensity()
	if d4 > 1e-14 { // paper: 4.3e-15
		t.Fatalf("deli4d density %v, paper says 4.3e-15", d4)
	}
}

func TestTable3SpotValues(t *testing.T) {
	s1, err := ByID("s1")
	if err != nil {
		t.Fatal(err)
	}
	if s1.Name != "regS" || s1.Gen != Kron || s1.PaperNNZ != 1.1e6 {
		t.Fatalf("s1 entry wrong: %+v", s1)
	}
	d := s1.PaperDensity()
	if d < 3e-9 || d > 5e-9 { // paper: 3.72e-9
		t.Fatalf("regS density %v, paper says 3.72e-9", d)
	}
	s13, _ := ByID("irr2S4d")
	if s13.Gen != PL || len(s13.SparseModes) != 2 {
		t.Fatalf("s13 entry wrong: %+v", s13)
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("nonexistent"); err == nil {
		t.Fatal("expected error")
	}
}

func TestScaledDimsPreserveDensityRegime(t *testing.T) {
	e, _ := ByID("fb-m") // 23M × 23M × 166, 100M nnz
	dims := e.ScaledDims(10000)
	if len(dims) != 3 {
		t.Fatal("order lost")
	}
	// Modes 0 and 1 stay equidimensional, mode 2 stays much smaller.
	if dims[0] != dims[1] {
		t.Fatalf("equidimensional modes diverged: %v", dims)
	}
	if dims[2] >= dims[0] {
		t.Fatalf("mode ratio lost: %v", dims)
	}
	// No mode grows, none collapses below 2.
	for n, d := range dims {
		if int64(d) > e.PaperDims[n] || d < 2 {
			t.Fatalf("mode %d scaled to %d", n, d)
		}
	}
}

func TestMaterializeAllEntries(t *testing.T) {
	for _, e := range append(RealTensors(), Synthetic()...) {
		x, err := Materialize(e, 3000, 7)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if err := x.Validate(); err != nil {
			t.Fatalf("%s: invalid tensor: %v", e.ID, err)
		}
		if x.Order() != e.Order() {
			t.Fatalf("%s: order %d, want %d", e.ID, x.Order(), e.Order())
		}
		if x.NNZ() == 0 {
			t.Fatalf("%s: empty stand-in", e.ID)
		}
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	e, _ := ByID("regS")
	a, err := Materialize(e, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Materialize(e, 2000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if tensor.AbsDiff(a, b) != 0 {
		t.Fatal("stand-in not deterministic in seed")
	}
}

func TestMaterializeGraphStandInsAreSkewed(t *testing.T) {
	e, _ := ByID("deli") // graph-derived: power-law stand-in
	x, err := Materialize(e, 8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s := gen.DegreeSkew(x, 1); s < 5 {
		t.Fatalf("deli stand-in mode-1 skew %v, want heavy tail", s)
	}
	u, _ := ByID("nell2") // uniform stand-in
	y, err := Materialize(u, 8000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s := gen.DegreeSkew(y, 0); s > 6 {
		t.Fatalf("nell2 stand-in skew %v, want near-uniform", s)
	}
}

func TestMaterializePrefersRealFile(t *testing.T) {
	dir := t.TempDir()
	// Write a tiny fake "vast.tns" and point the env var at it.
	x := tensor.NewCOO([]tensor.Index{3, 3, 2}, 2)
	x.AppendIdx3(0, 1, 1, 5)
	x.AppendIdx3(2, 2, 0, 7)
	if err := tensor.WriteTNSFile(filepath.Join(dir, "vast.tns"), x); err != nil {
		t.Fatal(err)
	}
	t.Setenv(TensorDirEnv, dir)
	e, _ := ByID("vast")
	got, err := Materialize(e, 99999, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 2 {
		t.Fatalf("expected the real file (2 nnz), got %d nnz", got.NNZ())
	}
	// Other entries still use stand-ins.
	os.Remove(filepath.Join(dir, "vast.tns"))
}

// TestMaterializePrefersBinaryFile checks the .bten > .tns preference: a
// prepared binary file wins over a text file for the same tensor.
func TestMaterializePrefersBinaryFile(t *testing.T) {
	dir := t.TempDir()
	txt := tensor.NewCOO([]tensor.Index{3, 3, 2}, 1)
	txt.AppendIdx3(0, 0, 0, 1)
	if err := tensor.WriteTNSFile(filepath.Join(dir, "nell2.tns"), txt); err != nil {
		t.Fatal(err)
	}
	bin := tensor.NewCOO([]tensor.Index{4, 4, 4}, 3)
	bin.AppendIdx3(0, 1, 2, 5)
	bin.AppendIdx3(1, 2, 3, 6)
	bin.AppendIdx3(3, 3, 3, 7)
	if err := tensor.WriteFile(filepath.Join(dir, "nell2.bten"), bin); err != nil {
		t.Fatal(err)
	}
	t.Setenv(TensorDirEnv, dir)
	e, _ := ByID("nell2")
	got, err := Materialize(e, 99999, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 3 {
		t.Fatalf("expected the .bten file (3 nnz) to win, got %d nnz", got.NNZ())
	}
}

func TestMaterializeErrors(t *testing.T) {
	e, _ := ByID("vast")
	if _, err := Materialize(e, 0, 1); err == nil {
		t.Fatal("expected error for non-positive target")
	}
}

func TestMaterializeClampsOverdenseTarget(t *testing.T) {
	// vast scaled tiny: requesting more nnz than half the index space
	// must clamp instead of looping forever.
	e, _ := ByID("vast")
	x, err := Materialize(e, 50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if float64(x.NNZ()) > x.NumEl() {
		t.Fatal("overdense stand-in")
	}
}

func TestSummarize(t *testing.T) {
	e, _ := ByID("nips4d")
	x, err := Materialize(e, 1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(e, x)
	if s.NNZ != x.NNZ() || s.Density != x.Density() || len(s.Dims) != 4 {
		t.Fatalf("summary wrong: %+v", s)
	}
}

func TestGenKindStrings(t *testing.T) {
	for k, want := range map[GenKind]string{
		Uniform: "uniform", Skewed: "skewed", Graph: "graph-PL", Kron: "Kron.", PL: "PL",
	} {
		if k.String() != want {
			t.Errorf("GenKind %d string %q, want %q", int(k), k.String(), want)
		}
	}
}
