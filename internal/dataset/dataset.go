// Package dataset carries the paper's two tensor datasets: the 15
// real-world tensors of Table 2 (FROSTT / HaTen2 / CHOA) and the 15
// synthetic tensors of Table 3 (Kronecker and power-law generated).
//
// The real collections are multi-gigabyte online downloads, so this
// reproduction materializes *scaled stand-ins*: tensors with the same
// order, proportionally scaled mode sizes (preserving density regime and
// mode-size ratios), and the non-zero distribution class of the original
// (power-law for the graph-derived tensors, near-uniform otherwise). When
// a real .tns file is present in the directory named by the PASTA_TENSOR_DIR
// environment variable it is loaded instead. See DESIGN.md §2.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/gen"
	"repro/internal/tensor"
)

// GenKind selects the stand-in generator class of an entry.
type GenKind int

const (
	// Uniform marks tensors with near-uniform non-zero patterns (vast,
	// nell2, crime4d, uber4d, nips4d).
	Uniform GenKind = iota
	// Skewed marks tensors with mild mode-0 skew (choa's patient mode).
	Skewed
	// Graph marks graph-derived tensors reproduced with the power-law
	// generator (darpa, fb, flickr, deli, nell1, enron4d, ...).
	Graph
	// Kron marks Table 3 tensors from the Kronecker generator.
	Kron
	// PL marks Table 3 tensors from the biased power-law generator.
	PL
)

func (g GenKind) String() string {
	switch g {
	case Uniform:
		return "uniform"
	case Skewed:
		return "skewed"
	case Graph:
		return "graph-PL"
	case Kron:
		return "Kron."
	case PL:
		return "PL"
	}
	return "unknown"
}

// Entry describes one dataset tensor.
type Entry struct {
	// ID is the paper's row label (r1..r15, s1..s15).
	ID string
	// Name is the tensor name (vast, nell2, ..., regS, irrL4d).
	Name string
	// Gen is the stand-in generator class.
	Gen GenKind
	// PaperDims are the original mode sizes from Table 2/3.
	PaperDims []int64
	// PaperNNZ is the original non-zero count.
	PaperNNZ int64
	// SparseModes lists the power-law modes for Graph/PL entries.
	SparseModes []int
	// Domain is the application domain (real tensors only).
	Domain string
}

// Order returns the tensor order.
func (e Entry) Order() int { return len(e.PaperDims) }

// PaperDensity returns nnz over the dense position count of the original.
func (e Entry) PaperDensity() float64 {
	p := 1.0
	for _, d := range e.PaperDims {
		p *= float64(d)
	}
	if p == 0 {
		return 0
	}
	return float64(e.PaperNNZ) / p
}

// RealTensors returns the Table 2 registry in paper order.
func RealTensors() []Entry {
	return []Entry{
		{ID: "r1", Name: "vast", Gen: Uniform, PaperDims: []int64{165000, 11000, 2}, PaperNNZ: 26e6, Domain: "pattern recognition"},
		{ID: "r2", Name: "nell2", Gen: Uniform, PaperDims: []int64{12000, 9000, 29000}, PaperNNZ: 77e6, Domain: "natural language processing"},
		{ID: "r3", Name: "choa", Gen: Skewed, PaperDims: []int64{712000, 10000, 767}, PaperNNZ: 27e6, Domain: "healthcare analytics"},
		{ID: "r4", Name: "darpa", Gen: Graph, PaperDims: []int64{22000, 22000, 24e6}, PaperNNZ: 28e6, SparseModes: []int{0, 1}, Domain: "anomaly detection"},
		{ID: "r5", Name: "fb-m", Gen: Graph, PaperDims: []int64{23e6, 23e6, 166}, PaperNNZ: 100e6, SparseModes: []int{0, 1}, Domain: "social network"},
		{ID: "r6", Name: "fb-s", Gen: Graph, PaperDims: []int64{39e6, 39e6, 532}, PaperNNZ: 140e6, SparseModes: []int{0, 1}, Domain: "social network"},
		{ID: "r7", Name: "flickr", Gen: Graph, PaperDims: []int64{320000, 28e6, 1600000}, PaperNNZ: 113e6, SparseModes: []int{0, 1, 2}, Domain: "recommendation"},
		{ID: "r8", Name: "deli", Gen: Graph, PaperDims: []int64{533000, 17e6, 2500000}, PaperNNZ: 140e6, SparseModes: []int{0, 1, 2}, Domain: "recommendation"},
		{ID: "r9", Name: "nell1", Gen: Graph, PaperDims: []int64{2900000, 2100000, 25e6}, PaperNNZ: 144e6, SparseModes: []int{0, 1, 2}, Domain: "natural language processing"},
		{ID: "r10", Name: "crime4d", Gen: Uniform, PaperDims: []int64{6000, 24, 77, 32}, PaperNNZ: 5e6, Domain: "crime detection"},
		{ID: "r11", Name: "uber4d", Gen: Uniform, PaperDims: []int64{183, 24, 1140, 1717}, PaperNNZ: 3e6, Domain: "transportation"},
		{ID: "r12", Name: "nips4d", Gen: Uniform, PaperDims: []int64{2000, 3000, 14000, 17}, PaperNNZ: 3e6, Domain: "pattern recognition"},
		{ID: "r13", Name: "enron4d", Gen: Graph, PaperDims: []int64{6000, 6000, 244000, 1000}, PaperNNZ: 54e6, SparseModes: []int{0, 1, 2}, Domain: "anomaly detection"},
		{ID: "r14", Name: "flickr4d", Gen: Graph, PaperDims: []int64{320000, 28e6, 1600000, 731}, PaperNNZ: 113e6, SparseModes: []int{0, 1, 2}, Domain: "recommendation"},
		{ID: "r15", Name: "deli4d", Gen: Graph, PaperDims: []int64{533000, 17e6, 2500000, 1000}, PaperNNZ: 140e6, SparseModes: []int{0, 1, 2}, Domain: "recommendation"},
	}
}

// Synthetic returns the Table 3 registry in paper order.
func Synthetic() []Entry {
	return []Entry{
		{ID: "s1", Name: "regS", Gen: Kron, PaperDims: []int64{65000, 65000, 65000}, PaperNNZ: 1.1e6},
		{ID: "s2", Name: "regM", Gen: Kron, PaperDims: []int64{1.1e6, 1.1e6, 1.1e6}, PaperNNZ: 11.5e6},
		{ID: "s3", Name: "regL", Gen: Kron, PaperDims: []int64{8.3e6, 8.3e6, 8.3e6}, PaperNNZ: 94e6},
		{ID: "s4", Name: "irrS", Gen: PL, PaperDims: []int64{32000, 32000, 76}, PaperNNZ: 1e6, SparseModes: []int{0, 1}},
		{ID: "s5", Name: "irrM", Gen: PL, PaperDims: []int64{524000, 524000, 126}, PaperNNZ: 10e6, SparseModes: []int{0, 1}},
		{ID: "s6", Name: "irrL", Gen: PL, PaperDims: []int64{4.2e6, 4.2e6, 168}, PaperNNZ: 84e6, SparseModes: []int{0, 1}},
		{ID: "s7", Name: "regS4d", Gen: Kron, PaperDims: []int64{8200, 8200, 8200, 8200}, PaperNNZ: 1e6},
		{ID: "s8", Name: "regM4d", Gen: Kron, PaperDims: []int64{2.1e6, 2.1e6, 2.1e6, 2.1e6}, PaperNNZ: 11.2e6},
		{ID: "s9", Name: "regL4d", Gen: Kron, PaperDims: []int64{8.3e6, 8.3e6, 8.3e6, 8.3e6}, PaperNNZ: 110e6},
		{ID: "s10", Name: "irrS4d", Gen: PL, PaperDims: []int64{1.6e6, 1.6e6, 1.6e6, 82}, PaperNNZ: 1.0e6, SparseModes: []int{0, 1, 2}},
		{ID: "s11", Name: "irrM4d", Gen: PL, PaperDims: []int64{2.6e6, 2.6e6, 2.6e6, 144}, PaperNNZ: 10.8e6, SparseModes: []int{0, 1, 2}},
		{ID: "s12", Name: "irrL4d", Gen: PL, PaperDims: []int64{4.2e6, 4.2e6, 4.2e6, 226}, PaperNNZ: 100e6, SparseModes: []int{0, 1, 2}},
		{ID: "s13", Name: "irr2S4d", Gen: PL, PaperDims: []int64{1.0e6, 1.0e6, 122, 436}, PaperNNZ: 1.6e6, SparseModes: []int{0, 1}},
		{ID: "s14", Name: "irr2M4d", Gen: PL, PaperDims: []int64{4.2e6, 4.2e6, 232, 746}, PaperNNZ: 19.9e6, SparseModes: []int{0, 1}},
		{ID: "s15", Name: "irr2L4d", Gen: PL, PaperDims: []int64{8.3e6, 8.3e6, 952, 324}, PaperNNZ: 109e6, SparseModes: []int{0, 1}},
	}
}

// ByID resolves an entry from either registry.
func ByID(id string) (Entry, error) {
	for _, e := range append(RealTensors(), Synthetic()...) {
		if e.ID == id || e.Name == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("dataset: unknown tensor %q", id)
}

// TensorDirEnv names the environment variable pointing at a directory of
// tensor files; Materialize prefers <dir>/<name>.bten, then .tns, then
// .tns.gz when present.
const TensorDirEnv = "PASTA_TENSOR_DIR"

// ScaledDims shrinks the paper dims so the stand-in with targetNNZ
// non-zeros preserves the original density: every mode scales by
// (target/paperNNZ)^(1/order), floored at 2 and capped at the original.
func (e Entry) ScaledDims(targetNNZ int) []tensor.Index {
	f := math.Pow(float64(targetNNZ)/float64(e.PaperNNZ), 1/float64(e.Order()))
	if f > 1 {
		f = 1
	}
	dims := make([]tensor.Index, e.Order())
	for n, d := range e.PaperDims {
		s := int64(math.Round(float64(d) * f))
		if s < 2 {
			s = 2
		}
		if s > d {
			s = d
		}
		dims[n] = tensor.Index(s)
	}
	return dims
}

// Materialize produces the tensor for an entry: the real .tns file when
// available, otherwise a scaled stand-in with about targetNNZ non-zeros
// generated per the entry's class. Generation is deterministic in seed.
func Materialize(e Entry, targetNNZ int, seed int64) (*tensor.COO, error) {
	if dir := os.Getenv(TensorDirEnv); dir != "" {
		// .bten first: the binary format loads fastest and carries
		// checksums, so a prepared directory should win over text.
		for _, suffix := range []string{".bten", ".tns", ".tns.gz"} {
			path := filepath.Join(dir, e.Name+suffix)
			if _, err := os.Stat(path); err == nil {
				t, err := tensor.ReadFile(path)
				if err != nil {
					return nil, err
				}
				// A user-supplied file is untrusted input: structural or
				// value corruption must surface here, not as a panic or
				// NaN deep inside a kernel.
				if err := t.Validate(); err != nil {
					return nil, fmt.Errorf("dataset: %s: %w", path, err)
				}
				return t, nil
			}
		}
	}
	if targetNNZ <= 0 {
		return nil, fmt.Errorf("dataset: targetNNZ must be positive")
	}
	dims := e.ScaledDims(targetNNZ)
	// Never ask for more non-zeros than half the scaled index space.
	numEl := 1.0
	for _, d := range dims {
		numEl *= float64(d)
	}
	if float64(targetNNZ) > numEl/2 {
		targetNNZ = int(numEl / 2)
		if targetNNZ < 1 {
			targetNNZ = 1
		}
	}
	rng := rand.New(rand.NewSource(seed))
	switch e.Gen {
	case Uniform:
		return tensor.RandomCOO(dims, targetNNZ, rng), nil
	case Skewed:
		return tensor.RandomCOOSkewed(dims, targetNNZ, rng), nil
	case Graph, PL:
		sparse := e.SparseModes
		if len(sparse) == 0 {
			return nil, fmt.Errorf("dataset: %s has no sparse modes configured", e.ID)
		}
		// Drop sparse modes whose scaled size collapsed below the Zipf
		// minimum.
		usable := make([]int, 0, len(sparse))
		for _, n := range sparse {
			if dims[n] >= 2 {
				usable = append(usable, n)
			}
		}
		return gen.PowerLaw(gen.PowerLawConfig{
			Dims:        dims,
			SparseModes: usable,
			NNZ:         targetNNZ,
		}, rng)
	case Kron:
		return gen.Kronecker(dims, targetNNZ, nil, rng)
	}
	return nil, fmt.Errorf("dataset: unknown generator kind %d", int(e.Gen))
}

// Summary is a measured description of a materialized tensor for the
// Table 2/3 reproduction output.
type Summary struct {
	Entry   Entry
	Dims    []tensor.Index
	NNZ     int
	Density float64
}

// Summarize measures a materialized tensor against its entry.
func Summarize(e Entry, t *tensor.COO) Summary {
	return Summary{Entry: e, Dims: t.Dims, NNZ: t.NNZ(), Density: t.Density()}
}
