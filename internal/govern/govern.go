// Package govern is the daemon's resource governor: memory-budget
// admission control with cost-aware shedding, and the drain state
// machine a graceful shutdown sequences through.
//
// The suite's workloads are memory-bound by design — the paper
// characterizes every kernel by bytes moved, not flops — so the
// interesting overload failure mode is resource exhaustion, not CPU
// saturation. A request-count semaphore cannot see that: eight tiny Ts
// requests and eight giant Mttkrp materializations count the same. The
// governor instead charges each request's estimated working-set bytes
// (kernelreg.EstimateFootprint over the roofline byte models, refined
// by measured Workbench sizes) against one daemon-wide budget:
//
//   - a request whose footprint fits the remaining headroom is admitted
//     immediately and holds a Lease until it completes;
//   - a request that would overflow the budget waits up to AdmitWait
//     for leases to release, then is shed (ErrOverloaded) — cheap
//     requests keep being admitted around it the whole time;
//   - a request larger than the entire budget is rejected outright
//     (ErrOverBudget): no amount of waiting can ever fit it.
//
// Draining is a one-way switch: BeginDrain stops all admission
// (ErrDraining), wakes every waiter, and closes DrainChan so batched
// joiners can detach; AwaitIdle then blocks until every outstanding
// lease is released, bounded by the caller's context.
//
// Admission events flow into the shared obs counter registry
// (govern.admitted, govern.shed, govern.bytes_inflight) so /metrics
// exports them next to every other subsystem's counters.
package govern

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

var (
	ctrAdmitted = obs.GetCounter("govern.admitted")
	ctrShed     = obs.GetCounter("govern.shed")
	// ctrBytesInflight tracks the admitted working-set bytes as a
	// counter with signed adds (charge on admit, refund on release), so
	// the registry snapshot doubles as a gauge of current pressure.
	ctrBytesInflight = obs.GetCounter("govern.bytes_inflight")
)

// Admission errors. ErrOverloaded and ErrDraining are retryable
// (503-class); ErrOverBudget is not — the request can never fit.
var (
	// ErrOverBudget marks a request whose estimated footprint exceeds
	// the entire budget; it would be shed forever, so it fails fast.
	ErrOverBudget = errors.New("govern: request footprint exceeds the memory budget")
	// ErrOverloaded marks a request shed because no headroom appeared
	// within the admission wait.
	ErrOverloaded = errors.New("govern: no memory headroom within the admission wait")
	// ErrDraining marks a request rejected because the governor is
	// draining for shutdown.
	ErrDraining = errors.New("govern: draining, not admitting new work")
)

// Config carries the governor's tunables; zero values select defaults.
type Config struct {
	// BudgetBytes is the admission budget (0 → DefaultBudget()).
	BudgetBytes int64
	// AdmitWait bounds how long an over-headroom request waits for
	// leases to release before being shed (0 → 100ms).
	AdmitWait time.Duration
	// DrainGrace is the documented drain deadline; the governor itself
	// only reports it (callers bound AwaitIdle with their own context),
	// but keeping it here gives shedding responses a Retry-After source
	// (0 → 10s).
	DrainGrace time.Duration
}

// Governor is the admission state. All methods are safe for concurrent
// use.
type Governor struct {
	budget     int64
	admitWait  time.Duration
	drainGrace time.Duration

	mu       sync.Mutex
	cond     *sync.Cond
	inflight int64 // admitted bytes
	leases   int   // outstanding leases
	draining bool
	drainCh  chan struct{}
}

// New builds a Governor, normalizing zero Config fields.
func New(cfg Config) *Governor {
	if cfg.BudgetBytes <= 0 {
		cfg.BudgetBytes = DefaultBudget()
	}
	if cfg.AdmitWait <= 0 {
		cfg.AdmitWait = 100 * time.Millisecond
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 10 * time.Second
	}
	g := &Governor{
		budget:     cfg.BudgetBytes,
		admitWait:  cfg.AdmitWait,
		drainGrace: cfg.DrainGrace,
		drainCh:    make(chan struct{}),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Budget returns the admission budget in bytes.
func (g *Governor) Budget() int64 { return g.budget }

// DrainGrace returns the configured drain deadline.
func (g *Governor) DrainGrace() time.Duration { return g.drainGrace }

// BytesInflight returns the currently admitted working-set bytes.
func (g *Governor) BytesInflight() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}

// Leases returns the number of outstanding leases.
func (g *Governor) Leases() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.leases
}

// Lease is one admitted request's charge against the budget. Release
// must be called exactly when the request's working set is gone
// (request completed, failed, or was cancelled); it is idempotent.
type Lease struct {
	g     *Governor
	bytes int64
	once  sync.Once
}

// Bytes returns the charged cost.
func (l *Lease) Bytes() int64 { return l.bytes }

// Release refunds the lease and wakes admission waiters.
func (l *Lease) Release() {
	l.once.Do(func() {
		g := l.g
		g.mu.Lock()
		g.inflight -= l.bytes
		g.leases--
		g.mu.Unlock()
		ctrBytesInflight.Add(-l.bytes)
		g.cond.Broadcast()
	})
}

// Admit charges cost bytes against the budget, waiting up to AdmitWait
// (bounded by ctx) for headroom. The errors:
//
//   - ErrOverBudget: cost exceeds the whole budget, immediately;
//   - ErrDraining: the governor is draining;
//   - ErrOverloaded: no headroom appeared within AdmitWait;
//   - ctx.Err(): the caller went away while waiting (not counted as a
//     shed — nobody is left to retry).
//
// Cheap requests admit around a waiting huge one: headroom is checked
// per-waiter against its own cost, not FIFO.
func (g *Governor) Admit(ctx context.Context, cost int64) (*Lease, error) {
	if cost < 0 {
		cost = 0
	}
	if cost > g.budget {
		g.shed("over-budget", cost)
		return nil, fmt.Errorf("%w: need %d bytes, budget is %d", ErrOverBudget, cost, g.budget)
	}
	deadline := time.Now().Add(g.admitWait)
	// sync.Cond cannot select on channels; wake the wait loop when the
	// admission deadline or the caller's context fires so it re-checks.
	timer := time.AfterFunc(g.admitWait, g.cond.Broadcast)
	defer timer.Stop()
	stop := context.AfterFunc(ctx, g.cond.Broadcast)
	defer stop()

	g.mu.Lock()
	for {
		if g.draining {
			g.mu.Unlock()
			g.shed("draining", cost)
			return nil, ErrDraining
		}
		if err := ctx.Err(); err != nil {
			g.mu.Unlock()
			return nil, err
		}
		if g.inflight+cost <= g.budget {
			g.inflight += cost
			g.leases++
			g.mu.Unlock()
			ctrAdmitted.Inc()
			ctrBytesInflight.Add(cost)
			return &Lease{g: g, bytes: cost}, nil
		}
		if !time.Now().Before(deadline) {
			held := g.inflight
			g.mu.Unlock()
			g.shed("overloaded", cost)
			return nil, fmt.Errorf("%w: need %d bytes, %d of %d in flight", ErrOverloaded, cost, held, g.budget)
		}
		g.cond.Wait()
	}
}

// shed accounts one rejected admission with a trace instant naming why.
func (g *Governor) shed(why string, cost int64) {
	ctrShed.Inc()
	obs.Emit("govern.shed", why, obs.PhaseTrial, -1,
		obs.Attr{Key: "cost_bytes", Val: strconv.FormatInt(cost, 10)})
}

// BeginDrain flips the governor into draining: every future and
// currently waiting Admit fails with ErrDraining, and DrainChan closes
// so batched joiners can detach. Idempotent.
func (g *Governor) BeginDrain() {
	g.mu.Lock()
	if !g.draining {
		g.draining = true
		close(g.drainCh)
	}
	g.mu.Unlock()
	g.cond.Broadcast()
}

// Draining reports whether BeginDrain has been called.
func (g *Governor) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// DrainChan returns a channel closed when draining begins; selectors
// blocked on long flights use it to detach promptly.
func (g *Governor) DrainChan() <-chan struct{} { return g.drainCh }

// AwaitIdle blocks until every outstanding lease is released or ctx
// expires, returning ctx's error (annotated with what is still held) in
// the latter case. Callers normally BeginDrain first so the lease count
// can only fall.
func (g *Governor) AwaitIdle(ctx context.Context) error {
	stop := context.AfterFunc(ctx, g.cond.Broadcast)
	defer stop()
	g.mu.Lock()
	defer g.mu.Unlock()
	for g.leases > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("govern: drain incomplete (%d leases, %d bytes still held): %w",
				g.leases, g.inflight, err)
		}
		g.cond.Wait()
	}
	return nil
}

// DefaultBudget picks an admission budget from the environment: half
// the Go runtime's memory limit when one is set (GOMEMLIMIT /
// debug.SetMemoryLimit), else half the machine's physical RAM from
// /proc/meminfo, else a conservative 4 GiB. Half, because the budget
// covers request working sets only — the LRU caches, runtime, and
// fragmentation live in the other half.
func DefaultBudget() int64 {
	// SetMemoryLimit(-1) reads the current limit without changing it;
	// MaxInt64 means "no limit set".
	if lim := debug.SetMemoryLimit(-1); lim > 0 && lim < math.MaxInt64 {
		return lim / 2
	}
	if total := readMemTotal("/proc/meminfo"); total > 0 {
		return total / 2
	}
	return 4 << 30
}

// readMemTotal parses the MemTotal line of a /proc/meminfo-format file,
// returning bytes (the file reports kB) or 0 when unavailable.
func readMemTotal(path string) int64 {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "MemTotal:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// ParseBytes parses a human byte quantity for the -mem-budget flag:
// a number with an optional suffix. KiB/MiB/GiB/TiB (and the bare
// K/M/G/T shorthand) are binary; KB/MB/GB/TB are decimal; B or no
// suffix is bytes. Fractional values ("1.5GiB") are allowed.
func ParseBytes(s string) (int64, error) {
	in := strings.TrimSpace(s)
	lower := strings.ToLower(in)
	mult := float64(1)
	num := lower
	for _, u := range []struct {
		suffix string
		mult   float64
	}{
		{"kib", 1 << 10}, {"mib", 1 << 20}, {"gib", 1 << 30}, {"tib", 1 << 40},
		{"kb", 1e3}, {"mb", 1e6}, {"gb", 1e9}, {"tb", 1e12},
		{"k", 1 << 10}, {"m", 1 << 20}, {"g", 1 << 30}, {"t", 1 << 40},
		{"b", 1},
	} {
		if strings.HasSuffix(lower, u.suffix) {
			mult = u.mult
			num = strings.TrimSpace(strings.TrimSuffix(lower, u.suffix))
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("govern: cannot parse byte quantity %q", s)
	}
	if v < 0 || v*mult > math.MaxInt64 {
		return 0, fmt.Errorf("govern: byte quantity %q out of range", s)
	}
	return int64(v * mult), nil
}
