package govern

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func newTestGov(budget int64, wait time.Duration) *Governor {
	return New(Config{BudgetBytes: budget, AdmitWait: wait})
}

func TestAdmitChargesAndReleases(t *testing.T) {
	g := newTestGov(1000, 10*time.Millisecond)
	l, err := g.Admit(context.Background(), 600)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if got := g.BytesInflight(); got != 600 {
		t.Fatalf("inflight = %d, want 600", got)
	}
	if g.Leases() != 1 {
		t.Fatalf("leases = %d, want 1", g.Leases())
	}
	l.Release()
	l.Release() // idempotent
	if got := g.BytesInflight(); got != 0 {
		t.Fatalf("inflight after release = %d, want 0", got)
	}
	if g.Leases() != 0 {
		t.Fatalf("leases after release = %d, want 0", g.Leases())
	}
}

func TestAdmitOverBudgetFailsFast(t *testing.T) {
	g := newTestGov(1000, time.Minute)
	start := time.Now()
	_, err := g.Admit(context.Background(), 1001)
	if !errors.Is(err, ErrOverBudget) {
		t.Fatalf("err = %v, want ErrOverBudget", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("over-budget admit waited instead of failing fast")
	}
}

func TestAdmitShedsAfterWait(t *testing.T) {
	g := newTestGov(1000, 20*time.Millisecond)
	shedBefore := ctrShed.Value()
	l, err := g.Admit(context.Background(), 900)
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	defer l.Release()
	_, err = g.Admit(context.Background(), 200)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if ctrShed.Value() != shedBefore+1 {
		t.Fatalf("shed counter delta = %d, want 1", ctrShed.Value()-shedBefore)
	}
}

// A cheap request must be admitted while a huge one is parked waiting
// for headroom — the cost-aware behavior the one-size semaphore lacked.
func TestCheapAdmitsAroundWaitingHuge(t *testing.T) {
	g := newTestGov(1000, 2*time.Second)
	l, err := g.Admit(context.Background(), 800)
	if err != nil {
		t.Fatalf("setup admit: %v", err)
	}
	hugeDone := make(chan error, 1)
	go func() {
		hl, err := g.Admit(context.Background(), 900) // must wait for the 800 to release
		if hl != nil {
			hl.Release()
		}
		hugeDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the huge request park
	cheap, err := g.Admit(context.Background(), 100)
	if err != nil {
		t.Fatalf("cheap admit while huge waits: %v", err)
	}
	cheap.Release()
	select {
	case err := <-hugeDone:
		t.Fatalf("huge admit finished before headroom appeared (err=%v)", err)
	default:
	}
	l.Release()
	if err := <-hugeDone; err != nil {
		t.Fatalf("huge admit after release: %v", err)
	}
}

func TestAdmitHonorsContextCancel(t *testing.T) {
	g := newTestGov(1000, time.Minute)
	l, err := g.Admit(context.Background(), 1000)
	if err != nil {
		t.Fatalf("setup admit: %v", err)
	}
	defer l.Release()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Admit(ctx, 500)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
}

func TestDrainRejectsAndAwaitsIdle(t *testing.T) {
	g := newTestGov(1000, time.Minute)
	l, err := g.Admit(context.Background(), 400)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	// A parked waiter must be woken with ErrDraining, not left hanging.
	waiterDone := make(chan error, 1)
	go func() {
		_, err := g.Admit(context.Background(), 700)
		waiterDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	g.BeginDrain()
	g.BeginDrain() // idempotent
	if !g.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	select {
	case <-g.DrainChan():
	default:
		t.Fatal("DrainChan not closed after BeginDrain")
	}
	select {
	case err := <-waiterDone:
		if !errors.Is(err, ErrDraining) {
			t.Fatalf("parked waiter err = %v, want ErrDraining", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("parked waiter not woken by BeginDrain")
	}
	if _, err := g.Admit(context.Background(), 1); !errors.Is(err, ErrDraining) {
		t.Fatalf("admit while draining = %v, want ErrDraining", err)
	}

	// AwaitIdle blocks on the outstanding lease, then returns.
	short, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.AwaitIdle(short); err == nil {
		t.Fatal("AwaitIdle returned nil with a lease outstanding")
	}
	l.Release()
	ok, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if err := g.AwaitIdle(ok); err != nil {
		t.Fatalf("AwaitIdle after release: %v", err)
	}
}

// Concurrent churn under the race detector: invariants are that
// inflight never exceeds the budget and everything returns to zero.
func TestAdmitConcurrentChurn(t *testing.T) {
	g := newTestGov(10_000, 500*time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(cost int64) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l, err := g.Admit(context.Background(), cost)
				if err != nil {
					continue
				}
				if got := g.BytesInflight(); got > g.Budget() {
					t.Errorf("inflight %d exceeds budget %d", got, g.Budget())
				}
				l.Release()
			}
		}(int64(500 + 400*(i%4)))
	}
	wg.Wait()
	if got := g.BytesInflight(); got != 0 {
		t.Fatalf("inflight after churn = %d, want 0", got)
	}
	if g.Leases() != 0 {
		t.Fatalf("leases after churn = %d, want 0", g.Leases())
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"512", 512, false},
		{"512B", 512, false},
		{"1KiB", 1024, false},
		{"512MiB", 512 << 20, false},
		{"2GiB", 2 << 30, false},
		{"1.5GiB", 3 << 29, false},
		{"1g", 1 << 30, false},
		{"64kB", 64_000, false},
		{"10MB", 10_000_000, false},
		{"", 0, true},
		{"tenMiB", 0, true},
		{"-1GiB", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if c.err {
			if err == nil {
				t.Errorf("ParseBytes(%q) = %d, want error", c.in, got)
			}
			continue
		}
		if err != nil || got != c.want {
			t.Errorf("ParseBytes(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
	}
}

func TestDefaultBudgetPositive(t *testing.T) {
	if b := DefaultBudget(); b <= 0 {
		t.Fatalf("DefaultBudget() = %d, want > 0", b)
	}
}
