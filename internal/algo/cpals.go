package algo

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// CPResult is the outcome of a CP-ALS run: X ≈ Σ_r λ_r · a_r⁽¹⁾ ∘ … ∘
// a_r⁽ᴺ⁾ with unit-norm factor columns.
type CPResult struct {
	// Factors holds one I_n × R matrix per mode with unit-norm columns.
	Factors []*tensor.Matrix
	// Lambda holds the R component weights.
	Lambda []float64
	// Fit is 1 - ‖X - X̂‖/‖X‖ (1 is exact).
	Fit float64
	// Iters is the number of ALS sweeps executed.
	Iters int
}

// MttkrpFunc computes the mode-n MTTKRP of the (implicit) input tensor
// with the given factor matrices. CPALSWith accepts one so the sweep's
// dominant kernel is pluggable: the serial/OMP plans here, or a
// distributed executor (internal/dist) that shards the tensor across
// workers and allreduces the partials.
type MttkrpFunc func(mode int, factors []*tensor.Matrix) (*tensor.Matrix, error)

// CPALS computes a rank-R CANDECOMP/PARAFAC decomposition by alternating
// least squares, the tensor method whose dominant kernel is Mttkrp
// (§2.5). It stops when the fit improves by less than tol between sweeps
// or after maxIters sweeps.
func CPALS(x *tensor.COO, rank, maxIters int, tol float64, seed int64, opt parallel.Options) (*CPResult, error) {
	if rank <= 0 {
		return nil, fmt.Errorf("algo: CP rank must be positive")
	}
	if x.Order() < 2 {
		return nil, fmt.Errorf("algo: CP needs an order >= 2 tensor")
	}
	plans := make([]*core.MttkrpPlan, x.Order())
	for n := range plans {
		p, err := core.PrepareMttkrp(x, n, rank)
		if err != nil {
			return nil, err
		}
		plans[n] = p
	}
	return CPALSWith(x, rank, maxIters, tol, seed,
		func(mode int, factors []*tensor.Matrix) (*tensor.Matrix, error) {
			return plans[mode].ExecuteOMP(factors, opt)
		})
}

// CPALSWith is CPALS with the MTTKRP execution injected: everything but
// the sweep's dominant kernel — factor initialization (deterministic in
// seed), the Hadamard-of-Grams normal equations, column normalization,
// and the fit stopping rule — stays here, so serial and distributed
// CP-ALS share one solver and can be cross-checked factor-for-factor.
func CPALSWith(x *tensor.COO, rank, maxIters int, tol float64, seed int64, mttkrp MttkrpFunc) (*CPResult, error) {
	if rank <= 0 {
		return nil, fmt.Errorf("algo: CP rank must be positive")
	}
	if x.Order() < 2 {
		return nil, fmt.Errorf("algo: CP needs an order >= 2 tensor")
	}
	order := x.Order()
	rng := rand.New(rand.NewSource(seed))
	res := &CPResult{
		Factors: make([]*tensor.Matrix, order),
		Lambda:  make([]float64, rank),
	}
	grams := make([][]float64, order) // A_nᵀA_n, R×R float64
	for n := 0; n < order; n++ {
		res.Factors[n] = tensor.NewMatrix(int(x.Dims[n]), rank)
		res.Factors[n].Randomize(rng)
		grams[n] = gram(res.Factors[n])
	}
	normX := frobeniusNorm(x)
	if normX == 0 {
		return nil, fmt.Errorf("algo: zero tensor")
	}

	prevFit := 0.0
	var lastM *tensor.Matrix
	for it := 0; it < maxIters; it++ {
		res.Iters = it + 1
		for n := 0; n < order; n++ {
			mt, err := mttkrp(n, res.Factors)
			if err != nil {
				return nil, err
			}
			// V = ⊛_{m≠n} gram_m.
			v := hadamardGrams(grams, n, rank)
			// A_n = M · V⁻¹ (row-wise solve).
			an := res.Factors[n]
			anData := make([]float64, an.Rows*rank)
			for i := range anData {
				anData[i] = float64(mt.Data[i])
			}
			if err := solveSymmetric(v, rank, anData, an.Rows); err != nil {
				return nil, err
			}
			// Column normalization → λ.
			for r := 0; r < rank; r++ {
				var s float64
				for i := 0; i < an.Rows; i++ {
					val := anData[i*rank+r]
					s += val * val
				}
				norm := math.Sqrt(s)
				res.Lambda[r] = norm
				inv := 0.0
				if norm > 0 {
					inv = 1 / norm
				}
				for i := 0; i < an.Rows; i++ {
					an.Data[i*rank+r] = tensor.Value(anData[i*rank+r] * inv)
				}
			}
			grams[n] = gram(an)
			lastM = mt
		}
		fit := cpFit(normX, res, grams, lastM, order-1)
		res.Fit = fit
		if it > 0 && math.Abs(fit-prevFit) < tol {
			break
		}
		prevFit = fit
	}
	return res, nil
}

// cpFit computes 1 - ‖X-X̂‖/‖X‖ using the standard CP-ALS identity:
// ‖X̂‖² = λᵀ (⊛_n AᵀA) λ and ⟨X, X̂⟩ = Σ_{i,r} M(i,r)·A_n(i,r)·λ_r with M
// the last Mttkrp result in mode n.
func cpFit(normX float64, res *CPResult, grams [][]float64, lastM *tensor.Matrix, lastMode int) float64 {
	rank := len(res.Lambda)
	// ‖X̂‖².
	had := hadamardGrams(grams, -1, rank)
	var normEst float64
	for r := 0; r < rank; r++ {
		for s := 0; s < rank; s++ {
			normEst += res.Lambda[r] * res.Lambda[s] * had[r*rank+s]
		}
	}
	// ⟨X, X̂⟩.
	var inner float64
	an := res.Factors[lastMode]
	for i := 0; i < an.Rows; i++ {
		for r := 0; r < rank; r++ {
			inner += float64(lastM.Data[i*rank+r]) * float64(an.Data[i*rank+r]) * res.Lambda[r]
		}
	}
	residual := normX*normX - 2*inner + normEst
	if residual < 0 {
		residual = 0
	}
	return 1 - math.Sqrt(residual)/normX
}

// hadamardGrams returns ⊛_{m≠skip} grams[m] (skip = -1 keeps all).
func hadamardGrams(grams [][]float64, skip, rank int) []float64 {
	out := make([]float64, rank*rank)
	for i := range out {
		out[i] = 1
	}
	for m, g := range grams {
		if m == skip {
			continue
		}
		for i := range out {
			out[i] *= g[i]
		}
	}
	return out
}

// gram computes AᵀA in float64.
func gram(a *tensor.Matrix) []float64 {
	r := a.Cols
	g := make([]float64, r*r)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for p := 0; p < r; p++ {
			vp := float64(row[p])
			for q := p; q < r; q++ {
				g[p*r+q] += vp * float64(row[q])
			}
		}
	}
	for p := 0; p < r; p++ {
		for q := 0; q < p; q++ {
			g[p*r+q] = g[q*r+p]
		}
	}
	return g
}

// frobeniusNorm returns ‖X‖_F of a sparse tensor.
func frobeniusNorm(x *tensor.COO) float64 {
	var s float64
	for _, v := range x.Vals {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// FrobeniusNorm returns ‖X‖_F of a sparse tensor.
func FrobeniusNorm(x *tensor.COO) float64 { return frobeniusNorm(x) }

// ReconstructAt evaluates the CP model X̂ at one coordinate — a testing
// and verification aid.
func (res *CPResult) ReconstructAt(idx []tensor.Index) float64 {
	rank := len(res.Lambda)
	var s float64
	for r := 0; r < rank; r++ {
		p := res.Lambda[r]
		for n, f := range res.Factors {
			p *= float64(f.At(int(idx[n]), r))
		}
		s += p
	}
	return s
}
