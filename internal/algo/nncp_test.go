package algo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

func TestNNCPRecoversNonnegativeLowRank(t *testing.T) {
	// lowRankTensor uses uniform (0,1) factors, so the tensor is
	// nonnegative with an exact rank-2 structure.
	x, _ := lowRankTensor([]int{10, 9, 8}, 2, 31)
	res, err := NNCP(x, 2, 400, 1e-9, 5, parallel.Options{Schedule: parallel.Static})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.99 {
		t.Fatalf("NNCP fit %v on an exactly rank-2 nonnegative tensor (iters=%d)", res.Fit, res.Iters)
	}
	// Factors must be nonnegative.
	for n, f := range res.Factors {
		for _, v := range f.Data {
			if v < 0 {
				t.Fatalf("factor %d has negative entry %v", n, v)
			}
		}
	}
	// Reconstruction matches at sample points.
	for _, c := range [][]tensor.Index{{0, 0, 0}, {4, 4, 4}, {9, 8, 7}} {
		want, _ := x.At(c...)
		got := res.ReconstructAt(c)
		if math.Abs(got-float64(want)) > 0.05*math.Max(1, math.Abs(float64(want))) {
			t.Fatalf("reconstruct at %v = %v, want %v", c, got, want)
		}
	}
}

func TestNNCPImprovesFitOnSparseData(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	x := tensor.RandomCOO([]tensor.Index{30, 25, 20}, 700, rng) // values in (0,1]
	res, err := NNCP(x, 6, 40, 1e-6, 2, parallel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit <= 0 || res.Fit > 1 {
		t.Fatalf("fit %v outside (0,1]", res.Fit)
	}
}

func TestNNCPErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	x := tensor.RandomCOO([]tensor.Index{5, 5, 5}, 20, rng)
	if _, err := NNCP(x, 0, 10, 1e-6, 1, parallel.Options{}); err == nil {
		t.Fatal("expected rank error")
	}
	neg := x.Clone()
	neg.Vals[0] = -1
	if _, err := NNCP(neg, 2, 10, 1e-6, 1, parallel.Options{}); err == nil {
		t.Fatal("expected nonnegativity error")
	}
	z := tensor.NewCOO([]tensor.Index{4, 4}, 0)
	if _, err := NNCP(z, 2, 10, 1e-6, 1, parallel.Options{}); err == nil {
		t.Fatal("expected zero-tensor error")
	}
}

func TestNNCPOrder4(t *testing.T) {
	x, _ := lowRankTensor([]int{6, 5, 4, 5}, 2, 35)
	res, err := NNCP(x, 3, 200, 1e-8, 7, parallel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.98 {
		t.Fatalf("order-4 NNCP fit %v", res.Fit)
	}
}
