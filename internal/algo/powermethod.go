package algo

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/tensor"
)

// TtvChain contracts every mode except skip against the corresponding
// vector, returning the dense result along mode skip: y = X ×₁ v₁ …
// (omitting ×_skip) … ×_N v_N. It is the inner step of the tensor power
// method (§2.3) and exercises the Ttv kernel repeatedly on shrinking
// tensors. vecs[skip] is ignored and may be nil.
func TtvChain(x *tensor.COO, vecs []tensor.Vector, skip int) (tensor.Vector, error) {
	if len(vecs) != x.Order() {
		return nil, fmt.Errorf("algo: TtvChain got %d vectors for order-%d tensor", len(vecs), x.Order())
	}
	if skip < 0 || skip >= x.Order() {
		return nil, fmt.Errorf("algo: TtvChain skip mode %d out of range", skip)
	}
	cur := x
	// Contract modes in descending original-mode order: every mode still
	// to be processed then keeps its original position in the shrinking
	// tensor, so the Ttv mode is simply n at each step.
	for n := x.Order() - 1; n >= 0; n-- {
		if n == skip {
			continue
		}
		v := vecs[n]
		if len(v) != int(x.Dims[n]) {
			return nil, fmt.Errorf("algo: TtvChain vector %d has length %d, want %d", n, len(v), x.Dims[n])
		}
		y, err := core.Ttv(cur, v, n)
		if err != nil {
			return nil, err
		}
		cur = y
	}
	// cur is now an order-1 sparse tensor along mode skip.
	out := tensor.NewVector(int(x.Dims[skip]))
	for m := 0; m < cur.NNZ(); m++ {
		out[cur.Inds[0][m]] += cur.Vals[m]
	}
	return out, nil
}

// RankOneResult is a rank-1 tensor approximation X ≈ λ · u₁ ∘ … ∘ u_N.
type RankOneResult struct {
	// Lambda is the component weight.
	Lambda float64
	// Vectors holds one unit vector per mode.
	Vectors []tensor.Vector
	// Iters is the number of power iterations executed.
	Iters int
}

// PowerMethod computes the dominant rank-1 component of a tensor with the
// higher-order power method: u_n ← normalize(X ×_{m≠n} u_m), iterated
// until λ stabilizes. This is the orthogonal-decomposition building block
// the paper cites as Ttv's motivating application (§2.3).
func PowerMethod(x *tensor.COO, maxIters int, tol float64, seed int64) (*RankOneResult, error) {
	if x.Order() < 2 {
		return nil, fmt.Errorf("algo: power method needs an order >= 2 tensor")
	}
	rng := rand.New(rand.NewSource(seed))
	res := &RankOneResult{Vectors: make([]tensor.Vector, x.Order())}
	for n := range res.Vectors {
		v := tensor.RandomVector(int(x.Dims[n]), rng)
		normalize(v)
		res.Vectors[n] = v
	}
	prev := 0.0
	for it := 0; it < maxIters; it++ {
		res.Iters = it + 1
		for n := 0; n < x.Order(); n++ {
			y, err := TtvChain(x, res.Vectors, n)
			if err != nil {
				return nil, err
			}
			res.Lambda = normalize(y)
			res.Vectors[n] = y
		}
		if it > 0 && math.Abs(res.Lambda-prev) <= tol*math.Max(1, math.Abs(prev)) {
			break
		}
		prev = res.Lambda
	}
	return res, nil
}

// normalize scales v to unit 2-norm and returns the original norm.
func normalize(v tensor.Vector) float64 {
	n := v.Norm2()
	if n > 0 {
		inv := tensor.Value(1 / n)
		for i := range v {
			v[i] *= inv
		}
	}
	return n
}
