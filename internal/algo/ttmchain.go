package algo

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tensor"
)

// DenseTensor is a small dense tensor — the core produced by a full
// TTM-chain (every mode contracted to R_n columns).
type DenseTensor struct {
	// Dims holds the core's mode sizes.
	Dims []int
	// Data is the row-major value array.
	Data []tensor.Value
}

// At returns the element at the given coordinates.
func (d *DenseTensor) At(idx ...int) tensor.Value {
	return d.Data[d.offset(idx)]
}

func (d *DenseTensor) offset(idx []int) int {
	if len(idx) != len(d.Dims) {
		panic("algo: DenseTensor index arity mismatch")
	}
	off := 0
	for n, i := range idx {
		if i < 0 || i >= d.Dims[n] {
			panic("algo: DenseTensor index out of range")
		}
		off = off*d.Dims[n] + i
	}
	return off
}

// NumEl returns the element count.
func (d *DenseTensor) NumEl() int { return len(d.Data) }

// TTMChain computes Y = X ×₁ U₁ ×₂ U₂ … ×_N U_N, the Tucker-core style
// TTM-chain the paper's §7 lists as the next operation for the suite.
// Each U_n is an I_n × R_n matrix in the suite's transposed convention.
// The first step runs the sparse Ttm kernel; every later step stays in
// semi-sparse form via the TtmSemi kernel, so the intermediates never
// expand back to COO. Intermediates still grow by Π R_n: intended for
// low-rank cores.
func TTMChain(x *tensor.COO, mats []*tensor.Matrix) (*DenseTensor, error) {
	if len(mats) != x.Order() {
		return nil, fmt.Errorf("algo: TTMChain got %d matrices for order-%d tensor", len(mats), x.Order())
	}
	for n, u := range mats {
		if u == nil {
			return nil, fmt.Errorf("algo: TTMChain matrix %d is nil", n)
		}
		if u.Rows != int(x.Dims[n]) {
			return nil, fmt.Errorf("algo: TTMChain matrix %d has %d rows, want %d", n, u.Rows, x.Dims[n])
		}
	}
	cur, err := core.Ttm(x, mats[0], 0)
	if err != nil {
		return nil, err
	}
	for n := 1; n < x.Order(); n++ {
		cur, err = core.TtmSemi(cur, mats[n], n)
		if err != nil {
			return nil, err
		}
	}
	// cur is now fully dense (no sparse modes left) with a single fiber
	// laid out row-major over the modes in ascending order.
	dims := make([]int, cur.Order())
	numEl := 1
	for n, d := range cur.Dims {
		dims[n] = int(d)
		numEl *= int(d)
	}
	out := &DenseTensor{Dims: dims, Data: make([]tensor.Value, numEl)}
	if cur.NumFibers() == 1 {
		copy(out.Data, cur.FiberVals(0))
		return out, nil
	}
	// Defensive fallback (e.g. an empty tensor produced zero fibers).
	if cur.NumFibers() == 0 {
		return out, nil
	}
	return nil, fmt.Errorf("algo: TTMChain internal: %d fibers after full contraction", cur.NumFibers())
}
