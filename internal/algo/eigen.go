package algo

import (
	"fmt"
	"math"
)

// jacobiEigen computes the eigendecomposition of a symmetric n×n matrix
// (row-major float64) with the cyclic Jacobi method: returns eigenvalues
// in descending order and the corresponding orthonormal eigenvectors as
// the COLUMNS of the returned row-major n×n matrix. Intended for the
// small Gram matrices of Tucker-HOOI (n up to a few hundred).
func jacobiEigen(a []float64, n int) (vals []float64, vecs []float64, err error) {
	if len(a) != n*n {
		return nil, nil, fmt.Errorf("algo: jacobiEigen got %d entries for n=%d", len(a), n)
	}
	m := make([]float64, n*n)
	copy(m, a)
	v := make([]float64, n*n)
	for i := 0; i < n; i++ {
		v[i*n+i] = 1
	}

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i*n+j] * m[i*n+j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := m[p*n+q]
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := m[p*n+p]
				aqq := m[q*n+q]
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/columns p and q of m.
				for k := 0; k < n; k++ {
					akp := m[k*n+p]
					akq := m[k*n+q]
					m[k*n+p] = c*akp - s*akq
					m[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk := m[p*n+k]
					aqk := m[q*n+k]
					m[p*n+k] = c*apk - s*aqk
					m[q*n+k] = s*apk + c*aqk
				}
				// Accumulate the rotation into the eigenvector matrix.
				for k := 0; k < n; k++ {
					vkp := v[k*n+p]
					vkq := v[k*n+q]
					v[k*n+p] = c*vkp - s*vkq
					v[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}

	// Extract eigenvalues and sort descending (reordering columns of v).
	vals = make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i*n+i]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ { // simple selection sort; n is small
		best := i
		for j := i + 1; j < n; j++ {
			if vals[order[j]] > vals[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	sortedVals := make([]float64, n)
	sortedVecs := make([]float64, n*n)
	for newCol, oldCol := range order {
		sortedVals[newCol] = vals[oldCol]
		for k := 0; k < n; k++ {
			sortedVecs[k*n+newCol] = v[k*n+oldCol]
		}
	}
	return sortedVals, sortedVecs, nil
}
