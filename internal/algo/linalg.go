// Package algo builds the tensor methods that motivate the benchmark
// kernels (§2): CANDECOMP/PARAFAC decomposition via alternating least
// squares (CP-ALS, whose bottleneck is Mttkrp), the higher-order power
// method (rank-1 decomposition via Ttv chains, §2.3), and the Tucker-style
// TTM-chain (§7). They serve both as extension features and as end-to-end
// consumers of the kernel implementations.
package algo

import (
	"fmt"
	"math"
)

// solveSymmetric solves A·X = B for X where A is an n×n symmetric
// positive-semidefinite matrix (row-major float64) and B is m×n row-major
// (each row an independent right-hand side, i.e. it computes B·A⁻¹ for
// row-vectors). A tiny ridge is added on pivot breakdown, the standard
// CP-ALS guard against rank-deficient Gram products.
func solveSymmetric(a []float64, n int, b []float64, m int) error {
	// Work on a copy of A with partial pivoting; apply the same row ops to
	// an identity to build A⁻¹, then multiply.
	inv, err := invertSPD(a, n)
	if err != nil {
		return err
	}
	tmp := make([]float64, n)
	for r := 0; r < m; r++ {
		row := b[r*n : (r+1)*n]
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += row[k] * inv[k*n+j]
			}
			tmp[j] = s
		}
		copy(row, tmp)
	}
	return nil
}

// invertSPD inverts a symmetric positive-(semi)definite matrix with
// Gauss-Jordan elimination and partial pivoting, retrying with a ridge on
// singular input.
func invertSPD(a []float64, n int) ([]float64, error) {
	for _, ridge := range []float64{0, 1e-12, 1e-8, 1e-4} {
		m := make([]float64, n*n)
		copy(m, a)
		for i := 0; i < n; i++ {
			m[i*n+i] += ridge
		}
		inv, ok := gaussJordan(m, n)
		if ok {
			return inv, nil
		}
	}
	return nil, fmt.Errorf("algo: gram matrix numerically singular")
}

func gaussJordan(m []float64, n int) ([]float64, bool) {
	inv := make([]float64, n*n)
	for i := 0; i < n; i++ {
		inv[i*n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		p := col
		best := math.Abs(m[col*n+col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m[r*n+col]); v > best {
				best, p = v, r
			}
		}
		if best < 1e-300 {
			return nil, false
		}
		if p != col {
			swapRows(m, n, p, col)
			swapRows(inv, n, p, col)
		}
		piv := m[col*n+col]
		for j := 0; j < n; j++ {
			m[col*n+j] /= piv
			inv[col*n+j] /= piv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r*n+col]
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				m[r*n+j] -= f * m[col*n+j]
				inv[r*n+j] -= f * inv[col*n+j]
			}
		}
	}
	return inv, true
}

func swapRows(m []float64, n, a, b int) {
	for j := 0; j < n; j++ {
		m[a*n+j], m[b*n+j] = m[b*n+j], m[a*n+j]
	}
}
