package algo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestJacobiEigenKnownMatrix(t *testing.T) {
	// Symmetric 2x2 with eigenvalues 3 and 1.
	a := []float64{2, 1, 1, 2}
	vals, vecs, err := jacobiEigen(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues %v, want [3 1]", vals)
	}
	// A·v = λ·v for each column.
	for c := 0; c < 2; c++ {
		for i := 0; i < 2; i++ {
			var av float64
			for k := 0; k < 2; k++ {
				av += a[i*2+k] * vecs[k*2+c]
			}
			if math.Abs(av-vals[c]*vecs[i*2+c]) > 1e-10 {
				t.Fatalf("column %d is not an eigenvector", c)
			}
		}
	}
}

func TestJacobiEigenRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 12
	// Build SPD A = B·Bᵀ.
	b := make([]float64, n*n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b[i*n+k] * b[j*n+k]
			}
			a[i*n+j] = s
		}
	}
	vals, vecs, err := jacobiEigen(a, n)
	if err != nil {
		t.Fatal(err)
	}
	// Descending non-negative eigenvalues.
	for i := 1; i < n; i++ {
		if vals[i] > vals[i-1]+1e-9 {
			t.Fatal("eigenvalues not descending")
		}
	}
	if vals[n-1] < -1e-8 {
		t.Fatalf("SPD matrix produced negative eigenvalue %v", vals[n-1])
	}
	// Orthonormal columns.
	for c1 := 0; c1 < n; c1++ {
		for c2 := c1; c2 < n; c2++ {
			var dot float64
			for k := 0; k < n; k++ {
				dot += vecs[k*n+c1] * vecs[k*n+c2]
			}
			want := 0.0
			if c1 == c2 {
				want = 1
			}
			if math.Abs(dot-want) > 1e-8 {
				t.Fatalf("columns %d,%d dot %v", c1, c2, dot)
			}
		}
	}
	// Residual ‖A v - λ v‖ small.
	for c := 0; c < n; c++ {
		var res float64
		for i := 0; i < n; i++ {
			var av float64
			for k := 0; k < n; k++ {
				av += a[i*n+k] * vecs[k*n+c]
			}
			d := av - vals[c]*vecs[i*n+c]
			res += d * d
		}
		if math.Sqrt(res) > 1e-6*(1+math.Abs(vals[c])) {
			t.Fatalf("eigenpair %d residual %v", c, math.Sqrt(res))
		}
	}
}

func TestJacobiEigenBadInput(t *testing.T) {
	if _, _, err := jacobiEigen([]float64{1, 2, 3}, 2); err == nil {
		t.Fatal("expected size error")
	}
}

func TestRandomOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randomOrthonormal(20, 5, rng)
	for c1 := 0; c1 < 5; c1++ {
		for c2 := c1; c2 < 5; c2++ {
			var dot float64
			for i := 0; i < 20; i++ {
				dot += float64(m.At(i, c1)) * float64(m.At(i, c2))
			}
			want := 0.0
			if c1 == c2 {
				want = 1
			}
			if math.Abs(dot-want) > 1e-5 {
				t.Fatalf("columns %d,%d dot %v", c1, c2, dot)
			}
		}
	}
}

// tuckerTensor builds a dense tensor (as COO) with exact Tucker structure
// G ×₁ U₁ ×₂ U₂ ×₃ U₃ using random orthonormal factors.
func tuckerTensor(dims []int, ranks []int, seed int64) *tensor.COO {
	rng := rand.New(rand.NewSource(seed))
	order := len(dims)
	factors := make([]*tensor.Matrix, order)
	for n := range dims {
		factors[n] = randomOrthonormal(dims[n], ranks[n], rng)
	}
	coreN := 1
	for _, r := range ranks {
		coreN *= r
	}
	core := make([]float64, coreN)
	for i := range core {
		core[i] = rng.NormFloat64()
	}
	td := make([]tensor.Index, order)
	for n, d := range dims {
		td[n] = tensor.Index(d)
	}
	x := tensor.NewCOO(td, 0)
	idx := make([]tensor.Index, order)
	rIdx := make([]int, order)
	var fill func(n int)
	fill = func(n int) {
		if n == order {
			var v float64
			var walk func(l int, prod float64, off int)
			walk = func(l int, prod float64, off int) {
				if l == order {
					v += prod * core[off]
					return
				}
				for r := 0; r < ranks[l]; r++ {
					rIdx[l] = r
					walk(l+1, prod*float64(factors[l].At(int(idx[l]), r)), off*ranks[l]+r)
				}
			}
			walk(0, 1, 0)
			if v != 0 {
				x.Append(idx, tensor.Value(v))
			}
			return
		}
		for i := 0; i < dims[n]; i++ {
			idx[n] = tensor.Index(i)
			fill(n + 1)
		}
	}
	fill(0)
	return x
}

func TestTuckerHOOIRecoversExactStructure(t *testing.T) {
	dims := []int{12, 10, 8}
	ranks := []int{3, 2, 2}
	x := tuckerTensor(dims, ranks, 7)
	res, err := TuckerHOOI(x, ranks, 30, 1e-9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.999 {
		t.Fatalf("HOOI fit %v on an exactly rank-(3,2,2) tensor (iters=%d)", res.Fit, res.Iters)
	}
	// Core dims match the requested ranks.
	for n, r := range ranks {
		if res.Core.Dims[n] != r {
			t.Fatalf("core dims %v, want %v", res.Core.Dims, ranks)
		}
	}
	// Factors stay orthonormal.
	for n, f := range res.Factors {
		for c1 := 0; c1 < ranks[n]; c1++ {
			for c2 := c1; c2 < ranks[n]; c2++ {
				var dot float64
				for i := 0; i < f.Rows; i++ {
					dot += float64(f.At(i, c1)) * float64(f.At(i, c2))
				}
				want := 0.0
				if c1 == c2 {
					want = 1
				}
				if math.Abs(dot-want) > 1e-4 {
					t.Fatalf("factor %d not orthonormal", n)
				}
			}
		}
	}
	// Pointwise reconstruction.
	for _, c := range [][]tensor.Index{{0, 0, 0}, {5, 5, 5}, {11, 9, 7}} {
		want, _ := x.At(c...)
		got := res.ReconstructAt(c)
		if math.Abs(got-float64(want)) > 1e-3*math.Max(1, math.Abs(float64(want))) {
			t.Fatalf("reconstruct at %v = %v, want %v", c, got, want)
		}
	}
}

func TestTuckerHOOIOnSparseTensor(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := tensor.RandomCOO([]tensor.Index{40, 30, 20}, 800, rng)
	res, err := TuckerHOOI(x, []int{6, 5, 4}, 10, 1e-6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit <= 0 || res.Fit > 1 {
		t.Fatalf("fit %v outside (0,1]", res.Fit)
	}
}

func TestTuckerHOOIOrder4(t *testing.T) {
	dims := []int{8, 7, 6, 5}
	ranks := []int{2, 2, 2, 2}
	x := tuckerTensor(dims, ranks, 11)
	res, err := TuckerHOOI(x, ranks, 25, 1e-9, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.99 {
		t.Fatalf("order-4 HOOI fit %v", res.Fit)
	}
}

func TestTuckerHOOIErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := tensor.RandomCOO([]tensor.Index{5, 5, 5}, 20, rng)
	if _, err := TuckerHOOI(x, []int{2, 2}, 5, 1e-6, 1); err == nil {
		t.Fatal("expected rank-arity error")
	}
	if _, err := TuckerHOOI(x, []int{0, 2, 2}, 5, 1e-6, 1); err == nil {
		t.Fatal("expected zero-rank error")
	}
	if _, err := TuckerHOOI(x, []int{9, 2, 2}, 5, 1e-6, 1); err == nil {
		t.Fatal("expected rank-exceeds-size error")
	}
	z := tensor.NewCOO([]tensor.Index{4, 4}, 0)
	if _, err := TuckerHOOI(z, []int{2, 2}, 5, 1e-6, 1); err == nil {
		t.Fatal("expected zero-tensor error")
	}
}
