package algo

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// NNCP computes a NONNEGATIVE rank-R CP decomposition with multiplicative
// updates (Lee-Seung generalized to tensors; Welling & Weber). The
// healthcare-analytics applications the paper motivates Mttkrp with
// (§2.5, the choa tensor) use nonnegative CP for interpretability —
// factors are retained as nonnegative "phenotypes". The bottleneck kernel
// is the same Mttkrp as CP-ALS:
//
//	A_n ← A_n ⊙ Mttkrp(X, A, n) ⊘ (A_n · ⊛_{m≠n} A_mᵀA_m)
//
// Inputs must be nonnegative; the update preserves nonnegativity.
func NNCP(x *tensor.COO, rank, maxIters int, tol float64, seed int64, opt parallel.Options) (*CPResult, error) {
	if rank <= 0 {
		return nil, fmt.Errorf("algo: NNCP rank must be positive")
	}
	if x.Order() < 2 {
		return nil, fmt.Errorf("algo: NNCP needs an order >= 2 tensor")
	}
	for _, v := range x.Vals {
		if v < 0 {
			return nil, fmt.Errorf("algo: NNCP needs a nonnegative tensor")
		}
	}
	order := x.Order()
	rng := rand.New(rand.NewSource(seed))
	res := &CPResult{
		Factors: make([]*tensor.Matrix, order),
		Lambda:  make([]float64, rank),
	}
	grams := make([][]float64, order)
	for n := 0; n < order; n++ {
		res.Factors[n] = tensor.NewMatrix(int(x.Dims[n]), rank)
		res.Factors[n].Randomize(rng) // uniform (0,1): nonnegative init
		grams[n] = gram(res.Factors[n])
	}
	plans := make([]*core.MttkrpPlan, order)
	for n := 0; n < order; n++ {
		p, err := core.PrepareMttkrp(x, n, rank)
		if err != nil {
			return nil, err
		}
		plans[n] = p
	}
	normX := frobeniusNorm(x)
	if normX == 0 {
		return nil, fmt.Errorf("algo: zero tensor")
	}

	const eps = 1e-12
	prevFit := 0.0
	var lastM *tensor.Matrix
	for it := 0; it < maxIters; it++ {
		res.Iters = it + 1
		for n := 0; n < order; n++ {
			mt, err := plans[n].ExecuteOMP(res.Factors, opt)
			if err != nil {
				return nil, err
			}
			v := hadamardGrams(grams, n, rank)
			an := res.Factors[n]
			// Multiplicative update per element: no solve, no sign flips.
			for i := 0; i < an.Rows; i++ {
				row := an.Row(i)
				for r := 0; r < rank; r++ {
					var denom float64
					for s := 0; s < rank; s++ {
						denom += float64(row[s]) * v[s*rank+r]
					}
					num := float64(mt.At(i, r))
					row[r] = tensor.Value(float64(row[r]) * num / (denom + eps))
				}
			}
			grams[n] = gram(an)
			lastM = mt
		}
		// Factors stay unnormalized (the multiplicative form absorbs the
		// weights), so the component weights are identically 1 and
		// ReconstructAt remains exact.
		for r := 0; r < rank; r++ {
			res.Lambda[r] = 1
		}
		fit := nncpFit(normX, res, grams, lastM, order-1, rank)
		res.Fit = fit
		if it > 0 && math.Abs(fit-prevFit) < tol {
			break
		}
		prevFit = fit
	}
	return res, nil
}

// nncpFit is the CP fit identity with unnormalized factors (lambda = 1).
func nncpFit(normX float64, res *CPResult, grams [][]float64, lastM *tensor.Matrix, lastMode, rank int) float64 {
	had := hadamardGrams(grams, -1, rank)
	var normEst float64
	for r := 0; r < rank; r++ {
		for s := 0; s < rank; s++ {
			normEst += had[r*rank+s]
		}
	}
	var inner float64
	an := res.Factors[lastMode]
	for i := 0; i < an.Rows; i++ {
		for r := 0; r < rank; r++ {
			inner += float64(lastM.Data[i*rank+r]) * float64(an.Data[i*rank+r])
		}
	}
	residual := normX*normX - 2*inner + normEst
	if residual < 0 {
		residual = 0
	}
	return 1 - math.Sqrt(residual)/normX
}
