package algo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// lowRankTensor builds a dense tensor (as COO) from known rank-R factors
// so decomposition quality is verifiable.
func lowRankTensor(dims []int, rank int, seed int64) (*tensor.COO, []*tensor.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	mats := make([]*tensor.Matrix, len(dims))
	for n, d := range dims {
		mats[n] = tensor.NewMatrix(d, rank)
		mats[n].Randomize(rng)
	}
	td := make([]tensor.Index, len(dims))
	for n, d := range dims {
		td[n] = tensor.Index(d)
	}
	x := tensor.NewCOO(td, 0)
	idx := make([]tensor.Index, len(dims))
	var fill func(n int)
	fill = func(n int) {
		if n == len(dims) {
			var v float64
			for r := 0; r < rank; r++ {
				p := 1.0
				for m := range dims {
					p *= float64(mats[m].At(int(idx[m]), r))
				}
				v += p
			}
			x.Append(idx, tensor.Value(v))
			return
		}
		for i := 0; i < dims[n]; i++ {
			idx[n] = tensor.Index(i)
			fill(n + 1)
		}
	}
	fill(0)
	return x, mats
}

func TestGaussJordanInverse(t *testing.T) {
	a := []float64{4, 1, 0, 1, 3, 1, 0, 1, 2}
	inv, err := invertSPD(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A · A⁻¹ = I.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += a[i*3+k] * inv[k*3+j]
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(s-want) > 1e-10 {
				t.Fatalf("(A·A⁻¹)[%d][%d] = %v", i, j, s)
			}
		}
	}
}

func TestInvertSingularUsesRidge(t *testing.T) {
	// Rank-1 matrix is singular; the ridge fallback must still succeed.
	a := []float64{1, 1, 1, 1}
	if _, err := invertSPD(a, 2); err != nil {
		t.Fatalf("ridge fallback failed: %v", err)
	}
}

func TestSolveSymmetric(t *testing.T) {
	a := []float64{2, 0, 0, 3}
	b := []float64{4, 9, 2, 3} // rows (4,9) and (2,3)
	if err := solveSymmetric(a, 2, b, 2); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 1, 1}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("solve result %v, want %v", b, want)
		}
	}
}

func TestCPALSRecoversLowRank(t *testing.T) {
	x, _ := lowRankTensor([]int{8, 9, 7}, 2, 11)
	res, err := CPALS(x, 2, 200, 1e-8, 3, parallel.Options{Schedule: parallel.Static})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.999 {
		t.Fatalf("CP-ALS fit %v on an exactly rank-2 tensor (iters=%d)", res.Fit, res.Iters)
	}
	// Reconstruction matches at sampled coordinates.
	for _, c := range [][]tensor.Index{{0, 0, 0}, {3, 4, 5}, {7, 8, 6}} {
		want, _ := x.At(c...)
		got := res.ReconstructAt(c)
		if math.Abs(got-float64(want)) > 1e-2*math.Max(1, math.Abs(float64(want))) {
			t.Fatalf("reconstruct at %v = %v, want %v", c, got, want)
		}
	}
}

func TestCPALSOrder4(t *testing.T) {
	x, _ := lowRankTensor([]int{5, 6, 4, 5}, 2, 13)
	res, err := CPALS(x, 3, 150, 1e-8, 5, parallel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit < 0.99 {
		t.Fatalf("order-4 CP-ALS fit %v", res.Fit)
	}
	if len(res.Factors) != 4 || len(res.Lambda) != 3 {
		t.Fatalf("result shapes wrong")
	}
	// Factor columns are unit norm.
	for n, f := range res.Factors {
		for r := 0; r < 3; r++ {
			var s float64
			for i := 0; i < f.Rows; i++ {
				s += float64(f.At(i, r)) * float64(f.At(i, r))
			}
			if math.Abs(math.Sqrt(s)-1) > 1e-3 {
				t.Fatalf("factor %d column %d norm %v", n, r, math.Sqrt(s))
			}
		}
	}
}

func TestCPALSSparseTensorImprovesFit(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	x := tensor.RandomCOO([]tensor.Index{30, 30, 30}, 600, rng)
	res, err := CPALS(x, 8, 30, 1e-6, 7, parallel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fit <= 0 || res.Fit > 1 {
		t.Fatalf("fit %v out of (0,1]", res.Fit)
	}
}

func TestCPALSErrors(t *testing.T) {
	x := tensor.RandomCOO([]tensor.Index{5, 5, 5}, 20, rand.New(rand.NewSource(1)))
	if _, err := CPALS(x, 0, 10, 1e-6, 1, parallel.Options{}); err == nil {
		t.Fatal("expected rank error")
	}
	z := tensor.NewCOO([]tensor.Index{4, 4}, 0)
	if _, err := CPALS(z, 2, 10, 1e-6, 1, parallel.Options{}); err == nil {
		t.Fatal("expected zero-tensor error")
	}
}

func TestTtvChain(t *testing.T) {
	// X(i,j,k) over 2x2x2 with value i+2j+4k+1; contract modes 1,2 with
	// ones → y[i] = Σ_{j,k} X(i,j,k).
	x := tensor.NewCOO([]tensor.Index{2, 2, 2}, 8)
	for i := tensor.Index(0); i < 2; i++ {
		for j := tensor.Index(0); j < 2; j++ {
			for k := tensor.Index(0); k < 2; k++ {
				x.Append([]tensor.Index{i, j, k}, tensor.Value(i+2*j+4*k+1))
			}
		}
	}
	ones := tensor.Vector{1, 1}
	y, err := TtvChain(x, []tensor.Vector{nil, ones, ones}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// y[0] = Σ (0+2j+4k+1) = 4 + 2(0+1)·2/... enumerate: j,k ∈ {0,1}:
	// 1+3+5+7 = 16; y[1] = 2+4+6+8 = 20.
	if y[0] != 16 || y[1] != 20 {
		t.Fatalf("TtvChain = %v, want [16 20]", y)
	}
	// Errors.
	if _, err := TtvChain(x, []tensor.Vector{ones, ones}, 0); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := TtvChain(x, []tensor.Vector{nil, ones, ones}, 5); err == nil {
		t.Fatal("expected skip range error")
	}
	if _, err := TtvChain(x, []tensor.Vector{nil, tensor.Vector{1}, ones}, 0); err == nil {
		t.Fatal("expected vector length error")
	}
}

func TestPowerMethodRecoversRankOne(t *testing.T) {
	// Build an exact rank-1 tensor λ·u∘v∘w.
	x, mats := lowRankTensor([]int{10, 9, 8}, 1, 23)
	res, err := PowerMethod(x, 100, 1e-9, 3)
	if err != nil {
		t.Fatal(err)
	}
	// λ must equal the product of factor column norms.
	want := 1.0
	for _, m := range mats {
		var s float64
		for i := 0; i < m.Rows; i++ {
			s += float64(m.At(i, 0)) * float64(m.At(i, 0))
		}
		want *= math.Sqrt(s)
	}
	if math.Abs(res.Lambda-want) > 1e-3*want {
		t.Fatalf("lambda %v, want %v", res.Lambda, want)
	}
	// Vectors match up to sign.
	for n, m := range mats {
		var dot, norm float64
		for i := 0; i < m.Rows; i++ {
			dot += float64(m.At(i, 0)) * float64(res.Vectors[n][i])
			norm += float64(m.At(i, 0)) * float64(m.At(i, 0))
		}
		cos := math.Abs(dot) / math.Sqrt(norm)
		if cos < 0.999 {
			t.Fatalf("mode %d vector misaligned, |cos| = %v", n, cos)
		}
	}
}

func TestPowerMethodErrors(t *testing.T) {
	v := tensor.NewCOO([]tensor.Index{5}, 0)
	if _, err := PowerMethod(v, 10, 1e-6, 1); err == nil {
		t.Fatal("expected order error")
	}
}

func TestTTMChainComputesCore(t *testing.T) {
	// X 2x2 identity-ish, U matrices 2x1 of ones: core = Σ X(i,j).
	x := tensor.NewCOO([]tensor.Index{2, 2}, 2)
	x.Append([]tensor.Index{0, 0}, 3)
	x.Append([]tensor.Index{1, 1}, 4)
	ones := tensor.NewMatrix(2, 1)
	ones.Fill(1)
	core, err := TTMChain(x, []*tensor.Matrix{ones, ones})
	if err != nil {
		t.Fatal(err)
	}
	if core.NumEl() != 1 || core.At(0, 0) != 7 {
		t.Fatalf("core = %+v, want single 7", core)
	}
}

func TestTTMChainAgainstDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := tensor.RandomCOO([]tensor.Index{6, 7, 5}, 80, rng)
	mats := []*tensor.Matrix{tensor.NewMatrix(6, 2), tensor.NewMatrix(7, 3), tensor.NewMatrix(5, 2)}
	for _, m := range mats {
		m.Randomize(rng)
	}
	coreT, err := TTMChain(x, mats)
	if err != nil {
		t.Fatal(err)
	}
	if len(coreT.Dims) != 3 || coreT.Dims[0] != 2 || coreT.Dims[1] != 3 || coreT.Dims[2] != 2 {
		t.Fatalf("core dims %v", coreT.Dims)
	}
	// Direct: core(p,q,r) = Σ_nnz x · U1(i,p) U2(j,q) U3(k,r).
	idx := make([]tensor.Index, 3)
	for p := 0; p < 2; p++ {
		for q := 0; q < 3; q++ {
			for r := 0; r < 2; r++ {
				var want float64
				for m := 0; m < x.NNZ(); m++ {
					v := x.Entry(m, idx)
					want += float64(v) * float64(mats[0].At(int(idx[0]), p)) *
						float64(mats[1].At(int(idx[1]), q)) * float64(mats[2].At(int(idx[2]), r))
				}
				got := float64(coreT.At(p, q, r))
				if math.Abs(got-want) > 1e-3*math.Max(1, math.Abs(want)) {
					t.Fatalf("core(%d,%d,%d) = %v, want %v", p, q, r, got, want)
				}
			}
		}
	}
}

func TestTTMChainErrors(t *testing.T) {
	x := tensor.RandomCOO([]tensor.Index{4, 4}, 8, rand.New(rand.NewSource(2)))
	if _, err := TTMChain(x, []*tensor.Matrix{nil}); err == nil {
		t.Fatal("expected arity error")
	}
	if _, err := TTMChain(x, []*tensor.Matrix{nil, tensor.NewMatrix(4, 2)}); err == nil {
		t.Fatal("expected nil-matrix error")
	}
	if _, err := TTMChain(x, []*tensor.Matrix{tensor.NewMatrix(3, 2), tensor.NewMatrix(4, 2)}); err == nil {
		t.Fatal("expected row-count error")
	}
}

func TestFrobeniusNorm(t *testing.T) {
	x := tensor.NewCOO([]tensor.Index{3, 3}, 2)
	x.Append([]tensor.Index{0, 0}, 3)
	x.Append([]tensor.Index{1, 2}, 4)
	if n := FrobeniusNorm(x); n != 5 {
		t.Fatalf("norm %v, want 5", n)
	}
}
