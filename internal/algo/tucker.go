package algo

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/tensor"
)

// TuckerResult is a Tucker decomposition X ≈ G ×₁ U₁ … ×_N U_N with
// orthonormal factor columns.
type TuckerResult struct {
	// Core is the R₁×…×R_N core tensor.
	Core *DenseTensor
	// Factors holds one I_n × R_n orthonormal matrix per mode.
	Factors []*tensor.Matrix
	// Fit is 1 - ‖X - X̂‖/‖X‖.
	Fit float64
	// Iters is the number of HOOI sweeps executed.
	Iters int
}

// TuckerHOOI computes a Tucker decomposition with Higher-Order Orthogonal
// Iteration, the tensor method whose bottleneck kernel is the TTM chain
// (§2.4, §7). Each sweep updates U_n to the leading R_n eigenvectors of
// the mode-n matricization of X ×_{m≠n} U_mᵀ. The Gram matrices are
// I_n × I_n, so this reference implementation targets modest mode sizes
// (up to a few hundred).
func TuckerHOOI(x *tensor.COO, ranks []int, maxIters int, tol float64, seed int64) (*TuckerResult, error) {
	order := x.Order()
	if len(ranks) != order {
		return nil, fmt.Errorf("algo: Tucker got %d ranks for order-%d tensor", len(ranks), order)
	}
	for n, r := range ranks {
		if r < 1 || r > int(x.Dims[n]) {
			return nil, fmt.Errorf("algo: Tucker rank %d invalid for mode %d (size %d)", r, n, x.Dims[n])
		}
	}
	if x.NNZ() == 0 {
		return nil, fmt.Errorf("algo: zero tensor")
	}
	rng := rand.New(rand.NewSource(seed))
	res := &TuckerResult{Factors: make([]*tensor.Matrix, order)}
	for n := 0; n < order; n++ {
		res.Factors[n] = randomOrthonormal(int(x.Dims[n]), ranks[n], rng)
	}
	normX := frobeniusNorm(x)

	prevFit := 0.0
	for it := 0; it < maxIters; it++ {
		res.Iters = it + 1
		for n := 0; n < order; n++ {
			w, err := projectAllBut(x, res.Factors, n)
			if err != nil {
				return nil, err
			}
			// Gram G = W Wᵀ (I_n × I_n) and its leading eigenvectors.
			in := int(x.Dims[n])
			cols := len(w) / in
			g := make([]float64, in*in)
			for i := 0; i < in; i++ {
				for j := i; j < in; j++ {
					var s float64
					for c := 0; c < cols; c++ {
						s += w[i*cols+c] * w[j*cols+c]
					}
					g[i*in+j] = s
					g[j*in+i] = s
				}
			}
			_, vecs, err := jacobiEigen(g, in)
			if err != nil {
				return nil, err
			}
			u := res.Factors[n]
			for i := 0; i < in; i++ {
				for r := 0; r < ranks[n]; r++ {
					u.Set(i, r, tensor.Value(vecs[i*in+r]))
				}
			}
		}
		// Core and fit: with orthonormal factors ‖X̂‖ = ‖core‖.
		coreT, err := TTMChain(x, res.Factors)
		if err != nil {
			return nil, err
		}
		res.Core = coreT
		var coreNorm float64
		for _, v := range coreT.Data {
			coreNorm += float64(v) * float64(v)
		}
		residual := normX*normX - coreNorm
		if residual < 0 {
			residual = 0
		}
		res.Fit = 1 - math.Sqrt(residual)/normX
		if it > 0 && math.Abs(res.Fit-prevFit) < tol {
			break
		}
		prevFit = res.Fit
	}
	return res, nil
}

// projectAllBut computes W = mode-n matricization of X ×_{m≠n} U_mᵀ as a
// dense I_n × ∏_{m≠n} R_m row-major array, by chaining the suite's
// Ttm/TtmSemi kernels over every mode except n.
func projectAllBut(x *tensor.COO, factors []*tensor.Matrix, skip int) ([]float64, error) {
	order := x.Order()
	// First contraction on the lowest non-skip mode via sparse Ttm, the
	// rest via semi-sparse TtmSemi.
	first := 0
	if first == skip {
		first = 1
	}
	cur, err := core.Ttm(x, factors[first], first)
	if err != nil {
		return nil, err
	}
	for n := 0; n < order; n++ {
		if n == skip || n == first {
			continue
		}
		cur, err = core.TtmSemi(cur, factors[n], n)
		if err != nil {
			return nil, err
		}
	}
	// cur: sparse mode = skip only; dense modes = all others with sizes
	// R_m (ascending mode order, which is the Kolda matricization column
	// order up to a fixed permutation — consistent across sweeps, which
	// is all the Gram computation needs).
	in := int(x.Dims[skip])
	cols := cur.DenseSize()
	w := make([]float64, in*cols)
	sparse := cur.SparseModes()
	if len(sparse) != 1 || sparse[0] != skip {
		return nil, fmt.Errorf("algo: projectAllBut left sparse modes %v", sparse)
	}
	for f := 0; f < cur.NumFibers(); f++ {
		i := int(cur.Inds[0][f])
		row := cur.FiberVals(f)
		for c, v := range row {
			w[i*cols+c] += float64(v)
		}
	}
	return w, nil
}

// randomOrthonormal returns an I×R matrix with orthonormal columns via
// modified Gram-Schmidt on random data.
func randomOrthonormal(rows, cols int, rng *rand.Rand) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	col := make([]float64, rows)
	prev := make([][]float64, 0, cols)
	for c := 0; c < cols; c++ {
		for {
			for i := range col {
				col[i] = rng.NormFloat64()
			}
			for _, p := range prev {
				var dot float64
				for i := range col {
					dot += col[i] * p[i]
				}
				for i := range col {
					col[i] -= dot * p[i]
				}
			}
			var norm float64
			for _, v := range col {
				norm += v * v
			}
			norm = math.Sqrt(norm)
			if norm > 1e-8 {
				for i := range col {
					col[i] /= norm
				}
				break
			}
		}
		saved := append([]float64(nil), col...)
		prev = append(prev, saved)
		for i := 0; i < rows; i++ {
			m.Set(i, c, tensor.Value(saved[i]))
		}
	}
	return m
}

// ReconstructAt evaluates the Tucker model X̂ at one coordinate.
func (res *TuckerResult) ReconstructAt(idx []tensor.Index) float64 {
	dims := res.Core.Dims
	order := len(dims)
	var s float64
	coord := make([]int, order)
	var walk func(level int, prod float64)
	walk = func(level int, prod float64) {
		if level == order {
			off := 0
			for n, c := range coord {
				off = off*dims[n] + c
			}
			s += prod * float64(res.Core.Data[off])
			return
		}
		for r := 0; r < dims[level]; r++ {
			coord[level] = r
			walk(level+1, prod*float64(res.Factors[level].At(int(idx[level]), r)))
		}
	}
	walk(0, 1)
	return s
}
