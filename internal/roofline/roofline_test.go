package roofline

import (
	"math"
	"testing"

	"repro/internal/platform"
)

func TestTable1ThirdOrderFormulas(t *testing.T) {
	// Substituting the paper's third-order cubical assumptions must
	// reproduce the Table 1 entries exactly.
	p := Params{Order: 3, M: 1000, MF: 100, Nb: 10, R: 16, BlockSize: 128}

	if w := Work(Tew, p); w != p.M {
		t.Fatalf("Tew work = %d, want M", w)
	}
	if w := Work(Ts, p); w != p.M {
		t.Fatalf("Ts work = %d, want M", w)
	}
	if w := Work(Ttv, p); w != 2*p.M {
		t.Fatalf("Ttv work = %d, want 2M", w)
	}
	if w := Work(Ttm, p); w != 2*p.M*p.R {
		t.Fatalf("Ttm work = %d, want 2MR", w)
	}
	if w := Work(Mttkrp, p); w != 3*p.M*p.R {
		t.Fatalf("Mttkrp work = %d, want 3MR", w)
	}

	if b := Bytes(Tew, COO, p); b != 12*p.M {
		t.Fatalf("Tew bytes = %d, want 12M", b)
	}
	if b := Bytes(Tew, HiCOO, p); b != 12*p.M {
		t.Fatalf("Tew HiCOO bytes = %d, want 12M", b)
	}
	if b := Bytes(Ts, COO, p); b != 8*p.M {
		t.Fatalf("Ts bytes = %d, want 8M", b)
	}
	if b := Bytes(Ttv, COO, p); b != 12*p.M+12*p.MF {
		t.Fatalf("Ttv bytes = %d, want 12M+12MF", b)
	}
	if b := Bytes(Ttm, COO, p); b != 4*p.M*p.R+4*p.MF*p.R+8*p.M+8*p.MF {
		t.Fatalf("Ttm bytes = %d, want 4MR+4MFR+8M+8MF", b)
	}
	if b := Bytes(Mttkrp, COO, p); b != 12*p.M*p.R+16*p.M {
		t.Fatalf("Mttkrp COO bytes = %d, want 12MR+16M", b)
	}
	// HiCOO Mttkrp: 12R·min(nb·B, M) + 7M + 20nb with nb·B=1280 > M=1000.
	want := 12*p.R*p.M + 7*p.M + 20*p.Nb
	if b := Bytes(Mttkrp, HiCOO, p); b != want {
		t.Fatalf("Mttkrp HiCOO bytes = %d, want %d", b, want)
	}
	// Capped branch: nb·B < M.
	p2 := p
	p2.Nb = 2
	want2 := 12*p2.R*(p2.Nb*p2.BlockSize) + 7*p2.M + 20*p2.Nb
	if b := Bytes(Mttkrp, HiCOO, p2); b != want2 {
		t.Fatalf("Mttkrp HiCOO capped bytes = %d, want %d", b, want2)
	}
}

func TestHiCOOMttkrpBytesSmaller(t *testing.T) {
	// Table 1's point: HiCOO-Mttkrp moves less memory than COO-Mttkrp for
	// blocked tensors.
	p := Params{Order: 3, M: 1 << 20, MF: 1 << 16, Nb: 1 << 12, R: 16, BlockSize: 128}
	if Bytes(Mttkrp, HiCOO, p) >= Bytes(Mttkrp, COO, p) {
		t.Fatal("HiCOO Mttkrp traffic should be below COO")
	}
}

func TestAsymptoticOI(t *testing.T) {
	// OI for a large cubical third-order tensor approaches Table 1.
	p := Params{Order: 3, M: 1 << 24, MF: 1 << 16, Nb: 1 << 12, R: 16, BlockSize: 128}
	cases := []struct {
		k    Kernel
		want float64
		tol  float64
	}{
		{Tew, 1.0 / 12, 1e-9},
		{Ts, 1.0 / 8, 1e-9},
		{Ttv, 1.0 / 6, 0.01},
		// The paper's "~1/2" drops the 8M+8MF input term, which at R=16
		// still contributes ~11% of traffic: the exact value is 0.444.
		{Ttm, 1.0 / 2, 0.06},
		{Mttkrp, 1.0 / 4, 0.05},
	}
	for _, c := range cases {
		got := OI(c.k, COO, p)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%v OI = %v, want ≈ %v", c.k, got, c.want)
		}
		if AsymptoticOI(c.k) != c.want {
			t.Errorf("%v asymptotic OI wrong", c.k)
		}
	}
}

func TestKernelStrings(t *testing.T) {
	names := map[Kernel]string{Tew: "Tew", Ts: "Ts", Ttv: "Ttv", Ttm: "Ttm", Mttkrp: "Mttkrp"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kernel %d string %q", int(k), k.String())
		}
	}
	if COO.String() != "COO" || HiCOO.String() != "HiCOO" {
		t.Fatal("Format strings wrong")
	}
	if Kernel(99).String() != "unknown" {
		t.Fatal("unknown kernel string")
	}
}

func TestAttainable(t *testing.T) {
	p := &platform.Bluesky
	// Memory-bound region: OI × BW.
	if got := Attainable(p, 0.1); math.Abs(got-0.1*p.ERTDRAMGBs) > 1e-9 {
		t.Fatalf("Attainable(0.1) = %v", got)
	}
	// Compute-bound region: clamped at peak.
	if got := Attainable(p, 1e6); got != p.PeakSPGFLOPS {
		t.Fatalf("Attainable(huge) = %v, want peak", got)
	}
	if AttainableLLC(p, 0.1) <= Attainable(p, 0.1) {
		t.Fatal("LLC roof must exceed DRAM roof in the memory-bound region")
	}
}

func TestRidgeOI(t *testing.T) {
	p := &platform.DGX1V
	ridge := RidgeOI(p)
	if math.Abs(Attainable(p, ridge)-p.PeakSPGFLOPS) > 1e-6 {
		t.Fatal("ridge point must reach peak")
	}
	if Attainable(p, ridge/2) >= p.PeakSPGFLOPS {
		t.Fatal("below ridge must be memory bound")
	}
}

func TestBuildCurve(t *testing.T) {
	c := BuildCurve(&platform.DGX1P, 0.01, 100, 50)
	if len(c.DRAM) != 50 || len(c.LLC) != 50 || len(c.Theory) != 50 {
		t.Fatal("curve lengths wrong")
	}
	// Monotone non-decreasing in OI.
	for i := 1; i < len(c.DRAM); i++ {
		if c.DRAM[i].GFLOPS < c.DRAM[i-1].GFLOPS {
			t.Fatal("DRAM roof not monotone")
		}
	}
	// ERT roof never above theoretical roof.
	for i := range c.DRAM {
		if c.DRAM[i].GFLOPS > c.Theory[i].GFLOPS+1e-9 {
			t.Fatal("ERT roof above theoretical roof")
		}
	}
	if s := FormatCurve(c); len(s) == 0 {
		t.Fatal("FormatCurve empty")
	}
}

func TestKernelMarks(t *testing.T) {
	for _, p := range platform.All() {
		marks := KernelMarks(p)
		if len(marks) != 5 {
			t.Fatalf("%s: %d marks", p.Name, len(marks))
		}
		// All five kernels are memory bound on every platform (§5.2).
		for name, pt := range marks {
			if pt.GFLOPS >= p.PeakSPGFLOPS {
				t.Errorf("%s/%s marked compute-bound", p.Name, name)
			}
		}
		// Ttm has the highest OI, Tew the lowest (Table 1 ordering).
		if marks["Ttm"].GFLOPS <= marks["Mttkrp"].GFLOPS ||
			marks["Mttkrp"].GFLOPS <= marks["Ttv"].GFLOPS ||
			marks["Ttv"].GFLOPS <= marks["Ts"].GFLOPS ||
			marks["Ts"].GFLOPS <= marks["Tew"].GFLOPS {
			t.Errorf("%s: kernel OI ordering violated", p.Name)
		}
	}
}

func TestEfficiency(t *testing.T) {
	p := &platform.Bluesky
	oi := 0.25
	bound := Attainable(p, oi)
	if e := Efficiency(p, oi, bound); math.Abs(e-1) > 1e-9 {
		t.Fatalf("efficiency at bound = %v, want 1", e)
	}
	if e := Efficiency(p, oi, bound/2); math.Abs(e-0.5) > 1e-9 {
		t.Fatalf("efficiency = %v, want 0.5", e)
	}
}

func TestRunERTQuick(t *testing.T) {
	r := RunERT(true)
	if r.DRAMGBs <= 0 || r.LLCGBs <= 0 || r.PeakGFLOPS <= 0 {
		t.Fatalf("ERT produced non-positive results: %+v", r)
	}
	h := MeasureHost(true)
	if h.ERTDRAMGBs != r.DRAMGBs && h.ERTDRAMGBs <= 0 {
		t.Fatal("MeasureHost did not record bandwidth")
	}
	if h.PeakSPGFLOPS <= 0 {
		t.Fatal("MeasureHost did not record peak")
	}
}

func TestPlatformTable4Values(t *testing.T) {
	// Spot-check Table 4 entries and the GPU/CPU advantage ratios the
	// paper quotes (peak 4-12×, bandwidth 3-7× at the extremes with
	// obtainable values in between).
	if platform.Bluesky.PeakSPGFLOPS != 1000 || platform.Wingtip.PeakSPGFLOPS != 2000 {
		t.Fatal("CPU peaks wrong")
	}
	if platform.DGX1P.PeakSPGFLOPS != 10600 || platform.DGX1V.PeakSPGFLOPS != 14900 {
		t.Fatal("GPU peaks wrong")
	}
	if platform.DGX1V.MemBWGBs/platform.Bluesky.MemBWGBs < 3 {
		t.Fatal("GPU bandwidth advantage missing")
	}
	for _, p := range platform.All() {
		if p.ERTDRAMGBs >= p.MemBWGBs {
			t.Errorf("%s: obtainable BW above theoretical", p.Name)
		}
		if e := p.EfficiencyDRAM(); e < 0.6 || e > 0.95 {
			t.Errorf("%s: ERT fraction %v outside typical range", p.Name, e)
		}
	}
	if _, err := platform.ByName("Bluesky"); err != nil {
		t.Fatal(err)
	}
	if _, err := platform.ByName("host"); err != nil {
		t.Fatal(err)
	}
	if _, err := platform.ByName("nope"); err == nil {
		t.Fatal("expected unknown-platform error")
	}
	if platform.CPU.String() != "CPU" || platform.GPU.String() != "GPU" {
		t.Fatal("Kind strings wrong")
	}
}
