package roofline

import (
	"time"

	"repro/internal/parallel"
	"repro/internal/platform"
)

// ERTResult holds the host characteristics measured by the ERT-style
// micro-benchmarks (§5.2: "The Empirical Roofline Tool (ERT) automates
// measuring the target machine characteristics ... by testing a variety
// of micro-kernels").
type ERTResult struct {
	// DRAMGBs is the sustained STREAM-triad bandwidth to main memory.
	DRAMGBs float64
	// LLCGBs is the sustained triad bandwidth on a cache-resident
	// working set.
	LLCGBs float64
	// PeakGFLOPS is the sustained single-precision FMA rate across all
	// cores (what Go code can actually attain on this host).
	PeakGFLOPS float64
}

// triad runs z[i] = x[i] + s*y[i] over all cores `iters` times and
// returns the aggregate bandwidth in GB/s (3 × 4 bytes moved per
// element, the STREAM accounting).
func triad(n, iters int) float64 {
	x := make([]float32, n)
	y := make([]float32, n)
	z := make([]float32, n)
	for i := range x {
		x[i] = float32(i%7) + 1
		y[i] = float32(i%5) + 1
	}
	const s = float32(1.5)
	start := time.Now()
	for it := 0; it < iters; it++ {
		parallel.For(n, parallel.Options{Schedule: parallel.Static}, func(lo, hi, _ int) {
			xs, ys, zs := x[lo:hi], y[lo:hi], z[lo:hi]
			for i := range zs {
				zs[i] = xs[i] + s*ys[i]
			}
		})
	}
	el := time.Since(start).Seconds()
	if el <= 0 {
		return 0
	}
	bytes := float64(iters) * float64(n) * 12
	return bytes / el / 1e9
}

// flopKernel runs an unrolled multiply-add chain with 8 independent
// accumulators per worker and returns aggregate GFLOPS.
func flopKernel(perWorkerIters int) float64 {
	threads := parallel.NumThreads()
	sink := make([]float32, threads*16) // padded to avoid false sharing
	start := time.Now()
	parallel.For(threads, parallel.Options{Schedule: parallel.Static, Threads: threads}, func(lo, hi, w int) {
		a0, a1, a2, a3 := float32(1.0), float32(1.1), float32(1.2), float32(1.3)
		a4, a5, a6, a7 := float32(1.4), float32(1.5), float32(1.6), float32(1.7)
		const c0, c1 = float32(1.0000001), float32(0.0000001)
		for i := 0; i < perWorkerIters; i++ {
			a0 = a0*c0 + c1
			a1 = a1*c0 + c1
			a2 = a2*c0 + c1
			a3 = a3*c0 + c1
			a4 = a4*c0 + c1
			a5 = a5*c0 + c1
			a6 = a6*c0 + c1
			a7 = a7*c0 + c1
		}
		sink[w*16] = a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7
	})
	el := time.Since(start).Seconds()
	if el <= 0 {
		return 0
	}
	flops := float64(threads) * float64(perWorkerIters) * 16 // 8 FMAs = 16 flops
	_ = sink
	return flops / el / 1e9
}

// RunERT measures the host. quick selects a reduced problem size for use
// in tests; the full setting takes a few seconds, like the real ERT.
func RunERT(quick bool) ERTResult {
	dramN, llcN, iters, flopIters := 1<<26, 1<<16, 3, 1<<26
	if quick {
		dramN, llcN, iters, flopIters = 1<<22, 1<<14, 2, 1<<22
	}
	var r ERTResult
	// Warm-up then measure; keep the best of two runs (ERT reports max).
	for i := 0; i < 2; i++ {
		if b := triad(dramN, iters); b > r.DRAMGBs {
			r.DRAMGBs = b
		}
		if b := triad(llcN, iters*64); b > r.LLCGBs {
			r.LLCGBs = b
		}
		if f := flopKernel(flopIters); f > r.PeakGFLOPS {
			r.PeakGFLOPS = f
		}
	}
	return r
}

// MeasureHost returns the host platform with its bandwidth and peak
// fields replaced by ERT measurements.
func MeasureHost(quick bool) platform.Platform {
	h := platform.Host()
	r := RunERT(quick)
	h.PeakSPGFLOPS = r.PeakGFLOPS
	h.ERTDRAMGBs = r.DRAMGBs
	h.ERTLLCGBs = r.LLCGBs
	if h.MemBWGBs < r.DRAMGBs {
		h.MemBWGBs = r.DRAMGBs * 1.25 // theoretical ≈ obtainable / 0.8
	}
	return h
}
