package roofline

import (
	"fmt"
	"math"

	"repro/internal/platform"
)

// Attainable returns the Roofline-bounded performance in GFLOPS for a
// computation of the given operational intensity on a platform, using the
// obtainable (ERT) DRAM bandwidth: min(peak, OI × BW). This is the red
// "Roofline performance" upper bound of Figures 4-7.
func Attainable(p *platform.Platform, oi float64) float64 {
	return math.Min(p.PeakSPGFLOPS, oi*p.ERTDRAMGBs)
}

// AttainableLLC is the cache-bandwidth roof (the "ERT-LLC" line of
// Figure 3), relevant when the working set fits in the last-level cache —
// the mechanism behind the paper's Observation 2 (small tensors exceeding
// the DRAM Roofline).
func AttainableLLC(p *platform.Platform, oi float64) float64 {
	return math.Min(p.PeakSPGFLOPS, oi*p.ERTLLCGBs)
}

// RidgeOI returns the operational intensity at which a platform turns
// compute-bound: peak / ERT-DRAM bandwidth.
func RidgeOI(p *platform.Platform) float64 {
	if p.ERTDRAMGBs == 0 {
		return math.Inf(1)
	}
	return p.PeakSPGFLOPS / p.ERTDRAMGBs
}

// Point is one sample of a Roofline curve.
type Point struct {
	OI     float64 // flops per byte
	GFLOPS float64
}

// Curve samples a Roofline (DRAM and LLC roofs plus the theoretical-peak
// ceiling) over a log-spaced OI range, producing the series plotted in
// Figure 3.
type Curve struct {
	Platform *platform.Platform
	DRAM     []Point // ERT-DRAM roof
	LLC      []Point // ERT-LLC roof
	Theory   []Point // theoretical DRAM bandwidth roof (dashed reference)
}

// BuildCurve samples n points between oiMin and oiMax (log spaced).
func BuildCurve(p *platform.Platform, oiMin, oiMax float64, n int) Curve {
	if n < 2 {
		n = 2
	}
	c := Curve{Platform: p}
	lmin, lmax := math.Log10(oiMin), math.Log10(oiMax)
	for i := 0; i < n; i++ {
		oi := math.Pow(10, lmin+(lmax-lmin)*float64(i)/float64(n-1))
		c.DRAM = append(c.DRAM, Point{oi, Attainable(p, oi)})
		c.LLC = append(c.LLC, Point{oi, AttainableLLC(p, oi)})
		c.Theory = append(c.Theory, Point{oi, math.Min(p.PeakSPGFLOPS, oi*p.MemBWGBs)})
	}
	return c
}

// KernelMarks returns the Table 1 asymptotic OI of each kernel with its
// Roofline-bounded performance on the platform — the kernel markers
// overlaid on Figure 3.
func KernelMarks(p *platform.Platform) map[string]Point {
	out := make(map[string]Point, len(Kernels))
	for _, k := range Kernels {
		oi := AsymptoticOI(k)
		out[k.String()] = Point{oi, Attainable(p, oi)}
	}
	return out
}

// Efficiency returns achieved/attainable as a fraction, the "performance
// efficiency (or bandwidth efficiency)" metric of Observation 1; values
// above 1 indicate cache-resident working sets (Observation 2).
func Efficiency(p *platform.Platform, oi, achievedGFLOPS float64) float64 {
	a := Attainable(p, oi)
	if a == 0 {
		return 0
	}
	return achievedGFLOPS / a
}

// FormatCurve renders a curve as aligned text columns for the harness.
func FormatCurve(c Curve) string {
	s := fmt.Sprintf("# Roofline %s: peak %.0f GFLOPS, ERT-DRAM %.0f GB/s, ERT-LLC %.0f GB/s, ridge OI %.2f\n",
		c.Platform.Name, c.Platform.PeakSPGFLOPS, c.Platform.ERTDRAMGBs, c.Platform.ERTLLCGBs, RidgeOI(c.Platform))
	s += fmt.Sprintf("%12s %14s %14s %14s\n", "OI", "ERT-DRAM", "ERT-LLC", "Theory-DRAM")
	for i := range c.DRAM {
		s += fmt.Sprintf("%12.4f %14.2f %14.2f %14.2f\n", c.DRAM[i].OI, c.DRAM[i].GFLOPS, c.LLC[i].GFLOPS, c.Theory[i].GFLOPS)
	}
	return s
}
