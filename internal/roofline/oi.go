// Package roofline implements the paper's performance-analysis layer: the
// Table 1 work/memory-traffic/operational-intensity formulas for the five
// kernels, the Roofline model of Figure 3, and ERT-style micro-benchmarks
// (STREAM-like bandwidth, peak-FLOPS loops) to calibrate the host
// platform, mirroring the Empirical Roofline Tool the paper uses.
package roofline

import "fmt"

// Kernel identifies one of the five benchmark kernels.
type Kernel int

const (
	// Tew is the element-wise kernel.
	Tew Kernel = iota
	// Ts is the tensor-scalar kernel.
	Ts
	// Ttv is tensor-times-vector.
	Ttv
	// Ttm is tensor-times-matrix.
	Ttm
	// Mttkrp is the matricized tensor times Khatri-Rao product.
	Mttkrp
)

// Kernels lists all five in Table 1 order.
var Kernels = []Kernel{Tew, Ts, Ttv, Ttm, Mttkrp}

func (k Kernel) String() string {
	switch k {
	case Tew:
		return "Tew"
	case Ts:
		return "Ts"
	case Ttv:
		return "Ttv"
	case Ttm:
		return "Ttm"
	case Mttkrp:
		return "Mttkrp"
	}
	return "unknown"
}

// Format identifies the sparse tensor format of an implementation.
type Format int

const (
	// COO is the coordinate format.
	COO Format = iota
	// HiCOO is the hierarchical coordinate format.
	HiCOO
	// CSF is SPLATT's compressed sparse fiber format (§7's next format).
	CSF
	// FCOO is the flagged-COO format of Liu et al. (segmented reductions).
	FCOO
	// BCSF is blocked-CSF: a CSF tree whose root splits into a coarse
	// blocked level and its refinement (declared in internal/levels; its
	// kernels are generated, not hand-written).
	BCSF
)

// Formats lists every format the suite implements kernels for, in the
// order harness tables enumerate them.
var Formats = []Format{COO, HiCOO, CSF, FCOO, BCSF}

func (f Format) String() string {
	switch f {
	case HiCOO:
		return "HiCOO"
	case CSF:
		return "CSF"
	case FCOO:
		return "fCOO"
	case BCSF:
		return "bCSF"
	}
	return "COO"
}

// Params carries the workload quantities of the Table 1 formulas.
type Params struct {
	// Order is the tensor order N.
	Order int
	// M is the non-zero count.
	M int64
	// MF is the number of mode-n fibers (Ttv/Ttm only).
	MF int64
	// Nb is the number of HiCOO blocks (Mttkrp-HiCOO only).
	Nb int64
	// R is the factor-matrix column count (Ttm/Mttkrp only).
	R int64
	// BlockSize is the HiCOO block size B (Mttkrp-HiCOO only).
	BlockSize int64
}

// Work returns the floating-point operation count of one kernel execution
// (Table 1 "Work" column, generalized to order N: Tew/Ts = M, Ttv = 2M,
// Ttm = 2MR, Mttkrp = N·M·R which is 3MR for third order).
func Work(k Kernel, p Params) int64 {
	switch k {
	case Tew, Ts:
		return p.M
	case Ttv:
		return 2 * p.M
	case Ttm:
		return 2 * p.M * p.R
	case Mttkrp:
		return int64(p.Order) * p.M * p.R
	}
	panic(fmt.Sprintf("roofline: unknown kernel %d", int(k)))
}

// Bytes returns the memory traffic of one kernel execution per the
// Table 1 formulas (generalized from the paper's third-order column to
// order N; substituting N=3 reproduces the paper's entries exactly). The
// paper's accounting assumes one cache level just large enough for the
// algorithms' reuse, so Tew/Ts/Ttv/Ttm traffic is format-independent while
// Mttkrp benefits from HiCOO's blocked factor-matrix reuse.
func Bytes(k Kernel, f Format, p Params) int64 {
	n := int64(p.Order)
	switch k {
	case Tew:
		// Read both operand value arrays, write the output values.
		return 12 * p.M
	case Ts:
		// Read input values, write output values.
		return 8 * p.M
	case Ttv:
		if f == CSF || f == BCSF {
			// bCSF adds only a coarse root level (≤ MF extra nodes); its
			// traffic matches CSF to leading order.
			// Fiber-compressed indices: 4M values + 4M leaf indices + 4M
			// vector gathers amortize to the same leading term as COO, but
			// upper-level node indices are per-fiber, not per-nonzero.
			return 12*p.M + 4*(n-1)*p.MF + 4*n*p.MF
		}
		if f == FCOO {
			// COO traffic + one start-flag bit per nonzero for the
			// segmented reduction.
			return 12*p.M + p.M/8 + 4*n*p.MF
		}
		// 4M values + 4M product-mode indices + 4M irregular vector
		// accesses, plus the output's N-1 index arrays and values.
		return 12*p.M + 4*n*p.MF
	case Ttm:
		// 8M input (values + product-mode indices), 4MR matrix-row reads,
		// 4·MF·R output values, 4(N-1)·MF output indices.
		return 8*p.M + 4*p.M*p.R + 4*p.MF*p.R + 4*(n-1)*p.MF
	case Mttkrp:
		if f == CSF || f == BCSF {
			// 8M leaf values+indices and 4MR leaf-mode factor reads per
			// nonzero, but the N-1 upper-level factor rows and node
			// indices are read once per fiber, plus 8MF fiber pointers.
			return 8*p.M + 4*p.M*p.R + 4*(n-1)*p.MF*p.R + 4*(n-1)*p.MF + 8*p.MF
		}
		if f == FCOO {
			// 8M values + product-mode indices, 4(N-1)M other-mode
			// indices, 4(N-1)MR factor gathers, the start-flag bitmap,
			// and one R-wide output flush per segment head (~MF of them).
			return 8*p.M + 4*(n-1)*p.M + 4*(n-1)*p.M*p.R + p.M/8 + 4*p.R*p.MF
		}
		if f == HiCOO {
			// 4NR·min(nb·B, M) blocked matrix traffic + (4+N)M values and
			// 8-bit element indices + (8+4N)nb block pointers and indices.
			rows := p.Nb * p.BlockSize
			if p.M < rows {
				rows = p.M
			}
			return 4*n*p.R*rows + (4+n)*p.M + (8+4*n)*p.Nb
		}
		// 4NMR matrix traffic + 4(N+1)M indices and values.
		return 4*n*p.M*p.R + 4*(n+1)*p.M
	}
	panic(fmt.Sprintf("roofline: unknown kernel %d", int(k)))
}

// OI returns the operational intensity (flops per byte) of a kernel
// execution, the accurate per-tensor ratio the paper marks on its
// Roofline plots ("The OI value is an accurate #Flops/#Bytes ratio by
// taking different tensor features into account").
func OI(k Kernel, f Format, p Params) float64 {
	b := Bytes(k, f, p)
	if b == 0 {
		return 0
	}
	return float64(Work(k, p)) / float64(b)
}

// AsymptoticOI returns the paper's Table 1 "OI" column: the third-order
// cubical limit with less-significant terms dropped (1/12, 1/8, ~1/6,
// ~1/2, ~1/4).
func AsymptoticOI(k Kernel) float64 {
	switch k {
	case Tew:
		return 1.0 / 12
	case Ts:
		return 1.0 / 8
	case Ttv:
		return 1.0 / 6
	case Ttm:
		return 1.0 / 2
	case Mttkrp:
		return 1.0 / 4
	}
	panic(fmt.Sprintf("roofline: unknown kernel %d", int(k)))
}
