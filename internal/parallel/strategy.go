package parallel

// Strategy selects how concurrent workers combine partial results into a
// shared reduction output — the choice the paper's Observation 5 singles
// out for COO-Mttkrp, where "omp atomic" contention on popular output
// rows limits multicore scaling and privatization ([42]) is the remedy.
type Strategy int

const (
	// Auto lets the runtime pick a strategy per invocation from the
	// reduction's shape (output size × threads vs update count).
	Auto Strategy = iota
	// Owner partitions the loop so every output element has exactly one
	// writer (owner-computes, e.g. fiber-parallel Ttv/Ttm): no
	// synchronization, but parallelism is bounded by the output units and
	// skewed units cause imbalance. Only kernels with an owner
	// decomposition support it; others fall back to Atomic.
	Owner
	// Atomic updates the shared output with atomic read-modify-write
	// ("omp atomic"): no extra memory, but popular output elements
	// serialize the workers.
	Atomic
	// Privatized gives each worker a private copy of the output drawn
	// from the shared Workspace, merged after the loop: atomic-free
	// updates at a memory cost of threads × output (T×Iₙ×R for Mttkrp).
	Privatized
)

func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Owner:
		return "owner"
	case Atomic:
		return "atomic"
	case Privatized:
		return "privatized"
	}
	return "unknown"
}

// ReductionShape describes one reduction invocation for Choose.
type ReductionShape struct {
	// OutElems is the number of output elements the loop scatters into.
	OutElems int
	// Updates is the total number of accumulate operations the loop
	// performs across all output elements; Updates/OutElems is the mean
	// contention per element.
	Updates int
	// OwnerUnits is the number of independent single-writer work units
	// the kernel can offer (e.g. fibers); 0 when every decomposition
	// races.
	OwnerUnits int
	// Threads is the resolved worker count; <= 0 reads NumThreads once.
	Threads int
}

const (
	// PrivatizationBudget caps the total private elements (threads ×
	// output) Auto will spend on private output copies: past this point
	// the zero+merge traffic and memory footprint outweigh saved atomics.
	PrivatizationBudget = 1 << 24

	// ownerParallelFactor is the minimum owner-units-per-thread ratio for
	// Auto to keep the race-free owner decomposition: below it the units
	// are too coarse to balance and the racy nnz decomposition wins.
	ownerParallelFactor = 4

	// privatizeReuseFactor is the minimum mean updates-per-output-element
	// for Auto to privatize: each private element is zeroed and merged
	// once, so it must absorb at least a few updates to pay for itself.
	privatizeReuseFactor = 2
)

// Choose resolves a requested strategy against the shape of one
// reduction. Explicit requests are honored (Owner degrades to Atomic when
// the kernel has no owner decomposition); Auto picks Owner when the
// owner units offer enough parallelism, otherwise privatizes when the
// output is small and hot enough for private copies to pay off, and
// falls back to Atomic for large or sparsely-updated outputs.
func Choose(requested Strategy, sh ReductionShape) Strategy {
	if sh.Threads <= 0 {
		sh.Threads = NumThreads()
	}
	switch requested {
	case Owner:
		if sh.OwnerUnits > 0 {
			return Owner
		}
		return Atomic
	case Atomic, Privatized:
		return requested
	}
	// Auto. A single worker never races: prefer the owner decomposition,
	// else the atomic path (whose callers skip real atomics at T=1).
	if sh.Threads <= 1 {
		if sh.OwnerUnits > 0 {
			return Owner
		}
		return Atomic
	}
	if sh.OwnerUnits >= ownerParallelFactor*sh.Threads {
		return Owner
	}
	if sh.OutElems > 0 &&
		int64(sh.OutElems)*int64(sh.Threads) <= PrivatizationBudget &&
		sh.Updates >= privatizeReuseFactor*sh.OutElems {
		return Privatized
	}
	return Atomic
}
