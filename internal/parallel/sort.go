package parallel

import (
	"sort"
	"sync"

	"repro/internal/obs"
)

// sortSerialThreshold is the subproblem size below which SortInt32s falls
// back to the standard library sort; parallelism only pays above it.
const sortSerialThreshold = 1 << 14

// SortInt32s stably sorts idx by the comparator using a parallel merge
// sort: the slice is split into one run per worker, runs are sorted
// concurrently, and then merged pairwise (each merge itself split at the
// midpoint by binary search). Sorting index permutations is the dominant
// preprocessing cost of the benchmark kernels (fiber sorting, HiCOO
// Morton ordering, CSF construction), which is why it gets a dedicated
// parallel implementation. The comparator must be pure: it is called
// concurrently.
func SortInt32s(idx []int32, less func(a, b int32) bool) {
	sp := obs.Begin("parallel.SortInt32s", "", obs.PhaseSort, -1)
	defer sp.End()
	n := len(idx)
	workers := NumThreads()
	if n < sortSerialThreshold || workers < 2 {
		sort.SliceStable(idx, func(i, j int) bool { return less(idx[i], idx[j]) })
		return
	}
	// Round worker count down to a power of two for clean pairwise merges.
	runs := 1
	for runs*2 <= workers && runs < 64 {
		runs *= 2
	}

	// Sort each run concurrently.
	bounds := make([]int, runs+1)
	for r := 0; r <= runs; r++ {
		bounds[r] = r * n / runs
	}
	var wg sync.WaitGroup
	wg.Add(runs)
	for r := 0; r < runs; r++ {
		go func(lo, hi int) {
			defer wg.Done()
			s := idx[lo:hi]
			sort.SliceStable(s, func(i, j int) bool { return less(s[i], s[j]) })
		}(bounds[r], bounds[r+1])
	}
	wg.Wait()

	// Pairwise merge rounds, ping-ponging between idx and a buffer.
	buf := make([]int32, n)
	src, dst := idx, buf
	for width := 1; width < runs; width *= 2 {
		var mw sync.WaitGroup
		for r := 0; r < runs; r += 2 * width {
			lo := bounds[r]
			mid := bounds[min(r+width, runs)]
			hi := bounds[min(r+2*width, runs)]
			mw.Add(1)
			go func(lo, mid, hi int) {
				defer mw.Done()
				parallelMerge(src, dst, lo, mid, hi, less)
			}(lo, mid, hi)
		}
		mw.Wait()
		src, dst = dst, src
	}
	if &src[0] != &idx[0] {
		copy(idx, src)
	}
}

// parallelMerge merges src[lo:mid] and src[mid:hi] into dst[lo:hi],
// splitting large merges in two at the left run's midpoint.
func parallelMerge(src, dst []int32, lo, mid, hi int, less func(a, b int32) bool) {
	if hi-lo > 2*sortSerialThreshold && mid-lo > 1 && hi-mid > 1 {
		// Split: take the left run's median, binary-search it in the
		// right run, and merge the two halves concurrently.
		lmid := (lo + mid) / 2
		pivot := src[lmid]
		rmid := mid + sort.Search(hi-mid, func(i int) bool { return !less(src[mid+i], pivot) })
		dmid := lmid + (rmid - mid)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			mergeInto(src, dst, lo, lmid, mid, rmid, lo, less)
		}()
		go func() {
			defer wg.Done()
			mergeInto(src, dst, lmid, mid, rmid, hi, dmid, less)
		}()
		wg.Wait()
		return
	}
	mergeInto(src, dst, lo, mid, mid, hi, lo, less)
}

// mergeInto merges src[aLo:aHi] with src[bLo:bHi] into dst starting at
// out. The merge is stable: ties take the left (a) element first.
func mergeInto(src, dst []int32, aLo, aHi, bLo, bHi, out int, less func(a, b int32) bool) {
	a, b := aLo, bLo
	for a < aHi && b < bHi {
		if less(src[b], src[a]) {
			dst[out] = src[b]
			b++
		} else {
			dst[out] = src[a]
			a++
		}
		out++
	}
	for a < aHi {
		dst[out] = src[a]
		a++
		out++
	}
	for b < bHi {
		dst[out] = src[b]
		b++
		out++
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
