package parallel

// Tests for the fault-containment surface of For: cooperative
// cancellation via Options.Ctx, worker-panic conversion to *WorkerPanic
// re-raised on the caller's goroutine, and the chunk-level fault hook.

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestForReturnsErrDeadlineOnCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the loop must stop at chunk granularity
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		for _, threads := range []int{1, 4} {
			var visited atomic.Int64
			err := For(1_000_000, Options{Schedule: sched, Threads: threads, Ctx: ctx}, func(lo, hi, _ int) {
				visited.Add(int64(hi - lo))
			})
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("%v/T=%d: err = %v, want ErrDeadline", sched, threads, err)
			}
			if visited.Load() == 1_000_000 {
				t.Fatalf("%v/T=%d: loop ran to completion despite a dead context", sched, threads)
			}
		}
	}
}

func TestForCancelledMidLoop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var visited atomic.Int64
	err := For(1_000_000, Options{Schedule: Dynamic, Chunk: 64, Threads: 4, Ctx: ctx}, func(lo, hi, _ int) {
		if visited.Add(int64(hi-lo)) > 10_000 {
			cancel()
		}
	})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	if visited.Load() == 1_000_000 {
		t.Fatal("loop completed despite mid-loop cancellation")
	}
}

func TestForCompletesWithLiveContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	var visited atomic.Int64
	err := For(10_000, Options{Schedule: Static, Threads: 4, Ctx: ctx}, func(lo, hi, _ int) {
		visited.Add(int64(hi - lo))
	})
	if err != nil || visited.Load() != 10_000 {
		t.Fatalf("err=%v visited=%d, want full completion", err, visited.Load())
	}
}

func TestForReRaisesWorkerPanicOnCaller(t *testing.T) {
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		func() {
			defer func() {
				r := recover()
				wp, ok := r.(*WorkerPanic)
				if !ok {
					t.Fatalf("%v: recovered %v (%T), want *WorkerPanic", sched, r, r)
				}
				if wp.Value != "boom" || len(wp.Stack) == 0 {
					t.Fatalf("%v: WorkerPanic = %+v", sched, wp)
				}
			}()
			For(1000, Options{Schedule: sched, Threads: 4, Chunk: 8}, func(lo, _, _ int) {
				if lo >= 500 {
					panic("boom")
				}
			})
			t.Fatalf("%v: For returned instead of re-raising the panic", sched)
		}()
	}
}

func TestForPanicAbortsRemainingChunks(t *testing.T) {
	var visited atomic.Int64
	func() {
		defer func() { recover() }()
		For(1_000_000, Options{Schedule: Dynamic, Chunk: 16, Threads: 4}, func(lo, hi, _ int) {
			if visited.Add(int64(hi-lo)) > 1000 {
				panic("stop")
			}
		})
	}()
	// Give no precise bound (other workers may finish in-flight chunks)
	// but the vast majority of the range must have been abandoned.
	if v := visited.Load(); v > 500_000 {
		t.Fatalf("visited %d of 1M iterations after an early panic", v)
	}
}

func TestChunkHookRunsPerChunkAndClears(t *testing.T) {
	var calls atomic.Int64
	SetChunkHook(func(worker int) { calls.Add(1) })
	err := For(1000, Options{Schedule: Dynamic, Chunk: 100, Threads: 2}, func(lo, hi, _ int) {})
	SetChunkHook(nil)
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() < 10 {
		t.Fatalf("hook ran %d times, want one call per 100-iteration chunk", calls.Load())
	}
	before := calls.Load()
	if err := For(1000, Options{Threads: 2}, func(lo, hi, _ int) {}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != before {
		t.Fatal("cleared hook still ran")
	}
}

func TestChunkHookPanicIsContainedAsWorkerPanic(t *testing.T) {
	SetChunkHook(func(worker int) { panic("injected") })
	defer SetChunkHook(nil)
	var wp *WorkerPanic
	func() {
		defer func() {
			if r := recover(); r != nil {
				wp, _ = r.(*WorkerPanic)
			}
		}()
		For(1000, Options{Schedule: Static, Threads: 4}, func(lo, hi, _ int) {})
	}()
	if wp == nil || wp.Value != "injected" {
		t.Fatalf("WorkerPanic = %+v, want the hook's panic value", wp)
	}
}

func TestForSerialWithHookKeepsChunkGranularity(t *testing.T) {
	// At one thread a hook (or context) must still be consulted per
	// chunk, not once for the whole range.
	var calls atomic.Int64
	SetChunkHook(func(worker int) { calls.Add(1) })
	defer SetChunkHook(nil)
	if err := For(100_000, Options{Threads: 1, Chunk: 1000}, func(lo, hi, _ int) {}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 100 {
		t.Fatalf("hook ran %d times at T=1, want 100 chunks", calls.Load())
	}
}

func TestForEachPropagatesDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(100_000, Options{Threads: 4, Ctx: ctx}, func(i, _ int) {})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
}
