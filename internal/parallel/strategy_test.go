package parallel

import "testing"

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{
		Auto:         "auto",
		Owner:        "owner",
		Atomic:       "atomic",
		Privatized:   "privatized",
		Strategy(99): "unknown",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("Strategy(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestChooseHonorsExplicitRequest(t *testing.T) {
	sh := ReductionShape{OutElems: 100, Updates: 1000, OwnerUnits: 100, Threads: 8}
	if got := Choose(Atomic, sh); got != Atomic {
		t.Errorf("explicit Atomic resolved to %v", got)
	}
	if got := Choose(Privatized, sh); got != Privatized {
		t.Errorf("explicit Privatized resolved to %v", got)
	}
	if got := Choose(Owner, sh); got != Owner {
		t.Errorf("explicit Owner resolved to %v", got)
	}
	// Owner without an owner decomposition degrades to Atomic rather than
	// handing the kernel a strategy it cannot run.
	sh.OwnerUnits = 0
	if got := Choose(Owner, sh); got != Atomic {
		t.Errorf("Owner with no owner units resolved to %v, want Atomic", got)
	}
}

func TestChooseAuto(t *testing.T) {
	cases := []struct {
		name string
		sh   ReductionShape
		want Strategy
	}{
		{
			name: "single thread with owner path",
			sh:   ReductionShape{OutElems: 100, Updates: 1000, OwnerUnits: 10, Threads: 1},
			want: Owner,
		},
		{
			name: "single thread without owner path",
			sh:   ReductionShape{OutElems: 100, Updates: 1000, Threads: 1},
			want: Atomic,
		},
		{
			name: "ample owner parallelism",
			sh:   ReductionShape{OutElems: 1000, Updates: 100000, OwnerUnits: 4 * 8, Threads: 8},
			want: Owner,
		},
		{
			name: "too few owner units, small output, high reuse",
			sh:   ReductionShape{OutElems: 1000, Updates: 100000, OwnerUnits: 8, Threads: 8},
			want: Privatized,
		},
		{
			name: "no owner path, small output, high reuse",
			sh:   ReductionShape{OutElems: 1 << 10, Updates: 1 << 20, Threads: 8},
			want: Privatized,
		},
		{
			name: "output over privatization budget",
			sh:   ReductionShape{OutElems: PrivatizationBudget, Updates: 1 << 30, Threads: 8},
			want: Atomic,
		},
		{
			name: "too little reuse to pay for the merge",
			sh:   ReductionShape{OutElems: 1 << 10, Updates: 1 << 10, Threads: 8},
			want: Atomic,
		},
		{
			name: "budget boundary exactly met",
			sh:   ReductionShape{OutElems: PrivatizationBudget / 8, Updates: 1 << 30, Threads: 8},
			want: Privatized,
		},
	}
	for _, c := range cases {
		if got := Choose(Auto, c.sh); got != c.want {
			t.Errorf("%s: Choose(Auto, %+v) = %v, want %v", c.name, c.sh, got, c.want)
		}
	}
}

func TestChooseZeroThreadsReadsGlobal(t *testing.T) {
	orig := NumThreads()
	defer SetNumThreads(orig)
	SetNumThreads(1)
	sh := ReductionShape{OutElems: 100, Updates: 10000, OwnerUnits: 2}
	if got := Choose(Auto, sh); got != Owner {
		t.Errorf("threads=0 with NumThreads=1: got %v, want Owner", got)
	}
}
