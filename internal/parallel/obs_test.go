package parallel

import (
	"testing"

	"repro/internal/obs"
)

// TestDisabledTracingZeroAlloc is the observability cost contract CI
// enforces: with no tracer enabled and hot-path counting off, the obs
// instrumentation in For must add zero allocations per loop. The
// serial chunk path allocated exactly 2 objects per call before
// instrumentation (the loopCtl and the hook-load indirection), so any
// rise above that baseline is an obs regression.
func TestDisabledTracingZeroAlloc(t *testing.T) {
	if obs.Current() != nil {
		t.Fatal("tracer enabled at test start")
	}
	obs.EnableCounters(false)
	data := make([]float32, 4096)
	allocs := testing.AllocsPerRun(200, func() {
		For(len(data), Options{Threads: 1}, func(lo, hi, w int) {
			for i := lo; i < hi; i++ {
				data[i]++
			}
		})
	})
	if allocs > 2 {
		t.Fatalf("disabled-tracing serial For allocates %v/op, want <= 2 (pre-obs baseline)", allocs)
	}
}

// BenchmarkForDisabledTracing is the allocs/op view of the same
// contract (run with -benchmem).
func BenchmarkForDisabledTracing(b *testing.B) {
	data := make([]float32, 1<<14)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		For(len(data), Options{Threads: 1}, func(lo, hi, w int) {
			for j := lo; j < hi; j++ {
				data[j]++
			}
		})
	}
}

// TestForSpanRecorded covers the enabled side: a traced For emits one
// chunk-phase span, and chunk counting ticks when enabled.
func TestForSpanRecorded(t *testing.T) {
	tr := obs.New()
	obs.Enable(tr)
	obs.EnableCounters(true)
	defer obs.EnableCounters(false)
	defer obs.Disable()

	before := obs.CounterSnapshot()
	err := For(1000, Options{Threads: 4, Schedule: Dynamic, Chunk: 64}, func(lo, hi, w int) {})
	if err != nil {
		t.Fatal(err)
	}
	ReduceFloat64(100, Options{Threads: 2}, func(lo, hi, w int) float64 { return 1 })
	after := obs.CounterSnapshot()

	spans := tr.Spans()
	var forSpans, reduceSpans int
	for _, s := range spans {
		switch {
		case s.Name == "parallel.For" && s.Phase == obs.PhaseChunk:
			forSpans++
		case s.Name == "parallel.Reduce" && s.Phase == obs.PhaseReduce:
			reduceSpans++
		}
	}
	if forSpans < 2 || reduceSpans != 1 {
		t.Fatalf("spans: For=%d (want >=2: the loop and the reduction's inner loop), Reduce=%d (want 1)", forSpans, reduceSpans)
	}
	d := obs.DiffSnapshot(before, after)
	if d["parallel.chunks"] < int64(1000/64) {
		t.Fatalf("chunk counter delta = %d, want >= %d", d["parallel.chunks"], 1000/64)
	}
	if d["parallel.reductions"] != 1 {
		t.Fatalf("reduction counter delta = %d, want 1", d["parallel.reductions"])
	}
}

// TestAtomicAddCounters pins the hot-path gating: atomic adds count
// only while counting is enabled.
func TestAtomicAddCounters(t *testing.T) {
	var x float32
	obs.EnableCounters(false)
	before := obs.CounterSnapshot()
	AtomicAddFloat32(&x, 1)
	mid := obs.CounterSnapshot()
	if d := obs.DiffSnapshot(before, mid); d["parallel.atomic_adds"] != 0 {
		t.Fatalf("gated counter ticked while disabled: %v", d)
	}
	obs.EnableCounters(true)
	defer obs.EnableCounters(false)
	AtomicAddFloat32(&x, 1)
	var y float64
	AtomicAddFloat64(&y, 1)
	after := obs.CounterSnapshot()
	if d := obs.DiffSnapshot(mid, after); d["parallel.atomic_adds"] != 2 {
		t.Fatalf("atomic_adds delta = %v, want 2", d["parallel.atomic_adds"])
	}
}
