package parallel

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// coverageCheck runs For with the given options and verifies every index
// in [0, n) is visited exactly once.
func coverageCheck(t *testing.T, n int, opt Options) {
	t.Helper()
	seen := make([]int32, n)
	For(n, opt, func(lo, hi, w int) {
		if lo < 0 || hi > n || lo > hi {
			t.Errorf("bad range [%d,%d)", lo, hi)
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&seen[i], 1)
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("%v n=%d: index %d visited %d times", opt.Schedule, n, i, c)
		}
	}
}

func TestForCoverageAllSchedules(t *testing.T) {
	sizes := []int{0, 1, 2, 7, 100, 1023, 10000}
	for _, sched := range []Schedule{Static, Dynamic, Guided} {
		for _, chunk := range []int{0, 1, 3, 64} {
			for _, n := range sizes {
				coverageCheck(t, n, Options{Schedule: sched, Chunk: chunk})
			}
		}
	}
}

func TestForCoverageProperty(t *testing.T) {
	f := func(nRaw uint16, schedRaw, chunkRaw, thrRaw uint8) bool {
		n := int(nRaw) % 5000
		opt := Options{
			Schedule: Schedule(schedRaw % 3),
			Chunk:    int(chunkRaw) % 17,
			Threads:  int(thrRaw)%9 + 1,
		}
		seen := make([]int32, n)
		For(n, opt, func(lo, hi, w int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	threads := 5
	For(1000, Options{Schedule: Dynamic, Threads: threads}, func(lo, hi, w int) {
		if w < 0 || w >= threads {
			t.Errorf("worker id %d out of range [0,%d)", w, threads)
		}
	})
}

func TestForSingleThreadRunsInline(t *testing.T) {
	calls := 0
	For(100, Options{Threads: 1}, func(lo, hi, w int) {
		calls++
		if lo != 0 || hi != 100 || w != 0 {
			t.Fatalf("single-thread got [%d,%d) w=%d", lo, hi, w)
		}
	})
	if calls != 1 {
		t.Fatalf("single-thread made %d calls, want 1", calls)
	}
}

func TestForEach(t *testing.T) {
	n := 500
	var sum atomic.Int64
	ForEach(n, Options{Schedule: Dynamic}, func(i, w int) {
		sum.Add(int64(i))
	})
	want := int64(n * (n - 1) / 2)
	if sum.Load() != want {
		t.Fatalf("sum = %d, want %d", sum.Load(), want)
	}
}

func TestForUnknownSchedulePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	For(10, Options{Schedule: Schedule(99), Threads: 2}, func(lo, hi, w int) {})
}

func TestSetNumThreads(t *testing.T) {
	orig := NumThreads()
	defer SetNumThreads(orig)
	SetNumThreads(3)
	if NumThreads() != 3 {
		t.Fatalf("NumThreads = %d, want 3", NumThreads())
	}
	SetNumThreads(-1)
	if NumThreads() < 1 {
		t.Fatal("reset produced < 1 threads")
	}
}

func TestAtomicAddFloat32(t *testing.T) {
	var x float32
	n := 10000
	For(n, Options{Schedule: Dynamic, Threads: 8}, func(lo, hi, w int) {
		for i := lo; i < hi; i++ {
			AtomicAddFloat32(&x, 0.5)
		}
	})
	if x != float32(n)*0.5 {
		t.Fatalf("x = %v, want %v", x, float32(n)*0.5)
	}
}

func TestAtomicAddFloat64(t *testing.T) {
	var x float64
	n := 10000
	For(n, Options{Schedule: Static, Threads: 8}, func(lo, hi, w int) {
		for i := lo; i < hi; i++ {
			AtomicAddFloat64(&x, 0.25)
		}
	})
	if x != float64(n)*0.25 {
		t.Fatalf("x = %v, want %v", x, float64(n)*0.25)
	}
}

func TestReduceFloat64(t *testing.T) {
	n := 100000
	got := ReduceFloat64(n, Options{Schedule: Static, Threads: 7}, func(lo, hi, w int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += float64(i)
		}
		return s
	})
	want := float64(n) * float64(n-1) / 2
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("reduce = %v, want %v", got, want)
	}
}

func TestScheduleString(t *testing.T) {
	if Static.String() != "static" || Dynamic.String() != "dynamic" || Guided.String() != "guided" {
		t.Fatal("Schedule.String wrong")
	}
	if Schedule(9).String() != "unknown" {
		t.Fatal("unknown schedule string wrong")
	}
}

// TestGuidedExactlyOnceUnderContention drives the Guided schedule's CAS
// claim loop as hard as possible — many more workers than cores, minimum
// chunk 1, tiny iteration space — and checks every index is still visited
// exactly once. Before the claim loop yielded on a lost race this
// configuration could livelock the winner off its core.
func TestGuidedExactlyOnceUnderContention(t *testing.T) {
	for iter := 0; iter < 20; iter++ {
		n := 257
		seen := make([]int32, n)
		For(n, Options{Schedule: Guided, Chunk: 1, Threads: 32}, func(lo, hi, w int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("iter %d: index %d visited %d times", iter, i, c)
			}
		}
	}
}

// TestReduceFloat64ThreadChurn recomputes a known reduction while another
// goroutine flips the global thread count. Before ReduceFloat64 pinned
// its resolved count through opt.Threads, For could re-read a larger
// NumThreads and hand out worker ids past the partial array.
func TestReduceFloat64ThreadChurn(t *testing.T) {
	orig := NumThreads()
	defer SetNumThreads(orig)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			SetNumThreads(i%8 + 1)
		}
	}()

	n := 10000
	want := float64(n) * float64(n-1) / 2
	for iter := 0; iter < 300; iter++ {
		got := ReduceFloat64(n, Options{Schedule: Dynamic}, func(lo, hi, w int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += float64(i)
			}
			return s
		})
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("iter %d: reduce = %v, want %v", iter, got, want)
		}
	}
	close(stop)
	<-done
}

// TestResolveThreads pins the clamping rules per-worker state sizing
// depends on.
func TestResolveThreads(t *testing.T) {
	orig := NumThreads()
	defer SetNumThreads(orig)
	SetNumThreads(6)
	if got := ResolveThreads(100, Options{}); got != 6 {
		t.Fatalf("default = %d, want 6", got)
	}
	if got := ResolveThreads(100, Options{Threads: 3}); got != 3 {
		t.Fatalf("override = %d, want 3", got)
	}
	if got := ResolveThreads(2, Options{Threads: 8}); got != 2 {
		t.Fatalf("clamp to n = %d, want 2", got)
	}
	if got := ResolveThreads(0, Options{Threads: 8}); got != 8 {
		t.Fatalf("n=0 keeps request = %d, want 8", got)
	}
	if got := ResolveThreads(-5, Options{Threads: -2}); got < 1 {
		t.Fatalf("floor = %d, want >= 1", got)
	}
}
