// Package parallel is the suite's stand-in for the OpenMP runtime used by
// the paper's CPU kernels. It provides a work-sharing parallel-for with
// static, dynamic, and guided scheduling, atomic float32 accumulation
// ("omp atomic"), and per-worker reduction scratch ("omp reduction").
//
// Threads are goroutines pinned to a fixed worker count (default
// GOMAXPROCS, matching the paper's one-thread-per-physical-core setup).
package parallel

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Schedule selects the OpenMP loop-scheduling policy.
type Schedule int

const (
	// Static divides the iteration space into equal contiguous ranges, one
	// per thread (OpenMP schedule(static)).
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared counter
	// (schedule(dynamic, chunk)); good for skewed fiber lengths.
	Dynamic
	// Guided hands out geometrically shrinking chunks
	// (schedule(guided, chunk)).
	Guided
)

func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return "unknown"
}

var numThreads atomic.Int64

func init() { numThreads.Store(int64(runtime.GOMAXPROCS(0))) }

// NumThreads returns the worker count used by For.
func NumThreads() int { return int(numThreads.Load()) }

// SetNumThreads overrides the worker count (OMP_NUM_THREADS). Values < 1
// reset to GOMAXPROCS.
func SetNumThreads(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	numThreads.Store(int64(n))
}

// Options configures one parallel loop.
type Options struct {
	Schedule Schedule
	// Chunk is the chunk size for Dynamic/Guided (minimum chunk for
	// Guided). Zero selects a heuristic.
	Chunk int
	// Threads overrides NumThreads for this loop when > 0.
	Threads int
	// Strategy selects the reduction-update strategy for kernels with a
	// shared output (see Choose); the zero value Auto adapts per call.
	Strategy Strategy
}

// ResolveThreads returns the worker count For will use for a loop of n
// iterations under opt, reading the global NumThreads at most once.
// Callers sizing per-worker state must resolve the count through this
// function and pass it back via opt.Threads — re-reading NumThreads
// races with SetNumThreads and can hand For more workers than the state
// was sized for.
func ResolveThreads(n int, opt Options) int {
	threads := opt.Threads
	if threads <= 0 {
		threads = NumThreads()
	}
	if n > 0 && threads > n {
		threads = n
	}
	if threads < 1 {
		threads = 1
	}
	return threads
}

// For executes body over the half-open range [0, n) using the configured
// schedule. body is called with sub-ranges [lo, hi) and the worker id in
// [0, threads); each index is visited exactly once. For returns after all
// iterations complete.
func For(n int, opt Options, body func(lo, hi, worker int)) {
	if n <= 0 {
		return
	}
	threads := ResolveThreads(n, opt)
	if threads == 1 {
		body(0, n, 0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	switch opt.Schedule {
	case Static:
		chunk := opt.Chunk
		if chunk <= 0 {
			// One contiguous range per thread.
			for w := 0; w < threads; w++ {
				lo := w * n / threads
				hi := (w + 1) * n / threads
				go func(lo, hi, w int) {
					defer wg.Done()
					if lo < hi {
						body(lo, hi, w)
					}
				}(lo, hi, w)
			}
		} else {
			// Round-robin chunks of fixed size, OpenMP schedule(static, c).
			for w := 0; w < threads; w++ {
				go func(w int) {
					defer wg.Done()
					for lo := w * chunk; lo < n; lo += threads * chunk {
						hi := lo + chunk
						if hi > n {
							hi = n
						}
						body(lo, hi, w)
					}
				}(w)
			}
		}
	case Dynamic:
		chunk := opt.Chunk
		if chunk <= 0 {
			chunk = heuristicChunk(n, threads)
		}
		var next atomic.Int64
		for w := 0; w < threads; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					lo := int(next.Add(int64(chunk))) - chunk
					if lo >= n {
						return
					}
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					body(lo, hi, w)
				}
			}(w)
		}
	case Guided:
		minChunk := opt.Chunk
		if minChunk <= 0 {
			minChunk = 1
		}
		var next atomic.Int64
		for w := 0; w < threads; w++ {
			go func(w int) {
				defer wg.Done()
				for {
					lo := int(next.Load())
					if lo >= n {
						return
					}
					remaining := n - lo
					chunk := remaining / (2 * threads)
					if chunk < minChunk {
						chunk = minChunk
					}
					// Claim [lo, lo+chunk) if lo is still current. On a
					// lost race, yield before retrying: under high
					// contention (many workers, small chunks) spinning on
					// the CAS starves the winner of the core it needs to
					// publish the next value.
					if !next.CompareAndSwap(int64(lo), int64(lo+chunk)) {
						runtime.Gosched()
						continue
					}
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					body(lo, hi, w)
				}
			}(w)
		}
	default:
		panic("parallel: unknown schedule")
	}
	wg.Wait()
}

// ForEach is For with a per-index body, for loops whose iterations are too
// coarse to benefit from manual range handling.
func ForEach(n int, opt Options, body func(i, worker int)) {
	For(n, opt, func(lo, hi, w int) {
		for i := lo; i < hi; i++ {
			body(i, w)
		}
	})
}

func heuristicChunk(n, threads int) int {
	c := n / (threads * 16)
	if c < 1 {
		c = 1
	}
	if c > 4096 {
		c = 4096
	}
	return c
}

// AtomicAddFloat32 atomically adds delta to *addr using a compare-and-swap
// loop on the value's bit pattern — the Go equivalent of "omp atomic" /
// CUDA atomicAdd on float.
func AtomicAddFloat32(addr *float32, delta float32) {
	p := (*uint32)(unsafe.Pointer(addr))
	for {
		old := atomic.LoadUint32(p)
		cur := math.Float32frombits(old)
		nxt := math.Float32bits(cur + delta)
		if atomic.CompareAndSwapUint32(p, old, nxt) {
			return
		}
	}
}

// AtomicAddFloat64 atomically adds delta to *addr.
func AtomicAddFloat64(addr *float64, delta float64) {
	p := (*uint64)(unsafe.Pointer(addr))
	for {
		old := atomic.LoadUint64(p)
		cur := math.Float64frombits(old)
		nxt := math.Float64bits(cur + delta)
		if atomic.CompareAndSwapUint64(p, old, nxt) {
			return
		}
	}
}

// reducePad spaces per-worker partials one 64-byte cache line apart so
// the workers' accumulator stores do not false-share.
const reducePad = 8

// ReduceFloat64 runs body over [0, n) and returns the sum of all per-call
// partial results — the equivalent of "omp parallel for reduction(+)".
//
// The worker count is resolved exactly once and pinned through
// opt.Threads: sizing the partial array from one NumThreads read while
// For re-reads it would let a concurrent SetNumThreads hand out worker
// ids beyond the array. The partials come from the shared workspace, so
// steady-state calls do not allocate them.
func ReduceFloat64(n int, opt Options, body func(lo, hi, worker int) float64) float64 {
	threads := ResolveThreads(n, opt)
	opt.Threads = threads
	ws := SharedWorkspace()
	partial := ws.Float64(threads * reducePad)
	For(n, opt, func(lo, hi, w int) {
		partial[w*reducePad] += body(lo, hi, w)
	})
	var sum float64
	for w := 0; w < threads; w++ {
		sum += partial[w*reducePad]
	}
	ws.PutFloat64(partial)
	return sum
}
