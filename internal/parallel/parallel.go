// Package parallel is the suite's stand-in for the OpenMP runtime used by
// the paper's CPU kernels. It provides a work-sharing parallel-for with
// static, dynamic, and guided scheduling, atomic float32 accumulation
// ("omp atomic"), and per-worker reduction scratch ("omp reduction").
//
// Threads are goroutines pinned to a fixed worker count (default
// GOMAXPROCS, matching the paper's one-thread-per-physical-core setup).
package parallel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/obs"
)

// Observability counters (internal/obs). Chunk and atomic-add counts
// sit on per-operation hot paths, so their sites gate on obs.Counting;
// CAS retries only tick on a lost race, which is rare enough to count
// unconditionally.
var (
	ctrChunks     = obs.GetCounter("parallel.chunks")
	ctrAtomicAdds = obs.GetCounter("parallel.atomic_adds")
	ctrCASRetries = obs.GetCounter("parallel.cas_retries")
	ctrReductions = obs.GetCounter("parallel.reductions")
)

// Schedule selects the OpenMP loop-scheduling policy.
type Schedule int

const (
	// Static divides the iteration space into equal contiguous ranges, one
	// per thread (OpenMP schedule(static)).
	Static Schedule = iota
	// Dynamic hands out fixed-size chunks from a shared counter
	// (schedule(dynamic, chunk)); good for skewed fiber lengths.
	Dynamic
	// Guided hands out geometrically shrinking chunks
	// (schedule(guided, chunk)).
	Guided
)

func (s Schedule) String() string {
	switch s {
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	}
	return "unknown"
}

var numThreads atomic.Int64

func init() { numThreads.Store(int64(runtime.GOMAXPROCS(0))) }

// NumThreads returns the worker count used by For.
func NumThreads() int { return int(numThreads.Load()) }

// SetNumThreads overrides the worker count (OMP_NUM_THREADS). Values < 1
// reset to GOMAXPROCS.
func SetNumThreads(n int) {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	numThreads.Store(int64(n))
}

// ErrDeadline is returned by For when Options.Ctx is cancelled or its
// deadline passes before the loop completes. Workers abandon unclaimed
// chunks, so a loop that returns ErrDeadline may have produced partial
// output; callers must not report it as a result.
var ErrDeadline = errors.New("parallel: deadline exceeded")

// WorkerPanic is the value For re-raises on the calling goroutine when a
// worker panicked: without this conversion a panicking worker goroutine
// would crash the whole process uncatchably, whereas a WorkerPanic
// propagates to the loop's caller where resilience.Run can contain it.
type WorkerPanic struct {
	// Worker is the id of the worker (or gpusim block) that panicked.
	Worker int
	// Value is the original recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at the recovery point.
	Stack []byte
}

func (w *WorkerPanic) Error() string {
	return fmt.Sprintf("parallel: worker %d panicked: %v", w.Worker, w.Value)
}

// chunkHook, when installed, is invoked at the start of every claimed
// chunk with the worker id. It exists for deterministic fault injection
// (resilience.Injector): a hook that panics or stalls simulates a
// faulting worker at chunk granularity.
var chunkHook atomic.Pointer[func(worker int)]

// SetChunkHook installs h as the global chunk hook; nil clears it. The
// hook runs inside worker goroutines under panic containment.
func SetChunkHook(h func(worker int)) {
	if h == nil {
		chunkHook.Store(nil)
		return
	}
	chunkHook.Store(&h)
}

func loadChunkHook() func(worker int) {
	if p := chunkHook.Load(); p != nil {
		return *p
	}
	return nil
}

// Options configures one parallel loop.
type Options struct {
	Schedule Schedule
	// Chunk is the chunk size for Dynamic/Guided (minimum chunk for
	// Guided). Zero selects a heuristic.
	Chunk int
	// Threads overrides NumThreads for this loop when > 0.
	Threads int
	// Strategy selects the reduction-update strategy for kernels with a
	// shared output (see Choose); the zero value Auto adapts per call.
	Strategy Strategy
	// Ctx, when non-nil, cancels the loop cooperatively: workers check
	// it at chunk granularity, stop claiming chunks once it is done, and
	// For returns ErrDeadline. Static no-chunk loops are forced onto the
	// chunked path so cancellation keeps sub-range granularity.
	Ctx context.Context
}

// ResolveThreads returns the worker count For will use for a loop of n
// iterations under opt, reading the global NumThreads at most once.
// Callers sizing per-worker state must resolve the count through this
// function and pass it back via opt.Threads — re-reading NumThreads
// races with SetNumThreads and can hand For more workers than the state
// was sized for.
func ResolveThreads(n int, opt Options) int {
	threads := opt.Threads
	if threads <= 0 {
		threads = NumThreads()
	}
	if n > 0 && threads > n {
		threads = n
	}
	if threads < 1 {
		threads = 1
	}
	return threads
}

// loopCtl carries the abort/containment state of one For invocation.
type loopCtl struct {
	done  <-chan struct{}
	hook  func(worker int)
	count bool // obs.Counting() resolved once per loop
	abort atomic.Bool
	mu    sync.Mutex
	wp    *WorkerPanic
}

// chunk ticks the chunk counter when hot-path counting is on; called
// once per claimed chunk on every schedule path.
func (c *loopCtl) chunk() {
	if c.count {
		ctrChunks.Inc()
	}
}

// active reports whether the loop needs per-chunk checks at all.
func (c *loopCtl) active() bool { return c.done != nil || c.hook != nil }

// enter reports whether worker w may start another chunk, running the
// fault-injection hook when one is installed.
func (c *loopCtl) enter(w int) bool {
	if c.abort.Load() {
		return false
	}
	if c.done != nil {
		select {
		case <-c.done:
			c.abort.Store(true)
			return false
		default:
		}
	}
	if c.hook != nil {
		c.hook(w)
	}
	return true
}

// guard is deferred in every worker goroutine: it records the first
// panic (value + stack) and aborts the loop so the other workers stop
// claiming chunks.
func (c *loopCtl) guard(w int) {
	if r := recover(); r != nil {
		c.mu.Lock()
		if c.wp == nil {
			c.wp = &WorkerPanic{Worker: w, Value: r, Stack: debug.Stack()}
		}
		c.mu.Unlock()
		c.abort.Store(true)
	}
}

// finish re-raises a contained worker panic on the caller's goroutine
// (so resilience.Run can recover it) or reports cancellation.
func (c *loopCtl) finish(ctx context.Context) error {
	c.mu.Lock()
	wp := c.wp
	c.mu.Unlock()
	if wp != nil {
		panic(wp)
	}
	if ctx != nil && ctx.Err() != nil {
		return deadlineErr(ctx)
	}
	return nil
}

// deadlineErr reports a loop stopped by its context. ErrDeadline stays
// the errors.Is identity every caller matches on; the context's cause
// is attached so upper layers can tell an explicit cancellation (client
// disconnect, drain) from an expired deadline.
func deadlineErr(ctx context.Context) error {
	if ctx == nil {
		return ErrDeadline
	}
	cause := context.Cause(ctx)
	if cause == nil {
		return ErrDeadline
	}
	return fmt.Errorf("%w (%w)", ErrDeadline, cause)
}

// For executes body over the half-open range [0, n) using the configured
// schedule. body is called with sub-ranges [lo, hi) and the worker id in
// [0, threads); each index is visited exactly once unless the loop is
// aborted. For returns after all iterations complete, or ErrDeadline when
// opt.Ctx is cancelled first (the loop's output may then be partial). A
// panic inside body is contained in its worker, aborts the remaining
// chunks, and is re-raised on the calling goroutine as a *WorkerPanic.
//
// When an obs tracer is enabled the whole loop is recorded as one
// chunk-phase span; when tracing is off the extra cost is a single
// atomic pointer load and zero allocations (pinned by
// TestDisabledTracingZeroAlloc).
func For(n int, opt Options, body func(lo, hi, worker int)) error {
	if n <= 0 {
		return nil
	}
	if t := obs.Current(); t != nil {
		sp := obs.BeginOn(t, "parallel.For", "", obs.PhaseChunk, -1)
		sp.Attr("schedule", opt.Schedule.String())
		err := forGo(n, opt, body)
		sp.End()
		return err
	}
	return forGo(n, opt, body)
}

// forGo is the uninstrumented loop driver behind For.
func forGo(n int, opt Options, body func(lo, hi, worker int)) error {
	threads := ResolveThreads(n, opt)
	ctl := &loopCtl{hook: loadChunkHook(), count: obs.Counting()}
	if opt.Ctx != nil {
		ctl.done = opt.Ctx.Done()
	}
	if threads == 1 {
		return forSerial(n, opt, ctl, body)
	}
	var wg sync.WaitGroup
	wg.Add(threads)
	switch opt.Schedule {
	case Static:
		chunk := opt.Chunk
		if chunk <= 0 && ctl.active() {
			// Cancellation and fault hooks need chunk granularity; the
			// contiguous one-range-per-thread split would only check
			// once per worker.
			chunk = heuristicChunk(n, threads)
		}
		if chunk <= 0 {
			// One contiguous range per thread.
			for w := 0; w < threads; w++ {
				lo := w * n / threads
				hi := (w + 1) * n / threads
				go func(lo, hi, w int) {
					defer wg.Done()
					defer ctl.guard(w)
					if lo < hi && ctl.enter(w) {
						ctl.chunk()
						body(lo, hi, w)
					}
				}(lo, hi, w)
			}
		} else {
			// Round-robin chunks of fixed size, OpenMP schedule(static, c).
			for w := 0; w < threads; w++ {
				go func(w int) {
					defer wg.Done()
					defer ctl.guard(w)
					for lo := w * chunk; lo < n; lo += threads * chunk {
						if !ctl.enter(w) {
							return
						}
						hi := lo + chunk
						if hi > n {
							hi = n
						}
						ctl.chunk()
						body(lo, hi, w)
					}
				}(w)
			}
		}
	case Dynamic:
		chunk := opt.Chunk
		if chunk <= 0 {
			chunk = heuristicChunk(n, threads)
		}
		var next atomic.Int64
		for w := 0; w < threads; w++ {
			go func(w int) {
				defer wg.Done()
				defer ctl.guard(w)
				for {
					if !ctl.enter(w) {
						return
					}
					lo := int(next.Add(int64(chunk))) - chunk
					if lo >= n {
						return
					}
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					ctl.chunk()
					body(lo, hi, w)
				}
			}(w)
		}
	case Guided:
		minChunk := opt.Chunk
		if minChunk <= 0 {
			minChunk = 1
		}
		var next atomic.Int64
		for w := 0; w < threads; w++ {
			go func(w int) {
				defer wg.Done()
				defer ctl.guard(w)
				for {
					if !ctl.enter(w) {
						return
					}
					lo := int(next.Load())
					if lo >= n {
						return
					}
					remaining := n - lo
					chunk := remaining / (2 * threads)
					if chunk < minChunk {
						chunk = minChunk
					}
					// Claim [lo, lo+chunk) if lo is still current. On a
					// lost race, yield before retrying: under high
					// contention (many workers, small chunks) spinning on
					// the CAS starves the winner of the core it needs to
					// publish the next value.
					if !next.CompareAndSwap(int64(lo), int64(lo+chunk)) {
						runtime.Gosched()
						continue
					}
					hi := lo + chunk
					if hi > n {
						hi = n
					}
					ctl.chunk()
					body(lo, hi, w)
				}
			}(w)
		}
	default:
		panic("parallel: unknown schedule")
	}
	wg.Wait()
	return ctl.finish(opt.Ctx)
}

// forSerial runs the loop on the calling goroutine. With no context or
// hook it is the zero-overhead single call the T=1 path always was; with
// either it chunks the range so cancellation and fault injection keep
// chunk granularity even at one thread. Panics propagate directly (same
// goroutine), which resilience.Run contains just the same.
func forSerial(n int, opt Options, ctl *loopCtl, body func(lo, hi, worker int)) error {
	if !ctl.active() {
		ctl.chunk()
		body(0, n, 0)
		return nil
	}
	chunk := opt.Chunk
	if chunk <= 0 {
		chunk = heuristicChunk(n, 1)
	}
	for lo := 0; lo < n; lo += chunk {
		if !ctl.enter(0) {
			return deadlineErr(opt.Ctx)
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		ctl.chunk()
		body(lo, hi, 0)
	}
	return nil
}

// ForEach is For with a per-index body, for loops whose iterations are too
// coarse to benefit from manual range handling.
func ForEach(n int, opt Options, body func(i, worker int)) error {
	return For(n, opt, func(lo, hi, w int) {
		for i := lo; i < hi; i++ {
			body(i, w)
		}
	})
}

func heuristicChunk(n, threads int) int {
	c := n / (threads * 16)
	if c < 1 {
		c = 1
	}
	if c > 4096 {
		c = 4096
	}
	return c
}

// AtomicAddFloat32 atomically adds delta to *addr using a compare-and-swap
// loop on the value's bit pattern — the Go equivalent of "omp atomic" /
// CUDA atomicAdd on float. Lost CAS races tick parallel.cas_retries and,
// when hot-path counting is on, completed adds tick parallel.atomic_adds.
func AtomicAddFloat32(addr *float32, delta float32) {
	p := (*uint32)(unsafe.Pointer(addr))
	for {
		old := atomic.LoadUint32(p)
		cur := math.Float32frombits(old)
		nxt := math.Float32bits(cur + delta)
		if atomic.CompareAndSwapUint32(p, old, nxt) {
			if obs.Counting() {
				ctrAtomicAdds.Inc()
			}
			return
		}
		ctrCASRetries.Inc()
	}
}

// AtomicAddFloat64 atomically adds delta to *addr.
func AtomicAddFloat64(addr *float64, delta float64) {
	p := (*uint64)(unsafe.Pointer(addr))
	for {
		old := atomic.LoadUint64(p)
		cur := math.Float64frombits(old)
		nxt := math.Float64bits(cur + delta)
		if atomic.CompareAndSwapUint64(p, old, nxt) {
			if obs.Counting() {
				ctrAtomicAdds.Inc()
			}
			return
		}
		ctrCASRetries.Inc()
	}
}

// reducePad spaces per-worker partials one 64-byte cache line apart so
// the workers' accumulator stores do not false-share.
const reducePad = 8

// ReduceFloat64 runs body over [0, n) and returns the sum of all per-call
// partial results — the equivalent of "omp parallel for reduction(+)".
//
// The worker count is resolved exactly once and pinned through
// opt.Threads: sizing the partial array from one NumThreads read while
// For re-reads it would let a concurrent SetNumThreads hand out worker
// ids beyond the array. The partials come from the shared workspace, so
// steady-state calls do not allocate them.
func ReduceFloat64(n int, opt Options, body func(lo, hi, worker int) float64) float64 {
	sp := obs.Begin("parallel.Reduce", "", obs.PhaseReduce, -1)
	if obs.Counting() {
		ctrReductions.Inc()
	}
	threads := ResolveThreads(n, opt)
	opt.Threads = threads
	ws := SharedWorkspace()
	partial := ws.Float64(threads * reducePad)
	For(n, opt, func(lo, hi, w int) {
		partial[w*reducePad] += body(lo, hi, w)
	})
	var sum float64
	for w := 0; w < threads; w++ {
		sum += partial[w*reducePad]
	}
	ws.PutFloat64(partial)
	sp.End()
	return sum
}
