package parallel

import (
	"sync"

	"repro/internal/obs"
)

// Pool-effectiveness counters: reuses are pool hits (the "workspace
// reuses" the paper-level counters report), misses are fresh
// allocations. Acquisitions are per kernel call, not per element, so
// they count unconditionally.
var (
	ctrWSReuses = obs.GetCounter("workspace.reuses")
	ctrWSMisses = obs.GetCounter("workspace.misses")
)

// Workspace is a pool of reduction scratch buffers keyed by size, reused
// across kernel invocations. The privatized reduction strategy needs
// threads × output elements of scratch per call; allocating that anew on
// every Execute poisons benchmark loops with allocator and GC traffic, so
// kernels draw buffers here and return them when the reduction is merged.
//
// All methods are safe for concurrent use. Buffers handed out are always
// fully zeroed.
type Workspace struct {
	mu   sync.Mutex
	f32  map[int][][]float32
	f64  map[int][][]float64
	sets map[setKey][]*PrivateSet

	hits     uint64
	misses   uint64
	retained int64
}

type setKey struct{ workers, elems int }

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace {
	return &Workspace{
		f32:  make(map[int][][]float32),
		f64:  make(map[int][][]float64),
		sets: make(map[setKey][]*PrivateSet),
	}
}

var sharedWorkspace = NewWorkspace()

// SharedWorkspace returns the process-wide workspace the reduction
// kernels draw their privatization scratch from.
func SharedWorkspace() *Workspace { return sharedWorkspace }

// WorkspaceStats reports pool effectiveness: in steady state every
// acquisition is a hit and Misses stays constant.
type WorkspaceStats struct {
	// Hits counts acquisitions served from the pool.
	Hits uint64
	// Misses counts acquisitions that had to allocate.
	Misses uint64
	// RetainedBytes is the memory currently parked in the pool.
	RetainedBytes int64
}

// Stats returns a snapshot of the pool counters.
func (ws *Workspace) Stats() WorkspaceStats {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	return WorkspaceStats{Hits: ws.hits, Misses: ws.misses, RetainedBytes: ws.retained}
}

// Drop releases every buffer parked in the pool back to the garbage
// collector (the counters survive).
func (ws *Workspace) Drop() {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	ws.f32 = make(map[int][][]float32)
	ws.f64 = make(map[int][][]float64)
	ws.sets = make(map[setKey][]*PrivateSet)
	ws.retained = 0
}

// Float32 hands out a zeroed []float32 of length n.
func (ws *Workspace) Float32(n int) []float32 {
	if n <= 0 {
		return nil
	}
	ws.mu.Lock()
	var buf []float32
	if l := ws.f32[n]; len(l) > 0 {
		buf = l[len(l)-1]
		ws.f32[n] = l[:len(l)-1]
		ws.hits++
		ctrWSReuses.Inc()
		ws.retained -= 4 * int64(n)
	} else {
		ws.misses++
		ctrWSMisses.Inc()
	}
	ws.mu.Unlock()
	if buf == nil {
		return make([]float32, n)
	}
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// PutFloat32 returns a buffer acquired with Float32 to the pool.
func (ws *Workspace) PutFloat32(buf []float32) {
	if len(buf) == 0 {
		return
	}
	ws.mu.Lock()
	ws.f32[len(buf)] = append(ws.f32[len(buf)], buf)
	ws.retained += 4 * int64(len(buf))
	ws.mu.Unlock()
}

// Float64 hands out a zeroed []float64 of length n.
func (ws *Workspace) Float64(n int) []float64 {
	if n <= 0 {
		return nil
	}
	ws.mu.Lock()
	var buf []float64
	if l := ws.f64[n]; len(l) > 0 {
		buf = l[len(l)-1]
		ws.f64[n] = l[:len(l)-1]
		ws.hits++
		ctrWSReuses.Inc()
		ws.retained -= 8 * int64(n)
	} else {
		ws.misses++
		ctrWSMisses.Inc()
	}
	ws.mu.Unlock()
	if buf == nil {
		return make([]float64, n)
	}
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// PutFloat64 returns a buffer acquired with Float64 to the pool.
func (ws *Workspace) PutFloat64(buf []float64) {
	if len(buf) == 0 {
		return
	}
	ws.mu.Lock()
	ws.f64[len(buf)] = append(ws.f64[len(buf)], buf)
	ws.retained += 8 * int64(len(buf))
	ws.mu.Unlock()
}

// PrivateSet is one worker-count's worth of private output copies for a
// privatized reduction: Bufs[w] is worker w's zeroed accumulation buffer.
// Sets are pooled as a unit so steady-state acquisition allocates
// nothing, not even the outer slice.
type PrivateSet struct {
	// Bufs holds one zeroed buffer per worker.
	Bufs [][]float32

	key setKey
}

// Set hands out a PrivateSet of `workers` zeroed buffers of `elems`
// float32 elements each.
func (ws *Workspace) Set(workers, elems int) *PrivateSet {
	if workers < 1 {
		workers = 1
	}
	k := setKey{workers: workers, elems: elems}
	ws.mu.Lock()
	var s *PrivateSet
	if l := ws.sets[k]; len(l) > 0 {
		s = l[len(l)-1]
		ws.sets[k] = l[:len(l)-1]
		ws.hits++
		ctrWSReuses.Inc()
		ws.retained -= 4 * int64(workers) * int64(elems)
	} else {
		ws.misses++
		ctrWSMisses.Inc()
	}
	ws.mu.Unlock()
	if s == nil {
		s = &PrivateSet{key: k, Bufs: make([][]float32, workers)}
		for w := range s.Bufs {
			s.Bufs[w] = make([]float32, elems)
		}
		return s
	}
	for _, b := range s.Bufs {
		for i := range b {
			b[i] = 0
		}
	}
	return s
}

// PutSet returns a set acquired with Set to the pool.
func (ws *Workspace) PutSet(s *PrivateSet) {
	if s == nil || len(s.Bufs) == 0 {
		return
	}
	ws.mu.Lock()
	ws.sets[s.key] = append(ws.sets[s.key], s)
	ws.retained += 4 * int64(s.key.workers) * int64(s.key.elems)
	ws.mu.Unlock()
}
