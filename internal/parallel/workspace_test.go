package parallel

import (
	"sync"
	"testing"
)

func TestWorkspaceFloat32ReuseAndZeroing(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Float32(64)
	if len(a) != 64 {
		t.Fatalf("len = %d, want 64", len(a))
	}
	for i := range a {
		a[i] = float32(i + 1)
	}
	ws.PutFloat32(a)
	b := ws.Float32(64)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %v", i, v)
		}
	}
	st := ws.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestWorkspaceFloat64ReuseAndZeroing(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Float64(32)
	for i := range a {
		a[i] = 3.5
	}
	ws.PutFloat64(a)
	b := ws.Float64(32)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %v", i, v)
		}
	}
	if st := ws.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestWorkspaceSizeKeying(t *testing.T) {
	ws := NewWorkspace()
	ws.PutFloat32(ws.Float32(100))
	// Different size must miss, not truncate or regrow the pooled buffer.
	b := ws.Float32(200)
	if len(b) != 200 {
		t.Fatalf("len = %d, want 200", len(b))
	}
	if st := ws.Stats(); st.Hits != 0 {
		t.Fatalf("different size hit the pool: %+v", st)
	}
}

func TestWorkspacePrivateSetReuse(t *testing.T) {
	ws := NewWorkspace()
	s := ws.Set(4, 128)
	if len(s.Bufs) != 4 {
		t.Fatalf("workers = %d, want 4", len(s.Bufs))
	}
	for _, buf := range s.Bufs {
		if len(buf) != 128 {
			t.Fatalf("buf len = %d, want 128", len(buf))
		}
		for i := range buf {
			buf[i] = 1
		}
	}
	ws.PutSet(s)
	s2 := ws.Set(4, 128)
	for w, buf := range s2.Bufs {
		for i, v := range buf {
			if v != 0 {
				t.Fatalf("reused set worker %d not zeroed at %d: %v", w, i, v)
			}
		}
	}
	if st := ws.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}
	// A different shape is a distinct pool key.
	s3 := ws.Set(2, 128)
	if len(s3.Bufs) != 2 {
		t.Fatalf("workers = %d, want 2", len(s3.Bufs))
	}
	if st := ws.Stats(); st.Hits != 1 {
		t.Fatalf("different shape hit the pool: %+v", st)
	}
}

func TestWorkspaceDrop(t *testing.T) {
	ws := NewWorkspace()
	ws.PutFloat32(ws.Float32(1024))
	ws.PutFloat64(ws.Float64(1024))
	ws.PutSet(ws.Set(2, 512))
	if st := ws.Stats(); st.RetainedBytes == 0 {
		t.Fatal("retained bytes = 0 after returning buffers")
	}
	ws.Drop()
	if st := ws.Stats(); st.RetainedBytes != 0 {
		t.Fatalf("retained bytes = %d after Drop, want 0", st.RetainedBytes)
	}
	// Pool still usable after Drop.
	if b := ws.Float32(16); len(b) != 16 {
		t.Fatal("workspace unusable after Drop")
	}
}

// TestWorkspaceConcurrent hammers one workspace from many goroutines; run
// under -race it proves the pool's locking. Each goroutine checks that the
// buffer it got is zeroed and exclusively owned.
func TestWorkspaceConcurrent(t *testing.T) {
	ws := NewWorkspace()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 200; it++ {
				buf := ws.Float32(256)
				for i, v := range buf {
					if v != 0 {
						t.Errorf("goroutine %d: dirty buffer at %d: %v", g, i, v)
						return
					}
				}
				for i := range buf {
					buf[i] = float32(g + 1)
				}
				for i, v := range buf {
					if v != float32(g+1) {
						t.Errorf("goroutine %d: buffer shared, saw %v at %d", g, v, i)
						return
					}
				}
				ws.PutFloat32(buf)

				s := ws.Set(3, 64)
				s.Bufs[0][0] = float32(g)
				ws.PutSet(s)
			}
		}(g)
	}
	wg.Wait()
}

// TestWorkspaceSteadyStateNoMisses verifies the pooling contract the
// kernels rely on: after a warm-up acquire/release cycle, further cycles
// of the same shape never miss (and therefore never allocate backing
// arrays).
func TestWorkspaceSteadyStateNoMisses(t *testing.T) {
	ws := NewWorkspace()
	ws.PutSet(ws.Set(4, 1024))
	ws.PutFloat64(ws.Float64(64))
	warm := ws.Stats()
	for i := 0; i < 100; i++ {
		s := ws.Set(4, 1024)
		b := ws.Float64(64)
		ws.PutFloat64(b)
		ws.PutSet(s)
	}
	st := ws.Stats()
	if st.Misses != warm.Misses {
		t.Fatalf("steady state missed: warm %d misses, now %d", warm.Misses, st.Misses)
	}
	if st.Hits != warm.Hits+200 {
		t.Fatalf("hits = %d, want %d", st.Hits, warm.Hits+200)
	}
}
