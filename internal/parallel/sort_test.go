package parallel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortInt32sSmall(t *testing.T) {
	keys := []int32{5, 3, 8, 1}
	idx := []int32{0, 1, 2, 3}
	SortInt32s(idx, func(a, b int32) bool { return keys[a] < keys[b] })
	want := []int32{3, 1, 0, 2}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("idx = %v, want %v", idx, want)
		}
	}
}

func TestSortInt32sLargeMatchesStdlib(t *testing.T) {
	// Large enough to take the parallel path.
	n := 1 << 17
	rng := rand.New(rand.NewSource(1))
	keys := make([]int64, n)
	for i := range keys {
		keys[i] = rng.Int63n(1000) // many duplicates
	}
	idx := make([]int32, n)
	ref := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
		ref[i] = int32(i)
	}
	less := func(a, b int32) bool { return keys[a] < keys[b] }
	SortInt32s(idx, less)
	sort.SliceStable(ref, func(i, j int) bool { return less(ref[i], ref[j]) })
	for i := 0; i < n; i++ {
		// Keys must agree positionally; with duplicates the permutations
		// may differ, but a stable parallel sort should match exactly.
		if keys[idx[i]] != keys[ref[i]] {
			t.Fatalf("position %d: key %d, want %d", i, keys[idx[i]], keys[ref[i]])
		}
	}
	// Verify it is a permutation.
	seen := make([]bool, n)
	for _, v := range idx {
		if seen[v] {
			t.Fatal("duplicate index after sort")
		}
		seen[v] = true
	}
}

func TestSortInt32sStability(t *testing.T) {
	// With equal keys, earlier indices must come first (stable), matching
	// sort.SliceStable.
	n := 1 << 16
	keys := make([]int32, n)
	rng := rand.New(rand.NewSource(2))
	for i := range keys {
		keys[i] = int32(rng.Intn(8)) // heavy duplication
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	SortInt32s(idx, func(a, b int32) bool { return keys[a] < keys[b] })
	for i := 1; i < n; i++ {
		ka, kb := keys[idx[i-1]], keys[idx[i]]
		if ka > kb {
			t.Fatal("not sorted")
		}
		if ka == kb && idx[i-1] > idx[i] {
			t.Fatalf("unstable at %d: %d before %d", i, idx[i-1], idx[i])
		}
	}
}

func TestSortInt32sThreadCounts(t *testing.T) {
	orig := NumThreads()
	defer SetNumThreads(orig)
	for _, threads := range []int{1, 2, 3, 8} {
		SetNumThreads(threads)
		n := 1 << 15
		rng := rand.New(rand.NewSource(int64(threads)))
		keys := make([]int32, n)
		for i := range keys {
			keys[i] = rng.Int31()
		}
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		SortInt32s(idx, func(a, b int32) bool { return keys[a] < keys[b] })
		for i := 1; i < n; i++ {
			if keys[idx[i-1]] > keys[idx[i]] {
				t.Fatalf("threads=%d: not sorted at %d", threads, i)
			}
		}
	}
}

func TestSortInt32sProperty(t *testing.T) {
	f := func(seed int64, nRaw uint32) bool {
		n := int(nRaw) % (1 << 16)
		rng := rand.New(rand.NewSource(seed))
		keys := make([]int32, n)
		for i := range keys {
			keys[i] = int32(rng.Intn(100))
		}
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		SortInt32s(idx, func(a, b int32) bool { return keys[a] < keys[b] })
		seen := make([]bool, n)
		for i, v := range idx {
			if seen[v] {
				return false
			}
			seen[v] = true
			if i > 0 && keys[idx[i-1]] > keys[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
