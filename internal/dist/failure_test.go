package dist

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/tensor"
)

// deadline bounds every failure-path test: on the pre-abort code these
// scenarios wedge forever (a failed rank left the ring without a word
// and its peers blocked in recvLeft), so the tests fail by timeout
// instead of hanging CI.
const deadline = 10 * time.Second

// withDeadline runs fn and fails the test if it does not return in
// time — the regression harness for the seed deadlock.
func withDeadline(t *testing.T, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(deadline):
		t.Fatal("deadlock: " + what + " did not return within the deadline " +
			"(rank failure left peers blocked in the ring — the seed dist bug)")
	}
}

// TestMttkrpRankFailureReturnsTypedError is the deadlock regression
// test: one rank fails mid-Mttkrp and the call must return a typed
// *RankError promptly. On the seed code the failing rank returned
// before AllReduceSum, every peer blocked forever on a ring receive,
// and Comm.Run's WaitGroup never drained.
func TestMttkrpRankFailureReturnsTypedError(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := tensor.RandomCOO([]tensor.Index{30, 25, 20}, 2000, rng)
	r := 8
	mats := make([]*tensor.Matrix, 3)
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	boom := errors.New("injected rank fault")
	var res *MttkrpResult
	var err error
	withDeadline(t, "dist.Mttkrp with a failing rank", func() {
		c := NewCommMust(4)
		res, err = mttkrpInject(c, DefaultNetwork, x, mats, 0, r, func(rank int) error {
			if rank == 2 {
				return boom
			}
			return nil
		})
	})
	if res != nil || err == nil {
		t.Fatalf("want typed error, got res=%v err=%v", res, err)
	}
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("want *RankError, got %T: %v", err, err)
	}
	if re.Rank != 2 {
		t.Fatalf("failure attributed to rank %d, want 2", re.Rank)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("root cause lost: %v", err)
	}
}

// TestAbortUnblocksCollectives pins the abort protocol at the Comm
// level: peers blocked inside AllReduceSum and Gather unwind with
// ErrAborted as soon as any rank aborts, and the communicator reports
// the root cause.
func TestAbortUnblocksCollectives(t *testing.T) {
	boom := errors.New("simulated node loss")
	for _, collective := range []string{"allreduce", "gather"} {
		p := 4
		c := NewCommMust(p)
		errs := make([]error, p)
		withDeadline(t, collective+" with an aborting rank", func() {
			c.Run(func(rank int) {
				if rank == 1 {
					c.Abort(rank, boom)
					return
				}
				buf := make([]tensor.Value, 64)
				if collective == "allreduce" {
					errs[rank] = c.AllReduceSum(rank, buf)
				} else {
					_, errs[rank] = c.Gather(rank, buf)
				}
			})
		})
		for rank, err := range errs {
			if rank == 1 {
				continue
			}
			// A gather's non-root senders may have completed their
			// (buffered) send before the abort landed; the root — and
			// every allreduce peer — must unwind with ErrAborted.
			mustErr := collective == "allreduce" || rank == 0
			if mustErr && !errors.Is(err, ErrAborted) {
				t.Fatalf("%s rank %d: want ErrAborted, got %v", collective, rank, err)
			}
			if err != nil && !errors.Is(err, ErrAborted) {
				t.Fatalf("%s rank %d: unexpected error %v", collective, rank, err)
			}
		}
		var re *RankError
		if err := c.Err(); !errors.As(err, &re) || re.Rank != 1 || !errors.Is(err, boom) {
			t.Fatalf("%s: Comm.Err() = %v, want *RankError{Rank:1} wrapping the cause", collective, c.Err())
		}
	}
}

// TestAbortIsIdempotent: later aborts must not panic (double close) and
// the first recorded cause wins.
func TestAbortIsIdempotent(t *testing.T) {
	c := NewCommMust(3)
	first := errors.New("first")
	c.Abort(0, first)
	c.Abort(1, errors.New("second"))
	var re *RankError
	if err := c.Err(); !errors.As(err, &re) || re.Rank != 0 || !errors.Is(err, first) {
		t.Fatalf("Err() = %v, want the first abort's cause", c.Err())
	}
}

// TestMttkrpDegenerateShards pins the m < p case: with more ranks than
// non-zeros some shards are empty, and those ranks must contribute a
// zero partial (joining the allreduce) instead of erroring.
func TestMttkrpDegenerateShards(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := tensor.RandomCOO([]tensor.Index{12, 10, 8}, 3, rng) // 3 nnz
	r := 4
	mats := make([]*tensor.Matrix, 3)
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	want, err := core.Mttkrp(x, mats, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{4, 7} { // both > nnz
		c := NewCommMust(p)
		res, err := Mttkrp(c, DefaultNetwork, x, mats, 0, r)
		if err != nil {
			t.Fatalf("p=%d (> nnz=%d): %v", p, x.NNZ(), err)
		}
		for i := range want.Data {
			if math.Abs(float64(res.Out.Data[i]-want.Data[i])) > 1e-3 {
				t.Fatalf("p=%d element %d: %v vs %v", p, i, res.Out.Data[i], want.Data[i])
			}
		}
	}
}

// TestEnginePersistentFailureReshards is the tentpole acceptance
// scenario: one worker fails on every attempt (a persistently dead
// node). The run must complete via abort → re-shard → retry (no hang,
// no final error), with the failure and the retry surfaced in the
// engine stats and the shared resilience counters.
func TestEnginePersistentFailureReshards(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := tensor.RandomCOO([]tensor.Index{40, 35, 30}, 3000, rng)
	r := 8
	mats := make([]*tensor.Matrix, 3)
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	want, err := core.Mttkrp(x, mats, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []Format{FormatCOO, FormatHiCOO} {
		retriesBefore := obs.GetCounter("resilience.retries").Value()
		reshardsBefore := obs.GetCounter("dist.reshards").Value()
		failuresBefore := obs.GetCounter("dist.rank_failures").Value()
		e, err := NewEngine(x, Options{
			Ranks:  4,
			Format: format,
			Inject: func(attempt, worker int) error {
				if worker == 2 { // dead node: fails on every attempt
					return errors.New("persistent node fault")
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var res *MttkrpResult
		withDeadline(t, "engine Mttkrp with a persistently failing worker", func() {
			res, err = e.Mttkrp(context.Background(), 1, mats, r)
		})
		if err != nil {
			t.Fatalf("%v: persistent failure should re-shard and complete, got %v", format, err)
		}
		for i := range want.Data {
			g, w := float64(res.Out.Data[i]), float64(want.Data[i])
			if math.Abs(g-w) > 2e-3*math.Max(1, math.Abs(w)) {
				t.Fatalf("%v element %d: %v vs %v", format, i, g, w)
			}
		}
		st := e.Stats()
		if st.Workers != 3 {
			t.Fatalf("%v: %d live workers, want 3 (worker 2 removed)", format, st.Workers)
		}
		if st.RankFailures != 1 || st.Reshards != 1 || st.Attempts != 2 {
			t.Fatalf("%v: stats %+v, want 1 failure, 1 re-shard, 2 attempts", format, st)
		}
		if st.CommBytes <= 0 || st.CommMessages <= 0 {
			t.Fatalf("%v: comm not accounted: %+v", format, st)
		}
		if got := obs.GetCounter("resilience.retries").Value() - retriesBefore; got != 1 {
			t.Fatalf("%v: resilience.retries advanced by %d, want 1", format, got)
		}
		if got := obs.GetCounter("dist.reshards").Value() - reshardsBefore; got != 1 {
			t.Fatalf("%v: dist.reshards advanced by %d, want 1", format, got)
		}
		if got := obs.GetCounter("dist.rank_failures").Value() - failuresBefore; got != 1 {
			t.Fatalf("%v: dist.rank_failures advanced by %d, want 1", format, got)
		}

		// The same dead node must not disturb subsequent calls: it is
		// already removed, so no further failures or retries occur.
		if _, err := e.Mttkrp(context.Background(), 0, mats, r); err != nil {
			t.Fatalf("%v: post-reshard call failed: %v", format, err)
		}
		if st := e.Stats(); st.RankFailures != 1 {
			t.Fatalf("%v: dead worker failed again after removal: %+v", format, st)
		}
	}
}

// TestEngineExhaustsReshardBudget: when every worker is faulty the
// engine must give up with a typed resilience.ErrExhausted — bounded
// retries, never a hang.
func TestEngineExhaustsReshardBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := tensor.RandomCOO([]tensor.Index{20, 15, 10}, 500, rng)
	r := 4
	mats := make([]*tensor.Matrix, 3)
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	e, err := NewEngine(x, Options{
		Ranks:  3,
		Inject: func(attempt, worker int) error { return errors.New("every node is on fire") },
	})
	if err != nil {
		t.Fatal(err)
	}
	withDeadline(t, "engine Mttkrp with all workers failing", func() {
		_, err = e.Mttkrp(context.Background(), 0, mats, r)
	})
	if !errors.Is(err, resilience.ErrExhausted) {
		t.Fatalf("want ErrExhausted, got %v", err)
	}
	var re *RankError
	if !errors.As(err, &re) {
		t.Fatalf("exhausted error should carry the last *RankError: %v", err)
	}
}

// TestEnginePanicContainment: a panicking shard kernel is contained per
// worker (resilience.Run), converted to an abort, and re-sharded around.
func TestEnginePanicContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := tensor.RandomCOO([]tensor.Index{20, 15, 10}, 500, rng)
	v := tensor.RandomVector(15, rng)
	want, err := core.Ttv(x, v, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(x, Options{
		Ranks: 4,
		Inject: func(attempt, worker int) error {
			if worker == 0 && attempt == 0 {
				panic("transient cosmic ray")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var res *TtvResult
	withDeadline(t, "engine Ttv with a panicking worker", func() {
		res, err = e.Ttv(context.Background(), 1, v)
	})
	if err != nil {
		t.Fatalf("panic should be contained and re-sharded around, got %v", err)
	}
	if d := tensor.AbsDiff(res.Out, want); d > 1e-3 {
		t.Fatalf("diff %v after recovery", d)
	}
	if st := e.Stats(); st.RankFailures != 1 || st.Workers != 3 {
		t.Fatalf("stats %+v, want the panicking worker counted and removed", e.Stats())
	}
}

// TestEngineChaos sweeps seeded random transient failures across
// formats and modes under the race detector: every scenario must either
// complete with a correct result or fail typed — never hang, never
// panic the process.
func TestEngineChaos(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x := tensor.RandomCOO([]tensor.Index{30, 24, 18}, 1500, rng)
	r := 4
	mats := make([]*tensor.Matrix, 3)
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	refs := make([]*tensor.Matrix, 3)
	for mode := range refs {
		ref, err := core.Mttkrp(x, mats, mode)
		if err != nil {
			t.Fatal(err)
		}
		refs[mode] = ref
	}
	for seed := int64(0); seed < 6; seed++ {
		for _, format := range []Format{FormatCOO, FormatHiCOO} {
			chaos := rand.New(rand.NewSource(seed))
			// Each worker fails on at most its first attempt, with
			// probability 1/2 — transient faults the re-shard loop must
			// absorb. Workers run concurrently, so the fault table needs
			// its own lock.
			var faultMu sync.Mutex
			faulty := make(map[int]bool)
			for w := 0; w < 4; w++ {
				faulty[w] = chaos.Intn(2) == 0
			}
			e, err := NewEngine(x, Options{
				Ranks:  4,
				Format: format,
				Inject: func(attempt, worker int) error {
					faultMu.Lock()
					defer faultMu.Unlock()
					if faulty[worker] {
						faulty[worker] = false
						return errors.New("transient chaos fault")
					}
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			for mode := 0; mode < 3; mode++ {
				var res *MttkrpResult
				withDeadline(t, "chaos engine Mttkrp", func() {
					res, err = e.Mttkrp(context.Background(), mode, mats, r)
				})
				if err != nil {
					if !errors.Is(err, resilience.ErrExhausted) {
						t.Fatalf("seed=%d %v mode=%d: untyped failure %v", seed, format, mode, err)
					}
					continue
				}
				for i := range refs[mode].Data {
					g, w := float64(res.Out.Data[i]), float64(refs[mode].Data[i])
					if math.Abs(g-w) > 2e-3*math.Max(1, math.Abs(w)) {
						t.Fatalf("seed=%d %v mode=%d element %d: %v vs %v", seed, format, mode, i, g, w)
					}
				}
			}
		}
	}
}

// TestPartitionByMode pins the mode-wise sharding invariants: every
// non-zero lands in exactly one shard, in the shard owning its output
// row.
func TestPartitionByMode(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := tensor.RandomCOO([]tensor.Index{17, 13, 9}, 700, rng)
	for _, p := range []int{1, 2, 5, 20} { // 20 > every dim
		for mode := 0; mode < 3; mode++ {
			shards, err := PartitionByMode(x, mode, p)
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			rows := int(x.Dims[mode])
			for w, s := range shards {
				total += s.NNZ()
				lo, hi := w*rows/p, (w+1)*rows/p
				for _, i := range s.Inds[mode] {
					if int(i) < lo || int(i) >= hi {
						t.Fatalf("p=%d mode=%d: shard %d owns rows [%d,%d) but holds row %d", p, mode, w, lo, hi, i)
					}
				}
			}
			if total != x.NNZ() {
				t.Fatalf("p=%d mode=%d: shards hold %d nnz, want %d", p, mode, total, x.NNZ())
			}
		}
	}
	if _, err := PartitionByMode(x, 9, 2); err == nil {
		t.Fatal("expected mode-range error")
	}
	if _, err := PartitionByMode(x, 0, 0); err == nil {
		t.Fatal("expected worker-count error")
	}
}
