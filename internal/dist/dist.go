// Package dist simulates distributed-memory execution of the benchmark
// kernels — §7 lists "distributed systems" and adapting the suite "in a
// communication scheme" as upcoming work. Ranks are goroutines connected
// by channels (message passing, no shared mutable state); collectives are
// implemented as a real ring allreduce and a rooted gather whose
// communication volume and message counts are recorded, so the harness can
// model network time with the standard alpha-beta (latency-bandwidth)
// cost model.
//
// The layer is fault tolerant. A rank that fails (kernel error, contained
// panic, injected fault) broadcasts an abort through the communicator's
// cancel channel instead of silently leaving the ring: every collective
// selects on that channel, so peers blocked mid-step unwind with a typed
// error rather than waiting forever on a message nobody will send — the
// deadlock the pre-abort code exhibited. On top of the abort protocol,
// Engine re-shards a failed worker's non-zeros across the survivors and
// retries, so one dead simulated node degrades capacity instead of
// killing the job (DESIGN.md §13).
package dist

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Communication traffic and failure events flow into the shared obs
// counter registry (exported by pastad's /metrics as pasta_dist_*).
// Traffic counts unconditionally: messages are collective segments, far
// coarser than the per-element hot paths the Counting() gate protects.
var (
	ctrCommBytes    = obs.GetCounter("dist.comm.bytes")
	ctrCommMsgs     = obs.GetCounter("dist.comm.messages")
	ctrAborts       = obs.GetCounter("dist.aborts")
	ctrRankFailures = obs.GetCounter("dist.rank_failures")
	ctrReshards     = obs.GetCounter("dist.reshards")
	// ctrRetries is the same registry cell the resilience ladder bumps:
	// a re-shard retry is a retry in the suite's failure taxonomy, so it
	// surfaces in the existing resilience counter row.
	ctrRetries = obs.GetCounter("resilience.retries")
)

// ValueBytes is the wire size of one tensor.Value, derived from the
// actual type so the accounting (and the alpha-beta model fed from it)
// tracks a future change of value precision instead of assuming float32.
const ValueBytes = int64(unsafe.Sizeof(tensor.Value(0)))

// ErrAborted marks a collective unwound because a peer rank failed: the
// caller's own work was fine, somebody else died. The communicator's
// Err() carries the root-cause *RankError.
var ErrAborted = errors.New("dist: collective aborted by rank failure")

// RankError is the typed failure of one simulated worker. Rank is the
// worker's stable id (assigned at Engine construction and kept across
// re-shards), so a persistent fault follows the node, not its current
// position in the ring.
type RankError struct {
	Rank int
	Err  error
}

func (e *RankError) Error() string {
	return fmt.Sprintf("dist: rank %d failed: %v", e.Rank, e.Err)
}

func (e *RankError) Unwrap() error { return e.Err }

// Comm is a simulated communicator over size ranks. Neighboring ranks
// exchange messages over buffered channels; every payload transfer is
// accounted. A Comm carries a cancel channel: Abort closes it exactly
// once, and every blocking channel operation selects on it, so a failed
// rank can never strand its peers inside a collective.
type Comm struct {
	size int
	// right[r] carries messages from rank r to rank (r+1) % size.
	right []chan []tensor.Value
	// toRoot[r] carries rank r's gather segment to rank 0.
	toRoot []chan []tensor.Value

	bytesSent atomic.Int64
	messages  atomic.Int64

	// abortErr is written once before aborted closes; the channel close
	// publishes it to every reader.
	abortOnce sync.Once
	aborted   chan struct{}
	abortErr  *RankError
}

// NewComm returns a communicator over p ranks (p >= 1).
func NewComm(p int) (*Comm, error) {
	if p < 1 {
		return nil, fmt.Errorf("dist: communicator needs >= 1 rank, got %d", p)
	}
	c := &Comm{
		size:    p,
		right:   make([]chan []tensor.Value, p),
		toRoot:  make([]chan []tensor.Value, p),
		aborted: make(chan struct{}),
	}
	for i := 0; i < p; i++ {
		c.right[i] = make(chan []tensor.Value, 1)
		c.toRoot[i] = make(chan []tensor.Value, 1)
	}
	return c, nil
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Stats reports the cumulative communication volume.
func (c *Comm) Stats() (bytes, messages int64) {
	return c.bytesSent.Load(), c.messages.Load()
}

// Abort records rank's failure as the communicator's root cause and
// closes the cancel channel, unwinding every peer blocked in a
// collective. The first abort wins; later ones are no-ops.
func (c *Comm) Abort(rank int, cause error) {
	c.abortOnce.Do(func() {
		re, ok := cause.(*RankError)
		if !ok {
			re = &RankError{Rank: rank, Err: cause}
		}
		c.abortErr = re
		ctrAborts.Inc()
		obs.Emit("dist.abort", fmt.Sprintf("rank%d", rank), obs.PhaseFallback, rank,
			obs.Attr{Key: "cause", Val: cause.Error()})
		close(c.aborted)
	})
}

// WatchContext aborts the communicator when ctx ends, so every rank
// blocked in a collective unwinds promptly on caller cancellation — the
// same escape hatch rank failures use, with rank -1 marking "no worker
// at fault". The RankError wraps the cancellation cause, so
// errors.Is(err, context.Canceled) holds on the error collectives
// return. Callers must invoke the returned stop (as with
// context.AfterFunc) once the collective phase is over.
func (c *Comm) WatchContext(ctx context.Context) (stop func() bool) {
	if ctx == nil {
		return func() bool { return false }
	}
	return context.AfterFunc(ctx, func() {
		c.Abort(-1, fmt.Errorf("dist: run cancelled: %w", context.Cause(ctx)))
	})
}

// Err returns the root-cause *RankError once the communicator has been
// aborted, nil while it is healthy.
func (c *Comm) Err() error {
	select {
	case <-c.aborted:
		return c.abortErr
	default:
		return nil
	}
}

// abortedErr renders the peer-failure error a collective returns when it
// unwinds: ErrAborted wrapping the root cause.
func (c *Comm) abortedErr() error {
	return fmt.Errorf("%w (root cause: %v)", ErrAborted, c.abortErr)
}

// sendRight transfers a payload from rank to its right neighbor. Only
// non-empty payloads are accounted: when a collective's buffer is
// shorter than the rank count, some ring segments are empty, and those
// transfers carry no data — charging them a message would inflate
// Stats() and the alpha-beta latency term modeled from it.
func (c *Comm) sendRight(rank int, data []tensor.Value) error {
	if len(data) > 0 {
		c.bytesSent.Add(ValueBytes * int64(len(data)))
		c.messages.Add(1)
		ctrCommBytes.Add(ValueBytes * int64(len(data)))
		ctrCommMsgs.Inc()
	}
	select {
	case c.right[rank] <- data:
		return nil
	case <-c.aborted:
		return c.abortedErr()
	}
}

// recvLeft receives the payload sent by the left neighbor.
func (c *Comm) recvLeft(rank int) ([]tensor.Value, error) {
	left := (rank - 1 + c.size) % c.size
	select {
	case data := <-c.right[left]:
		return data, nil
	case <-c.aborted:
		return nil, c.abortedErr()
	}
}

// AllReduceSum sums the equal-length buffers of all ranks element-wise,
// leaving the full result in every rank's buffer. It is a textbook ring
// allreduce (reduce-scatter then allgather): 2(P-1) messages per rank and
// ~2 n (P-1)/P values moved per rank, the volume the alpha-beta model
// charges. Buffers are modified in place. Must be called by every rank;
// it returns ErrAborted (wrapping the root cause) when a peer fails
// mid-collective instead of blocking forever.
func (c *Comm) AllReduceSum(rank int, buf []tensor.Value) error {
	p := c.size
	if p == 1 {
		return nil
	}
	n := len(buf)
	segStart := func(s int) int { return s * n / p }
	segEnd := func(s int) int { return (s + 1) * n / p }

	// Reduce-scatter: after P-1 steps, rank r holds the fully reduced
	// segment (r+1) mod P.
	for step := 0; step < p-1; step++ {
		sendSeg := ((rank-step)%p + p) % p
		recvSeg := ((rank-step-1)%p + p) % p
		out := append([]tensor.Value(nil), buf[segStart(sendSeg):segEnd(sendSeg)]...)
		if err := c.sendRight(rank, out); err != nil {
			return err
		}
		in, err := c.recvLeft(rank)
		if err != nil {
			return err
		}
		dst := buf[segStart(recvSeg):segEnd(recvSeg)]
		for i := range dst {
			dst[i] += in[i]
		}
	}
	// Allgather: circulate the reduced segments.
	for step := 0; step < p-1; step++ {
		sendSeg := ((rank+1-step)%p + p) % p
		recvSeg := ((rank-step)%p + p) % p
		out := append([]tensor.Value(nil), buf[segStart(sendSeg):segEnd(sendSeg)]...)
		if err := c.sendRight(rank, out); err != nil {
			return err
		}
		in, err := c.recvLeft(rank)
		if err != nil {
			return err
		}
		copy(buf[segStart(recvSeg):segEnd(recvSeg)], in)
	}
	return nil
}

// Gather collects every rank's segment at rank 0, which receives the
// per-rank segments in rank order (its own segment included, untouched).
// Non-root ranks return (nil, nil) on success. One message is accounted
// per non-root, non-empty segment — an empty segment moves no data, so
// charging it would inflate the modeled latency term. Must be called by
// every rank.
func (c *Comm) Gather(rank int, seg []tensor.Value) ([][]tensor.Value, error) {
	if c.size == 1 {
		return [][]tensor.Value{seg}, nil
	}
	if rank != 0 {
		if len(seg) > 0 {
			c.bytesSent.Add(ValueBytes * int64(len(seg)))
			c.messages.Add(1)
			ctrCommBytes.Add(ValueBytes * int64(len(seg)))
			ctrCommMsgs.Inc()
		}
		select {
		case c.toRoot[rank] <- seg:
			return nil, nil
		case <-c.aborted:
			return nil, c.abortedErr()
		}
	}
	segs := make([][]tensor.Value, c.size)
	segs[0] = seg
	for r := 1; r < c.size; r++ {
		select {
		case segs[r] = <-c.toRoot[r]:
		case <-c.aborted:
			return nil, c.abortedErr()
		}
	}
	return segs, nil
}

// Run executes fn once per rank concurrently and waits for all ranks.
func (c *Comm) Run(fn func(rank int)) {
	var wg sync.WaitGroup
	wg.Add(c.size)
	for r := 0; r < c.size; r++ {
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(r)
	}
	wg.Wait()
}

// AllReduceVolume returns the exact aggregate traffic a P-rank ring
// allreduce of n values moves — the counts Comm.Stats() reports after
// AllReduceSum. Each of the 2(P-1) steps circulates every segment once
// (n values total per step); only non-empty segments are messages, and
// with the [s·n/P, (s+1)·n/P) segmentation exactly min(n, P) of the P
// segments are non-empty.
func AllReduceVolume(n, p int) (bytes, messages int64) {
	if p <= 1 || n <= 0 {
		return 0, 0
	}
	nonEmpty := n
	if nonEmpty > p {
		nonEmpty = p
	}
	messages = int64(2 * (p - 1) * nonEmpty)
	bytes = int64(2*(p-1)) * int64(n) * ValueBytes
	return bytes, messages
}

// GatherVolume returns the exact traffic of gathering the per-rank
// segments (segLens[r] values from rank r) at rank 0 — the counts
// Comm.Stats() reports after Gather: one message per non-root, non-empty
// segment, the root's own segment free.
func GatherVolume(segLens []int) (bytes, messages int64) {
	for r, l := range segLens {
		if r == 0 || l <= 0 {
			continue
		}
		bytes += ValueBytes * int64(l)
		messages++
	}
	return bytes, messages
}

// NetworkModel is the alpha-beta cost model for the simulated network.
type NetworkModel struct {
	// LatencySec is the per-message latency (alpha).
	LatencySec float64
	// BandwidthGBs is the per-link bandwidth (1/beta).
	BandwidthGBs float64
}

// DefaultNetwork approximates a 100 Gb/s HPC interconnect.
var DefaultNetwork = NetworkModel{LatencySec: 2e-6, BandwidthGBs: 12.5}

// AllReduceTime returns the modeled wall time of a ring allreduce of
// nBytes across p ranks: 2(P-1) latency terms plus 2 nBytes (P-1)/P over
// the link bandwidth. When the buffer holds fewer values than ranks,
// the empty ring segments send no messages (matching Comm's accounting),
// so the latency term scales by the non-empty segment fraction.
func (nm NetworkModel) AllReduceTime(nBytes int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	n := nBytes / ValueBytes
	nonEmpty := n
	if nonEmpty > int64(p) {
		nonEmpty = int64(p)
	}
	steps := 2 * float64(p-1) * float64(nonEmpty) / float64(p)
	vol := 2 * float64(nBytes) * float64(p-1) / float64(p)
	return steps*nm.LatencySec + vol/(nm.BandwidthGBs*1e9)
}

// GatherTime returns the modeled wall time of a rooted gather given the
// measured traffic: one latency term per message, serialized through the
// root's single link at the model bandwidth. Feeding it the counts
// GatherVolume predicts (== what Comm accounts) keeps the model and the
// measurement in exact agreement.
func (nm NetworkModel) GatherTime(bytes, messages int64) float64 {
	return float64(messages)*nm.LatencySec + float64(bytes)/(nm.BandwidthGBs*1e9)
}
