// Package dist simulates distributed-memory execution of the benchmark
// kernels — §7 lists "distributed systems" and adapting the suite "in a
// communication scheme" as upcoming work. Ranks are goroutines connected
// by channels (message passing, no shared mutable state); collectives are
// implemented as a real ring allreduce whose communication volume and
// message counts are recorded, so the harness can model network time with
// the standard alpha-beta (latency-bandwidth) cost model.
package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/tensor"
)

// ValueBytes is the wire size of one tensor.Value, derived from the
// actual type so the accounting (and the alpha-beta model fed from it)
// tracks a future change of value precision instead of assuming float32.
const ValueBytes = int64(unsafe.Sizeof(tensor.Value(0)))

// Comm is a simulated communicator over size ranks. Neighboring ranks
// exchange messages over buffered channels; every payload transfer is
// accounted.
type Comm struct {
	size int
	// right[r] carries messages from rank r to rank (r+1) % size.
	right []chan []tensor.Value

	bytesSent atomic.Int64
	messages  atomic.Int64
}

// NewComm returns a communicator over p ranks (p >= 1).
func NewComm(p int) (*Comm, error) {
	if p < 1 {
		return nil, fmt.Errorf("dist: communicator needs >= 1 rank, got %d", p)
	}
	c := &Comm{size: p, right: make([]chan []tensor.Value, p)}
	for i := range c.right {
		c.right[i] = make(chan []tensor.Value, 1)
	}
	return c, nil
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Stats reports the cumulative communication volume.
func (c *Comm) Stats() (bytes, messages int64) {
	return c.bytesSent.Load(), c.messages.Load()
}

// Run executes fn once per rank concurrently and waits for all ranks.
func (c *Comm) Run(fn func(rank int)) {
	var wg sync.WaitGroup
	wg.Add(c.size)
	for r := 0; r < c.size; r++ {
		go func(rank int) {
			defer wg.Done()
			fn(rank)
		}(r)
	}
	wg.Wait()
}

// sendRight transfers a payload from rank to its right neighbor. Only
// non-empty payloads are accounted: when a collective's buffer is
// shorter than the rank count, some ring segments are empty, and those
// transfers carry no data — charging them a message would inflate
// Stats() and the alpha-beta latency term modeled from it.
func (c *Comm) sendRight(rank int, data []tensor.Value) {
	if len(data) > 0 {
		c.bytesSent.Add(ValueBytes * int64(len(data)))
		c.messages.Add(1)
	}
	c.right[rank] <- data
}

// recvLeft receives the payload sent by the left neighbor.
func (c *Comm) recvLeft(rank int) []tensor.Value {
	left := (rank - 1 + c.size) % c.size
	return <-c.right[left]
}

// AllReduceSum sums the equal-length buffers of all ranks element-wise,
// leaving the full result in every rank's buffer. It is a textbook ring
// allreduce (reduce-scatter then allgather): 2(P-1) messages per rank and
// ~2 n (P-1)/P values moved per rank, the volume the alpha-beta model
// charges. Buffers are modified in place. Must be called by every rank.
func (c *Comm) AllReduceSum(rank int, buf []tensor.Value) {
	p := c.size
	if p == 1 {
		return
	}
	n := len(buf)
	segStart := func(s int) int { return s * n / p }
	segEnd := func(s int) int { return (s + 1) * n / p }

	// Reduce-scatter: after P-1 steps, rank r holds the fully reduced
	// segment (r+1) mod P.
	for step := 0; step < p-1; step++ {
		sendSeg := ((rank-step)%p + p) % p
		recvSeg := ((rank-step-1)%p + p) % p
		out := append([]tensor.Value(nil), buf[segStart(sendSeg):segEnd(sendSeg)]...)
		c.sendRight(rank, out)
		in := c.recvLeft(rank)
		dst := buf[segStart(recvSeg):segEnd(recvSeg)]
		for i := range dst {
			dst[i] += in[i]
		}
	}
	// Allgather: circulate the reduced segments.
	for step := 0; step < p-1; step++ {
		sendSeg := ((rank+1-step)%p + p) % p
		recvSeg := ((rank-step)%p + p) % p
		out := append([]tensor.Value(nil), buf[segStart(sendSeg):segEnd(sendSeg)]...)
		c.sendRight(rank, out)
		in := c.recvLeft(rank)
		copy(buf[segStart(recvSeg):segEnd(recvSeg)], in)
	}
}

// NetworkModel is the alpha-beta cost model for the simulated network.
type NetworkModel struct {
	// LatencySec is the per-message latency (alpha).
	LatencySec float64
	// BandwidthGBs is the per-link bandwidth (1/beta).
	BandwidthGBs float64
}

// DefaultNetwork approximates a 100 Gb/s HPC interconnect.
var DefaultNetwork = NetworkModel{LatencySec: 2e-6, BandwidthGBs: 12.5}

// AllReduceTime returns the modeled wall time of a ring allreduce of
// nBytes across p ranks: 2(P-1) latency terms plus 2 nBytes (P-1)/P over
// the link bandwidth. When the buffer holds fewer values than ranks,
// the empty ring segments send no messages (matching Comm's accounting),
// so the latency term scales by the non-empty segment fraction.
func (nm NetworkModel) AllReduceTime(nBytes int64, p int) float64 {
	if p <= 1 {
		return 0
	}
	n := nBytes / ValueBytes
	nonEmpty := n
	if nonEmpty > int64(p) {
		nonEmpty = int64(p)
	}
	steps := 2 * float64(p-1) * float64(nonEmpty) / float64(p)
	vol := 2 * float64(nBytes) * float64(p-1) / float64(p)
	return steps*nm.LatencySec + vol/(nm.BandwidthGBs*1e9)
}
