package dist

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/hicoo"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/tensor"
)

// Format selects the local-compute representation each worker shards
// into.
type Format uint8

const (
	// FormatCOO computes local partials on raw COO shards.
	FormatCOO Format = iota
	// FormatHiCOO converts each shard to HiCOO (block-compressed, §3.2)
	// before computing — conversion happens once per shard and is reused
	// across sweeps.
	FormatHiCOO
)

func (f Format) String() string {
	if f == FormatHiCOO {
		return "HiCOO"
	}
	return "COO"
}

// Options configures an Engine; zero values select the defaults.
type Options struct {
	// Ranks is the simulated worker count (default 1).
	Ranks int
	// Format is the local shard representation (default FormatCOO).
	Format Format
	// BlockBits is the HiCOO block exponent (0 → hicoo.DefaultBlockBits).
	BlockBits uint8
	// Net is the alpha-beta model comm time is charged with (zero →
	// DefaultNetwork).
	Net NetworkModel
	// MaxReshards caps how many re-shard retries one distributed call may
	// spend before reporting resilience.ErrExhausted (0 → Ranks-1, i.e.
	// degrade all the way down to a single surviving worker).
	MaxReshards int
	// Inject, when non-nil, is consulted at the start of every worker's
	// local compute: a non-nil return fails that worker on that attempt.
	// The chaos tests drive persistent (every attempt) and transient
	// failures through it.
	Inject func(attempt, worker int) error
}

// Stats is an Engine's cumulative execution record.
type Stats struct {
	// Workers is the current live worker count (starts at Ranks, drops
	// by one per removed worker).
	Workers int
	// Attempts counts distributed executions, including retried ones.
	Attempts int64
	// RankFailures counts worker failures observed (abort broadcasts).
	RankFailures int64
	// Reshards counts re-shard retries taken after a failure.
	Reshards int64
	// CommBytes / CommMessages are the measured traffic of successful
	// attempts; ModeledCommSec the alpha-beta time charged for it.
	CommBytes      int64
	CommMessages   int64
	ModeledCommSec float64
}

// Engine owns one tensor sharded across simulated workers and executes
// distributed kernels over it with re-shard-and-retry fault tolerance:
// a worker failure aborts the in-flight collective (no peer is left
// blocked in the ring), the failed worker is removed, its non-zeros are
// re-partitioned across the survivors, and the call retries — so a
// persistent single-node fault degrades capacity instead of failing the
// job. Workers keep stable ids across re-shards (comm ranks renumber,
// worker ids do not), so persistent faults follow the node.
//
// An Engine is safe for concurrent use; distributed runs serialize on
// an internal lock (the parallelism is across the simulated workers
// inside a run, not across runs).
type Engine struct {
	x   *tensor.COO
	opt Options

	// runMu serializes distributed runs: shard caches and kernel plans
	// are single-writer per run.
	runMu sync.Mutex

	// mu guards the mutable state below (readable while a run holds
	// runMu: Stats() must not block for a whole CP-ALS sweep).
	mu       sync.Mutex
	workers  []int // live stable worker ids
	stats    Stats
	shards   map[int][]*shard // mode → per-live-worker shards
	ttvPlans map[int]*core.TtvPlan
}

// NewEngine builds an engine for x with opt.Ranks simulated workers.
func NewEngine(x *tensor.COO, opt Options) (*Engine, error) {
	if opt.Ranks <= 0 {
		opt.Ranks = 1
	}
	if opt.BlockBits < 1 || opt.BlockBits > hicoo.MaxBlockBits {
		opt.BlockBits = hicoo.DefaultBlockBits
	}
	if opt.Net == (NetworkModel{}) {
		opt.Net = DefaultNetwork
	}
	if opt.MaxReshards <= 0 {
		opt.MaxReshards = opt.Ranks - 1
	}
	if x == nil || x.Order() < 1 {
		return nil, fmt.Errorf("dist: engine needs a non-empty tensor")
	}
	e := &Engine{
		x:        x,
		opt:      opt,
		workers:  make([]int, opt.Ranks),
		shards:   make(map[int][]*shard),
		ttvPlans: make(map[int]*core.TtvPlan),
	}
	for i := range e.workers {
		e.workers[i] = i
	}
	e.stats.Workers = opt.Ranks
	return e, nil
}

// Stats snapshots the engine's cumulative execution record.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Workers returns the live worker count.
func (e *Engine) Workers() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.workers)
}

// liveWorkers snapshots the stable ids of the surviving workers.
func (e *Engine) liveWorkers() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]int(nil), e.workers...)
}

// removeWorker drops a failed worker and invalidates every shard cache
// (the partition width changed). Reports whether the id was live.
func (e *Engine) removeWorker(id int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, w := range e.workers {
		if w == id {
			e.workers = append(e.workers[:i], e.workers[i+1:]...)
			e.stats.Workers = len(e.workers)
			e.shards = make(map[int][]*shard)
			return true
		}
	}
	return false
}

// runWithReshard drives one distributed call through the re-shard retry
// loop: attemptFn errors that carry a *RankError remove the failed
// worker and retry on the survivors (counted as a resilience retry);
// any other error is final. The retry budget exhausting — or the last
// worker dying — reports resilience.ErrExhausted with the root cause
// attached. A cancelled ctx is final immediately: nobody is waiting for
// the result, and the unwound collective must not be booked as a rank
// failure (the workers did nothing wrong).
func (e *Engine) runWithReshard(ctx context.Context, kernel string, attemptFn func(workers []int, attempt int) error) error {
	e.runMu.Lock()
	defer e.runMu.Unlock()
	for attempt := 0; ; attempt++ {
		workers := e.liveWorkers()
		if len(workers) == 0 {
			return fmt.Errorf("dist: %s: no live workers: %w", kernel, resilience.ErrExhausted)
		}
		if ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("dist: %s cancelled: %w", kernel, context.Cause(ctx))
		}
		e.mu.Lock()
		e.stats.Attempts++
		e.mu.Unlock()
		err := attemptFn(workers, attempt)
		if err == nil {
			return nil
		}
		if ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("dist: %s cancelled: %w", kernel, context.Cause(ctx))
		}
		var re *RankError
		if !errors.As(err, &re) {
			return err
		}
		e.mu.Lock()
		e.stats.RankFailures++
		e.mu.Unlock()
		ctrRankFailures.Inc()
		if !e.removeWorker(re.Rank) {
			// A failure attributed to an unknown worker cannot be
			// re-sharded around; treat it as final.
			return re
		}
		if attempt >= e.opt.MaxReshards || len(e.liveWorkers()) == 0 {
			return fmt.Errorf("dist: %s gave up after %d re-shard retries (last failure: %w): %w",
				kernel, attempt, re, resilience.ErrExhausted)
		}
		e.mu.Lock()
		e.stats.Reshards++
		e.mu.Unlock()
		ctrReshards.Inc()
		ctrRetries.Inc()
		obs.Emit("dist.reshard", kernel, obs.PhaseFallback, -1,
			obs.Attr{Key: "failed_worker", Val: strconv.Itoa(re.Rank)},
			obs.Attr{Key: "survivors", Val: strconv.Itoa(len(e.liveWorkers()))})
	}
}

// shardsFor returns the per-live-worker mode-wise shards, partitioning
// on first use (and after any re-shard, which clears the cache).
func (e *Engine) shardsFor(mode, p int) ([]*shard, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if s, ok := e.shards[mode]; ok && len(s) == p {
		return s, nil
	}
	sp := obs.Begin("dist.partition", fmt.Sprintf("m%d/p%d", mode, p), obs.PhasePrepare, -1)
	coos, err := PartitionByMode(e.x, mode, p)
	sp.End()
	if err != nil {
		return nil, err
	}
	ss := make([]*shard, len(coos))
	for i, c := range coos {
		ss[i] = &shard{coo: c}
	}
	e.shards[mode] = ss
	return ss, nil
}

// addComm folds one successful attempt's traffic into the stats.
func (e *Engine) addComm(bytes, msgs int64, modeled float64) {
	e.mu.Lock()
	e.stats.CommBytes += bytes
	e.stats.CommMessages += msgs
	e.stats.ModeledCommSec += modeled
	e.mu.Unlock()
}

// label names the engine's trials in the resilience taxonomy.
func (e *Engine) label(kernel string) resilience.Label {
	return resilience.Label{Kernel: kernel, Format: e.opt.Format.String(), Backend: "dist"}
}

// Mttkrp runs the mode-n MTTKRP across the live workers: mode-wise
// shards computed locally (COO or HiCOO), partials combined by ring
// allreduce, worker failures re-sharded around. Cancelling ctx aborts
// the in-flight collective and returns the cancellation cause.
func (e *Engine) Mttkrp(ctx context.Context, mode int, mats []*tensor.Matrix, r int) (*MttkrpResult, error) {
	if mode < 0 || mode >= e.x.Order() {
		return nil, fmt.Errorf("dist: mode %d out of range", mode)
	}
	var res *MttkrpResult
	err := e.runWithReshard(ctx, "Mttkrp", func(workers []int, attempt int) error {
		var err error
		res, err = e.mttkrpAttempt(ctx, workers, attempt, mode, mats, r)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (e *Engine) mttkrpAttempt(ctx context.Context, workers []int, attempt, mode int, mats []*tensor.Matrix, r int) (*MttkrpResult, error) {
	p := len(workers)
	shards, err := e.shardsFor(mode, p)
	if err != nil {
		return nil, err
	}
	c, err := NewComm(p)
	if err != nil {
		return nil, err
	}
	stop := c.WatchContext(ctx)
	defer stop()
	partials := make([]*tensor.Matrix, p)
	errs := make([]error, p)
	c.Run(func(rank int) {
		worker := workers[rank]
		sp := obs.Begin("dist.rank", fmt.Sprintf("Mttkrp/m%d", mode), obs.PhaseChunk, worker)
		sp.Attr("attempt", strconv.Itoa(attempt))
		defer sp.End()
		fail := func(err error) {
			re := &RankError{Rank: worker, Err: err}
			errs[rank] = re
			c.Abort(worker, re)
		}
		var out *tensor.Matrix
		// Panic containment per worker: a crashing shard kernel (or an
		// injected panic) becomes a typed abort, not a process unwind
		// with peers mid-collective.
		err := resilience.Run(e.label("Mttkrp"), func() error {
			if e.opt.Inject != nil {
				if err := e.opt.Inject(attempt, worker); err != nil {
					return err
				}
			}
			var err error
			out, err = e.localMttkrp(shards[rank], mode, mats, r)
			return err
		})
		if err != nil {
			fail(err)
			return
		}
		if err := c.AllReduceSum(rank, out.Data); err != nil {
			errs[rank] = err
			return
		}
		partials[rank] = out
	})
	if err := distError(c, errs); err != nil {
		return nil, err
	}
	bytes, msgs := c.Stats()
	modeled := e.opt.Net.AllReduceTime(ValueBytes*int64(e.x.Dims[mode])*int64(r), p)
	e.addComm(bytes, msgs, modeled)
	return &MttkrpResult{Out: partials[0], CommBytes: bytes, CommMessages: msgs, ModeledCommSec: modeled}, nil
}

// localMttkrp computes one worker's partial over its shard. Empty
// shards short-circuit to a zero partial: the worker still joins the
// allreduce, it just brings nothing to it.
func (e *Engine) localMttkrp(s *shard, mode int, mats []*tensor.Matrix, r int) (*tensor.Matrix, error) {
	if s.coo.NNZ() == 0 {
		return tensor.NewMatrix(int(e.x.Dims[mode]), r), nil
	}
	if e.opt.Format == FormatHiCOO {
		if s.hx == nil {
			sp := obs.Begin("hicoo.FromCOO", "dist-shard", obs.PhaseConvert, -1)
			s.hx = hicoo.FromCOO(s.coo, e.opt.BlockBits)
			sp.End()
		}
		plan, err := core.PrepareMttkrpHiCOO(s.hx, mode, r)
		if err != nil {
			return nil, err
		}
		return plan.ExecuteSeq(mats)
	}
	plan, err := core.PrepareMttkrp(s.coo, mode, r)
	if err != nil {
		return nil, err
	}
	return plan.ExecuteSeq(mats)
}

// Ttv runs the mode-n tensor-times-vector across the live workers:
// contiguous fiber ranges computed locally, value segments gathered at
// the root through the communicator, worker failures re-sharded around.
// (Fiber outputs are disjoint regardless of format, so the local loop
// always runs on the sorted COO fiber structure.) Cancelling ctx aborts
// the in-flight collective and returns the cancellation cause.
func (e *Engine) Ttv(ctx context.Context, mode int, v tensor.Vector) (*TtvResult, error) {
	if mode < 0 || mode >= e.x.Order() {
		return nil, fmt.Errorf("dist: mode %d out of range", mode)
	}
	if len(v) != int(e.x.Dims[mode]) {
		return nil, fmt.Errorf("dist: vector length %d, want %d", len(v), e.x.Dims[mode])
	}
	var res *TtvResult
	err := e.runWithReshard(ctx, "Ttv", func(workers []int, attempt int) error {
		var err error
		res, err = e.ttvAttempt(ctx, workers, attempt, mode, v)
		return err
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

func (e *Engine) ttvPlanFor(mode int) (*core.TtvPlan, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if plan, ok := e.ttvPlans[mode]; ok {
		return plan, nil
	}
	plan, err := core.PrepareTtv(e.x, mode)
	if err != nil {
		return nil, err
	}
	e.ttvPlans[mode] = plan
	return plan, nil
}

func (e *Engine) ttvAttempt(ctx context.Context, workers []int, attempt, mode int, v tensor.Vector) (*TtvResult, error) {
	plan, err := e.ttvPlanFor(mode)
	if err != nil {
		return nil, err
	}
	p := len(workers)
	c, err := NewComm(p)
	if err != nil {
		return nil, err
	}
	stop := c.WatchContext(ctx)
	defer stop()
	mf := plan.NumFibers()
	fptr := plan.Fptr
	kInd := plan.X.Inds[mode]
	xv := plan.X.Vals
	segLens := make([]int, p)
	var gathered [][]tensor.Value
	errs := make([]error, p)
	c.Run(func(rank int) {
		worker := workers[rank]
		sp := obs.Begin("dist.rank", fmt.Sprintf("Ttv/m%d", mode), obs.PhaseChunk, worker)
		sp.Attr("attempt", strconv.Itoa(attempt))
		defer sp.End()
		fail := func(err error) {
			re := &RankError{Rank: worker, Err: err}
			errs[rank] = re
			c.Abort(worker, re)
		}
		lo := rank * mf / p
		hi := (rank + 1) * mf / p
		segLens[rank] = hi - lo
		seg := make([]tensor.Value, hi-lo)
		err := resilience.Run(e.label("Ttv"), func() error {
			if e.opt.Inject != nil {
				if err := e.opt.Inject(attempt, worker); err != nil {
					return err
				}
			}
			for f := lo; f < hi; f++ {
				var acc tensor.Value
				for mIdx := fptr[f]; mIdx < fptr[f+1]; mIdx++ {
					acc += xv[mIdx] * v[kInd[mIdx]]
				}
				seg[f-lo] = acc
			}
			return nil
		})
		if err != nil {
			fail(err)
			return
		}
		segs, err := c.Gather(rank, seg)
		if err != nil {
			errs[rank] = err
			return
		}
		if rank == 0 {
			gathered = segs
		}
	})
	if err := distError(c, errs); err != nil {
		return nil, err
	}
	w := 0
	for _, seg := range gathered {
		copy(plan.Out.Vals[w:], seg)
		w += len(seg)
	}
	bytes, msgs := c.Stats()
	modeled := e.opt.Net.GatherTime(GatherVolume(segLens))
	e.addComm(bytes, msgs, modeled)
	return &TtvResult{Out: plan.Out, CommBytes: bytes, CommMessages: msgs, ModeledCommSec: modeled}, nil
}

// CPALS runs the CP-ALS sweep with every per-mode MTTKRP executed
// distributed (mode-wise shards + ring allreduce over the factor
// update); the dense linear algebra between MTTKRPs is replicated, as
// in medium-scale distributed CP-ALS. Worker failures mid-sweep
// re-shard and retry the failing MTTKRP, so the decomposition survives
// node loss. Cancelling ctx stops the sweep at the next MTTKRP.
func (e *Engine) CPALS(ctx context.Context, rank, maxIters int, tol float64, seed int64) (*algo.CPResult, error) {
	return algo.CPALSWith(e.x, rank, maxIters, tol, seed,
		func(mode int, factors []*tensor.Matrix) (*tensor.Matrix, error) {
			res, err := e.Mttkrp(ctx, mode, factors, rank)
			if err != nil {
				return nil, err
			}
			return res.Out, nil
		})
}
