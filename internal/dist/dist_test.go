package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/tensor"
)

func TestAllReduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7} {
		c, err := NewComm(p)
		if err != nil {
			t.Fatal(err)
		}
		n := 37
		bufs := make([][]tensor.Value, p)
		want := make([]tensor.Value, n)
		for r := 0; r < p; r++ {
			bufs[r] = make([]tensor.Value, n)
			for i := range bufs[r] {
				bufs[r][i] = tensor.Value(r*100 + i)
				want[i] += bufs[r][i]
			}
		}
		errs := make([]error, p)
		c.Run(func(rank int) { errs[rank] = c.AllReduceSum(rank, bufs[rank]) })
		for r := 0; r < p; r++ {
			if errs[r] != nil {
				t.Fatalf("p=%d rank %d: %v", p, r, errs[r])
			}
			for i := range want {
				if math.Abs(float64(bufs[r][i]-want[i])) > 1e-3 {
					t.Fatalf("p=%d rank %d element %d = %v, want %v", p, r, i, bufs[r][i], want[i])
				}
			}
		}
		// Exact volume accounting: Stats must equal the closed-form model.
		bytes, msgs := c.Stats()
		wantBytes, wantMsgs := AllReduceVolume(n, p)
		if msgs != wantMsgs || bytes != wantBytes {
			t.Fatalf("p=%d: (%d bytes, %d msgs), want (%d, %d)", p, bytes, msgs, wantBytes, wantMsgs)
		}
		if p > 1 && msgs != int64(2*(p-1)*p) {
			t.Fatalf("p=%d: %d messages, want %d", p, msgs, 2*(p-1)*p)
		}
		if p == 1 && msgs != 0 {
			t.Fatal("single rank should not communicate")
		}
	}
}

func TestAllReduceSumProperty(t *testing.T) {
	f := func(seed int64, pRaw, nRaw uint8) bool {
		p := int(pRaw)%6 + 1
		n := int(nRaw)%100 + 1
		rng := rand.New(rand.NewSource(seed))
		c, err := NewComm(p)
		if err != nil {
			return false
		}
		bufs := make([][]tensor.Value, p)
		want := make([]float64, n)
		for r := 0; r < p; r++ {
			bufs[r] = make([]tensor.Value, n)
			for i := range bufs[r] {
				bufs[r][i] = tensor.Value(rng.Float64())
				want[i] += float64(bufs[r][i])
			}
		}
		c.Run(func(rank int) {
			if err := c.AllReduceSum(rank, bufs[rank]); err != nil {
				panic(err)
			}
		})
		for r := 0; r < p; r++ {
			for i := range want {
				if math.Abs(float64(bufs[r][i])-want[i]) > 1e-4 {
					return false
				}
			}
		}
		// Stats must match the closed-form volume model for every (n, p).
		bytes, msgs := c.Stats()
		wantBytes, wantMsgs := AllReduceVolume(n, p)
		return bytes == wantBytes && msgs == wantMsgs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAllReduceSumShortBuffer pins the n < p accounting: with fewer
// values than ranks, some ring segments are empty and must move zero
// bytes AND zero messages. Before the fix every empty segment still
// counted one message (2(P-1)P total regardless of n), inflating
// Stats() and the alpha-beta latency term modeled from it.
func TestAllReduceSumShortBuffer(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{1, 4}, {2, 5}, {3, 7}, {6, 8}} {
		c, err := NewComm(tc.p)
		if err != nil {
			t.Fatal(err)
		}
		bufs := make([][]tensor.Value, tc.p)
		want := make([]tensor.Value, tc.n)
		for r := 0; r < tc.p; r++ {
			bufs[r] = make([]tensor.Value, tc.n)
			for i := range bufs[r] {
				bufs[r][i] = tensor.Value(r*10 + i + 1)
				want[i] += bufs[r][i]
			}
		}
		c.Run(func(rank int) {
			if err := c.AllReduceSum(rank, bufs[rank]); err != nil {
				panic(err)
			}
		})
		for r := 0; r < tc.p; r++ {
			for i := range want {
				if math.Abs(float64(bufs[r][i]-want[i])) > 1e-3 {
					t.Fatalf("n=%d p=%d rank %d element %d = %v, want %v",
						tc.n, tc.p, r, i, bufs[r][i], want[i])
				}
			}
		}
		// Each of the n non-empty segments circulates the ring P-1 times
		// per phase (reduce-scatter + allgather): 2(P-1)·n messages, each
		// carrying exactly one value here since n < p ⇒ segment size ≤ 1.
		bytes, msgs := c.Stats()
		wantMsgs := int64(2 * (tc.p - 1) * tc.n)
		if msgs != wantMsgs {
			t.Fatalf("n=%d p=%d: %d messages, want %d", tc.n, tc.p, msgs, wantMsgs)
		}
		if bytes != wantMsgs*ValueBytes {
			t.Fatalf("n=%d p=%d: %d bytes, want %d (ValueBytes=%d per message)",
				tc.n, tc.p, bytes, wantMsgs*ValueBytes, ValueBytes)
		}
		if wb, wm := AllReduceVolume(tc.n, tc.p); wb != bytes || wm != msgs {
			t.Fatalf("n=%d p=%d: AllReduceVolume=(%d,%d) disagrees with measured (%d,%d)",
				tc.n, tc.p, wb, wm, bytes, msgs)
		}
	}
}

// TestValueBytesDerived pins the byte accounting to the real value size:
// a full-segment allreduce must charge exactly ValueBytes per value
// moved, with ValueBytes derived from tensor.Value rather than a
// hardcoded 4.
func TestValueBytesDerived(t *testing.T) {
	p, n := 4, 32 // n divisible by p: every segment has n/p values
	c, err := NewComm(p)
	if err != nil {
		t.Fatal(err)
	}
	bufs := make([][]tensor.Value, p)
	for r := range bufs {
		bufs[r] = make([]tensor.Value, n)
	}
	c.Run(func(rank int) {
		if err := c.AllReduceSum(rank, bufs[rank]); err != nil {
			panic(err)
		}
	})
	bytes, msgs := c.Stats()
	wantMsgs := int64(2 * (p - 1) * p)
	if msgs != wantMsgs {
		t.Fatalf("%d messages, want %d", msgs, wantMsgs)
	}
	if want := wantMsgs * int64(n/p) * ValueBytes; bytes != want {
		t.Fatalf("%d bytes, want %d", bytes, want)
	}
}

// TestAllReduceTimeShortBuffer: the modeled latency term must match the
// no-empty-message accounting — fewer values than ranks means fewer
// latency charges, never more.
func TestAllReduceTimeShortBuffer(t *testing.T) {
	nm := DefaultNetwork
	p := 8
	short := nm.AllReduceTime(2*ValueBytes, p)       // n=2 < p
	full := nm.AllReduceTime(ValueBytes*int64(p), p) // n=p
	if short <= 0 {
		t.Fatal("short-buffer allreduce should still cost time")
	}
	if short >= full {
		t.Fatalf("n<p allreduce modeled at %v, not below n=p cost %v", short, full)
	}
}

func TestNewCommError(t *testing.T) {
	if _, err := NewComm(0); err == nil {
		t.Fatal("expected error for zero ranks")
	}
}

func TestDistributedMttkrpMatchesLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.RandomCOO([]tensor.Index{40, 35, 30}, 3000, rng)
	r := 8
	mats := make([]*tensor.Matrix, 3)
	for n := range mats {
		mats[n] = tensor.NewMatrix(int(x.Dims[n]), r)
		mats[n].Randomize(rng)
	}
	want, err := core.Mttkrp(x, mats, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 5} {
		c, err := NewComm(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Mttkrp(c, DefaultNetwork, x, mats, 0, r)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			g, w := float64(res.Out.Data[i]), float64(want.Data[i])
			if math.Abs(g-w) > 2e-3*math.Max(1, math.Abs(w)) {
				t.Fatalf("p=%d element %d: %v vs %v", p, i, g, w)
			}
		}
		// The measured traffic must match the alpha-beta model's assumed
		// volume exactly: the allreduce moves rows·r values across p ranks.
		wantBytes, wantMsgs := AllReduceVolume(int(x.Dims[0])*r, p)
		if res.CommBytes != wantBytes || res.CommMessages != wantMsgs {
			t.Fatalf("p=%d: measured (%d bytes, %d msgs), model assumes (%d, %d)",
				p, res.CommBytes, res.CommMessages, wantBytes, wantMsgs)
		}
		if gb, gm := c.Stats(); gb != wantBytes || gm != wantMsgs {
			t.Fatalf("p=%d: Comm.Stats()=(%d,%d), want (%d,%d)", p, gb, gm, wantBytes, wantMsgs)
		}
		if p > 1 && res.ModeledCommSec <= 0 {
			t.Fatal("modeled communication time missing")
		}
		if p == 1 && res.CommBytes != 0 {
			t.Fatal("single rank should not communicate")
		}
	}
}

func TestDistributedMttkrpErrors(t *testing.T) {
	x := tensor.RandomCOO([]tensor.Index{5, 5, 5}, 20, rand.New(rand.NewSource(2)))
	c, _ := NewComm(2)
	if _, err := Mttkrp(c, DefaultNetwork, x, nil, 9, 4); err == nil {
		t.Fatal("expected mode error")
	}
	if _, err := Mttkrp(c, DefaultNetwork, x, []*tensor.Matrix{nil}, 0, 4); err == nil {
		t.Fatal("expected matrices error")
	}
}

func TestDistributedTtvMatchesLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := tensor.RandomCOO([]tensor.Index{30, 40, 25}, 2000, rng)
	v := tensor.RandomVector(40, rng)
	want, err := core.Ttv(x, v, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 3, 6} {
		c, _ := NewComm(p)
		res, err := Ttv(c, DefaultNetwork, x, v, 1)
		if err != nil {
			t.Fatal(err)
		}
		if d := tensor.AbsDiff(res.Out, want); d > 1e-3 {
			t.Fatalf("p=%d: diff %v", p, d)
		}
		// The gather traffic must hit the communicator's counters (the
		// seed code summed bytes locally: Stats() stayed zero) and match
		// the model's assumed volume exactly.
		mf := res.Out.NNZ()
		segLens := make([]int, p)
		for rank := 0; rank < p; rank++ {
			segLens[rank] = (rank+1)*mf/p - rank*mf/p
		}
		wantBytes, wantMsgs := GatherVolume(segLens)
		if res.CommBytes != wantBytes || res.CommMessages != wantMsgs {
			t.Fatalf("p=%d: measured (%d bytes, %d msgs), model assumes (%d, %d)",
				p, res.CommBytes, res.CommMessages, wantBytes, wantMsgs)
		}
		if gb, gm := c.Stats(); gb != wantBytes || gm != wantMsgs {
			t.Fatalf("p=%d: Comm.Stats()=(%d,%d), want (%d,%d)", p, gb, gm, wantBytes, wantMsgs)
		}
		if p > 1 {
			if res.CommBytes <= 0 || res.CommMessages <= 0 {
				t.Fatal("gather not accounted on the communicator")
			}
			if res.ModeledCommSec <= 0 {
				t.Fatal("modeled gather time missing")
			}
			if want := DefaultNetwork.GatherTime(wantBytes, wantMsgs); res.ModeledCommSec != want {
				t.Fatalf("p=%d: modeled %v, want %v", p, res.ModeledCommSec, want)
			}
		}
	}
	if _, err := Ttv(NewCommMust(2), DefaultNetwork, x, tensor.NewVector(3), 1); err == nil {
		t.Fatal("expected vector-length error")
	}
}

// NewCommMust is a test helper.
func NewCommMust(p int) *Comm {
	c, err := NewComm(p)
	if err != nil {
		panic(err)
	}
	return c
}

func TestAllReduceTimeModel(t *testing.T) {
	nm := DefaultNetwork
	if nm.AllReduceTime(1<<20, 1) != 0 {
		t.Fatal("single rank should cost nothing")
	}
	t2 := nm.AllReduceTime(1<<20, 2)
	t8 := nm.AllReduceTime(1<<20, 8)
	if t2 <= 0 || t8 <= t2 {
		t.Fatalf("alpha-beta model not monotone in ranks for fixed data: %v vs %v", t2, t8)
	}
	// Bandwidth term dominates for big payloads: time ≈ 2·vol/BW.
	big := nm.AllReduceTime(1<<30, 4)
	wantApprox := 2 * float64(1<<30) * 3 / 4 / (nm.BandwidthGBs * 1e9)
	if math.Abs(big-wantApprox)/wantApprox > 0.05 {
		t.Fatalf("large-payload time %v, want ≈ %v", big, wantApprox)
	}
}
