package dist

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/algo"
	"repro/internal/kernelreg"
	"repro/internal/parallel"
	"repro/internal/roofline"
	"repro/internal/tensor"
)

// refRanks are the satellite-mandated worker counts: 7 exercises the
// non-divisor case (uneven shards, empty ring segments when buffers run
// short).
var refRanks = []int{1, 2, 4, 7}

// TestEngineMttkrpMatchesRegistryReference cross-checks the distributed
// MTTKRP — both shard formats, every mode, 1/2/4/7 ranks — against the
// registry's serial COO reference through the same canonicalization and
// tolerance the verification harness uses.
func TestEngineMttkrpMatchesRegistryReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	x := tensor.RandomCOO([]tensor.Index{40, 32, 24}, 4000, rng)
	wb := kernelreg.NewWorkbench(x, kernelreg.Config{})
	mats := wb.Mats()
	r := wb.R()
	ctx := context.Background()
	for mode := 0; mode < x.Order(); mode++ {
		ref, err := wb.Reference(ctx, roofline.Mttkrp, mode)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range refRanks {
			for _, format := range []Format{FormatCOO, FormatHiCOO} {
				e, err := NewEngine(x, Options{Ranks: p, Format: format})
				if err != nil {
					t.Fatal(err)
				}
				res, err := e.Mttkrp(context.Background(), mode, mats, r)
				if err != nil {
					t.Fatalf("p=%d %v mode=%d: %v", p, format, mode, err)
				}
				if dev := kernelreg.Compare(kernelreg.CanonOf(res.Out), ref); dev > 2e-3 {
					t.Fatalf("p=%d %v mode=%d: deviation %v vs serial COO reference", p, format, mode, dev)
				}
				wantBytes, wantMsgs := AllReduceVolume(int(x.Dims[mode])*r, p)
				if res.CommBytes != wantBytes || res.CommMessages != wantMsgs {
					t.Fatalf("p=%d %v mode=%d: measured (%d,%d), model assumes (%d,%d)",
						p, format, mode, res.CommBytes, res.CommMessages, wantBytes, wantMsgs)
				}
			}
		}
	}
}

// TestEngineTtvMatchesRegistryReference cross-checks the distributed
// Ttv against the registry reference for 1/2/4/7 ranks.
func TestEngineTtvMatchesRegistryReference(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	x := tensor.RandomCOO([]tensor.Index{30, 26, 22}, 2500, rng)
	wb := kernelreg.NewWorkbench(x, kernelreg.Config{})
	ctx := context.Background()
	for mode := 0; mode < x.Order(); mode++ {
		ref, err := wb.Reference(ctx, roofline.Ttv, mode)
		if err != nil {
			t.Fatal(err)
		}
		v := wb.Vec(mode)
		for _, p := range refRanks {
			e, err := NewEngine(x, Options{Ranks: p})
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Ttv(context.Background(), mode, v)
			if err != nil {
				t.Fatalf("p=%d mode=%d: %v", p, mode, err)
			}
			if dev := kernelreg.Compare(kernelreg.CanonOf(res.Out), ref); dev > 2e-3 {
				t.Fatalf("p=%d mode=%d: deviation %v vs serial COO reference", p, mode, dev)
			}
		}
	}
}

// TestEngineCPALSMatchesSerial runs the full distributed CP-ALS sweep
// for 1/2/4/7 ranks and checks it lands on the serial solver's
// trajectory: same deterministic initialization, so fits must agree to
// the reduction-order tolerance and factors must reconstruct the same
// model.
func TestEngineCPALSMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	x := tensor.RandomCOO([]tensor.Index{24, 20, 16}, 1800, rng)
	const (
		rank  = 4
		iters = 6
		tol   = 0.0
		seed  = 99
	)
	want, err := algo.CPALS(x, rank, iters, tol, seed, parallel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range refRanks {
		for _, format := range []Format{FormatCOO, FormatHiCOO} {
			e, err := NewEngine(x, Options{Ranks: p, Format: format})
			if err != nil {
				t.Fatal(err)
			}
			got, err := e.CPALS(context.Background(), rank, iters, tol, seed)
			if err != nil {
				t.Fatalf("p=%d %v: %v", p, format, err)
			}
			if got.Iters != want.Iters {
				t.Fatalf("p=%d %v: %d sweeps, serial ran %d", p, format, got.Iters, want.Iters)
			}
			if math.Abs(got.Fit-want.Fit) > 1e-3 {
				t.Fatalf("p=%d %v: fit %v, serial %v", p, format, got.Fit, want.Fit)
			}
			// Spot-check the reconstructed model at the tensor's own
			// non-zeros: both decompositions must predict the same values.
			idx := make([]tensor.Index, x.Order())
			for _, z := range []int{0, x.NNZ() / 2, x.NNZ() - 1} {
				x.Entry(z, idx)
				g := got.ReconstructAt(idx)
				w := want.ReconstructAt(idx)
				if math.Abs(g-w) > 1e-2*math.Max(1, math.Abs(w)) {
					t.Fatalf("p=%d %v nnz %d: reconstruct %v vs serial %v", p, format, z, g, w)
				}
			}
		}
	}
}

// TestEngineCPALSSurvivesWorkerLoss runs CP-ALS with a worker that dies
// partway through the sweep — the decomposition must complete on the
// survivors with the same answer.
func TestEngineCPALSSurvivesWorkerLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	x := tensor.RandomCOO([]tensor.Index{24, 20, 16}, 1800, rng)
	const (
		rank  = 4
		iters = 4
		seed  = 7
	)
	want, err := algo.CPALS(x, rank, iters, 0, seed, parallel.Options{})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	e, err := NewEngine(x, Options{
		Ranks: 4,
		Inject: func(attempt, worker int) error {
			if worker == 3 {
				calls++
				if calls > 5 { // dies mid-decomposition, stays dead
					return errTestNodeLoss
				}
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.CPALS(context.Background(), rank, iters, 0, seed)
	if err != nil {
		t.Fatalf("CP-ALS should survive worker loss via re-shard, got %v", err)
	}
	if math.Abs(got.Fit-want.Fit) > 1e-3 {
		t.Fatalf("fit %v after worker loss, serial %v", got.Fit, want.Fit)
	}
	st := e.Stats()
	if st.Workers != 3 || st.RankFailures != 1 || st.Reshards != 1 {
		t.Fatalf("stats %+v, want worker 3 removed after one failure + re-shard", st)
	}
}

var errTestNodeLoss = errorString("node lost mid-sweep")

type errorString string

func (e errorString) Error() string { return string(e) }
