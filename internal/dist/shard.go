package dist

import (
	"fmt"

	"repro/internal/hicoo"
	"repro/internal/tensor"
)

// shard is one worker's slice of the tensor for one mode: the non-zeros
// whose mode index falls into the worker's output-row range, plus the
// lazily built HiCOO form for block-scheduled local compute.
type shard struct {
	coo *tensor.COO
	// hx is the HiCOO conversion of coo, built on first HiCOO-format use
	// (only the owning rank touches it during a run; the engine's run
	// lock orders runs).
	hx *hicoo.HiCOO
}

// PartitionByMode splits x's non-zeros across p workers by their mode-n
// index: worker w owns output rows [w·I_n/p, (w+1)·I_n/p) and every
// non-zero whose mode index lands in that range. This is the mode-wise
// (coarse-grained, output-disjoint) distribution of distributed CP-ALS:
// each worker's local MTTKRP partial writes only its own rows, so the
// ring allreduce combines disjoint contributions and the reduction order
// matches the serial reference per row. Workers with no rows (or no
// non-zeros — skew makes empty shards routine) get an empty shard and
// contribute a zero partial.
func PartitionByMode(x *tensor.COO, mode, p int) ([]*tensor.COO, error) {
	if mode < 0 || mode >= x.Order() {
		return nil, fmt.Errorf("dist: partition mode %d out of range for order-%d tensor", mode, x.Order())
	}
	if p < 1 {
		return nil, fmt.Errorf("dist: partition needs >= 1 worker, got %d", p)
	}
	rows := int(x.Dims[mode])
	// bucketOf maps a mode index to its owning worker; building the whole
	// lookup is O(I_n) and makes the per-nonzero bucketing a single load.
	bucketOf := make([]int32, rows)
	for w := 0; w < p; w++ {
		lo, hi := w*rows/p, (w+1)*rows/p
		for i := lo; i < hi; i++ {
			bucketOf[i] = int32(w)
		}
	}
	counts := make([]int, p)
	ind := x.Inds[mode]
	for _, i := range ind {
		counts[bucketOf[i]]++
	}
	order := x.Order()
	out := make([]*tensor.COO, p)
	for w := 0; w < p; w++ {
		s := &tensor.COO{Dims: x.Dims, Inds: make([][]tensor.Index, order), Vals: make([]tensor.Value, 0, counts[w])}
		for n := 0; n < order; n++ {
			s.Inds[n] = make([]tensor.Index, 0, counts[w])
		}
		out[w] = s
	}
	for z := 0; z < x.NNZ(); z++ {
		s := out[bucketOf[ind[z]]]
		for n := 0; n < order; n++ {
			s.Inds[n] = append(s.Inds[n], x.Inds[n][z])
		}
		s.Vals = append(s.Vals, x.Vals[z])
	}
	return out, nil
}
