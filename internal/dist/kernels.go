package dist

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tensor"
)

// MttkrpResult carries a distributed Mttkrp's output and its measured
// communication, plus the alpha-beta modeled times.
type MttkrpResult struct {
	// Out is the reduced output matrix (identical on every rank).
	Out *tensor.Matrix
	// CommBytes and CommMessages are the measured allreduce traffic.
	CommBytes    int64
	CommMessages int64
	// ModeledCommSec is the alpha-beta time of the allreduce.
	ModeledCommSec float64
}

// Mttkrp runs the mode-n Mttkrp over a communicator: non-zeros are
// partitioned contiguously across ranks (the coarse-grained distribution
// of distributed CP-ALS), each rank computes a local partial Ã over its
// shard, and a ring allreduce combines the partials. The factor matrices
// are replicated, matching medium-scale distributed MTTKRP practice.
//
// A rank whose local compute fails aborts the communicator instead of
// silently leaving the collective (the seed code returned early, leaving
// its peers blocked forever in the ring); the call returns the failing
// rank's typed *RankError.
func Mttkrp(c *Comm, net NetworkModel, x *tensor.COO, mats []*tensor.Matrix, mode, r int) (*MttkrpResult, error) {
	return mttkrpInject(c, net, x, mats, mode, r, nil)
}

// mttkrpInject is Mttkrp with a per-rank fault hook: inject(rank)
// non-nil fails that rank before its local compute. Tests use it to
// reproduce the single-rank failure the public API cannot trigger from
// valid inputs (kernel argument errors fail every rank identically).
func mttkrpInject(c *Comm, net NetworkModel, x *tensor.COO, mats []*tensor.Matrix, mode, r int, inject func(rank int) error) (*MttkrpResult, error) {
	if mode < 0 || mode >= x.Order() {
		return nil, fmt.Errorf("dist: mode %d out of range", mode)
	}
	rows := int(x.Dims[mode])
	m := x.NNZ()
	p := c.Size()

	// Per-rank shards as independent COO views (sharing index arrays).
	partials := make([]*tensor.Matrix, p)
	errs := make([]error, p)
	bytes0, msgs0 := c.Stats()
	c.Run(func(rank int) {
		fail := func(err error) {
			errs[rank] = err
			c.Abort(rank, err)
		}
		if inject != nil {
			if err := inject(rank); err != nil {
				fail(err)
				return
			}
		}
		lo := rank * m / p
		hi := (rank + 1) * m / p
		out, err := localMttkrpCOO(x, lo, hi, mats, mode, r)
		if err != nil {
			fail(err)
			return
		}
		if err := c.AllReduceSum(rank, out.Data); err != nil {
			errs[rank] = err
			return
		}
		partials[rank] = out
	})
	if err := distError(c, errs); err != nil {
		return nil, err
	}
	bytes1, msgs1 := c.Stats()

	res := &MttkrpResult{
		Out:          partials[0],
		CommBytes:    bytes1 - bytes0,
		CommMessages: msgs1 - msgs0,
	}
	res.ModeledCommSec = net.AllReduceTime(ValueBytes*int64(rows)*int64(r), p)
	return res, nil
}

// localMttkrpCOO computes one rank's partial over non-zeros [lo, hi).
// An empty shard (hi == lo, the m < p degenerate case) contributes a
// zero partial directly: the rank still has to join the allreduce, it
// just brings nothing to it.
func localMttkrpCOO(x *tensor.COO, lo, hi int, mats []*tensor.Matrix, mode, r int) (*tensor.Matrix, error) {
	if hi == lo {
		return tensor.NewMatrix(int(x.Dims[mode]), r), nil
	}
	local := &tensor.COO{Dims: x.Dims, Inds: shardInds(x, lo, hi), Vals: x.Vals[lo:hi]}
	plan, err := core.PrepareMttkrp(local, mode, r)
	if err != nil {
		return nil, err
	}
	return plan.ExecuteSeq(mats)
}

// distError reduces a distributed call's per-rank errors to the root
// cause: the aborting rank's *RankError when the communicator was
// aborted (peer ErrAborted unwinds are symptoms, not causes), otherwise
// the first per-rank error.
func distError(c *Comm, errs []error) error {
	if err := c.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shardInds returns per-mode index slices for non-zeros [lo, hi).
func shardInds(x *tensor.COO, lo, hi int) [][]tensor.Index {
	out := make([][]tensor.Index, x.Order())
	for n := range out {
		out[n] = x.Inds[n][lo:hi]
	}
	return out
}

// TtvResult carries a distributed Ttv's gathered output.
type TtvResult struct {
	// Out is the complete output tensor (gathered at rank 0's shard
	// order, which equals the fiber order of the sorted input).
	Out *tensor.COO
	// CommBytes and CommMessages are the measured gather traffic —
	// recorded by the communicator itself, so Comm.Stats() agrees.
	CommBytes    int64
	CommMessages int64
	// ModeledCommSec is the alpha-beta time of the gather.
	ModeledCommSec float64
}

// Ttv runs the mode-n Ttv over a communicator: fibers are partitioned
// contiguously (their outputs are disjoint), each rank reduces its
// fibers, and the value segments are gathered at rank 0 through the
// communicator — one accounted message per non-root, non-empty segment,
// so Comm.Stats() reports the traffic the alpha-beta model charges.
// (The seed code summed bytes into a local variable and never touched
// the communicator's counters: Stats() stayed zero after a Ttv and
// messages were never counted at all.)
func Ttv(c *Comm, net NetworkModel, x *tensor.COO, v tensor.Vector, mode int) (*TtvResult, error) {
	plan, err := core.PrepareTtv(x, mode)
	if err != nil {
		return nil, err
	}
	if len(v) != int(x.Dims[mode]) {
		return nil, fmt.Errorf("dist: vector length %d, want %d", len(v), x.Dims[mode])
	}
	mf := plan.NumFibers()
	p := c.Size()
	fptr := plan.Fptr
	kInd := plan.X.Inds[mode]
	xv := plan.X.Vals
	segLens := make([]int, p)
	gathered := make([][]tensor.Value, 0, p)
	errs := make([]error, p)
	bytes0, msgs0 := c.Stats()
	c.Run(func(rank int) {
		lo := rank * mf / p
		hi := (rank + 1) * mf / p
		segLens[rank] = hi - lo
		seg := make([]tensor.Value, hi-lo)
		for f := lo; f < hi; f++ {
			var acc tensor.Value
			for mIdx := fptr[f]; mIdx < fptr[f+1]; mIdx++ {
				acc += xv[mIdx] * v[kInd[mIdx]]
			}
			seg[f-lo] = acc
		}
		segs, err := c.Gather(rank, seg)
		if err != nil {
			errs[rank] = err
			return
		}
		if rank == 0 {
			gathered = segs
		}
	})
	if err := distError(c, errs); err != nil {
		return nil, err
	}
	bytes1, msgs1 := c.Stats()
	w := 0
	for _, seg := range gathered {
		copy(plan.Out.Vals[w:], seg)
		w += len(seg)
	}
	res := &TtvResult{
		Out:          plan.Out,
		CommBytes:    bytes1 - bytes0,
		CommMessages: msgs1 - msgs0,
	}
	res.ModeledCommSec = net.GatherTime(GatherVolume(segLens))
	return res, nil
}
