package dist

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/tensor"
)

// MttkrpResult carries a distributed Mttkrp's output and its measured
// communication, plus the alpha-beta modeled times.
type MttkrpResult struct {
	// Out is the reduced output matrix (identical on every rank).
	Out *tensor.Matrix
	// CommBytes and CommMessages are the measured allreduce traffic.
	CommBytes    int64
	CommMessages int64
	// ModeledCommSec is the alpha-beta time of the allreduce.
	ModeledCommSec float64
}

// Mttkrp runs the mode-n Mttkrp over a communicator: non-zeros are
// partitioned contiguously across ranks (the coarse-grained distribution
// of distributed CP-ALS), each rank computes a local partial Ã over its
// shard, and a ring allreduce combines the partials. The factor matrices
// are replicated, matching medium-scale distributed MTTKRP practice.
func Mttkrp(c *Comm, net NetworkModel, x *tensor.COO, mats []*tensor.Matrix, mode, r int) (*MttkrpResult, error) {
	if mode < 0 || mode >= x.Order() {
		return nil, fmt.Errorf("dist: mode %d out of range", mode)
	}
	rows := int(x.Dims[mode])
	m := x.NNZ()
	p := c.Size()

	// Per-rank shards as independent COO views (sharing index arrays).
	partials := make([]*tensor.Matrix, p)
	errs := make([]error, p)
	before, _ := c.Stats()
	c.Run(func(rank int) {
		lo := rank * m / p
		hi := (rank + 1) * m / p
		local := &tensor.COO{Dims: x.Dims, Inds: shardInds(x, lo, hi), Vals: x.Vals[lo:hi]}
		plan, err := core.PrepareMttkrp(local, mode, r)
		if err != nil {
			errs[rank] = err
			return
		}
		out, err := plan.ExecuteSeq(mats)
		if err != nil {
			errs[rank] = err
			return
		}
		partials[rank] = out
		c.AllReduceSum(rank, out.Data)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	after, msgs := c.Stats()

	res := &MttkrpResult{
		Out:          partials[0],
		CommBytes:    after - before,
		CommMessages: msgs,
	}
	res.ModeledCommSec = net.AllReduceTime(ValueBytes*int64(rows)*int64(r), p)
	return res, nil
}

// shardInds returns per-mode index slices for non-zeros [lo, hi).
func shardInds(x *tensor.COO, lo, hi int) [][]tensor.Index {
	out := make([][]tensor.Index, x.Order())
	for n := range out {
		out[n] = x.Inds[n][lo:hi]
	}
	return out
}

// TtvResult carries a distributed Ttv's gathered output.
type TtvResult struct {
	// Out is the complete output tensor (gathered at rank 0's shard
	// order, which equals the fiber order of the sorted input).
	Out *tensor.COO
	// CommBytes is the measured gather traffic.
	CommBytes int64
}

// Ttv runs the mode-n Ttv over a communicator: fibers are partitioned
// contiguously (their outputs are disjoint), each rank reduces its
// fibers, and the value segments are concatenated — modeled as a gather
// of 4·MF bytes to the root.
func Ttv(c *Comm, x *tensor.COO, v tensor.Vector, mode int) (*TtvResult, error) {
	plan, err := core.PrepareTtv(x, mode)
	if err != nil {
		return nil, err
	}
	if len(v) != int(x.Dims[mode]) {
		return nil, fmt.Errorf("dist: vector length %d, want %d", len(v), x.Dims[mode])
	}
	mf := plan.NumFibers()
	p := c.Size()
	segs := make([][]tensor.Value, p)
	fptr := plan.Fptr
	kInd := plan.X.Inds[mode]
	xv := plan.X.Vals
	c.Run(func(rank int) {
		lo := rank * mf / p
		hi := (rank + 1) * mf / p
		seg := make([]tensor.Value, hi-lo)
		for f := lo; f < hi; f++ {
			var acc tensor.Value
			for mIdx := fptr[f]; mIdx < fptr[f+1]; mIdx++ {
				acc += xv[mIdx] * v[kInd[mIdx]]
			}
			seg[f-lo] = acc
		}
		segs[rank] = seg
	})
	// Gather (accounted as communication from every non-root rank).
	var bytes int64
	w := 0
	for rank, seg := range segs {
		if rank != 0 {
			bytes += ValueBytes * int64(len(seg))
		}
		copy(plan.Out.Vals[w:], seg)
		w += len(seg)
	}
	return &TtvResult{Out: plan.Out, CommBytes: bytes}, nil
}
