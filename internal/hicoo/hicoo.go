package hicoo

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// DefaultBlockBits is log2 of the paper's block size B=128, chosen so a
// block of factor-matrix rows fits the last-level cache and element
// indices fit in 8 bits (§5.1.2).
const DefaultBlockBits = 7

// MaxBlockBits bounds the block size so element indices fit in a uint8.
const MaxBlockBits = 8

// HiCOO stores a sparse tensor as Morton-ordered sparse blocks of size
// B^N: per-block 32-bit block indices plus per-non-zero 8-bit element
// indices (Figure 2a of the paper).
type HiCOO struct {
	// Dims holds the size of each mode.
	Dims []tensor.Index
	// BlockBits is log2(B).
	BlockBits uint8
	// BPtr[b] is the first non-zero of block b; BPtr has NumBlocks+1
	// entries with the final sentinel equal to NNZ.
	BPtr []int64
	// BInds holds one block-index array per mode, each of length NumBlocks.
	BInds [][]tensor.Index
	// EInds holds one element-index array per mode, each of length NNZ.
	EInds [][]uint8
	// Vals holds the non-zero values in block order.
	Vals []tensor.Value
}

// Order returns the number of modes.
func (h *HiCOO) Order() int { return len(h.Dims) }

// NNZ returns the number of stored non-zeros.
func (h *HiCOO) NNZ() int { return len(h.Vals) }

// NumBlocks returns nb, the number of non-empty sparse blocks.
func (h *HiCOO) NumBlocks() int { return len(h.BPtr) - 1 }

// BlockSize returns B.
func (h *HiCOO) BlockSize() int { return 1 << h.BlockBits }

// Index reconstructs the full mode-n coordinate of non-zero x inside
// block b: (blockIndex << BlockBits) | elementIndex.
func (h *HiCOO) Index(n, b int, x int64) tensor.Index {
	return h.BInds[n][b]<<h.BlockBits | tensor.Index(h.EInds[n][x])
}

// StorageBytes returns the HiCOO footprint: 64-bit block pointers, 32-bit
// block indices per mode, 8-bit element indices per mode, and 32-bit
// values (the accounting of the HiCOO paper).
func (h *HiCOO) StorageBytes() int64 {
	nb := int64(h.NumBlocks())
	m := int64(h.NNZ())
	n := int64(h.Order())
	return 8*(nb+1) + 4*n*nb + 1*n*m + 4*m
}

// FromCOO converts a COO tensor to HiCOO with the given block bits
// (log2 B). The non-zeros are sorted by the Morton order of their block
// indices and, within each block, lexicographically by element index. The
// input is not modified. FromCOO panics if blockBits exceeds MaxBlockBits.
func FromCOO(t *tensor.COO, blockBits uint8) *HiCOO {
	if blockBits == 0 || blockBits > MaxBlockBits {
		panic(fmt.Sprintf("hicoo: blockBits %d outside [1,%d]", blockBits, MaxBlockBits))
	}
	order := t.Order()
	m := t.NNZ()
	mask := tensor.Index(1)<<blockBits - 1

	// Pre-compute block indices per non-zero.
	binds := make([][]tensor.Index, order)
	for n := 0; n < order; n++ {
		binds[n] = make([]tensor.Index, m)
		src := t.Inds[n]
		for x := 0; x < m; x++ {
			binds[n][x] = src[x] >> blockBits
		}
	}

	perm := make([]int32, m)
	for i := range perm {
		perm[i] = int32(i)
	}
	// The comparator must be pure (no shared scratch): the sort runs in
	// parallel.
	parallel.SortInt32s(perm, func(x, y int32) bool {
		switch mortonCompareAt(binds, int(x), int(y)) {
		case -1:
			return true
		case 1:
			return false
		}
		// Same block: order by element indices lexicographically.
		for n := 0; n < order; n++ {
			ea := t.Inds[n][x] & mask
			eb := t.Inds[n][y] & mask
			if ea != eb {
				return ea < eb
			}
		}
		return false
	})

	h := &HiCOO{
		Dims:      append([]tensor.Index(nil), t.Dims...),
		BlockBits: blockBits,
		BInds:     make([][]tensor.Index, order),
		EInds:     make([][]uint8, order),
		Vals:      make([]tensor.Value, m),
	}
	for n := 0; n < order; n++ {
		h.EInds[n] = make([]uint8, m)
		h.BInds[n] = make([]tensor.Index, 0, 16)
	}
	prev := make([]tensor.Index, order)
	for w, x := range perm {
		newBlock := w == 0
		for n := 0; n < order; n++ {
			if binds[n][x] != prev[n] {
				newBlock = true
			}
		}
		if newBlock {
			h.BPtr = append(h.BPtr, int64(w))
			for n := 0; n < order; n++ {
				h.BInds[n] = append(h.BInds[n], binds[n][x])
				prev[n] = binds[n][x]
			}
		}
		for n := 0; n < order; n++ {
			h.EInds[n][w] = uint8(t.Inds[n][x] & mask)
		}
		h.Vals[w] = t.Vals[x]
	}
	h.BPtr = append(h.BPtr, int64(m))
	return h
}

// ToCOO expands the HiCOO tensor back to coordinate format in block order.
func (h *HiCOO) ToCOO() *tensor.COO {
	out := tensor.NewCOO(h.Dims, h.NNZ())
	idx := make([]tensor.Index, h.Order())
	for b := 0; b < h.NumBlocks(); b++ {
		for x := h.BPtr[b]; x < h.BPtr[b+1]; x++ {
			for n := 0; n < h.Order(); n++ {
				idx[n] = h.Index(n, b, x)
			}
			out.Append(idx, h.Vals[x])
		}
	}
	return out
}

// Validate checks structural invariants: monotone block pointers, in-range
// block and element indices, and array length agreement.
func (h *HiCOO) Validate() error {
	order := h.Order()
	m := h.NNZ()
	nb := h.NumBlocks()
	if nb < 0 {
		return fmt.Errorf("hicoo: empty block pointer array")
	}
	if h.BPtr[0] != 0 || h.BPtr[nb] != int64(m) {
		return fmt.Errorf("hicoo: block pointers must span [0,%d], got [%d,%d]", m, h.BPtr[0], h.BPtr[nb])
	}
	for b := 0; b < nb; b++ {
		if h.BPtr[b+1] <= h.BPtr[b] {
			return fmt.Errorf("hicoo: block %d is empty or pointers not increasing", b)
		}
	}
	for n := 0; n < order; n++ {
		if len(h.BInds[n]) != nb {
			return fmt.Errorf("hicoo: mode %d has %d block indices, want %d", n, len(h.BInds[n]), nb)
		}
		if len(h.EInds[n]) != m {
			return fmt.Errorf("hicoo: mode %d has %d element indices, want %d", n, len(h.EInds[n]), m)
		}
	}
	for b := 0; b < nb; b++ {
		for x := h.BPtr[b]; x < h.BPtr[b+1]; x++ {
			for n := 0; n < order; n++ {
				if int(h.EInds[n][x]) >= h.BlockSize() {
					return fmt.Errorf("hicoo: element index %d exceeds block size %d", h.EInds[n][x], h.BlockSize())
				}
				if i := h.Index(n, b, x); i >= h.Dims[n] {
					return fmt.Errorf("hicoo: reconstructed index %d out of range [0,%d) in mode %d", i, h.Dims[n], n)
				}
			}
		}
	}
	return nil
}

// Stats summarizes block occupancy, the quantity that decides whether
// HiCOO compresses well (dense-ish blocks) or degrades to worse-than-COO
// on hyper-sparse tensors (mostly single-non-zero blocks, §3.3).
type Stats struct {
	NumBlocks        int
	NNZ              int
	MeanNNZPerBlock  float64
	MaxNNZPerBlock   int
	SingletonBlocks  int // blocks holding exactly one non-zero
	StorageBytes     int64
	COOBytes         int64
	CompressionVsCOO float64 // COOBytes / StorageBytes; >1 means HiCOO smaller
}

// ComputeStats measures block occupancy and storage.
func (h *HiCOO) ComputeStats() Stats {
	st := Stats{
		NumBlocks:    h.NumBlocks(),
		NNZ:          h.NNZ(),
		StorageBytes: h.StorageBytes(),
		COOBytes:     int64(4*(h.Order()+1)) * int64(h.NNZ()),
	}
	if st.NumBlocks > 0 {
		st.MeanNNZPerBlock = float64(st.NNZ) / float64(st.NumBlocks)
	}
	for b := 0; b < h.NumBlocks(); b++ {
		l := int(h.BPtr[b+1] - h.BPtr[b])
		if l > st.MaxNNZPerBlock {
			st.MaxNNZPerBlock = l
		}
		if l == 1 {
			st.SingletonBlocks++
		}
	}
	if st.StorageBytes > 0 {
		st.CompressionVsCOO = float64(st.COOBytes) / float64(st.StorageBytes)
	}
	return st
}

func (h *HiCOO) String() string {
	return fmt.Sprintf("HiCOO(order=%d dims=%v nnz=%d blocks=%d B=%d)",
		h.Order(), h.Dims, h.NNZ(), h.NumBlocks(), h.BlockSize())
}
