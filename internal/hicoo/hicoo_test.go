package hicoo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func randomTensor(seed int64, order, maxDim, nnz int) *tensor.COO {
	rng := rand.New(rand.NewSource(seed))
	dims := make([]tensor.Index, order)
	for n := range dims {
		dims[n] = tensor.Index(rng.Intn(maxDim) + 1)
	}
	return tensor.RandomCOO(dims, nnz, rng)
}

func TestMortonLessAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		order := rng.Intn(3) + 2
		a := make([]tensor.Index, order)
		b := make([]tensor.Index, order)
		for n := 0; n < order; n++ {
			a[n] = tensor.Index(rng.Intn(1 << 12))
			b[n] = tensor.Index(rng.Intn(1 << 12))
		}
		got := MortonLess(a, b)
		// Reference: compare interleaved bit strings lexicographically.
		ab, bb := MortonEncodeBits(a), MortonEncodeBits(b)
		want := false
		for i := range ab {
			if ab[i] != bb[i] {
				want = ab[i] < bb[i]
				break
			}
		}
		if got != want {
			t.Fatalf("MortonLess(%v,%v) = %v, want %v", a, b, got, want)
		}
	}
}

func TestMortonLessIrreflexive(t *testing.T) {
	a := []tensor.Index{5, 9, 1023}
	if MortonLess(a, a) {
		t.Fatal("MortonLess(a,a) must be false")
	}
}

func TestFromCOORoundTrip(t *testing.T) {
	x := randomTensor(2, 3, 300, 500)
	h := FromCOO(x, DefaultBlockBits)
	if err := h.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if h.NNZ() != x.NNZ() {
		t.Fatalf("NNZ = %d, want %d", h.NNZ(), x.NNZ())
	}
	y := h.ToCOO()
	if d := tensor.AbsDiff(x, y); d != 0 {
		t.Fatalf("roundtrip diff %v", d)
	}
}

func TestFromCOORoundTripProperty(t *testing.T) {
	f := func(seed int64, orderRaw, bitsRaw uint8) bool {
		order := int(orderRaw)%3 + 2 // 2..4
		bits := uint8(bitsRaw)%MaxBlockBits + 1
		x := randomTensor(seed, order, 100, 200)
		h := FromCOO(x, bits)
		if h.Validate() != nil {
			return false
		}
		return tensor.AbsDiff(x, h.ToCOO()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFromCOOMortonBlockOrder(t *testing.T) {
	x := randomTensor(3, 3, 1000, 400)
	h := FromCOO(x, 7)
	bi := make([]tensor.Index, h.Order())
	bj := make([]tensor.Index, h.Order())
	for b := 1; b < h.NumBlocks(); b++ {
		for n := 0; n < h.Order(); n++ {
			bi[n] = h.BInds[n][b-1]
			bj[n] = h.BInds[n][b]
		}
		if MortonLess(bj, bi) {
			t.Fatalf("blocks %d,%d out of Morton order", b-1, b)
		}
		if !MortonLess(bi, bj) && !MortonLess(bj, bi) {
			t.Fatalf("duplicate block at %d", b)
		}
	}
}

func TestFromCOOBadBlockBitsPanics(t *testing.T) {
	x := randomTensor(4, 3, 10, 10)
	for _, bits := range []uint8{0, 9, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bits=%d: expected panic", bits)
				}
			}()
			FromCOO(x, bits)
		}()
	}
}

func TestHiCOOStorageSmallerOnClustered(t *testing.T) {
	// A dense-ish cube: many non-zeros share blocks, HiCOO must compress.
	rng := rand.New(rand.NewSource(9))
	x := tensor.RandomCOO([]tensor.Index{64, 64, 64}, 30000, rng)
	h := FromCOO(x, 7)
	st := h.ComputeStats()
	if st.CompressionVsCOO <= 1 {
		t.Fatalf("expected compression > 1 on clustered tensor, got %v (blocks=%d nnz=%d)",
			st.CompressionVsCOO, st.NumBlocks, st.NNZ)
	}
}

func TestHiCOOStorageWorseOnHyperSparse(t *testing.T) {
	// Hyper-sparse: nearly every block holds one non-zero, so HiCOO's
	// block overhead makes it larger than COO (the motivation for gHiCOO).
	rng := rand.New(rand.NewSource(10))
	x := tensor.RandomCOO([]tensor.Index{1 << 20, 1 << 20, 1 << 20}, 2000, rng)
	h := FromCOO(x, 7)
	st := h.ComputeStats()
	if st.SingletonBlocks < st.NumBlocks*9/10 {
		t.Fatalf("expected mostly singleton blocks, got %d/%d", st.SingletonBlocks, st.NumBlocks)
	}
	if st.CompressionVsCOO >= 1 {
		t.Fatalf("expected HiCOO larger than COO on hyper-sparse tensor, ratio %v", st.CompressionVsCOO)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	x := randomTensor(11, 3, 50, 100)
	h := FromCOO(x, 5)
	h.EInds[0][0] = 200 // exceeds block size 32
	if err := h.Validate(); err == nil {
		t.Fatal("Validate accepted oversized element index")
	}
}

func TestHiCOOIndexReconstruction(t *testing.T) {
	x := tensor.NewCOO([]tensor.Index{300, 300, 300}, 2)
	x.AppendIdx3(130, 5, 299, 1.5)
	x.AppendIdx3(0, 255, 128, 2.5)
	h := FromCOO(x, 7) // B=128
	found := 0
	for b := 0; b < h.NumBlocks(); b++ {
		for e := h.BPtr[b]; e < h.BPtr[b+1]; e++ {
			i := h.Index(0, b, e)
			j := h.Index(1, b, e)
			k := h.Index(2, b, e)
			if i == 130 && j == 5 && k == 299 && h.Vals[e] == 1.5 {
				found++
			}
			if i == 0 && j == 255 && k == 128 && h.Vals[e] == 2.5 {
				found++
			}
		}
	}
	if found != 2 {
		t.Fatalf("reconstructed %d/2 entries", found)
	}
}
