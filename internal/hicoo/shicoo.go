package hicoo

import (
	"fmt"

	"repro/internal/tensor"
)

// SemiHiCOO is the sHiCOO variant introduced by this paper (Figure 2c): a
// semi-sparse tensor whose sparse modes are compressed HiCOO-style (block
// + 8-bit element indices over fibers) while the dense modes are stored as
// dense value blocks per fiber. The HiCOO-Ttm kernel emits its output in
// this format.
type SemiHiCOO struct {
	// Dims holds the size of every mode, dense ones included.
	Dims []tensor.Index
	// DenseModes lists the dense modes in ascending order.
	DenseModes []int
	// BlockBits is log2(B) for the sparse modes.
	BlockBits uint8
	// BPtr[b] is the first fiber of block b (NumBlocks+1 entries).
	BPtr []int64
	// BInds holds one block-index array per sparse mode (length NumBlocks).
	BInds [][]tensor.Index
	// EInds holds one element-index array per sparse mode (length
	// NumFibers).
	EInds [][]uint8
	// Vals holds NumFibers × DenseSize values, fiber-major.
	Vals []tensor.Value
}

// Order returns the number of modes, dense ones included.
func (s *SemiHiCOO) Order() int { return len(s.Dims) }

// NumBlocks returns the number of non-empty sparse blocks.
func (s *SemiHiCOO) NumBlocks() int { return len(s.BPtr) - 1 }

// NumFibers returns the number of stored fibers.
func (s *SemiHiCOO) NumFibers() int {
	if len(s.EInds) > 0 {
		return len(s.EInds[0])
	}
	ds := s.DenseSize()
	if ds == 0 {
		return 0
	}
	return len(s.Vals) / ds
}

// DenseSize returns the number of values stored per fiber.
func (s *SemiHiCOO) DenseSize() int {
	p := 1
	for _, n := range s.DenseModes {
		p *= int(s.Dims[n])
	}
	return p
}

// SparseModes returns the sparse modes in ascending order.
func (s *SemiHiCOO) SparseModes() []int {
	out := make([]int, 0, s.Order()-len(s.DenseModes))
	d := 0
	for n := 0; n < s.Order(); n++ {
		if d < len(s.DenseModes) && s.DenseModes[d] == n {
			d++
			continue
		}
		out = append(out, n)
	}
	return out
}

// SparseIndex reconstructs the coordinate of sparse-mode slot si for fiber
// f inside block b.
func (s *SemiHiCOO) SparseIndex(si, b int, f int64) tensor.Index {
	return s.BInds[si][b]<<s.BlockBits | tensor.Index(s.EInds[si][f])
}

// FiberVals returns a slice aliasing the dense values of fiber f.
func (s *SemiHiCOO) FiberVals(f int) []tensor.Value {
	ds := s.DenseSize()
	return s.Vals[f*ds : (f+1)*ds]
}

// StorageBytes returns the sHiCOO footprint.
func (s *SemiHiCOO) StorageBytes() int64 {
	nb := int64(s.NumBlocks())
	nf := int64(s.NumFibers())
	ns := int64(len(s.BInds))
	return 8*(nb+1) + 4*ns*nb + 1*ns*nf + 4*int64(len(s.Vals))
}

// ToSemiCOO expands to the sCOO representation (same dense layout, full
// 32-bit sparse indices), mainly for comparison against the COO kernels.
func (s *SemiHiCOO) ToSemiCOO() *tensor.SemiCOO {
	out := tensor.NewSemiCOO(s.Dims, s.DenseModes, s.NumFibers())
	sparseIdx := make([]tensor.Index, len(s.BInds))
	for b := 0; b < s.NumBlocks(); b++ {
		for f := s.BPtr[b]; f < s.BPtr[b+1]; f++ {
			for si := range s.BInds {
				sparseIdx[si] = s.SparseIndex(si, b, f)
			}
			fi := out.AppendFiber(sparseIdx)
			copy(out.FiberVals(fi), s.FiberVals(int(f)))
		}
	}
	return out
}

// Validate checks structural invariants.
func (s *SemiHiCOO) Validate() error {
	nf := s.NumFibers()
	nb := s.NumBlocks()
	ns := s.Order() - len(s.DenseModes)
	if len(s.BInds) != ns || len(s.EInds) != ns {
		return fmt.Errorf("hicoo: sHiCOO has %d/%d sparse arrays, want %d", len(s.BInds), len(s.EInds), ns)
	}
	if nb < 0 || s.BPtr[0] != 0 || s.BPtr[nb] != int64(nf) {
		return fmt.Errorf("hicoo: sHiCOO block pointers malformed")
	}
	if len(s.Vals) != nf*s.DenseSize() {
		return fmt.Errorf("hicoo: sHiCOO has %d values, want %d", len(s.Vals), nf*s.DenseSize())
	}
	sparse := s.SparseModes()
	for b := 0; b < nb; b++ {
		for f := s.BPtr[b]; f < s.BPtr[b+1]; f++ {
			for si, n := range sparse {
				if i := s.SparseIndex(si, b, f); i >= s.Dims[n] {
					return fmt.Errorf("hicoo: sHiCOO index %d out of range in mode %d", i, n)
				}
			}
		}
	}
	return nil
}

func (s *SemiHiCOO) String() string {
	return fmt.Sprintf("sHiCOO(order=%d dims=%v dense=%v fibers=%d blocks=%d B=%d)",
		s.Order(), s.Dims, s.DenseModes, s.NumFibers(), s.NumBlocks(), 1<<s.BlockBits)
}
