package hicoo

import (
	"fmt"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

// GHiCOO is the generalized HiCOO variant introduced by this paper
// (Figure 2b): a chosen subset of modes is compressed into HiCOO-style
// block + element indices, while the remaining modes keep plain 32-bit COO
// indices. Leaving the product mode uncompressed lets Ttv and Ttm bypass
// the blocking structure (no data race between blocks) and also rescues
// hyper-sparse tensors where full HiCOO degrades to singleton blocks.
type GHiCOO struct {
	// Dims holds the size of every mode.
	Dims []tensor.Index
	// CompModes lists the compressed modes in ascending order.
	CompModes []int
	// BlockBits is log2(B) for the compressed modes.
	BlockBits uint8
	// BPtr[b] is the first non-zero of block b (NumBlocks+1 entries).
	BPtr []int64
	// BInds holds one block-index array per compressed mode (length
	// NumBlocks each).
	BInds [][]tensor.Index
	// EInds holds one element-index array per compressed mode (length NNZ).
	EInds [][]uint8
	// UInds holds one full 32-bit index array per uncompressed mode
	// (length NNZ), in ascending mode order.
	UInds [][]tensor.Index
	// Vals holds the non-zero values.
	Vals []tensor.Value
}

// Order returns the number of modes.
func (g *GHiCOO) Order() int { return len(g.Dims) }

// NNZ returns the number of stored non-zeros.
func (g *GHiCOO) NNZ() int { return len(g.Vals) }

// NumBlocks returns the number of non-empty compressed blocks.
func (g *GHiCOO) NumBlocks() int { return len(g.BPtr) - 1 }

// BlockSize returns B.
func (g *GHiCOO) BlockSize() int { return 1 << g.BlockBits }

// UncompModes returns the uncompressed modes in ascending order.
func (g *GHiCOO) UncompModes() []int {
	out := make([]int, 0, g.Order()-len(g.CompModes))
	c := 0
	for n := 0; n < g.Order(); n++ {
		if c < len(g.CompModes) && g.CompModes[c] == n {
			c++
			continue
		}
		out = append(out, n)
	}
	return out
}

// CompIndex reconstructs the coordinate of compressed mode slot ci (an
// index into CompModes) for non-zero x inside block b.
func (g *GHiCOO) CompIndex(ci, b int, x int64) tensor.Index {
	return g.BInds[ci][b]<<g.BlockBits | tensor.Index(g.EInds[ci][x])
}

// StorageBytes returns the gHiCOO footprint: block pointers, compressed
// block + element indices, full indices for uncompressed modes, values.
func (g *GHiCOO) StorageBytes() int64 {
	nb := int64(g.NumBlocks())
	m := int64(g.NNZ())
	nc := int64(len(g.CompModes))
	nu := int64(len(g.UInds))
	return 8*(nb+1) + 4*nc*nb + 1*nc*m + 4*nu*m + 4*m
}

// FromCOOModes converts a COO tensor to gHiCOO, compressing exactly the
// modes listed in compModes (ascending). Non-zeros are ordered by Morton
// order of the compressed block indices, then lexicographically by the
// compressed element indices, then by the uncompressed indices — so for a
// single uncompressed mode the mode-n fibers are contiguous and sorted,
// exactly what the Ttv/Ttm kernels need.
func FromCOOModes(t *tensor.COO, compModes []int, blockBits uint8) *GHiCOO {
	if blockBits == 0 || blockBits > MaxBlockBits {
		panic(fmt.Sprintf("hicoo: blockBits %d outside [1,%d]", blockBits, MaxBlockBits))
	}
	for i := 1; i < len(compModes); i++ {
		if compModes[i] <= compModes[i-1] {
			panic("hicoo: compModes must be strictly ascending")
		}
	}
	if len(compModes) == 0 {
		panic("hicoo: FromCOOModes needs at least one compressed mode")
	}
	m := t.NNZ()
	mask := tensor.Index(1)<<blockBits - 1

	g := &GHiCOO{
		Dims:      append([]tensor.Index(nil), t.Dims...),
		CompModes: append([]int(nil), compModes...),
		BlockBits: blockBits,
	}
	uncomp := g.UncompModes()

	// Per-non-zero block indices of the compressed modes.
	binds := make([][]tensor.Index, len(compModes))
	for ci, n := range compModes {
		binds[ci] = make([]tensor.Index, m)
		src := t.Inds[n]
		for x := 0; x < m; x++ {
			binds[ci][x] = src[x] >> blockBits
		}
	}

	perm := make([]int32, m)
	for i := range perm {
		perm[i] = int32(i)
	}
	parallel.SortInt32s(perm, func(x, y int32) bool {
		switch mortonCompareAt(binds, int(x), int(y)) {
		case -1:
			return true
		case 1:
			return false
		}
		for _, n := range compModes {
			ea := t.Inds[n][x] & mask
			eb := t.Inds[n][y] & mask
			if ea != eb {
				return ea < eb
			}
		}
		for _, n := range uncomp {
			ia := t.Inds[n][x]
			ib := t.Inds[n][y]
			if ia != ib {
				return ia < ib
			}
		}
		return false
	})

	g.BInds = make([][]tensor.Index, len(compModes))
	g.EInds = make([][]uint8, len(compModes))
	for ci := range compModes {
		g.EInds[ci] = make([]uint8, m)
		g.BInds[ci] = make([]tensor.Index, 0, 16)
	}
	g.UInds = make([][]tensor.Index, len(uncomp))
	for ui := range uncomp {
		g.UInds[ui] = make([]tensor.Index, m)
	}
	g.Vals = make([]tensor.Value, m)

	prev := make([]tensor.Index, len(compModes))
	for w, x := range perm {
		newBlock := w == 0
		for ci := range compModes {
			if binds[ci][x] != prev[ci] {
				newBlock = true
			}
		}
		if newBlock {
			g.BPtr = append(g.BPtr, int64(w))
			for ci := range compModes {
				g.BInds[ci] = append(g.BInds[ci], binds[ci][x])
				prev[ci] = binds[ci][x]
			}
		}
		for ci, n := range compModes {
			g.EInds[ci][w] = uint8(t.Inds[n][x] & mask)
		}
		for ui, n := range uncomp {
			g.UInds[ui][w] = t.Inds[n][x]
		}
		g.Vals[w] = t.Vals[x]
	}
	g.BPtr = append(g.BPtr, int64(m))
	return g
}

// FromCOOExceptMode converts to gHiCOO compressing every mode except mode
// n — the configuration the HiCOO-Ttv and HiCOO-Ttm kernels use.
func FromCOOExceptMode(t *tensor.COO, n int, blockBits uint8) *GHiCOO {
	comp := make([]int, 0, t.Order()-1)
	for mo := 0; mo < t.Order(); mo++ {
		if mo != n {
			comp = append(comp, mo)
		}
	}
	return FromCOOModes(t, comp, blockBits)
}

// FiberPointers returns the start offsets of the fibers along the single
// uncompressed mode (runs of non-zeros agreeing on every compressed
// coordinate), plus a parallel array mapping each fiber to its block.
// It panics unless exactly one mode is uncompressed.
func (g *GHiCOO) FiberPointers() (fptr []int64, fiberBlock []int32) {
	if len(g.UInds) != 1 {
		panic("hicoo: FiberPointers requires exactly one uncompressed mode")
	}
	nc := len(g.CompModes)
	for b := 0; b < g.NumBlocks(); b++ {
		for x := g.BPtr[b]; x < g.BPtr[b+1]; x++ {
			if x == g.BPtr[b] {
				fptr = append(fptr, x)
				fiberBlock = append(fiberBlock, int32(b))
				continue
			}
			same := true
			for ci := 0; ci < nc; ci++ {
				if g.EInds[ci][x] != g.EInds[ci][x-1] {
					same = false
					break
				}
			}
			if !same {
				fptr = append(fptr, x)
				fiberBlock = append(fiberBlock, int32(b))
			}
		}
	}
	fptr = append(fptr, int64(g.NNZ()))
	return fptr, fiberBlock
}

// ToCOO expands the gHiCOO tensor back to coordinate format.
func (g *GHiCOO) ToCOO() *tensor.COO {
	out := tensor.NewCOO(g.Dims, g.NNZ())
	uncomp := g.UncompModes()
	idx := make([]tensor.Index, g.Order())
	for b := 0; b < g.NumBlocks(); b++ {
		for x := g.BPtr[b]; x < g.BPtr[b+1]; x++ {
			for ci, n := range g.CompModes {
				idx[n] = g.CompIndex(ci, b, x)
			}
			for ui, n := range uncomp {
				idx[n] = g.UInds[ui][x]
			}
			out.Append(idx, g.Vals[x])
		}
	}
	return out
}

// Validate checks structural invariants.
func (g *GHiCOO) Validate() error {
	m := g.NNZ()
	nb := g.NumBlocks()
	if nb < 0 || g.BPtr[0] != 0 || g.BPtr[nb] != int64(m) {
		return fmt.Errorf("hicoo: gHiCOO block pointers malformed")
	}
	for ci, n := range g.CompModes {
		if len(g.BInds[ci]) != nb || len(g.EInds[ci]) != m {
			return fmt.Errorf("hicoo: gHiCOO compressed mode %d array lengths wrong", n)
		}
	}
	uncomp := g.UncompModes()
	if len(g.UInds) != len(uncomp) {
		return fmt.Errorf("hicoo: gHiCOO has %d uncompressed arrays, want %d", len(g.UInds), len(uncomp))
	}
	for b := 0; b < nb; b++ {
		for x := g.BPtr[b]; x < g.BPtr[b+1]; x++ {
			for ci, n := range g.CompModes {
				if i := g.CompIndex(ci, b, x); i >= g.Dims[n] {
					return fmt.Errorf("hicoo: gHiCOO index %d out of range in mode %d", i, n)
				}
			}
			for ui, n := range uncomp {
				if i := g.UInds[ui][x]; i >= g.Dims[n] {
					return fmt.Errorf("hicoo: gHiCOO index %d out of range in mode %d", i, n)
				}
			}
		}
	}
	return nil
}

func (g *GHiCOO) String() string {
	return fmt.Sprintf("gHiCOO(order=%d dims=%v nnz=%d blocks=%d comp=%v B=%d)",
		g.Order(), g.Dims, g.NNZ(), g.NumBlocks(), g.CompModes, g.BlockSize())
}
