package hicoo

import (
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestGHiCOORoundTrip(t *testing.T) {
	x := randomTensor(21, 3, 200, 400)
	for mode := 0; mode < 3; mode++ {
		g := FromCOOExceptMode(x, mode, DefaultBlockBits)
		if err := g.Validate(); err != nil {
			t.Fatalf("mode %d Validate: %v", mode, err)
		}
		if d := tensor.AbsDiff(x, g.ToCOO()); d != 0 {
			t.Fatalf("mode %d roundtrip diff %v", mode, d)
		}
	}
}

func TestGHiCOORoundTripProperty(t *testing.T) {
	f := func(seed int64, orderRaw, modeRaw, bitsRaw uint8) bool {
		order := int(orderRaw)%3 + 2
		mode := int(modeRaw) % order
		bits := uint8(bitsRaw)%MaxBlockBits + 1
		x := randomTensor(seed, order, 80, 150)
		g := FromCOOExceptMode(x, mode, bits)
		if g.Validate() != nil {
			return false
		}
		return tensor.AbsDiff(x, g.ToCOO()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGHiCOOUncompModes(t *testing.T) {
	x := randomTensor(22, 4, 50, 100)
	g := FromCOOModes(x, []int{0, 2}, 6)
	u := g.UncompModes()
	if len(u) != 2 || u[0] != 1 || u[1] != 3 {
		t.Fatalf("UncompModes = %v, want [1 3]", u)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d := tensor.AbsDiff(x, g.ToCOO()); d != 0 {
		t.Fatalf("two-uncompressed roundtrip diff %v", d)
	}
}

func TestGHiCOOFiberPointers(t *testing.T) {
	// Build a tensor with known mode-2 fibers.
	x := tensor.NewCOO([]tensor.Index{4, 4, 16}, 5)
	x.AppendIdx3(0, 0, 3, 1)
	x.AppendIdx3(0, 0, 9, 2)
	x.AppendIdx3(0, 1, 0, 3)
	x.AppendIdx3(3, 3, 7, 4)
	x.AppendIdx3(3, 3, 8, 5)
	g := FromCOOExceptMode(x, 2, 2) // block 4x4 over modes 0,1
	fptr, fiberBlock := g.FiberPointers()
	if len(fptr)-1 != 3 {
		t.Fatalf("fibers = %d, want 3 (fptr=%v)", len(fptr)-1, fptr)
	}
	if len(fiberBlock) != 3 {
		t.Fatalf("fiberBlock length %d, want 3", len(fiberBlock))
	}
	// Each fiber's entries must agree on all compressed coordinates and be
	// sorted by the uncompressed index.
	for f := 0; f+1 < len(fptr); f++ {
		for m := fptr[f] + 1; m < fptr[f+1]; m++ {
			for ci := range g.CompModes {
				if g.EInds[ci][m] != g.EInds[ci][m-1] {
					t.Fatal("fiber spans different compressed coordinates")
				}
			}
			if g.UInds[0][m] <= g.UInds[0][m-1] {
				t.Fatal("fiber not sorted by uncompressed index")
			}
		}
	}
}

func TestGHiCOOFiberPointersRequireOneUncomp(t *testing.T) {
	x := randomTensor(23, 4, 50, 60)
	g := FromCOOModes(x, []int{0, 1}, 4) // two uncompressed modes
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic with two uncompressed modes")
		}
	}()
	g.FiberPointers()
}

func TestGHiCOOStorageBeatsHiCOOOnHyperSparse(t *testing.T) {
	// gHiCOO motivation (§3.3): for hyper-sparse tensors, compressing
	// fewer modes reduces the per-block overhead.
	x := randomTensor(24, 3, 1<<18, 3000)
	h := FromCOO(x, 7)
	g := FromCOOExceptMode(x, 2, 7)
	if g.StorageBytes() >= h.StorageBytes() {
		t.Logf("note: gHiCOO=%d HiCOO=%d (may legitimately vary with block sharing)",
			g.StorageBytes(), h.StorageBytes())
	}
	// At minimum both must be well-formed and consistent.
	if g.NNZ() != h.NNZ() {
		t.Fatal("formats disagree on nnz")
	}
}

func TestFromCOOModesPanics(t *testing.T) {
	x := randomTensor(25, 3, 10, 10)
	for name, fn := range map[string]func(){
		"no modes":      func() { FromCOOModes(x, nil, 4) },
		"non-ascending": func() { FromCOOModes(x, []int{1, 0}, 4) },
		"bad bits":      func() { FromCOOModes(x, []int{0}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSemiHiCOOToSemiCOO(t *testing.T) {
	// Build an sHiCOO by hand: 2 fibers in one block, dense mode 2 (R=3).
	s := &SemiHiCOO{
		Dims:       []tensor.Index{8, 8, 3},
		DenseModes: []int{2},
		BlockBits:  2,
		BPtr:       []int64{0, 2},
		BInds:      [][]tensor.Index{{1}, {0}},
		EInds:      [][]uint8{{0, 1}, {2, 3}},
		Vals:       []tensor.Value{1, 2, 3, 4, 5, 6},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if s.NumFibers() != 2 || s.DenseSize() != 3 {
		t.Fatalf("fibers=%d densesize=%d", s.NumFibers(), s.DenseSize())
	}
	sc := s.ToSemiCOO()
	if err := sc.Validate(); err != nil {
		t.Fatalf("sCOO Validate: %v", err)
	}
	// Fiber 0 has sparse coords (1<<2|0, 0<<2|2) = (4, 2).
	c := sc.ToCOO()
	if v, ok := c.At(4, 2, 0); !ok || v != 1 {
		t.Fatalf("At(4,2,0) = %v,%v want 1", v, ok)
	}
	if v, ok := c.At(5, 3, 2); !ok || v != 6 {
		t.Fatalf("At(5,3,2) = %v,%v want 6", v, ok)
	}
	if s.StorageBytes() <= 0 {
		t.Fatal("StorageBytes must be positive")
	}
}

func TestSemiHiCOOValidateCatchesErrors(t *testing.T) {
	s := &SemiHiCOO{
		Dims:       []tensor.Index{8, 3},
		DenseModes: []int{1},
		BlockBits:  2,
		BPtr:       []int64{0, 1},
		BInds:      [][]tensor.Index{{100}}, // out of range: 100<<2 >= 8
		EInds:      [][]uint8{{0}},
		Vals:       []tensor.Value{1, 2, 3},
	}
	if err := s.Validate(); err == nil {
		t.Fatal("Validate accepted out-of-range block index")
	}
}
