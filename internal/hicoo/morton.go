// Package hicoo implements the Hierarchical COOrdinate (HiCOO) sparse
// tensor format of Li et al. (SC'18) and the two variants this benchmark
// paper introduces: gHiCOO (per-mode selective compression) and sHiCOO
// (semi-sparse tensors with dense modes). Tensor indices are compressed in
// units of B×…×B sparse blocks: block indices keep 32 bits while element
// indices within a block need only 8 bits, and blocks are laid out in
// Morton (Z-curve) order to improve locality.
package hicoo

import "repro/internal/tensor"

// MortonLess reports whether block-index tuple a precedes b on the
// N-dimensional Morton (Z-order) curve, i.e. when their coordinate bits
// are interleaved mode-major. It uses Chan's most-significant-differing-
// bit comparison, avoiding explicit interleaving (which would need 128
// bits for a 4th-order tensor).
func MortonLess(a, b []tensor.Index) bool {
	msd := 0
	var x tensor.Index
	for n := range a {
		y := a[n] ^ b[n]
		if lessMSB(x, y) {
			msd = n
			x = y
		}
	}
	return a[msd] < b[msd]
}

// lessMSB reports whether the most significant set bit of x is strictly
// below that of y (treating 0 as having no set bit).
func lessMSB(x, y tensor.Index) bool {
	return x < y && x < x^y
}

// mortonCompareAt compares the Morton order of the block tuples of
// non-zeros x and y drawn column-wise from binds (one array per mode),
// returning -1, 0, or +1. It is MortonLess without materializing the
// tuples, so comparators built on it are pure and safe for parallel
// sorting.
func mortonCompareAt(binds [][]tensor.Index, x, y int) int {
	msd := 0
	var best tensor.Index
	equal := true
	for n := range binds {
		d := binds[n][x] ^ binds[n][y]
		if d != 0 {
			equal = false
		}
		if lessMSB(best, d) {
			msd = n
			best = d
		}
	}
	if equal {
		return 0
	}
	if binds[msd][x] < binds[msd][y] {
		return -1
	}
	return 1
}

// MortonEncodeBits returns the bit-interleaved Morton key of idx as a
// big-endian bit slice (one byte per bit, value 0 or 1): bit 31 of mode 0,
// bit 31 of mode 1, …, bit 0 of mode N-1. It exists as an independently
// verifiable reference for MortonLess and for tests; production code uses
// the comparison form.
func MortonEncodeBits(idx []tensor.Index) []byte {
	bits := make([]byte, 0, 32*len(idx))
	for b := 31; b >= 0; b-- {
		for n := range idx {
			bits = append(bits, byte((idx[n]>>uint(b))&1))
		}
	}
	return bits
}
