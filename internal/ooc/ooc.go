// Package ooc is the out-of-core streaming execution layer: it runs
// the reduction kernels (MTTKRP, Ttv) over a PSTB v3 tile stream under
// a hard byte budget, so tensors larger than memory — the scenario the
// in-core stack must reject — still execute, just slower.
//
// The design follows the out-of-memory MTTKRP literature (see
// PAPERS.md, arXiv:2201.12523): the tensor is partitioned into tiles
// on disk, tiles are leased against a byte budget with govern-style
// accounting, and a double-buffered prefetch pipeline overlaps the
// next tile's read + decode with the current tile's compute. Dense
// operands (factor matrices, vectors) and the kernel output are
// in-core working state charged to the caller; the budget governs the
// tensor-resident bytes, which is what scales with the dataset.
//
// Determinism: with Options.Deterministic the per-tile compute is
// serial and accumulates in file order. Because tiles partition the
// naturally sorted tensor, the floating-point addition order is
// identical to a serial in-core execution over the same sorted data,
// so streamed outputs are bit-exact against the in-core serial kernels
// — the property the CI smoke job asserts. The parallel mode trades
// that for speed and verifies within the suite tolerance like every
// other parallel variant.
//
// Every run feeds the shared obs registry: ooc.tiles, ooc.bytes_read,
// ooc.prefetch_hits, ooc.prefetch_stalls, and ooc.evictions surface in
// the pastad /metrics scrape as pasta_ooc_*.
package ooc

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

var (
	ctrTiles          = obs.GetCounter("ooc.tiles")
	ctrBytesRead      = obs.GetCounter("ooc.bytes_read")
	ctrPrefetchHits   = obs.GetCounter("ooc.prefetch_hits")
	ctrPrefetchStalls = obs.GetCounter("ooc.prefetch_stalls")
	ctrEvictions      = obs.GetCounter("ooc.evictions")
)

// DefaultBudget is the tile-residency budget when Options.MemBudget is
// zero: 64 MiB, comfortably eight default-size tiles.
const DefaultBudget = 64 << 20

// ErrBudgetTooSmall marks a budget that cannot hold even one tile
// resident; no amount of eviction can make the stream fit, so it fails
// fast like govern.ErrOverBudget.
var ErrBudgetTooSmall = errors.New("ooc: memory budget below a single tile's working set")

// Options configures a streaming execution.
type Options struct {
	// MemBudget is the hard byte budget for tile-resident bytes (raw +
	// decoded); 0 selects DefaultBudget.
	MemBudget int64
	// Deterministic selects the serial, file-order accumulation mode
	// whose output is bit-exact against the in-core serial kernels.
	Deterministic bool
	// Sched is the scheduling policy the parallel per-tile compute
	// runs with (ignored when Deterministic).
	Sched parallel.Options
}

// budget returns the effective budget.
func (o Options) budget() int64 {
	if o.MemBudget > 0 {
		return o.MemBudget
	}
	return DefaultBudget
}

// Stats reports what one streaming execution did.
type Stats struct {
	// Tiles is the number of tiles streamed through the pipeline.
	Tiles int64
	// BytesRead is the total payload bytes fetched from the reader.
	BytesRead int64
	// PrefetchHits counts tiles that were already resident when the
	// compute loop asked for them (the pipeline overlapped fully).
	PrefetchHits int64
	// PrefetchStalls counts tiles the compute loop had to wait for.
	PrefetchStalls int64
	// Evictions counts tiles released from the resident set after
	// their compute completed.
	Evictions int64
	// PeakBytes is the high-water mark of leased tile-resident bytes;
	// the ledger guarantees PeakBytes <= Budget.
	PeakBytes int64
	// Budget echoes the effective budget the run was admitted against.
	Budget int64
}

// ledger is the govern-style byte accounting tiles are leased from: a
// lease blocks until the budget has headroom, and the high-water mark
// proves the budget held.
type ledger struct {
	mu     sync.Mutex
	cond   *sync.Cond
	budget int64
	used   int64
	peak   int64
}

func newLedger(budget int64) *ledger {
	l := &ledger{budget: budget}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// acquire leases n bytes, blocking until they fit or ctx is done. A
// lease larger than the whole budget fails fast with ErrBudgetTooSmall.
func (l *ledger) acquire(ctx context.Context, n int64) error {
	if n > l.budget {
		return fmt.Errorf("%w: tile needs %d bytes, budget is %d", ErrBudgetTooSmall, n, l.budget)
	}
	stop := context.AfterFunc(ctx, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.used+n > l.budget {
		if err := ctx.Err(); err != nil {
			return err
		}
		l.cond.Wait()
	}
	l.used += n
	if l.used > l.peak {
		l.peak = l.used
	}
	return nil
}

// release returns n leased bytes and wakes waiting prefetchers.
func (l *ledger) release(n int64) {
	l.mu.Lock()
	l.used -= n
	l.mu.Unlock()
	l.cond.Broadcast()
}

func (l *ledger) peakBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.peak
}

// tileMsg is one prefetched tile handed from the reader goroutine to
// the compute loop.
type tileMsg struct {
	idx   int
	tile  *tensor.Tile
	lease int64
	err   error
}

// tileCost is the resident working set of one decoded tile: the raw
// payload staging buffer plus the decoded index/value arrays, both
// sized ti.Bytes.
func tileCost(ti *tensor.TileInfo) int64 { return 2 * int64(ti.Bytes) }

// stream drives the double-buffered prefetch pipeline: a reader
// goroutine leases budget, fetches and decodes tiles ahead of the
// compute loop, and the compute loop consumes them in order, releasing
// each lease (an eviction) when the tile's compute completes. label
// names the consuming kernel in obs spans.
func stream(ctx context.Context, tr *tensor.TileReader, label string, opt Options,
	compute func(idx int, tl *tensor.Tile) error) (Stats, error) {
	st := Stats{Budget: opt.budget()}
	led := newLedger(st.Budget)

	sctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Two recycled buffers: one computing, one prefetching. The tiles
	// channel is unbuffered, so a non-blocking receive succeeding means
	// the prefetcher finished the next tile before compute needed it.
	free := make(chan *tensor.Tile, 2)
	free <- &tensor.Tile{}
	free <- &tensor.Tile{}
	tiles := make(chan tileMsg)

	go func() {
		for i := range tr.Tiles {
			var tl *tensor.Tile
			select {
			case tl = <-free:
			case <-sctx.Done():
				return
			}
			lease := tileCost(&tr.Tiles[i])
			msg := tileMsg{idx: i, tile: tl, lease: lease}
			if err := led.acquire(sctx, lease); err != nil {
				msg.err = err
				msg.lease = 0
			} else {
				sp := obs.Begin("ooc.read", label, obs.PhasePrepare, -1)
				msg.err = tr.ReadTile(i, tl)
				sp.End()
				ctrTiles.Inc()
				ctrBytesRead.Add(int64(tr.Tiles[i].Bytes))
			}
			select {
			case tiles <- msg:
			case <-sctx.Done():
				if msg.lease > 0 {
					led.release(msg.lease)
				}
				return
			}
			if msg.err != nil {
				return
			}
		}
	}()

	for next := 0; next < len(tr.Tiles); next++ {
		var msg tileMsg
		select {
		case msg = <-tiles:
			st.PrefetchHits++
			ctrPrefetchHits.Inc()
		default:
			st.PrefetchStalls++
			ctrPrefetchStalls.Inc()
			select {
			case msg = <-tiles:
			case <-ctx.Done():
				st.PeakBytes = led.peakBytes()
				return st, ctx.Err()
			}
		}
		if msg.err != nil {
			st.PeakBytes = led.peakBytes()
			return st, msg.err
		}
		st.Tiles++
		st.BytesRead += int64(tr.Tiles[msg.idx].Bytes)
		sp := obs.Begin("ooc.tile", label, obs.PhaseChunk, -1)
		cerr := compute(msg.idx, msg.tile)
		sp.End()
		led.release(msg.lease)
		st.Evictions++
		ctrEvictions.Inc()
		select {
		case free <- msg.tile:
		default:
		}
		if cerr != nil {
			st.PeakBytes = led.peakBytes()
			return st, cerr
		}
	}
	st.PeakBytes = led.peakBytes()
	return st, nil
}

// validateReader rejects streams the reduction kernels cannot run on.
func validateReader(tr *tensor.TileReader, mode int) error {
	if tr.Order() < 2 {
		return fmt.Errorf("ooc: streaming kernels need an order >= 2 tensor, got %d", tr.Order())
	}
	if mode < 0 || mode >= tr.Order() {
		return fmt.Errorf("ooc: mode %d out of range for order-%d tensor", mode, tr.Order())
	}
	return nil
}
